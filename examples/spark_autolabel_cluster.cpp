// Map-reduce auto-labeling on the simulated Dataproc cluster: loads tiles
// into an RDD, applies the auto-label UDF lazily, collects, and prints both
// the measured wall times (real threads on this host) and the calibrated
// cluster simulation for the chosen executors x cores.
//
//   ./spark_autolabel_cluster [--executors=4] [--cores=4] [--tiles=128]

#include <cstdio>

#include "core/stages.h"
#include "s2/acquisition.h"
#include "util/args.h"
#include "util/table.h"

using namespace polarice;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  mr::ClusterConfig cluster;
  cluster.executors = static_cast<int>(args.get_int("executors", 4));
  cluster.cores_per_executor = static_cast<int>(args.get_int("cores", 4));

  // Source tiles.
  s2::AcquisitionConfig acq;
  const int requested = static_cast<int>(args.get_int("tiles", 128));
  acq.tile_size = 64;
  acq.scene_size = 256;
  acq.num_scenes = std::max(1, requested / acq.tiles_per_scene());
  const auto source = s2::acquire_tiles(acq);
  std::vector<img::ImageU8> tiles;
  for (const auto& t : source) tiles.push_back(t.rgb);
  std::printf("RDD source: %zu tiles, cluster %dx%d (%d lanes)\n",
              tiles.size(), cluster.executors, cluster.cores_per_executor,
              cluster.lanes());

  const core::AutoLabelStage stage({}, core::AutoLabelPolicy::spark(cluster));
  core::AutoLabelBatchStats stats;
  const auto results = stage.label_batch(tiles, par::ExecutionContext{}, &stats);
  if (!stats.spark.has_value()) {
    std::fprintf(stderr, "spark policy reported no job times\n");
    return 1;
  }
  const mr::JobTimes& times = *stats.spark;

  util::Table table({"phase", "measured on host (s)",
                     "simulated Dataproc (s)"});
  table.add_row({"load (parallelize)",
                 util::Table::num(times.measured_load_s, 3),
                 util::Table::num(times.simulated.load_s, 1)});
  table.add_row({"map (lazy UDF)",
                 util::Table::num(times.measured_map_s, 5),
                 util::Table::num(times.simulated.map_s, 2)});
  table.add_row({"reduce (collect)",
                 util::Table::num(times.measured_reduce_s, 3),
                 util::Table::num(times.simulated.reduce_s, 1)});
  table.print();
  std::printf("collected %zu label planes across %d partitions\n",
              results.size(), times.partitions);
  return 0;
}
