// SceneServer end-to-end: train a compact U-Net on auto-labeled data, stand
// up the async serving subsystem (bounded admission queue -> cross-scene
// batch scheduler -> auto-scaled replicas -> result cache), then drive it
// like a traffic front-end would:
//   - a burst of distinct scenes submitted as tickets (cross-scene batches
//     fill each forward pass),
//   - a repeat wave of the same scenes (served from the result cache with
//     zero forward passes),
//   - one cancelled request,
// and print the serving telemetry.
//
//   ./scene_server_demo [--scene_size=256] [--epochs=6] [--scenes=6]
//                       [--min_replicas=1] [--max_replicas=3]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/corpus.h"
#include "core/dataset_builder.h"
#include "core/serve/scene_server.h"
#include "metrics/metrics.h"
#include "nn/trainer.h"
#include "par/context.h"
#include "par/thread_pool.h"
#include "s2/scene.h"
#include "util/args.h"

using namespace polarice;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int scene_size = static_cast<int>(args.get_int("scene_size", 256));
  const int num_scenes =
      std::max(2, static_cast<int>(args.get_int("scenes", 6)));
  par::ThreadPool pool(par::ThreadPool::hardware());
  const par::ExecutionContext ctx(&pool);

  // 1. Train U-Net-Auto on auto-labeled tiles (no human labels anywhere).
  core::CorpusConfig corpus_cfg;
  corpus_cfg.acquisition.num_scenes = 4;
  corpus_cfg.acquisition.scene_size = 256;
  corpus_cfg.acquisition.tile_size = 64;
  const auto tiles = core::prepare_corpus(corpus_cfg, ctx);
  const auto data = core::build_dataset(tiles, core::LabelSource::kAuto,
                                        core::ImageVariant::kFiltered);
  nn::UNetConfig model_cfg;
  model_cfg.depth = 2;
  model_cfg.base_channels = 8;
  model_cfg.use_dropout = false;
  nn::UNet model(model_cfg);
  model.bind(ctx);
  nn::TrainConfig tc;
  tc.epochs = static_cast<int>(args.get_int("epochs", 6));
  tc.batch_size = 4;
  tc.learning_rate = 2e-3f;
  std::printf("training U-Net-Auto on %zu auto-labeled tiles...\n",
              data.size());
  (void)nn::Trainer(model, tc).fit(data, ctx);

  // 2. Stand up the server. The model could keep training afterwards — the
  // server owns cloned replicas.
  core::serve::SceneServerConfig server_cfg;
  server_cfg.tile_size = 64;
  // Deliberately not a divisor of the per-scene tile count so forward
  // passes visibly straddle scene boundaries (cross-scene batching), with a
  // top-up window long enough to span the next scene's filter time. A
  // latency-sensitive deployment would keep the default few-ms window and
  // accept scene-aligned batches instead.
  server_cfg.batch_tiles = 6;
  server_cfg.max_batch_wait = std::chrono::milliseconds(250);
  server_cfg.min_replicas =
      std::max(1, static_cast<int>(args.get_int("min_replicas", 1)));
  server_cfg.max_replicas = std::max(
      server_cfg.min_replicas, static_cast<int>(args.get_int("max_replicas", 3)));
  server_cfg.admission.capacity = 32;
  server_cfg.admission.policy = core::serve::AdmissionPolicy::kBlock;
  core::serve::SceneServer server(model, server_cfg, ctx);

  // 3. Burst of distinct fresh scenes: tickets resolve as the cross-scene
  // batch scheduler drains them across the auto-scaled replicas.
  std::vector<s2::Scene> scenes;
  for (int i = 0; i < num_scenes; ++i) {
    s2::SceneConfig sc;
    sc.width = sc.height = scene_size;
    sc.seed = 31337 + static_cast<std::uint64_t>(i);
    sc.cloudy = true;
    scenes.push_back(s2::SceneGenerator(sc).generate());
  }
  std::vector<core::serve::SceneTicket> tickets;
  for (const auto& scene : scenes) {
    tickets.push_back(server.submit(scene.rgb.clone()));
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const auto prediction = tickets[i].get();
    std::vector<int> truth, pred;
    for (const auto v : scenes[i].labels) truth.push_back(v);
    for (const auto v : prediction) pred.push_back(v);
    std::printf("scene %zu: accuracy %.2f%% (cloud cover %.1f%%)\n", i,
                100 * metrics::pixel_accuracy(truth, pred),
                100 * scenes[i].cloud_cover_fraction());
  }

  // 4. Repeat wave: identical scene content is served from the result
  // cache — no forward passes, same bits.
  for (const auto& scene : scenes) {
    (void)server.classify_scene(scene.rgb);
  }

  // 5. One cancelled request.
  {
    const par::ExecutionContext cancel_ctx;
    auto doomed = server.submit(scenes[0].rgb.clone(), cancel_ctx);
    doomed.cancel();
    try {
      (void)doomed.get();
      // May still have completed from the cache before the cancel landed.
    } catch (const par::OperationCancelled&) {
      std::printf("cancelled ticket resolved with OperationCancelled\n");
    }
  }

  const auto stats = server.stats();
  std::printf(
      "server: %zu submitted, %zu completed (%zu cache hits), %zu batches "
      "(%zu cross-scene), %zu tiles forwarded\n",
      stats.submitted, stats.completed, stats.cache_hits, stats.batches,
      stats.cross_scene_batches, stats.session.tiles);
  std::printf(
      "replicas: %d now, %d peak (floor %d, ceiling %d); lease wait %.3fs, "
      "peak leases %zu; queue peak depth %zu\n",
      stats.replicas, stats.peak_replicas, server_cfg.min_replicas,
      server_cfg.max_replicas, stats.session.wait_seconds,
      stats.session.peak_leases, stats.peak_queue_depth);
  return 0;
}
