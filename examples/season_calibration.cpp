// Paper §V extension: the published HSV thresholds are summer constants —
// the authors had to retune them manually for the Antarctic partial-night
// season. This example darkens the scene (season_brightness), shows the
// published thresholds collapsing, then recovers accuracy with the
// automatic two-level-Otsu calibrator.
//
//   ./season_calibration [--brightness=0.55] [--size=256]

#include <cstdio>

#include "core/autolabel.h"
#include "core/calibrate.h"
#include "metrics/metrics.h"
#include "s2/scene.h"
#include "util/args.h"
#include "util/table.h"

using namespace polarice;

namespace {
double accuracy_of(const core::AutoLabeler& labeler, const s2::Scene& scene) {
  const auto result = labeler.label(scene.rgb);
  std::vector<int> truth, pred;
  for (const auto v : scene.labels) truth.push_back(v);
  for (const auto v : result.labels) pred.push_back(v);
  return metrics::pixel_accuracy(truth, pred);
}
}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double brightness = args.get_double("brightness", 0.55);
  const int size = static_cast<int>(args.get_int("size", 256));

  s2::SceneConfig sc;
  sc.width = sc.height = size;
  sc.seed = 77;
  sc.cloudy = false;  // isolate the season effect from the cloud effect
  sc.season_brightness = brightness;
  const auto night = s2::SceneGenerator(sc).generate();
  sc.season_brightness = 1.0;
  const auto summer = s2::SceneGenerator(sc).generate();

  core::AutoLabelConfig paper_cfg;
  paper_cfg.apply_filter = false;
  const core::AutoLabeler paper_labeler(paper_cfg);

  // Calibrate on the darkened scene itself (unsupervised: histogram only).
  const auto calibrated = core::calibrate_thresholds(night.rgb);
  core::AutoLabelConfig cal_cfg;
  cal_cfg.apply_filter = false;
  cal_cfg.ranges = calibrated.ranges;
  const core::AutoLabeler cal_labeler(cal_cfg);

  util::Table table({"scene", "paper thresholds", "auto-calibrated"});
  table.add_row({"summer (brightness 1.0)",
                 util::Table::num(100 * accuracy_of(paper_labeler, summer), 2) + "%",
                 util::Table::num(
                     100 * accuracy_of(
                               core::AutoLabeler([&] {
                                 core::AutoLabelConfig c;
                                 c.apply_filter = false;
                                 c.ranges =
                                     core::calibrate_thresholds(summer.rgb)
                                         .ranges;
                                 return c;
                               }()),
                               summer),
                     2) + "%"});
  table.add_row({"partial-night (brightness " +
                     util::Table::num(brightness, 2) + ")",
                 util::Table::num(100 * accuracy_of(paper_labeler, night), 2) + "%",
                 util::Table::num(100 * accuracy_of(cal_labeler, night), 2) + "%"});
  table.print();
  std::printf("calibrated V cuts for the darkened scene: water<=%d, "
              "thin<=%d, thick>%d (paper summer cuts: 30 / 204)\n",
              calibrated.cut_low, calibrated.cut_high, calibrated.cut_high);
  return 0;
}
