// Fig 9 inference end-to-end, serving-style: train a compact U-Net on
// auto-labeled data, stand up an InferenceSession (N model replicas behind
// one thread-safe API), and classify several brand-new cloudy scenes
// concurrently — filter, tile, batched inference, stitch — writing the
// colorized classification of the first scene next to the truth.
//
//   ./classify_scene [--scene_size=256] [--epochs=6] [--scenes=3]
//                    [--replicas=2] [--out=classified]

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/corpus.h"
#include "core/dataset_builder.h"
#include "core/inference_session.h"
#include "core/workflow.h"
#include "img/io.h"
#include "metrics/metrics.h"
#include "nn/trainer.h"
#include "par/context.h"
#include "par/thread_pool.h"
#include "s2/scene.h"
#include "util/args.h"

using namespace polarice;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int scene_size = static_cast<int>(args.get_int("scene_size", 256));
  const int num_scenes =
      std::max(1, static_cast<int>(args.get_int("scenes", 3)));
  const std::string out_dir = args.get_string("out", "classified");
  std::filesystem::create_directories(out_dir);
  par::ThreadPool pool(par::ThreadPool::hardware());
  const par::ExecutionContext ctx(&pool);

  // 1. Prepare auto-labeled training data (no human labels anywhere).
  core::CorpusConfig corpus_cfg;
  corpus_cfg.acquisition.num_scenes = 4;
  corpus_cfg.acquisition.scene_size = 256;
  corpus_cfg.acquisition.tile_size = 64;
  const auto tiles = core::prepare_corpus(corpus_cfg, ctx);
  const auto data = core::build_dataset(tiles, core::LabelSource::kAuto,
                                        core::ImageVariant::kFiltered);

  // 2. Train U-Net-Auto.
  nn::UNetConfig model_cfg;
  model_cfg.depth = 2;
  model_cfg.base_channels = 8;
  model_cfg.use_dropout = false;
  nn::UNet model(model_cfg);
  model.bind(ctx);
  nn::TrainConfig tc;
  tc.epochs = static_cast<int>(args.get_int("epochs", 6));
  tc.batch_size = 4;
  tc.learning_rate = 2e-3f;
  std::printf("training U-Net-Auto on %zu auto-labeled tiles...\n",
              data.size());
  const auto history = nn::Trainer(model, tc).fit(data, ctx);
  std::printf("final train loss %.4f, pixel accuracy %.2f%%\n",
              history.back().mean_loss,
              100 * history.back().pixel_accuracy);

  // 3. Stand up the serving session: replicas of the trained weights behind
  // one thread-safe classify_scene(). The source model could keep training;
  // the session owns its own copies.
  core::InferenceSessionConfig session_cfg;
  session_cfg.tile_size = 64;
  session_cfg.replicas = static_cast<int>(args.get_int("replicas", 2));
  session_cfg.batch_tiles = 8;
  core::InferenceSession session(model, session_cfg);

  // 4. Classify fresh cloudy scenes (unseen seeds) concurrently.
  std::vector<s2::Scene> scenes;
  for (int i = 0; i < num_scenes; ++i) {
    s2::SceneConfig sc;
    sc.width = sc.height = scene_size;
    sc.seed = 31337 + static_cast<std::uint64_t>(i);
    sc.cloudy = true;
    scenes.push_back(s2::SceneGenerator(sc).generate());
  }
  std::vector<img::ImageU8> predictions(scenes.size());
  {
    std::vector<std::jthread> callers;
    for (std::size_t i = 0; i < scenes.size(); ++i) {
      callers.emplace_back(
          [&, i] { predictions[i] = session.classify_scene(scenes[i].rgb); });
    }
  }
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    std::vector<int> truth, pred;
    for (const auto v : scenes[i].labels) truth.push_back(v);
    for (const auto v : predictions[i]) pred.push_back(v);
    std::printf("scene %zu: accuracy %.2f%% (cloud cover %.1f%%)\n", i,
                100 * metrics::pixel_accuracy(truth, pred),
                100 * scenes[i].cloud_cover_fraction());
  }
  const auto stats = session.stats();
  std::printf("session served %zu scenes / %zu tiles with %d replicas\n",
              stats.scenes, stats.tiles, session_cfg.replicas);

  img::write_ppm(out_dir + "/scene.ppm", scenes[0].rgb);
  img::write_ppm(out_dir + "/truth.ppm",
                 s2::colorize_labels(scenes[0].labels));
  img::write_ppm(out_dir + "/prediction.ppm",
                 s2::colorize_labels(predictions[0]));
  std::printf("wrote scene/truth/prediction panels to %s/\n", out_dir.c_str());
  return 0;
}
