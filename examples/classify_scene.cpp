// Fig 9 inference workflow end-to-end: train a compact U-Net on auto-labeled
// data, then classify a brand-new (never seen) cloudy scene — filter, tile,
// infer, stitch — and write the colorized classification next to the truth.
//
//   ./classify_scene [--scene_size=256] [--epochs=6] [--out=classified]

#include <cstdio>
#include <filesystem>

#include "core/corpus.h"
#include "core/dataset_builder.h"
#include "core/workflow.h"
#include "img/io.h"
#include "metrics/metrics.h"
#include "nn/trainer.h"
#include "par/thread_pool.h"
#include "s2/scene.h"
#include "util/args.h"

using namespace polarice;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int scene_size = static_cast<int>(args.get_int("scene_size", 256));
  const std::string out_dir = args.get_string("out", "classified");
  std::filesystem::create_directories(out_dir);
  par::ThreadPool pool(par::ThreadPool::hardware());

  // 1. Prepare auto-labeled training data (no human labels anywhere).
  core::CorpusConfig corpus_cfg;
  corpus_cfg.acquisition.num_scenes = 4;
  corpus_cfg.acquisition.scene_size = 256;
  corpus_cfg.acquisition.tile_size = 64;
  const auto tiles = core::prepare_corpus(corpus_cfg, &pool);
  const auto data = core::build_dataset(tiles, core::LabelSource::kAuto,
                                        core::ImageVariant::kFiltered);

  // 2. Train U-Net-Auto.
  nn::UNetConfig model_cfg;
  model_cfg.depth = 2;
  model_cfg.base_channels = 8;
  model_cfg.use_dropout = false;
  nn::UNet model(model_cfg);
  model.set_pool(&pool);
  nn::TrainConfig tc;
  tc.epochs = static_cast<int>(args.get_int("epochs", 6));
  tc.batch_size = 4;
  tc.learning_rate = 2e-3f;
  std::printf("training U-Net-Auto on %zu auto-labeled tiles...\n",
              data.size());
  const auto history = nn::Trainer(model, tc).fit(data);
  std::printf("final train loss %.4f, pixel accuracy %.2f%%\n",
              history.back().mean_loss,
              100 * history.back().pixel_accuracy);

  // 3. Classify a fresh cloudy scene (unseen seed).
  s2::SceneConfig sc;
  sc.width = sc.height = scene_size;
  sc.seed = 31337;
  sc.cloudy = true;
  const auto scene = s2::SceneGenerator(sc).generate();
  core::InferenceWorkflow inference(model, core::CloudFilterConfig{}, 64);
  const auto prediction = inference.classify_scene(scene.rgb, &pool);

  std::vector<int> truth, pred;
  for (const auto v : scene.labels) truth.push_back(v);
  for (const auto v : prediction) pred.push_back(v);
  std::printf("scene classification accuracy: %.2f%% (cloud cover %.1f%%)\n",
              100 * metrics::pixel_accuracy(truth, pred),
              100 * scene.cloud_cover_fraction());

  img::write_ppm(out_dir + "/scene.ppm", scene.rgb);
  img::write_ppm(out_dir + "/truth.ppm", s2::colorize_labels(scene.labels));
  img::write_ppm(out_dir + "/prediction.ppm",
                 s2::colorize_labels(prediction));
  std::printf("wrote scene/truth/prediction panels to %s/\n", out_dir.c_str());
  return 0;
}
