// Horovod-style synchronous data-parallel training demo: trains the same
// U-Net on 1, 2, and 4 simulated GPUs (rank threads + ring allreduce) and
// prints measured speedups plus the calibrated DGX A100 projection.
//
//   ./distributed_training [--scenes=4] [--epochs=3] [--max_ranks=4]

#include <cstdio>

#include "core/corpus.h"
#include "core/dataset_builder.h"
#include "ddp/device_model.h"
#include "ddp/distributed_trainer.h"
#include "par/context.h"
#include "par/thread_pool.h"
#include "util/args.h"
#include "util/table.h"

using namespace polarice;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int epochs = static_cast<int>(args.get_int("epochs", 3));
  const int max_ranks = static_cast<int>(args.get_int("max_ranks", 4));

  core::CorpusConfig corpus_cfg;
  corpus_cfg.acquisition.num_scenes =
      static_cast<int>(args.get_int("scenes", 4));
  corpus_cfg.acquisition.scene_size = 256;
  corpus_cfg.acquisition.tile_size = 32;
  par::ThreadPool pool(par::ThreadPool::hardware());
  const par::ExecutionContext ctx(&pool);
  const auto tiles = core::prepare_corpus(corpus_cfg, ctx);
  const auto data =
      core::build_dataset(tiles, core::LabelSource::kAuto,
                          core::ImageVariant::kFiltered);
  std::printf("dataset: %zu tiles of %dx%d\n", data.size(), data.width(),
              data.height());

  nn::UNetConfig model_cfg;
  model_cfg.depth = 2;
  model_cfg.base_channels = 6;
  model_cfg.use_dropout = false;

  util::Table table({"ranks", "total (s)", "s/epoch", "img/s", "speedup",
                     "final loss"});
  double t1 = 0.0;
  for (int ranks = 1; ranks <= max_ranks; ranks *= 2) {
    nn::UNet model(model_cfg);
    ddp::DistributedTrainConfig cfg;
    cfg.world_size = ranks;
    cfg.epochs = epochs;
    cfg.batch_per_device = 4;
    const auto stats = ddp::train_distributed(model, data, cfg, ctx);
    if (ranks == 1) t1 = stats.total_s;
    table.add_row({std::to_string(ranks), util::Table::num(stats.total_s, 2),
                   util::Table::num(stats.epoch_s, 3),
                   util::Table::num(stats.images_per_s, 1),
                   util::Table::num(t1 / stats.total_s, 2),
                   util::Table::num(stats.epoch_loss.back(), 4)});
  }
  std::printf("measured on this host (ring allreduce over rank threads):\n");
  table.print();

  std::printf("\ncalibrated DGX A100 projection (paper Table III):\n");
  util::Table dgx({"GPUs", "total (s)", "s/epoch", "img/s", "speedup"});
  for (const int gpus : {1, 2, 4, 6, 8}) {
    const auto sim = ddp::simulate_training(ddp::DeviceModelConfig{}, gpus);
    dgx.add_row({std::to_string(gpus), util::Table::num(sim.total_s, 2),
                 util::Table::num(sim.epoch_s, 3),
                 util::Table::num(sim.images_per_s, 1),
                 util::Table::num(sim.speedup, 2)});
  }
  dgx.print();
  return 0;
}
