// Quickstart: generate a synthetic Sentinel-2 scene of the Ross Sea,
// auto-label it with the paper's filter + color-segmentation pipeline, and
// write the imagery/label panels as PPM files.
//
//   ./quickstart [--size=256] [--seed=7] [--out=quickstart_out]

#include <cstdio>
#include <filesystem>

#include "core/autolabel.h"
#include "img/io.h"
#include "metrics/metrics.h"
#include "s2/scene.h"
#include "util/args.h"

using namespace polarice;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int size = static_cast<int>(args.get_int("size", 256));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const std::string out_dir = args.get_string("out", "quickstart_out");
  std::filesystem::create_directories(out_dir);

  // 1. "Download" a cloudy scene (synthetic substitute for GEE).
  s2::SceneConfig scene_cfg;
  scene_cfg.width = scene_cfg.height = size;
  scene_cfg.seed = seed;
  scene_cfg.cloudy = true;
  const s2::Scene scene = s2::SceneGenerator(scene_cfg).generate();
  std::printf("generated %dx%d scene (cloud/shadow cover: %.1f%%)\n", size,
              size, 100.0 * scene.cloud_cover_fraction());

  // 2. Auto-label it, once without and once with the thin-cloud/shadow
  // filter, and compare both against ground truth.
  core::AutoLabelConfig no_filter;
  no_filter.apply_filter = false;
  const auto raw = core::AutoLabeler(no_filter).label(scene.rgb);
  const auto filtered = core::AutoLabeler().label(scene.rgb);

  std::vector<int> truth, raw_pred, filt_pred;
  for (const auto v : scene.labels) truth.push_back(v);
  for (const auto v : raw.labels) raw_pred.push_back(v);
  for (const auto v : filtered.labels) filt_pred.push_back(v);
  std::printf("auto-label accuracy vs ground truth:\n");
  std::printf("  without filter: %.2f%%\n",
              100.0 * metrics::pixel_accuracy(truth, raw_pred));
  std::printf("  with filter:    %.2f%%\n",
              100.0 * metrics::pixel_accuracy(truth, filt_pred));

  // 3. Write the panels.
  img::write_ppm(out_dir + "/scene.ppm", scene.rgb);
  img::write_ppm(out_dir + "/scene_clean.ppm", scene.rgb_clean);
  img::write_ppm(out_dir + "/scene_filtered.ppm", filtered.used_image);
  img::write_ppm(out_dir + "/labels_truth.ppm",
                 s2::colorize_labels(scene.labels));
  img::write_ppm(out_dir + "/labels_auto_raw.ppm", raw.colorized);
  img::write_ppm(out_dir + "/labels_auto_filtered.ppm", filtered.colorized);
  std::printf("wrote 6 panels to %s/\n", out_dir.c_str());
  std::printf("class mix (filtered auto-labels): water %.1f%%, thin %.1f%%, "
              "thick %.1f%%\n",
              100.0 * filtered.class_counts[0] / scene.rgb.pixel_count(),
              100.0 * filtered.class_counts[1] / scene.rgb.pixel_count(),
              100.0 * filtered.class_counts[2] / scene.rgb.pixel_count());
  return 0;
}
