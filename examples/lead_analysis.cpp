// Domain scenario from the paper's motivation (and its Muchow et al.
// citation): detect LEADS — narrow open-water cracks in the ice sheet —
// from the auto-labeled classification, and report their width/length
// statistics. Demonstrates chaining: scene -> filter -> auto-label ->
// lead analysis -> PPM overlays.
//
//   ./lead_analysis [--size=256] [--seed=5150] [--out=leads_out]

#include <cstdio>
#include <filesystem>

#include "core/autolabel.h"
#include "core/leads.h"
#include "img/io.h"
#include "img/ops.h"
#include "s2/scene.h"
#include "util/args.h"
#include "util/table.h"

using namespace polarice;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int size = static_cast<int>(args.get_int("size", 256));
  const std::string out_dir = args.get_string("out", "leads_out");
  std::filesystem::create_directories(out_dir);

  // Scene with mostly consolidated ice and narrow water features.
  s2::SceneConfig sc;
  sc.width = sc.height = size;
  sc.seed = static_cast<std::uint64_t>(args.get_int("seed", 5150));
  sc.cloudy = true;
  sc.water_fraction = 0.12;
  sc.ice_feature_scale = 20.0;
  const auto scene = s2::SceneGenerator(sc).generate();

  // Auto-label (filter + segmentation), then detect leads. fBm water
  // pockets are stubbier than real refrozen leads, so accept moderately
  // elongated, somewhat wider cracks here.
  const auto labeled = core::AutoLabeler().label(scene.rgb);
  core::LeadDetectorConfig lead_cfg;
  lead_cfg.max_lead_width = 15;
  lead_cfg.min_elongation = 2.0;
  lead_cfg.min_area = 20;
  const auto analysis = core::LeadDetector(lead_cfg).detect(labeled.labels);

  std::printf("scene %dx%d, cloud cover %.1f%%: %zu leads, %.2f%% of area\n",
              size, size, 100 * scene.cloud_cover_fraction(),
              analysis.leads.size(), 100 * analysis.lead_area_fraction);

  util::Table table({"lead", "length (px)", "mean width (px)", "area (px)",
                     "elongation"});
  int idx = 0;
  for (const auto& lead : analysis.leads) {
    table.add_row({std::to_string(idx++), util::Table::num(lead.length, 0),
                   util::Table::num(lead.mean_width, 1),
                   std::to_string(lead.component.area),
                   util::Table::num(lead.component.elongation(), 1)});
    if (idx >= 12) break;  // table stays readable
  }
  table.print();
  if (analysis.leads.size() > 12) {
    std::printf("(%zu more leads omitted)\n", analysis.leads.size() - 12);
  }

  // Overlay: leads highlighted in yellow on the filtered imagery.
  img::ImageU8 overlay = labeled.used_image.clone();
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      if (analysis.lead_mask.at(x, y) == 255) {
        overlay.at(x, y, 0) = 255;
        overlay.at(x, y, 1) = 220;
        overlay.at(x, y, 2) = 0;
      }
    }
  }
  img::write_ppm(out_dir + "/scene.ppm", scene.rgb);
  img::write_ppm(out_dir + "/labels.ppm", labeled.colorized);
  img::write_ppm(out_dir + "/leads_overlay.ppm", overlay);
  img::write_pgm(out_dir + "/lead_mask.pgm", analysis.lead_mask);
  std::printf("wrote scene/labels/overlay/mask to %s/\n", out_dir.c_str());
  return 0;
}
