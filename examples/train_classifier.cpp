// Train the two U-Nets of the paper (U-Net-Man on simulated manual labels,
// U-Net-Auto on auto-generated labels) and print the Table-IV-style
// comparison on the held-out split.
//
//   ./train_classifier [--scenes=6] [--epochs=8] [--batch=4] [--lr=0.002]

#include <cstdio>

#include "core/workflow.h"
#include "par/context.h"
#include "par/thread_pool.h"
#include "util/args.h"
#include "util/table.h"

using namespace polarice;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  core::WorkflowConfig cfg;
  cfg.acquisition.num_scenes = static_cast<int>(args.get_int("scenes", 6));
  cfg.acquisition.scene_size = 256;
  cfg.acquisition.tile_size = 64;
  cfg.acquisition.cloudy_scene_fraction = 0.5;
  cfg.model.depth = 2;
  cfg.model.base_channels = 8;
  cfg.model.use_dropout = true;
  cfg.model.dropout_rate = 0.2f;
  cfg.training.epochs = static_cast<int>(args.get_int("epochs", 8));
  cfg.training.batch_size = static_cast<int>(args.get_int("batch", 4));
  cfg.training.learning_rate =
      static_cast<float>(args.get_double("lr", 2e-3));
  cfg.training.verbose = args.get_bool("verbose", false);

  par::ThreadPool pool(par::ThreadPool::hardware());
  const par::ExecutionContext ctx(&pool);
  core::TrainingWorkflow workflow(cfg);
  std::printf("training U-Net-Man and U-Net-Auto (%d scenes, %d epochs)...\n",
              cfg.acquisition.num_scenes, cfg.training.epochs);
  const auto result = workflow.run(ctx);

  util::Table table({"Dataset", "U-Net-Man", "U-Net-Auto"});
  table.add_row({"Original S2 images",
                 util::Table::num(100 * result.man_original.accuracy, 2) + "%",
                 util::Table::num(100 * result.auto_original.accuracy, 2) + "%"});
  table.add_row({"With thin cloud and shadow filter",
                 util::Table::num(100 * result.man_filtered.accuracy, 2) + "%",
                 util::Table::num(100 * result.auto_filtered.accuracy, 2) + "%"});
  table.print();

  std::printf("\nU-Net-Auto (filtered) macro precision %.2f%%, recall %.2f%%, "
              "F1 %.2f%%\n",
              100 * result.auto_filtered.precision,
              100 * result.auto_filtered.recall,
              100 * result.auto_filtered.f1);
  std::printf("final training loss: man %.4f, auto %.4f\n",
              result.man_history.back().mean_loss,
              result.auto_history.back().mean_loss);
  return 0;
}
