// Domain scenario: auto-label a November-2019-style Ross Sea acquisition
// (many scenes, mixed clear/cloudy) in parallel, mirroring the paper's data
// preparation stage, and report throughput plus label quality per scene.
//
//   ./autolabel_ross_sea [--scenes=6] [--scene_size=256] [--workers=8]

#include <cstdio>

#include "core/corpus.h"
#include "metrics/metrics.h"
#include "par/context.h"
#include "par/thread_pool.h"
#include "util/args.h"
#include "util/table.h"
#include "util/timer.h"

using namespace polarice;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  core::CorpusConfig cfg;
  cfg.acquisition.num_scenes = static_cast<int>(args.get_int("scenes", 6));
  cfg.acquisition.scene_size =
      static_cast<int>(args.get_int("scene_size", 256));
  cfg.acquisition.tile_size = 64;
  cfg.acquisition.cloudy_scene_fraction = 0.5;
  const auto workers =
      static_cast<std::size_t>(args.get_int("workers", 8));

  par::ThreadPool pool(workers);
  const par::ExecutionContext ctx(&pool);
  util::WallTimer timer;
  const auto tiles = core::prepare_corpus(cfg, ctx);
  const double seconds = timer.seconds();

  std::printf("prepared %zu tiles from %d scenes in %.2fs (%zu workers)\n",
              tiles.size(), cfg.acquisition.num_scenes, seconds, workers);

  // Per-scene auto-label quality vs ground truth.
  util::Table table({"scene", "cloud cover", "auto-label acc (orig order)",
                     "tiles"});
  const int per_scene = cfg.acquisition.tiles_per_scene();
  for (int s = 0; s < cfg.acquisition.num_scenes; ++s) {
    std::vector<int> truth, pred;
    double cloud = 0.0;
    for (int i = 0; i < per_scene; ++i) {
      const auto& tile = tiles[static_cast<std::size_t>(s * per_scene + i)];
      cloud += tile.cloud_fraction;
      for (const auto v : tile.truth) truth.push_back(v);
      for (const auto v : tile.auto_labels) pred.push_back(v);
    }
    table.add_row({std::to_string(s),
                   util::Table::num(100.0 * cloud / per_scene, 1) + "%",
                   util::Table::num(
                       100.0 * metrics::pixel_accuracy(truth, pred, ctx), 2) +
                       "%",
                   std::to_string(per_scene)});
  }
  table.print();
  return 0;
}
