// Threshold semantics (cv::threshold parity) and Otsu behaviour.

#include <gtest/gtest.h>

#include "img/threshold.h"
#include "util/rng.h"

namespace pi = polarice::img;

namespace {
pi::ImageU8 ramp256() {
  pi::ImageU8 im(16, 16, 1);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      im.at(x, y) = static_cast<std::uint8_t>(y * 16 + x);
    }
  }
  return im;
}
}  // namespace

TEST(Threshold, Binary) {
  const auto out = pi::threshold(ramp256(), 100, 255, pi::ThresholdType::kBinary);
  EXPECT_EQ(out.at(0, 0), 0);       // value 0
  EXPECT_EQ(out.at(4, 6), 0);       // value 100 == threshold -> 0
  EXPECT_EQ(out.at(5, 6), 255);     // value 101 > 100
}

TEST(Threshold, BinaryBoundaryIsStrict) {
  pi::ImageU8 im(2, 1, 1);
  im.at(0, 0) = 100;
  im.at(1, 0) = 101;
  const auto out = pi::threshold(im, 100, 200, pi::ThresholdType::kBinary);
  EXPECT_EQ(out.at(0, 0), 0);    // == threshold stays 0 (cv semantics: src > t)
  EXPECT_EQ(out.at(1, 0), 200);
}

TEST(Threshold, BinaryInv) {
  pi::ImageU8 im(2, 1, 1);
  im.at(0, 0) = 50;
  im.at(1, 0) = 200;
  const auto out = pi::threshold(im, 100, 255, pi::ThresholdType::kBinaryInv);
  EXPECT_EQ(out.at(0, 0), 255);
  EXPECT_EQ(out.at(1, 0), 0);
}

TEST(Threshold, TruncCapsAboveThreshold) {
  const auto out = pi::threshold(ramp256(), 128, 255, pi::ThresholdType::kTrunc);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      const int v = y * 16 + x;
      EXPECT_EQ(int(out.at(x, y)), std::min(v, 128));
    }
  }
}

TEST(Threshold, ToZeroAndToZeroInvPartitionTheImage) {
  const auto src = ramp256();
  const auto hi = pi::threshold(src, 90, 255, pi::ThresholdType::kToZero);
  const auto lo = pi::threshold(src, 90, 255, pi::ThresholdType::kToZeroInv);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      EXPECT_EQ(int(hi.at(x, y)) + int(lo.at(x, y)), int(src.at(x, y)));
    }
  }
}

TEST(Threshold, RejectsMultiChannel) {
  pi::ImageU8 rgb(2, 2, 3);
  EXPECT_THROW(pi::threshold(rgb, 10, 255, pi::ThresholdType::kBinary),
               std::invalid_argument);
}

TEST(Histogram256, CountsSumToPixelCount) {
  const auto src = ramp256();
  std::uint64_t hist[256];
  pi::histogram256(src, hist);
  std::uint64_t total = 0;
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(hist[i], 1u);  // ramp hits each value exactly once
    total += hist[i];
  }
  EXPECT_EQ(total, 256u);
}

TEST(Otsu, SeparatesCleanBimodalHistogram) {
  pi::ImageU8 im(100, 2, 1);
  for (int x = 0; x < 100; ++x) {
    im.at(x, 0) = 40;
    im.at(x, 1) = 210;
  }
  const auto t = pi::otsu_threshold(im);
  EXPECT_GE(int(t), 40);
  EXPECT_LT(int(t), 210);
}

TEST(Otsu, NoisyBimodalLandsBetweenModes) {
  polarice::util::Rng rng(5);
  pi::ImageU8 im(64, 64, 1);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      const double mode = (x < 32) ? 60.0 : 190.0;
      const double v = std::clamp(rng.normal(mode, 12.0), 0.0, 255.0);
      im.at(x, y) = static_cast<std::uint8_t>(v);
    }
  }
  const auto t = pi::otsu_threshold(im);
  EXPECT_GT(int(t), 90);
  EXPECT_LT(int(t), 170);
}

TEST(Otsu, ConstantImageReturnsItsValueOrBelow) {
  pi::ImageU8 im(8, 8, 1, 123);
  // Degenerate case: no between-class variance anywhere; implementation must
  // not crash and must return a valid threshold.
  const auto t = pi::otsu_threshold(im);
  EXPECT_LE(int(t), 255);
}

TEST(OtsuApply, ReportsChosenThresholdAndBinarizes) {
  pi::ImageU8 im(100, 2, 1);
  for (int x = 0; x < 100; ++x) {
    im.at(x, 0) = 30;
    im.at(x, 1) = 220;
  }
  std::uint8_t chosen = 0;
  const auto out =
      pi::threshold_otsu(im, 255, pi::ThresholdType::kBinary, &chosen);
  EXPECT_GE(int(chosen), 30);
  EXPECT_LT(int(chosen), 220);
  EXPECT_EQ(out.at(0, 0), 0);
  EXPECT_EQ(out.at(0, 1), 255);
}

// Property: for every threshold type, output only depends on the input value
// (pointwise), verified against a scalar reference on random images.
class ThresholdTypeSweep
    : public ::testing::TestWithParam<pi::ThresholdType> {};

TEST_P(ThresholdTypeSweep, MatchesScalarReference) {
  const auto type = GetParam();
  polarice::util::Rng rng(9);
  pi::ImageU8 im(33, 17, 1);
  for (auto& v : im) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const std::uint8_t t = 77, maxval = 201;
  const auto out = pi::threshold(im, t, maxval, type);
  for (int y = 0; y < im.height(); ++y) {
    for (int x = 0; x < im.width(); ++x) {
      const std::uint8_t s = im.at(x, y);
      std::uint8_t expected = 0;
      switch (type) {
        case pi::ThresholdType::kBinary: expected = s > t ? maxval : 0; break;
        case pi::ThresholdType::kBinaryInv: expected = s > t ? 0 : maxval; break;
        case pi::ThresholdType::kTrunc: expected = s > t ? t : s; break;
        case pi::ThresholdType::kToZero: expected = s > t ? s : 0; break;
        case pi::ThresholdType::kToZeroInv: expected = s > t ? 0 : s; break;
      }
      ASSERT_EQ(out.at(x, y), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, ThresholdTypeSweep,
                         ::testing::Values(pi::ThresholdType::kBinary,
                                           pi::ThresholdType::kBinaryInv,
                                           pi::ThresholdType::kTrunc,
                                           pi::ThresholdType::kToZero,
                                           pi::ThresholdType::kToZeroInv));
