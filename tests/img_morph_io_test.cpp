// Morphology behaviour + Netpbm I/O round-trips and failure injection.

#include <gtest/gtest.h>

#include <cstdio>
#include <utility>
#include <filesystem>
#include <fstream>

#include "img/io.h"
#include "img/morphology.h"
#include "img/ops.h"
#include "util/rng.h"

namespace pi = polarice::img;
namespace fs = std::filesystem;

namespace {
pi::ImageU8 spot_image() {
  pi::ImageU8 im(9, 9, 1, 0);
  im.at(4, 4) = 255;
  return im;
}

fs::path temp_file(const char* name) {
  return fs::temp_directory_path() / name;
}
}  // namespace

TEST(Morphology, ErodeRemovesIsolatedSpot) {
  const auto out = pi::erode(spot_image(), 3);
  for (const auto v : out) EXPECT_EQ(v, 0);
}

TEST(Morphology, DilateGrowsSpotToKernelSize) {
  const auto out = pi::dilate(spot_image(), 3);
  int lit = 0;
  for (const auto v : out) lit += v == 255;
  EXPECT_EQ(lit, 9);  // 3x3 block
  EXPECT_EQ(out.at(3, 3), 255);
  EXPECT_EQ(out.at(5, 5), 255);
  EXPECT_EQ(out.at(2, 4), 0);
}

TEST(Morphology, OpenRemovesSpeckleClosesKeepsIt) {
  const auto opened = pi::morph_open(spot_image(), 3);
  for (const auto v : opened) EXPECT_EQ(v, 0);
  // A 3x3 solid block survives opening.
  pi::ImageU8 block(9, 9, 1, 0);
  for (int y = 3; y <= 5; ++y) {
    for (int x = 3; x <= 5; ++x) block.at(x, y) = 255;
  }
  const auto kept = pi::morph_open(block, 3);
  EXPECT_EQ(kept.at(4, 4), 255);
}

// The van Herk/Gil-Werman production path must be bit-identical to the
// seed's O(K) window scan on arbitrary content, for every kernel size
// including kernels larger than the image.
TEST(Morphology, VanHerkMatchesReferenceScan) {
  polarice::util::Rng rng(2024);
  for (const auto [w, h] : {std::pair{31, 17}, std::pair{64, 64},
                            std::pair{5, 9}, std::pair{1, 13}}) {
    pi::ImageU8 im(w, h, 1);
    for (auto& px : im) px = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    for (const int k : {1, 3, 7, 15, 97}) {
      const auto fast_erode = pi::erode(im, k);
      const auto ref_erode = pi::erode_ref(im, k);
      ASSERT_EQ(fast_erode, ref_erode) << w << "x" << h << " k=" << k;
      const auto fast_dilate = pi::dilate(im, k);
      const auto ref_dilate = pi::dilate_ref(im, k);
      ASSERT_EQ(fast_dilate, ref_dilate) << w << "x" << h << " k=" << k;
    }
  }
}

// The fused envelope pair must be bit-identical to the two separate
// open/close calls across sizes and kernels (including the cloud filter's
// K=97 production shape).
TEST(Morphology, FusedEnvelopePairMatchesSeparateOpenClose) {
  polarice::util::Rng rng(4077);
  for (const auto [w, h] : {std::pair{31, 17}, std::pair{64, 64},
                            std::pair{5, 9}, std::pair{1, 13},
                            std::pair{128, 96}}) {
    pi::ImageU8 im(w, h, 1);
    for (auto& px : im) px = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    for (const int k : {1, 3, 7, 15, 97}) {
      const auto env = pi::morph_envelopes(im, k);
      ASSERT_EQ(env.open, pi::morph_open(im, k)) << w << "x" << h << " k=" << k;
      ASSERT_EQ(env.close, pi::morph_close(im, k))
          << w << "x" << h << " k=" << k;
    }
  }
}

TEST(Morphology, FusedEnvelopePairRejectsBadInputs) {
  const auto im = spot_image();
  EXPECT_THROW(pi::morph_envelopes(im, 2), std::invalid_argument);
  EXPECT_THROW(pi::morph_envelopes(im, 0), std::invalid_argument);
  pi::ImageU8 rgb(4, 4, 3, 0);
  EXPECT_THROW(pi::morph_envelopes(rgb, 3), std::invalid_argument);
}

TEST(Morphology, VanHerkRejectsBadKernels) {
  const auto im = spot_image();
  EXPECT_THROW(pi::erode(im, 2), std::invalid_argument);
  EXPECT_THROW(pi::dilate(im, 0), std::invalid_argument);
  EXPECT_THROW(pi::erode_ref(im, 4), std::invalid_argument);
}

TEST(Morphology, CloseFillsHole) {
  pi::ImageU8 im(9, 9, 1, 255);
  im.at(4, 4) = 0;  // pinhole
  const auto closed = pi::morph_close(im, 3);
  EXPECT_EQ(closed.at(4, 4), 255);
}

TEST(Morphology, DualityErodeDilate) {
  polarice::util::Rng rng(17);
  pi::ImageU8 im(24, 18, 1);
  for (auto& v : im) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  // erode(not x) == not(dilate x)
  EXPECT_EQ(pi::erode(pi::bitwise_not(im), 5),
            pi::bitwise_not(pi::dilate(im, 5)));
}

TEST(Morphology, Ksize1IsIdentity) {
  polarice::util::Rng rng(18);
  pi::ImageU8 im(12, 12, 1);
  for (auto& v : im) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  EXPECT_EQ(pi::erode(im, 1), im);
  EXPECT_EQ(pi::dilate(im, 1), im);
}

TEST(Morphology, OpeningIsIdempotent) {
  polarice::util::Rng rng(19);
  pi::ImageU8 im(20, 20, 1);
  for (auto& v : im) v = rng.bernoulli(0.4) ? 255 : 0;
  const auto once = pi::morph_open(im, 3);
  const auto twice = pi::morph_open(once, 3);
  EXPECT_EQ(once, twice);
}

TEST(Morphology, RejectsBadInputs) {
  pi::ImageU8 rgb(4, 4, 3);
  EXPECT_THROW(pi::erode(rgb, 3), std::invalid_argument);
  pi::ImageU8 gray(4, 4, 1);
  EXPECT_THROW(pi::dilate(gray, 4), std::invalid_argument);
}

TEST(NetpbmIo, PpmRoundTrip) {
  polarice::util::Rng rng(20);
  pi::ImageU8 im(31, 17, 3);
  for (auto& v : im) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const auto path = temp_file("polarice_roundtrip.ppm");
  pi::write_ppm(path.string(), im);
  const auto back = pi::read_ppm(path.string());
  EXPECT_EQ(back, im);
  fs::remove(path);
}

TEST(NetpbmIo, PgmRoundTrip) {
  polarice::util::Rng rng(21);
  pi::ImageU8 im(13, 29, 1);
  for (auto& v : im) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const auto path = temp_file("polarice_roundtrip.pgm");
  pi::write_pgm(path.string(), im);
  const auto back = pi::read_pgm(path.string());
  EXPECT_EQ(back, im);
  fs::remove(path);
}

TEST(NetpbmIo, WriteRejectsWrongChannelCount) {
  pi::ImageU8 gray(4, 4, 1);
  EXPECT_THROW(pi::write_ppm("/tmp/x.ppm", gray), std::invalid_argument);
  pi::ImageU8 rgb(4, 4, 3);
  EXPECT_THROW(pi::write_pgm("/tmp/x.pgm", rgb), std::invalid_argument);
}

TEST(NetpbmIo, ReadRejectsMissingFile) {
  EXPECT_THROW(pi::read_ppm("/nonexistent/path/img.ppm"), std::runtime_error);
}

TEST(NetpbmIo, ReadRejectsTruncatedPixelData) {
  const auto path = temp_file("polarice_truncated.ppm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "P6\n100 100\n255\n";
    out << "short";  // far fewer than 100*100*3 bytes
  }
  EXPECT_THROW(pi::read_ppm(path.string()), std::runtime_error);
  fs::remove(path);
}

TEST(NetpbmIo, ReadRejectsBadMagic) {
  const auto path = temp_file("polarice_badmagic.ppm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "P5\n2 2\n255\n";
    out.write("\0\0\0\0", 4);
  }
  EXPECT_THROW(pi::read_ppm(path.string()), std::runtime_error);
  fs::remove(path);
}

TEST(NetpbmIo, ReadHandlesComments) {
  const auto path = temp_file("polarice_comment.pgm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "P5\n# a comment line\n2 1\n255\n";
    out.write("\x07\x09", 2);
  }
  const auto im = pi::read_pgm(path.string());
  EXPECT_EQ(im.at(0, 0), 7);
  EXPECT_EQ(im.at(1, 0), 9);
  fs::remove(path);
}

TEST(NetpbmIo, ReadRejectsBadMaxval) {
  const auto path = temp_file("polarice_maxval.pgm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "P5\n2 1\n65535\n";
    out.write("\0\0\0\0", 4);
  }
  EXPECT_THROW(pi::read_pgm(path.string()), std::runtime_error);
  fs::remove(path);
}
