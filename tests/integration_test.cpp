// Cross-module integration and property tests that don't belong to any one
// substrate: HSV band partition properties, pool-invariance of the U-Net,
// end-to-end auto-label quality sweeps across seeds, weight determinism.

#include <gtest/gtest.h>

#include "core/autolabel.h"
#include "img/color.h"
#include "img/ops.h"
#include "metrics/metrics.h"
#include "nn/optimizer.h"
#include "nn/unet.h"
#include "par/thread_pool.h"
#include "s2/classes.h"
#include "s2/scene.h"
#include "util/rng.h"

namespace pc = polarice::core;
namespace ps = polarice::s2;
namespace pi = polarice::img;
namespace pn = polarice::nn;
namespace pt = polarice::tensor;

// Property: the paper's three HSV bands partition the whole V axis — every
// possible HSV pixel matches exactly one class range.
TEST(PaperThresholds, BandsPartitionTheColorSpace) {
  for (int v = 0; v < 256; v += 1) {
    for (int s = 0; s < 256; s += 51) {
      for (int h = 0; h <= 180; h += 45) {
        int matches = 0;
        for (const auto& range : ps::kPaperHsvRanges) {
          const bool in = h >= range.lower[0] && h <= range.upper[0] &&
                          s >= range.lower[1] && s <= range.upper[1] &&
                          v >= range.lower[2] && v <= range.upper[2];
          matches += in;
        }
        ASSERT_EQ(matches, 1) << "h=" << h << " s=" << s << " v=" << v;
      }
    }
  }
}

// Property: in_range with the paper thresholds agrees with direct V-band
// classification on arbitrary images.
TEST(PaperThresholds, InRangeMatchesVBandClassification) {
  polarice::util::Rng rng(41);
  pi::ImageU8 hsv(64, 64, 3);
  for (auto& px : hsv) px = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  // Clamp H to the encodable range.
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      hsv.at(x, y, 0) = static_cast<std::uint8_t>(hsv.at(x, y, 0) % 181);
    }
  }
  for (int cls = 0; cls < ps::kNumClasses; ++cls) {
    const auto mask = pi::in_range(hsv, ps::kPaperHsvRanges[cls].lower,
                                   ps::kPaperHsvRanges[cls].upper);
    for (int y = 0; y < 64; ++y) {
      for (int x = 0; x < 64; ++x) {
        const int v = hsv.at(x, y, 2);
        const bool want = cls == 0 ? v <= 30 : cls == 1 ? v >= 31 && v <= 204
                                                        : v >= 205;
        ASSERT_EQ(mask.at(x, y) != 0, want) << "cls " << cls;
      }
    }
  }
}

// Property sweep: auto-labeling on clean scenes is near-perfect for many
// seeds, and the filter never makes clean scenes materially worse.
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, CleanSceneAutolabelQuality) {
  ps::SceneConfig sc;
  sc.width = sc.height = 192;
  sc.seed = GetParam();
  sc.cloudy = false;
  const auto scene = ps::SceneGenerator(sc).generate();

  pc::AutoLabelConfig raw_cfg;
  raw_cfg.apply_filter = false;
  std::vector<int> truth;
  for (const auto v : scene.labels) truth.push_back(v);

  const auto raw = pc::AutoLabeler(raw_cfg).label(scene.rgb);
  std::vector<int> raw_pred;
  for (const auto v : raw.labels) raw_pred.push_back(v);
  EXPECT_GT(polarice::metrics::pixel_accuracy(truth, raw_pred), 0.999);

  const auto filtered = pc::AutoLabeler().label(scene.rgb);
  std::vector<int> filt_pred;
  for (const auto v : filtered.labels) filt_pred.push_back(v);
  EXPECT_GT(polarice::metrics::pixel_accuracy(truth, filt_pred), 0.97);
}

TEST_P(SeedSweep, CloudySceneFilterAlwaysHelps) {
  ps::SceneConfig sc;
  sc.width = sc.height = 192;
  sc.seed = GetParam();
  sc.cloudy = true;
  const auto scene = ps::SceneGenerator(sc).generate();
  std::vector<int> truth;
  for (const auto v : scene.labels) truth.push_back(v);

  pc::AutoLabelConfig raw_cfg;
  raw_cfg.apply_filter = false;
  const auto raw = pc::AutoLabeler(raw_cfg).label(scene.rgb);
  const auto filtered = pc::AutoLabeler().label(scene.rgb);
  std::vector<int> raw_pred, filt_pred;
  for (const auto v : raw.labels) raw_pred.push_back(v);
  for (const auto v : filtered.labels) filt_pred.push_back(v);
  const double raw_acc = polarice::metrics::pixel_accuracy(truth, raw_pred);
  const double filt_acc = polarice::metrics::pixel_accuracy(truth, filt_pred);
  EXPECT_GT(filt_acc, raw_acc) << "seed " << GetParam();
  EXPECT_GT(filt_acc, 0.93) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(101, 202, 303, 404, 505));

// The intra-op pool must not change U-Net outputs (GEMM column partitioning
// preserves summation order).
TEST(UNetDeterminism, PooledForwardMatchesSequential) {
  pn::UNetConfig cfg;
  cfg.depth = 2;
  cfg.base_channels = 8;
  cfg.use_dropout = false;
  pn::UNet model(cfg);

  polarice::util::Rng rng(17);
  pt::Tensor x({2, 3, 32, 32});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform_f();

  pt::Tensor seq_logits;
  model.set_pool(nullptr);
  model.forward(x, seq_logits, false);

  polarice::par::ThreadPool pool(8);
  pt::Tensor par_logits;
  model.set_pool(&pool);
  model.forward(x, par_logits, false);

  ASSERT_TRUE(seq_logits.same_shape(par_logits));
  for (std::int64_t i = 0; i < seq_logits.numel(); ++i) {
    ASSERT_EQ(seq_logits[i], par_logits[i]) << "index " << i;
  }
}

// Two UNets with the same seed must agree after identical training steps
// (full determinism of init + forward + backward + Adam).
TEST(UNetDeterminism, TrainingIsReproducible) {
  const auto make_and_train = [] {
    pn::UNetConfig cfg;
    cfg.depth = 1;
    cfg.base_channels = 4;
    cfg.use_dropout = true;  // dropout stream must be reproducible too
    cfg.dropout_rate = 0.2f;
    auto model = std::make_unique<pn::UNet>(cfg);
    polarice::util::Rng rng(3);
    pt::Tensor x({2, 3, 8, 8});
    for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform_f();
    std::vector<int> targets(2 * 64);
    for (std::size_t i = 0; i < targets.size(); ++i) targets[i] = i % 3;
    pn::Adam opt(model->params(), 1e-3f);
    pt::Tensor logits, probs, dlogits;
    for (int step = 0; step < 5; ++step) {
      opt.zero_grad();
      model->forward(x, logits, true);
      pt::softmax_cross_entropy(logits, targets, probs, dlogits);
      model->backward(dlogits);
      opt.step();
    }
    return model;
  };
  auto a = make_and_train();
  auto b = make_and_train();
  auto pa = a->params();
  auto pb = b->params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t j = 0; j < pa[i].value->numel(); ++j) {
      ASSERT_EQ((*pa[i].value)[j], (*pb[i].value)[j])
          << pa[i].name << "[" << j << "]";
    }
  }
}

// Colorize/labels round trip composed with the auto-labeler output.
TEST(LabelRoundTrip, AutolabelColorizedDecodesToSameIds) {
  ps::SceneConfig sc;
  sc.width = sc.height = 96;
  sc.seed = 9;
  sc.cloudy = true;
  const auto scene = ps::SceneGenerator(sc).generate();
  const auto result = pc::AutoLabeler().label(scene.rgb);
  EXPECT_EQ(ps::labels_from_colors(result.colorized), result.labels);
}
