// InferenceSession serving semantics: concurrent classify_scene calls must
// be bit-identical to the serial InferenceWorkflow, partial scenes are
// padded (or rejected), batching never changes results, and cancellation
// propagates mid-pipeline.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/inference_session.h"
#include "core/stages.h"
#include "core/workflow.h"
#include "img/ops.h"
#include "nn/unet.h"
#include "par/context.h"
#include "par/thread_pool.h"
#include "s2/scene.h"

namespace pc = polarice::core;
namespace pp = polarice::par;
namespace ps = polarice::s2;
namespace pn = polarice::nn;
namespace pi = polarice::img;

namespace {

pn::UNet make_model() {
  pn::UNetConfig cfg;
  cfg.depth = 2;
  cfg.base_channels = 6;
  cfg.use_dropout = false;
  cfg.seed = 88;
  // Untrained weights: deterministic init is all bit-identity tests need.
  return pn::UNet(cfg);
}

pi::ImageU8 make_scene(std::uint64_t seed, int size = 128) {
  ps::SceneConfig sc;
  sc.width = sc.height = size;
  sc.seed = seed;
  sc.cloudy = true;
  return ps::SceneGenerator(sc).generate().rgb;
}

}  // namespace

TEST(InferenceSession, ConcurrentCallsMatchSerialWorkflow) {
  pn::UNet model = make_model();
  const pc::CloudFilterConfig filter_cfg;

  // Serial references through the Fig 9 workflow (one scene at a time).
  constexpr int kScenes = 6;
  std::vector<pi::ImageU8> scenes, references;
  pc::InferenceWorkflow workflow(model, filter_cfg, 64);
  for (int i = 0; i < kScenes; ++i) {
    scenes.push_back(make_scene(9000 + static_cast<std::uint64_t>(i)));
    references.push_back(workflow.classify_scene(scenes.back()));
  }

  // >= 4 concurrent classifications through the session (2 replicas force
  // real lease contention), batched inference enabled.
  pc::InferenceSessionConfig session_cfg;
  session_cfg.tile_size = 64;
  session_cfg.replicas = 2;
  session_cfg.batch_tiles = 3;  // deliberately not a divisor of 4 tiles
  session_cfg.filter = filter_cfg;
  pc::InferenceSession session(model, session_cfg);

  std::vector<pi::ImageU8> results(kScenes);
  {
    std::vector<std::jthread> callers;
    for (int i = 0; i < kScenes; ++i) {
      callers.emplace_back(
          [&, i] { results[i] = session.classify_scene(scenes[i]); });
    }
  }
  for (int i = 0; i < kScenes; ++i) {
    EXPECT_EQ(results[i], references[i]) << "scene " << i;
  }
  const auto stats = session.stats();
  EXPECT_EQ(stats.scenes, static_cast<std::size_t>(kScenes));
  EXPECT_EQ(stats.tiles, static_cast<std::size_t>(kScenes) * 4);
  EXPECT_GT(stats.busy_seconds, 0.0);
  // Lease telemetry: 6 callers over 2 replicas can never hold more than 2
  // concurrent leases, and waiting time is well-defined (>= 0).
  EXPECT_GE(stats.peak_leases, 1u);
  EXPECT_LE(stats.peak_leases, 2u);
  EXPECT_GE(stats.wait_seconds, 0.0);
}

TEST(InferenceSession, WaitTelemetryCountsBlockedCallers) {
  pn::UNet model = make_model();
  pc::InferenceSessionConfig cfg;
  cfg.tile_size = 64;
  cfg.replicas = 1;  // force every concurrent caller to queue
  pc::InferenceSession session(model, cfg);

  const auto scene_a = make_scene(11);
  const auto scene_b = make_scene(12);
  std::atomic<int> started{0};
  {
    std::vector<std::jthread> callers;
    for (int i = 0; i < 3; ++i) {
      callers.emplace_back([&, i] {
        started.fetch_add(1);
        (void)session.classify_scene(i % 2 == 0 ? scene_a : scene_b);
      });
    }
  }
  EXPECT_EQ(started.load(), 3);
  const auto stats = session.stats();
  EXPECT_EQ(stats.scenes, 3u);
  EXPECT_EQ(stats.peak_leases, 1u);  // single replica: leases never overlap
  EXPECT_GE(stats.wait_seconds, 0.0);
}

TEST(InferenceSession, BatchSizeNeverChangesResults) {
  pn::UNet model = make_model();
  const auto scene = make_scene(77);
  pc::InferenceSessionConfig one;
  one.tile_size = 64;
  one.replicas = 1;
  one.batch_tiles = 1;
  pc::InferenceSessionConfig many = one;
  many.batch_tiles = 4;
  pc::InferenceSession session_one(model, one);
  pc::InferenceSession session_many(model, many);
  EXPECT_EQ(session_one.classify_scene(scene),
            session_many.classify_scene(scene));
}

TEST(InferenceSession, PadsScenesThatAreNotTileMultiples) {
  pn::UNet model = make_model();
  const auto full = make_scene(55, 128);
  // Crop to a ragged 100x72 — not a multiple of 64 on either axis.
  const auto ragged = pi::crop(full, 0, 0, 100, 72);

  pc::InferenceSessionConfig cfg;
  cfg.tile_size = 64;
  cfg.replicas = 1;
  pc::InferenceSession session(model, cfg);
  const auto labels = session.classify_scene(ragged);
  EXPECT_EQ(labels.width(), 100);
  EXPECT_EQ(labels.height(), 72);
  EXPECT_EQ(labels.channels(), 1);

  // With padding disabled the session matches InferenceWorkflow's contract.
  cfg.pad_partial_tiles = false;
  pc::InferenceSession strict(model, cfg);
  EXPECT_THROW(strict.classify_scene(ragged), std::invalid_argument);
  pc::InferenceWorkflow workflow(model, {}, 64);
  EXPECT_THROW(workflow.classify_scene(ragged), std::invalid_argument);

  // Geometry guards unchanged from the seed API.
  EXPECT_THROW(pc::InferenceSession(model, [] {
                 pc::InferenceSessionConfig bad;
                 bad.tile_size = 30;  // 30 % 4 != 0
                 return bad;
               }()),
               std::invalid_argument);
  pi::ImageU8 gray(64, 64, 1);
  EXPECT_THROW(session.classify_scene(gray), std::invalid_argument);
}

TEST(InferenceSession, CancellationPropagatesMidPipeline) {
  pn::UNet model = make_model();
  const auto scene = make_scene(66);
  pc::InferenceSessionConfig cfg;
  cfg.tile_size = 64;
  cfg.replicas = 1;
  cfg.batch_tiles = 1;
  pc::InferenceSession session(model, cfg);

  // Pre-cancelled context: rejected before any work.
  const pp::ExecutionContext cancelled;
  cancelled.request_cancel();
  EXPECT_THROW(session.classify_scene(scene, cancelled),
               pp::OperationCancelled);

  // Cancel after the first tile batch: the progress sink fires between
  // batches, so the remaining tiles are abandoned.
  const pp::ExecutionContext ctx;
  ctx.set_progress_sink([&](const pp::ProgressEvent& event) {
    if (std::string(event.stage) == "tile_infer") ctx.request_cancel();
  });
  EXPECT_THROW(session.classify_scene(scene, ctx), pp::OperationCancelled);
  // The session remains serviceable after a cancelled call (the replica
  // lease was released).
  EXPECT_NO_THROW(session.classify_scene(scene));
}
