// Checkpoint durability tests: encode/decode roundtrip, exhaustive
// bit-flip and truncation fuzzing (every rejection must be a typed
// CheckpointError, never UB or a half-loaded state), staleness semantics,
// and the CheckpointStore's write/rollback/retention/sweep behavior.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ddp/checkpoint.h"

namespace pd = polarice::ddp;
namespace fs = std::filesystem;

namespace {

constexpr std::uint64_t kFingerprint = 0x1234'5678'9abc'def0ULL;

pd::TrainCheckpoint sample_checkpoint() {
  pd::TrainCheckpoint ck;
  ck.epoch = 3;
  ck.step = 5;
  ck.global_step = 29;
  ck.adam_t = 29;
  ck.params = {1.0f, -2.5f, 0.125f, 3e7f, -0.0f};
  ck.adam_m = {0.1f, 0.2f, 0.3f, 0.4f, 0.5f};
  ck.adam_v = {1e-8f, 2e-8f, 3e-8f, 4e-8f, 5e-8f};
  return ck;
}

/// Fresh scratch directory per test.
std::string scratch_dir(const std::string& name) {
  const auto dir = fs::temp_directory_path() / ("polarice-ckpt-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

}  // namespace

TEST(Checkpoint, EncodeDecodeRoundtrip) {
  const auto ck = sample_checkpoint();
  const auto bytes = pd::encode_checkpoint(ck, kFingerprint);
  const auto back = pd::decode_checkpoint(bytes.data(), bytes.size(),
                                          kFingerprint);
  EXPECT_EQ(back, ck);
}

TEST(Checkpoint, RoundtripsEmptyState) {
  pd::TrainCheckpoint ck;  // zero cursor, no tensors
  const auto bytes = pd::encode_checkpoint(ck, kFingerprint);
  EXPECT_EQ(pd::decode_checkpoint(bytes.data(), bytes.size(), kFingerprint),
            ck);
}

// Every single-bit flip anywhere in the image must surface as a typed
// CheckpointError — corrupt for payload/structure damage, stale for the
// header fields (version, fingerprint) that are deliberately outside the
// payload checksum. No flip may decode successfully: every byte of the
// image is load-bearing.
TEST(Checkpoint, EveryBitFlipIsTypedRejection) {
  const auto ck = sample_checkpoint();
  const auto clean = pd::encode_checkpoint(ck, kFingerprint);
  for (std::size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto evil = clean;
      evil[byte] = static_cast<std::uint8_t>(evil[byte] ^ (1u << bit));
      EXPECT_THROW(
          (void)pd::decode_checkpoint(evil.data(), evil.size(), kFingerprint),
          pd::CheckpointError)
          << "byte " << byte << " bit " << bit;
    }
  }
}

// Every truncation length (including 0) must be CheckpointCorrupt.
TEST(Checkpoint, EveryTruncationIsCorrupt) {
  const auto clean = pd::encode_checkpoint(sample_checkpoint(), kFingerprint);
  for (std::size_t n = 0; n < clean.size(); ++n) {
    EXPECT_THROW((void)pd::decode_checkpoint(clean.data(), n, kFingerprint),
                 pd::CheckpointCorrupt)
        << "truncated to " << n;
  }
}

TEST(Checkpoint, TrailingGarbageIsCorrupt) {
  auto bytes = pd::encode_checkpoint(sample_checkpoint(), kFingerprint);
  bytes.push_back(0xAB);
  EXPECT_THROW(
      (void)pd::decode_checkpoint(bytes.data(), bytes.size(), kFingerprint),
      pd::CheckpointCorrupt);
}

TEST(Checkpoint, ForeignFingerprintIsStale) {
  const auto bytes = pd::encode_checkpoint(sample_checkpoint(), kFingerprint);
  EXPECT_THROW(
      (void)pd::decode_checkpoint(bytes.data(), bytes.size(), kFingerprint ^ 1),
      pd::CheckpointStale);
}

TEST(CheckpointStore, WriteThenLoadLatest) {
  pd::CheckpointStore store({scratch_dir("roundtrip"), kFingerprint, 3});
  auto ck = sample_checkpoint();
  store.write(ck);
  ck.global_step = 37;
  ck.params[0] = 9.0f;
  store.write(ck);

  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, ck);  // the newer one
  EXPECT_EQ(store.stats().written, 2u);
  EXPECT_EQ(store.stats().corrupt, 0u);
}

TEST(CheckpointStore, EmptyDirLoadsNothing) {
  pd::CheckpointStore store({scratch_dir("empty"), kFingerprint, 3});
  EXPECT_FALSE(store.load_latest().has_value());
}

TEST(CheckpointStore, RetentionKeepsNewest) {
  const auto dir = scratch_dir("retain");
  pd::CheckpointStore store({dir, kFingerprint, 2});
  auto ck = sample_checkpoint();
  for (int i = 1; i <= 5; ++i) {
    ck.global_step = i;
    store.write(ck);
  }
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u);
  EXPECT_EQ(store.stats().pruned, 3u);
  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->global_step, 5);
}

// A corrupted newest file must be skipped (and removed) in favor of the
// newest survivor — the rollback path after a crash mid-write that somehow
// still produced a damaged file.
TEST(CheckpointStore, CorruptNewestFallsBackToSurvivor) {
  const auto dir = scratch_dir("fallback");
  pd::CheckpointStore store({dir, kFingerprint, 4});
  auto ck = sample_checkpoint();
  ck.global_step = 10;
  store.write(ck);
  ck.global_step = 20;
  ck.params[1] = -7.0f;
  store.write(ck);

  // Corrupt the newest file in place.
  std::string newest;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const auto name = entry.path().filename().string();
    if (newest.empty() || name > fs::path(newest).filename().string()) {
      newest = entry.path().string();
    }
  }
  ASSERT_FALSE(newest.empty());
  {
    std::fstream f(newest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(60);
    char zap = 0x5A;
    f.write(&zap, 1);
  }

  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->global_step, 10);
  EXPECT_EQ(store.stats().corrupt, 1u);
  EXPECT_FALSE(fs::exists(newest)) << "corrupt file must be unlinked";
}

// Checkpoints written under a different training fingerprint must be
// rejected as stale, not resumed.
TEST(CheckpointStore, ForeignFingerprintFilesAreStale) {
  const auto dir = scratch_dir("stale");
  {
    pd::CheckpointStore other({dir, kFingerprint ^ 0xFF, 3});
    auto ck = sample_checkpoint();
    ck.global_step = 50;
    other.write(ck);
  }
  pd::CheckpointStore store({dir, kFingerprint, 3});
  EXPECT_FALSE(store.load_latest().has_value());
  EXPECT_EQ(store.stats().stale, 1u);
}

TEST(CheckpointStore, SweepsTmpLeftoversOnOpen) {
  const auto dir = scratch_dir("sweep");
  write_file(dir + "/ckpt-00000000000000000007.ice.tmp", {1, 2, 3});
  pd::CheckpointStore store({dir, kFingerprint, 3});
  EXPECT_FALSE(fs::exists(dir + "/ckpt-00000000000000000007.ice.tmp"));
  EXPECT_FALSE(store.load_latest().has_value());
}

TEST(CheckpointStore, IgnoresUnrelatedFiles) {
  const auto dir = scratch_dir("unrelated");
  write_file(dir + "/README", {'h', 'i'});
  pd::CheckpointStore store({dir, kFingerprint, 3});
  EXPECT_FALSE(store.load_latest().has_value());
  EXPECT_TRUE(fs::exists(dir + "/README"));
}

TEST(CheckpointStore, ValidatesConfig) {
  EXPECT_THROW(pd::CheckpointStore({"", kFingerprint, 3}),
               std::invalid_argument);
  EXPECT_THROW(pd::CheckpointStore({scratch_dir("cfg"), kFingerprint, 0}),
               std::invalid_argument);
}
