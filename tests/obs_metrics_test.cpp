// obs/metrics.h — the serving tier's metrics registry.
//
// The contract under test: counters lose nothing under concurrent hammering
// (run under TSAN in CI), histogram boundary values land in the bucket they
// bound, snapshots taken mid-increment are internally consistent and
// monotonic, and render_text / parse_text are exact inverses — the scrape
// path depends on a worker's exposition rebuilding bit-for-bit into the
// same samples on the far side.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace {

using namespace polarice::obs;

#if POLARICE_METRICS

TEST(ObsMetrics, CounterConcurrentIncrementsAreExact) {
  Registry registry;
  Counter& counter = registry.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto snapshot = registry.snapshot();
  const auto* sample = snapshot.find_counter("hits");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsMetrics, SnapshotDuringIncrementsIsMonotonicAndBounded) {
  Registry registry;
  Counter& counter = registry.counter("inflight_work");
  constexpr std::uint64_t kTotal = 200000;

  std::thread writer([&counter] {
    for (std::uint64_t i = 0; i < kTotal; ++i) counter.add();
  });

  // Successive snapshots race the writer: each must be between the last
  // observed value and the final total — a torn or decreasing read would
  // betray a non-atomic fold.
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const auto snapshot = registry.snapshot();
    const auto* sample = snapshot.find_counter("inflight_work");
    ASSERT_NE(sample, nullptr);
    EXPECT_GE(sample->value, last);
    EXPECT_LE(sample->value, kTotal);
    last = sample->value;
  }
  writer.join();
  EXPECT_EQ(registry.snapshot().find_counter("inflight_work")->value, kTotal);
}

TEST(ObsMetrics, HistogramBoundaryValuesLandInBoundingBucket) {
  Registry registry;
  const std::vector<double> bounds{0.001, 0.01, 0.1, 1.0};
  Histogram& histogram = registry.histogram("lat", bounds);

  // bounds are *inclusive* upper bounds: observe(bounds[i]) must count in
  // bucket i, not i+1 — the exposition's le="..." semantics.
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_EQ(histogram.bucket_index(bounds[i]), i) << bounds[i];
    histogram.observe(bounds[i]);
  }
  EXPECT_EQ(histogram.bucket_index(bounds.back() + 1.0), bounds.size());
  histogram.observe(bounds.back() + 1.0);  // +Inf bucket
  EXPECT_EQ(histogram.bucket_index(0.0), 0u);

  const auto snapshot = registry.snapshot();
  const auto* sample = snapshot.find_histogram("lat");
  ASSERT_NE(sample, nullptr);
  ASSERT_EQ(sample->counts.size(), bounds.size() + 1);
  for (std::size_t i = 0; i <= bounds.size(); ++i) {
    EXPECT_EQ(sample->counts[i], 1u) << "bucket " << i;
  }
  EXPECT_EQ(sample->count, bounds.size() + 1);
}

TEST(ObsMetrics, HistogramConcurrentObservationsLoseNothing) {
  Registry registry;
  Histogram& histogram = registry.histogram("concurrent_lat");
  constexpr int kThreads = 6;
  constexpr int kPerThread = 20000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.observe(1e-4 * (1 + (t + i) % 7));
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto snapshot = registry.snapshot();
  const auto* sample = snapshot.find_histogram("concurrent_lat");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto c : sample->counts) bucket_total += c;
  EXPECT_EQ(bucket_total, sample->count);
}

TEST(ObsMetrics, PercentileInterpolatesSanely) {
  Registry registry;
  Histogram& histogram = registry.histogram("pctl");
  // 1000 observations uniform on (0, 100ms]: p50 ~ 50ms, p99 ~ 99ms.
  for (int i = 1; i <= 1000; ++i) histogram.observe(i * 1e-4);

  const auto snapshot = registry.snapshot();
  const auto* sample = snapshot.find_histogram("pctl");
  ASSERT_NE(sample, nullptr);
  const double p50 = sample->percentile(0.50);
  const double p99 = sample->percentile(0.99);
  // The ladder's 1.25 factor bounds the estimate to ~±25% of truth.
  EXPECT_GT(p50, 0.035);
  EXPECT_LT(p50, 0.070);
  EXPECT_GT(p99, 0.075);
  EXPECT_LT(p99, 0.130);
  EXPECT_LE(p50, p99);
  EXPECT_DOUBLE_EQ(HistogramSample{}.percentile(0.5), 0.0);
}

TEST(ObsMetrics, LatencyLadderIsStrictlyAscending) {
  const auto& bounds = latency_buckets_seconds();
  ASSERT_GT(bounds.size(), 60u);
  EXPECT_NEAR(bounds.front(), 1e-5, 1e-9);
  EXPECT_GT(bounds.back(), 100.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]) << i;
  }
}

TEST(ObsMetrics, InstrumentsInternByName) {
  Registry registry;
  EXPECT_EQ(&registry.counter("a"), &registry.counter("a"));
  EXPECT_NE(&registry.counter("a"), &registry.counter("b"));
  EXPECT_EQ(&registry.histogram("h"), &registry.histogram("h"));
  // Re-interning an existing histogram with different bounds is a bug at
  // the call site, not a silent second instrument.
  EXPECT_THROW((void)registry.histogram("h", {1.0, 2.0}),
               std::invalid_argument);
}

TEST(ObsMetrics, RenderParseRoundTripIsExact) {
  Registry registry;
  registry.counter("requests_total").add(12345);
  registry.gauge("resident_bytes").set(1.5e9);
  Histogram& histogram = registry.histogram("e2e_seconds");
  for (int i = 0; i < 500; ++i) histogram.observe(1e-3 * (1 + i % 40));

  const Snapshot original = registry.snapshot();
  const Snapshot parsed = parse_text(render_text(original));

  ASSERT_EQ(parsed.counters.size(), original.counters.size());
  EXPECT_EQ(parsed.find_counter("requests_total")->value, 12345u);
  ASSERT_NE(parsed.find_gauge("resident_bytes"), nullptr);
  EXPECT_DOUBLE_EQ(parsed.find_gauge("resident_bytes")->value, 1.5e9);

  const auto* h0 = original.find_histogram("e2e_seconds");
  const auto* h1 = parsed.find_histogram("e2e_seconds");
  ASSERT_NE(h1, nullptr);
  EXPECT_EQ(h1->count, h0->count);
  EXPECT_EQ(h1->counts, h0->counts);
  ASSERT_EQ(h1->bounds.size(), h0->bounds.size());
  for (std::size_t i = 0; i < h0->bounds.size(); ++i) {
    // Bounds travel as printed decimals; they must survive to the same
    // double so bucket_index agrees on both sides of the scrape.
    EXPECT_DOUBLE_EQ(h1->bounds[i], h0->bounds[i]) << i;
  }
  EXPECT_DOUBLE_EQ(h1->percentile(0.99), h0->percentile(0.99));
}

TEST(ObsMetrics, ParseRejectsGarbage) {
  EXPECT_THROW((void)parse_text("this is not an exposition\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_text("lat_bucket{le=\"oops\"} 3\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_text("lat_bucket{le=\"0.5\"} not_a_number\n"),
               std::runtime_error);
  // Cumulative bucket counts that decrease cannot come from a real
  // histogram.
  EXPECT_THROW(
      (void)parse_text("lat_bucket{le=\"0.5\"} 5\n"
                       "lat_bucket{le=\"1\"} 3\n"
                       "lat_bucket{le=\"+Inf\"} 5\n"
                       "lat_sum 1.0\nlat_count 5\n"),
      std::runtime_error);
  EXPECT_TRUE(parse_text("").counters.empty());
}

TEST(ObsMetrics, CallbackGaugesSampleAtSnapshotAndSumDuplicates) {
  Registry registry;
  double a = 3.0;
  {
    GaugeHandle handle_a =
        registry.register_gauge("leases", [&a] { return a; });
    GaugeHandle handle_b = registry.register_gauge("leases", [] { return 2.0; });

    const auto* sample = registry.snapshot().find_gauge("leases");
    ASSERT_NE(sample, nullptr);
    EXPECT_DOUBLE_EQ(sample->value, 5.0);  // duplicates sum

    a = 10.0;  // sampled at snapshot time, not registration time
    EXPECT_DOUBLE_EQ(registry.snapshot().find_gauge("leases")->value, 12.0);
  }
  // Both handles out of scope: the gauge is gone, not stuck at its last
  // value.
  EXPECT_EQ(registry.snapshot().find_gauge("leases"), nullptr);
}

TEST(ObsMetrics, HistogramDeltaScopesAWindow) {
  Registry registry;
  Histogram& histogram = registry.histogram("windowed");
  histogram.observe(0.001);
  histogram.observe(0.002);
  const auto before = registry.snapshot();

  histogram.observe(0.004);
  histogram.observe(0.004);
  histogram.observe(0.008);
  const auto after = registry.snapshot();

  const HistogramSample delta = histogram_delta(
      *after.find_histogram("windowed"), *before.find_histogram("windowed"));
  EXPECT_EQ(delta.count, 3u);
  EXPECT_NEAR(delta.sum, 0.016, 1e-12);
  std::uint64_t total = 0;
  for (const auto c : delta.counts) total += c;
  EXPECT_EQ(total, 3u);
}

#else  // POLARICE_METRICS == 0

TEST(ObsMetrics, CompiledOutMutatorsAreNoOps) {
  Registry registry;
  registry.counter("c").add(5);
  EXPECT_EQ(registry.counter("c").value(), 0u);
  registry.histogram("h").observe(1.0);
  EXPECT_EQ(registry.snapshot().find_histogram("h")->count, 0u);
}

#endif  // POLARICE_METRICS

}  // namespace
