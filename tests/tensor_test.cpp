// Tensor container + GEMM kernel tests (reference-checked) and shape/guard
// behaviour.

#include <gtest/gtest.h>

#include <vector>

#include "par/parallel_for.h"
#include "par/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace pt = polarice::tensor;
namespace pp = polarice::par;

namespace {
std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  polarice::util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

// Naive reference: C = A(MxK) * B(KxN), both row-major, optional transposes
// interpreted as in gemm.h.
std::vector<float> ref_gemm(char mode, int m, int n, int k,
                            const std::vector<float>& a,
                            const std::vector<float>& b) {
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) {
        float av = 0, bv = 0;
        switch (mode) {
          case 'n': av = a[i * k + p]; bv = b[p * n + j]; break;  // NN
          case 't': av = a[i * k + p]; bv = b[j * k + p]; break;  // NT
          case 'T': av = a[p * m + i]; bv = b[p * n + j]; break;  // TN
        }
        acc += double(av) * bv;
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

void expect_close(const std::vector<float>& got, const std::vector<float>& want,
                   float tol) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], tol) << "index " << i;
  }
}
}  // namespace

TEST(Tensor, ConstructsZeroInitialized) {
  pt::Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.numel(), 120);
  EXPECT_EQ(t.ndim(), 4);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, RejectsBadShapes) {
  EXPECT_THROW(pt::Tensor(std::vector<int>{}), std::invalid_argument);
  EXPECT_THROW(pt::Tensor({2, 0, 3}), std::invalid_argument);
  EXPECT_THROW(pt::Tensor({-1}), std::invalid_argument);
}

TEST(Tensor, FromValuesAndReshape) {
  auto t = pt::Tensor::from_values({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_FLOAT_EQ(t[5], 6.0f);
  const auto r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_FLOAT_EQ(r[5], 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
  EXPECT_THROW(pt::Tensor::from_values({2, 2}, {1.0f}), std::invalid_argument);
}

TEST(Tensor, At4MatchesLinearIndexing) {
  pt::Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 42.0f;
  EXPECT_FLOAT_EQ(t[1 * 60 + 2 * 20 + 3 * 5 + 4], 42.0f);
}

TEST(Tensor, ArithmeticHelpers) {
  auto a = pt::Tensor::from_values({3}, {1, 2, 3});
  const auto b = pt::Tensor::from_values({3}, {10, 20, 30});
  a.add_(b);
  EXPECT_FLOAT_EQ(a[2], 33.0f);
  a.scale_(0.5f);
  EXPECT_FLOAT_EQ(a[0], 5.5f);
  a.axpy_(2.0f, b);
  EXPECT_FLOAT_EQ(a[1], 51.0f);
  EXPECT_FLOAT_EQ(a.sum(), 25.5f + 51.0f + 76.5f);
  EXPECT_FLOAT_EQ(a.max_abs(), 76.5f);
}

TEST(Tensor, ShapeMismatchThrows) {
  pt::Tensor a({2, 2}), b({4});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
  EXPECT_THROW(a.axpy_(1.0f, b), std::invalid_argument);
}

TEST(Tensor, DetectsNonFinite) {
  auto t = pt::Tensor::from_values({2}, {1.0f, 2.0f});
  EXPECT_FALSE(t.has_non_finite());
  t[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(t.has_non_finite());
  t[1] = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(t.has_non_finite());
}

// Property sweep: all three GEMM variants match the reference for a grid of
// shapes, with and without a thread pool.
class GemmSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(GemmSweep, MatchesReference) {
  const auto [m, n, k, use_pool] = GetParam();
  pp::ThreadPool pool(4);
  pp::ThreadPool* p = use_pool ? &pool : nullptr;

  const auto a_nn = random_vec(static_cast<std::size_t>(m) * k, 1);
  const auto b_nn = random_vec(static_cast<std::size_t>(k) * n, 2);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 7.0f);
  pt::gemm_nn(m, n, k, a_nn.data(), b_nn.data(), c.data(), false, p);
  expect_close(c, ref_gemm('n', m, n, k, a_nn, b_nn), 1e-4f);

  const auto b_nt = random_vec(static_cast<std::size_t>(n) * k, 3);
  pt::gemm_nt(m, n, k, a_nn.data(), b_nt.data(), c.data(), false, p);
  expect_close(c, ref_gemm('t', m, n, k, a_nn, b_nt), 1e-4f);

  const auto a_tn = random_vec(static_cast<std::size_t>(k) * m, 4);
  pt::gemm_tn(m, n, k, a_tn.data(), b_nn.data(), c.data(), false, p);
  expect_close(c, ref_gemm('T', m, n, k, a_tn, b_nn), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Combine(::testing::Values(1, 3, 8, 17),
                       ::testing::Values(1, 5, 64, 200),
                       ::testing::Values(1, 9, 72),
                       ::testing::Bool()));

TEST(Gemm, AccumulateAddsOntoExistingC) {
  const int m = 4, n = 6, k = 5;
  const auto a = random_vec(m * k, 10);
  const auto b = random_vec(k * n, 11);
  std::vector<float> c(m * n, 1.0f);
  pt::gemm_nn(m, n, k, a.data(), b.data(), c.data(), true, nullptr);
  auto want = ref_gemm('n', m, n, k, a, b);
  for (auto& w : want) w += 1.0f;
  expect_close(c, want, 1e-4f);
}

TEST(Gemm, PoolAndSequentialBitwiseIdentical) {
  // Chunked column partitioning must not change the summation order within a
  // row, so pooled and sequential runs agree exactly.
  const int m = 8, n = 300, k = 40;
  const auto a = random_vec(m * k, 20);
  const auto b = random_vec(k * n, 21);
  std::vector<float> c_seq(m * n), c_par(m * n);
  pt::gemm_nn(m, n, k, a.data(), b.data(), c_seq.data(), false, nullptr);
  pp::ThreadPool pool(8);
  pt::gemm_nn(m, n, k, a.data(), b.data(), c_par.data(), false, &pool);
  EXPECT_EQ(c_seq, c_par);
}

// Satellite coverage for the blocked/packed kernels: odd shapes that exercise
// edge tiles in both dimensions and K spans crossing multiple k-panels
// (kKC = 256), with accumulate on/off and pool on/off, validated against the
// scalar reference kernels within 1e-4 relative tolerance.
class GemmBlockedSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool, bool>> {};

TEST_P(GemmBlockedSweep, MatchesScalarReference) {
  const auto [m, n, k, accumulate, use_pool] = GetParam();
  pp::ThreadPool pool(4);
  pp::ThreadPool* p = use_pool ? &pool : nullptr;
  const auto expect_rel_close = [](const std::vector<float>& got,
                                   const std::vector<float>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      const float tol = 1e-4f * std::max(1.0f, std::fabs(want[i]));
      ASSERT_NEAR(got[i], want[i], tol) << "index " << i;
    }
  };

  const auto c0 = random_vec(static_cast<std::size_t>(m) * n, 99);

  const auto a_nn = random_vec(static_cast<std::size_t>(m) * k, 31);
  const auto b_nn = random_vec(static_cast<std::size_t>(k) * n, 32);
  std::vector<float> got = c0, want = c0;
  pt::gemm_nn(m, n, k, a_nn.data(), b_nn.data(), got.data(), accumulate, p);
  pt::gemm_nn_ref(m, n, k, a_nn.data(), b_nn.data(), want.data(), accumulate);
  expect_rel_close(got, want);

  const auto b_nt = random_vec(static_cast<std::size_t>(n) * k, 33);
  got = c0;
  want = c0;
  pt::gemm_nt(m, n, k, a_nn.data(), b_nt.data(), got.data(), accumulate, p);
  pt::gemm_nt_ref(m, n, k, a_nn.data(), b_nt.data(), want.data(), accumulate);
  expect_rel_close(got, want);

  const auto a_tn = random_vec(static_cast<std::size_t>(k) * m, 34);
  got = c0;
  want = c0;
  pt::gemm_tn(m, n, k, a_tn.data(), b_nn.data(), got.data(), accumulate, p);
  pt::gemm_tn_ref(m, n, k, a_tn.data(), b_nn.data(), want.data(), accumulate);
  expect_rel_close(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    OddShapesAndPanels, GemmBlockedSweep,
    ::testing::Combine(::testing::Values(1, 6, 23), ::testing::Values(16, 21, 253),
                       ::testing::Values(9, 257, 513), ::testing::Bool(),
                       ::testing::Bool()));

// Regression for the seed's `if (av == 0.0f) continue;` inner-loop branch:
// a zero in A multiplied by a NaN in B must produce NaN (0 * NaN = NaN), not
// silently skip the column. Covers all three variants, pooled and not.
TEST(Gemm, ZeroTimesNaNPropagates) {
  const int m = 4, n = 20, k = 3;
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> a(static_cast<std::size_t>(m) * k, 0.0f);
  std::vector<float> b_nn(static_cast<std::size_t>(k) * n, 1.0f);
  for (int j = 0; j < n; ++j) b_nn[1 * n + j] = qnan;  // row k=1 all NaN
  std::vector<float> b_nt(static_cast<std::size_t>(n) * k, 1.0f);
  for (int j = 0; j < n; ++j) b_nt[j * k + 1] = qnan;
  std::vector<float> a_tn(static_cast<std::size_t>(k) * m, 0.0f);

  pp::ThreadPool pool(4);
  for (pp::ThreadPool* p : {static_cast<pp::ThreadPool*>(nullptr), &pool}) {
    std::vector<float> c(static_cast<std::size_t>(m) * n, 7.0f);
    pt::gemm_nn(m, n, k, a.data(), b_nn.data(), c.data(), false, p);
    for (const float v : c) EXPECT_TRUE(std::isnan(v));

    c.assign(c.size(), 7.0f);
    pt::gemm_nt(m, n, k, a.data(), b_nt.data(), c.data(), false, p);
    for (const float v : c) EXPECT_TRUE(std::isnan(v));

    c.assign(c.size(), 7.0f);
    pt::gemm_tn(m, n, k, a_tn.data(), b_nn.data(), c.data(), false, p);
    for (const float v : c) EXPECT_TRUE(std::isnan(v));
  }
}

// The scalar references themselves must also propagate NaN (they dropped the
// zero-skip branch the seed kernels had).
TEST(Gemm, ReferenceKernelsPropagateNaN) {
  const int m = 2, n = 3, k = 2;
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> a(static_cast<std::size_t>(m) * k, 0.0f);
  std::vector<float> b(static_cast<std::size_t>(k) * n, qnan);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  pt::gemm_nn_ref(m, n, k, a.data(), b.data(), c.data(), false);
  for (const float v : c) EXPECT_TRUE(std::isnan(v));
}

// A GEMM started from inside a pool task (the helping-join pattern) must
// lease a deeper PackArena level, not realloc the outer call's live panels.
TEST(Gemm, NestedUnderPoolTaskIsSafeAndCorrect) {
  pp::ThreadPool pool(4);
  const int m = 32, n = 64, k = 64;
  const auto a = random_vec(static_cast<std::size_t>(m) * k, 70);
  const auto b = random_vec(static_cast<std::size_t>(k) * n, 71);
  const auto want = ref_gemm('n', m, n, k, a, b);
  std::vector<std::vector<float>> outs(
      8, std::vector<float>(static_cast<std::size_t>(m) * n));
  pp::parallel_for(
      &pool, 0, outs.size(),
      [&](std::size_t t) {
        pt::gemm_nn(m, n, k, a.data(), b.data(), outs[t].data(), false, &pool);
      },
      /*grain=*/1);
  for (const auto& out : outs) expect_close(out, want, 1e-4f);
}
