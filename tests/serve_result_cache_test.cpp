// ResultCache semantics: content addressing, LRU eviction under a byte
// budget, recency refresh, and the disabled (zero-budget) configuration.

#include <gtest/gtest.h>

#include "core/serve/result_cache.h"
#include "img/image.h"

namespace ps = polarice::core::serve;
namespace pi = polarice::img;

namespace {

pi::ImageU8 make_scene(int size, std::uint8_t fill) {
  pi::ImageU8 scene(size, size, 3, fill);
  return scene;
}

pi::ImageU8 make_plane(int size, std::uint8_t fill) {
  pi::ImageU8 plane(size, size, 1, fill);
  return plane;
}

}  // namespace

TEST(SceneKey, HashSeparatesContentAndGeometry) {
  const auto a = make_scene(32, 10);
  auto b = make_scene(32, 10);
  EXPECT_EQ(ps::hash_scene(a), ps::hash_scene(b));

  b.at(5, 7, 1) = 11;  // one byte differs
  EXPECT_FALSE(ps::hash_scene(a) == ps::hash_scene(b));

  // Same bytes, different geometry: the key carries dimensions too.
  pi::ImageU8 wide(64, 16, 3, 10);
  pi::ImageU8 tall(16, 64, 3, 10);
  EXPECT_FALSE(ps::hash_scene(wide) == ps::hash_scene(tall));
}

TEST(ResultCache, HitReturnsIdenticalPlane) {
  ps::ResultCache cache(1 << 20);
  const auto key = ps::hash_scene(make_scene(32, 1));
  const auto plane = make_plane(32, 2);

  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, plane);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, plane);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, plane.size());  // plane + bookkeeping overhead
}

TEST(ResultCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Budget fits exactly two 16x16 planes (256 B + 128 B overhead each).
  ps::ResultCache cache(2 * (256 + 128));
  const auto ka = ps::hash_scene(make_scene(16, 1));
  const auto kb = ps::hash_scene(make_scene(16, 2));
  const auto kc = ps::hash_scene(make_scene(16, 3));

  cache.insert(ka, make_plane(16, 1));
  cache.insert(kb, make_plane(16, 2));
  // Touch A so B becomes the LRU victim.
  EXPECT_TRUE(cache.lookup(ka).has_value());
  cache.insert(kc, make_plane(16, 3));

  EXPECT_TRUE(cache.lookup(ka).has_value());
  EXPECT_FALSE(cache.lookup(kb).has_value());  // evicted
  EXPECT_TRUE(cache.lookup(kc).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, cache.byte_budget());
}

TEST(ResultCache, OversizedPlaneIsNotCached) {
  ps::ResultCache cache(64);  // smaller than any plane + overhead
  const auto key = ps::hash_scene(make_scene(16, 1));
  cache.insert(key, make_plane(16, 1));
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ResultCache, ZeroBudgetDisables) {
  ps::ResultCache cache(0);
  const auto key = ps::hash_scene(make_scene(16, 1));
  cache.insert(key, make_plane(16, 1));
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCache, ClearDropsEverything) {
  ps::ResultCache cache(1 << 20);
  const auto key = ps::hash_scene(make_scene(16, 1));
  cache.insert(key, make_plane(16, 1));
  cache.clear();
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(ResultCache, ReinsertRefreshesRecencyInsteadOfDuplicating) {
  ps::ResultCache cache(2 * (256 + 128));
  const auto ka = ps::hash_scene(make_scene(16, 1));
  const auto kb = ps::hash_scene(make_scene(16, 2));
  cache.insert(ka, make_plane(16, 1));
  cache.insert(kb, make_plane(16, 2));
  cache.insert(ka, make_plane(16, 1));  // refresh, not duplicate
  EXPECT_EQ(cache.stats().entries, 2u);

  const auto kc = ps::hash_scene(make_scene(16, 3));
  cache.insert(kc, make_plane(16, 3));
  EXPECT_TRUE(cache.lookup(ka).has_value());   // refreshed -> survives
  EXPECT_FALSE(cache.lookup(kb).has_value());  // LRU -> evicted
}
