// ExecutionContext behaviour: cancellation tokens, progress sinks, scratch
// arenas, and value-semantic derivation (with_pool/with_seed share state).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "par/context.h"
#include "par/parallel_for.h"
#include "par/thread_pool.h"

namespace pp = polarice::par;

TEST(CancellationToken, SharedAcrossCopies) {
  pp::CancellationToken token;
  const pp::CancellationToken copy = token;
  EXPECT_FALSE(copy.cancelled());
  token.cancel();
  EXPECT_TRUE(copy.cancelled());
  EXPECT_THROW(copy.throw_if_cancelled("test"), pp::OperationCancelled);
}

TEST(ExecutionContext, DefaultIsSequentialAndLive) {
  const pp::ExecutionContext ctx;
  EXPECT_EQ(ctx.pool(), nullptr);
  EXPECT_EQ(ctx.seed(), 0u);
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_NO_THROW(ctx.throw_if_cancelled());
}

TEST(ExecutionContext, DerivedContextsShareCancellation) {
  pp::ThreadPool pool(2);
  const pp::ExecutionContext ctx(&pool, /*seed=*/42);
  const pp::ExecutionContext derived = ctx.with_pool(nullptr).with_seed(7);
  EXPECT_EQ(derived.pool(), nullptr);
  EXPECT_EQ(derived.seed(), 7u);
  EXPECT_EQ(ctx.seed(), 42u);
  derived.request_cancel();
  EXPECT_TRUE(ctx.cancelled());  // shared flag
}

TEST(ExecutionContext, ProgressSinkReceivesEventsFromWorkers) {
  pp::ThreadPool pool(4);
  const pp::ExecutionContext ctx(&pool);
  std::atomic<std::size_t> events{0};
  ctx.set_progress_sink([&](const pp::ProgressEvent& event) {
    EXPECT_STREQ(event.stage, "unit");
    EXPECT_LE(event.completed, event.total);
    events.fetch_add(1);
  });
  pp::parallel_for(ctx.pool(), 0, 16, [&](std::size_t i) {
    ctx.report_progress("unit", i + 1, 16);
  });
  EXPECT_EQ(events.load(), 16u);
}

TEST(ExecutionContext, CancellationStopsParallelWork) {
  pp::ThreadPool pool(2);
  const pp::ExecutionContext ctx(&pool);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pp::parallel_for(ctx.pool(), 0, 1000,
                       [&](std::size_t i) {
                         if (i == 0) ctx.request_cancel();
                         ctx.throw_if_cancelled("loop");
                         ran.fetch_add(1);
                       },
                       /*grain=*/1),
      pp::OperationCancelled);
  EXPECT_LT(ran.load(), 1000);
}

TEST(ScratchArena, GrowsAndRecycles) {
  pp::ScratchArena arena;
  float* a = arena.allocate_n<float>(100);
  ASSERT_NE(a, nullptr);
  std::memset(a, 0, 100 * sizeof(float));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  float* b = arena.allocate_n<float>(100);
  EXPECT_NE(a, b);  // bump allocation, no overlap
  const std::size_t grown = arena.capacity();
  arena.reset();
  float* c = arena.allocate_n<float>(100);
  EXPECT_EQ(arena.capacity(), grown);  // no regrow after reset
  (void)c;
}

TEST(ScratchArena, LeaseRewindsToMark) {
  pp::ScratchArena arena;
  float* outer = arena.allocate_n<float>(64);
  (void)outer;
  void* first = nullptr;
  {
    auto lease = arena.lease();
    first = lease.allocate(512);
    (void)lease.allocate(1 << 20);  // force chunk growth inside the lease
  }
  const std::size_t cap_after_lease = arena.capacity();
  {
    // A new lease re-serves the same bytes: the cursor rewound.
    auto lease = arena.lease();
    EXPECT_EQ(lease.allocate(512), first);
  }
  // Repeated leases never grow capacity further (steady state allocates
  // nothing — the InferenceSession serving property).
  for (int i = 0; i < 16; ++i) {
    auto lease = arena.lease();
    (void)lease.allocate(1 << 20);
    EXPECT_EQ(arena.capacity(), cap_after_lease);
  }
}

TEST(ScratchArena, NestedLeasesUnwindInOrder) {
  pp::ScratchArena arena;
  auto outer = arena.lease();
  void* a = outer.allocate(128);
  void* inner_ptr = nullptr;
  {
    auto inner = arena.lease();
    inner_ptr = inner.allocate(128);
    EXPECT_NE(inner_ptr, a);
  }
  // Inner rewound; outer's allocation is still the high-water mark, so the
  // next outer allocation reuses the inner lease's bytes.
  EXPECT_EQ(outer.allocate(128), inner_ptr);
}

TEST(ExecutionContext, ScratchIsPerThread) {
  const pp::ExecutionContext ctx;
  pp::ScratchArena* main_arena = &ctx.scratch();
  EXPECT_EQ(main_arena, &ctx.scratch());  // stable per thread
  pp::ScratchArena* other_arena = nullptr;
  std::thread worker([&] { other_arena = &ctx.scratch(); });
  worker.join();
  EXPECT_NE(main_arena, other_arena);
}
