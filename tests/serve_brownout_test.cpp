// Brownout semantics. Controller-level: hysteresis transitions driven on a
// VirtualClock — entry only after an unbroken over-watermark hold, exit only
// after an unbroken calm hold, no flapping when depth oscillates around
// either watermark. Server-level: only Priority::kBatch degrades, degraded
// planes keep scene geometry but never enter the result cache, full-quality
// traffic stays bit-identical to the serial workflow while brownout is
// active, the mode exits once virtual time passes the calm hold, and the
// degraded/brownout counters stay consistent with observed tickets.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

#include "core/serve/brownout.h"
#include "core/serve/scene_server.h"
#include "core/workflow.h"
#include "img/image.h"
#include "nn/unet.h"
#include "s2/scene.h"
#include "util/virtual_clock.h"

namespace pc = polarice::core;
namespace pv = polarice::core::serve;
namespace pn = polarice::nn;
namespace pi = polarice::img;
namespace ps = polarice::s2;
namespace pu = polarice::util;

using namespace std::chrono_literals;

namespace {

pv::BrownoutPolicy policy() {
  pv::BrownoutPolicy p;
  p.enabled = true;
  p.enter_queue_depth = 8;
  p.exit_queue_depth = 2;
  p.enter_hold = 100ms;
  p.exit_hold = 300ms;
  return p;
}

}  // namespace

TEST(BrownoutController, DisabledPolicyNeverActivates) {
  pu::VirtualClock clock;
  pv::BrownoutPolicy p;  // enabled = false
  pv::BrownoutController controller(p, &clock);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(controller.update(1000));
    clock.advance(1s);
  }
  EXPECT_EQ(controller.state().enters, 0u);
}

TEST(BrownoutController, EntersOnlyAfterUnbrokenHold) {
  pu::VirtualClock clock;
  pv::BrownoutController controller(policy(), &clock);

  // Crossing the watermark arms the timer but does not flip the mode.
  EXPECT_FALSE(controller.update(8));
  clock.advance(99ms);
  EXPECT_FALSE(controller.update(8));

  // A single dip below the enter watermark disarms: the hold must restart.
  EXPECT_FALSE(controller.update(7));
  clock.advance(100ms);
  EXPECT_FALSE(controller.update(8));  // re-armed just now
  EXPECT_FALSE(controller.active());

  clock.advance(100ms);
  EXPECT_TRUE(controller.update(8));  // held 100ms unbroken
  EXPECT_TRUE(controller.active());
  EXPECT_EQ(controller.state().enters, 1u);
  EXPECT_EQ(controller.state().exits, 0u);
}

TEST(BrownoutController, ExitRequiresUnbrokenCalmHold) {
  pu::VirtualClock clock;
  pv::BrownoutController controller(policy(), &clock);
  controller.update(8);
  clock.advance(100ms);
  ASSERT_TRUE(controller.update(8));

  // Calm below the exit watermark arms the exit timer...
  EXPECT_TRUE(controller.update(2));
  clock.advance(299ms);
  EXPECT_TRUE(controller.update(2));
  // ...but a spike above it (even below the *enter* watermark) disarms.
  EXPECT_TRUE(controller.update(3));
  clock.advance(300ms);
  EXPECT_TRUE(controller.update(0));  // re-armed just now
  clock.advance(300ms);
  EXPECT_FALSE(controller.update(0));  // held 300ms unbroken
  EXPECT_EQ(controller.state().enters, 1u);
  EXPECT_EQ(controller.state().exits, 1u);
}

TEST(BrownoutController, DepthBetweenWatermarksNeverFlaps) {
  pu::VirtualClock clock;
  pv::BrownoutController controller(policy(), &clock);

  // Inactive: depth oscillating between the watermarks never enters.
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(controller.update(i % 2 == 0 ? 7 : 3));
    clock.advance(1s);
  }
  // Force entry, then the same oscillation never exits.
  controller.update(8);
  clock.advance(100ms);
  ASSERT_TRUE(controller.update(8));
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(controller.update(i % 2 == 0 ? 7 : 3));
    clock.advance(1s);
  }
  EXPECT_EQ(controller.state().enters, 1u);
  EXPECT_EQ(controller.state().exits, 0u);
}

TEST(BrownoutController, PolicyValidation) {
  pv::BrownoutPolicy p = policy();
  EXPECT_NO_THROW(p.validate());
  p.exit_queue_depth = p.enter_queue_depth;  // exit must sit strictly below
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = policy();
  p.enter_queue_depth = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = policy();
  p.degrade_stride = 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = policy();
  p.enter_hold = -1ms;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  // Disabled policies are never inspected.
  p.enabled = false;
  EXPECT_NO_THROW(p.validate());
}

// ---------------------------------------------------------------------------
// SceneServer integration
// ---------------------------------------------------------------------------

namespace {

pn::UNet make_model() {
  pn::UNetConfig cfg;
  cfg.depth = 2;
  cfg.base_channels = 6;
  cfg.use_dropout = false;
  cfg.seed = 88;
  return pn::UNet(cfg);
}

pi::ImageU8 make_scene(std::uint64_t seed, int size = 128) {
  ps::SceneConfig sc;
  sc.width = sc.height = size;
  sc.seed = seed;
  sc.cloudy = true;
  return ps::SceneGenerator(sc).generate().rgb;
}

/// Brownout that triggers on the first queued scene and — on the frozen
/// VirtualClock — stays active until the test advances past the calm hold.
/// Deterministic by construction: entry needs no elapsed time, exit needs
/// virtual time only the test can mint.
pv::SceneServerConfig browned_out_config(const pu::VirtualClock& clock) {
  pv::SceneServerConfig cfg;
  cfg.tile_size = 64;
  cfg.min_replicas = 1;
  cfg.max_replicas = 2;
  cfg.scale_down_idle = 25ms;  // quick idle ticks keep feeding the controller
  cfg.clock = &clock;
  cfg.brownout.enabled = true;
  cfg.brownout.enter_queue_depth = 1;
  cfg.brownout.exit_queue_depth = 0;
  cfg.brownout.enter_hold = 0ms;
  cfg.brownout.exit_hold = 200ms;
  cfg.brownout.degrade_stride = 2;
  return cfg;
}

struct BrownoutDrive {
  pi::ImageU8 degraded_scene;      // first scene whose plane came degraded
  std::size_t degraded_tickets = 0;  // tickets that reported degraded()
};

/// Drives the server into brownout: bursts of unique pre-generated kBatch
/// scenes submitted back to back, so a queue-depth sample lands while
/// scenes are still backed up (entry is a race against the scheduler's
/// pop, which a tight submission burst wins). Once entered, the frozen
/// virtual clock keeps the mode active: exit_hold can never elapse.
BrownoutDrive force_brownout(pv::SceneServer& server,
                             std::uint64_t seed_base) {
  pv::SubmitOptions batch;
  batch.priority = pv::Priority::kBatch;
  BrownoutDrive drive;
  for (std::uint64_t round = 0; round < 10 && drive.degraded_tickets == 0;
       ++round) {
    std::vector<pi::ImageU8> scenes;
    for (std::uint64_t i = 0; i < 32; ++i) {
      scenes.push_back(make_scene(seed_base + round * 32 + i));
    }
    std::vector<pv::SceneTicket> tickets;
    tickets.reserve(scenes.size());
    for (const auto& scene : scenes) {
      tickets.push_back(server.submit(scene.clone(), batch));
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const pi::ImageU8 plane = tickets[i].get();
      if (!tickets[i].degraded()) continue;
      if (drive.degraded_tickets == 0) {
        drive.degraded_scene = scenes[i].clone();
        // Degraded output keeps the scene's label geometry.
        EXPECT_EQ(plane.width(), scenes[i].width());
        EXPECT_EQ(plane.height(), scenes[i].height());
        EXPECT_EQ(plane.channels(), 1);
      }
      ++drive.degraded_tickets;
    }
  }
  EXPECT_GT(drive.degraded_tickets, 0u)
      << "brownout never entered over 320 burst submissions";
  return drive;
}

}  // namespace

TEST(SceneServerBrownout, OnlyBatchDegradesAndDegradedPlanesAreNotCached) {
  pn::UNet model = make_model();
  pu::VirtualClock clock;
  pv::SceneServer server(model, browned_out_config(clock));

  pv::SubmitOptions batch;
  batch.priority = pv::Priority::kBatch;
  const BrownoutDrive drive = force_brownout(server, 9600);
  ASSERT_GT(drive.degraded_tickets, 0u);
  const pi::ImageU8 scene = drive.degraded_scene;
  const pi::ImageU8 reference =
      pc::InferenceWorkflow(model, {}, 64).classify_scene(scene);
  {
    const auto stats = server.stats();
    EXPECT_TRUE(stats.brownout_active);
    EXPECT_EQ(stats.brownouts, 1u);  // one entry, and (frozen clock) no exit
    // Counter consistency: the server's degraded count is exactly the
    // number of tickets that reported degraded().
    EXPECT_EQ(stats.degraded, drive.degraded_tickets);
    EXPECT_EQ(stats.cache_hits, 0u);  // every attempt was a unique scene
  }

  // Same scene at kNormal while brownout is still active: full quality,
  // bit-identical to the serial workflow — and NOT a cache hit, because the
  // degraded plane must never have been cached.
  auto full_ticket = server.submit(scene.clone());
  const pi::ImageU8 full_plane = full_ticket.get();
  EXPECT_FALSE(full_ticket.degraded());
  EXPECT_EQ(full_plane, reference);
  {
    const auto stats = server.stats();
    EXPECT_EQ(stats.cache_hits, 0u);
    // Exempt classes never count as degraded.
    EXPECT_EQ(stats.degraded, drive.degraded_tickets);
  }

  // Now the full-quality plane IS cached — and a cached hit beats degrading
  // even for kBatch under active brownout.
  auto cached_ticket = server.submit(scene.clone(), batch);
  EXPECT_EQ(cached_ticket.get(), reference);
  EXPECT_FALSE(cached_ticket.degraded());
  {
    const auto stats = server.stats();
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.degraded, drive.degraded_tickets);
  }
}

TEST(SceneServerBrownout, ExitsAfterCalmHoldOnVirtualTime) {
  pn::UNet model = make_model();
  pu::VirtualClock clock;
  pv::SceneServer server(model, browned_out_config(clock));

  const BrownoutDrive drive = force_brownout(server, 9800);
  ASSERT_GT(drive.degraded_tickets, 0u);
  ASSERT_TRUE(server.stats().brownout_active);

  // The queue is drained; idle ticks now sample depth 0 against the frozen
  // clock (arming the calm hold) and, once the test mints 200ms+ of virtual
  // time, the next sample exits. Two advances because the first idle sample
  // after an advance may be the one that arms.
  bool exited = false;
  for (int i = 0; i < 100 && !exited; ++i) {
    clock.advance(250ms);
    std::this_thread::sleep_for(30ms);
    exited = !server.stats().brownout_active;
  }
  EXPECT_TRUE(exited);
  const auto stats = server.stats();
  EXPECT_EQ(stats.brownouts, 1u);
  EXPECT_EQ(stats.degraded, drive.degraded_tickets);

  // Post-exit, a fresh scene at kNormal is full quality and bit-identical
  // to the serial workflow: degraded state left nothing behind.
  const auto scene = make_scene(603);
  const pi::ImageU8 reference =
      pc::InferenceWorkflow(model, {}, 64).classify_scene(scene);
  auto full_ticket = server.submit(scene.clone());
  EXPECT_EQ(full_ticket.get(), reference);
  EXPECT_FALSE(full_ticket.degraded());
}
