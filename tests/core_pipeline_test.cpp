// Pipeline/Stage/ArtifactStore behaviour, plus the AutoLabelStage execution
// policies: the paper's three labeling deployments must produce identical
// results through one stage API.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/corpus.h"
#include "core/pipeline.h"
#include "core/stages.h"
#include "core/workflow.h"
#include "par/context.h"
#include "par/thread_pool.h"
#include "s2/acquisition.h"
#include "s2/scene.h"

namespace pc = polarice::core;
namespace pp = polarice::par;
namespace ps = polarice::s2;
namespace pi = polarice::img;

namespace {

class CounterStage : public pc::Stage {
 public:
  CounterStage(std::string in, std::string out, int* runs)
      : in_(std::move(in)), out_(std::move(out)), runs_(runs) {}
  [[nodiscard]] std::string name() const override { return "counter:" + out_; }
  [[nodiscard]] std::vector<std::string> consumes() const override {
    return in_.empty() ? std::vector<std::string>{}
                       : std::vector<std::string>{in_};
  }
  [[nodiscard]] std::vector<std::string> produces() const override {
    return {out_};
  }
  void run(const pp::ExecutionContext& ctx, pc::ArtifactStore& store) override {
    ctx.throw_if_cancelled(name().c_str());
    const int upstream = in_.empty() ? 0 : store.get<int>(in_);
    store.put(out_, upstream + 1);
    ++*runs_;
  }

 private:
  std::string in_, out_;
  int* runs_;
};

std::vector<pi::ImageU8> small_tiles() {
  ps::AcquisitionConfig acq;
  acq.num_scenes = 2;
  acq.scene_size = 128;
  acq.tile_size = 64;
  acq.seed = 500;
  std::vector<pi::ImageU8> tiles;
  for (const auto& tile : ps::acquire_tiles(acq)) tiles.push_back(tile.rgb);
  return tiles;
}

}  // namespace

TEST(ArtifactStore, TypedPutGetTake) {
  pc::ArtifactStore store;
  store.put<int>("answer", 42);
  store.put<std::string>("name", "polarice");
  EXPECT_TRUE(store.has("answer"));
  EXPECT_EQ(store.get<int>("answer"), 42);
  EXPECT_THROW(store.get<double>("answer"), std::logic_error);  // wrong type
  EXPECT_THROW(store.get<int>("missing"), std::logic_error);
  EXPECT_EQ(store.take<std::string>("name"), "polarice");
  EXPECT_FALSE(store.has("name"));
}

TEST(Pipeline, ValidatesWiringUpfront) {
  int runs = 0;
  pc::Pipeline good;
  good.emplace<CounterStage>("", "a", &runs);
  good.emplace<CounterStage>("a", "b", &runs);
  pc::ArtifactStore store;
  EXPECT_NO_THROW(good.validate(store));
  good.run({}, store);
  EXPECT_EQ(store.get<int>("b"), 2);
  EXPECT_EQ(runs, 2);

  pc::Pipeline bad;
  bad.emplace<CounterStage>("nonexistent", "c", &runs);
  EXPECT_THROW(bad.validate(pc::ArtifactStore{}), std::logic_error);
  // Nothing ran: validation precedes execution.
  pc::ArtifactStore empty;
  EXPECT_THROW(bad.run({}, empty), std::logic_error);
  EXPECT_EQ(runs, 2);

  // A seeded store satisfies the same consumption.
  pc::ArtifactStore seeded;
  seeded.put<int>("nonexistent", 5);
  EXPECT_NO_THROW(bad.validate(seeded));
}

TEST(Pipeline, CancellationStopsBetweenStages) {
  int runs = 0;
  const pp::ExecutionContext ctx;
  pc::Pipeline pipeline;
  pipeline.emplace<CounterStage>("", "a", &runs);
  pipeline.emplace<CounterStage>("a", "b", &runs);
  ctx.set_progress_sink([&](const pp::ProgressEvent& event) {
    // Cancel as soon as the first stage finishes.
    if (std::string(event.stage) == "pipeline" && event.completed == 1) {
      ctx.request_cancel();
    }
  });
  pc::ArtifactStore store;
  EXPECT_THROW(pipeline.run(ctx, store), pp::OperationCancelled);
  EXPECT_EQ(runs, 1);  // second stage never ran
  EXPECT_TRUE(store.has("a"));
  EXPECT_FALSE(store.has("b"));
}

TEST(AutoLabelStage, PoliciesProduceIdenticalResultsInInputOrder) {
  const auto tiles = small_tiles();
  pc::AutoLabelConfig cfg;
  cfg.apply_filter = false;  // keep the sweep cheap

  const pc::AutoLabelStage sequential(cfg, pc::AutoLabelPolicy::pool(1));
  const pc::AutoLabelStage pooled(cfg, pc::AutoLabelPolicy::pool(4));
  polarice::mr::ClusterConfig cluster;
  cluster.executors = 2;
  cluster.cores_per_executor = 2;
  const pc::AutoLabelStage spark(cfg, pc::AutoLabelPolicy::spark(cluster));
  polarice::par::ThreadPool pool(3);
  const pc::AutoLabelStage context_policy(cfg, pc::AutoLabelPolicy::context());

  const pp::ExecutionContext ctx(&pool);
  pc::AutoLabelBatchStats spark_stats;
  const auto a = sequential.label_batch(tiles, {});
  const auto b = pooled.label_batch(tiles, {});
  const auto c = spark.label_batch(tiles, {}, &spark_stats);
  const auto d = context_policy.label_batch(tiles, ctx);

  ASSERT_EQ(a.size(), tiles.size());
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    EXPECT_EQ(a[i].labels, b[i].labels) << "pool policy, tile " << i;
    EXPECT_EQ(a[i].labels, c[i].labels) << "spark policy, tile " << i;
    EXPECT_EQ(a[i].labels, d[i].labels) << "context policy, tile " << i;
  }
  ASSERT_TRUE(spark_stats.spark.has_value());
  EXPECT_EQ(spark_stats.spark->items,
            static_cast<std::int64_t>(tiles.size()));
  EXPECT_GT(spark_stats.spark->simulated.reduce_s, 0.0);
  EXPECT_THROW(
      pc::AutoLabelStage(cfg, pc::AutoLabelPolicy::pool(0)).label_batch(tiles,
                                                                        {}),
      std::invalid_argument);
}

TEST(TrainingWorkflow, PipelineGraphIsInspectable) {
  pc::WorkflowConfig cfg;
  cfg.acquisition.num_scenes = 2;
  cfg.acquisition.scene_size = 128;
  cfg.acquisition.tile_size = 64;
  cfg.model.depth = 2;
  cfg.model.base_channels = 4;
  const pc::TrainingWorkflow workflow(cfg);
  const pc::Pipeline pipeline = workflow.build_pipeline();
  // Acquire, filter, auto-label, manual-label, tile, drop-scene-planes,
  // split, 2x train, bucket, 12x evaluate.
  EXPECT_EQ(pipeline.size(), 22u);
  EXPECT_EQ(pipeline.stage(0).name(), "acquire");
  EXPECT_NO_THROW(pipeline.validate(pc::ArtifactStore{}));
}

TEST(PrepareCorpus, PipelineMatchesAcrossPoolAndCancelsEarly) {
  pc::CorpusConfig cfg;
  cfg.acquisition.num_scenes = 2;
  cfg.acquisition.scene_size = 128;
  cfg.acquisition.tile_size = 64;
  cfg.acquisition.seed = 123;

  const auto seq = pc::prepare_corpus(cfg);
  polarice::par::ThreadPool pool(4);
  const auto par = pc::prepare_corpus(cfg, pp::ExecutionContext(&pool));
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].auto_labels, par[i].auto_labels) << "tile " << i;
    EXPECT_EQ(seq[i].rgb_filtered, par[i].rgb_filtered) << "tile " << i;
  }

  const pp::ExecutionContext cancelled;
  cancelled.request_cancel();
  EXPECT_THROW(pc::prepare_corpus(cfg, cancelled), pp::OperationCancelled);
}

TEST(ArtifactStore, MissingKeyErrorListsResidentKeys) {
  pc::ArtifactStore store;
  try {
    (void)store.get<int>("corpus.tiles");
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("store is empty"), std::string::npos);
  }

  store.put<int>("s2.scenes", 1);
  store.put<int>("labels.auto", 2);
  try {
    (void)store.get<int>("corpus.tiles");
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    // The message names the missing key AND what is actually resident —
    // the debuggable failure mode for a streaming-vs-batch miswiring.
    EXPECT_NE(what.find("'corpus.tiles'"), std::string::npos);
    EXPECT_NE(what.find("'labels.auto'"), std::string::npos);
    EXPECT_NE(what.find("'s2.scenes'"), std::string::npos);
  }
}
