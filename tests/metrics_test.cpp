// Metric tests: confusion matrix accounting, macro P/R/F1, SSIM properties.

#include <gtest/gtest.h>

#include "img/ops.h"
#include "metrics/metrics.h"
#include "metrics/ssim.h"
#include "par/context.h"
#include "par/thread_pool.h"
#include "util/rng.h"

namespace pm = polarice::metrics;
namespace pi = polarice::img;
namespace pp = polarice::par;

TEST(ConfusionMatrix, PerfectPredictionsAreDiagonal) {
  pm::ConfusionMatrix cm(3);
  cm.add_all({0, 1, 2, 0, 1, 2}, {0, 1, 2, 0, 1, 2});
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.precision(0), 1.0);
  EXPECT_DOUBLE_EQ(cm.recall(2), 1.0);
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
  const auto norm = cm.column_normalized();
  EXPECT_DOUBLE_EQ(norm[0], 100.0);
  EXPECT_DOUBLE_EQ(norm[1], 0.0);
}

TEST(ConfusionMatrix, KnownMixedCase) {
  // truths:      0 0 0 0 1 1 1 2
  // predictions: 0 0 1 2 1 1 0 2
  pm::ConfusionMatrix cm(3);
  cm.add_all({0, 0, 0, 0, 1, 1, 1, 2}, {0, 0, 1, 2, 1, 1, 0, 2});
  EXPECT_EQ(cm.total(), 8u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 5.0 / 8.0);
  // Class 0: tp=2, predicted-as-0 = 3 (two true 0s + one true 1).
  EXPECT_DOUBLE_EQ(cm.precision(0), 2.0 / 3.0);
  // Class 0 recall: 2 of 4 true zeros.
  EXPECT_DOUBLE_EQ(cm.recall(0), 0.5);
  // Column normalization: column 0 sums to 100.
  const auto norm = cm.column_normalized();
  EXPECT_NEAR(norm[0 * 3 + 0] + norm[1 * 3 + 0] + norm[2 * 3 + 0], 100.0,
              1e-9);
}

TEST(ConfusionMatrix, IgnoresNegativeTruth) {
  pm::ConfusionMatrix cm(2);
  cm.add(-1, 0);
  cm.add(1, 1);
  EXPECT_EQ(cm.total(), 1u);
}

TEST(ConfusionMatrix, MergeAddsCounts) {
  pm::ConfusionMatrix a(2), b(2);
  a.add(0, 0);
  b.add(0, 1);
  b.add(1, 1);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count(0, 1), 1u);
}

TEST(ConfusionMatrix, GuardsBadInput) {
  pm::ConfusionMatrix cm(2);
  EXPECT_THROW(pm::ConfusionMatrix(1), std::invalid_argument);
  EXPECT_THROW(cm.add(0, 5), std::out_of_range);
  EXPECT_THROW(cm.add(3, 0), std::out_of_range);
  EXPECT_THROW(cm.add_all({0}, {0, 1}), std::invalid_argument);
  pm::ConfusionMatrix other(3);
  EXPECT_THROW(cm.merge(other), std::invalid_argument);
  EXPECT_THROW(cm.to_string({"just one"}), std::invalid_argument);
}

TEST(ConfusionMatrix, MacroAveragesSkipAbsentClasses) {
  pm::ConfusionMatrix cm(3);
  cm.add_all({0, 0, 1, 1}, {0, 0, 1, 0});  // class 2 never appears as truth
  // Macro recall over classes {0, 1}: (1.0 + 0.5) / 2.
  EXPECT_DOUBLE_EQ(cm.macro_recall(), 0.75);
}

TEST(ConfusionMatrix, ToStringContainsClassNames) {
  pm::ConfusionMatrix cm(2);
  cm.add(0, 0);
  const auto s = cm.to_string({"water", "ice"});
  EXPECT_NE(s.find("water"), std::string::npos);
  EXPECT_NE(s.find("ice"), std::string::npos);
  EXPECT_NE(s.find("100.00%"), std::string::npos);
}

TEST(PixelAccuracy, CountsIgnoredPixels) {
  EXPECT_DOUBLE_EQ(pm::pixel_accuracy({0, 1, -1, 1}, {0, 0, 1, 1}), 2.0 / 3.0);
  EXPECT_THROW(pm::pixel_accuracy({0}, {0, 1}), std::invalid_argument);
}

TEST(PixelAccuracy, ParallelOverloadIsBitIdentical) {
  polarice::util::Rng rng(11);
  std::vector<int> truth, pred;
  for (int i = 0; i < 10007; ++i) {  // odd length: uneven chunking
    truth.push_back(static_cast<int>(rng.uniform_int(-1, 2)));
    pred.push_back(static_cast<int>(rng.uniform_int(0, 2)));
  }
  const double serial = pm::pixel_accuracy(truth, pred);
  pp::ThreadPool pool(4);
  const pp::ExecutionContext ctx(&pool);
  EXPECT_EQ(serial, pm::pixel_accuracy(truth, pred, ctx));
  EXPECT_EQ(serial, pm::pixel_accuracy(truth, pred, pp::ExecutionContext{}));
  const pp::ExecutionContext cancelled;
  cancelled.request_cancel();
  EXPECT_THROW(pm::pixel_accuracy(truth, pred, cancelled),
               pp::OperationCancelled);
}

namespace {
pi::ImageU8 random_gray(int w, int h, std::uint64_t seed) {
  polarice::util::Rng rng(seed);
  pi::ImageU8 im(w, h, 1);
  for (auto& v : im) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return im;
}
}  // namespace

TEST(Ssim, IdenticalImagesScoreOne) {
  const auto im = random_gray(64, 64, 1);
  EXPECT_NEAR(pm::ssim(im, im), 1.0, 1e-9);
}

TEST(Ssim, Symmetric) {
  const auto a = random_gray(48, 48, 2);
  const auto b = random_gray(48, 48, 3);
  EXPECT_NEAR(pm::ssim(a, b), pm::ssim(b, a), 1e-12);
}

TEST(SsimRgb, ParallelOverloadIsBitIdentical) {
  polarice::util::Rng rng(21);
  pi::ImageU8 a(48, 48, 3), b(48, 48, 3);
  for (auto& v : a) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const double serial = pm::ssim_rgb(a, b);
  pp::ThreadPool pool(3);
  EXPECT_EQ(serial, pm::ssim_rgb(a, b, {}, pp::ExecutionContext(&pool)));
  EXPECT_EQ(serial, pm::ssim_rgb(a, b, {}, pp::ExecutionContext{}));
}

TEST(Ssim, UnrelatedImagesScoreLow) {
  const auto a = random_gray(64, 64, 4);
  const auto b = random_gray(64, 64, 5);
  EXPECT_LT(pm::ssim(a, b), 0.1);
}

TEST(Ssim, DegradesMonotonicallyWithNoise) {
  pi::ImageU8 base(64, 64, 1);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      base.at(x, y) = static_cast<std::uint8_t>((x * 4 + y * 2) % 256);
    }
  }
  polarice::util::Rng rng(6);
  auto corrupt = [&](int magnitude) {
    auto im = base.clone();
    for (auto& v : im) {
      const int delta = static_cast<int>(rng.uniform_int(-magnitude, magnitude));
      v = static_cast<std::uint8_t>(std::clamp(int(v) + delta, 0, 255));
    }
    return pm::ssim(base, im);
  };
  const double s_small = corrupt(8);
  const double s_large = corrupt(60);
  EXPECT_GT(s_small, s_large);
  EXPECT_GT(s_small, 0.8);
}

TEST(Ssim, ConstantShiftScoresBelowOne) {
  const auto a = random_gray(32, 32, 7);
  pi::ImageU8 b = a.clone();
  for (auto& v : b) v = static_cast<std::uint8_t>(std::min(255, v + 40));
  const double s = pm::ssim(a, b);
  EXPECT_LT(s, 0.99);
  EXPECT_GT(s, 0.3);  // structure intact, luminance shifted
}

TEST(Ssim, GuardsBadInput) {
  pi::ImageU8 a(8, 8, 1), b(9, 8, 1), rgb(8, 8, 3);
  EXPECT_THROW(pm::ssim(a, b), std::invalid_argument);
  EXPECT_THROW(pm::ssim(rgb, rgb), std::invalid_argument);
  pm::SsimOptions opts;
  opts.window = 4;
  EXPECT_THROW(pm::ssim(a, a, opts), std::invalid_argument);
}

TEST(SsimRgb, AveragesChannelsAndScoresIdentityOne) {
  polarice::util::Rng rng(8);
  pi::ImageU8 im(32, 32, 3);
  for (auto& v : im) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  EXPECT_NEAR(pm::ssim_rgb(im, im), 1.0, 1e-9);
  pi::ImageU8 gray(32, 32, 1);
  EXPECT_THROW(pm::ssim_rgb(gray, gray), std::invalid_argument);
}
