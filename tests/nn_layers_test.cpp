// Layer-level tests: gradient checks through Conv2d/ReLU/Dropout/MaxPool/
// UpConv, optimizer math, parameter plumbing.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace pn = polarice::nn;
namespace pt = polarice::tensor;

namespace {
pt::Tensor random_tensor(std::vector<int> shape, std::uint64_t seed) {
  polarice::util::Rng rng(seed);
  pt::Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

float probe_loss(const pt::Tensor& y, const pt::Tensor& probe) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) acc += double(y[i]) * probe[i];
  return static_cast<float>(acc);
}

// Finite-difference check of dL/dx through an arbitrary layer, where
// L = <layer(x), probe>.
void check_input_gradient(pn::Layer& layer, const pt::Tensor& x,
                          float tolerance) {
  const auto run = [&](const pt::Tensor& input) {
    pt::Tensor y;
    layer.forward(input, y, /*training=*/true);
    return y;
  };
  pt::Tensor y = run(x);
  const auto probe = random_tensor(y.shape(), 999);
  // One more training forward so the cached state matches `x`.
  y = run(x);
  pt::Tensor dx;
  layer.backward(probe, dx);

  const float eps = 1e-2f;
  for (const std::int64_t idx :
       {std::int64_t{0}, x.numel() / 3, x.numel() - 1}) {
    auto xp = x;
    xp[idx] += eps;
    auto xm = x;
    xm[idx] -= eps;
    pt::Tensor yp, ym;
    layer.forward(xp, yp, /*training=*/false);
    layer.forward(xm, ym, /*training=*/false);
    const float numeric =
        (probe_loss(yp, probe) - probe_loss(ym, probe)) / (2 * eps);
    EXPECT_NEAR(dx[idx], numeric, tolerance) << "input index " << idx;
  }
}
}  // namespace

TEST(Conv2dLayer, HeInitializationScale) {
  polarice::util::Rng rng(1);
  pn::Conv2d conv(pt::Conv2dSpec::same(8, 16, 3), rng, "c");
  // Empirical std should be near sqrt(2 / (8*9)) ~= 0.1667.
  const auto& w = conv.weights();
  double sum = 0, sum_sq = 0;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    sum += w[i];
    sum_sq += double(w[i]) * w[i];
  }
  const double mean = sum / w.numel();
  const double std = std::sqrt(sum_sq / w.numel() - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(std, std::sqrt(2.0 / 72.0), 0.02);
  // Bias starts at zero.
  for (std::int64_t i = 0; i < conv.bias().numel(); ++i) {
    EXPECT_EQ(conv.bias()[i], 0.0f);
  }
}

TEST(Conv2dLayer, InputGradientMatchesFiniteDifference) {
  polarice::util::Rng rng(2);
  pn::Conv2d conv(pt::Conv2dSpec::same(2, 3, 3), rng, "c");
  check_input_gradient(conv, random_tensor({1, 2, 6, 6}, 3), 5e-2f);
}

TEST(Conv2dLayer, BackwardBeforeForwardThrows) {
  polarice::util::Rng rng(4);
  pn::Conv2d conv(pt::Conv2dSpec::same(1, 1, 3), rng, "c");
  pt::Tensor dy({1, 1, 4, 4}), dx;
  EXPECT_THROW(conv.backward(dy, dx), std::logic_error);
}

TEST(Conv2dLayer, CollectParamsExposesWeightAndBias) {
  polarice::util::Rng rng(5);
  pn::Conv2d conv(pt::Conv2dSpec::same(2, 4, 3), rng, "myconv");
  std::vector<pn::Param> params;
  conv.collect_params(params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "myconv.weight");
  EXPECT_EQ(params[1].name, "myconv.bias");
  EXPECT_EQ(params[0].value->numel(), 4 * 2 * 3 * 3);
  EXPECT_EQ(params[1].value->numel(), 4);
}

TEST(ReLULayer, ForwardClampsNegatives) {
  pn::ReLU relu("r");
  auto x = pt::Tensor::from_values({1, 1, 1, 4}, {-2, -0.5f, 0, 3});
  pt::Tensor y;
  relu.forward(x, y, true);
  EXPECT_FLOAT_EQ(y[0], 0);
  EXPECT_FLOAT_EQ(y[1], 0);
  EXPECT_FLOAT_EQ(y[2], 0);
  EXPECT_FLOAT_EQ(y[3], 3);
}

TEST(ReLULayer, BackwardMasksGradient) {
  pn::ReLU relu("r");
  auto x = pt::Tensor::from_values({1, 1, 1, 3}, {-1, 2, -3});
  pt::Tensor y;
  relu.forward(x, y, true);
  auto dy = pt::Tensor::from_values({1, 1, 1, 3}, {10, 20, 30});
  pt::Tensor dx;
  relu.backward(dy, dx);
  EXPECT_FLOAT_EQ(dx[0], 0);
  EXPECT_FLOAT_EQ(dx[1], 20);
  EXPECT_FLOAT_EQ(dx[2], 0);
}

TEST(DropoutLayer, EvalIsIdentity) {
  polarice::util::Rng rng(6);
  pn::Dropout drop(0.5f, rng, "d");
  const auto x = random_tensor({1, 2, 4, 4}, 7);
  pt::Tensor y;
  drop.forward(x, y, /*training=*/false);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(DropoutLayer, TrainingPreservesExpectation) {
  polarice::util::Rng rng(8);
  pn::Dropout drop(0.3f, rng, "d");
  pt::Tensor x = pt::Tensor::full({1, 1, 100, 100}, 1.0f);
  pt::Tensor y;
  drop.forward(x, y, /*training=*/true);
  // Inverted dropout: E[y] == x. With 10k elements the mean is tight.
  EXPECT_NEAR(y.mean(), 1.0f, 0.05f);
  // Surviving values are scaled by 1/(1-rate).
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(y[i] == 0.0f || std::fabs(y[i] - 1.0f / 0.7f) < 1e-5f);
  }
}

TEST(DropoutLayer, BackwardUsesSameMask) {
  polarice::util::Rng rng(9);
  pn::Dropout drop(0.5f, rng, "d");
  const auto x = pt::Tensor::full({1, 1, 8, 8}, 1.0f);
  pt::Tensor y;
  drop.forward(x, y, true);
  const auto dy = pt::Tensor::full({1, 1, 8, 8}, 1.0f);
  pt::Tensor dx;
  drop.backward(dy, dx);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(dx[i], y[i]);  // same mask, same scaling
  }
}

TEST(DropoutLayer, RejectsBadRate) {
  polarice::util::Rng rng(10);
  EXPECT_THROW(pn::Dropout(-0.1f, rng, "d"), std::invalid_argument);
  EXPECT_THROW(pn::Dropout(1.0f, rng, "d"), std::invalid_argument);
}

TEST(MaxPoolLayer, GradCheck) {
  pn::MaxPool2x2 pool("p");
  check_input_gradient(pool, random_tensor({1, 2, 6, 6}, 11), 5e-2f);
}

TEST(UpConvLayer, OutputShapeDoublesSpatialHalvesChannels) {
  polarice::util::Rng rng(12);
  pn::UpConv2x up(8, 4, rng, "u");
  const auto x = random_tensor({2, 8, 5, 5}, 13);
  pt::Tensor y;
  up.forward(x, y, true);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 4);
  EXPECT_EQ(y.dim(2), 10);
  EXPECT_EQ(y.dim(3), 10);
}

TEST(UpConvLayer, InputGradientMatchesFiniteDifference) {
  polarice::util::Rng rng(14);
  pn::UpConv2x up(2, 1, rng, "u");
  check_input_gradient(up, random_tensor({1, 2, 3, 3}, 15), 5e-2f);
}

TEST(Optimizer, ZeroGradClearsGradients) {
  pt::Tensor v({4}), g = pt::Tensor::full({4}, 3.0f);
  pn::Sgd opt({{"p", &v, &g}}, 0.1f);
  opt.zero_grad();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(g[i], 0.0f);
}

TEST(Optimizer, RejectsNullOrMismatchedParams) {
  pt::Tensor v({4}), g({3});
  EXPECT_THROW(pn::Sgd({{"p", &v, nullptr}}, 0.1f), std::invalid_argument);
  EXPECT_THROW(pn::Sgd({{"p", &v, &g}}, 0.1f), std::invalid_argument);
}

TEST(Sgd, PlainStepIsAxpy) {
  auto v = pt::Tensor::from_values({2}, {1.0f, 2.0f});
  auto g = pt::Tensor::from_values({2}, {0.5f, -1.0f});
  pn::Sgd opt({{"p", &v, &g}}, 0.1f);
  opt.step();
  EXPECT_FLOAT_EQ(v[0], 1.0f - 0.05f);
  EXPECT_FLOAT_EQ(v[1], 2.0f + 0.1f);
}

TEST(Sgd, MomentumAccumulates) {
  auto v = pt::Tensor::from_values({1}, {0.0f});
  auto g = pt::Tensor::from_values({1}, {1.0f});
  pn::Sgd opt({{"p", &v, &g}}, 1.0f, 0.9f);
  opt.step();  // vel = 1, v = -1
  EXPECT_FLOAT_EQ(v[0], -1.0f);
  opt.step();  // vel = 1.9, v = -2.9
  EXPECT_FLOAT_EQ(v[0], -2.9f);
}

TEST(Adam, FirstStepMovesByLearningRate) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  auto v = pt::Tensor::from_values({2}, {0.0f, 0.0f});
  auto g = pt::Tensor::from_values({2}, {0.5f, -3.0f});
  pn::Adam opt({{"p", &v, &g}}, 0.01f);
  opt.step();
  EXPECT_NEAR(v[0], -0.01f, 1e-4f);
  EXPECT_NEAR(v[1], 0.01f, 1e-4f);
  EXPECT_EQ(opt.step_count(), 1);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(w) = (w - 3)^2; gradient = 2(w - 3).
  auto v = pt::Tensor::from_values({1}, {0.0f});
  pt::Tensor g({1});
  pn::Adam opt({{"p", &v, &g}}, 0.1f);
  for (int i = 0; i < 500; ++i) {
    g[0] = 2.0f * (v[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(v[0], 3.0f, 1e-2f);
}
