// Replica-failure recovery under deterministic fault injection: a killed
// forward pass quarantines the replica, the watchdog rebuilds it, and the
// batch's tiles retry to a bit-identical result; backoff is honoured on the
// injected clock; retry-budget exhaustion fails only the owning tickets;
// poison and stall faults behave as documented; and a leader that dies at
// stitch never leaves a cache entry behind — its followers recompute.
//
// The whole suite rides on POLARICE_FAULT_INJECT (on by default, so these
// recovery paths run in tier-1 CI); a build without it skips cleanly.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <semaphore>
#include <string>
#include <thread>

#include "core/serve/fault_injector.h"
#include "core/serve/scene_server.h"
#include "core/workflow.h"
#include "img/image.h"
#include "nn/unet.h"
#include "par/context.h"
#include "s2/scene.h"
#include "util/virtual_clock.h"

namespace pc = polarice::core;
namespace pv = polarice::core::serve;
namespace pp = polarice::par;
namespace ps = polarice::s2;
namespace pn = polarice::nn;
namespace pi = polarice::img;
namespace pu = polarice::util;

using namespace std::chrono_literals;

namespace {

pn::UNet make_model() {
  pn::UNetConfig cfg;
  cfg.depth = 2;
  cfg.base_channels = 6;
  cfg.use_dropout = false;
  cfg.seed = 88;
  return pn::UNet(cfg);
}

pi::ImageU8 make_scene(std::uint64_t seed, int size = 128) {
  ps::SceneConfig sc;
  sc.width = sc.height = size;
  sc.seed = seed;
  sc.cloudy = true;
  return ps::SceneGenerator(sc).generate().rgb;
}

/// One replica, whole scene in one batch, no cache: every fault lands on a
/// known pass and every forwarded tile is visible in stats().
pv::SceneServerConfig fault_config(pv::FaultInjector* injector,
                                   const pu::Clock* clock = nullptr) {
  pv::SceneServerConfig cfg;
  cfg.tile_size = 64;
  cfg.batch_tiles = 8;
  cfg.min_replicas = cfg.max_replicas = 1;
  cfg.max_batch_wait = 0ms;
  cfg.cache_bytes = 0;
  cfg.retry.backoff_base = 0ms;  // retry immediately unless a test says not
  cfg.retry.backoff_cap = 0ms;
  cfg.fault_injector = injector;
  cfg.clock = clock;
  return cfg;
}

template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

}  // namespace

#if !POLARICE_FAULT_INJECT

TEST(SceneServerFault, Skipped) {
  GTEST_SKIP() << "built with POLARICE_FAULT_INJECT=OFF";
}

#else

TEST(SceneServerFault, KilledReplicaIsRebuiltAndRetriedTilesAreBitIdentical) {
  pn::UNet model = make_model();
  const auto scene = make_scene(61);
  const auto reference = pc::InferenceWorkflow(model, {}, 64)
                             .classify_scene(scene);

  pv::FaultInjector injector;
  injector.arm({pv::FaultSite::kForward, pv::FaultKind::kThrow,
                /*after=*/0, /*count=*/1});
  pv::SceneServer server(model, fault_config(&injector));

  // First forward pass dies; the retry must reproduce the no-fault result
  // exactly — the tiles are re-staged from the scene's intact filtered
  // imagery, and per-tile results do not depend on batch composition.
  EXPECT_EQ(server.classify_scene(scene), reference);

  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.batch_failures, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.retried_tiles, 4u);
  EXPECT_EQ(stats.retry_exhausted, 0u);
  EXPECT_EQ(stats.session.tiles, 4u);  // only the clean retry pass counts
  EXPECT_EQ(stats.replicas_quarantined, 1u);
  // The watchdog rebuild already happened — the retry's forward pass ran on
  // the replacement replica (the pool had no other) — but give the counter
  // a beat in case the rebuilt stat publishes after the lease.
  EXPECT_TRUE(eventually([&] { return server.stats().replicas_rebuilt == 1; }));
  EXPECT_EQ(injector.stats().fired, 1u);
  EXPECT_GE(injector.stats().passes, 2u);
}

TEST(SceneServerFault, RetryBackoffHoldsUntilInjectedClockAdvances) {
  pn::UNet model = make_model();
  const auto scene = make_scene(62);
  const auto reference = pc::InferenceWorkflow(model, {}, 64)
                             .classify_scene(scene);

  pu::VirtualClock clock;
  pv::FaultInjector injector;
  injector.arm({pv::FaultSite::kForward, pv::FaultKind::kThrow,
                /*after=*/0, /*count=*/1});
  auto cfg = fault_config(&injector, &clock);
  cfg.retry.backoff_base = 50ms;
  cfg.retry.backoff_cap = 250ms;
  pv::SceneServer server(model, cfg);

  auto ticket = server.submit(scene.clone());
  ASSERT_TRUE(eventually([&] { return server.stats().retries == 1; }));

  // Plenty of real time passes; virtual time does not, so the retried
  // tiles stay parked behind their backoff.
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(ticket.ready());

  clock.advance(51ms);
  EXPECT_EQ(ticket.get(), reference);
  EXPECT_EQ(server.stats().completed, 1u);
}

TEST(SceneServerFault, BudgetExhaustionFailsOnlyOwningTickets) {
  pn::UNet model = make_model();
  const auto scene_a = make_scene(63);
  const auto scene_b = make_scene(64);
  pc::InferenceWorkflow workflow(model, {}, 64);
  const auto reference_b = workflow.classify_scene(scene_b);

  pv::FaultInjector injector;
  pv::SceneServer server(model, fault_config(&injector));

  // Park the single worker inside a gate scene's delivery so A and B are
  // both queued — and normally share one 8-tile batch — before any faulty
  // forward pass runs.
  std::atomic<int> fanned_out{0};
  std::binary_semaphore first_tile{0}, release{0};
  const pp::ExecutionContext gate_ctx;
  gate_ctx.set_progress_sink([&](const pp::ProgressEvent& event) {
    if (std::string(event.stage) == "serve.tiles" && event.completed == 1) {
      first_tile.release();
      release.acquire();
    }
  });
  const pp::ExecutionContext count_ctx;
  count_ctx.set_progress_sink([&](const pp::ProgressEvent& event) {
    if (std::string(event.stage) == "serve.prepare" && event.completed == 1) {
      fanned_out.fetch_add(1);
    }
  });

  auto gate = server.submit(make_scene(65), gate_ctx);
  first_tile.acquire();  // gate's batch already forwarded cleanly

  pv::SubmitOptions no_budget;
  no_budget.max_retries = 0;
  pv::SubmitOptions deep_budget;
  deep_budget.max_retries = 5;
  auto a = server.submit(scene_a.clone(), no_budget, count_ctx);
  auto b = server.submit(scene_b.clone(), deep_budget, count_ctx);
  ASSERT_TRUE(eventually([&] { return fanned_out.load() == 2; }));

  // Two firings cover both batch layouts: if A and B share a batch, the
  // second firing hits B's retry; if a racing flush split them, it hits
  // B's first batch. Either way A's zero budget is spent by one failure
  // and B retries through to a clean pass.
  injector.arm({pv::FaultSite::kForward, pv::FaultKind::kThrow,
                /*after=*/0, /*count=*/2});
  release.release();

  EXPECT_THROW((void)a.get(), pv::InjectedFault);
  EXPECT_EQ(b.get(), reference_b);
  EXPECT_NO_THROW((void)gate.get());

  const auto stats = server.stats();
  EXPECT_EQ(stats.retry_exhausted, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 2u);  // gate + B
  EXPECT_EQ(stats.batch_failures, 2u);
  EXPECT_EQ(injector.stats().fired, 2u);
}

TEST(SceneServerFault, PoisonedPassCorruptsLabelsAndDisarmRestores) {
  pn::UNet model = make_model();
  const auto scene = make_scene(66);
  const auto reference = pc::InferenceWorkflow(model, {}, 64)
                             .classify_scene(scene);

  pv::FaultInjector injector;
  injector.arm({pv::FaultSite::kForward, pv::FaultKind::kPoison,
                /*after=*/0, /*count=*/-1});
  pv::SceneServer server(model, fault_config(&injector));

  // Silent corruption: the pass "succeeds", the plane is garbage (255 is
  // not a legal class id), and nothing shows up as a failure.
  const auto poisoned = server.classify_scene(scene);
  EXPECT_NE(poisoned, reference);
  bool all_poisoned = true;
  for (int y = 0; y < poisoned.height() && all_poisoned; ++y) {
    for (int x = 0; x < poisoned.width(); ++x) {
      if (poisoned.at(x, y) != 255) {
        all_poisoned = false;
        break;
      }
    }
  }
  EXPECT_TRUE(all_poisoned);
  EXPECT_EQ(server.stats().failed, 0u);
  EXPECT_EQ(server.stats().batch_failures, 0u);

  injector.disarm();
  EXPECT_EQ(server.classify_scene(scene), reference);
  EXPECT_GE(injector.stats().fired, 1u);
}

TEST(SceneServerFault, StalledPassDelaysButCompletesCleanly) {
  pn::UNet model = make_model();
  const auto scene = make_scene(67);
  const auto reference = pc::InferenceWorkflow(model, {}, 64)
                             .classify_scene(scene);

  pv::FaultInjector injector;
  pv::FaultPlan plan;
  plan.site = pv::FaultSite::kForward;
  plan.kind = pv::FaultKind::kStall;
  plan.stall = 30ms;
  injector.arm(plan);
  pv::SceneServer server(model, fault_config(&injector));

  EXPECT_EQ(server.classify_scene(scene), reference);
  EXPECT_EQ(injector.stats().fired, 1u);
  EXPECT_EQ(server.stats().batch_failures, 0u);
}

TEST(SceneServerFault, StitchFailureNeverCachesAndFollowersRecompute) {
  pn::UNet model = make_model();
  const auto scene = make_scene(68);
  const auto reference = pc::InferenceWorkflow(model, {}, 64)
                             .classify_scene(scene);

  pv::FaultInjector injector;
  injector.arm({pv::FaultSite::kStitch, pv::FaultKind::kThrow,
                /*after=*/0, /*count=*/1});
  auto cfg = fault_config(&injector);
  cfg.batch_tiles = 1;
  cfg.cache_bytes = std::size_t{16} << 20;  // cache ON: the guard under test
  cfg.single_flight = true;
  pv::SceneServer server(model, cfg);

  // Park the worker after the leader's first tile so a content-identical
  // follower provably coalesces onto the doomed leader.
  std::binary_semaphore first_tile{0}, release{0};
  const pp::ExecutionContext gate_ctx;
  gate_ctx.set_progress_sink([&](const pp::ProgressEvent& event) {
    if (std::string(event.stage) == "serve.tiles" && event.completed == 1) {
      first_tile.release();
      release.acquire();
    }
  });

  auto leader = server.submit(scene.clone(), gate_ctx);
  first_tile.acquire();
  auto follower = server.submit(scene.clone());
  ASSERT_TRUE(eventually([&] { return server.stats().coalesced == 1; }));
  release.release();

  // The leader dies at stitch — after its forwards, before the cache
  // insert. The follower must not read a stale/absent entry: it is
  // promoted to a fresh leader and re-runs the forward path.
  EXPECT_THROW((void)leader.get(), pv::InjectedFault);
  EXPECT_EQ(follower.get(), reference);

  // Only the follower's (clean) finalize populated the cache: a third
  // content-identical submission hits it and gets the good plane.
  EXPECT_EQ(server.classify_scene(scene), reference);

  const auto stats = server.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 2u);  // follower + cache-hit submission
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.session.tiles, 8u);  // leader 4 + promoted follower 4
  EXPECT_EQ(injector.stats().fired, 1u);
}

#endif  // POLARICE_FAULT_INJECT
