// StreamingExecutor semantics: the streaming corpus must be bit-identical
// to the batch Pipeline for every window size (including a window that does
// not divide the fleet — a ragged last window), honour the residency bound,
// propagate cancellation mid-window, and feed TrainTestSplit identically so
// split assignment matches the batch path exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "core/corpus.h"
#include "core/pipeline.h"
#include "core/stages.h"
#include "core/streaming.h"
#include "core/workflow.h"
#include "par/context.h"
#include "par/thread_pool.h"

namespace pc = polarice::core;
namespace pp = polarice::par;

namespace {

pc::CorpusConfig small_corpus(int num_scenes = 8) {
  pc::CorpusConfig cfg;
  cfg.acquisition.num_scenes = num_scenes;
  cfg.acquisition.scene_size = 128;
  cfg.acquisition.tile_size = 64;
  cfg.acquisition.cloudy_scene_fraction = 0.5;
  cfg.acquisition.seed = 1234;
  return cfg;
}

void expect_tiles_equal(const std::vector<pc::LabeledTile>& a,
                        const std::vector<pc::LabeledTile>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].scene_index, b[i].scene_index);
    EXPECT_EQ(a[i].tile_x, b[i].tile_x);
    EXPECT_EQ(a[i].tile_y, b[i].tile_y);
    EXPECT_DOUBLE_EQ(a[i].cloud_fraction, b[i].cloud_fraction);
    EXPECT_EQ(a[i].rgb, b[i].rgb);
    EXPECT_EQ(a[i].rgb_filtered, b[i].rgb_filtered);
    EXPECT_EQ(a[i].rgb_clean, b[i].rgb_clean);
    EXPECT_EQ(a[i].truth, b[i].truth);
    EXPECT_EQ(a[i].auto_labels, b[i].auto_labels);
    EXPECT_EQ(a[i].manual_labels, b[i].manual_labels);
  }
}

}  // namespace

TEST(StreamingCorpus, BitIdenticalToBatchAcrossWindowSizes) {
  const auto cfg = small_corpus();
  pp::ThreadPool pool(4);
  const pp::ExecutionContext ctx(&pool);
  const auto batch = pc::prepare_corpus(cfg, ctx);

  for (const std::size_t window :
       {std::size_t{1}, std::size_t{2},
        static_cast<std::size_t>(cfg.acquisition.num_scenes)}) {
    auto streaming_cfg = cfg;
    streaming_cfg.execution = pc::CorpusExecution::streaming(window);
    const auto streamed = pc::prepare_corpus(streaming_cfg, ctx);
    expect_tiles_equal(batch, streamed);
  }
}

TEST(StreamingCorpus, RaggedLastWindowAndSequentialContext) {
  // 5 scenes through a window of 2: the last window holds one scene. Also
  // exercises the no-pool path (window degenerates to one-at-a-time).
  const auto cfg = small_corpus(/*num_scenes=*/5);
  const auto batch = pc::prepare_corpus(cfg);

  auto streaming_cfg = cfg;
  streaming_cfg.execution = pc::CorpusExecution::streaming(2);
  const auto sequential = pc::prepare_corpus(streaming_cfg);
  expect_tiles_equal(batch, sequential);

  pp::ThreadPool pool(3);
  const auto pooled =
      pc::prepare_corpus(streaming_cfg, pp::ExecutionContext(&pool));
  expect_tiles_equal(batch, pooled);
}

TEST(StreamingCorpus, WindowLargerThanFleetIsFine) {
  const auto cfg = small_corpus(/*num_scenes=*/3);
  pp::ThreadPool pool(4);
  const pp::ExecutionContext ctx(&pool);
  auto streaming_cfg = cfg;
  streaming_cfg.execution = pc::CorpusExecution::streaming(16);
  expect_tiles_equal(pc::prepare_corpus(cfg, ctx),
                     pc::prepare_corpus(streaming_cfg, ctx));
}

TEST(StreamingExecutor, ResidencyNeverExceedsWindow) {
  const auto cfg = small_corpus();
  pp::ThreadPool pool(4);
  const pp::ExecutionContext ctx(&pool);
  const auto stages = pc::make_corpus_stages(cfg);

  const pc::StreamingExecutor executor(2);
  pc::StreamingStats stats;
  const auto tiles = executor.run(
      stages, static_cast<std::size_t>(cfg.acquisition.num_scenes), ctx,
      &stats);
  EXPECT_EQ(tiles.size(), 8u * 4u);
  EXPECT_EQ(stats.scenes, 8u);
  EXPECT_GE(stats.peak_in_flight, 1u);
  EXPECT_LE(stats.peak_in_flight, 2u);
}

TEST(StreamingExecutor, RejectsZeroWindow) {
  EXPECT_THROW(pc::StreamingExecutor(0), std::invalid_argument);
  pc::CorpusConfig cfg = small_corpus();
  cfg.execution = pc::CorpusExecution::streaming(0);
  EXPECT_THROW(pc::prepare_corpus(cfg), std::invalid_argument);
}

TEST(StreamingExecutor, CancellationMidWindowPropagates) {
  const auto cfg = small_corpus();
  pp::ThreadPool pool(4);
  const pp::ExecutionContext ctx(&pool);
  // Cancel after the second scene completes: scenes are mid-window on a
  // live pool, the admission loop stops, and the in-flight tasks drain into
  // OperationCancelled.
  std::atomic<std::size_t> seen{0};
  ctx.set_progress_sink([&](const pp::ProgressEvent& event) {
    if (std::string(event.stage) == "corpus_stream" &&
        seen.fetch_add(1) + 1 == 2) {
      ctx.request_cancel();
    }
  });
  auto streaming_cfg = cfg;
  streaming_cfg.execution = pc::CorpusExecution::streaming(2);
  EXPECT_THROW(pc::prepare_corpus(streaming_cfg, ctx),
               pp::OperationCancelled);
}

TEST(StreamingCorpusStage, MatchesBatchPipelineIncludingSplit) {
  // The whole Fig 2 front half under both execution modes: tiles AND the
  // seeded train/test split assignment must match bit for bit.
  const auto cfg = small_corpus();
  pp::ThreadPool pool(4);
  const pp::ExecutionContext ctx(&pool);

  const auto run_graph = [&](bool streaming) {
    pc::Pipeline pipeline;
    if (streaming) {
      pipeline.emplace<pc::StreamingCorpusStage>(cfg, /*window=*/2);
    } else {
      for (auto& stage : pc::make_corpus_stages(cfg)) {
        pipeline.add(std::move(stage));
      }
    }
    pipeline.emplace<pc::TrainTestSplitStage>(0.8, /*seed=*/77);
    pc::ArtifactStore store;
    pipeline.run(ctx, store);
    if (streaming) {
      // Streaming subsumes DropArtifactsStage: no scene-level planes ever
      // entered the store.
      EXPECT_FALSE(store.has(pc::keys::kScenes));
      EXPECT_FALSE(store.has(pc::keys::kFilteredImages));
      EXPECT_FALSE(store.has(pc::keys::kAutoLabels));
      EXPECT_FALSE(store.has(pc::keys::kManualLabels));
    }
    return std::make_pair(
        store.take<std::vector<pc::LabeledTile>>(pc::keys::kTrainTiles),
        store.take<std::vector<pc::LabeledTile>>(pc::keys::kTestTiles));
  };

  const auto [batch_train, batch_test] = run_graph(false);
  const auto [stream_train, stream_test] = run_graph(true);
  expect_tiles_equal(batch_train, stream_train);
  expect_tiles_equal(batch_test, stream_test);
}

TEST(StreamingCorpus, WorkflowConfigCarriesExecution) {
  pc::WorkflowConfig cfg;
  cfg.corpus_execution = pc::CorpusExecution::streaming(3);
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.corpus_config().execution.window, 3u);
  cfg.corpus_execution.window = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}
