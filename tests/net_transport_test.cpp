// net/transport.h — endpoints, listeners, connections, deadlines.
//
// Unix-domain sockets are the backbone (always available in the sandbox);
// the TCP cases skip gracefully where loopback binding is forbidden.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "net/transport.h"
#include "net/wire.h"
#include "util/virtual_clock.h"

namespace {

using namespace polarice;
using namespace polarice::net;

std::string test_socket_path(const char* tag) {
  return "/tmp/polarice-net-test-" + std::to_string(::getpid()) + "-" + tag +
         ".sock";
}

TEST(NetEndpoint, ParsesUnixAndTcpSpecs) {
  const auto unix_ep = Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(unix_ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep.path, "/tmp/x.sock");
  EXPECT_EQ(unix_ep.to_string(), "unix:/tmp/x.sock");

  const auto tcp_ep = Endpoint::parse("tcp:127.0.0.1:7400");
  EXPECT_EQ(tcp_ep.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp_ep.host, "127.0.0.1");
  EXPECT_EQ(tcp_ep.port, 7400);
  EXPECT_EQ(tcp_ep.to_string(), "tcp:127.0.0.1:7400");
}

TEST(NetEndpoint, RejectsMalformedSpecsLoudly) {
  // Satellite contract: flag typos raise, they never fall back to defaults.
  for (const char* bad :
       {"", "unix:", "tcp:", "tcp:127.0.0.1", "tcp::7400", "tcp:host:0x10",
        "tcp:host:99999", "tcp:host:-1", "tcp:host:", "http:foo",
        "unix", "tcp:h:12 ", "tcp:h:12junk"}) {
    EXPECT_THROW((void)Endpoint::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(NetEndpoint, ParsesCommaSeparatedLists) {
  const auto list =
      parse_endpoint_list("unix:/a.sock,tcp:127.0.0.1:7401,unix:/b.sock");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].path, "/a.sock");
  EXPECT_EQ(list[1].port, 7401);
  EXPECT_EQ(list[2].path, "/b.sock");

  EXPECT_THROW((void)parse_endpoint_list(""), std::invalid_argument);
  EXPECT_THROW((void)parse_endpoint_list("unix:/a.sock,,unix:/b.sock"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_endpoint_list("unix:/a.sock,bogus"),
               std::invalid_argument);
}

TEST(NetTransport, UnixFrameEcho) {
  const auto path = test_socket_path("echo");
  auto listener = Listener::bind(Endpoint::parse("unix:" + path));

  std::jthread server([&] {
    auto peer = listener.accept(std::chrono::milliseconds(2000));
    ASSERT_TRUE(peer.valid());
    auto frame = peer.read_frame();
    peer.write_frame(frame.type, frame.payload);  // echo
  });

  auto client = connect(Endpoint::parse("unix:" + path));
  WireWriter writer;
  writer.put_u64(0xFEEDFACEull);
  writer.put_string("shard hello");
  client.write_frame(MsgType::kHeartbeatRequest, writer.bytes());
  const auto echoed = client.read_frame();
  EXPECT_EQ(echoed.type, MsgType::kHeartbeatRequest);
  EXPECT_EQ(echoed.payload, writer.bytes());
  server.join();
  listener.close();
}

TEST(NetTransport, WaitReadableTicksIdleThenSeesDataAndEof) {
  const auto path = test_socket_path("waitread");
  auto listener = Listener::bind(Endpoint::parse("unix:" + path));

  auto client = connect(Endpoint::parse("unix:" + path));
  auto peer = listener.accept(std::chrono::milliseconds(2000));
  ASSERT_TRUE(peer.valid());

  // Idle: times out without consuming anything.
  EXPECT_FALSE(peer.wait_readable(std::chrono::milliseconds(10)));

  // Data pending: readable, and the frame then reads back intact — the
  // wait consumed no bytes.
  WireWriter writer;
  writer.put_string("ping");
  client.write_frame(MsgType::kHeartbeatRequest, writer.bytes());
  EXPECT_TRUE(peer.wait_readable(std::chrono::milliseconds(2000)));
  const auto frame = peer.read_frame();
  EXPECT_EQ(frame.payload, writer.bytes());

  // EOF reports readable (the next read surfaces the typed error).
  client.close();
  EXPECT_TRUE(peer.wait_readable(std::chrono::milliseconds(2000)));
  EXPECT_THROW((void)peer.read_frame(), TransportError);
  listener.close();
}

TEST(NetTransport, LargeFrameCrossesWholeInPieces) {
  // Bigger than any single socket buffer: exercises partial read/write
  // loops, not just the happy single-syscall path.
  const auto path = test_socket_path("large");
  auto listener = Listener::bind(Endpoint::parse("unix:" + path));

  std::vector<std::uint8_t> payload(std::size_t{3} << 20);  // 3 MB
  std::uint32_t state = 5u;
  for (auto& byte : payload) {
    state = state * 1664525u + 1013904223u;
    byte = static_cast<std::uint8_t>(state >> 24);
  }

  std::jthread server([&] {
    auto peer = listener.accept(std::chrono::milliseconds(2000));
    ASSERT_TRUE(peer.valid());
    const auto frame = peer.read_frame();
    EXPECT_EQ(frame.payload, payload);  // checksum verified inside
    peer.write_frame(MsgType::kSubmitResponse, {});
  });

  auto client = connect(Endpoint::parse("unix:" + path));
  client.write_frame(MsgType::kSubmitRequest, payload);
  EXPECT_EQ(client.read_frame().type, MsgType::kSubmitResponse);
  server.join();
}

TEST(NetTransport, ReadDeadlineSurfacesAsTimeout) {
  const auto path = test_socket_path("deadline");
  auto listener = Listener::bind(Endpoint::parse("unix:" + path));

  std::jthread server([&] {
    auto peer = listener.accept(std::chrono::milliseconds(2000));
    // Accept and then stay silent; holding the socket open keeps the
    // client blocked until its deadline, not until EOF.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  });

  auto client = connect(Endpoint::parse("unix:" + path));
  const auto deadline =
      client.clock().now() + std::chrono::milliseconds(100);
  EXPECT_THROW((void)client.read_frame(deadline), TransportTimeout);
  server.join();
}

TEST(NetTransport, FrozenVirtualClockNeverTimesOutButRealDataArrives) {
  // The clock discipline: a frozen VirtualClock means the deadline never
  // arrives — but real bytes still unblock the read. This is the "clock
  // only answers now()" contract end to end.
  const auto path = test_socket_path("vclock");
  util::VirtualClock clock;
  auto listener = Listener::bind(Endpoint::parse("unix:" + path), &clock);

  std::jthread server([&] {
    auto peer = listener.accept(std::chrono::milliseconds(2000));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    peer.write_frame(MsgType::kHeartbeatResponse, {});
  });

  auto client = connect(Endpoint::parse("unix:" + path), &clock);
  const auto deadline = clock.now() + std::chrono::milliseconds(1);
  // 1ms of virtual time never elapses (nobody advances the clock), so the
  // read waits for the real frame instead of timing out.
  const auto frame = client.read_frame(deadline);
  EXPECT_EQ(frame.type, MsgType::kHeartbeatResponse);
  server.join();
}

TEST(NetTransport, PeerCloseMidFrameIsTransportError) {
  const auto path = test_socket_path("midframe");
  auto listener = Listener::bind(Endpoint::parse("unix:" + path));

  std::jthread server([&] {
    auto peer = listener.accept(std::chrono::milliseconds(2000));
    // Write only half a header, then slam the connection.
    const auto frame = encode_frame(MsgType::kSubmitResponse, {1, 2, 3});
    peer.write_all(frame.data(), kFrameHeaderBytes / 2);
    peer.close();
  });

  auto client = connect(Endpoint::parse("unix:" + path));
  EXPECT_THROW((void)client.read_frame(), TransportError);
  server.join();
}

TEST(NetTransport, ConnectToNothingFailsFast) {
  EXPECT_THROW(
      (void)connect(Endpoint::parse("unix:" + test_socket_path("nowhere"))),
      TransportError);
}

TEST(NetTransport, AcceptTimeoutReturnsInvalidConnection) {
  const auto path = test_socket_path("tick");
  auto listener = Listener::bind(Endpoint::parse("unix:" + path));
  const auto start = std::chrono::steady_clock::now();
  auto connection = listener.accept(std::chrono::milliseconds(30));
  EXPECT_FALSE(connection.valid());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(25));
}

TEST(NetTransport, UnixListenerUnlinksPathOnClose) {
  const auto path = test_socket_path("unlink");
  {
    auto listener = Listener::bind(Endpoint::parse("unix:" + path));
    EXPECT_EQ(::access(path.c_str(), F_OK), 0);
  }
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(NetTransport, TcpLoopbackEchoWithKernelPort) {
  Listener listener;
  try {
    listener = Listener::bind(Endpoint::parse("tcp:127.0.0.1:0"));
  } catch (const TransportError&) {
    GTEST_SKIP() << "TCP loopback binding unavailable in this sandbox";
  }
  const auto endpoint = listener.endpoint();
  EXPECT_GT(endpoint.port, 0);  // kernel-resolved

  std::jthread server([&] {
    auto peer = listener.accept(std::chrono::milliseconds(2000));
    ASSERT_TRUE(peer.valid());
    auto frame = peer.read_frame();
    peer.write_frame(frame.type, frame.payload);
  });

  auto client = connect(endpoint);
  client.write_frame(MsgType::kShutdownRequest, {9, 9});
  const auto echoed = client.read_frame();
  EXPECT_EQ(echoed.type, MsgType::kShutdownRequest);
  EXPECT_EQ(echoed.payload, (std::vector<std::uint8_t>{9, 9}));
  server.join();
}

}  // namespace
