// ReplicaPool failure handling: quarantine via Lease::mark_failed, repair()
// rebuilding from a healthy source (including the pristine master when every
// serving replica died), the max_size cap on rebuilds, and a stress test of
// shrink() racing ensure()/grow/quarantine/repair with the pool invariants
// checked throughout — lease counts can never go negative and the pool size
// stays within [1, max_size].

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/serve/replica_pool.h"
#include "nn/unet.h"

namespace pv = polarice::core::serve;
namespace pn = polarice::nn;

namespace {

/// Smallest cloneable model: pool tests never run forward passes, so the
/// weights only have to exist.
pn::UNet tiny_model() {
  pn::UNetConfig cfg;
  cfg.depth = 1;
  cfg.base_channels = 2;
  cfg.use_dropout = false;
  cfg.seed = 7;
  return pn::UNet(cfg);
}

}  // namespace

TEST(ReplicaPool, QuarantineRemovesReplicaAndRepairRebuilds) {
  pn::UNet model = tiny_model();
  pv::ReplicaPool pool(model, 2, 3);
  ASSERT_EQ(pool.size(), 2);

  {
    pv::ReplicaPool::Lease lease(pool);
    EXPECT_EQ(pool.leases(), 1u);
    lease.mark_failed();
  }
  // The failed replica left service, not the free list.
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.leases(), 0u);
  EXPECT_EQ(pool.quarantined(), 1);
  EXPECT_EQ(pool.total_quarantined(), 1u);

  EXPECT_EQ(pool.repair(), 1);
  EXPECT_EQ(pool.size(), 2);
  EXPECT_EQ(pool.quarantined(), 0);
  EXPECT_EQ(pool.total_rebuilt(), 1u);

  // A healthy lease still works after the rebuild.
  pv::ReplicaPool::Lease lease(pool);
  EXPECT_EQ(pool.leases(), 1u);
}

TEST(ReplicaPool, AllReplicasDeadRecoversViaMaster) {
  pn::UNet model = tiny_model();
  pv::ReplicaPool pool(model, 1, 1);

  { pv::ReplicaPool::Lease doomed(pool); doomed.mark_failed(); }
  ASSERT_EQ(pool.size(), 0);  // no serving replica left to clone from

  EXPECT_EQ(pool.repair(), 1);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.quarantined(), 0);
  pv::ReplicaPool::Lease lease(pool);  // must not block
  EXPECT_EQ(pool.leases(), 1u);
}

TEST(ReplicaPool, RepairOnlyDestroysCorpseWhenPoolRegrewToMax) {
  pn::UNet model = tiny_model();
  pv::ReplicaPool pool(model, 1, 2);

  { pv::ReplicaPool::Lease doomed(pool); doomed.mark_failed(); }
  ASSERT_EQ(pool.size(), 0);
  // An acquire-driven regrow beats the watchdog to the corpse's slot (the
  // empty pool grows from the master).
  pool.ensure(2);
  ASSERT_EQ(pool.size(), 2);

  // Repair still destroys the corpse but must not push past max_size.
  EXPECT_EQ(pool.repair(), 0);
  EXPECT_EQ(pool.size(), 2);
  EXPECT_EQ(pool.quarantined(), 0);
  EXPECT_EQ(pool.total_rebuilt(), 0u);
}

TEST(ReplicaPool, ShrinkRacingEnsureAndQuarantineKeepsInvariants) {
  pn::UNet model = tiny_model();
  constexpr int kMax = 4;
  pv::ReplicaPool pool(model, 2, kMax);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> failures_marked{0};

  // Leasing threads: grab a replica (growing on demand), occasionally mark
  // it failed. This races lease bookkeeping against everything below.
  std::vector<std::jthread> lessees;
  for (int t = 0; t < 4; ++t) {
    lessees.emplace_back([&, t] {
      for (int i = 0; i < 120; ++i) {
        pv::ReplicaPool::Lease lease(pool, /*allow_grow=*/true);
        if ((i + t) % 7 == 0) {
          lease.mark_failed();
          failures_marked.fetch_add(1);
        }
        std::this_thread::yield();
      }
    });
  }
  // Resizer thread: queue-depth scale-up and idle scale-down fighting each
  // other, exactly as the SceneServer's scheduler drives them.
  std::jthread resizer([&] {
    while (!stop.load()) {
      pool.ensure(kMax);
      std::this_thread::yield();
      pool.shrink(1);
    }
  });
  // Watchdog thread: rebuild whatever the lessees kill, concurrently with
  // the resizer's grows and shrinks.
  std::jthread watchdog([&] {
    while (!stop.load()) {
      pool.repair();
      std::this_thread::yield();
    }
  });

  for (auto& thread : lessees) thread.join();
  stop.store(true);
  resizer.join();
  watchdog.join();
  pool.repair();  // clear any corpse the watchdog missed at shutdown

  // Invariants, not schedules: no lease outstanding (and the count never
  // went negative — a size_t underflow would explode peak_leases), the
  // pool landed within [1, max], every mark_failed became a quarantine,
  // and the pool still serves.
  EXPECT_EQ(pool.leases(), 0u);
  EXPECT_LE(pool.peak_leases(), static_cast<std::size_t>(kMax));
  EXPECT_GE(pool.size(), 1);
  EXPECT_LE(pool.size(), kMax);
  EXPECT_LE(pool.peak_size(), kMax);
  EXPECT_EQ(pool.quarantined(), 0);
  EXPECT_EQ(pool.total_quarantined(), failures_marked.load());
  // total_rebuilt() is schedule-dependent here: when ensure() regrows the
  // pool to max before the watchdog claims a corpse, repair() correctly
  // destroys without rebuilding — the deterministic tests above pin the
  // rebuild path down.
  pv::ReplicaPool::Lease lease(pool);
  EXPECT_EQ(pool.leases(), 1u);
}
