// Synthetic Sentinel-2 substrate tests: noise determinism, scene statistics,
// class/HSV consistency, tiling, manual-label simulation, acquisition.

#include <gtest/gtest.h>

#include "img/color.h"
#include "metrics/metrics.h"
#include "s2/acquisition.h"
#include "s2/manual_label.h"
#include "s2/noise.h"
#include "s2/scene.h"
#include "s2/tiles.h"

namespace ps = polarice::s2;
namespace pi = polarice::img;

namespace {
ps::SceneConfig test_scene_config(bool cloudy, std::uint64_t seed = 11) {
  ps::SceneConfig cfg;
  cfg.width = 256;
  cfg.height = 256;
  cfg.seed = seed;
  cfg.cloudy = cloudy;
  return cfg;
}
}  // namespace

TEST(PerlinNoise, DeterministicPerSeed) {
  ps::PerlinNoise a(5), b(5), c(6);
  EXPECT_DOUBLE_EQ(a.at(1.3, 2.7), b.at(1.3, 2.7));
  EXPECT_NE(a.at(1.3, 2.7), c.at(1.3, 2.7));
}

TEST(PerlinNoise, BoundedRoughlyUnitRange) {
  ps::PerlinNoise n(7);
  for (int i = 0; i < 2000; ++i) {
    const double v = n.at(i * 0.37, i * 0.61);
    EXPECT_GE(v, -1.5);
    EXPECT_LE(v, 1.5);
  }
}

TEST(PerlinNoise, ZeroAtLatticePoints) {
  ps::PerlinNoise n(8);
  EXPECT_DOUBLE_EQ(n.at(3.0, 4.0), 0.0);
}

TEST(PerlinNoise, FbmIsSmootherThanItLooks) {
  // Neighbouring samples must be close (continuity).
  ps::PerlinNoise n(9);
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.11, y = i * 0.07;
    EXPECT_NEAR(n.fbm(x, y, 5), n.fbm(x + 0.01, y, 5), 0.1);
  }
}

TEST(SceneGenerator, DeterministicPerConfig) {
  const auto a = ps::SceneGenerator(test_scene_config(true)).generate();
  const auto b = ps::SceneGenerator(test_scene_config(true)).generate();
  EXPECT_EQ(a.rgb, b.rgb);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(SceneGenerator, DifferentSeedsDiffer) {
  const auto a = ps::SceneGenerator(test_scene_config(true, 1)).generate();
  const auto b = ps::SceneGenerator(test_scene_config(true, 2)).generate();
  EXPECT_FALSE(a.rgb == b.rgb);
}

TEST(SceneGenerator, ClassFractionsApproximatelyHonored) {
  auto cfg = test_scene_config(false);
  cfg.width = cfg.height = 512;
  cfg.water_fraction = 0.3;
  cfg.thin_fraction = 0.35;
  const auto scene = ps::SceneGenerator(cfg).generate();
  std::array<std::size_t, 3> counts{};
  for (const auto v : scene.labels) ++counts[v];
  const double total = 512.0 * 512.0;
  EXPECT_NEAR(counts[0] / total, 0.30, 0.02);
  EXPECT_NEAR(counts[1] / total, 0.35, 0.02);
  EXPECT_NEAR(counts[2] / total, 0.35, 0.02);
}

TEST(SceneGenerator, CleanSceneVMatchesClassBands) {
  // Property: on a clean scene, every pixel's HSV V sits inside its class's
  // paper threshold band — this is what makes auto-labeling work.
  const auto scene = ps::SceneGenerator(test_scene_config(false)).generate();
  const auto hsv = pi::rgb_to_hsv(scene.rgb);
  for (int y = 0; y < scene.rgb.height(); ++y) {
    for (int x = 0; x < scene.rgb.width(); ++x) {
      const int v = hsv.at(x, y, 2);
      const int cls = scene.labels.at(x, y);
      const auto& range = ps::kPaperHsvRanges[cls];
      ASSERT_GE(v, range.lower[2]) << "at " << x << "," << y;
      ASSERT_LE(v, range.upper[2]) << "at " << x << "," << y;
    }
  }
}

TEST(SceneGenerator, CleanSceneHasZeroCloudCover) {
  const auto scene = ps::SceneGenerator(test_scene_config(false)).generate();
  EXPECT_DOUBLE_EQ(scene.cloud_cover_fraction(), 0.0);
  EXPECT_EQ(scene.rgb, scene.rgb_clean);
}

TEST(SceneGenerator, CloudySceneHasCoverAndDistortion) {
  const auto scene = ps::SceneGenerator(test_scene_config(true)).generate();
  EXPECT_GT(scene.cloud_cover_fraction(), 0.1);
  EXPECT_FALSE(scene.rgb == scene.rgb_clean);
}

TEST(SceneGenerator, HazeBrightensShadowsDarken) {
  auto cfg = test_scene_config(true);
  cfg.shadow_strength = 0.0;  // haze only
  const auto hazed = ps::SceneGenerator(cfg).generate();
  double brightened = 0, count = 0;
  for (int y = 0; y < cfg.height; ++y) {
    for (int x = 0; x < cfg.width; ++x) {
      if (hazed.cloud_opacity.at(x, y) > 0.1) {
        brightened += int(hazed.rgb.at(x, y, 2)) -
                      int(hazed.rgb_clean.at(x, y, 2));
        ++count;
      }
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_GT(brightened / count, 5.0);  // haze raises brightness on average
}

TEST(SceneGenerator, ValidatesConfig) {
  auto cfg = test_scene_config(true);
  cfg.water_fraction = 0.9;
  cfg.thin_fraction = 0.3;
  EXPECT_THROW(ps::SceneGenerator{cfg}, std::invalid_argument);
  cfg = test_scene_config(true);
  cfg.thick_v_lo = 190;  // violates the paper band nesting
  EXPECT_THROW(ps::SceneGenerator{cfg}, std::invalid_argument);
  cfg = test_scene_config(true);
  cfg.width = 0;
  EXPECT_THROW(ps::SceneGenerator{cfg}, std::invalid_argument);
}

TEST(Labels, ColorizeRoundTrip) {
  pi::ImageU8 labels(4, 2, 1);
  labels.at(0, 0) = 0;
  labels.at(1, 0) = 1;
  labels.at(2, 0) = 2;
  const auto rgb = ps::colorize_labels(labels);
  EXPECT_EQ(rgb.at(0, 0, 1), 255);  // water -> green
  EXPECT_EQ(rgb.at(1, 0, 2), 255);  // thin -> blue
  EXPECT_EQ(rgb.at(2, 0, 0), 255);  // thick -> red
  EXPECT_EQ(ps::labels_from_colors(rgb), labels);
}

TEST(Labels, RoundTripGuards) {
  pi::ImageU8 bad(2, 2, 1, 9);
  EXPECT_THROW(ps::colorize_labels(bad), std::invalid_argument);
  pi::ImageU8 white(2, 2, 3, 255);
  EXPECT_THROW(ps::labels_from_colors(white), std::invalid_argument);
}

TEST(Tiles, SplitCoversSceneExactly) {
  const auto scene = ps::SceneGenerator(test_scene_config(true)).generate();
  const auto tiles = ps::split_scene(scene, 64, 3);
  ASSERT_EQ(tiles.size(), 16u);  // 256/64 = 4 per axis
  for (const auto& t : tiles) {
    EXPECT_EQ(t.rgb.width(), 64);
    EXPECT_EQ(t.scene_index, 3);
  }
  // Pixel-exact reassembly of the labels.
  std::vector<pi::ImageU8> planes;
  for (const auto& t : tiles) planes.push_back(t.labels);
  EXPECT_EQ(ps::stitch_labels(planes, 4, 4), scene.labels);
}

TEST(Tiles, CloudFractionConsistentWithScene) {
  const auto scene = ps::SceneGenerator(test_scene_config(true)).generate();
  const auto tiles = ps::split_scene(scene, 64);
  double mean_fraction = 0.0;
  for (const auto& t : tiles) {
    EXPECT_GE(t.cloud_fraction, 0.0);
    EXPECT_LE(t.cloud_fraction, 1.0);
    mean_fraction += t.cloud_fraction;
  }
  mean_fraction /= static_cast<double>(tiles.size());
  EXPECT_NEAR(mean_fraction, scene.cloud_cover_fraction(), 1e-9);
}

TEST(Tiles, GuardsBadInput) {
  const auto scene = ps::SceneGenerator(test_scene_config(false)).generate();
  EXPECT_THROW(ps::split_scene(scene, 0), std::invalid_argument);
  std::vector<pi::ImageU8> planes(2, pi::ImageU8(4, 4, 1));
  EXPECT_THROW(ps::stitch_labels(planes, 2, 2), std::invalid_argument);
}

TEST(ManualLabels, HighButImperfectAgreement) {
  const auto scene = ps::SceneGenerator(test_scene_config(false)).generate();
  const auto manual = ps::simulate_manual_labels(scene.labels);
  std::vector<int> truth, annotated;
  for (int y = 0; y < scene.labels.height(); ++y) {
    for (int x = 0; x < scene.labels.width(); ++x) {
      truth.push_back(scene.labels.at(x, y));
      annotated.push_back(manual.at(x, y));
    }
  }
  const double agreement = polarice::metrics::pixel_accuracy(truth, annotated);
  EXPECT_GT(agreement, 0.95);  // annotators are good...
  EXPECT_LT(agreement, 0.9999);  // ...but not perfect
}

TEST(ManualLabels, DeterministicPerSeedAndDistinctAcrossSeeds) {
  const auto scene = ps::SceneGenerator(test_scene_config(false)).generate();
  ps::ManualLabelConfig cfg;
  cfg.seed = 1;
  const auto a = ps::simulate_manual_labels(scene.labels, cfg);
  const auto b = ps::simulate_manual_labels(scene.labels, cfg);
  EXPECT_EQ(a, b);
  cfg.seed = 2;
  const auto c = ps::simulate_manual_labels(scene.labels, cfg);
  EXPECT_FALSE(a == c);
}

TEST(ManualLabels, PreservesClassInventory) {
  const auto scene = ps::SceneGenerator(test_scene_config(false)).generate();
  const auto manual = ps::simulate_manual_labels(scene.labels);
  for (const auto v : manual) EXPECT_LT(v, 3);
}

TEST(Acquisition, ProducesConfiguredTileCount) {
  ps::AcquisitionConfig cfg;
  cfg.num_scenes = 4;
  cfg.scene_size = 128;
  cfg.tile_size = 64;
  cfg.cloudy_scene_fraction = 0.5;
  const auto tiles = ps::acquire_tiles(cfg);
  EXPECT_EQ(tiles.size(), 16u);  // 4 scenes x 4 tiles
  EXPECT_EQ(cfg.total_tiles(), 16);
  // First half of scenes are cloudy: some tiles must carry cloud fraction.
  double cloudy_tiles = 0;
  for (const auto& t : tiles) cloudy_tiles += t.cloud_fraction > 0.01;
  EXPECT_GT(cloudy_tiles, 0);
}

TEST(Acquisition, ValidatesConfig) {
  ps::AcquisitionConfig cfg;
  cfg.scene_size = 100;
  cfg.tile_size = 64;  // not a divisor
  EXPECT_THROW(ps::acquire_tiles(cfg), std::invalid_argument);
  cfg = ps::AcquisitionConfig{};
  cfg.num_scenes = 0;
  EXPECT_THROW(ps::acquire_tiles(cfg), std::invalid_argument);
  cfg = ps::AcquisitionConfig{};
  cfg.cloudy_scene_fraction = 1.5;
  EXPECT_THROW(ps::acquire_tiles(cfg), std::invalid_argument);
}
