// Color conversion tests: OpenCV-convention HSV, grayscale, channel ops.

#include <gtest/gtest.h>

#include "img/color.h"

namespace pi = polarice::img;

TEST(RgbToHsvPixel, PureRed) {
  const auto hsv = pi::rgb_to_hsv_pixel(255, 0, 0);
  EXPECT_EQ(hsv[0], 0);
  EXPECT_EQ(hsv[1], 255);
  EXPECT_EQ(hsv[2], 255);
}

TEST(RgbToHsvPixel, PureGreen) {
  const auto hsv = pi::rgb_to_hsv_pixel(0, 255, 0);
  EXPECT_EQ(hsv[0], 60);  // 120 deg / 2
  EXPECT_EQ(hsv[1], 255);
  EXPECT_EQ(hsv[2], 255);
}

TEST(RgbToHsvPixel, PureBlue) {
  const auto hsv = pi::rgb_to_hsv_pixel(0, 0, 255);
  EXPECT_EQ(hsv[0], 120);  // 240 deg / 2
  EXPECT_EQ(hsv[1], 255);
  EXPECT_EQ(hsv[2], 255);
}

TEST(RgbToHsvPixel, WhiteHasZeroSaturation) {
  const auto hsv = pi::rgb_to_hsv_pixel(255, 255, 255);
  EXPECT_EQ(hsv[1], 0);
  EXPECT_EQ(hsv[2], 255);
}

TEST(RgbToHsvPixel, BlackHasZeroValue) {
  const auto hsv = pi::rgb_to_hsv_pixel(0, 0, 0);
  EXPECT_EQ(hsv[0], 0);
  EXPECT_EQ(hsv[1], 0);
  EXPECT_EQ(hsv[2], 0);
}

TEST(RgbToHsvPixel, GrayKeepsValueOnly) {
  const auto hsv = pi::rgb_to_hsv_pixel(128, 128, 128);
  EXPECT_EQ(hsv[1], 0);
  EXPECT_EQ(hsv[2], 128);
}

TEST(HsvToRgbPixel, ZeroSaturationIsGray) {
  const auto rgb = pi::hsv_to_rgb_pixel(90, 0, 200);
  EXPECT_EQ(rgb[0], 200);
  EXPECT_EQ(rgb[1], 200);
  EXPECT_EQ(rgb[2], 200);
}

// Property: RGB -> HSV -> RGB round-trips within quantization error over a
// broad color grid.
class HsvRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(HsvRoundTrip, RoundTripWithinQuantization) {
  const int step = 17;
  const int base = GetParam();
  for (int r = base; r < 256; r += step) {
    for (int g = 0; g < 256; g += step) {
      for (int b = 0; b < 256; b += step) {
        const auto hsv = pi::rgb_to_hsv_pixel(
            static_cast<std::uint8_t>(r), static_cast<std::uint8_t>(g),
            static_cast<std::uint8_t>(b));
        const auto rgb = pi::hsv_to_rgb_pixel(hsv[0], hsv[1], hsv[2]);
        // 8-bit H is degrees/2 so hue quantization can move channels by a
        // few counts; value (max channel) must be nearly exact.
        EXPECT_NEAR(int(rgb[0]), r, 6);
        EXPECT_NEAR(int(rgb[1]), g, 6);
        EXPECT_NEAR(int(rgb[2]), b, 6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ColorGrid, HsvRoundTrip, ::testing::Values(0, 5, 11));

TEST(RgbToHsvImage, ValueChannelIsMaxChannel) {
  pi::ImageU8 rgb(4, 3, 3);
  rgb.at(1, 2, 0) = 10;
  rgb.at(1, 2, 1) = 200;
  rgb.at(1, 2, 2) = 55;
  const auto hsv = pi::rgb_to_hsv(rgb);
  EXPECT_EQ(hsv.at(1, 2, 2), 200);
}

TEST(RgbToHsvImage, RejectsWrongChannelCount) {
  pi::ImageU8 gray(4, 4, 1);
  EXPECT_THROW(pi::rgb_to_hsv(gray), std::invalid_argument);
  EXPECT_THROW(pi::hsv_to_rgb(gray), std::invalid_argument);
  EXPECT_THROW(pi::rgb_to_gray(gray), std::invalid_argument);
}

TEST(RgbToGray, UsesRec601Weights) {
  pi::ImageU8 rgb(1, 1, 3);
  rgb.at(0, 0, 0) = 255;  // pure red
  auto gray = pi::rgb_to_gray(rgb);
  EXPECT_NEAR(int(gray.at(0, 0)), 76, 1);  // 0.299 * 255

  rgb.fill(0);
  rgb.at(0, 0, 1) = 255;  // pure green
  gray = pi::rgb_to_gray(rgb);
  EXPECT_NEAR(int(gray.at(0, 0)), 150, 1);  // 0.587 * 255
}

TEST(RgbToGray, GrayInputIsIdentity) {
  pi::ImageU8 rgb(2, 2, 3);
  for (int c = 0; c < 3; ++c) rgb.at(1, 1, c) = 99;
  const auto gray = pi::rgb_to_gray(rgb);
  EXPECT_EQ(gray.at(1, 1), 99);
}

TEST(ChannelOps, ExtractInsertRoundTrip) {
  pi::ImageU8 rgb(3, 2, 3);
  rgb.at(2, 1, 1) = 77;
  const auto plane = pi::extract_channel(rgb, 1);
  EXPECT_EQ(plane.channels(), 1);
  EXPECT_EQ(plane.at(2, 1), 77);

  pi::ImageU8 dst(3, 2, 3);
  pi::insert_channel(dst, plane, 1);
  EXPECT_EQ(dst.at(2, 1, 1), 77);
  EXPECT_EQ(dst.at(2, 1, 0), 0);
}

TEST(ChannelOps, ExtractRejectsBadChannel) {
  pi::ImageU8 rgb(2, 2, 3);
  EXPECT_THROW(pi::extract_channel(rgb, 3), std::invalid_argument);
  EXPECT_THROW(pi::extract_channel(rgb, -1), std::invalid_argument);
}

TEST(ChannelOps, InsertRejectsShapeMismatch) {
  pi::ImageU8 rgb(2, 2, 3);
  pi::ImageU8 plane(3, 2, 1);
  EXPECT_THROW(pi::insert_channel(rgb, plane, 0), std::invalid_argument);
}

TEST(Image, ConstructorRejectsNonPositiveDims) {
  EXPECT_THROW(pi::ImageU8(0, 4, 3), std::invalid_argument);
  EXPECT_THROW(pi::ImageU8(4, -1, 3), std::invalid_argument);
  EXPECT_THROW(pi::ImageU8(4, 4, 0), std::invalid_argument);
}

TEST(Image, CheckedAccessThrowsOutOfRange) {
  pi::ImageU8 im(4, 4, 1);
  EXPECT_THROW(static_cast<void>(im.at_checked(4, 0)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(im.at_checked(0, 4)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(im.at_checked(0, 0, 1)), std::out_of_range);
  EXPECT_NO_THROW(static_cast<void>(im.at_checked(3, 3, 0)));
}

TEST(Image, ClampedAccessReplicatesBorder) {
  pi::ImageU8 im(2, 2, 1);
  im.at(0, 0) = 1;
  im.at(1, 1) = 9;
  EXPECT_EQ(im.at_clamped(-5, -5), 1);
  EXPECT_EQ(im.at_clamped(10, 10), 9);
}

TEST(Image, EqualityAndClone) {
  pi::ImageU8 a(2, 2, 1, 7);
  auto b = a.clone();
  EXPECT_EQ(a, b);
  b.at(0, 0) = 8;
  EXPECT_FALSE(a == b);
}
