// The paper's central claims, as executable properties:
//  * clean scenes auto-label almost perfectly with the paper's HSV bands;
//  * clouds/shadows break color segmentation;
//  * the thin-cloud/shadow filter restores most of the lost accuracy;
//  * filtering is (near) identity on clean scenes;
//  * label SSIM vs manual labels jumps once the filter is applied (Fig 11).

#include <gtest/gtest.h>

#include "core/autolabel.h"
#include "core/cloud_filter.h"
#include "img/color.h"
#include "metrics/metrics.h"
#include "metrics/ssim.h"
#include "s2/manual_label.h"
#include "s2/scene.h"

namespace pc = polarice::core;
namespace ps = polarice::s2;
namespace pi = polarice::img;
namespace pm = polarice::metrics;

namespace {
ps::Scene make_scene(bool cloudy, std::uint64_t seed = 21) {
  ps::SceneConfig cfg;
  cfg.width = 256;
  cfg.height = 256;
  cfg.seed = seed;
  cfg.cloudy = cloudy;
  return ps::SceneGenerator(cfg).generate();
}

double label_agreement(const pi::ImageU8& predicted, const pi::ImageU8& truth) {
  std::vector<int> p, t;
  p.reserve(predicted.size());
  t.reserve(truth.size());
  for (const auto v : predicted) p.push_back(v);
  for (const auto v : truth) t.push_back(v);
  return pm::pixel_accuracy(t, p);
}

pc::AutoLabelConfig no_filter_config() {
  pc::AutoLabelConfig cfg;
  cfg.apply_filter = false;
  return cfg;
}
}  // namespace

TEST(AutoLabeler, CleanSceneSegmentsAlmostPerfectly) {
  const auto scene = make_scene(false);
  const pc::AutoLabeler labeler(no_filter_config());
  const auto result = labeler.label(scene.rgb);
  EXPECT_GT(label_agreement(result.labels, scene.labels), 0.999);
}

TEST(AutoLabeler, ClassCountsSumToPixels) {
  const auto scene = make_scene(false);
  const pc::AutoLabeler labeler(no_filter_config());
  const auto result = labeler.label(scene.rgb);
  std::size_t total = 0;
  for (const auto c : result.class_counts) total += c;
  EXPECT_EQ(total, scene.rgb.pixel_count());
}

TEST(AutoLabeler, ColorizedUsesPaperPalette) {
  const auto scene = make_scene(false);
  const pc::AutoLabeler labeler(no_filter_config());
  const auto result = labeler.label(scene.rgb);
  EXPECT_EQ(ps::labels_from_colors(result.colorized), result.labels);
}

TEST(AutoLabeler, RejectsNonRgbInput) {
  const pc::AutoLabeler labeler(no_filter_config());
  pi::ImageU8 gray(16, 16, 1);
  EXPECT_THROW(labeler.label(gray), std::invalid_argument);
}

TEST(AutoLabeler, CloudsBreakUnfilteredSegmentation) {
  const auto scene = make_scene(true);
  const pc::AutoLabeler labeler(no_filter_config());
  const auto result = labeler.label(scene.rgb);
  const double agreement = label_agreement(result.labels, scene.labels);
  EXPECT_LT(agreement, 0.97);  // clouds cause real damage...
  EXPECT_GT(agreement, 0.5);   // ...but not total garbage
}

TEST(CloudShadowFilter, RestoresCloudySegmentation) {
  const auto scene = make_scene(true);
  const pc::AutoLabeler unfiltered(no_filter_config());
  pc::AutoLabelConfig filtered_cfg;
  filtered_cfg.apply_filter = true;
  const pc::AutoLabeler filtered(filtered_cfg);

  const double before =
      label_agreement(unfiltered.label(scene.rgb).labels, scene.labels);
  const double after =
      label_agreement(filtered.label(scene.rgb).labels, scene.labels);
  EXPECT_GT(after, before + 0.02);  // the filter must help materially
  EXPECT_GT(after, 0.96);           // and land near the paper's ~99%
}

TEST(CloudShadowFilter, NearIdentityOnCleanScenes) {
  const auto scene = make_scene(false);
  const pc::CloudShadowFilter filter;
  const auto result = filter.apply_with_diagnostics(scene.rgb);
  // Estimated atmosphere must be (close to) zero everywhere.
  EXPECT_LT(result.alpha.data()[0], 0.2f);
  double mean_alpha = 0, mean_beta = 0;
  for (std::size_t i = 0; i < result.alpha.size(); ++i) {
    mean_alpha += result.alpha.data()[i];
    mean_beta += result.beta.data()[i];
  }
  mean_alpha /= static_cast<double>(result.alpha.size());
  mean_beta /= static_cast<double>(result.beta.size());
  EXPECT_LT(mean_alpha, 0.05);
  EXPECT_LT(mean_beta, 0.05);
  // And labels computed from the filtered image still match the truth.
  const pc::AutoLabeler labeler(no_filter_config());
  EXPECT_GT(label_agreement(labeler.label(result.filtered).labels,
                            scene.labels),
            0.99);
}

TEST(CloudShadowFilter, FilteredImageCloserToCleanReference) {
  const auto scene = make_scene(true);
  const pc::CloudShadowFilter filter;
  const auto filtered = filter.apply(scene.rgb);
  const auto v_of = [](const pi::ImageU8& rgb) {
    return pi::extract_channel(pi::rgb_to_hsv(rgb), 2);
  };
  const double ssim_before = pm::ssim(v_of(scene.rgb), v_of(scene.rgb_clean));
  const double ssim_after = pm::ssim(v_of(filtered), v_of(scene.rgb_clean));
  EXPECT_GT(ssim_after, ssim_before);
}

TEST(CloudShadowFilter, Fig11LabelSsimImprovesWithFilter) {
  // The paper reports 89% SSIM (auto vs manual) on original imagery and
  // 99.64% after filtering. Reproduce the ordering and rough magnitudes.
  const auto scene = make_scene(true);
  const auto manual = ps::simulate_manual_labels(scene.labels);
  const auto manual_rgb = ps::colorize_labels(manual);

  const pc::AutoLabeler unfiltered(no_filter_config());
  pc::AutoLabelConfig fcfg;
  fcfg.apply_filter = true;
  const pc::AutoLabeler filtered(fcfg);

  const double ssim_orig =
      pm::ssim_rgb(unfiltered.label(scene.rgb).colorized, manual_rgb);
  const double ssim_filt =
      pm::ssim_rgb(filtered.label(scene.rgb).colorized, manual_rgb);
  EXPECT_GT(ssim_filt, ssim_orig + 0.02);
  EXPECT_GT(ssim_filt, 0.9);
}

TEST(CloudShadowFilter, DiagnosticsShapesAndMask) {
  const auto scene = make_scene(true);
  const pc::CloudShadowFilter filter;
  const auto result = filter.apply_with_diagnostics(scene.rgb);
  EXPECT_TRUE(result.filtered.same_shape(scene.rgb));
  EXPECT_EQ(result.alpha.width(), scene.rgb.width());
  EXPECT_EQ(result.cloud_mask.channels(), 1);
  // Mask is binary.
  for (const auto v : result.cloud_mask) {
    EXPECT_TRUE(v == 0 || v == 255);
  }
}

TEST(CloudShadowFilter, HandlesTinyImagesByClampingKernels) {
  const pc::CloudShadowFilter filter;
  pi::ImageU8 tiny(8, 8, 3, 128);
  EXPECT_NO_THROW(filter.apply(tiny));
}

TEST(CloudShadowFilter, ValidatesConfig) {
  pc::CloudFilterConfig cfg;
  cfg.envelope_kernel = 10;  // even
  EXPECT_THROW(pc::CloudShadowFilter{cfg}, std::invalid_argument);
  cfg = pc::CloudFilterConfig{};
  cfg.v_bright_ref = 10.0;
  cfg.v_dark_ref = 20.0;
  EXPECT_THROW(pc::CloudShadowFilter{cfg}, std::invalid_argument);
  cfg = pc::CloudFilterConfig{};
  cfg.max_alpha = 1.5;
  EXPECT_THROW(pc::CloudShadowFilter{cfg}, std::invalid_argument);
}
