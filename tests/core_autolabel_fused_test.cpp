// The fused single-pass auto-labeler must be bit-identical to the multi-pass
// reference pipeline (whole-image HSV + per-class in_range masks + colorize)
// on every output: labels, colorized image, used image, and class counts —
// across clear and cloudy scenes, with and without the cloud filter, and
// with and without a thread pool.

#include <gtest/gtest.h>

#include "core/autolabel.h"
#include "par/thread_pool.h"
#include "s2/scene.h"

namespace pc = polarice::core;
namespace ps = polarice::s2;
namespace pp = polarice::par;

namespace {

ps::Scene make_scene(int size, bool cloudy, std::uint64_t seed) {
  ps::SceneConfig cfg;
  cfg.width = cfg.height = size;
  cfg.cloudy = cloudy;
  cfg.seed = seed;
  return ps::SceneGenerator(cfg).generate();
}

void expect_identical(const pc::AutoLabelResult& fused,
                      const pc::AutoLabelResult& reference) {
  EXPECT_TRUE(fused.labels == reference.labels);
  EXPECT_TRUE(fused.colorized == reference.colorized);
  EXPECT_TRUE(fused.used_image == reference.used_image);
  EXPECT_EQ(fused.class_counts, reference.class_counts);
}

}  // namespace

class FusedAutoLabel : public ::testing::TestWithParam<std::tuple<bool, bool>> {
};

TEST_P(FusedAutoLabel, MatchesMultiPassReferenceExactly) {
  const auto [cloudy, apply_filter] = GetParam();
  const auto scene = make_scene(96, cloudy, 7 + cloudy + 2 * apply_filter);

  pc::AutoLabelConfig cfg;
  cfg.apply_filter = apply_filter;
  const pc::AutoLabeler labeler(cfg);

  const auto reference = labeler.label_reference(scene.rgb);
  expect_identical(labeler.label(scene.rgb), reference);

  pp::ThreadPool pool(4);
  expect_identical(labeler.label(scene.rgb, polarice::par::ExecutionContext(&pool)),
                   reference);
}

INSTANTIATE_TEST_SUITE_P(CloudAndFilter, FusedAutoLabel,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

// Customized, overlapping bands: the highest class must win in both paths.
TEST(FusedAutoLabel, OverlappingCustomRangesAgree) {
  const auto scene = make_scene(64, /*cloudy=*/false, 21);
  pc::AutoLabelConfig cfg;
  cfg.apply_filter = false;
  cfg.ranges[0] = {{0, 0, 0}, {180, 255, 120}};
  cfg.ranges[1] = {{0, 0, 60}, {180, 255, 220}};   // overlaps water & thick
  cfg.ranges[2] = {{0, 0, 180}, {180, 255, 255}};  // overlaps thin
  const pc::AutoLabeler labeler(cfg);
  expect_identical(labeler.label(scene.rgb), labeler.label_reference(scene.rgb));
}

// Bands that leave a gap: uncovered pixels fall back to thin ice in both.
TEST(FusedAutoLabel, UncoveredPixelsFallBackIdentically) {
  const auto scene = make_scene(64, /*cloudy=*/true, 33);
  pc::AutoLabelConfig cfg;
  cfg.apply_filter = false;
  cfg.ranges[0] = {{0, 0, 0}, {180, 255, 10}};
  cfg.ranges[1] = {{0, 0, 240}, {180, 255, 250}};
  cfg.ranges[2] = {{0, 0, 251}, {180, 255, 255}};
  const pc::AutoLabeler labeler(cfg);
  expect_identical(labeler.label(scene.rgb), labeler.label_reference(scene.rgb));
}

TEST(FusedAutoLabel, RejectsNonRgbInput) {
  const pc::AutoLabeler labeler;
  const polarice::img::ImageU8 gray(8, 8, 1);
  EXPECT_THROW(labeler.label(gray), std::invalid_argument);
  EXPECT_THROW(labeler.label_reference(gray), std::invalid_argument);
}

// The pooled cloud filter must match the sequential one bit-for-bit (the
// fused pointwise stages only re-partition rows, never reorder arithmetic).
TEST(FusedAutoLabel, PooledCloudFilterBitIdentical) {
  const auto scene = make_scene(96, /*cloudy=*/true, 55);
  const pc::CloudShadowFilter filter;
  pp::ThreadPool pool(4);
  const auto seq = filter.apply_with_diagnostics(scene.rgb);
  const auto par = filter.apply_with_diagnostics(scene.rgb, polarice::par::ExecutionContext(&pool));
  EXPECT_TRUE(seq.filtered == par.filtered);
  EXPECT_TRUE(seq.cloud_mask == par.cloud_mask);
  EXPECT_TRUE(seq.alpha == par.alpha);
  EXPECT_TRUE(seq.beta == par.beta);
  EXPECT_TRUE(filter.apply(scene.rgb, polarice::par::ExecutionContext(&pool)) ==
              seq.filtered);
}
