// SLO scheduling semantics on a virtual clock: expired-deadline scenes are
// shed with zero forward passes, batch fill follows (priority, EDF, FIFO)
// order, the scheduler's expiry sweep sheds queued work without a worker
// pop, and context deadlines propagate into submit().
//
// Every test injects a util::VirtualClock, so "time passing" is a test
// decision, never a host-speed accident.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <semaphore>
#include <string>
#include <vector>

#include "core/serve/scene_server.h"
#include "core/workflow.h"
#include "img/image.h"
#include "nn/unet.h"
#include "par/context.h"
#include "s2/scene.h"
#include "util/virtual_clock.h"

namespace pc = polarice::core;
namespace pv = polarice::core::serve;
namespace pp = polarice::par;
namespace ps = polarice::s2;
namespace pn = polarice::nn;
namespace pi = polarice::img;
namespace pu = polarice::util;

using namespace std::chrono_literals;

namespace {

pn::UNet make_model() {
  pn::UNetConfig cfg;
  cfg.depth = 2;
  cfg.base_channels = 6;
  cfg.use_dropout = false;
  cfg.seed = 88;
  return pn::UNet(cfg);
}

pi::ImageU8 make_scene(std::uint64_t seed, int size = 128) {
  ps::SceneConfig sc;
  sc.width = sc.height = size;
  sc.seed = seed;
  sc.cloudy = true;
  return ps::SceneGenerator(sc).generate().rgb;
}

pv::SceneServerConfig slo_config(const pu::Clock* clock) {
  pv::SceneServerConfig cfg;
  cfg.tile_size = 64;
  cfg.batch_tiles = 1;  // one forward pass per tile: fill order observable
  cfg.min_replicas = cfg.max_replicas = 1;
  cfg.max_batch_wait = 0ms;
  cfg.cache_bytes = 0;  // count every forwarded tile
  cfg.clock = clock;
  return cfg;
}

pv::SubmitOptions with_deadline(std::chrono::nanoseconds deadline,
                                pv::Priority priority = pv::Priority::kNormal) {
  pv::SubmitOptions options;
  options.priority = priority;
  options.deadline = deadline;
  return options;
}

/// Polls `pred` for up to ~2 s (the deterministic gates make the condition
/// inevitable; the bound only protects the test run from a genuine bug).
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

}  // namespace

TEST(SceneServerSlo, ExpiredDeadlineShedWithZeroForwardPasses) {
  pn::UNet model = make_model();
  pu::VirtualClock clock;
  pv::SceneServer server(model, slo_config(&clock));

  // Park the scheduler inside scene A's prepare so scene B is provably
  // still queued when its deadline expires.
  std::binary_semaphore entered{0}, release{0};
  const pp::ExecutionContext gated;
  gated.set_progress_sink([&](const pp::ProgressEvent& event) {
    if (std::string(event.stage) == "serve.prepare" && event.completed == 0) {
      entered.release();
      release.acquire();
    }
  });

  auto a = server.submit(make_scene(11), gated);
  entered.acquire();
  auto b = server.submit(make_scene(12), with_deadline(10ms));
  clock.advance(11ms);  // b's deadline passes while it waits in the queue
  release.release();

  EXPECT_THROW((void)b.get(), pv::DeadlineExceeded);
  EXPECT_NO_THROW((void)a.get());

  const auto stats = server.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.completed, 1u);
  // The shed scene burned nothing: only A's 4 tiles were ever forwarded.
  EXPECT_EQ(stats.session.tiles, 4u);
}

TEST(SceneServerSlo, BatchFillFollowsPriorityThenEdfThenFifo) {
  pn::UNet model = make_model();
  pu::VirtualClock clock;
  pv::SceneServer server(model, slo_config(&clock));

  std::mutex order_mutex;
  std::vector<std::string> order;
  std::atomic<int> fanned_out{0};
  std::binary_semaphore first_tile{0}, release{0};

  // G parks the single worker right after its first tile lands; every later
  // submission then fans out behind the parked worker, so the (priority,
  // EDF, FIFO) heap — not submission timing — decides completion order.
  const pp::ExecutionContext gate_ctx;
  gate_ctx.set_progress_sink([&](const pp::ProgressEvent& event) {
    if (std::string(event.stage) == "serve.tiles" && event.completed == 1) {
      first_tile.release();
      release.acquire();
    }
    if (std::string(event.stage) == "serve.tiles" &&
        event.completed == event.total) {
      const std::scoped_lock lock(order_mutex);
      order.push_back("G");
    }
  });

  auto tracked = [&](const char* name) {
    pp::ExecutionContext ctx;
    std::string label(name);
    ctx.set_progress_sink([&, label](const pp::ProgressEvent& event) {
      if (std::string(event.stage) == "serve.prepare" &&
          event.completed == 1) {
        fanned_out.fetch_add(1);
      }
      if (std::string(event.stage) == "serve.tiles" &&
          event.completed == event.total) {
        const std::scoped_lock lock(order_mutex);
        order.push_back(label);
      }
    });
    return ctx;
  };

  auto g = server.submit(make_scene(20), gate_ctx);
  first_tile.acquire();  // worker parked; G's remaining 3 tiles queued

  // Scrambled submission order; deadlines are alive (the clock is frozen).
  // The bulk scene goes last: fan-out order equals submission order, and
  // "serve.prepare" completes just before the tiles land in the heap, so
  // the only scene whose tiles could still be in flight when the worker
  // resumes must be the one scheduled dead last anyway.
  const auto a_ctx = tracked("A");
  const auto b_ctx = tracked("B");
  const auto c_ctx = tracked("C");
  const auto d_ctx = tracked("D");
  auto d = server.submit(make_scene(24),
                         pv::SubmitOptions{pv::Priority::kNormal, {}, -1},
                         d_ctx);
  auto b = server.submit(make_scene(22),
                         with_deadline(200ms, pv::Priority::kInteractive),
                         b_ctx);
  auto c = server.submit(make_scene(23),
                         with_deadline(50ms, pv::Priority::kInteractive),
                         c_ctx);
  auto a = server.submit(make_scene(21),
                         pv::SubmitOptions{pv::Priority::kBatch, {}, -1},
                         a_ctx);
  ASSERT_TRUE(eventually([&] { return fanned_out.load() == 4; }));
  release.release();

  EXPECT_NO_THROW((void)a.get());
  EXPECT_NO_THROW((void)b.get());
  EXPECT_NO_THROW((void)c.get());
  EXPECT_NO_THROW((void)d.get());
  EXPECT_NO_THROW((void)g.get());

  // Interactive EDF first (C's deadline < B's), then the normal class in
  // FIFO order (G's in-flight remainder precedes D), bulk work last.
  const std::vector<std::string> expected{"C", "B", "G", "D", "A"};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(server.stats().shed, 0u);
}

TEST(SceneServerSlo, ExpirySweepShedsFannedOutSceneWithoutWorkerPop) {
  pn::UNet model = make_model();
  pu::VirtualClock clock;
  auto cfg = slo_config(&clock);
  cfg.scale_down_idle = 5ms;  // fast idle ticks -> fast expiry sweeps
  pv::SceneServer server(model, cfg);

  std::atomic<int> fanned_out{0};
  std::binary_semaphore first_tile{0}, release{0};
  const pp::ExecutionContext gate_ctx;
  gate_ctx.set_progress_sink([&](const pp::ProgressEvent& event) {
    if (std::string(event.stage) == "serve.tiles" && event.completed == 1) {
      first_tile.release();
      release.acquire();
    }
  });
  const pp::ExecutionContext doomed_ctx;
  doomed_ctx.set_progress_sink([&](const pp::ProgressEvent& event) {
    if (std::string(event.stage) == "serve.prepare" && event.completed == 1) {
      fanned_out.fetch_add(1);
    }
  });

  auto g = server.submit(make_scene(31), gate_ctx);
  first_tile.acquire();  // the only worker is parked mid-scene
  auto doomed =
      server.submit(make_scene(32), with_deadline(10ms), doomed_ctx);
  ASSERT_TRUE(eventually([&] { return fanned_out.load() == 1; }));

  // The doomed scene's tiles sit in the batch heap; no worker will pop them
  // while the gate holds. Advancing past the deadline must shed it anyway —
  // via the scheduler's idle sweep, not a worker.
  clock.advance(11ms);
  ASSERT_TRUE(eventually([&] { return server.stats().shed == 1; }));
  EXPECT_THROW((void)doomed.get(), pv::DeadlineExceeded);

  release.release();
  EXPECT_NO_THROW((void)g.get());
  const auto stats = server.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.session.tiles, 4u);  // G only; the shed scene forwarded 0
}

TEST(SceneServerSlo, ContextDeadlinePropagatesIntoSubmit) {
  pn::UNet model = make_model();
  pu::VirtualClock clock;
  pv::SceneServer server(model, slo_config(&clock));

  // An absolute context deadline already in the past: prepare sheds before
  // any cache probe or forward pass.
  const auto ctx = pp::ExecutionContext{}.with_deadline(clock.now() - 1ms);
  auto ticket = server.submit(make_scene(41), pv::SubmitOptions{}, ctx);
  EXPECT_THROW((void)ticket.get(), pv::DeadlineExceeded);

  // An explicit SubmitOptions deadline overrides the context's.
  const auto live_ctx = pp::ExecutionContext{}.with_deadline(clock.now() - 1ms);
  auto live = server.submit(make_scene(42), with_deadline(10s), live_ctx);
  EXPECT_NO_THROW((void)live.get());

  const auto stats = server.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.session.tiles, 4u);
}

TEST(SceneServerSlo, KnobValidationAndNames) {
  EXPECT_STREQ(pv::to_string(pv::Priority::kBatch), "batch");
  EXPECT_STREQ(pv::to_string(pv::Priority::kNormal), "normal");
  EXPECT_STREQ(pv::to_string(pv::Priority::kInteractive), "interactive");

  pv::RetryPolicy retry;
  retry.max_retries = -1;
  EXPECT_THROW(retry.validate(), std::invalid_argument);
  retry = {};
  retry.backoff_cap = retry.backoff_base - 1ms;
  EXPECT_THROW(retry.validate(), std::invalid_argument);
  EXPECT_NO_THROW(pv::RetryPolicy{}.validate());

  pn::UNet model = make_model();
  pu::VirtualClock clock;
  pv::SceneServer server(model, slo_config(&clock));
  pv::SubmitOptions bad;
  bad.max_retries = -2;
  EXPECT_THROW((void)server.submit(make_scene(51), bad),
               std::invalid_argument);
}
