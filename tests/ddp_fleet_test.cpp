// Fleet-trainer tests: the determinism and fault-tolerance properties the
// distributed training tier rests on.
//
//  * World-size invariance: the same seed produces BIT-identical rank-0
//    parameters at world sizes 1, 2, and 4 (per-sample gradients folded
//    along one canonical tree, regardless of how ranks partition a batch).
//  * Transport invariance: a socket fleet matches the in-process thread
//    reference bitwise.
//  * Kill-and-resume: a rank that dies mid-run and rejoins from the last
//    durable checkpoint converges to the bit-identical parameters of an
//    uninterrupted run.
//  * Typed failures: a fleet that cannot form times out with a
//    CollectiveError, never a hang.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ddp/communicator.h"
#include "ddp/fleet_trainer.h"
#include "ddp/socket_communicator.h"
#include "nn/unet.h"

namespace pd = polarice::ddp;
namespace pn = polarice::nn;
namespace fs = std::filesystem;
using namespace std::chrono_literals;

namespace {

pn::UNetConfig tiny_model() {
  pn::UNetConfig cfg;
  cfg.in_channels = 3;
  cfg.num_classes = 2;
  cfg.depth = 1;
  cfg.base_channels = 4;
  cfg.use_dropout = false;
  cfg.seed = 5;
  return cfg;
}

pd::FleetTrainConfig tiny_fleet(int world_size, int batch_per_device) {
  pd::FleetTrainConfig cfg;
  cfg.model = tiny_model();
  cfg.world_size = world_size;
  cfg.batch_per_device = batch_per_device;
  cfg.epochs = 2;
  cfg.learning_rate = 1e-3f;
  cfg.seed = 7;
  cfg.checkpoint_every = 2;
  cfg.collective.timeout = 30s;
  return cfg;
}

pn::SegDataset tiny_data() {
  return pd::make_synthetic_dataset(/*samples=*/8, /*channels=*/3,
                                    /*height=*/16, /*width=*/16,
                                    /*classes=*/2, /*seed=*/11);
}

std::vector<float> flat_params(pn::UNet& model) {
  std::vector<float> out;
  for (const auto& p : model.params()) {
    const float* v = p.value->data();
    out.insert(out.end(), v, v + p.value->numel());
  }
  return out;
}

std::string scratch_dir(const std::string& name) {
  const auto dir = fs::temp_directory_path() / ("polarice-fleet-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

}  // namespace

TEST(FleetConfig, ValidatesInvariants) {
  auto cfg = tiny_fleet(2, 2);
  EXPECT_NO_THROW(cfg.validate());

  auto bad = cfg;
  bad.world_size = 3;  // not a power of two: breaks the canonical tree
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = cfg;
  bad.batch_per_device = 3;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = cfg;
  bad.model.use_dropout = true;  // mask streams diverge across world sizes
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = cfg;
  bad.epochs = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(FleetConfig, FingerprintIgnoresWorldSplit) {
  // Same trajectory identity for (world 1, batch 4) and (world 4, batch 1):
  // a checkpoint from one fleet shape must resume another.
  const auto a = tiny_fleet(1, 4).fingerprint();
  const auto b = tiny_fleet(4, 1).fingerprint();
  const auto c = tiny_fleet(2, 2).fingerprint();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);

  auto other = tiny_fleet(1, 4);
  other.seed = 8;
  EXPECT_NE(a, other.fingerprint());
}

// The headline determinism property: the same seed and global batch yield
// BITWISE-identical rank-0 parameters at world sizes 1, 2, and 4.
TEST(FleetTrainer, BitIdenticalAcrossWorldSizes) {
  const auto data = tiny_data();
  std::vector<std::vector<float>> params;
  std::vector<float> losses;
  for (const auto [world, batch] : {std::pair{1, 4}, {2, 2}, {4, 1}}) {
    pn::UNet model(tiny_model());
    const auto stats = pd::train_fleet(model, data, tiny_fleet(world, batch));
    EXPECT_GT(stats.steps, 0) << "world " << world;
    params.push_back(flat_params(model));
    losses.push_back(stats.final_loss);
  }
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[1], params[0]) << "world 2 diverged from world 1";
  EXPECT_EQ(params[2], params[0]) << "world 4 diverged from world 1";
  EXPECT_EQ(losses[1], losses[0]);
  EXPECT_EQ(losses[2], losses[0]);
}

// Transport invariance: a socket mesh (real wire frames over unix sockets)
// must produce the bit-identical parameters of the thread reference.
TEST(FleetTrainer, SocketMatchesThreadTransportBitwise) {
  const auto data = tiny_data();
  const auto config = tiny_fleet(2, 2);

  pn::UNet thread_model(tiny_model());
  (void)pd::train_fleet(thread_model, data, config);
  const auto reference = flat_params(thread_model);

  const std::string dir = scratch_dir("socket-vs-thread");
  const auto endpoints = pd::fleet_endpoints(dir, config.world_size);
  const auto fingerprint = config.fingerprint();

  std::vector<std::vector<float>> socket_params(2);
  std::vector<std::jthread> ranks;
  for (int r = 0; r < 2; ++r) {
    ranks.emplace_back([&, r] {
      pd::SocketCommunicatorConfig mesh;
      mesh.rank = r;
      mesh.world_size = config.world_size;
      mesh.endpoints = endpoints;
      mesh.fingerprint = fingerprint;
      mesh.collective = config.collective;
      pn::UNet model(tiny_model());
      const auto stats = pd::train_fleet_rank(
          model, data, config, r,
          [&mesh] { return std::make_unique<pd::SocketCommunicator>(mesh); });
      EXPECT_GT(stats.steps, 0);
      socket_params[static_cast<std::size_t>(r)] = flat_params(model);
    });
  }
  ranks.clear();  // join

  EXPECT_EQ(socket_params[0], reference);
  EXPECT_EQ(socket_params[1], reference);
}

// Kill-and-resume determinism, single-rank edition: a rank that dies
// mid-run (a CollectiveError out of the step loop) rolls back to the last
// durable checkpoint, replays, and finishes with parameters bit-identical
// to a run that never crashed.
TEST(FleetTrainer, ResumeFromCheckpointIsBitIdentical) {
  const auto data = tiny_data();
  auto config = tiny_fleet(1, 4);
  config.checkpoint_every = 2;  // steps 0,2,4 durable; 4 steps total

  // Uninterrupted reference.
  pn::UNet reference(tiny_model());
  {
    auto ref_config = config;
    ref_config.checkpoint_dir = scratch_dir("resume-ref");
    const auto stats = pd::train_fleet(reference, data, ref_config);
    EXPECT_EQ(stats.rejoins, 0);
  }

  // Crashing run: die via the step hook at global step 3 (one past the
  // step-2 checkpoint), then let the rejoin loop resume from it.
  config.checkpoint_dir = scratch_dir("resume-crash");
  config.max_rejoins = 2;
  config.rejoin_backoff = 1ms;
  pn::UNet model(tiny_model());
  bool crashed = false;
  const auto factory = [] {
    return std::make_unique<pd::ThreadCommunicator>(
        std::make_shared<pd::World>(1), 0);
  };
  const auto stats = pd::train_fleet_rank(
      model, data, config, /*rank=*/0, factory, /*stop=*/nullptr,
      [&crashed](std::int64_t global_step) {
        if (global_step == 3 && !crashed) {
          crashed = true;
          throw pd::PeerLost("injected crash");
        }
      });

  EXPECT_TRUE(crashed);
  EXPECT_EQ(stats.rejoins, 1);
  EXPECT_GT(stats.resumed_from, 0);  // second join loaded a real checkpoint
  EXPECT_EQ(stats.checkpoint_corrupt, 0);
  EXPECT_EQ(flat_params(model), flat_params(reference));
}

// Exhausting the rejoin budget rethrows the CollectiveError instead of
// spinning forever.
TEST(FleetTrainer, RejoinBudgetExhaustionRethrows) {
  const auto data = tiny_data();
  auto config = tiny_fleet(1, 4);
  config.checkpoint_dir = scratch_dir("budget");
  config.max_rejoins = 1;
  config.rejoin_backoff = 1ms;
  pn::UNet model(tiny_model());
  const auto factory = [] {
    return std::make_unique<pd::ThreadCommunicator>(
        std::make_shared<pd::World>(1), 0);
  };
  EXPECT_THROW(
      (void)pd::train_fleet_rank(
          model, data, config, 0, factory, nullptr,
          [](std::int64_t) { throw pd::PeerLost("always"); }),
      pd::CollectiveError);
}

// A pre-set stop flag is folded into the first collective as a stop vote:
// the fleet exits cleanly before applying any step, with a final durable
// checkpoint behind it.
TEST(FleetTrainer, StopVoteExitsCleanlyWithCheckpoint) {
  const auto data = tiny_data();
  auto config = tiny_fleet(1, 4);
  config.checkpoint_dir = scratch_dir("stop");
  pn::UNet model(tiny_model());
  std::atomic<bool> stop{true};
  const auto factory = [] {
    return std::make_unique<pd::ThreadCommunicator>(
        std::make_shared<pd::World>(1), 0);
  };
  const auto stats =
      pd::train_fleet_rank(model, data, config, 0, factory, &stop);
  EXPECT_TRUE(stats.stopped);
  EXPECT_EQ(stats.steps, 0);
  EXPECT_GE(stats.checkpoints_written, 1);
}

// A fleet that can never form (no peer ever dials in) must surface a typed
// CollectiveError within the establish budget — not hang.
TEST(SocketCommunicator, EstablishTimesOutTyped) {
  const std::string dir = scratch_dir("lonely");
  pd::SocketCommunicatorConfig mesh;
  mesh.rank = 0;
  mesh.world_size = 2;
  mesh.endpoints = pd::fleet_endpoints(dir, 2);
  mesh.fingerprint = 42;
  mesh.establish_timeout = 200ms;
  EXPECT_THROW(pd::SocketCommunicator{mesh}, pd::CollectiveError);
}

// A peer presenting a different config fingerprint is refused at hello:
// both sides fail typed, neither silently joins a foreign fleet.
TEST(SocketCommunicator, FingerprintMismatchIsRefused) {
  const std::string dir = scratch_dir("mismatch");
  const auto endpoints = pd::fleet_endpoints(dir, 2);
  std::atomic<int> typed_failures{0};
  std::vector<std::jthread> ranks;
  for (int r = 0; r < 2; ++r) {
    ranks.emplace_back([&, r] {
      pd::SocketCommunicatorConfig mesh;
      mesh.rank = r;
      mesh.world_size = 2;
      mesh.endpoints = endpoints;
      mesh.fingerprint = 100 + static_cast<std::uint64_t>(r);  // disagree
      mesh.establish_timeout = 2000ms;
      try {
        pd::SocketCommunicator comm(mesh);
      } catch (const pd::CollectiveError&) {
        ++typed_failures;
      }
    });
  }
  ranks.clear();  // join
  EXPECT_EQ(typed_failures.load(), 2);
}
