// Failure-injection and edge-case robustness across modules: corrupted
// weight files, degenerate datasets/partitions, extreme imagery, and
// overlapping custom threshold ranges.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/autolabel.h"
#include "core/cloud_filter.h"
#include "mr/rdd.h"
#include "mr/spark_context.h"
#include "nn/data.h"
#include "nn/unet.h"
#include "img/color.h"
#include "s2/scene.h"
#include "s2/tiles.h"

namespace pc = polarice::core;
namespace pi = polarice::img;
namespace pn = polarice::nn;
namespace pm = polarice::mr;
namespace ps = polarice::s2;
namespace fs = std::filesystem;

namespace {
pn::UNetConfig tiny_config() {
  pn::UNetConfig cfg;
  cfg.depth = 1;
  cfg.base_channels = 2;
  cfg.use_dropout = false;
  return cfg;
}
}  // namespace

TEST(Robustness, UNetLoadRejectsTruncatedFile) {
  pn::UNet model(tiny_config());
  const auto path =
      (fs::temp_directory_path() / "polarice_truncated_weights.bin").string();
  model.save(path);
  // Truncate to half size.
  const auto full_size = fs::file_size(path);
  fs::resize_file(path, full_size / 2);
  pn::UNet victim(tiny_config());
  EXPECT_THROW(victim.load(path), std::runtime_error);
  fs::remove(path);
}

TEST(Robustness, UNetLoadRejectsGarbageFile) {
  const auto path =
      (fs::temp_directory_path() / "polarice_garbage_weights.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a weights file at all, not even close";
  }
  pn::UNet model(tiny_config());
  EXPECT_THROW(model.load(path), std::runtime_error);
  fs::remove(path);
}

TEST(Robustness, UNetLoadRejectsMissingFile) {
  pn::UNet model(tiny_config());
  EXPECT_THROW(model.load("/nonexistent/dir/weights.bin"), std::runtime_error);
}

TEST(Robustness, DataLoaderBatchLargerThanDataset) {
  pn::SegDataset data;
  for (int i = 0; i < 3; ++i) {
    pn::SegSample s{polarice::tensor::Tensor({3, 4, 4}),
                    std::vector<int>(16, 0)};
    data.add(std::move(s));
  }
  pn::DataLoader loader(data, /*batch_size=*/10, 0, false);
  loader.start_epoch();
  pn::Batch batch;
  ASSERT_TRUE(loader.next(batch));
  EXPECT_EQ(batch.x.dim(0), 3);  // one partial batch with everything
  EXPECT_FALSE(loader.next(batch));
  // With drop_last, the same situation yields zero batches.
  pn::DataLoader dropper(data, 10, 0, false, /*drop_last=*/true);
  dropper.start_epoch();
  EXPECT_FALSE(dropper.next(batch));
  EXPECT_EQ(dropper.batches_per_epoch(), 0u);
}

TEST(Robustness, RddMorePartitionsThanItems) {
  pm::ClusterConfig cfg;
  cfg.executors = 4;
  cfg.cores_per_executor = 4;
  pm::SparkContext ctx(cfg);
  // 3 items, default partitioning would ask for 32.
  auto rdd = ctx.parallelize(std::vector<int>{1, 2, 3});
  EXPECT_LE(rdd.partitions(), 3);
  const auto out = rdd.map([](const int& v) { return v * 2; }).collect();
  EXPECT_EQ(out.size(), 3u);
}

TEST(Robustness, RddSingleItem) {
  pm::SparkContext ctx(pm::ClusterConfig{});
  const auto out = ctx.parallelize(std::vector<int>{42}).collect();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42);
}

TEST(Robustness, CloudFilterOnExtremeImages) {
  const pc::CloudShadowFilter filter;
  pi::ImageU8 black(64, 64, 3, 0);
  pi::ImageU8 white(64, 64, 3, 255);
  // Must not crash or produce out-of-range pixels.
  for (const auto* image : {&black, &white}) {
    const auto out = filter.apply(*image);
    EXPECT_TRUE(out.same_shape(*image));
  }
}

TEST(Robustness, CloudFilterOutputAlwaysValidRgb) {
  ps::SceneConfig sc;
  sc.width = sc.height = 96;
  sc.seed = 31;
  sc.cloudy = true;
  sc.cloud_max_opacity = 0.9;   // far beyond the "thin" regime
  sc.shadow_strength = 0.9;
  const auto scene = ps::SceneGenerator(sc).generate();
  const auto result =
      pc::CloudShadowFilter().apply_with_diagnostics(scene.rgb);
  EXPECT_TRUE(result.filtered.same_shape(scene.rgb));
  for (std::size_t i = 0; i < result.alpha.size(); ++i) {
    EXPECT_GE(result.alpha.data()[i], 0.0f);
    EXPECT_LE(result.alpha.data()[i], 1.0f);
    EXPECT_GE(result.beta.data()[i], 0.0f);
    EXPECT_LE(result.beta.data()[i], 1.0f);
  }
}

TEST(Robustness, AutoLabelerOverlappingRangesPrioritizeThickest) {
  // Custom (non-paper) ranges that overlap: the labeler must resolve by
  // class priority thick > thin > water, documented in autolabel.cpp.
  pc::AutoLabelConfig cfg;
  cfg.apply_filter = false;
  cfg.ranges = {{
      {{0, 0, 0}, {180, 255, 255}},   // water claims everything
      {{0, 0, 100}, {180, 255, 255}}, // thin claims V >= 100
      {{0, 0, 200}, {180, 255, 255}}, // thick claims V >= 200
  }};
  pi::ImageU8 rgb(3, 1, 3);
  for (int c = 0; c < 3; ++c) {
    rgb.at(0, 0, c) = 50;
    rgb.at(1, 0, c) = 150;
    rgb.at(2, 0, c) = 250;
  }
  const auto result = pc::AutoLabeler(cfg).label(rgb);
  EXPECT_EQ(result.labels.at(0, 0), 0);
  EXPECT_EQ(result.labels.at(1, 0), 1);
  EXPECT_EQ(result.labels.at(2, 0), 2);
}

TEST(Robustness, SplitSceneTileLargerThanScene) {
  ps::SceneConfig sc;
  sc.width = sc.height = 64;
  sc.seed = 1;
  sc.cloudy = false;
  const auto scene = ps::SceneGenerator(sc).generate();
  const auto tiles = ps::split_scene(scene, 128);
  EXPECT_TRUE(tiles.empty());  // no full tile fits
}

TEST(Robustness, SceneGeneratorOnePixelBands) {
  // Degenerate-but-legal configuration: zero-width class brightness bands.
  ps::SceneConfig sc;
  sc.width = sc.height = 32;
  sc.seed = 3;
  sc.cloudy = false;
  sc.water_v_lo = sc.water_v_hi = 20;
  sc.thin_v_lo = sc.thin_v_hi = 120;
  sc.thick_v_lo = sc.thick_v_hi = 230;
  sc.pixel_noise = 0.0;
  const auto scene = ps::SceneGenerator(sc).generate();
  // Every water pixel renders at exactly V=20, etc.
  const auto hsv = polarice::img::rgb_to_hsv(scene.rgb);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      const int cls = scene.labels.at(x, y);
      const int v = hsv.at(x, y, 2);
      EXPECT_EQ(v, cls == 0 ? 20 : cls == 1 ? 120 : 230);
    }
  }
}

TEST(Robustness, SegDatasetRejectsWrongRankImage) {
  pn::SegDataset data;
  pn::SegSample bad{polarice::tensor::Tensor({3, 4, 4, 1}),
                    std::vector<int>(16, 0)};
  EXPECT_THROW(data.add(std::move(bad)), std::invalid_argument);
}
