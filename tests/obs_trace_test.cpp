// obs/trace.h — per-request tracing, plus its integration with SceneServer.
//
// TraceContext span math runs on an injected VirtualClock so every offset
// and duration below is exact, not approximate. The sampler's retention
// policy (N slowest completions + N most recent breaches) and render()'s
// per-span breakdown are both part of the operator-facing contract: "why
// was this request slow" must be answerable from slow_traces() alone.

#include <gtest/gtest.h>

#include <chrono>
#include <semaphore>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/serve/scene_server.h"
#include "img/image.h"
#include "nn/unet.h"
#include "obs/trace.h"
#include "par/context.h"
#include "s2/scene.h"
#include "util/virtual_clock.h"

namespace pv = polarice::core::serve;
namespace pp = polarice::par;
namespace ps = polarice::s2;
namespace pn = polarice::nn;
namespace pi = polarice::img;
namespace pu = polarice::util;
namespace po = polarice::obs;

using namespace std::chrono_literals;

namespace {

pn::UNet make_model() {
  pn::UNetConfig cfg;
  cfg.depth = 2;
  cfg.base_channels = 6;
  cfg.use_dropout = false;
  cfg.seed = 88;
  return pn::UNet(cfg);
}

pi::ImageU8 make_scene(std::uint64_t seed, int size = 128) {
  ps::SceneConfig sc;
  sc.width = sc.height = size;
  sc.seed = seed;
  sc.cloudy = true;
  return ps::SceneGenerator(sc).generate().rgb;
}

const po::TraceSpan* find_span(const std::vector<po::TraceSpan>& spans,
                               const std::string& name) {
  for (const auto& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

po::TraceRecord record_with(std::uint64_t id, const std::string& outcome,
                            double total_s) {
  po::TraceRecord r;
  r.id = id;
  r.outcome = outcome;
  r.total_s = total_s;
  return r;
}

}  // namespace

TEST(ObsTrace, SpansAreExactOnAVirtualClock) {
  pu::VirtualClock clock;
  po::TraceContext trace(42, &clock);
  EXPECT_EQ(trace.id(), 42u);

  const auto t0 = clock.now();
  clock.advance(5ms);
  const auto t1 = clock.now();
  trace.add_span("queue", t0, t1);
  clock.advance(20ms);
  trace.add_span("forward", t1, clock.now());
  clock.advance(3ms);
  trace.add_span_ending_now("stitch", 0.002);

  EXPECT_DOUBLE_EQ(trace.elapsed_s(), 0.028);
  const auto spans = trace.spans();
  ASSERT_EQ(spans.size(), 3u);

  const auto* queue = find_span(spans, "queue");
  ASSERT_NE(queue, nullptr);
  EXPECT_DOUBLE_EQ(queue->start_s, 0.0);
  EXPECT_DOUBLE_EQ(queue->dur_s, 0.005);

  const auto* forward = find_span(spans, "forward");
  ASSERT_NE(forward, nullptr);
  EXPECT_DOUBLE_EQ(forward->start_s, 0.005);
  EXPECT_DOUBLE_EQ(forward->dur_s, 0.020);

  // add_span_ending_now: duration was accumulated elsewhere, the interval
  // is anchored so it *ends* at the current clock reading.
  const auto* stitch = find_span(spans, "stitch");
  ASSERT_NE(stitch, nullptr);
  EXPECT_DOUBLE_EQ(stitch->dur_s, 0.002);
  EXPECT_DOUBLE_EQ(stitch->start_s, 0.026);
}

TEST(ObsTrace, MintedIdsAreUniqueAndNeverZero) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const auto id = po::TraceContext::next_id();
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 1000u);  // 0 on the wire means "assign one"
}

TEST(ObsTrace, RenderShowsOutcomeAndPerSpanBreakdown) {
  po::TraceRecord record;
  record.id = 7;
  record.outcome = "shed";
  record.degraded = true;
  record.total_s = 0.0183;
  record.spans.push_back({"queue", 0.0, 0.0171});

  const std::string text = po::render(record);
  EXPECT_NE(text.find("trace 7"), std::string::npos) << text;
  EXPECT_NE(text.find("[shed]"), std::string::npos) << text;
  EXPECT_NE(text.find("degraded"), std::string::npos) << text;
  EXPECT_NE(text.find("queue"), std::string::npos) << text;
  // 1.2ms of the 18.3ms total is unattributed to any span.
  EXPECT_NE(text.find("other"), std::string::npos) << text;
}

TEST(ObsTrace, SamplerKeepsSlowestCompletionsAndRecentBreaches) {
  po::TraceSampler sampler(3);
  for (int i = 1; i <= 10; ++i) {
    sampler.record(record_with(static_cast<std::uint64_t>(i), "completed",
                               0.001 * i));
  }
  for (int i = 100; i < 105; ++i) {
    sampler.record(record_with(static_cast<std::uint64_t>(i), "shed", 0.0));
  }

  const auto kept = sampler.snapshot();
  ASSERT_EQ(kept.size(), 6u);  // 3 breaches + 3 slowest completions
  // Breaches first, most recent 3 of the 5 recorded.
  EXPECT_EQ(kept[0].outcome, "shed");
  EXPECT_EQ(kept[1].outcome, "shed");
  EXPECT_EQ(kept[2].outcome, "shed");
  std::set<std::uint64_t> breach_ids{kept[0].id, kept[1].id, kept[2].id};
  EXPECT_EQ(breach_ids, (std::set<std::uint64_t>{102, 103, 104}));
  // Then completions, slowest first.
  EXPECT_EQ(kept[3].id, 10u);
  EXPECT_EQ(kept[4].id, 9u);
  EXPECT_EQ(kept[5].id, 8u);
}

// End to end: a served scene's trace reaches slow_traces() with the
// pipeline's stage spans, and a caller-supplied trace id is honoured.
TEST(ObsTrace, SceneServerTracesCompletedRequests) {
  pn::UNet model = make_model();
  pv::SceneServerConfig cfg;
  cfg.tile_size = 64;
  cfg.min_replicas = cfg.max_replicas = 1;
  cfg.cache_bytes = 0;
  pv::SceneServer server(model, cfg);

  pv::SubmitOptions options;
  options.trace_id = 777;
  auto ticket = server.submit(make_scene(21), options);
  (void)ticket.get();

  const auto traces = server.slow_traces();
  ASSERT_FALSE(traces.empty());
  const po::TraceRecord* ours = nullptr;
  for (const auto& t : traces) {
    if (t.id == 777) ours = &t;
  }
  ASSERT_NE(ours, nullptr);
  EXPECT_EQ(ours->outcome, "completed");
  EXPECT_GT(ours->total_s, 0.0);
  EXPECT_NE(find_span(ours->spans, "queue"), nullptr);
  EXPECT_NE(find_span(ours->spans, "forward"), nullptr);
  EXPECT_NE(find_span(ours->spans, "stitch"), nullptr);
  // The record renders into the operator-facing breakdown.
  const std::string text = po::render(*ours);
  EXPECT_NE(text.find("trace 777"), std::string::npos) << text;
  EXPECT_NE(text.find("forward"), std::string::npos) << text;
}

// A shed request's trace lands in the breach set with its queue span — the
// evidence that it died waiting, not computing.
TEST(ObsTrace, SceneServerTracesShedRequests) {
  pn::UNet model = make_model();
  pu::VirtualClock clock;
  pv::SceneServerConfig cfg;
  cfg.tile_size = 64;
  cfg.batch_tiles = 1;
  cfg.min_replicas = cfg.max_replicas = 1;
  cfg.max_batch_wait = 0ms;
  cfg.cache_bytes = 0;
  cfg.clock = &clock;
  pv::SceneServer server(model, cfg);

  // Park the scheduler inside scene A's prepare so scene B is provably
  // still queued when its deadline expires (same gate as the SLO tests).
  std::binary_semaphore entered{0}, release{0};
  const pp::ExecutionContext gated;
  gated.set_progress_sink([&](const pp::ProgressEvent& event) {
    if (std::string(event.stage) == "serve.prepare" && event.completed == 0) {
      entered.release();
      release.acquire();
    }
  });

  auto a = server.submit(make_scene(31), gated);
  entered.acquire();
  pv::SubmitOptions options;
  options.deadline = 10ms;
  options.trace_id = 888;
  auto b = server.submit(make_scene(32), options);
  clock.advance(11ms);
  release.release();

  EXPECT_THROW((void)b.get(), pv::DeadlineExceeded);
  EXPECT_NO_THROW((void)a.get());

  const auto traces = server.slow_traces();
  const po::TraceRecord* shed = nullptr;
  for (const auto& t : traces) {
    if (t.id == 888) shed = &t;
  }
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->outcome, "shed");
  EXPECT_NE(find_span(shed->spans, "queue"), nullptr);
}
