// U-Net model tests: geometry (paper's 28-conv-layer count), shapes, full
// gradient check through the network, overfitting sanity, serialization,
// data loader behaviour, trainer guards.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nn/data.h"
#include "nn/trainer.h"
#include "nn/unet.h"
#include "tensor/conv.h"
#include "util/rng.h"

namespace pn = polarice::nn;
namespace pt = polarice::tensor;
namespace fs = std::filesystem;

namespace {
pt::Tensor random_tensor(std::vector<int> shape, std::uint64_t seed) {
  polarice::util::Rng rng(seed);
  pt::Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  return t;
}

pn::UNetConfig tiny_config() {
  pn::UNetConfig cfg;
  cfg.in_channels = 3;
  cfg.num_classes = 3;
  cfg.depth = 2;
  cfg.base_channels = 4;
  cfg.use_dropout = false;
  cfg.seed = 7;
  return cfg;
}

// A trivially learnable dataset: class = which third of the x-axis the
// pixel is in, and the image encodes the class directly in its channels.
pn::SegDataset striped_dataset(int n_samples, int size, std::uint64_t seed) {
  polarice::util::Rng rng(seed);
  pn::SegDataset data;
  for (int s = 0; s < n_samples; ++s) {
    pn::SegSample sample;
    sample.image = pt::Tensor({3, size, size});
    sample.labels.resize(static_cast<std::size_t>(size) * size);
    for (int y = 0; y < size; ++y) {
      for (int x = 0; x < size; ++x) {
        const int cls = x * 3 / size;
        sample.labels[y * size + x] = cls;
        for (int c = 0; c < 3; ++c) {
          const float base = c == cls ? 0.8f : 0.1f;
          sample.image[(c * size + y) * size + x] =
              base + static_cast<float>(rng.uniform(-0.05, 0.05));
        }
      }
    }
    data.add(std::move(sample));
  }
  return data;
}
}  // namespace

TEST(UNetConfig, PaperGeometryHas28ConvLayers) {
  pn::UNetConfig cfg;
  cfg.depth = 5;
  EXPECT_EQ(cfg.conv_layer_count(), 28);  // paper §III.C.1
  EXPECT_EQ(cfg.spatial_divisor(), 32);   // 256x256 inputs divide evenly
  EXPECT_EQ(256 % cfg.spatial_divisor(), 0);
}

TEST(UNetConfig, ValidationRejectsNonsense) {
  auto bad = tiny_config();
  bad.depth = 0;
  EXPECT_THROW(pn::UNet{bad}, std::invalid_argument);
  bad = tiny_config();
  bad.num_classes = 1;
  EXPECT_THROW(pn::UNet{bad}, std::invalid_argument);
  bad = tiny_config();
  bad.use_dropout = true;
  bad.dropout_rate = 1.5f;
  EXPECT_THROW(pn::UNet{bad}, std::invalid_argument);
}

TEST(UNet, ForwardProducesClassLogitsAtInputResolution) {
  pn::UNet model(tiny_config());
  const auto x = random_tensor({2, 3, 16, 16}, 1);
  pt::Tensor logits;
  model.forward(x, logits, /*training=*/false);
  EXPECT_EQ(logits.dim(0), 2);
  EXPECT_EQ(logits.dim(1), 3);
  EXPECT_EQ(logits.dim(2), 16);
  EXPECT_EQ(logits.dim(3), 16);
  EXPECT_FALSE(logits.has_non_finite());
}

TEST(UNet, ForwardRejectsIndivisibleSpatialSize) {
  pn::UNet model(tiny_config());  // depth 2 -> divisor 4
  const auto x = random_tensor({1, 3, 10, 12}, 2);
  pt::Tensor logits;
  EXPECT_THROW(model.forward(x, logits, false), std::invalid_argument);
}

TEST(UNet, ForwardRejectsWrongChannelCount) {
  pn::UNet model(tiny_config());
  const auto x = random_tensor({1, 4, 16, 16}, 3);
  pt::Tensor logits;
  EXPECT_THROW(model.forward(x, logits, false), std::invalid_argument);
}

TEST(UNet, ParameterCountMatchesArchitectureFormula) {
  auto cfg = tiny_config();  // depth 2, base 4, in 3, classes 3
  pn::UNet model(cfg);
  // enc0: conv(3->4): 3*4*9+4 = 112 ; conv(4->4): 4*4*9+4 = 148
  // enc1: conv(4->8): 4*8*9+8 = 296 ; conv(8->8): 8*8*9+8 = 584
  // bottleneck: conv(8->16): 8*16*9+16 = 1168 ; conv(16->16): 16*16*9+16=2320
  // up(level1): upconv 16->8 (2x2): 16*8*4+8 = 520
  //   dec1: conv(16->8): 16*8*9+8 = 1160 ; conv(8->8): 584
  // up(level0): upconv 8->4 (2x2): 8*4*4+4 = 132
  //   dec0: conv(8->4): 8*4*9+4 = 292 ; conv(4->4): 148
  // head: conv 1x1 (4->3): 4*3+3 = 15
  const std::int64_t expected = 112 + 148 + 296 + 584 + 1168 + 2320 + 520 +
                                1160 + 584 + 132 + 292 + 148 + 15;
  EXPECT_EQ(model.parameter_count(), expected);
}

TEST(UNet, DeterministicGivenSeed) {
  pn::UNet a(tiny_config()), b(tiny_config());
  const auto x = random_tensor({1, 3, 8, 8}, 4);
  pt::Tensor la, lb;
  a.forward(x, la, false);
  b.forward(x, lb, false);
  for (std::int64_t i = 0; i < la.numel(); ++i) EXPECT_EQ(la[i], lb[i]);
}

TEST(UNet, FullNetworkGradientCheck) {
  // End-to-end finite-difference check on the cross-entropy loss wrt a few
  // weights scattered across the network.
  auto cfg = tiny_config();
  cfg.depth = 1;
  cfg.base_channels = 2;
  pn::UNet model(cfg);
  const auto x = random_tensor({1, 3, 4, 4}, 5);
  std::vector<int> targets(16);
  for (int i = 0; i < 16; ++i) targets[i] = i % 3;

  const auto loss_of = [&]() {
    pt::Tensor logits, probs, dlogits;
    model.forward(x, logits, /*training=*/true);
    return pt::softmax_cross_entropy(logits, targets, probs, dlogits);
  };

  // Analytic gradients.
  auto params = model.params();
  for (auto& p : params) p.grad->zero();
  pt::Tensor logits, probs, dlogits;
  model.forward(x, logits, true);
  pt::softmax_cross_entropy(logits, targets, probs, dlogits);
  model.backward(dlogits);

  const float eps = 1e-2f;
  for (const std::size_t pidx : {std::size_t{0}, params.size() / 2,
                                 params.size() - 1}) {
    auto& p = params[pidx];
    const std::int64_t widx = p.value->numel() / 2;
    const float saved = (*p.value)[widx];
    (*p.value)[widx] = saved + eps;
    const float up = loss_of();
    (*p.value)[widx] = saved - eps;
    const float dn = loss_of();
    (*p.value)[widx] = saved;
    const float numeric = (up - dn) / (2 * eps);
    EXPECT_NEAR((*p.grad)[widx], numeric, 2e-2f)
        << "param " << p.name << " index " << widx;
  }
}

TEST(UNet, OverfitsTinyDataset) {
  auto cfg = tiny_config();
  pn::UNet model(cfg);
  const auto data = striped_dataset(4, 16, 10);
  pn::TrainConfig tc;
  tc.epochs = 30;
  tc.batch_size = 4;
  tc.learning_rate = 5e-3f;
  pn::Trainer trainer(model, tc);
  const auto history = trainer.fit(data);
  // Loss must drop dramatically and accuracy approach 1.
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss * 0.3f);
  EXPECT_GT(history.back().pixel_accuracy, 0.95);
  EXPECT_GT(pn::Trainer::evaluate_accuracy(model, data), 0.95);
}

TEST(UNet, SaveLoadRoundTrip) {
  pn::UNet a(tiny_config());
  const auto path =
      (fs::temp_directory_path() / "polarice_unet_weights.bin").string();
  a.save(path);

  auto cfg_b = tiny_config();
  cfg_b.seed = 9999;  // different init
  pn::UNet b(cfg_b);
  const auto x = random_tensor({1, 3, 8, 8}, 20);
  pt::Tensor la, lb;
  a.forward(x, la, false);
  b.forward(x, lb, false);
  bool differs = false;
  for (std::int64_t i = 0; i < la.numel(); ++i) differs |= la[i] != lb[i];
  EXPECT_TRUE(differs);

  b.load(path);
  b.forward(x, lb, false);
  for (std::int64_t i = 0; i < la.numel(); ++i) EXPECT_EQ(la[i], lb[i]);
  fs::remove(path);
}

TEST(UNet, LoadRejectsStructureMismatch) {
  pn::UNet a(tiny_config());
  const auto path =
      (fs::temp_directory_path() / "polarice_unet_weights2.bin").string();
  a.save(path);
  auto cfg = tiny_config();
  cfg.base_channels = 8;  // different widths
  pn::UNet b(cfg);
  EXPECT_THROW(b.load(path), std::runtime_error);
  fs::remove(path);
}

TEST(UNet, CopyParametersMakesModelsIdentical) {
  pn::UNet a(tiny_config());
  auto cfg = tiny_config();
  cfg.seed = 4242;
  pn::UNet b(cfg);
  b.copy_parameters_from(a);
  const auto x = random_tensor({1, 3, 8, 8}, 21);
  pt::Tensor la, lb;
  a.forward(x, la, false);
  b.forward(x, lb, false);
  for (std::int64_t i = 0; i < la.numel(); ++i) EXPECT_EQ(la[i], lb[i]);
}

TEST(SegDataset, EnforcesUniformGeometry) {
  pn::SegDataset data;
  pn::SegSample s1{pt::Tensor({3, 8, 8}), std::vector<int>(64, 0)};
  data.add(std::move(s1));
  pn::SegSample s2{pt::Tensor({3, 4, 4}), std::vector<int>(16, 0)};
  EXPECT_THROW(data.add(std::move(s2)), std::invalid_argument);
  pn::SegSample s3{pt::Tensor({3, 8, 8}), std::vector<int>(10, 0)};
  EXPECT_THROW(data.add(std::move(s3)), std::invalid_argument);
}

TEST(SegDataset, SplitPartitionsAllSamples) {
  const auto data = striped_dataset(10, 8, 30);
  const auto [train, test] = data.split(0.8);
  EXPECT_EQ(train.size(), 8u);
  EXPECT_EQ(test.size(), 2u);
  EXPECT_THROW(data.split(0.0), std::invalid_argument);
  EXPECT_THROW(data.split(1.0), std::invalid_argument);
}

TEST(DataLoader, VisitsEverySampleOncePerEpoch) {
  const auto data = striped_dataset(10, 8, 31);
  pn::DataLoader loader(data, 3, /*seed=*/1);
  loader.start_epoch();
  pn::Batch batch;
  std::vector<int> visits(10, 0);
  std::size_t batches = 0;
  while (loader.next(batch)) {
    ++batches;
    for (const auto idx : batch.indices) ++visits[idx];
  }
  EXPECT_EQ(batches, 4u);  // 3+3+3+1
  for (const int v : visits) EXPECT_EQ(v, 1);
}

TEST(DataLoader, DropLastSkipsPartialBatch) {
  const auto data = striped_dataset(10, 8, 32);
  pn::DataLoader loader(data, 3, 1, true, /*drop_last=*/true);
  EXPECT_EQ(loader.batches_per_epoch(), 3u);
  loader.start_epoch();
  pn::Batch batch;
  std::size_t batches = 0, samples = 0;
  while (loader.next(batch)) {
    ++batches;
    samples += batch.indices.size();
    EXPECT_EQ(batch.x.dim(0), 3);
  }
  EXPECT_EQ(batches, 3u);
  EXPECT_EQ(samples, 9u);
}

TEST(DataLoader, ShuffleChangesOrderDeterministically) {
  const auto data = striped_dataset(16, 8, 33);
  pn::DataLoader a(data, 16, 5), b(data, 16, 5), c(data, 16, 6);
  pn::Batch ba, bb, bc;
  a.start_epoch();
  b.start_epoch();
  c.start_epoch();
  a.next(ba);
  b.next(bb);
  c.next(bc);
  EXPECT_EQ(ba.indices, bb.indices);  // same seed, same order
  EXPECT_NE(ba.indices, bc.indices);  // different seed differs
}

TEST(DataLoader, RejectsBadConstruction) {
  const auto data = striped_dataset(4, 8, 34);
  EXPECT_THROW(pn::DataLoader(data, 0, 1), std::invalid_argument);
  pn::SegDataset empty;
  EXPECT_THROW(pn::DataLoader(empty, 4, 1), std::invalid_argument);
}

TEST(Trainer, RejectsBadConfig) {
  pn::UNet model(tiny_config());
  pn::TrainConfig tc;
  tc.epochs = 0;
  EXPECT_THROW(pn::Trainer(model, tc), std::invalid_argument);
  tc = pn::TrainConfig{};
  tc.batch_size = -1;
  EXPECT_THROW(pn::Trainer(model, tc), std::invalid_argument);
  tc = pn::TrainConfig{};
  tc.learning_rate = 0.0f;
  EXPECT_THROW(pn::Trainer(model, tc), std::invalid_argument);
}

TEST(Trainer, OnBatchHookObservesEverySteps) {
  pn::UNet model(tiny_config());
  const auto data = striped_dataset(6, 8, 35);
  pn::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 3;
  pn::Trainer trainer(model, tc);
  int calls = 0;
  trainer.on_batch = [&](int, std::size_t, float loss) {
    ++calls;
    EXPECT_TRUE(std::isfinite(loss));
  };
  trainer.fit(data);
  EXPECT_EQ(calls, 4);  // 2 epochs x 2 batches
}

TEST(Trainer, PredictReturnsPerPixelClasses) {
  pn::UNet model(tiny_config());
  const auto data = striped_dataset(1, 16, 36);
  const auto pred = pn::Trainer::predict(model, data[0]);
  EXPECT_EQ(pred.size(), 256u);
  for (const int p : pred) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 3);
  }
}
