// Threshold-calibration extension tests (paper §V): two-level Otsu math and
// season-shift recovery.

#include <gtest/gtest.h>

#include "core/autolabel.h"
#include "core/calibrate.h"
#include "img/threshold.h"
#include "metrics/metrics.h"
#include "s2/scene.h"
#include "util/rng.h"

namespace pc = polarice::core;
namespace pi = polarice::img;
namespace ps = polarice::s2;

namespace {
double autolabel_accuracy(const pc::AutoLabelConfig& cfg,
                          const ps::Scene& scene) {
  const auto result = pc::AutoLabeler(cfg).label(scene.rgb);
  std::vector<int> truth, pred;
  for (const auto v : scene.labels) truth.push_back(v);
  for (const auto v : result.labels) pred.push_back(v);
  return polarice::metrics::pixel_accuracy(truth, pred);
}
}  // namespace

TEST(OtsuTwoLevel, SeparatesCleanTrimodalHistogram) {
  pi::ImageU8 im(300, 1, 1);
  for (int x = 0; x < 100; ++x) im.at(x, 0) = 20;
  for (int x = 100; x < 200; ++x) im.at(x, 0) = 120;
  for (int x = 200; x < 300; ++x) im.at(x, 0) = 230;
  const auto [t1, t2] = pi::otsu_two_level(im);
  EXPECT_GE(int(t1), 20);
  EXPECT_LT(int(t1), 120);
  EXPECT_GE(int(t2), 120);
  EXPECT_LT(int(t2), 230);
}

TEST(OtsuTwoLevel, NoisyTrimodalLandsBetweenModes) {
  polarice::util::Rng rng(5);
  pi::ImageU8 im(128, 128, 1);
  for (int y = 0; y < 128; ++y) {
    for (int x = 0; x < 128; ++x) {
      const double mode = x < 43 ? 30.0 : (x < 86 ? 128.0 : 220.0);
      im.at(x, y) = static_cast<std::uint8_t>(
          std::clamp(rng.normal(mode, 10.0), 0.0, 255.0));
    }
  }
  const auto [t1, t2] = pi::otsu_two_level(im);
  EXPECT_GT(int(t1), 50);
  EXPECT_LT(int(t1), 110);
  EXPECT_GT(int(t2), 150);
  EXPECT_LT(int(t2), 205);
}

TEST(OtsuTwoLevel, OrderedThresholds) {
  polarice::util::Rng rng(6);
  pi::ImageU8 im(64, 64, 1);
  for (auto& v : im) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const auto [t1, t2] = pi::otsu_two_level(im);
  EXPECT_LT(int(t1), int(t2));
}

TEST(Calibrate, RecoversPaperCutsOnSummerScene) {
  ps::SceneConfig sc;
  sc.width = sc.height = 256;
  sc.seed = 71;
  sc.cloudy = false;
  const auto scene = ps::SceneGenerator(sc).generate();
  const auto cal = pc::calibrate_thresholds(scene.rgb);
  // Summer bands: water <= 24, thin 42..190, thick >= 216. The calibrated
  // cuts must fall in the gaps (the paper picked 30 and 204, also in the
  // gaps).
  EXPECT_GT(int(cal.cut_low), 20);
  EXPECT_LT(int(cal.cut_low), 45);
  EXPECT_GT(int(cal.cut_high), 185);
  EXPECT_LT(int(cal.cut_high), 220);
}

TEST(Calibrate, PartialNightSeasonRecovery) {
  // The central §V scenario: darkened season breaks the published
  // thresholds; calibration restores near-perfect segmentation.
  ps::SceneConfig sc;
  sc.width = sc.height = 256;
  sc.seed = 72;
  sc.cloudy = false;
  sc.season_brightness = 0.55;
  const auto night = ps::SceneGenerator(sc).generate();

  pc::AutoLabelConfig paper_cfg;
  paper_cfg.apply_filter = false;
  const double paper_acc = autolabel_accuracy(paper_cfg, night);

  pc::AutoLabelConfig cal_cfg;
  cal_cfg.apply_filter = false;
  cal_cfg.ranges = pc::calibrate_thresholds(night.rgb).ranges;
  const double cal_acc = autolabel_accuracy(cal_cfg, night);

  EXPECT_LT(paper_acc, 0.8);  // summer constants genuinely fail
  EXPECT_GT(cal_acc, 0.99);   // calibration recovers
}

TEST(Calibrate, CalibratedRangesPartitionColorSpace) {
  ps::SceneConfig sc;
  sc.width = sc.height = 128;
  sc.seed = 73;
  sc.cloudy = false;
  const auto cal =
      pc::calibrate_thresholds(ps::SceneGenerator(sc).generate().rgb);
  for (int v = 0; v < 256; ++v) {
    int matches = 0;
    for (const auto& range : cal.ranges) {
      matches += v >= range.lower[2] && v <= range.upper[2];
    }
    ASSERT_EQ(matches, 1) << "v = " << v;
  }
}

TEST(Calibrate, GuardsDegenerateInput) {
  pi::ImageU8 constant(32, 32, 1, 128);
  EXPECT_THROW(pc::calibrate_thresholds_from_v(constant),
               std::invalid_argument);
  pi::ImageU8 rgb(8, 8, 3);
  EXPECT_THROW(pc::calibrate_thresholds_from_v(rgb), std::invalid_argument);
  pi::ImageU8 gray(8, 8, 1);
  EXPECT_THROW(pc::calibrate_thresholds(gray), std::invalid_argument);
}

TEST(SceneSeason, BrightnessScalesValues) {
  ps::SceneConfig sc;
  sc.width = sc.height = 64;
  sc.seed = 74;
  sc.cloudy = false;
  const auto summer = ps::SceneGenerator(sc).generate();
  sc.season_brightness = 0.5;
  const auto night = ps::SceneGenerator(sc).generate();
  // Labels are season-invariant; brightness is not.
  EXPECT_EQ(summer.labels, night.labels);
  double summer_mean = 0, night_mean = 0;
  for (const auto v : summer.rgb) summer_mean += v;
  for (const auto v : night.rgb) night_mean += v;
  EXPECT_NEAR(night_mean / summer_mean, 0.5, 0.05);
}

TEST(SceneSeason, ValidatesBrightness) {
  ps::SceneConfig sc;
  sc.season_brightness = 0.0;
  EXPECT_THROW(ps::SceneGenerator{sc}, std::invalid_argument);
  sc.season_brightness = 1.5;
  EXPECT_THROW(ps::SceneGenerator{sc}, std::invalid_argument);
}
