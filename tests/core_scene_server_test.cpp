// SceneServer serving semantics: cross-scene batched results bit-compared
// against the serial InferenceWorkflow, cache hit/miss/eviction behaviour,
// admission rejection under a full queue, cancellation, replica
// auto-scaling, shutdown drain, and stats consistency under concurrent
// submitters.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "core/inference_session.h"
#include "core/serve/scene_server.h"
#include "core/workflow.h"
#include "img/ops.h"
#include "nn/unet.h"
#include "par/context.h"
#include "s2/scene.h"

namespace pc = polarice::core;
namespace pv = polarice::core::serve;
namespace pp = polarice::par;
namespace ps = polarice::s2;
namespace pn = polarice::nn;
namespace pi = polarice::img;

using namespace std::chrono_literals;

namespace {

pn::UNet make_model() {
  pn::UNetConfig cfg;
  cfg.depth = 2;
  cfg.base_channels = 6;
  cfg.use_dropout = false;
  cfg.seed = 88;
  // Untrained weights: deterministic init is all bit-identity tests need.
  return pn::UNet(cfg);
}

pi::ImageU8 make_scene(std::uint64_t seed, int size = 128) {
  ps::SceneConfig sc;
  sc.width = sc.height = size;
  sc.seed = seed;
  sc.cloudy = true;
  return ps::SceneGenerator(sc).generate().rgb;
}

pv::SceneServerConfig server_config() {
  pv::SceneServerConfig cfg;
  cfg.tile_size = 64;
  cfg.batch_tiles = 3;  // deliberately not a divisor of the 4-tile scenes
  cfg.min_replicas = 1;
  cfg.max_replicas = 2;
  // Generous top-up wait: full batches flush immediately and the "no more
  // pending scenes" fast path flushes the tail, so this never stalls the
  // test — it only guarantees batches straddle scene boundaries.
  cfg.max_batch_wait = 5000ms;
  return cfg;
}

}  // namespace

TEST(SceneServer, CrossSceneBatchesBitIdenticalToSerialWorkflow) {
  pn::UNet model = make_model();
  constexpr int kScenes = 6;

  std::vector<pi::ImageU8> scenes, references;
  pc::InferenceWorkflow workflow(model, {}, 64);
  for (int i = 0; i < kScenes; ++i) {
    scenes.push_back(make_scene(9000 + static_cast<std::uint64_t>(i)));
    references.push_back(workflow.classify_scene(scenes.back()));
  }

  auto cfg = server_config();
  cfg.cache_bytes = 0;  // count every forwarded tile
  pv::SceneServer server(model, cfg);

  std::vector<pv::SceneTicket> tickets;
  for (const auto& scene : scenes) tickets.push_back(server.submit(scene.clone()));
  for (int i = 0; i < kScenes; ++i) {
    EXPECT_EQ(tickets[static_cast<std::size_t>(i)].get(),
              references[static_cast<std::size_t>(i)])
        << "scene " << i;
  }

  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::size_t>(kScenes));
  EXPECT_EQ(stats.completed, static_cast<std::size_t>(kScenes));
  EXPECT_EQ(stats.session.scenes, static_cast<std::size_t>(kScenes));
  EXPECT_EQ(stats.session.tiles, static_cast<std::size_t>(kScenes) * 4);
  EXPECT_GT(stats.batches, 0u);
  // 4-tile scenes consumed in batches of 3 must straddle scene boundaries.
  EXPECT_GT(stats.cross_scene_batches, 0u);
  EXPECT_GT(stats.session.busy_seconds, 0.0);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(SceneServer, CacheHitSkipsForwardPassesAndReturnsIdenticalPlane) {
  pn::UNet model = make_model();
  auto cfg = server_config();
  cfg.cache_bytes = 1 << 20;
  pv::SceneServer server(model, cfg);

  const auto scene = make_scene(4242);
  const auto first = server.classify_scene(scene);
  const auto after_first = server.stats();
  EXPECT_EQ(after_first.cache_misses, 1u);
  EXPECT_EQ(after_first.session.tiles, 4u);

  const auto second = server.classify_scene(scene);
  EXPECT_EQ(first, second);

  const auto stats = server.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  // Zero additional forward work: tile and batch counters are unchanged.
  EXPECT_EQ(stats.session.tiles, after_first.session.tiles);
  EXPECT_EQ(stats.batches, after_first.batches);
  EXPECT_EQ(stats.session.scenes, 1u);  // forward-path scenes only
  EXPECT_EQ(stats.completed, 2u);       // both tickets resolved
}

TEST(SceneServer, CacheEvictionUnderByteBudget) {
  pn::UNet model = make_model();
  auto cfg = server_config();
  // Fits one 128x128 plane (16384 B + overhead), not two.
  cfg.cache_bytes = 20000;
  pv::SceneServer server(model, cfg);

  const auto scene_a = make_scene(1);
  const auto scene_b = make_scene(2);
  (void)server.classify_scene(scene_a);
  (void)server.classify_scene(scene_b);  // evicts A
  (void)server.classify_scene(scene_a);  // miss again -> forward again

  const auto stats = server.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 3u);
  EXPECT_GE(stats.cache_evictions, 1u);
  EXPECT_EQ(stats.session.tiles, 12u);
}

TEST(SceneServer, AdmissionRejectsWhenQueueFull) {
  pn::UNet model = make_model();
  auto cfg = server_config();
  cfg.admission.capacity = 1;
  cfg.admission.policy = pv::AdmissionPolicy::kReject;
  cfg.min_replicas = cfg.max_replicas = 1;
  pv::SceneServer server(model, cfg);

  // Gate the scheduler inside the first scene's prepare step so further
  // submissions pile up behind a deterministically full queue.
  std::binary_semaphore entered{0}, release{0};
  const pp::ExecutionContext gated;
  gated.set_progress_sink([&](const pp::ProgressEvent& event) {
    if (std::string(event.stage) == "serve.prepare" && event.completed == 0) {
      entered.release();
      release.acquire();
    }
  });

  auto t1 = server.submit(make_scene(71), gated);
  entered.acquire();  // scheduler is now parked inside prepare
  auto t2 = server.submit(make_scene(72));  // fills the 1-slot queue
  EXPECT_THROW(server.submit(make_scene(73)), pv::AdmissionRejected);
  release.release();

  EXPECT_EQ(t1.get().width(), 128);
  EXPECT_EQ(t2.get().width(), 128);
  const auto stats = server.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.peak_queue_depth, 1u);
}

TEST(SceneServer, CancellationResolvesTicketsAtPipelineBoundaries) {
  pn::UNet model = make_model();
  auto cfg = server_config();
  cfg.min_replicas = cfg.max_replicas = 1;
  cfg.batch_tiles = 1;
  cfg.max_batch_wait = 0ms;
  pv::SceneServer server(model, cfg);

  // Cancelled while queued: gate the scheduler on a first scene, cancel the
  // second before the gate opens.
  {
    std::binary_semaphore entered{0}, release{0};
    const pp::ExecutionContext gated;
    gated.set_progress_sink([&](const pp::ProgressEvent& event) {
      if (std::string(event.stage) == "serve.prepare" &&
          event.completed == 0) {
        entered.release();
        release.acquire();
      }
    });
    auto busy = server.submit(make_scene(81), gated);
    entered.acquire();
    auto doomed = server.submit(make_scene(82));
    doomed.cancel();
    release.release();
    EXPECT_THROW((void)doomed.get(), pp::OperationCancelled);
    EXPECT_NO_THROW((void)busy.get());
  }

  // Cancelled mid-inference: with one worker and one-tile batches the
  // remaining tiles are abandoned at the next batch boundary.
  {
    const pp::ExecutionContext ctx;
    ctx.set_progress_sink([&](const pp::ProgressEvent& event) {
      if (std::string(event.stage) == "serve.tiles" && event.completed == 1) {
        ctx.request_cancel();
      }
    });
    auto ticket = server.submit(make_scene(83), ctx);
    EXPECT_THROW((void)ticket.get(), pp::OperationCancelled);
  }

  // The server stays serviceable after cancellations.
  EXPECT_EQ(server.classify_scene(make_scene(84)).width(), 128);
  const auto stats = server.stats();
  EXPECT_EQ(stats.cancelled, 2u);
  EXPECT_EQ(stats.failed, 0u);

  // Per-ticket cancel is scoped to its scene: two tickets sharing one
  // submitter context — cancelling one never cancels its sibling (or the
  // shared context itself).
  {
    const pp::ExecutionContext shared_ctx;
    auto a = server.submit(make_scene(85), shared_ctx);
    auto b = server.submit(make_scene(86), shared_ctx);
    a.cancel();
    try {
      (void)a.get();  // may have finished before the cancel landed
    } catch (const pp::OperationCancelled&) {
    }
    EXPECT_NO_THROW((void)b.get());
    EXPECT_FALSE(shared_ctx.cancelled());
  }
}

TEST(SceneServer, PadsRaggedScenesLikeInferenceSession) {
  pn::UNet model = make_model();
  const auto full = make_scene(55, 128);
  const auto ragged = pi::crop(full, 0, 0, 100, 72);

  pc::InferenceSessionConfig session_cfg;
  session_cfg.tile_size = 64;
  session_cfg.replicas = 1;
  pc::InferenceSession session(model, session_cfg);
  const auto reference = session.classify_scene(ragged);

  auto cfg = server_config();
  pv::SceneServer server(model, cfg);
  const auto labels = server.classify_scene(ragged);
  EXPECT_EQ(labels.width(), 100);
  EXPECT_EQ(labels.height(), 72);
  EXPECT_EQ(labels, reference);

  // Strict mode matches the workflow contract.
  cfg.pad_partial_tiles = false;
  pv::SceneServer strict(model, cfg);
  EXPECT_THROW((void)strict.submit(ragged.clone()), std::invalid_argument);
  pi::ImageU8 gray(64, 64, 1);
  EXPECT_THROW((void)server.submit(gray.clone()), std::invalid_argument);
}

TEST(SceneServer, ReplicaAutoScalingGrowsUnderBacklogAndShrinksWhenIdle) {
  pn::UNet model = make_model();
  auto cfg = server_config();
  cfg.min_replicas = 1;
  cfg.max_replicas = 3;
  cfg.batch_tiles = 2;
  cfg.max_batch_wait = 0ms;  // keep workers hungry
  cfg.cache_bytes = 0;
  cfg.scale_down_idle = 50ms;
  pv::SceneServer server(model, cfg);

  constexpr int kScenes = 8;
  std::vector<pi::ImageU8> scenes, references;
  pc::InferenceWorkflow workflow(model, {}, 64);
  for (int i = 0; i < kScenes; ++i) {
    scenes.push_back(make_scene(500 + static_cast<std::uint64_t>(i)));
    references.push_back(workflow.classify_scene(scenes.back()));
  }

  std::vector<pv::SceneTicket> tickets;
  for (const auto& scene : scenes) tickets.push_back(server.submit(scene.clone()));
  for (int i = 0; i < kScenes; ++i) {
    EXPECT_EQ(tickets[static_cast<std::size_t>(i)].get(),
              references[static_cast<std::size_t>(i)])
        << "scene " << i;
  }

  auto stats = server.stats();
  EXPECT_GE(stats.peak_replicas, 2);   // backlog forced a scale-up
  EXPECT_LE(stats.peak_replicas, 3);
  EXPECT_LE(stats.session.peak_leases, 3u);

  // Idle scale-down retires replicas back to the warm floor.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (server.stats().replicas > 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_EQ(server.stats().replicas, 1);
}

TEST(SceneServer, StatsConsistentUnderConcurrentSubmitters) {
  pn::UNet model = make_model();
  auto cfg = server_config();
  cfg.max_batch_wait = 2ms;
  cfg.admission.capacity = 64;
  pv::SceneServer server(model, cfg);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 3;
  std::atomic<int> ok{0};
  {
    std::vector<std::jthread> submitters;
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const auto seed =
              static_cast<std::uint64_t>(7000 + t * kPerThread + i);
          auto ticket = server.submit(make_scene(seed));
          if (ticket.get().width() == 128) ok.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(ok.load(), kThreads * kPerThread);

  const auto stats = server.stats();
  const auto total = static_cast<std::size_t>(kThreads * kPerThread);
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.completed, total);
  EXPECT_EQ(stats.cache_hits, 0u);  // all scenes distinct
  EXPECT_EQ(stats.cache_misses, total);
  EXPECT_EQ(stats.session.scenes, total);
  EXPECT_EQ(stats.session.tiles, total * 4);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_LE(stats.peak_queue_depth, cfg.admission.capacity);
  EXPECT_GE(stats.session.wait_seconds, 0.0);
  EXPECT_GE(stats.batches, stats.cross_scene_batches);
}

// Satellite regression for the single-lock snapshot(): a poller hammers
// snapshot() while submitters run, and every observation must be
// internally consistent — no torn reads where completed outruns
// submitted, and no counter ever moving backwards between snapshots.
TEST(SceneServer, SnapshotNeverTearsUnderConcurrentSubmitters) {
  pn::UNet model = make_model();
  auto cfg = server_config();
  cfg.max_batch_wait = 2ms;
  pv::SceneServer server(model, cfg);

  std::atomic<bool> done{false};
  std::vector<std::string> violations;
  std::jthread poller([&] {
    pv::SceneServerStats prev;
    std::size_t polls = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const auto s = server.snapshot();
      ++polls;
      if (s.completed + s.cancelled + s.failed > s.submitted) {
        violations.push_back("resolved > submitted at poll " +
                             std::to_string(polls));
      }
      if (s.cross_scene_batches > s.batches) {
        violations.push_back("cross_scene_batches > batches");
      }
      // Cumulative counters only move forward.
      if (s.submitted < prev.submitted || s.completed < prev.completed ||
          s.cache_hits < prev.cache_hits ||
          s.cache_misses < prev.cache_misses || s.batches < prev.batches ||
          s.session.scenes < prev.session.scenes ||
          s.session.tiles < prev.session.tiles) {
        violations.push_back("counter went backwards at poll " +
                             std::to_string(polls));
      }
      prev = s;
      if (violations.size() > 8) return;  // enough evidence
    }
  });

  constexpr int kThreads = 3;
  constexpr int kPerThread = 4;
  std::atomic<int> ok{0};
  std::atomic<int> contract_breaks{0};  // poller owns `violations`
  {
    std::vector<std::jthread> submitters;
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          // Half the seeds repeat across threads: cache hits and
          // single-flight coalescing run concurrently with the poller too.
          const auto seed = static_cast<std::uint64_t>(
              (i % 2 == 0) ? 7100 + i : 7200 + t * kPerThread + i);
          auto ticket = server.submit(make_scene(seed));
          if (ticket.get().width() == 128) ok.fetch_add(1);
          // The snapshot contract: once get() returned, the scene is in
          // every later snapshot.
          const auto after = server.snapshot();
          if (after.completed + after.cancelled + after.failed == 0) {
            contract_breaks.fetch_add(1);
          }
        }
      });
    }
  }
  done.store(true);
  poller.join();

  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(contract_breaks.load(), 0);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations; first: " << violations.front();

  const auto stats = server.snapshot();
  EXPECT_EQ(stats.completed, static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_GT(stats.cache_hits + stats.coalesced, 0u);  // repeats collided
}

TEST(SceneServer, ShutdownDrainsAdmittedWorkAndRefusesNew) {
  pn::UNet model = make_model();
  auto cfg = server_config();
  pv::SceneServer server(model, cfg);

  std::vector<pv::SceneTicket> tickets;
  for (int i = 0; i < 3; ++i) {
    tickets.push_back(server.submit(make_scene(600 + static_cast<std::uint64_t>(i))));
  }
  server.shutdown();
  for (auto& ticket : tickets) {
    EXPECT_EQ(ticket.get().width(), 128);  // admitted work completed
  }
  EXPECT_THROW((void)server.submit(make_scene(9)), pv::QueueClosed);
  server.shutdown();  // idempotent
}

TEST(SceneServer, ConfigValidation) {
  pn::UNet model = make_model();
  const auto bad = [&](auto mutate) {
    auto cfg = server_config();
    mutate(cfg);
    EXPECT_THROW(pv::SceneServer(model, cfg), std::invalid_argument);
  };
  bad([](pv::SceneServerConfig& c) { c.tile_size = 0; });
  bad([](pv::SceneServerConfig& c) { c.tile_size = 30; });  // 30 % 4 != 0
  bad([](pv::SceneServerConfig& c) { c.batch_tiles = 0; });
  bad([](pv::SceneServerConfig& c) { c.min_replicas = 0; });
  bad([](pv::SceneServerConfig& c) { c.max_replicas = 0; });
  bad([](pv::SceneServerConfig& c) { c.max_batch_wait = -1ms; });
  bad([](pv::SceneServerConfig& c) { c.scale_down_idle = 0ms; });
  bad([](pv::SceneServerConfig& c) { c.admission.capacity = 0; });
}

// ---------------------------------------------------------------------------
// Single-flight coalescing: content-identical in-flight scenes share one
// forward pass; a failed/cancelled leader promotes a follower instead of
// dragging it down.
// ---------------------------------------------------------------------------

namespace {

/// Polls `pred` for up to ~2 s (the deterministic gates make the condition
/// inevitable; the bound only protects the test run from a genuine bug).
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

}  // namespace

TEST(SceneServer, SingleFlightCoalescesIdenticalInFlightScenes) {
  pn::UNet model = make_model();
  const auto scene = make_scene(6001);
  pc::InferenceWorkflow workflow(model, {}, 64);
  const auto reference = workflow.classify_scene(scene);

  auto cfg = server_config();
  cfg.cache_bytes = 0;  // prove coalescing works without the result cache
  cfg.min_replicas = cfg.max_replicas = 1;
  cfg.batch_tiles = 1;
  cfg.max_batch_wait = 0ms;
  pv::SceneServer server(model, cfg);

  // Park the single worker right after the leader's first tile lands, so
  // the leader is provably mid-flight while the identical follower is
  // prepared.
  std::binary_semaphore first_tile{0}, release{0};
  const pp::ExecutionContext gated;
  gated.set_progress_sink([&](const pp::ProgressEvent& event) {
    if (std::string(event.stage) == "serve.tiles" && event.completed == 1) {
      first_tile.release();
      release.acquire();
    }
  });

  auto leader = server.submit(scene.clone(), gated);
  first_tile.acquire();
  auto follower = server.submit(scene.clone());
  ASSERT_TRUE(eventually([&] { return server.stats().coalesced == 1; }));
  release.release();

  EXPECT_EQ(leader.get(), reference);
  EXPECT_EQ(follower.get(), reference);

  const auto stats = server.stats();
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.session.scenes, 1u);  // one forward-path scene
  EXPECT_EQ(stats.session.tiles, 4u);   // the leader's tiles only
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(SceneServer, SingleFlightPromotesFollowerWhenLeaderCancelled) {
  pn::UNet model = make_model();
  const auto scene = make_scene(6002);
  pc::InferenceWorkflow workflow(model, {}, 64);
  const auto reference = workflow.classify_scene(scene);

  auto cfg = server_config();
  cfg.cache_bytes = 0;
  cfg.min_replicas = cfg.max_replicas = 1;
  cfg.batch_tiles = 1;
  cfg.max_batch_wait = 0ms;
  pv::SceneServer server(model, cfg);

  std::binary_semaphore first_tile{0}, release{0};
  const pp::ExecutionContext gated;
  gated.set_progress_sink([&](const pp::ProgressEvent& event) {
    if (std::string(event.stage) == "serve.tiles" && event.completed == 1) {
      first_tile.release();
      release.acquire();
    }
  });

  auto leader = server.submit(scene.clone(), gated);
  first_tile.acquire();  // 3 of the leader's 4 one-tile batches still queued
  auto follower = server.submit(scene.clone());
  ASSERT_TRUE(eventually([&] { return server.stats().coalesced == 1; }));
  leader.cancel();
  release.release();

  // The worker abandons the cancelled leader at the next batch boundary and
  // promotes the follower, which re-runs the forward path from scratch.
  EXPECT_THROW((void)leader.get(), pp::OperationCancelled);
  EXPECT_EQ(follower.get(), reference);

  const auto stats = server.stats();
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(SceneServer, SingleFlightOffRunsEveryForwardPath) {
  pn::UNet model = make_model();
  auto cfg = server_config();
  cfg.cache_bytes = 0;
  cfg.single_flight = false;
  pv::SceneServer server(model, cfg);

  const auto scene = make_scene(6003);
  auto a = server.submit(scene.clone());
  auto b = server.submit(scene.clone());
  EXPECT_EQ(a.get(), b.get());

  const auto stats = server.stats();
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.session.tiles, 8u);  // both scenes forwarded fully
  EXPECT_EQ(stats.session.scenes, 2u);
}

TEST(SceneServer, SingleFlightCancelledFollowerResolvesCancelled) {
  pn::UNet model = make_model();
  const auto scene = make_scene(6004);

  auto cfg = server_config();
  cfg.cache_bytes = 0;
  cfg.min_replicas = cfg.max_replicas = 1;
  cfg.batch_tiles = 1;
  cfg.max_batch_wait = 0ms;
  pv::SceneServer server(model, cfg);

  std::binary_semaphore first_tile{0}, release{0};
  const pp::ExecutionContext gated;
  gated.set_progress_sink([&](const pp::ProgressEvent& event) {
    if (std::string(event.stage) == "serve.tiles" && event.completed == 1) {
      first_tile.release();
      release.acquire();
    }
  });

  auto leader = server.submit(scene.clone(), gated);
  first_tile.acquire();
  auto follower = server.submit(scene.clone());
  ASSERT_TRUE(eventually([&] { return server.stats().coalesced == 1; }));
  follower.cancel();  // follower opts out while the leader is mid-flight
  release.release();

  // The leader still completes; the cancelled follower resolves as
  // cancelled even though the shared result was in hand.
  EXPECT_EQ(leader.get().width(), 128);
  EXPECT_THROW((void)follower.get(), pp::OperationCancelled);

  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
}
