// Unit and property tests for the thread-pool substrate (polarice::par).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "par/parallel_for.h"
#include "par/task_group.h"
#include "par/thread_pool.h"

namespace pp = polarice::par;

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(pp::ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  pp::ThreadPool pool(4);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitWithArguments) {
  pp::ThreadPool pool(2);
  auto f = pool.submit([](int a, int b) { return a + b; }, 40, 2);
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptionsThroughFuture) {
  pp::ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllExecute) {
  pp::ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  pp::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    pp::ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) pool.submit([&counter] { ++counter; });
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, HardwareAtLeastOne) {
  EXPECT_GE(pp::ThreadPool::hardware(), 1u);
}

TEST(ParallelFor, NullPoolRunsSequentially) {
  std::vector<int> hits(100, 0);
  pp::parallel_for(nullptr, 0, 100, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  pp::ThreadPool pool(2);
  int calls = 0;
  pp::parallel_for(&pool, 5, 5, [&](std::size_t) { ++calls; });
  pp::parallel_for(&pool, 7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, PropagatesBodyException) {
  pp::ThreadPool pool(4);
  EXPECT_THROW(pp::parallel_for(&pool, 0, 100,
                                [](std::size_t i) {
                                  if (i == 50) throw std::runtime_error("x");
                                }),
               std::runtime_error);
}

// Property: parallel_for touches every index exactly once, for a sweep of
// worker counts and grain sizes.
class ParallelForSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelForSweep, CoversEveryIndexExactlyOnce) {
  const auto [workers, grain] = GetParam();
  pp::ThreadPool pool(workers);
  std::vector<std::atomic<int>> hits(1234);
  pp::parallel_for(
      &pool, 0, hits.size(), [&](std::size_t i) { ++hits[i]; },
      static_cast<std::size_t>(grain));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndGrains, ParallelForSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(0, 1, 7, 100, 5000)));

TEST(ParallelMap, ResultsInOrder) {
  pp::ThreadPool pool(4);
  const auto out = pp::parallel_map<int>(
      &pool, 10, 20, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], (i + 10) * (i + 10));
}

TEST(ParallelReduce, MatchesSequentialSum) {
  pp::ThreadPool pool(8);
  const auto sum = pp::parallel_reduce<long>(
      &pool, 0, 100000, 0L, [](std::size_t i) { return long(i); },
      [](long a, long b) { return a + b; });
  EXPECT_EQ(sum, 100000L * 99999L / 2);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  pp::ThreadPool pool(2);
  const auto v = pp::parallel_reduce<int>(
      &pool, 3, 3, 99, [](std::size_t) { return 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(v, 99);
}

TEST(TaskGroup, JoinsAllForkedTasks) {
  pp::ThreadPool pool(4);
  std::atomic<int> counter{0};
  {
    pp::TaskGroup group(pool);
    for (int i = 0; i < 50; ++i) group.run([&counter] { ++counter; });
    group.wait();
    EXPECT_EQ(counter.load(), 50);
  }
}

TEST(TaskGroup, WaitRethrowsFirstException) {
  pp::ThreadPool pool(2);
  pp::TaskGroup group(pool);
  group.run([] { throw std::logic_error("first"); });
  EXPECT_THROW(group.wait(), std::logic_error);
}

TEST(TaskGroup, DestructorJoinsWithoutThrowing) {
  pp::ThreadPool pool(2);
  std::atomic<int> counter{0};
  {
    pp::TaskGroup group(pool);
    group.run([&counter] { ++counter; });
    group.run([] { throw std::runtime_error("swallowed"); });
  }  // must not terminate
  EXPECT_EQ(counter.load(), 1);
}

// Scaling smoke test: with real work, more threads must not be slower than
// one thread by more than bookkeeping noise. (Not a strict speedup assert,
// and a generous margin: on a 1-core CI host the 4 workers only add
// scheduling overhead, and the test is RUN_SERIAL so other suites cannot
// steal the clock.)
TEST(ThreadPool, ParallelNotSlowerThanSequentialOnRealWork) {
  const std::size_t n = 1 << 22;
  std::vector<double> data(n, 1.000001);
  auto work = [&](std::size_t i) {
    double x = data[i];
    for (int k = 0; k < 8; ++k) x = x * x - 0.5;
    data[i] = x;
  };
  const auto run = [&](pp::ThreadPool* pool) {
    const auto t0 = std::chrono::steady_clock::now();
    pp::parallel_for(pool, 0, n, work);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  const double seq = run(nullptr);
  pp::ThreadPool pool(4);
  const double par = run(&pool);
  EXPECT_LT(par, seq * 2.0);
}

// Regression: a non-identity init must be folded exactly once, not once per
// chunk (the seed seeded every chunk's accumulator with init and then folded
// init again in the final combine).
TEST(ParallelReduce, NonZeroInitCountedExactlyOnce) {
  pp::ThreadPool pool(8);
  const auto sum = pp::parallel_reduce<long>(
      &pool, 0, 10000, 1000L, [](std::size_t i) { return long(i); },
      [](long a, long b) { return a + b; });
  EXPECT_EQ(sum, 1000L + 10000L * 9999L / 2);
}

TEST(ParallelReduce, NonZeroInitMatchesSequentialForAnyWorkerCount) {
  for (const int workers : {1, 2, 3, 8}) {
    pp::ThreadPool pool(workers);
    const auto sum = pp::parallel_reduce<long>(
        &pool, 5, 777, 42L, [](std::size_t i) { return long(i * i); },
        [](long a, long b) { return a + b; });
    long want = 42;
    for (std::size_t i = 5; i < 777; ++i) want += long(i * i);
    EXPECT_EQ(sum, want) << "workers=" << workers;
  }
}

TEST(ParallelFor2D, CoversEveryCellExactlyOnce) {
  pp::ThreadPool pool(4);
  constexpr std::size_t kRows = 37, kCols = 53;
  std::vector<std::atomic<int>> hits(kRows * kCols);
  pp::parallel_for_2d(&pool, kRows, kCols, [&](std::size_t i, std::size_t j) {
    ++hits[i * kCols + j];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor2D, ExplicitTilesCoverRaggedEdges) {
  pp::ThreadPool pool(4);
  constexpr std::size_t kRows = 10, kCols = 23;
  std::vector<std::atomic<int>> hits(kRows * kCols);
  pp::parallel_for_2d(
      &pool, kRows, kCols,
      [&](std::size_t i, std::size_t j) { ++hits[i * kCols + j]; },
      /*tile_rows=*/3, /*tile_cols=*/7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor2D, NullPoolAndEmptyGrid) {
  int calls = 0;
  pp::parallel_for_2d(nullptr, 4, 4, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 16);
  pp::parallel_for_2d(nullptr, 0, 9, [&](std::size_t, std::size_t) { ++calls; });
  pp::parallel_for_2d(nullptr, 9, 0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 16);
}

TEST(ParallelFor2D, PropagatesBodyException) {
  pp::ThreadPool pool(4);
  EXPECT_THROW(
      pp::parallel_for_2d(&pool, 16, 16,
                          [](std::size_t i, std::size_t j) {
                            if (i == 7 && j == 7)
                              throw std::runtime_error("tile");
                          }),
      std::runtime_error);
}

// The latch-based join must allow nested parallel_for from inside pool tasks
// (the caller helps drain the queue instead of sleeping on a future).
TEST(ParallelFor, NestedFromPoolTaskDoesNotDeadlock) {
  pp::ThreadPool pool(2);
  std::atomic<int> counter{0};
  pp::parallel_for(
      &pool, 0, 4,
      [&](std::size_t) {
        pp::parallel_for(
            &pool, 0, 8, [&](std::size_t) { ++counter; }, 1);
      },
      1);
  EXPECT_EQ(counter.load(), 32);
}

// Work-stealing stress: deeply nested, heavily unbalanced parallel_for
// trees. Outer iterations enqueue wildly different amounts of nested work
// (the shape that starves a single shared queue), inner dispatch lands on
// per-worker deques and must be stolen to finish. Exact coverage of every
// leaf iteration proves no entry was lost or run twice.
TEST(ThreadPool, StressNestedUnbalancedStealing) {
  for (const int workers : {2, 4, 8}) {
    pp::ThreadPool pool(workers);
    constexpr std::size_t kOuter = 24;
    std::vector<std::atomic<int>> leaf_hits(4096);
    std::atomic<std::size_t> total{0};
    pp::parallel_for(
        &pool, 0, kOuter,
        [&](std::size_t i) {
          // Unbalanced: iteration i spawns i^2-ish nested leaves, some of
          // which nest once more.
          const std::size_t inner = 1 + (i * i * 7) % 300;
          pp::parallel_for(
              &pool, 0, inner,
              [&](std::size_t j) {
                if (j % 5 == 0) {
                  pp::parallel_for(
                      &pool, 0, 3,
                      [&](std::size_t q) {
                        ++leaf_hits[(i * 131 + j * 7 + q) % 4096];
                        total.fetch_add(1, std::memory_order_relaxed);
                      },
                      1);
                } else {
                  ++leaf_hits[(i * 131 + j * 7) % 4096];
                  total.fetch_add(1, std::memory_order_relaxed);
                }
              },
              1);
        },
        1);
    std::size_t want = 0;
    for (std::size_t i = 0; i < kOuter; ++i) {
      const std::size_t inner = 1 + (i * i * 7) % 300;
      for (std::size_t j = 0; j < inner; ++j) want += j % 5 == 0 ? 3 : 1;
    }
    EXPECT_EQ(total.load(), want) << "workers=" << workers;
  }
}

// Mixed producers: external submit() storm racing detached parallel_for
// dispatch, then wait_idle() must observe full quiescence.
TEST(ThreadPool, StressExternalSubmitersAndWaitIdle) {
  pp::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::jthread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) pool.submit([&] { ++counter; });
    });
  }
  pp::parallel_for(&pool, 0, 500, [&](std::size_t) { ++counter; }, 1);
  producers.clear();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 3 * 200 + 500);
}

// Two pools used from each other's workers: enqueues from a foreign worker
// must route through the target pool's inbox, not the worker's own deque.
TEST(ThreadPool, CrossPoolDispatchDoesNotMisroute) {
  pp::ThreadPool a(2), b(2);
  std::atomic<int> counter{0};
  pp::parallel_for(
      &a, 0, 8,
      [&](std::size_t) {
        pp::parallel_for(&b, 0, 16, [&](std::size_t) { ++counter; }, 1);
      },
      1);
  EXPECT_EQ(counter.load(), 8 * 16);
}

// ---------------------------------------------------------------------------
// TicketWindow: the bounded-admission gate behind the streaming corpus
// executor — at most `window` tickets outstanding, cancellation-aware wait.
// ---------------------------------------------------------------------------

TEST(TicketWindow, RejectsZeroWindow) {
  EXPECT_THROW(pp::TicketWindow(0), std::invalid_argument);
}

TEST(TicketWindow, BoundsOutstandingTickets) {
  pp::ThreadPool pool(4);
  pp::TicketWindow gate(3);
  std::atomic<int> live{0};
  std::atomic<int> peak_seen{0};
  {
    pp::TaskGroup group(pool);
    for (int i = 0; i < 32; ++i) {
      gate.acquire();
      group.run([&] {
        const int now = ++live;
        int prev = peak_seen.load();
        while (now > prev && !peak_seen.compare_exchange_weak(prev, now)) {
        }
        --live;
        gate.release();
      });
    }
    group.wait();
  }
  EXPECT_EQ(gate.in_flight(), 0u);
  EXPECT_LE(peak_seen.load(), 3);
  EXPECT_LE(gate.peak(), 3u);
  EXPECT_GE(gate.peak(), 1u);
}

TEST(TicketWindow, AcquireHonoursCancellationWhileBlocked) {
  pp::TicketWindow gate(1);
  gate.acquire();  // window now full
  pp::ExecutionContext ctx;
  std::atomic<bool> blocked{false};
  std::thread submitter([&] {
    blocked = true;
    EXPECT_THROW(gate.acquire(ctx), pp::OperationCancelled);
  });
  while (!blocked) std::this_thread::yield();
  ctx.request_cancel();
  submitter.join();
  gate.release();
  EXPECT_EQ(gate.in_flight(), 0u);
}

TEST(TicketWindow, ReleaseUnblocksWaiter) {
  pp::TicketWindow gate(1);
  gate.acquire();
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    gate.acquire();
    acquired = true;
    gate.release();
  });
  EXPECT_FALSE(acquired.load());
  gate.release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(gate.peak(), 1u);
}
