// Pixel-op tests: absdiff, saturating arithmetic, bitwise, masks, in_range,
// min-max normalization, crop/resize, float conversion.

#include <gtest/gtest.h>

#include "img/ops.h"
#include "util/rng.h"

namespace pi = polarice::img;

namespace {
pi::ImageU8 random_image(int w, int h, int c, std::uint64_t seed) {
  polarice::util::Rng rng(seed);
  pi::ImageU8 im(w, h, c);
  for (auto& v : im) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return im;
}
}  // namespace

TEST(AbsDiff, SymmetricAndZeroOnSelf) {
  const auto a = random_image(8, 8, 3, 1);
  const auto b = random_image(8, 8, 3, 2);
  EXPECT_EQ(pi::absdiff(a, b), pi::absdiff(b, a));
  const auto self = pi::absdiff(a, a);
  for (const auto v : self) EXPECT_EQ(v, 0);
}

TEST(AbsDiff, RejectsShapeMismatch) {
  pi::ImageU8 a(4, 4, 1), b(4, 5, 1);
  EXPECT_THROW(pi::absdiff(a, b), std::invalid_argument);
}

TEST(SaturatingArithmetic, ClampsAtBounds) {
  pi::ImageU8 a(1, 1, 1, 200), b(1, 1, 1, 100);
  EXPECT_EQ(pi::add_saturate(a, b).at(0, 0), 255);
  EXPECT_EQ(pi::subtract_saturate(b, a).at(0, 0), 0);
  EXPECT_EQ(pi::subtract_saturate(a, b).at(0, 0), 100);
}

TEST(Bitwise, AndOrNotSemantics) {
  pi::ImageU8 a(1, 1, 1, 0b11001100), b(1, 1, 1, 0b10101010);
  EXPECT_EQ(pi::bitwise_and(a, b).at(0, 0), 0b10001000);
  EXPECT_EQ(pi::bitwise_or(a, b).at(0, 0), 0b11101110);
  EXPECT_EQ(pi::bitwise_not(a).at(0, 0), 0b00110011);
}

TEST(Bitwise, DeMorganProperty) {
  const auto a = random_image(16, 16, 1, 3);
  const auto b = random_image(16, 16, 1, 4);
  // not(a and b) == not(a) or not(b)
  EXPECT_EQ(pi::bitwise_not(pi::bitwise_and(a, b)),
            pi::bitwise_or(pi::bitwise_not(a), pi::bitwise_not(b)));
}

TEST(ApplyMask, SelectsPixelsAndFillsRest) {
  pi::ImageU8 src(2, 1, 3, 9);
  pi::ImageU8 mask(2, 1, 1);
  mask.at(0, 0) = 255;
  const auto out = pi::apply_mask(src, mask, 7);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(out.at(0, 0, c), 9);
    EXPECT_EQ(out.at(1, 0, c), 7);
  }
}

TEST(ApplyMask, RejectsBadMaskShape) {
  pi::ImageU8 src(2, 2, 3);
  pi::ImageU8 mask3(2, 2, 3);
  EXPECT_THROW(pi::apply_mask(src, mask3), std::invalid_argument);
}

TEST(InRange, InclusiveBoundsAllChannels) {
  pi::ImageU8 hsv(3, 1, 3);
  // Pixel 0: inside. Pixel 1: one channel below. Pixel 2: one channel above.
  const std::uint8_t pix[3][3] = {{90, 128, 210}, {90, 9, 210}, {90, 128, 251}};
  for (int x = 0; x < 3; ++x) {
    for (int c = 0; c < 3; ++c) hsv.at(x, 0, c) = pix[x][c];
  }
  const auto mask = pi::in_range(hsv, {0, 10, 205}, {185, 255, 250});
  EXPECT_EQ(mask.at(0, 0), 255);
  EXPECT_EQ(mask.at(1, 0), 0);
  EXPECT_EQ(mask.at(2, 0), 0);
}

TEST(InRange, BoundaryValuesAreInside) {
  pi::ImageU8 hsv(2, 1, 3);
  for (int c = 0; c < 3; ++c) {
    hsv.at(0, 0, c) = 10;   // exactly lower
    hsv.at(1, 0, c) = 200;  // exactly upper
  }
  const auto mask = pi::in_range(hsv, {10, 10, 10}, {200, 200, 200});
  EXPECT_EQ(mask.at(0, 0), 255);
  EXPECT_EQ(mask.at(1, 0), 255);
}

TEST(MinMaxNormalize, StretchesToFullRange) {
  pi::ImageU8 im(3, 1, 1);
  im.at(0, 0) = 50;
  im.at(1, 0) = 100;
  im.at(2, 0) = 150;
  const auto out = pi::minmax_normalize(im, 0, 255);
  EXPECT_EQ(out.at(0, 0), 0);
  EXPECT_NEAR(int(out.at(1, 0)), 128, 1);
  EXPECT_EQ(out.at(2, 0), 255);
}

TEST(MinMaxNormalize, ConstantImageMapsToLo) {
  pi::ImageU8 im(4, 4, 1, 88);
  const auto out = pi::minmax_normalize(im, 10, 250);
  for (const auto v : out) EXPECT_EQ(v, 10);
}

TEST(MinMaxNormalize, CustomTargetRange) {
  pi::ImageU8 im(2, 1, 1);
  im.at(0, 0) = 0;
  im.at(1, 0) = 255;
  const auto out = pi::minmax_normalize(im, 100, 200);
  EXPECT_EQ(out.at(0, 0), 100);
  EXPECT_EQ(out.at(1, 0), 200);
}

TEST(MinMaxNormalize, RejectsInvertedRangeOrMultiChannel) {
  pi::ImageU8 im(2, 2, 1);
  EXPECT_THROW(pi::minmax_normalize(im, 200, 100), std::invalid_argument);
  pi::ImageU8 rgb(2, 2, 3);
  EXPECT_THROW(pi::minmax_normalize(rgb), std::invalid_argument);
}

TEST(CountNonzeroAndMean, BasicAccounting) {
  pi::ImageU8 im(4, 1, 1);
  im.at(0, 0) = 0;
  im.at(1, 0) = 10;
  im.at(2, 0) = 20;
  im.at(3, 0) = 30;
  EXPECT_EQ(pi::count_nonzero(im), 3u);
  EXPECT_DOUBLE_EQ(pi::mean(im), 15.0);
}

TEST(Blend, AlphaWeights) {
  pi::ImageU8 a(1, 1, 1, 200), b(1, 1, 1, 100);
  EXPECT_EQ(pi::blend(a, b, 1.0f).at(0, 0), 200);
  EXPECT_EQ(pi::blend(a, b, 0.0f).at(0, 0), 100);
  EXPECT_EQ(pi::blend(a, b, 0.5f).at(0, 0), 150);
}

TEST(Crop, ExtractsExactRectangle) {
  auto im = random_image(10, 8, 3, 5);
  const auto sub = pi::crop(im, 2, 3, 4, 5);
  EXPECT_EQ(sub.width(), 4);
  EXPECT_EQ(sub.height(), 5);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 4; ++x) {
      for (int c = 0; c < 3; ++c) {
        EXPECT_EQ(sub.at(x, y, c), im.at(x + 2, y + 3, c));
      }
    }
  }
}

TEST(Crop, RejectsOutOfBounds) {
  pi::ImageU8 im(10, 10, 1);
  EXPECT_THROW(pi::crop(im, 8, 8, 4, 4), std::invalid_argument);
  EXPECT_THROW(pi::crop(im, -1, 0, 2, 2), std::invalid_argument);
  EXPECT_THROW(pi::crop(im, 0, 0, 0, 2), std::invalid_argument);
}

TEST(ResizeNearest, UpscaleDoublesPixels) {
  pi::ImageU8 im(2, 2, 1);
  im.at(0, 0) = 1;
  im.at(1, 0) = 2;
  im.at(0, 1) = 3;
  im.at(1, 1) = 4;
  const auto big = pi::resize_nearest(im, 4, 4);
  EXPECT_EQ(big.at(0, 0), 1);
  EXPECT_EQ(big.at(1, 1), 1);
  EXPECT_EQ(big.at(3, 3), 4);
  EXPECT_EQ(big.at(2, 0), 2);
}

TEST(ResizeNearest, IdentityWhenSameSize) {
  const auto im = random_image(7, 5, 3, 6);
  EXPECT_EQ(pi::resize_nearest(im, 7, 5), im);
}

TEST(FloatConversion, RoundTripsWithinOneCount) {
  const auto im = random_image(16, 16, 3, 7);
  const auto back = pi::to_u8(pi::to_float(im));
  for (std::size_t i = 0; i < im.size(); ++i) {
    EXPECT_NEAR(int(back.data()[i]), int(im.data()[i]), 1);
  }
}
