// Unit tests for polarice::util — RNG, timers, resource timeline, table
// printer, and CLI argument parsing.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/args.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/virtual_clock.h"

namespace pu = polarice::util;

TEST(Rng, SameSeedSameStream) {
  pu::Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  pu::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  pu::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  pu::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  pu::Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  pu::Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequencyMatchesProbability) {
  pu::Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / double(n), 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  pu::Rng parent(23);
  pu::Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent() == child();
  EXPECT_LT(equal, 3);
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  const auto original = v;
  pu::Rng rng(3);
  std::shuffle(v.begin(), v.end(), rng);
  EXPECT_NE(v, original);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(WallTimer, MeasuresNonNegativeMonotonicTime) {
  pu::WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(ResourceTimeline, SerializesBookings) {
  pu::ResourceTimeline r;
  EXPECT_DOUBLE_EQ(r.book(0.0, 2.0), 2.0);
  // Arrives at t=1 but the resource is busy until t=2.
  EXPECT_DOUBLE_EQ(r.book(1.0, 3.0), 5.0);
  // Arrives after the resource is free.
  EXPECT_DOUBLE_EQ(r.book(10.0, 1.0), 11.0);
  EXPECT_DOUBLE_EQ(r.free_at(), 11.0);
}

TEST(ResourceTimeline, ResetClearsTimeline) {
  pu::ResourceTimeline r;
  r.book(0.0, 5.0);
  r.reset();
  EXPECT_DOUBLE_EQ(r.free_at(), 0.0);
}

TEST(Table, FormatsAlignedColumns) {
  pu::Table t({"A", "Long header"});
  t.add_row({"12345", "x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("A    "), std::string::npos);
  EXPECT_NE(s.find("Long header"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  pu::Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(pu::Table({}), std::invalid_argument);
}

TEST(Table, NumFormatsDecimals) {
  EXPECT_EQ(pu::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(pu::Table::num(2.0, 0), "2");
}

TEST(Args, ParsesKeyEqualsValue) {
  const char* argv[] = {"prog", "--epochs=50", "--lr=0.001"};
  pu::Args args(3, argv);
  EXPECT_EQ(args.get_int("epochs", 0), 50);
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.0), 0.001);
}

TEST(Args, ParsesKeySpaceValue) {
  const char* argv[] = {"prog", "--name", "unet"};
  pu::Args args(3, argv);
  EXPECT_EQ(args.get_string("name", ""), "unet");
}

TEST(Args, BooleanFlagForms) {
  const char* argv[] = {"prog", "--verbose", "--filter=false"};
  pu::Args args(3, argv);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("filter", true));
  EXPECT_TRUE(args.get_bool("absent", true));
}

TEST(Args, PositionalArguments) {
  const char* argv[] = {"prog", "input.ppm", "--k=1", "output.ppm"};
  pu::Args args(4, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.ppm");
  EXPECT_EQ(args.positional()[1], "output.ppm");
}

TEST(Args, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  pu::Args args(1, argv);
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_EQ(args.get_string("s", "dflt"), "dflt");
  EXPECT_FALSE(args.has("n"));
}

TEST(Args, RejectsBadBoolean) {
  const char* argv[] = {"prog", "--flag=maybe"};
  pu::Args args(2, argv);
  EXPECT_THROW(args.get_bool("flag", false), std::invalid_argument);
}
