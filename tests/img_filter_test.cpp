// Smoothing filter tests: box, Gaussian, median.

#include <gtest/gtest.h>

#include <numeric>

#include "img/filter.h"
#include "util/rng.h"

namespace pi = polarice::img;

TEST(GaussianKernel, NormalizedAndSymmetric) {
  for (const int k : {1, 3, 5, 11, 31}) {
    const auto kernel = pi::gaussian_kernel_1d(k, 0.0);
    ASSERT_EQ(kernel.size(), static_cast<std::size_t>(k));
    const float sum = std::accumulate(kernel.begin(), kernel.end(), 0.0f);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
    for (int i = 0; i < k / 2; ++i) {
      EXPECT_FLOAT_EQ(kernel[i], kernel[k - 1 - i]);
    }
  }
}

TEST(GaussianKernel, PeakAtCenter) {
  const auto kernel = pi::gaussian_kernel_1d(7, 1.5);
  for (std::size_t i = 0; i < kernel.size(); ++i) {
    EXPECT_LE(kernel[i], kernel[3]);
  }
}

TEST(GaussianKernel, RejectsEvenOrNonPositive) {
  EXPECT_THROW(pi::gaussian_kernel_1d(4, 1.0), std::invalid_argument);
  EXPECT_THROW(pi::gaussian_kernel_1d(0, 1.0), std::invalid_argument);
  EXPECT_THROW(pi::gaussian_kernel_1d(-3, 1.0), std::invalid_argument);
}

TEST(GaussianBlur, PreservesConstantImage) {
  pi::ImageU8 im(16, 16, 3, 137);
  const auto out = pi::gaussian_blur(im, 5);
  for (const auto v : out) EXPECT_EQ(v, 137);
}

TEST(GaussianBlur, SmoothsAnImpulse) {
  pi::ImageU8 im(15, 15, 1, 0);
  im.at(7, 7) = 255;
  const auto out = pi::gaussian_blur(im, 5, 1.0);
  EXPECT_LT(out.at(7, 7), 255);            // peak reduced
  EXPECT_GT(out.at(7, 7), out.at(6, 7));   // still the maximum
  EXPECT_GT(out.at(6, 7), out.at(5, 7));   // monotone falloff
  EXPECT_EQ(out.at(0, 0), 0);              // energy stays local
}

TEST(GaussianBlur, FloatVariantPreservesMeanApproximately) {
  polarice::util::Rng rng(3);
  pi::ImageF32 im(32, 32, 1);
  double sum = 0.0;
  for (auto& v : im) {
    v = rng.uniform_f();
    sum += v;
  }
  const auto out = pi::gaussian_blur(im, 7, 2.0);
  double out_sum = 0.0;
  for (const auto v : out) out_sum += v;
  EXPECT_NEAR(out_sum / im.size(), sum / im.size(), 0.02);
}

TEST(BoxFilter, AveragesNeighbourhood) {
  pi::ImageU8 im(3, 3, 1, 0);
  im.at(1, 1) = 90;
  const auto out = pi::box_filter(im, 3);
  EXPECT_EQ(out.at(1, 1), 10);  // 90 / 9
}

TEST(BoxFilter, Ksize1IsIdentity) {
  polarice::util::Rng rng(4);
  pi::ImageU8 im(9, 7, 3);
  for (auto& v : im) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const auto out = pi::box_filter(im, 1);
  EXPECT_EQ(out, im);
}

TEST(MedianFilter, RemovesSaltAndPepperNoise) {
  pi::ImageU8 im(32, 32, 1, 100);
  polarice::util::Rng rng(8);
  for (int i = 0; i < 40; ++i) {
    const int x = static_cast<int>(rng.uniform_int(0, 31));
    const int y = static_cast<int>(rng.uniform_int(0, 31));
    im.at(x, y) = rng.bernoulli(0.5) ? 0 : 255;
  }
  const auto out = pi::median_filter(im, 3);
  int survivors = 0;
  for (const auto v : out) survivors += (v == 0 || v == 255);
  EXPECT_LT(survivors, 5);  // isolated specks are gone
}

TEST(MedianFilter, ConstantImageUnchanged) {
  pi::ImageU8 im(8, 8, 1, 42);
  EXPECT_EQ(pi::median_filter(im, 5), im);
}

TEST(MedianFilter, PreservesStepEdgeLocation) {
  pi::ImageU8 im(16, 4, 1);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 16; ++x) im.at(x, y) = x < 8 ? 10 : 240;
  }
  const auto out = pi::median_filter(im, 3);
  EXPECT_EQ(out.at(3, 1), 10);
  EXPECT_EQ(out.at(12, 1), 240);
}

TEST(MedianFilter, RejectsMultiChannelAndEvenKsize) {
  pi::ImageU8 rgb(4, 4, 3);
  EXPECT_THROW(pi::median_filter(rgb, 3), std::invalid_argument);
  pi::ImageU8 gray(4, 4, 1);
  EXPECT_THROW(pi::median_filter(gray, 2), std::invalid_argument);
}

// Property: median equals brute-force window sort for random images.
class MedianSweep : public ::testing::TestWithParam<int> {};

TEST_P(MedianSweep, MatchesBruteForce) {
  const int ksize = GetParam();
  polarice::util::Rng rng(1000 + ksize);
  pi::ImageU8 im(21, 13, 1);
  for (auto& v : im) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const auto fast = pi::median_filter(im, ksize);
  const int radius = ksize / 2;
  for (int y = 0; y < im.height(); ++y) {
    for (int x = 0; x < im.width(); ++x) {
      std::vector<std::uint8_t> window;
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          window.push_back(im.at_clamped(x + dx, y + dy));
        }
      }
      std::nth_element(window.begin(), window.begin() + window.size() / 2,
                       window.end());
      ASSERT_EQ(fast.at(x, y), window[window.size() / 2])
          << "at (" << x << "," << y << ") ksize " << ksize;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ksizes, MedianSweep, ::testing::Values(1, 3, 5, 7));
