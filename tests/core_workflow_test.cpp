// End-to-end workflow tests: dataset builder, the Fig 2 training workflow
// (Table IV/V orderings at reduced scale), the Fig 9 inference workflow,
// and the AutoLabelStage pool/spark execution policies (the paper's
// multiprocessing and PySpark deployments).

#include <gtest/gtest.h>

#include "core/stages.h"
#include "par/context.h"
#include "core/workflow.h"
#include "metrics/metrics.h"
#include "par/thread_pool.h"
#include "s2/scene.h"

namespace pc = polarice::core;
namespace ps = polarice::s2;
namespace pn = polarice::nn;
namespace pi = polarice::img;

namespace {
ps::AcquisitionConfig small_acquisition() {
  ps::AcquisitionConfig cfg;
  cfg.num_scenes = 4;
  cfg.scene_size = 256;  // filter quality needs scene-level context
  cfg.tile_size = 64;
  cfg.cloudy_scene_fraction = 0.5;
  cfg.seed = 300;
  return cfg;
}

pc::WorkflowConfig small_workflow() {
  pc::WorkflowConfig cfg;
  cfg.acquisition = small_acquisition();
  cfg.model.depth = 2;
  cfg.model.base_channels = 6;
  cfg.model.use_dropout = false;
  cfg.model.seed = 12;
  cfg.training.epochs = 10;
  cfg.training.batch_size = 4;
  cfg.training.learning_rate = 2e-3f;
  return cfg;
}
}  // namespace

TEST(DatasetBuilder, TileToSampleLayout) {
  pi::ImageU8 rgb(4, 2, 3);
  rgb.at(3, 1, 0) = 255;
  rgb.at(3, 1, 2) = 51;
  pi::ImageU8 labels(4, 2, 1);
  labels.at(3, 1) = 2;
  const auto sample = pc::tile_to_sample(rgb, labels);
  EXPECT_EQ(sample.image.dim(0), 3);
  EXPECT_EQ(sample.image.dim(1), 2);  // H
  EXPECT_EQ(sample.image.dim(2), 4);  // W
  // channel 0, y 1, x 3:
  EXPECT_FLOAT_EQ(sample.image[(0 * 2 + 1) * 4 + 3], 1.0f);
  EXPECT_FLOAT_EQ(sample.image[(2 * 2 + 1) * 4 + 3], 0.2f);
  EXPECT_EQ(sample.labels[1 * 4 + 3], 2);
  pi::ImageU8 bad(3, 2, 1);
  EXPECT_THROW(pc::tile_to_sample(rgb, bad), std::invalid_argument);
}

TEST(DatasetBuilder, LabelSourcesProduceDifferentSupervision) {
  const auto tiles = ps::acquire_tiles(small_acquisition());
  polarice::par::ThreadPool pool(4);
  const polarice::par::ExecutionContext ctx(&pool);

  pc::DatasetBuildConfig truth_cfg;
  truth_cfg.labels = pc::LabelSource::kGroundTruth;
  truth_cfg.images = pc::ImageVariant::kOriginal;
  const auto truth = pc::build_dataset(tiles, truth_cfg, ctx);

  pc::DatasetBuildConfig manual_cfg = truth_cfg;
  manual_cfg.labels = pc::LabelSource::kManual;
  const auto manual = pc::build_dataset(tiles, manual_cfg, ctx);

  pc::DatasetBuildConfig auto_cfg = truth_cfg;
  auto_cfg.labels = pc::LabelSource::kAuto;
  const auto autod = pc::build_dataset(tiles, auto_cfg, ctx);

  ASSERT_EQ(truth.size(), tiles.size());
  ASSERT_EQ(manual.size(), tiles.size());
  ASSERT_EQ(autod.size(), tiles.size());

  // Manual and auto labels each agree strongly (but not perfectly) with
  // ground truth.
  double manual_agree = 0, auto_agree = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    manual_agree +=
        polarice::metrics::pixel_accuracy(truth[i].labels, manual[i].labels);
    auto_agree +=
        polarice::metrics::pixel_accuracy(truth[i].labels, autod[i].labels);
  }
  manual_agree /= static_cast<double>(truth.size());
  auto_agree /= static_cast<double>(truth.size());
  EXPECT_GT(manual_agree, 0.95);
  EXPECT_LT(manual_agree, 1.0);
  EXPECT_GT(auto_agree, 0.90);
}

TEST(AutoLabelPoolPolicy, ResultsIndependentOfWorkerCount) {
  const auto tiles = ps::acquire_tiles(small_acquisition());
  std::vector<pi::ImageU8> images;
  for (const auto& t : tiles) images.push_back(t.rgb);

  pc::AutoLabelConfig cfg;
  cfg.apply_filter = true;
  const auto label_with = [&](std::size_t workers,
                              pc::AutoLabelBatchStats* stats) {
    const pc::AutoLabelStage stage(cfg, pc::AutoLabelPolicy::pool(workers));
    return stage.label_batch(images, polarice::par::ExecutionContext{}, stats);
  };
  pc::AutoLabelBatchStats stats1, stats4;
  const auto seq = label_with(1, &stats1);
  const auto par = label_with(4, &stats4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].labels, par[i].labels) << "tile " << i;
  }
  EXPECT_EQ(stats1.items, images.size());
  EXPECT_GT(stats1.seconds, 0.0);
  EXPECT_GT(stats4.items, 0u);
  EXPECT_THROW(label_with(0, nullptr), std::invalid_argument);
}

TEST(AutoLabelSparkPolicy, MatchesDirectLabelingInInputOrder) {
  const auto tiles = ps::acquire_tiles(small_acquisition());
  std::vector<pi::ImageU8> images;
  for (const auto& t : tiles) images.push_back(t.rgb);

  polarice::mr::ClusterConfig cluster;
  cluster.executors = 2;
  cluster.cores_per_executor = 2;
  pc::AutoLabelConfig cfg;
  cfg.apply_filter = false;  // keep the UDF cheap for the test
  const pc::AutoLabelStage stage(cfg, pc::AutoLabelPolicy::spark(cluster));
  pc::AutoLabelBatchStats stats;
  const auto results =
      stage.label_batch(images, polarice::par::ExecutionContext{}, &stats);

  // label_batch returns input order regardless of the round-robin
  // partitioning; every plane must match direct labeling of its tile.
  ASSERT_EQ(results.size(), images.size());
  const pc::AutoLabeler direct(cfg);
  for (std::size_t i = 0; i < images.size(); ++i) {
    EXPECT_EQ(results[i].labels, direct.label(images[i]).labels)
        << "tile " << i;
  }
  ASSERT_TRUE(stats.spark.has_value());
  EXPECT_GT(stats.spark->partitions, 0);
  EXPECT_GT(stats.spark->simulated.reduce_s, 0.0);
}

TEST(TrainingWorkflow, ValidatesConfig) {
  auto cfg = small_workflow();
  cfg.train_fraction = 1.5;
  EXPECT_THROW(pc::TrainingWorkflow{cfg}, std::invalid_argument);
  cfg = small_workflow();
  cfg.model.depth = 7;  // 2^7 = 128 does not divide tile_size 64
  EXPECT_THROW(pc::TrainingWorkflow{cfg}, std::invalid_argument);
}

TEST(TrainingWorkflow, ReproducesPaperOrderingsAtSmallScale) {
  // The central result (Tables IV/V) at reduced scale:
  //  1. filtering helps both models on the overall test split;
  //  2. U-Net-Auto is competitive with U-Net-Man after filtering;
  //  3. both models do well on filtered imagery.
  polarice::par::ThreadPool pool(polarice::par::ThreadPool::hardware());
  pc::TrainingWorkflow workflow(small_workflow());
  const auto result = workflow.run(polarice::par::ExecutionContext(&pool));

  // Training happened and improved.
  ASSERT_FALSE(result.man_history.empty());
  EXPECT_LT(result.man_history.back().mean_loss,
            result.man_history.front().mean_loss);

  // (1) Filter improves accuracy on the test split.
  EXPECT_GT(result.man_filtered.accuracy, result.man_original.accuracy);
  EXPECT_GT(result.auto_filtered.accuracy, result.auto_original.accuracy);

  // (2) Auto within a few points of Man after filtering.
  EXPECT_NEAR(result.auto_filtered.accuracy, result.man_filtered.accuracy,
              0.08);

  // (3) Absolute quality sanity.
  EXPECT_GT(result.man_filtered.accuracy, 0.85);
  EXPECT_GT(result.auto_filtered.accuracy, 0.85);

  // Metrics are self-consistent.
  EXPECT_NEAR(result.man_filtered.accuracy,
              result.man_filtered.confusion.accuracy(), 1e-12);
  EXPECT_GT(result.man_filtered.f1, 0.5);

  // Table V bookkeeping: buckets partition the test split.
  EXPECT_GT(result.test_tiles_cloudy + result.test_tiles_clear, 0u);
}

TEST(InferenceWorkflow, ClassifiesSceneEndToEnd) {
  // Train a tiny model on clean data, then classify a clean scene — the
  // stitched output must match ground truth closely.
  auto acq = small_acquisition();
  acq.cloudy_scene_fraction = 0.0;
  const auto tiles = ps::acquire_tiles(acq);

  pc::DatasetBuildConfig build;
  build.labels = pc::LabelSource::kGroundTruth;
  build.images = pc::ImageVariant::kOriginal;
  polarice::par::ThreadPool pool(polarice::par::ThreadPool::hardware());
  const polarice::par::ExecutionContext ctx(&pool);
  const auto data = pc::build_dataset(tiles, build, ctx);

  pn::UNetConfig mc;
  mc.depth = 2;
  mc.base_channels = 6;
  mc.use_dropout = false;
  pn::UNet model(mc);
  model.set_pool(&pool);
  pn::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 4;
  tc.learning_rate = 2e-3f;
  pn::Trainer(model, tc).fit(data);

  ps::SceneConfig sc;
  sc.width = sc.height = 128;
  sc.seed = 999;
  sc.cloudy = false;
  const auto scene = ps::SceneGenerator(sc).generate();

  pc::InferenceWorkflow inference(model, pc::CloudFilterConfig{}, 64);
  const auto prediction = inference.classify_scene(scene.rgb, ctx);
  ASSERT_TRUE(prediction.same_shape(scene.labels));
  std::vector<int> truth, pred;
  for (const auto v : scene.labels) truth.push_back(v);
  for (const auto v : prediction) pred.push_back(v);
  EXPECT_GT(polarice::metrics::pixel_accuracy(truth, pred), 0.85);
}

TEST(InferenceWorkflow, GuardsGeometry) {
  pn::UNetConfig mc;
  mc.depth = 2;
  mc.base_channels = 4;
  pn::UNet model(mc);
  EXPECT_THROW(pc::InferenceWorkflow(model, {}, 30),  // 30 % 4 != 0
               std::invalid_argument);
  EXPECT_THROW(pc::InferenceWorkflow(model, {}, 64, /*batch_tiles=*/0),
               std::invalid_argument);
  pc::InferenceWorkflow inference(model, {}, 64);
  pi::ImageU8 odd_scene(100, 64, 3);
  EXPECT_THROW(inference.classify_scene(odd_scene), std::invalid_argument);
  pi::ImageU8 gray(64, 64, 1);
  EXPECT_THROW(inference.classify_scene(gray), std::invalid_argument);
}

TEST(InferenceWorkflow, BatchTilesIsConfigurableAndResultInvariant) {
  pn::UNetConfig mc;
  mc.depth = 2;
  mc.base_channels = 6;
  mc.use_dropout = false;
  mc.seed = 31;
  pn::UNet model(mc);

  ps::SceneConfig sc;
  sc.width = sc.height = 128;
  sc.seed = 7;
  sc.cloudy = true;
  const auto scene = ps::SceneGenerator(sc).generate();

  pc::InferenceWorkflow one(model, {}, 64, /*batch_tiles=*/1);
  pc::InferenceWorkflow three(model, {}, 64, /*batch_tiles=*/3);
  pc::InferenceWorkflow deflt(model, {}, 64);
  EXPECT_EQ(one.batch_tiles(), 1);
  EXPECT_EQ(three.batch_tiles(), 3);
  EXPECT_EQ(deflt.batch_tiles(), 8);
  const auto a = one.classify_scene(scene.rgb);
  const auto b = three.classify_scene(scene.rgb);
  const auto c = deflt.classify_scene(scene.rgb);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}
