// net/wire.h — frame format and domain serializers.
//
// Round trips must be exact (u8 planes byte-identical, f32 planes
// bit-identical), and every malformed byte stream must surface as
// WireError/WireChecksumError — the fuzz loops flip / truncate every
// position of a real frame and require a typed error or a correct decode
// (a flip confined to pixel bytes that still checksums is impossible;
// flips the checksum catches are the point), never UB or a wrong decode.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/serve/scene_server.h"
#include "core/serve/shard/protocol.h"
#include "img/image.h"
#include "net/wire.h"

namespace {

using namespace polarice;
using namespace polarice::net;

img::ImageU8 pattern_scene(int width, int height, int channels) {
  img::ImageU8 scene(width, height, channels);
  std::uint32_t state = 77u;
  for (std::size_t i = 0; i < scene.size(); ++i) {
    state = state * 1664525u + 1013904223u;
    scene.data()[i] = static_cast<std::uint8_t>(state >> 24);
  }
  return scene;
}

TEST(NetWire, ImageU8RoundTripsExactly) {
  // Square, ragged (non-multiple of any tile), and single-row scenes.
  for (const auto [w, h, c] : {std::tuple{16, 16, 3}, std::tuple{33, 17, 3},
                               std::tuple{1, 1, 1}, std::tuple{128, 1, 2}}) {
    const auto scene = pattern_scene(w, h, c);
    WireWriter writer;
    put_image(writer, scene);
    WireReader reader(writer.bytes());
    const auto back = get_image_u8(reader);
    reader.expect_end();
    EXPECT_EQ(back, scene);
  }
}

TEST(NetWire, EmptyImageIsLegal) {
  WireWriter writer;
  put_image(writer, img::ImageU8{});
  WireReader reader(writer.bytes());
  const auto back = get_image_u8(reader);
  reader.expect_end();
  EXPECT_TRUE(back.empty());
  EXPECT_EQ(back.width(), 0);
}

TEST(NetWire, ImageF32RoundTripsBitExactly) {
  img::ImageF32 plane(7, 5, 2);
  float value = -3.75f;
  for (std::size_t i = 0; i < plane.size(); ++i) {
    plane.data()[i] = value;
    value = value * -1.0009765625f + 0.125f;  // exact fp steps, sign flips
  }
  // Edge payloads that break naive float round trips.
  plane.data()[0] = 0.0f;
  plane.data()[1] = -0.0f;
  plane.data()[2] = std::numeric_limits<float>::infinity();
  plane.data()[3] = std::numeric_limits<float>::denorm_min();
  plane.data()[4] = std::numeric_limits<float>::quiet_NaN();

  WireWriter writer;
  put_image(writer, plane);
  WireReader reader(writer.bytes());
  const auto back = get_image_f32(reader);
  reader.expect_end();
  ASSERT_TRUE(back.same_shape(plane));
  for (std::size_t i = 0; i < plane.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(back.data()[i]),
              std::bit_cast<std::uint32_t>(plane.data()[i]))
        << i;
  }
}

TEST(NetWire, GeometryAndOptionsRoundTrip) {
  SceneGeometry geometry{640, 480, 3, 64, 10, 8};
  WireWriter writer;
  put_geometry(writer, geometry);
  WireReader reader(writer.bytes());
  EXPECT_EQ(get_geometry(reader), geometry);
  reader.expect_end();

  core::serve::SubmitOptions options;
  options.priority = core::serve::Priority::kInteractive;
  options.deadline = std::chrono::milliseconds(750);
  options.max_retries = 5;
  WireWriter writer2;
  put_submit_options(writer2, options);
  WireReader reader2(writer2.bytes());
  const auto back = get_submit_options(reader2);
  reader2.expect_end();
  EXPECT_EQ(back.priority, options.priority);
  ASSERT_TRUE(back.deadline.has_value());
  EXPECT_EQ(*back.deadline, *options.deadline);
  EXPECT_EQ(back.max_retries, 5);

  core::serve::SubmitOptions no_deadline;
  WireWriter writer3;
  put_submit_options(writer3, no_deadline);
  WireReader reader3(writer3.bytes());
  EXPECT_FALSE(get_submit_options(reader3).deadline.has_value());
}

TEST(NetWire, StatsRoundTrip) {
  core::serve::SceneServerStats stats;
  stats.submitted = 101;
  stats.completed = 90;
  stats.shed = 4;
  stats.rejected = 7;
  stats.cache_hits = 33;
  stats.cache_warmed = 12;
  stats.warm_hits = 11;
  stats.cache_persisted = 29;
  stats.cache_corrupt = 2;
  stats.cache_stale = 1;
  stats.degraded = 5;
  stats.brownouts = 3;
  stats.brownout_active = true;
  stats.session.scenes = 90;
  stats.session.tiles = 1440;
  stats.session.busy_seconds = 1.25;
  stats.session.peak_leases = 3;

  WireWriter writer;
  put_stats(writer, stats);
  WireReader reader(writer.bytes());
  const auto back = get_stats(reader);
  reader.expect_end();
  EXPECT_EQ(back.submitted, 101u);
  EXPECT_EQ(back.completed, 90u);
  EXPECT_EQ(back.shed, 4u);
  EXPECT_EQ(back.rejected, 7u);
  EXPECT_EQ(back.cache_hits, 33u);
  EXPECT_EQ(back.cache_warmed, 12u);
  EXPECT_EQ(back.warm_hits, 11u);
  EXPECT_EQ(back.cache_persisted, 29u);
  EXPECT_EQ(back.cache_corrupt, 2u);
  EXPECT_EQ(back.cache_stale, 1u);
  EXPECT_EQ(back.degraded, 5u);
  EXPECT_EQ(back.brownouts, 3u);
  EXPECT_TRUE(back.brownout_active);
  EXPECT_EQ(back.session.scenes, 90u);
  EXPECT_EQ(back.session.tiles, 1440u);
  EXPECT_DOUBLE_EQ(back.session.busy_seconds, 1.25);
  EXPECT_EQ(back.session.peak_leases, 3u);
}

// The v2 wire additions: SubmitResponse's degraded flag round-trips, and a
// decoder rejects out-of-range flag bytes instead of inventing state.
TEST(NetWire, SubmitResponseDegradedFlagRoundTrip) {
  namespace shard = polarice::core::serve::shard;
  shard::SubmitResponse response;
  response.request_id = 77;
  response.outcome = shard::Outcome::kOk;
  response.plane = pattern_scene(6, 4, 1);
  response.degraded = true;

  const auto back = shard::decode_submit_response(encode(response));
  EXPECT_EQ(back.request_id, 77u);
  EXPECT_EQ(back.outcome, shard::Outcome::kOk);
  EXPECT_TRUE(back.degraded);
  EXPECT_EQ(back.plane, response.plane);

  response.degraded = false;
  EXPECT_FALSE(shard::decode_submit_response(encode(response)).degraded);
}

TEST(NetWire, FrameRoundTrip) {
  const auto scene = pattern_scene(9, 7, 3);
  WireWriter writer;
  put_image(writer, scene);
  const auto bytes = encode_frame(MsgType::kSubmitRequest, writer.bytes());
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + writer.bytes().size());

  const auto frame = decode_frame(bytes);
  EXPECT_EQ(frame.type, MsgType::kSubmitRequest);
  WireReader reader(frame.payload);
  EXPECT_EQ(get_image_u8(reader), scene);
}

TEST(NetWire, ReaderUnderflowThrowsNotUB) {
  WireWriter writer;
  writer.put_u32(0xDEADBEEFu);
  WireReader reader(writer.bytes());
  (void)reader.get_u16();
  EXPECT_THROW((void)reader.get_u32(), WireError);  // 2 bytes left, need 4
  WireReader reader2(writer.bytes());
  (void)reader2.get_u32();
  EXPECT_THROW(reader2.get_bytes(nullptr, 1), WireError);
  EXPECT_THROW((void)WireReader(writer.bytes()).get_string(), WireError);
}

TEST(NetWire, TrailingGarbageIsCorruption) {
  WireWriter writer;
  writer.put_u8(1);
  writer.put_u8(2);
  WireReader reader(writer.bytes());
  (void)reader.get_u8();
  EXPECT_THROW(reader.expect_end(), WireError);
}

// Fuzz 1: every single-byte flip of a real frame must either throw a typed
// wire error or (for flips the checksum cannot see — there are none, since
// the checksum covers the payload and the header is validated field by
// field) decode to the original. In practice: header flips fail header
// validation or checksum pairing, payload flips fail the checksum.
TEST(NetWire, ByteFlipFuzzNeverDecodesCorruption) {
  const auto scene = pattern_scene(6, 5, 3);
  WireWriter writer;
  put_image(writer, scene);
  const auto pristine = encode_frame(MsgType::kSubmitRequest, writer.bytes());

  std::size_t threw = 0;
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      auto corrupted = pristine;
      corrupted[i] ^= flip;
      try {
        const auto frame = decode_frame(corrupted);
        // A decode that survives must be byte-identical payload (possible
        // only if the flip landed in the type field AND checksum agreed —
        // type is not checksummed, so tolerate a changed type with the
        // exact original payload).
        EXPECT_EQ(frame.payload, writer.bytes()) << "flip at " << i;
      } catch (const WireError&) {
        ++threw;  // the expected outcome
      }
    }
  }
  // The overwhelming majority of flips must be caught (payload flips are
  // all caught by the checksum; length/magic/version flips by the header).
  EXPECT_GT(threw, 2 * pristine.size() - 8);
}

// Fuzz 2: every truncated prefix must throw, never read past the end.
TEST(NetWire, TruncationFuzzAlwaysThrows) {
  const auto scene = pattern_scene(4, 4, 3);
  WireWriter writer;
  put_image(writer, scene);
  const auto pristine = encode_frame(MsgType::kSubmitRequest, writer.bytes());

  for (std::size_t n = 0; n < pristine.size(); ++n) {
    EXPECT_THROW((void)decode_frame(pristine.data(), n), WireError) << n;
  }
}

// Fuzz 3: truncated or bit-flipped *payloads* handed to the domain
// decoders (post-checksum path) still throw typed errors — oversized
// counts must not drive allocations or out-of-bounds reads.
TEST(NetWire, ImageDecoderRejectsLyingGeometry) {
  const auto scene = pattern_scene(8, 3, 1);
  WireWriter writer;
  put_image(writer, scene);
  auto payload = writer.take();

  // Truncate the pixel run.
  for (const std::size_t keep : {payload.size() - 1, payload.size() / 2,
                                 std::size_t{13}, std::size_t{1}}) {
    WireReader reader(payload.data(), keep);
    EXPECT_THROW((void)get_image_u8(reader), WireError) << keep;
  }

  // Inflate the width field (little-endian i32 at offset 0) so the claimed
  // pixel count exceeds the remaining bytes.
  auto inflated = payload;
  inflated[2] = 0x7F;
  WireReader reader(inflated);
  EXPECT_THROW((void)get_image_u8(reader), WireError);

  // Negative dimensions are rejected before any allocation.
  auto negative = payload;
  negative[3] = 0x80;
  WireReader reader2(negative);
  EXPECT_THROW((void)get_image_u8(reader2), WireError);
}

// Regression: dimensions whose element-count product wraps mod 2^64 must
// be rejected as a typed WireError *before* the byte-count check — a
// wrapped product (e.g. u8 2^22 x 2^22 x 2^20 = 2^64 == 0) would sail
// past the remaining() comparison with zero pixel bytes behind it and
// build an Image whose geometry lies about its storage (OOB UB at the
// first tiling downstream).
TEST(NetWire, ImageDecoderRejectsOverflowingDimensions) {
  // u8: product is exactly 2^64 -> wraps to 0 bytes claimed.
  {
    WireWriter writer;
    writer.put_i32(1 << 22);
    writer.put_i32(1 << 22);
    writer.put_i32(1 << 20);
    WireReader reader(writer.bytes());
    EXPECT_THROW((void)get_image_u8(reader), WireError);
  }
  // f32: 2^30 * 2^30 * 4 elements, * sizeof(float) wraps to 0 as well —
  // must be a WireError, not a std::length_error escaping the decoder.
  {
    WireWriter writer;
    writer.put_i32(1 << 30);
    writer.put_i32(1 << 30);
    writer.put_i32(4);
    WireReader reader(writer.bytes());
    EXPECT_THROW((void)get_image_f32(reader), WireError);
  }
  // Non-wrapping but over the payload cap: same clean rejection.
  {
    WireWriter writer;
    writer.put_i32(std::numeric_limits<std::int32_t>::max());
    writer.put_i32(1);
    writer.put_i32(1);
    WireReader reader(writer.bytes());
    EXPECT_THROW((void)get_image_u8(reader), WireError);
  }
}

TEST(NetWire, HeaderRejectsBadMagicVersionAndGiantLength) {
  const auto frame = encode_frame(MsgType::kHeartbeatRequest, {});
  auto bad_magic = frame;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW((void)decode_header(bad_magic.data(), kFrameHeaderBytes),
               WireError);

  auto bad_version = frame;
  bad_version[4] ^= 0xFF;
  EXPECT_THROW((void)decode_header(bad_version.data(), kFrameHeaderBytes),
               WireError);

  auto giant = frame;
  giant[15] = 0x7F;  // payload_len high byte -> way past kMaxPayload
  EXPECT_THROW((void)decode_header(giant.data(), kFrameHeaderBytes),
               WireError);
}

TEST(NetWire, ChecksumMismatchIsTyped) {
  WireWriter writer;
  writer.put_u64(42);
  auto bytes = encode_frame(MsgType::kSubmitResponse, writer.bytes());
  bytes[kFrameHeaderBytes] ^= 0x01;  // first payload byte
  EXPECT_THROW((void)decode_frame(bytes), WireChecksumError);
}

// ---- v3 wire additions: tracing and the metrics scrape path ----

TEST(NetWire, SubmitOptionsTraceIdRoundTrip) {
  core::serve::SubmitOptions options;
  options.trace_id = 0x0123456789ABCDEFull;
  WireWriter writer;
  put_submit_options(writer, options);
  WireReader reader(writer.bytes());
  EXPECT_EQ(get_submit_options(reader).trace_id, 0x0123456789ABCDEFull);
  reader.expect_end();

  // 0 is the "unassigned, mint me one" sentinel and must survive as-is.
  core::serve::SubmitOptions unassigned;
  WireWriter writer2;
  put_submit_options(writer2, unassigned);
  WireReader reader2(writer2.bytes());
  EXPECT_EQ(get_submit_options(reader2).trace_id, 0u);
}

TEST(NetWire, HeartbeatResponseUptimeAndBrownoutRoundTrip) {
  namespace shard = polarice::core::serve::shard;
  shard::HeartbeatResponse response;
  response.queue_depth = 9;
  response.accepting = true;
  response.uptime_seconds = 123.5;
  response.brownout_active = true;
  response.stats.completed = 40;

  const auto back = shard::decode_heartbeat_response(encode(response));
  EXPECT_EQ(back.queue_depth, 9u);
  EXPECT_TRUE(back.accepting);
  EXPECT_DOUBLE_EQ(back.uptime_seconds, 123.5);
  EXPECT_TRUE(back.brownout_active);
  EXPECT_EQ(back.stats.completed, 40u);

  response.brownout_active = false;
  response.uptime_seconds = 0.0;  // a just-born worker is legal
  const auto young = shard::decode_heartbeat_response(encode(response));
  EXPECT_FALSE(young.brownout_active);
  EXPECT_DOUBLE_EQ(young.uptime_seconds, 0.0);
}

TEST(NetWire, HeartbeatResponseRejectsNegativeOrNaNUptime) {
  namespace shard = polarice::core::serve::shard;
  shard::HeartbeatResponse response;
  response.uptime_seconds = -1.0;
  EXPECT_THROW((void)shard::decode_heartbeat_response(encode(response)),
               WireError);
  response.uptime_seconds = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)shard::decode_heartbeat_response(encode(response)),
               WireError);
}

TEST(NetWire, MetricsResponseRoundTrip) {
  namespace shard = polarice::core::serve::shard;
  shard::MetricsResponse response;
  response.uptime_seconds = 42.25;
  response.text =
      "serve_completed_total 7\nserve_e2e_seconds_bucket{le=\"+Inf\"} 7\n";

  const auto back = shard::decode_metrics_response(encode(response));
  EXPECT_DOUBLE_EQ(back.uptime_seconds, 42.25);
  EXPECT_EQ(back.text, response.text);

  response.uptime_seconds = -0.5;
  EXPECT_THROW((void)shard::decode_metrics_response(encode(response)),
               WireError);
}

// Explicit cross-version guard beyond the generic bit-flip test: a frame
// stamped with the previous wire version (v2, which predates trace ids and
// the metrics vocabulary) must be rejected at the header, not misdecoded.
TEST(NetWire, PreviousWireVersionIsRejected) {
  auto frame = encode_frame(MsgType::kHeartbeatRequest, {});
  frame[4] = kWireVersion - 1;  // version u16 LE at offset 4
  frame[5] = 0;
  EXPECT_THROW((void)decode_header(frame.data(), kFrameHeaderBytes),
               WireError);
  EXPECT_THROW((void)decode_frame(frame), WireError);
}

}  // namespace
