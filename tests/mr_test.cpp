// Map-reduce substrate tests: Spark semantics (lazy map, eager collect),
// result correctness independent of cluster shape, and the calibrated
// Dataproc simulation's Table II invariants.

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "mr/rdd.h"
#include "mr/spark_context.h"

namespace pm = polarice::mr;

TEST(SparkContext, ParallelizeSplitsAllItems) {
  pm::ClusterConfig cfg;
  cfg.executors = 2;
  cfg.cores_per_executor = 2;
  pm::SparkContext ctx(cfg);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  auto rdd = ctx.parallelize(items, 7);
  EXPECT_EQ(rdd.partitions(), 7);
  EXPECT_EQ(rdd.count(), 100u);
}

TEST(SparkContext, CollectPreservesOrder) {
  pm::SparkContext ctx(pm::ClusterConfig{});
  std::vector<int> items = {5, 3, 9, 1, 7};
  const auto out = ctx.parallelize(items, 2).collect();
  // Round-robin partitioning: partition 0 = {5,9,7}, partition 1 = {3,1};
  // collect concatenates partitions in order.
  EXPECT_EQ(out, (std::vector<int>{5, 9, 7, 3, 1}));
}

TEST(Rdd, MapTransformsEveryElement) {
  pm::SparkContext ctx(pm::ClusterConfig{});
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  const auto out = ctx.parallelize(items)
                       .map([](const int& v) { return v * v; })
                       .collect();
  long sum = 0;
  for (const auto v : out) sum += v;
  EXPECT_EQ(sum, 49L * 50 * 99 / 6);  // sum of squares 0..49
}

TEST(Rdd, MapChainsAndChangesType) {
  pm::SparkContext ctx(pm::ClusterConfig{});
  const auto out = ctx.parallelize(std::vector<int>{1, 2, 3})
                       .map([](const int& v) { return v + 1; })
                       .map([](const int& v) { return std::to_string(v * 10); })
                       .collect();
  ASSERT_EQ(out.size(), 3u);
  // Partitioning is round-robin over 2 partitions by default config (lanes=1
  // -> 2 partitions): p0={1,3}, p1={2} -> mapped {20,40},{30}.
  std::vector<std::string> sorted = out;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::string>{"20", "30", "40"}));
}

TEST(Rdd, MapIsLazyCollectDoesTheWork) {
  pm::SparkContext ctx(pm::ClusterConfig{});
  std::vector<int> items(1000);
  std::iota(items.begin(), items.end(), 0);
  auto rdd = ctx.parallelize(items);
  auto mapped = rdd.map([](const int& v) {
    // Non-trivial per-element work.
    double acc = v;
    for (int i = 0; i < 2000; ++i) acc = acc * 1.0000001 + 0.1;
    return static_cast<int>(acc) % 7;
  });
  const auto before = ctx.last_job();
  EXPECT_LT(before.measured_map_s, 0.01);      // lazy: ~nothing happened
  EXPECT_EQ(before.measured_reduce_s, 0.0);
  (void)mapped.collect();
  const auto after = ctx.last_job();
  EXPECT_GT(after.measured_reduce_s, before.measured_map_s);  // work in collect
}

// Property: results identical for every cluster shape.
class ClusterShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ClusterShapeSweep, CollectMatchesSequentialReference) {
  const auto [executors, cores] = GetParam();
  pm::ClusterConfig cfg;
  cfg.executors = executors;
  cfg.cores_per_executor = cores;
  pm::SparkContext ctx(cfg);
  std::vector<int> items(257);
  std::iota(items.begin(), items.end(), -100);
  const auto udf = [](const int& v) { return 3 * v - 1; };
  auto out = ctx.parallelize(items).map(udf).collect();
  std::sort(out.begin(), out.end());
  std::vector<int> want;
  want.reserve(items.size());
  for (const auto v : items) want.push_back(udf(v));
  std::sort(want.begin(), want.end());
  EXPECT_EQ(out, want);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ClusterShapeSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 4)));

TEST(ClusterConfig, Validation) {
  pm::ClusterConfig cfg;
  cfg.executors = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = pm::ClusterConfig{};
  cfg.load_cpu_s = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = pm::ClusterConfig{};
  EXPECT_EQ(cfg.lanes(), 1);
  cfg.executors = 4;
  cfg.cores_per_executor = 4;
  EXPECT_EQ(cfg.lanes(), 16);
}

TEST(Simulation, ReproducesTable2ReferenceRow) {
  // 1 executor x 1 core on the reference 4224-tile workload must land near
  // the paper's 108s load / 0.4s map / 390s reduce.
  pm::ClusterConfig cfg;
  const auto t = pm::simulate_phases(cfg, 4224, 2);
  EXPECT_NEAR(t.load_s, 108.0, 5.0);
  EXPECT_NEAR(t.map_s, 0.4, 0.1);
  EXPECT_NEAR(t.reduce_s, 390.0, 10.0);
}

TEST(Simulation, ReproducesTable2FullGridShape) {
  // Paper: 4x4 reaches ~9x load and ~16.25x reduce speedup over 1x1.
  pm::ClusterConfig base;
  const auto t11 = pm::simulate_phases(base, 4224, 2);
  pm::ClusterConfig grid;
  grid.executors = 4;
  grid.cores_per_executor = 4;
  const auto t44 = pm::simulate_phases(grid, 4224, 32);
  EXPECT_NEAR(t11.load_s / t44.load_s, 9.0, 1.0);
  EXPECT_NEAR(t11.reduce_s / t44.reduce_s, 16.25, 2.0);
}

TEST(Simulation, MonotoneInResources) {
  // More lanes never slow any phase down.
  pm::ClusterConfig prev;
  double last_load = 1e18, last_reduce = 1e18;
  for (const int lanes : {1, 2, 4, 8, 16}) {
    pm::ClusterConfig cfg;
    cfg.executors = lanes >= 4 ? 4 : lanes;
    cfg.cores_per_executor = lanes / cfg.executors;
    const auto t = pm::simulate_phases(cfg, 4224, 2 * lanes);
    EXPECT_LE(t.load_s, last_load + 1e-9);
    EXPECT_LE(t.reduce_s, last_reduce + 1e-9);
    last_load = t.load_s;
    last_reduce = t.reduce_s;
  }
}

TEST(Simulation, ScalesLinearlyWithWorkload) {
  pm::ClusterConfig cfg;
  cfg.executors = 2;
  cfg.cores_per_executor = 2;
  const auto t1 = pm::simulate_phases(cfg, 1000, 8);
  const auto t2 = pm::simulate_phases(cfg, 2000, 8);
  // Load carries a fixed setup; subtract it for the proportionality check.
  EXPECT_NEAR((t2.load_s - cfg.job_setup_s) / (t1.load_s - cfg.job_setup_s),
              2.0, 0.05);
  EXPECT_NEAR(t2.reduce_s / t1.reduce_s, 2.0, 0.05);
}

TEST(Simulation, RejectsBadWorkload) {
  pm::ClusterConfig cfg;
  EXPECT_THROW(pm::simulate_phases(cfg, -1, 2), std::invalid_argument);
  EXPECT_THROW(pm::simulate_phases(cfg, 10, 0), std::invalid_argument);
}

TEST(SparkContext, JobTimesPopulatedAfterRun) {
  pm::ClusterConfig cfg;
  cfg.executors = 2;
  cfg.cores_per_executor = 2;
  pm::SparkContext ctx(cfg);
  std::vector<int> items(64, 1);
  (void)ctx.parallelize(items).map([](const int& v) { return v + 1; }).collect();
  const auto job = ctx.last_job();
  EXPECT_EQ(job.items, 64);
  EXPECT_GT(job.partitions, 0);
  EXPECT_GT(job.simulated.load_s, 0.0);
  EXPECT_GT(job.simulated.reduce_s, 0.0);
  EXPECT_GE(job.measured_reduce_s, 0.0);
}
