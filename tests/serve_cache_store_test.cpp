// CacheStore durability semantics: write/reload roundtrip, atomic-rename
// crash discipline (*.tmp sweep), live-process lock guard, stale
// version/fingerprint discard, compaction — and the corruption fuzz the
// format exists for: every single-byte flip, every truncation length, and
// a mismatched version header must open clean (damaged data discarded,
// never a crash, never a wrong plane), mirroring the net_wire_test fuzz
// loops. Plus the SceneServer integration: warm start from disk, warm-hit
// accounting, and the flock guard surfacing as CacheStoreLocked.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/serve/cache_store.h"
#include "core/serve/scene_server.h"
#include "util/hash.h"
#include "img/image.h"
#include "nn/unet.h"
#include "s2/scene.h"

namespace fs = std::filesystem;
namespace pv = polarice::core::serve;
namespace pi = polarice::img;
namespace pn = polarice::nn;
namespace ps = polarice::s2;

namespace {

/// Fresh empty directory under the test tmpdir, removed on destruction.
struct TempDir {
  TempDir() {
    char pattern[] = "/tmp/polarice-cache-test-XXXXXX";
    path = ::mkdtemp(pattern);
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

pv::CacheStoreConfig store_config(const std::string& dir,
                                  std::uint64_t fingerprint = 7) {
  pv::CacheStoreConfig cfg;
  cfg.dir = dir;
  cfg.fingerprint = fingerprint;
  return cfg;
}

pi::ImageU8 make_plane(int w, int h, std::uint8_t fill) {
  return pi::ImageU8(w, h, 1, fill);
}

pv::SceneKey make_key(std::uint64_t lo, int w, int h) {
  pv::SceneKey key;
  key.hash_lo = lo;
  key.hash_hi = lo * 31 + 7;
  key.width = w;
  key.height = h;
  key.channels = 3;
  return key;
}

/// Writes two entries and flushes, returning the single segment's path.
std::string write_reference_segment(const std::string& dir) {
  pv::CacheStore store(store_config(dir));
  EXPECT_TRUE(store.append(make_key(1, 16, 8), make_plane(16, 8, 3)));
  EXPECT_TRUE(store.append(make_key(2, 8, 8), make_plane(8, 8, 9)));
  store.flush();
  std::string segment;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".ice") segment = entry.path().string();
  }
  EXPECT_FALSE(segment.empty());
  return segment;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST(CacheStore, RoundTripsEntriesAcrossReopen) {
  TempDir dir;
  const auto key_a = make_key(10, 32, 16);
  const auto key_b = make_key(11, 16, 16);
  const auto plane_a = make_plane(32, 16, 1);
  const auto plane_b = make_plane(16, 16, 200);
  {
    pv::CacheStore store(store_config(dir.path));
    EXPECT_TRUE(store.take_loaded().empty());
    EXPECT_TRUE(store.append(key_a, plane_a));
    EXPECT_TRUE(store.append(key_b, plane_b));
    // Content-addressed de-dup: same key again is a no-op.
    EXPECT_FALSE(store.append(key_a, plane_a));
    store.flush();
    const auto stats = store.stats();
    EXPECT_EQ(stats.appended, 2u);
    EXPECT_EQ(stats.flushed, 2u);
    EXPECT_EQ(stats.pending, 0u);
  }
  pv::CacheStore reopened(store_config(dir.path));
  auto loaded = reopened.take_loaded();
  ASSERT_EQ(loaded.size(), 2u);
  const auto stats = reopened.stats();
  EXPECT_EQ(stats.loaded, 2u);
  EXPECT_EQ(stats.corrupt, 0u);
  EXPECT_EQ(stats.stale, 0u);
  for (const auto& entry : loaded) {
    if (entry.key == key_a) {
      EXPECT_EQ(entry.plane, plane_a);
    } else {
      EXPECT_EQ(entry.key, key_b);
      EXPECT_EQ(entry.plane, plane_b);
    }
  }
  // Keys already durable stay deduped after reopen.
  EXPECT_FALSE(reopened.append(key_a, plane_a));
}

TEST(CacheStore, FlushIsEmptySafeAndTmpLeftoversAreSwept) {
  TempDir dir;
  {
    pv::CacheStore store(store_config(dir.path));
    store.flush();  // nothing pending: no segment appears
    std::size_t segments = 0;
    for (const auto& entry : fs::directory_iterator(dir.path)) {
      if (entry.path().extension() == ".ice") ++segments;
    }
    EXPECT_EQ(segments, 0u);
  }
  // A crashed flush leaves a *.tmp; by construction nothing references it,
  // so open deletes it and loads nothing from it.
  const std::string tmp = dir.path + "/seg-9.ice.tmp";
  write_file(tmp, {1, 2, 3, 4});
  pv::CacheStore store(store_config(dir.path));
  EXPECT_TRUE(store.take_loaded().empty());
  EXPECT_FALSE(fs::exists(tmp));
}

TEST(CacheStore, SecondLiveOpenerIsRefused) {
  TempDir dir;
  pv::CacheStore store(store_config(dir.path));
  try {
    pv::CacheStore second(store_config(dir.path));
    FAIL() << "expected CacheStoreLocked";
  } catch (const pv::CacheStoreLocked& error) {
    EXPECT_EQ(error.holder_pid, static_cast<long>(::getpid()));
  }
}

TEST(CacheStore, LockIsReleasedOnDestruction) {
  TempDir dir;
  {
    pv::CacheStore store(store_config(dir.path));
    ASSERT_TRUE(store.append(make_key(1, 8, 8), make_plane(8, 8, 1)));
    store.flush();
  }
  // No live holder: reopening succeeds and sees the data.
  pv::CacheStore store(store_config(dir.path));
  EXPECT_EQ(store.take_loaded().size(), 1u);
}

TEST(CacheStore, StaleFingerprintSegmentsAreDiscardedAndUnlinked) {
  TempDir dir;
  const std::string segment = write_reference_segment(dir.path);
  pv::CacheStore store(store_config(dir.path, /*fingerprint=*/8));
  EXPECT_TRUE(store.take_loaded().empty());
  EXPECT_EQ(store.stats().stale, 1u);
  EXPECT_EQ(store.stats().corrupt, 0u);
  // Stale planes must never answer again — not even for a third opener.
  EXPECT_FALSE(fs::exists(segment));
}

TEST(CacheStore, VersionHeaderMismatchIsStaleNotCrash) {
  TempDir dir;
  const std::string segment = write_reference_segment(dir.path);
  auto bytes = read_file(segment);
  ASSERT_GT(bytes.size(), 40u);
  // Patch the format version (offset 8, u32 LE) and re-seal the header
  // checksum (offset 32, fnv64 of bytes [0, 32)) so only the version is
  // wrong — exercising the explicit staleness path, not the checksum.
  bytes[8] = 0x7f;
  polarice::util::Fnv128 reseal;
  reseal.update(bytes.data(), 32);
  for (int i = 0; i < 8; ++i) {
    bytes[32 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(reseal.lo >> (8 * i));
  }
  write_file(segment, bytes);

  pv::CacheStore store(store_config(dir.path));
  EXPECT_TRUE(store.take_loaded().empty());
  EXPECT_EQ(store.stats().stale, 1u);
}

TEST(CacheStore, FuzzEveryByteFlipOpensCleanAndNeverReturnsWrongPlane) {
  TempDir dir;
  const std::string segment = write_reference_segment(dir.path);
  const auto reference = read_file(segment);
  const auto plane_a = make_plane(16, 8, 3);
  const auto plane_b = make_plane(8, 8, 9);

  for (std::size_t i = 0; i < reference.size(); ++i) {
    auto mutated = reference;
    mutated[i] ^= 0x5a;
    write_file(segment, mutated);
    pv::CacheStore store(store_config(dir.path));
    // Whatever survived must be byte-exact under its own key: a flipped
    // bit may cost entries, never corrupt one.
    std::size_t survivors = 0;
    for (const auto& entry : store.take_loaded()) {
      if (entry.key == make_key(1, 16, 8)) {
        EXPECT_EQ(entry.plane, plane_a) << "flip at byte " << i;
      } else if (entry.key == make_key(2, 8, 8)) {
        EXPECT_EQ(entry.plane, plane_b) << "flip at byte " << i;
      } else {
        FAIL() << "unknown key survived flip at byte " << i;
      }
      ++survivors;
    }
    const auto stats = store.stats();
    EXPECT_EQ(survivors, stats.loaded) << "flip at byte " << i;
    // Every flip damages exactly one byte of a fully-checksummed format:
    // something must have been dropped as corrupt/stale unless the flip
    // only cost payload... no — every byte is covered by some checksum, so
    // a flip always discards at least the entry (or segment) holding it.
    EXPECT_LT(survivors, 2u) << "flip at byte " << i;
    EXPECT_GE(stats.corrupt + stats.stale, survivors == 1 ? 1u : 1u)
        << "flip at byte " << i;
    // Restore for the next iteration (some flips unlink the segment).
    write_file(segment, reference);
  }
}

TEST(CacheStore, FuzzEveryTruncationOpensClean) {
  TempDir dir;
  const std::string segment = write_reference_segment(dir.path);
  const auto reference = read_file(segment);
  const auto plane_a = make_plane(16, 8, 3);
  const auto plane_b = make_plane(8, 8, 9);

  for (std::size_t keep = 0; keep < reference.size(); ++keep) {
    write_file(segment, std::vector<std::uint8_t>(
                            reference.begin(),
                            reference.begin() + static_cast<long>(keep)));
    pv::CacheStore store(store_config(dir.path));
    for (const auto& entry : store.take_loaded()) {
      // A truncated tail can only cost entries; survivors stay intact.
      if (entry.key == make_key(1, 16, 8)) {
        EXPECT_EQ(entry.plane, plane_a) << "truncated to " << keep;
      } else {
        EXPECT_EQ(entry.key, make_key(2, 8, 8)) << "truncated to " << keep;
        EXPECT_EQ(entry.plane, plane_b) << "truncated to " << keep;
      }
    }
    EXPECT_GE(store.stats().corrupt + store.stats().stale, 1u)
        << "truncated to " << keep;
    write_file(segment, reference);
  }
}

TEST(CacheStore, CompactsFragmentedDirectoriesOnOpen) {
  TempDir dir;
  const auto plane = make_plane(8, 8, 5);
  for (std::uint64_t i = 0; i < 8; ++i) {
    // Each open appends one entry in its own segment: 8 fragments.
    pv::CacheStore store(store_config(dir.path));
    store.take_loaded();
    store.append(make_key(100 + i, 8, 8), plane);
    store.flush();
  }
  std::size_t before = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    if (entry.path().extension() == ".ice") ++before;
  }
  EXPECT_EQ(before, 8u);

  {
    pv::CacheStore store(store_config(dir.path));
    EXPECT_EQ(store.take_loaded().size(), 8u);
    std::size_t after = 0;
    for (const auto& entry : fs::directory_iterator(dir.path)) {
      if (entry.path().extension() == ".ice") ++after;
    }
    EXPECT_EQ(after, 1u);
  }

  // The compacted segment carries all eight entries forward.
  pv::CacheStore verify(store_config(dir.path));
  EXPECT_EQ(verify.take_loaded().size(), 8u);
  EXPECT_EQ(verify.stats().corrupt, 0u);
}

// ---------------------------------------------------------------------------
// SceneServer integration
// ---------------------------------------------------------------------------

namespace {

pn::UNet make_model() {
  pn::UNetConfig cfg;
  cfg.depth = 2;
  cfg.base_channels = 6;
  cfg.use_dropout = false;
  cfg.seed = 88;
  return pn::UNet(cfg);
}

pi::ImageU8 make_scene(std::uint64_t seed, int size = 128) {
  ps::SceneConfig sc;
  sc.width = sc.height = size;
  sc.seed = seed;
  sc.cloudy = true;
  return ps::SceneGenerator(sc).generate().rgb;
}

pv::SceneServerConfig durable_config(const std::string& dir) {
  pv::SceneServerConfig cfg;
  cfg.tile_size = 64;
  cfg.min_replicas = 1;
  cfg.max_replicas = 2;
  cfg.cache_dir = dir;
  cfg.cache_fingerprint = 42;
  return cfg;
}

}  // namespace

TEST(SceneServerDurability, WarmStartServesBitIdenticalPlanesFromDisk) {
  TempDir dir;
  pn::UNet model = make_model();
  const auto scene = make_scene(501);
  pi::ImageU8 cold_plane;
  {
    pv::SceneServer server(model, durable_config(dir.path));
    cold_plane = server.submit(scene.clone()).get();
    const auto stats = server.stats();
    EXPECT_EQ(stats.cache_warmed, 0u);
    EXPECT_EQ(stats.cache_persisted, 1u);
    // Destructor drains and flushes the persistent tier.
  }
  pv::SceneServer warmed(model, durable_config(dir.path));
  {
    const auto stats = warmed.stats();
    EXPECT_EQ(stats.cache_warmed, 1u);
    EXPECT_EQ(stats.cache_corrupt, 0u);
    EXPECT_EQ(stats.cache_stale, 0u);
  }
  auto ticket = warmed.submit(scene.clone());
  EXPECT_EQ(ticket.get(), cold_plane);  // answered from the warmed cache
  EXPECT_FALSE(ticket.degraded());
  const auto stats = warmed.stats();
  EXPECT_EQ(stats.warm_hits, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  // No forward pass was spent on the warm hit.
  EXPECT_EQ(stats.session.scenes, 0u);
}

TEST(SceneServerDurability, MismatchedFingerprintColdStarts) {
  TempDir dir;
  pn::UNet model = make_model();
  {
    pv::SceneServer server(model, durable_config(dir.path));
    (void)server.submit(make_scene(502)).get();
  }
  auto cfg = durable_config(dir.path);
  cfg.cache_fingerprint = 43;  // "different model": planes must not carry
  pv::SceneServer server(model, cfg);
  const auto stats = server.stats();
  EXPECT_EQ(stats.cache_warmed, 0u);
  EXPECT_EQ(stats.cache_stale, 1u);
}

TEST(SceneServerDurability, LiveLockedCacheDirRefusesConstruction) {
  TempDir dir;
  pn::UNet model = make_model();
  pv::SceneServer holder(model, durable_config(dir.path));
  EXPECT_THROW(pv::SceneServer(model, durable_config(dir.path)),
               pv::CacheStoreLocked);
}

TEST(SceneServerDurability, CacheDirWithoutMemoryCacheIsRejected) {
  auto cfg = durable_config("/tmp/unused");
  cfg.cache_bytes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}
