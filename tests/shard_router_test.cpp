// ShardRouter + ShardWorker — the sharded serving tier, in-process.
//
// Workers here run on threads inside the test binary, but every request
// still crosses the full wire path (frames over real Unix sockets), so
// these tests cover serialization, transport, routing, failover, and
// shedding — everything but process isolation, which the bench harness and
// the CI multi-process smoke cover with fork/exec'd polarice_worker.
//
// The headline assertion: for the same scene set, planes served through
// 1, 2, and 4 shards are bit-identical to the single-process SceneServer
// and to the serial workflow — sharding must be invisible in the output.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/serve/scene_server.h"
#include "core/serve/shard/protocol.h"
#include "core/serve/shard/shard_router.h"
#include "core/serve/shard/shard_worker.h"
#include "core/workflow.h"
#include "img/image.h"
#include "net/transport.h"
#include "nn/unet.h"
#include "par/context.h"
#include "s2/scene.h"
#include "util/virtual_clock.h"

namespace {

using namespace polarice;
namespace shard = core::serve::shard;

nn::UNetConfig test_model_config() {
  nn::UNetConfig cfg;
  cfg.depth = 2;
  cfg.base_channels = 4;
  cfg.use_dropout = false;
  cfg.seed = 88;
  return cfg;
}

std::vector<img::ImageU8> test_scenes(int count, int size) {
  std::vector<img::ImageU8> scenes;
  for (int i = 0; i < count; ++i) {
    s2::SceneConfig sc;
    sc.width = sc.height = size;
    sc.seed = 4000 + static_cast<std::uint64_t>(i);
    sc.cloudy = (i % 2) == 0;
    scenes.push_back(s2::SceneGenerator(sc).generate().rgb);
  }
  return scenes;
}

/// An in-process shard fleet: N ShardWorkers on threads, Unix sockets in
/// /tmp, all built from clones of the same deterministic model.
class Fleet {
 public:
  Fleet(int shards, const core::serve::SceneServerConfig& server_cfg) {
    const std::string stem = "/tmp/polarice-shard-test-" +
                             std::to_string(::getpid()) + "-" +
                             std::to_string(next_fleet_id_++) + "-";
    auto model_cfg = test_model_config();
    for (int i = 0; i < shards; ++i) {
      models_.push_back(std::make_unique<nn::UNet>(model_cfg));
      shard::ShardWorkerConfig cfg;
      cfg.listen =
          net::Endpoint::parse("unix:" + stem + std::to_string(i) + ".sock");
      cfg.server = server_cfg;
      workers_.push_back(
          std::make_unique<shard::ShardWorker>(*models_.back(), cfg));
      endpoints_.push_back(workers_.back()->endpoint());
      threads_.emplace_back([worker = workers_.back().get()] {
        worker->serve();
        worker->stop();
      });
    }
  }

  ~Fleet() { stop_all(); }

  void stop_all() {
    for (auto& worker : workers_) worker->stop();
    threads_.clear();
  }

  void stop(int index) { workers_[static_cast<std::size_t>(index)]->stop(); }

  [[nodiscard]] const std::vector<net::Endpoint>& endpoints() const {
    return endpoints_;
  }
  [[nodiscard]] shard::ShardWorker& worker(int index) {
    return *workers_[static_cast<std::size_t>(index)];
  }

 private:
  static inline std::atomic<int> next_fleet_id_{0};

  std::vector<std::unique_ptr<nn::UNet>> models_;
  std::vector<std::unique_ptr<shard::ShardWorker>> workers_;
  std::vector<net::Endpoint> endpoints_;
  std::vector<std::jthread> threads_;
};

/// A scripted shard: speaks the wire protocol but answers every submit
/// with a fixed Outcome, optionally holding responses until released —
/// for driving router paths a real worker cannot reach deterministically
/// (fleet-wide admission refusal, cancellation while a request is on the
/// wire).
class FakeShard {
 public:
  explicit FakeShard(shard::Outcome outcome)
      : outcome_(outcome),
        listener_(net::Listener::bind(net::Endpoint::parse(
            "unix:/tmp/polarice-fake-shard-" + std::to_string(::getpid()) +
            "-" + std::to_string(next_id_++) + ".sock"))),
        endpoint_(listener_.endpoint()),
        accept_thread_([this] { serve(); }) {}

  ~FakeShard() {
    {
      const std::scoped_lock lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    accept_thread_ = {};  // join; handler jthreads join via handlers_
    handlers_.clear();
    listener_.close();
  }

  [[nodiscard]] const net::Endpoint& endpoint() const { return endpoint_; }

  /// Park submit responses until release().
  void hold() {
    const std::scoped_lock lock(mutex_);
    hold_ = true;
  }
  void release() {
    {
      const std::scoped_lock lock(mutex_);
      hold_ = false;
    }
    cv_.notify_all();
  }
  /// Blocks until at least one submit request has been read off the wire.
  void wait_for_submit() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return submits_ > 0; });
  }

 private:
  void serve() {
    for (;;) {
      {
        const std::scoped_lock lock(mutex_);
        if (stop_) return;
      }
      net::Connection connection;
      try {
        connection = listener_.accept(std::chrono::milliseconds(20));
      } catch (const net::TransportError&) {
        return;
      }
      if (!connection.valid()) continue;
      handlers_.emplace_back(
          [this, conn = std::move(connection)]() mutable {
            handle(std::move(conn));
          });
    }
  }

  void handle(net::Connection connection) {
    try {
      for (;;) {
        while (!connection.wait_readable(std::chrono::milliseconds(50))) {
          const std::scoped_lock lock(mutex_);
          if (stop_) return;
        }
        net::Frame frame = connection.read_frame();
        if (frame.type == net::MsgType::kHeartbeatRequest) {
          shard::HeartbeatResponse heartbeat;
          connection.write_frame(net::MsgType::kHeartbeatResponse,
                                 encode(heartbeat));
          continue;
        }
        auto request = shard::decode_submit_request(frame.payload);
        {
          std::unique_lock lock(mutex_);
          ++submits_;
          cv_.notify_all();
          cv_.wait(lock, [&] { return !hold_ || stop_; });
          if (stop_) return;
        }
        shard::SubmitResponse response;
        response.request_id = request.request_id;
        response.outcome = outcome_;
        if (outcome_ == shard::Outcome::kOk) {
          response.plane = img::ImageU8(request.scene.width(),
                                        request.scene.height(), 1);
        } else {
          response.error = "scripted refusal";
        }
        connection.write_frame(net::MsgType::kSubmitResponse,
                               encode(response));
      }
    } catch (const std::exception&) {
      // Peer dropped the connection; this handler is done.
    }
  }

  static inline std::atomic<int> next_id_{0};

  shard::Outcome outcome_;
  net::Listener listener_;
  net::Endpoint endpoint_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;      // guarded by mutex_
  bool hold_ = false;      // guarded by mutex_
  int submits_ = 0;        // guarded by mutex_

  std::vector<std::jthread> handlers_;
  std::jthread accept_thread_;
};

TEST(ShardRouter, ConfigValidation) {
  shard::ShardRouterConfig cfg;
  EXPECT_THROW(shard::ShardRouter{cfg}, std::invalid_argument);  // no shards
  cfg.shards.push_back(net::Endpoint::parse("unix:/tmp/none.sock"));
  cfg.dispatchers = 0;
  EXPECT_THROW(shard::ShardRouter{cfg}, std::invalid_argument);
  cfg.dispatchers = 1;
  cfg.max_failovers = -1;
  EXPECT_THROW(shard::ShardRouter{cfg}, std::invalid_argument);
}

TEST(ShardRouter, PlacementIsDeterministicAndSpreads) {
  shard::ShardRouterConfig cfg;
  for (int i = 0; i < 4; ++i) {
    cfg.shards.push_back(
        net::Endpoint::parse("unix:/tmp/p-" + std::to_string(i) + ".sock"));
  }
  cfg.heartbeat_period = std::chrono::milliseconds(10000);  // quiet prober
  shard::ShardRouter router(cfg);

  std::vector<int> first_choices;
  for (int i = 0; i < 64; ++i) {
    core::serve::SceneKey key;
    key.hash_lo = 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(i + 1);
    key.hash_hi = ~key.hash_lo;
    const auto order = router.placement(key);
    ASSERT_EQ(order.size(), 4u);
    // A permutation of all shards, stable across calls.
    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(router.placement(key), order);
    first_choices.push_back(order[0]);
  }
  // 64 well-mixed keys over 4 shards: every shard should win sometimes.
  for (int s = 0; s < 4; ++s) {
    EXPECT_NE(std::count(first_choices.begin(), first_choices.end(), s), 0)
        << "shard " << s << " never placed first";
  }
}

// The acceptance-criteria test: identical scenes through 1-, 2-, and
// 4-shard fleets, a single-process SceneServer, and the serial workflow
// all produce bit-identical planes.
TEST(ShardRouter, ShardCountIsInvisibleInOutput) {
  auto model_cfg = test_model_config();
  nn::UNet model(model_cfg);
  core::serve::SceneServerConfig server_cfg;
  server_cfg.tile_size = 32;
  server_cfg.max_replicas = 2;

  // Ragged on purpose: 48 is not a 32-tile multiple, so planes cross the
  // wire with padding-dependent shapes. The serial workflow refuses ragged
  // scenes (only the server pads), so the single-process SceneServer is
  // the oracle — with a serial-workflow crosscheck on a tile multiple.
  const auto scenes = test_scenes(4, 48);

  std::vector<img::ImageU8> references;
  {
    core::serve::SceneServer server(model, server_cfg);
    for (const auto& scene : scenes) {
      references.push_back(server.submit(scene.clone()).get());
    }
    // Tile-multiple scene: server must equal the serial workflow exactly.
    const auto aligned = test_scenes(1, 64)[0];
    core::InferenceWorkflow workflow(model, server_cfg.filter,
                                     server_cfg.tile_size);
    EXPECT_EQ(server.submit(aligned.clone()).get(),
              workflow.classify_scene(aligned));
  }

  // Sharded fleets.
  for (const int shard_count : {1, 2, 4}) {
    Fleet fleet(shard_count, server_cfg);
    shard::ShardRouterConfig router_cfg;
    router_cfg.shards = fleet.endpoints();
    router_cfg.dispatchers = 4;
    shard::ShardRouter router(router_cfg);

    // Submit everything twice, concurrently: exercises cross-connection
    // batching on the workers and per-shard caching on the repeat.
    std::vector<shard::ShardTicket> tickets;
    for (int round = 0; round < 2; ++round) {
      for (const auto& scene : scenes) {
        tickets.push_back(router.submit(scene.clone()));
      }
    }
    for (std::size_t t = 0; t < tickets.size(); ++t) {
      EXPECT_EQ(tickets[t].get(), references[t % scenes.size()])
          << "scene " << t % scenes.size() << " via " << shard_count
          << " shard(s)";
    }

    const auto stats = router.stats();
    EXPECT_EQ(stats.completed, tickets.size());
    EXPECT_EQ(stats.failed, 0u);
  }
}

TEST(ShardRouter, TicketSemanticsMatchSceneTicket) {
  core::serve::SceneServerConfig server_cfg;
  server_cfg.tile_size = 32;
  Fleet fleet(1, server_cfg);
  shard::ShardRouterConfig router_cfg;
  router_cfg.shards = fleet.endpoints();
  shard::ShardRouter router(router_cfg);

  shard::ShardTicket empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW((void)empty.ready(), std::logic_error);

  const auto scenes = test_scenes(1, 32);
  auto ticket = router.submit(scenes[0].clone());
  EXPECT_TRUE(ticket.valid());
  EXPECT_TRUE(ticket.wait_for(std::chrono::milliseconds(10000)));
  EXPECT_TRUE(ticket.ready());
  const auto plane_a = ticket.get();
  const auto plane_b = ticket.get();  // repeatable get
  EXPECT_EQ(plane_a, plane_b);

  EXPECT_THROW((void)router.submit(img::ImageU8{}), std::invalid_argument);

  router.shutdown();
  EXPECT_THROW((void)router.submit(scenes[0].clone()),
               core::serve::QueueClosed);
}

// Failover: stop one worker mid-fleet; scenes that placed on it must be
// re-dispatched to the survivor and still verify bit-identically.
TEST(ShardRouter, FailoverRedispatchesBitIdentically) {
  auto model_cfg = test_model_config();
  nn::UNet model(model_cfg);
  core::serve::SceneServerConfig server_cfg;
  server_cfg.tile_size = 32;

  const auto scenes = test_scenes(6, 48);
  std::vector<img::ImageU8> references;
  {
    core::serve::SceneServer oracle(model, server_cfg);
    for (const auto& scene : scenes) {
      references.push_back(oracle.submit(scene.clone()).get());
    }
  }

  Fleet fleet(2, server_cfg);
  shard::ShardRouterConfig router_cfg;
  router_cfg.shards = fleet.endpoints();
  router_cfg.dispatchers = 2;
  // Quiet the prober: the corpse must be discovered by failing dispatches
  // (the failover path under test), not quarantined out of the candidate
  // set by heartbeats first.
  router_cfg.heartbeat_period = std::chrono::milliseconds(10000);
  shard::ShardRouter router(router_cfg);

  // Stop exactly the worker scene 0 places on — deterministic regardless
  // of how this run's socket paths hashed.
  const int victim =
      router.placement(core::serve::hash_scene(scenes[0]))[0];
  fleet.stop(victim);

  // Every scene must still complete — those placed on the victim via
  // failover — and every plane must still be bit-identical.
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    EXPECT_EQ(router.submit(scenes[i].clone()).get(), references[i])
        << "scene " << i << " after losing shard " << victim;
  }

  const auto stats = router.stats();
  EXPECT_EQ(stats.completed, scenes.size());
  EXPECT_EQ(stats.failed, 0u);
  // Scene 0 placed on the stopped shard by construction, so its dispatch
  // failed there and was re-dispatched to the survivor.
  EXPECT_GT(stats.failovers, 0u);
  EXPECT_GT(stats.dispatch_errors, 0u);
}

// Overload shedding: when every shard's last heartbeat reports queue depth
// over the watermark, submission is refused with AdmissionRejected before
// any bytes cross the wire.
TEST(ShardRouter, ShedsWhenAllShardsOverWatermark) {
  core::serve::SceneServerConfig server_cfg;
  server_cfg.tile_size = 32;
  Fleet fleet(1, server_cfg);

  shard::ShardRouterConfig router_cfg;
  router_cfg.shards = fleet.endpoints();
  router_cfg.heartbeat_period = std::chrono::milliseconds(10);
  router_cfg.shed_queue_depth = 1;
  shard::ShardRouter router(router_cfg);
  ASSERT_TRUE(router.wait_for_healthy(1, std::chrono::milliseconds(5000)));

  // Build a real backlog behind the router's back: flood the worker's
  // embedded server directly with unique scenes (no cache hits, no
  // coalescing), then wait until a heartbeat has *observed* the depth.
  const auto flood = test_scenes(40, 96);
  std::vector<core::serve::SceneTicket> backlog;
  for (const auto& scene : flood) {
    backlog.push_back(fleet.worker(0).server().submit(scene.clone()));
  }
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool observed = false;
  while (!observed && std::chrono::steady_clock::now() < give_up) {
    const auto stats = router.stats();
    observed = stats.shards.at(0).queue_depth > router_cfg.shed_queue_depth;
    if (!observed) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(observed) << "heartbeat never saw the backlog";

  // The sole shard is over the watermark: the fleet must shed.
  const auto scenes = test_scenes(1, 64);
  EXPECT_THROW((void)router.submit(scenes[0].clone()),
               core::serve::AdmissionRejected);
  EXPECT_GE(router.stats().rejected, 1u);

  for (auto& ticket : backlog) ticket.cancel();
  for (auto& ticket : backlog) {
    try {
      (void)ticket.get();
    } catch (const std::exception&) {
    }
  }
}

// When the failover budget exhausts because every candidate shard refused
// admission (Outcome::kRejected), the resolution is AdmissionRejected and
// stats must classify it as rejected — not failed (regression: fleet-wide
// admission refusals were counted as failures).
TEST(ShardRouter, FleetWideRejectionCountsAsRejected) {
  FakeShard a(shard::Outcome::kRejected);
  FakeShard b(shard::Outcome::kRejected);
  shard::ShardRouterConfig cfg;
  cfg.shards = {a.endpoint(), b.endpoint()};
  cfg.dispatchers = 1;
  cfg.heartbeat_period = std::chrono::milliseconds(10000);  // quiet prober
  shard::ShardRouter router(cfg);

  const auto scenes = test_scenes(1, 32);
  auto ticket = router.submit(scenes[0].clone());
  EXPECT_THROW((void)ticket.get(), core::serve::AdmissionRejected);

  const auto stats = router.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_GT(stats.failovers, 0u);  // the second candidate was tried
}

// The ShardTicket::cancel contract: a request already on the wire
// completes remotely but resolves cancelled on return — the caller must
// never observe a successful result after cancel() (regression: the
// router resolved kOk responses even for tickets cancelled mid-flight).
TEST(ShardRouter, CancelledMidFlightResolvesCancelledNotOk) {
  FakeShard fake(shard::Outcome::kOk);
  fake.hold();  // park the response so the request stays in flight
  shard::ShardRouterConfig cfg;
  cfg.shards = {fake.endpoint()};
  cfg.dispatchers = 1;
  cfg.heartbeat_period = std::chrono::milliseconds(10000);
  shard::ShardRouter router(cfg);

  const auto scenes = test_scenes(1, 32);
  auto ticket = router.submit(scenes[0].clone());
  fake.wait_for_submit();  // the request has crossed the wire
  ticket.cancel();
  fake.release();  // shard now answers kOk — too late

  EXPECT_THROW((void)ticket.get(), par::OperationCancelled);
  const auto stats = router.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

// Re-dial backoff regression, on a frozen VirtualClock: a quarantined
// shard's probes are spaced exponentially (base, 2x, 4x... capped), each
// probe fires only when the router's clock reaches its scheduled time, and
// probes stop entirely while virtual time stands still — real time passing
// must never leak into the cadence.
TEST(ShardRouter, QuarantineRedialBacksOffExponentiallyOnVirtualTime) {
  polarice::util::VirtualClock clock;
  shard::ShardRouterConfig cfg;
  // Nothing listens here: every probe fails with a connect error.
  cfg.shards = {net::Endpoint::parse("unix:/tmp/polarice-no-such-shard-" +
                                     std::to_string(::getpid()) + ".sock")};
  cfg.heartbeat_period = std::chrono::milliseconds(10);
  cfg.quarantine_failures = 1;
  cfg.redial_base = std::chrono::milliseconds(100);
  cfg.redial_cap = std::chrono::milliseconds(400);
  cfg.clock = &clock;
  shard::ShardRouter router(cfg);

  auto failures = [&] { return router.stats().shards.at(0).heartbeats_failed; };
  auto wait_for_failures = [&](std::size_t want) {
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (failures() < want && std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return failures();
  };

  // Startup probe is due immediately; its failure quarantines the shard.
  ASSERT_EQ(wait_for_failures(1), 1u);
  {
    const auto state = router.stats().shards.at(0);
    EXPECT_FALSE(state.healthy);
    EXPECT_EQ(state.redial_attempts, 1);
  }
  // Frozen clock: plenty of real time, zero virtual time — no re-dial.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(failures(), 1u);

  // Attempt 1 delay = base + jitter (jitter <= 25%): 150ms covers it.
  clock.advance(std::chrono::milliseconds(150));
  ASSERT_EQ(wait_for_failures(2), 2u);
  EXPECT_EQ(router.stats().shards.at(0).redial_attempts, 2);

  // Attempt 2 delay = 2*base (+ <=25% jitter): 150ms is NOT enough...
  clock.advance(std::chrono::milliseconds(150));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(failures(), 2u);
  // ...another 150ms (300 total > 250 worst case) is.
  clock.advance(std::chrono::milliseconds(150));
  ASSERT_EQ(wait_for_failures(3), 3u);

  // From attempt 3 on the delay is capped at redial_cap: 500ms per step
  // (cap + max jitter) keeps yielding exactly one probe each, where an
  // uncapped schedule (800ms, 1600ms...) would have gone silent.
  for (std::size_t want = 4; want <= 6; ++want) {
    clock.advance(std::chrono::milliseconds(500));
    ASSERT_EQ(wait_for_failures(want), want) << "probe " << want;
  }
  EXPECT_EQ(router.stats().shards.at(0).redial_attempts, 6);
}

// Restart/rejoin: a quarantined shard whose endpoint comes back (a new
// worker process bound on the same socket path) is re-dialed, marked
// healthy, has its backoff reset, and serves again.
TEST(ShardRouter, QuarantinedShardRejoinsAfterWorkerRestart) {
  auto model_cfg = test_model_config();
  core::serve::SceneServerConfig server_cfg;
  server_cfg.tile_size = 32;
  const std::string sock = "/tmp/polarice-rejoin-" +
                           std::to_string(::getpid()) + ".sock";
  const auto scenes = test_scenes(1, 48);
  nn::UNet oracle_model(model_cfg);
  const img::ImageU8 reference =
      core::serve::SceneServer(oracle_model, server_cfg)
          .submit(scenes[0].clone())
          .get();
  shard::ShardWorkerConfig worker_cfg;
  worker_cfg.listen = net::Endpoint::parse("unix:" + sock);
  worker_cfg.server = server_cfg;

  shard::ShardRouterConfig router_cfg;
  router_cfg.shards = {worker_cfg.listen};
  router_cfg.heartbeat_period = std::chrono::milliseconds(20);
  router_cfg.quarantine_failures = 1;
  router_cfg.redial_base = std::chrono::milliseconds(20);
  router_cfg.redial_cap = std::chrono::milliseconds(80);

  nn::UNet model_a(model_cfg);
  auto worker_a = std::make_unique<shard::ShardWorker>(model_a, worker_cfg);
  std::jthread thread_a([&] { worker_a->serve(); });
  shard::ShardRouter router(router_cfg);
  ASSERT_TRUE(router.wait_for_healthy(1, std::chrono::milliseconds(5000)));

  // Kill the worker; probes must quarantine the shard.
  worker_a->stop();
  thread_a = {};
  worker_a.reset();
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (router.stats().shards.at(0).healthy &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_FALSE(router.stats().shards.at(0).healthy);
  EXPECT_GE(router.stats().quarantines, 1u);

  // Restart: a fresh worker (same deterministic model) on the same path.
  nn::UNet model_b(model_cfg);
  shard::ShardWorker worker_b(model_b, worker_cfg);
  std::jthread thread_b([&] { worker_b.serve(); });
  const auto rejoin_give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!router.stats().shards.at(0).healthy &&
         std::chrono::steady_clock::now() < rejoin_give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto state = router.stats().shards.at(0);
  ASSERT_TRUE(state.healthy) << "shard never rejoined";
  EXPECT_EQ(state.redial_attempts, 0);  // first success resets the backoff
  EXPECT_GE(router.stats().recoveries, 1u);

  // The rejoined shard serves, bit-identically.
  EXPECT_EQ(router.submit(scenes[0].clone()).get(), reference);
  router.shutdown();
  worker_b.stop();
}

// The wire carries brownout degradation end to end: a worker browned out
// (instant-enter policy on a frozen VirtualClock) answers kBatch scenes
// with degraded planes, and the router surfaces that on the ticket and in
// its counters; kNormal traffic stays full quality.
TEST(ShardRouter, DegradedFlagPropagatesOverTheWire) {
  polarice::util::VirtualClock clock;
  core::serve::SceneServerConfig server_cfg;
  server_cfg.tile_size = 32;
  server_cfg.clock = &clock;
  server_cfg.brownout.enabled = true;
  server_cfg.brownout.enter_queue_depth = 1;
  server_cfg.brownout.exit_queue_depth = 0;
  server_cfg.brownout.enter_hold = std::chrono::milliseconds(0);
  server_cfg.brownout.exit_hold = std::chrono::milliseconds(1000);
  Fleet fleet(1, server_cfg);

  shard::ShardRouterConfig router_cfg;
  router_cfg.shards = fleet.endpoints();
  router_cfg.heartbeat_period = std::chrono::milliseconds(10000);
  shard::ShardRouter router(router_cfg);

  // Brownout entry races the worker's scheduler pop (a depth sample must
  // land while scenes are backed up), so burst unique kBatch scenes at it
  // until one comes back degraded; the frozen clock then pins the mode.
  core::serve::SubmitOptions batch;
  batch.priority = core::serve::Priority::kBatch;
  std::size_t degraded_tickets = 0;
  std::size_t submitted = 0;
  for (int round = 0; round < 10 && degraded_tickets == 0; ++round) {
    std::vector<img::ImageU8> scenes;
    for (int i = 0; i < 16; ++i) {
      s2::SceneConfig sc;
      sc.width = sc.height = 48;
      sc.seed = 7000 + static_cast<std::uint64_t>(round * 16 + i);
      scenes.push_back(s2::SceneGenerator(sc).generate().rgb);
    }
    std::vector<shard::ShardTicket> tickets;
    tickets.reserve(scenes.size());
    for (const auto& scene : scenes) {
      tickets.push_back(router.submit(scene.clone(), batch));
    }
    submitted += tickets.size();
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const auto plane = tickets[i].get();
      if (!tickets[i].degraded()) continue;
      if (degraded_tickets == 0) {
        EXPECT_EQ(plane.width(), scenes[i].width());
        EXPECT_EQ(plane.height(), scenes[i].height());
      }
      ++degraded_tickets;
    }
  }
  ASSERT_GT(degraded_tickets, 0u) << "brownout never entered on the worker";

  auto full_ticket =
      router.submit(test_scenes(1, 48)[0].clone());  // kNormal default
  (void)full_ticket.get();
  EXPECT_FALSE(full_ticket.degraded());

  const auto stats = router.stats();
  // Counter consistency across the wire: the router's degraded count is
  // exactly the number of tickets that reported degraded().
  EXPECT_EQ(stats.degraded, degraded_tickets);
  EXPECT_EQ(stats.completed, submitted + 1);
}

TEST(ShardRouter, HeartbeatCarriesWorkerStats) {
  core::serve::SceneServerConfig server_cfg;
  server_cfg.tile_size = 32;
  Fleet fleet(2, server_cfg);

  shard::ShardRouterConfig router_cfg;
  router_cfg.shards = fleet.endpoints();
  router_cfg.heartbeat_period = std::chrono::milliseconds(20);
  shard::ShardRouter router(router_cfg);
  ASSERT_TRUE(router.wait_for_healthy(2, std::chrono::milliseconds(5000)));

  const auto scenes = test_scenes(2, 48);
  for (const auto& scene : scenes) {
    (void)router.submit(scene.clone()).get();
  }
  // Wait for the next heartbeat round to pick up the server counters.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  const auto stats = router.stats();
  ASSERT_EQ(stats.shards.size(), 2u);
  std::size_t fleet_completed = 0;
  for (const auto& shard_state : stats.shards) {
    EXPECT_TRUE(shard_state.healthy);
    EXPECT_GT(shard_state.heartbeats_ok, 0u);
    fleet_completed += shard_state.stats.completed;
  }
  EXPECT_EQ(fleet_completed, scenes.size());
}

}  // namespace
