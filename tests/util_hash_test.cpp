// util/hash.h — the shared 128-bit FNV-1a content hash.
//
// The cross-implementation test re-derives the digest with an independent,
// deliberately naive loop written from the FNV-1a definition: if the shared
// implementation ever drifts (prime, offset, update order, the second
// stream's basis), cache keys, coalescing identity, and router placement
// would all silently change — this suite turns that into a loud failure.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/serve/result_cache.h"
#include "img/image.h"
#include "util/hash.h"

namespace {

using polarice::util::Fnv128;
using polarice::util::fnv128;
using polarice::util::fnv64;

// Independent reference: textbook FNV-1a, one stream at a time.
std::uint64_t reference_fnv1a(const std::vector<std::uint8_t>& data,
                              std::uint64_t basis) {
  std::uint64_t hash = basis;
  for (const auto byte : data) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::vector<std::uint8_t> pattern_bytes(std::size_t n) {
  std::vector<std::uint8_t> data(n);
  std::uint32_t state = 0x12345678u;
  for (auto& byte : data) {
    state = state * 1664525u + 1013904223u;  // LCG: arbitrary but fixed
    byte = static_cast<std::uint8_t>(state >> 24);
  }
  return data;
}

TEST(UtilHash, MatchesIndependentReferenceImplementation) {
  for (const std::size_t n : {0UL, 1UL, 7UL, 64UL, 1000UL}) {
    const auto data = pattern_bytes(n);
    const auto digest = fnv128(data.data(), data.size());
    EXPECT_EQ(digest.lo, reference_fnv1a(data, Fnv128::kOffset)) << n;
    EXPECT_EQ(digest.hi,
              reference_fnv1a(data, Fnv128::kOffset ^ Fnv128::kOffsetTweak))
        << n;
  }
}

TEST(UtilHash, EmptyInputIsTheOffsetBasis) {
  const auto digest = fnv128(nullptr, 0);
  EXPECT_EQ(digest.lo, Fnv128::kOffset);
  EXPECT_EQ(digest.hi, Fnv128::kOffset ^ Fnv128::kOffsetTweak);
}

TEST(UtilHash, IncrementalEqualsOneShot) {
  const auto data = pattern_bytes(257);
  const auto one_shot = fnv128(data.data(), data.size());
  // Every split point must agree with the one-shot digest.
  for (const std::size_t split : {0UL, 1UL, 100UL, 256UL, 257UL}) {
    Fnv128 incremental;
    incremental.update(data.data(), split);
    incremental.update(data.data() + split, data.size() - split);
    EXPECT_EQ(incremental.lo, one_shot.lo) << split;
    EXPECT_EQ(incremental.hi, one_shot.hi) << split;
  }
}

TEST(UtilHash, UpdateLeFeedsLittleEndianBytes) {
  Fnv128 via_scalar;
  via_scalar.update_le(std::uint32_t{0x11223344u});
  const std::vector<std::uint8_t> bytes = {0x44, 0x33, 0x22, 0x11};
  const auto via_bytes = fnv128(bytes.data(), bytes.size());
  EXPECT_EQ(via_scalar.lo, via_bytes.lo);
  EXPECT_EQ(via_scalar.hi, via_bytes.hi);
}

TEST(UtilHash, DistinctInputsDiverge) {
  const auto a = fnv128("scene-a", 7);
  const auto b = fnv128("scene-b", 7);
  EXPECT_FALSE(a.lo == b.lo && a.hi == b.hi);
  EXPECT_NE(fnv64("x", 1), fnv64("y", 1));
}

// hash_scene must be exactly fnv128 over the pixel bytes — the router's
// placement key and the cache key are the same identity by construction.
TEST(UtilHash, SceneKeyUsesTheSharedHash) {
  polarice::img::ImageU8 scene(5, 4, 3);
  const auto bytes = pattern_bytes(scene.size());
  std::copy(bytes.begin(), bytes.end(), scene.data());

  const auto key = polarice::core::serve::hash_scene(scene);
  const auto digest = fnv128(scene.data(), scene.size());
  EXPECT_EQ(key.hash_lo, digest.lo);
  EXPECT_EQ(key.hash_hi, digest.hi);
  EXPECT_EQ(key.width, 5);
  EXPECT_EQ(key.height, 4);
  EXPECT_EQ(key.channels, 3);
}

}  // namespace
