// RequestQueue admission semantics: FIFO transport, the three full-queue
// policies (reject / block / deadline), cancellation of blocked submitters,
// the close() drain handshake, and the deadline policy running on an
// injected virtual clock.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "core/serve/request_queue.h"
#include "par/context.h"
#include "util/virtual_clock.h"

namespace ps = polarice::core::serve;
namespace pp = polarice::par;

using namespace std::chrono_literals;

namespace {

ps::AdmissionConfig admission(std::size_t capacity, ps::AdmissionPolicy policy,
                              std::chrono::milliseconds deadline = 50ms) {
  ps::AdmissionConfig cfg;
  cfg.capacity = capacity;
  cfg.policy = policy;
  cfg.deadline = deadline;
  return cfg;
}

}  // namespace

TEST(RequestQueue, FifoTransportAndDepthTelemetry) {
  ps::RequestQueue<int> queue(admission(8, ps::AdmissionPolicy::kReject));
  for (int i = 0; i < 5; ++i) queue.push(i);
  EXPECT_EQ(queue.depth(), 5u);
  EXPECT_EQ(queue.peak_depth(), 5u);
  for (int i = 0; i < 5; ++i) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.peak_depth(), 5u);
  EXPECT_EQ(queue.rejected(), 0u);
}

TEST(RequestQueue, RejectPolicyFailsFastWhenFull) {
  ps::RequestQueue<int> queue(admission(2, ps::AdmissionPolicy::kReject));
  queue.push(1);
  queue.push(2);
  EXPECT_THROW(queue.push(3), ps::AdmissionRejected);
  EXPECT_THROW(queue.push(4), ps::AdmissionRejected);
  EXPECT_EQ(queue.rejected(), 2u);
  // Space frees -> admission resumes.
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_NO_THROW(queue.push(3));
}

TEST(RequestQueue, DeadlinePolicyWaitsThenRejects) {
  ps::RequestQueue<int> queue(
      admission(1, ps::AdmissionPolicy::kDeadline, 30ms));
  queue.push(1);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(queue.push(2), ps::AdmissionRejected);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 25ms);

  // A consumer freeing space within the deadline admits the request.
  std::jthread consumer([&] {
    std::this_thread::sleep_for(10ms);
    (void)queue.pop();
  });
  ps::RequestQueue<int>& q = queue;
  EXPECT_NO_THROW(q.push(3));
}

TEST(RequestQueue, BlockPolicyBackpressuresUntilSpace) {
  ps::RequestQueue<int> queue(admission(1, ps::AdmissionPolicy::kBlock));
  queue.push(1);
  std::optional<int> popped;
  {
    std::jthread consumer([&] {
      std::this_thread::sleep_for(20ms);
      popped = queue.pop();
    });
    queue.push(2);  // blocks until the consumer frees the slot
  }
  EXPECT_EQ(popped.value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
}

TEST(RequestQueue, BlockedSubmitterHonoursCancellation) {
  ps::RequestQueue<int> queue(admission(1, ps::AdmissionPolicy::kBlock));
  queue.push(1);
  const pp::ExecutionContext ctx;
  std::jthread canceller([&] {
    std::this_thread::sleep_for(20ms);
    ctx.request_cancel();
  });
  EXPECT_THROW(queue.push(2, ctx), pp::OperationCancelled);
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(RequestQueue, CloseStopsAdmissionAndDrains) {
  ps::RequestQueue<int> queue(admission(4, ps::AdmissionPolicy::kBlock));
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_THROW(queue.push(3), ps::QueueClosed);
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_FALSE(queue.pop().has_value());      // drained
  EXPECT_FALSE(queue.pop_for(1ms).has_value());
}

TEST(RequestQueue, PopForTimesOutOnOpenEmptyQueue) {
  ps::RequestQueue<int> queue(admission(4, ps::AdmissionPolicy::kBlock));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.pop_for(20ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 15ms);
  EXPECT_FALSE(queue.closed());
}

TEST(RequestQueue, DeadlineAdmissionRunsOnInjectedClock) {
  polarice::util::VirtualClock clock;
  ps::RequestQueue<int> queue(
      admission(1, ps::AdmissionPolicy::kDeadline, 30ms), &clock);
  queue.push(1);

  std::atomic<bool> rejected{false}, admitted{false};
  std::jthread submitter([&] {
    try {
      queue.push(2);
      admitted = true;
    } catch (const ps::AdmissionRejected&) {
      rejected = true;
    }
  });

  // Real time passes; virtual time does not — the submitter must keep
  // waiting well past the 30ms wall-clock mark.
  std::this_thread::sleep_for(60ms);
  EXPECT_FALSE(rejected.load());
  EXPECT_FALSE(admitted.load());

  // Virtual time passes the deadline -> the blocked submitter is rejected
  // on its next admission tick.
  clock.advance(31ms);
  for (int i = 0; i < 2000 && !rejected.load(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(rejected.load());
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(queue.rejected(), 1u);
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(RequestQueue, ConfigValidation) {
  EXPECT_THROW(ps::RequestQueue<int>(
                   admission(0, ps::AdmissionPolicy::kBlock)),
               std::invalid_argument);
  EXPECT_THROW(ps::RequestQueue<int>(
                   admission(1, ps::AdmissionPolicy::kDeadline, -1ms)),
               std::invalid_argument);
  EXPECT_STREQ(ps::to_string(ps::AdmissionPolicy::kReject), "reject");
  EXPECT_STREQ(ps::to_string(ps::AdmissionPolicy::kBlock), "block");
  EXPECT_STREQ(ps::to_string(ps::AdmissionPolicy::kDeadline), "deadline");
}
