// RequestQueue admission semantics: FIFO transport, the three full-queue
// policies (reject / block / deadline), cancellation of blocked submitters,
// and the close() drain handshake.

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <thread>

#include "core/serve/request_queue.h"
#include "par/context.h"

namespace ps = polarice::core::serve;
namespace pp = polarice::par;

using namespace std::chrono_literals;

namespace {

ps::AdmissionConfig admission(std::size_t capacity, ps::AdmissionPolicy policy,
                              std::chrono::milliseconds deadline = 50ms) {
  ps::AdmissionConfig cfg;
  cfg.capacity = capacity;
  cfg.policy = policy;
  cfg.deadline = deadline;
  return cfg;
}

}  // namespace

TEST(RequestQueue, FifoTransportAndDepthTelemetry) {
  ps::RequestQueue<int> queue(admission(8, ps::AdmissionPolicy::kReject));
  for (int i = 0; i < 5; ++i) queue.push(i);
  EXPECT_EQ(queue.depth(), 5u);
  EXPECT_EQ(queue.peak_depth(), 5u);
  for (int i = 0; i < 5; ++i) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.peak_depth(), 5u);
  EXPECT_EQ(queue.rejected(), 0u);
}

TEST(RequestQueue, RejectPolicyFailsFastWhenFull) {
  ps::RequestQueue<int> queue(admission(2, ps::AdmissionPolicy::kReject));
  queue.push(1);
  queue.push(2);
  EXPECT_THROW(queue.push(3), ps::AdmissionRejected);
  EXPECT_THROW(queue.push(4), ps::AdmissionRejected);
  EXPECT_EQ(queue.rejected(), 2u);
  // Space frees -> admission resumes.
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_NO_THROW(queue.push(3));
}

TEST(RequestQueue, DeadlinePolicyWaitsThenRejects) {
  ps::RequestQueue<int> queue(
      admission(1, ps::AdmissionPolicy::kDeadline, 30ms));
  queue.push(1);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(queue.push(2), ps::AdmissionRejected);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 25ms);

  // A consumer freeing space within the deadline admits the request.
  std::jthread consumer([&] {
    std::this_thread::sleep_for(10ms);
    (void)queue.pop();
  });
  ps::RequestQueue<int>& q = queue;
  EXPECT_NO_THROW(q.push(3));
}

TEST(RequestQueue, BlockPolicyBackpressuresUntilSpace) {
  ps::RequestQueue<int> queue(admission(1, ps::AdmissionPolicy::kBlock));
  queue.push(1);
  std::optional<int> popped;
  {
    std::jthread consumer([&] {
      std::this_thread::sleep_for(20ms);
      popped = queue.pop();
    });
    queue.push(2);  // blocks until the consumer frees the slot
  }
  EXPECT_EQ(popped.value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
}

TEST(RequestQueue, BlockedSubmitterHonoursCancellation) {
  ps::RequestQueue<int> queue(admission(1, ps::AdmissionPolicy::kBlock));
  queue.push(1);
  const pp::ExecutionContext ctx;
  std::jthread canceller([&] {
    std::this_thread::sleep_for(20ms);
    ctx.request_cancel();
  });
  EXPECT_THROW(queue.push(2, ctx), pp::OperationCancelled);
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(RequestQueue, CloseStopsAdmissionAndDrains) {
  ps::RequestQueue<int> queue(admission(4, ps::AdmissionPolicy::kBlock));
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_THROW(queue.push(3), ps::QueueClosed);
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_FALSE(queue.pop().has_value());      // drained
  EXPECT_FALSE(queue.pop_for(1ms).has_value());
}

TEST(RequestQueue, PopForTimesOutOnOpenEmptyQueue) {
  ps::RequestQueue<int> queue(admission(4, ps::AdmissionPolicy::kBlock));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.pop_for(20ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 15ms);
  EXPECT_FALSE(queue.closed());
}

TEST(RequestQueue, ConfigValidation) {
  EXPECT_THROW(ps::RequestQueue<int>(
                   admission(0, ps::AdmissionPolicy::kBlock)),
               std::invalid_argument);
  EXPECT_THROW(ps::RequestQueue<int>(
                   admission(1, ps::AdmissionPolicy::kDeadline, -1ms)),
               std::invalid_argument);
  EXPECT_STREQ(ps::to_string(ps::AdmissionPolicy::kReject), "reject");
  EXPECT_STREQ(ps::to_string(ps::AdmissionPolicy::kBlock), "block");
  EXPECT_STREQ(ps::to_string(ps::AdmissionPolicy::kDeadline), "deadline");
}
