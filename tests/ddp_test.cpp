// Distributed-training substrate tests: channels, ring allreduce
// correctness for all world sizes, broadcast, collective deadline
// enforcement on a VirtualClock, tree-allreduce world-size invariance,
// distributed optimizer equivalence with single-device training, and the
// DGX device model.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>

#include "ddp/communicator.h"
#include "ddp/device_model.h"
#include "ddp/distributed_optimizer.h"
#include "ddp/distributed_trainer.h"
#include "nn/trainer.h"
#include "util/rng.h"
#include "util/virtual_clock.h"

namespace pd = polarice::ddp;
namespace pn = polarice::nn;
namespace pt = polarice::tensor;
using namespace std::chrono_literals;

namespace {
/// Runs `body(rank, comm)` on `n` rank threads and joins.
template <typename Body>
void run_world(int n, Body&& body) {
  auto world = std::make_shared<pd::World>(n);
  std::vector<std::jthread> threads;
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      pd::ThreadCommunicator comm(world, r);
      body(r, comm);
    });
  }
}
}  // namespace

TEST(Channel, FifoDelivery) {
  pd::Channel ch;
  ch.send({1.0f});
  ch.send({2.0f});
  EXPECT_EQ(ch.recv()[0], 1.0f);
  EXPECT_EQ(ch.recv()[0], 2.0f);
}

TEST(World, RejectsBadConstruction) {
  EXPECT_THROW(pd::World(0), std::invalid_argument);
  pd::World world(2);
  EXPECT_THROW(world.channel(2, 0), std::out_of_range);
  EXPECT_THROW(world.channel(0, -1), std::out_of_range);
}

TEST(World, BarrierSynchronizesAllRanks) {
  const int n = 4;
  std::atomic<int> arrived{0};
  std::atomic<bool> violated{false};
  run_world(n, [&](int, pd::Communicator& comm) {
    for (int round = 0; round < 10; ++round) {
      ++arrived;
      comm.barrier();
      // After the barrier, all n ranks of this round must have arrived.
      if (arrived.load() < n * (round + 1)) violated = true;
      comm.barrier();
    }
  });
  EXPECT_FALSE(violated.load());
}

// Regression (ISSUE 10 satellite): no in-process collective path may block
// forever. The waits below sit on a FROZEN VirtualClock — only an explicit
// advance past the deadline may release them, proving the timeout verdict
// is taken on the injectable clock, not on wall time.
TEST(Channel, RecvTimesOutTypedOnVirtualClock) {
  polarice::util::VirtualClock clock;
  pd::Channel ch;
  std::atomic<bool> timed_out{false};
  std::atomic<bool> returned{false};
  std::jthread waiter([&] {
    try {
      (void)ch.recv(clock.now() + 50ms, &clock);
    } catch (const pd::CollectiveTimeout&) {
      timed_out = true;
    }
    returned = true;
  });
  // Clock frozen short of the deadline: the waiter must still be blocked
  // no matter how much real time passes.
  std::this_thread::sleep_for(30ms);
  EXPECT_FALSE(returned.load());
  clock.advance(100ms);
  waiter.join();
  EXPECT_TRUE(timed_out.load());
}

TEST(World, BarrierTimesOutTypedWhenARankNeverArrives) {
  polarice::util::VirtualClock clock;
  pd::World world(2, &clock);  // rank 1 never shows up
  std::atomic<bool> timed_out{false};
  std::jthread waiter([&] {
    try {
      world.barrier(clock.now() + 10ms);
    } catch (const pd::CollectiveTimeout&) {
      timed_out = true;
    }
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(timed_out.load());
  clock.advance(50ms);
  waiter.join();
  EXPECT_TRUE(timed_out.load());

  // The timed-out arrival was withdrawn: a later, complete round still
  // needs both ranks and still succeeds.
  std::jthread a([&] { world.barrier(clock.now() + 10ms); });
  std::jthread b([&] { world.barrier(clock.now() + 10ms); });
}

TEST(ThreadCommunicator, RecvSurfacesCollectiveTimeoutFromOptions) {
  polarice::util::VirtualClock clock;
  auto world = std::make_shared<pd::World>(2, &clock);
  pd::CollectiveOptions options;
  options.clock = &clock;
  options.timeout = 20ms;
  pd::ThreadCommunicator comm(world, 0, options);
  std::jthread advancer([&] {
    std::this_thread::sleep_for(20ms);
    clock.advance(100ms);
  });
  EXPECT_THROW((void)comm.recv(1), pd::CollectiveTimeout);
}

TEST(Communicator, ErrorTypesAreOrdered) {
  // PeerLost and CollectiveTimeout must both be catchable as
  // CollectiveError — the rejoin trigger catches the base.
  EXPECT_THROW(throw pd::CollectiveTimeout("x"), pd::CollectiveError);
  EXPECT_THROW(throw pd::PeerLost("x"), pd::CollectiveError);
}

TEST(Communicator, SendRecvPointToPoint) {
  run_world(2, [](int rank, pd::Communicator& comm) {
    if (rank == 0) {
      comm.send(1, {3.5f, 4.5f});
      const auto echo = comm.recv(1);
      EXPECT_EQ(echo.size(), 1u);
      EXPECT_FLOAT_EQ(echo[0], 8.0f);
    } else {
      const auto msg = comm.recv(0);
      comm.send(0, {msg[0] + msg[1]});
    }
  });
}

// Property: ring allreduce equals the per-element sum for all world sizes
// and buffer lengths (including lengths not divisible by the world size).
class AllreduceSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AllreduceSweep, SumMatchesReference) {
  const auto [world_size, count] = GetParam();
  std::vector<std::vector<float>> buffers(world_size);
  std::vector<float> expected(count, 0.0f);
  polarice::util::Rng rng(1234 + world_size * 100 + count);
  for (int r = 0; r < world_size; ++r) {
    buffers[r].resize(count);
    for (int i = 0; i < count; ++i) {
      buffers[r][i] = static_cast<float>(rng.uniform(-1, 1));
      expected[i] += buffers[r][i];
    }
  }
  run_world(world_size, [&](int rank, pd::Communicator& comm) {
    comm.ring_allreduce_sum(buffers[rank].data(), buffers[rank].size());
  });
  for (int r = 0; r < world_size; ++r) {
    for (int i = 0; i < count; ++i) {
      ASSERT_NEAR(buffers[r][i], expected[i], 1e-4f)
          << "rank " << r << " index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorldsAndSizes, AllreduceSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8),
                       ::testing::Values(1, 7, 64, 1000)));

TEST(Allreduce, AverageDividesByWorldSize) {
  const int n = 4;
  std::vector<std::vector<float>> buffers(n, std::vector<float>{8.0f});
  run_world(n, [&](int rank, pd::Communicator& comm) {
    comm.ring_allreduce_average(buffers[rank].data(), 1);
  });
  for (int r = 0; r < n; ++r) EXPECT_FLOAT_EQ(buffers[r][0], 8.0f);
}

TEST(Allreduce, AllRanksBitwiseIdentical) {
  // The ring applies additions in the same order on every rank, so the
  // results must agree bitwise, not just approximately.
  const int n = 5, count = 333;
  std::vector<std::vector<float>> buffers(n);
  polarice::util::Rng rng(9);
  for (auto& b : buffers) {
    b.resize(count);
    for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  }
  run_world(n, [&](int rank, pd::Communicator& comm) {
    comm.ring_allreduce_sum(buffers[rank].data(), count);
  });
  for (int r = 1; r < n; ++r) EXPECT_EQ(buffers[r], buffers[0]);
}

TEST(Broadcast, CopiesRootToAllRanks) {
  const int n = 4;
  std::vector<std::vector<float>> buffers(n);
  for (int r = 0; r < n; ++r) buffers[r] = {float(r), float(r * 10)};
  run_world(n, [&](int rank, pd::Communicator& comm) {
    comm.broadcast(buffers[rank].data(), 2, /*root=*/2);
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_FLOAT_EQ(buffers[r][0], 2.0f);
    EXPECT_FLOAT_EQ(buffers[r][1], 20.0f);
  }
}

// The fleet trainer's determinism rests on this: the halving-doubling tree
// allreduce applies the identical canonical summation tree at every
// power-of-two world size, provided each rank pre-folds its contiguous
// block with tree_fold. 8 contributions reduced by 1, 2, 4, or 8 ranks
// must agree BITWISE.
TEST(TreeAllreduce, BitIdenticalAcrossWorldSizes) {
  const int contributions = 8, count = 257;
  std::vector<std::vector<float>> source(contributions);
  polarice::util::Rng rng(42);
  for (auto& b : source) {
    b.resize(count);
    for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  }

  std::vector<std::vector<float>> results;  // one per world size
  for (const int world_size : {1, 2, 4, 8}) {
    const int per_rank = contributions / world_size;
    std::vector<std::vector<float>> local(world_size);
    for (int r = 0; r < world_size; ++r) {
      // Each rank folds its contiguous block along the canonical tree...
      std::vector<std::vector<float>> block(
          source.begin() + r * per_rank,
          source.begin() + (r + 1) * per_rank);
      pd::tree_fold(block);
      local[r] = block[0];
    }
    // ...and the cross-rank reduce continues the same tree upward.
    run_world(world_size, [&](int rank, pd::Communicator& comm) {
      comm.tree_allreduce_sum(local[rank].data(), local[rank].size());
    });
    for (int r = 1; r < world_size; ++r) EXPECT_EQ(local[r], local[0]);
    results.push_back(local[0]);
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "world size index " << i;
  }
}

TEST(TreeAllreduce, RejectsNonPowerOfTwoWorlds) {
  run_world(3, [](int, pd::Communicator& comm) {
    std::vector<float> buf(4, 1.0f);
    EXPECT_THROW(comm.tree_allreduce_sum(buf.data(), buf.size()),
                 std::invalid_argument);
  });
}

TEST(TreeFold, ValidatesShape) {
  std::vector<std::vector<float>> three(3, std::vector<float>(2, 1.0f));
  EXPECT_THROW(pd::tree_fold(three), std::invalid_argument);
  std::vector<std::vector<float>> ragged{{1.0f, 2.0f}, {3.0f}};
  EXPECT_THROW(pd::tree_fold(ragged), std::invalid_argument);
}

TEST(DeviceModel, ReproducesTable3Shape) {
  pd::DeviceModelConfig cfg;  // defaults = fit to the paper
  const auto t1 = pd::simulate_training(cfg, 1);
  EXPECT_NEAR(t1.epoch_s, 5.5, 0.01);
  EXPECT_NEAR(t1.images_per_s, 585.9, 5.0);
  EXPECT_NEAR(t1.total_s, 275.0, 10.0);  // paper: 280.72 (incl. warmup)
  const auto t8 = pd::simulate_training(cfg, 8);
  EXPECT_NEAR(t8.speedup, 7.21, 0.35);   // paper: 7.21x
  EXPECT_NEAR(t8.epoch_s, 0.79, 0.05);
  EXPECT_NEAR(t8.images_per_s, 4248.0, 300.0);
  // Near-linear but sub-ideal, monotone increasing speedup.
  double last = 0.0;
  for (const int gpus : {1, 2, 4, 6, 8}) {
    const auto t = pd::simulate_training(cfg, gpus);
    EXPECT_GT(t.speedup, last);
    EXPECT_LE(t.speedup, gpus + 1e-9);
    last = t.speedup;
  }
}

TEST(DeviceModel, Validation) {
  pd::DeviceModelConfig cfg;
  cfg.epoch_1gpu_s = 0;
  EXPECT_THROW(pd::simulate_training(cfg, 1), std::invalid_argument);
  cfg = pd::DeviceModelConfig{};
  EXPECT_THROW(pd::simulate_training(cfg, 0), std::invalid_argument);
}

namespace {
pn::UNetConfig tiny_config() {
  pn::UNetConfig cfg;
  cfg.depth = 1;
  cfg.base_channels = 4;
  cfg.use_dropout = false;  // determinism for the equivalence test
  cfg.seed = 5;
  return cfg;
}

pn::SegDataset striped_dataset(int n_samples, int size, std::uint64_t seed) {
  polarice::util::Rng rng(seed);
  pn::SegDataset data;
  for (int s = 0; s < n_samples; ++s) {
    pn::SegSample sample;
    sample.image = pt::Tensor({3, size, size});
    sample.labels.resize(static_cast<std::size_t>(size) * size);
    for (int y = 0; y < size; ++y) {
      for (int x = 0; x < size; ++x) {
        const int cls = x * 3 / size;
        sample.labels[y * size + x] = cls;
        for (int c = 0; c < 3; ++c) {
          sample.image[(c * size + y) * size + x] =
              (c == cls ? 0.8f : 0.1f) +
              static_cast<float>(rng.uniform(-0.05, 0.05));
        }
      }
    }
    data.add(std::move(sample));
  }
  return data;
}
}  // namespace

TEST(DistributedOptimizer, GuardsNulls) {
  auto world = std::make_shared<pd::World>(1);
  pd::ThreadCommunicator comm(world, 0);
  EXPECT_THROW(pd::DistributedOptimizer(nullptr, &comm),
               std::invalid_argument);
  pt::Tensor v({2}), g({2});
  auto opt = std::make_unique<pn::Sgd>(
      std::vector<pn::Param>{{"p", &v, &g}}, 0.1f);
  EXPECT_THROW(pd::DistributedOptimizer(std::move(opt), nullptr),
               std::invalid_argument);
}

TEST(DistributedTrainer, TwoRanksMatchSingleDeviceWithDoubleBatch) {
  // Gradient averaging across 2 ranks with per-device batch B must equal a
  // single device with batch 2B (same init, shuffle off, no dropout).
  const auto data = striped_dataset(8, 8, 77);

  pn::UNet single(tiny_config());
  pn::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 8;  // global batch
  tc.learning_rate = 1e-3f;
  // Trainer shuffles; replicate its exact stream via shuffle-off distributed
  // run, so train single-device manually without shuffling:
  {
    pn::DataLoader loader(data, tc.batch_size, 0, /*shuffle=*/false);
    pn::Adam opt(single.params(), tc.learning_rate);
    pt::Tensor logits, probs, dlogits;
    pn::Batch batch;
    for (int e = 0; e < tc.epochs; ++e) {
      loader.start_epoch();
      while (loader.next(batch)) {
        opt.zero_grad();
        single.forward(batch.x, logits, true);
        pt::softmax_cross_entropy(logits, batch.targets, probs, dlogits);
        single.backward(dlogits);
        opt.step();
      }
    }
  }

  pn::UNet distributed(tiny_config());
  pd::DistributedTrainConfig dc;
  dc.world_size = 2;
  dc.epochs = 2;
  dc.batch_per_device = 4;  // 2 x 4 = global batch 8
  dc.learning_rate = 1e-3f;
  dc.shuffle = false;
  pd::train_distributed(distributed, data, dc);

  // Compare parameters. Note: gradient averaging = mean over the global
  // batch only when both halves contribute equally — with round-robin
  // sharding and batch 4 vs global batch 8 they do (pixel counts match).
  auto sp = single.params();
  auto dp = distributed.params();
  ASSERT_EQ(sp.size(), dp.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < sp.size(); ++i) {
    for (std::int64_t j = 0; j < sp[i].value->numel(); ++j) {
      max_diff = std::max(
          max_diff, std::abs(double((*sp[i].value)[j]) - (*dp[i].value)[j]));
    }
  }
  EXPECT_LT(max_diff, 5e-4);  // float summation-order differences only
}

TEST(DistributedTrainer, LossDecreasesAcrossEpochs) {
  const auto data = striped_dataset(8, 8, 88);
  pn::UNet model(tiny_config());
  pd::DistributedTrainConfig dc;
  dc.world_size = 4;
  dc.epochs = 6;
  dc.batch_per_device = 2;
  dc.learning_rate = 3e-3f;
  const auto stats = pd::train_distributed(model, data, dc);
  ASSERT_EQ(stats.epoch_loss.size(), 6u);
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());
  EXPECT_GT(stats.images_per_s, 0.0);
  EXPECT_EQ(stats.images_processed, 8 * 6);  // all samples, every epoch
}

TEST(DistributedTrainer, Validation) {
  const auto data = striped_dataset(2, 8, 99);
  pn::UNet model(tiny_config());
  pd::DistributedTrainConfig dc;
  dc.world_size = 0;
  EXPECT_THROW(pd::train_distributed(model, data, dc), std::invalid_argument);
  dc = pd::DistributedTrainConfig{};
  dc.world_size = 4;  // more ranks than samples
  EXPECT_THROW(pd::train_distributed(model, data, dc), std::invalid_argument);
}
