// Corpus preparation tests: scene-level processing consistency, tiling
// bookkeeping, determinism, and quality of every label variant.

#include <gtest/gtest.h>

#include "core/corpus.h"
#include "metrics/metrics.h"
#include "par/thread_pool.h"
#include "s2/scene.h"

namespace pc = polarice::core;
namespace ps = polarice::s2;

namespace {
pc::CorpusConfig small_corpus() {
  pc::CorpusConfig cfg;
  cfg.acquisition.num_scenes = 4;
  cfg.acquisition.scene_size = 256;
  cfg.acquisition.tile_size = 64;
  cfg.acquisition.cloudy_scene_fraction = 0.5;
  cfg.acquisition.seed = 808;
  return cfg;
}
}  // namespace

TEST(Corpus, TileCountAndIndexing) {
  const auto cfg = small_corpus();
  const auto tiles = pc::prepare_corpus(cfg);
  ASSERT_EQ(tiles.size(), 64u);  // 4 scenes x 16 tiles
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    const auto& t = tiles[i];
    EXPECT_EQ(t.scene_index, static_cast<int>(i / 16));
    EXPECT_EQ(t.rgb.width(), 64);
    EXPECT_TRUE(t.rgb.same_shape(t.rgb_filtered));
    EXPECT_TRUE(t.rgb.same_shape(t.rgb_clean));
    EXPECT_EQ(t.truth.channels(), 1);
    EXPECT_TRUE(t.truth.same_shape(t.auto_labels));
    EXPECT_TRUE(t.truth.same_shape(t.manual_labels));
  }
}

TEST(Corpus, DeterministicAndPoolInvariant) {
  const auto cfg = small_corpus();
  polarice::par::ThreadPool pool(4);
  const auto seq = pc::prepare_corpus(cfg);
  const auto par = pc::prepare_corpus(cfg, polarice::par::ExecutionContext(&pool));
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].rgb, par[i].rgb);
    EXPECT_EQ(seq[i].rgb_filtered, par[i].rgb_filtered);
    EXPECT_EQ(seq[i].auto_labels, par[i].auto_labels);
    EXPECT_EQ(seq[i].manual_labels, par[i].manual_labels);
  }
}

TEST(Corpus, CleanScenesPassThroughAlmostUnchanged) {
  auto cfg = small_corpus();
  cfg.acquisition.cloudy_scene_fraction = 0.0;
  const auto tiles = pc::prepare_corpus(cfg);
  for (const auto& t : tiles) {
    EXPECT_DOUBLE_EQ(t.cloud_fraction, 0.0);
    // Auto labels on clean scenes match ground truth nearly everywhere.
    std::vector<int> truth, pred;
    for (const auto v : t.truth) truth.push_back(v);
    for (const auto v : t.auto_labels) pred.push_back(v);
    EXPECT_GT(polarice::metrics::pixel_accuracy(truth, pred), 0.98);
  }
}

TEST(Corpus, CloudyScenesCarryCloudFractionMetadata) {
  auto cfg = small_corpus();
  cfg.acquisition.cloudy_scene_fraction = 1.0;
  const auto tiles = pc::prepare_corpus(cfg);
  double covered_tiles = 0;
  for (const auto& t : tiles) covered_tiles += t.cloud_fraction > 0.05;
  EXPECT_GT(covered_tiles, tiles.size() / 4.0);
}

TEST(Corpus, SceneLevelFilterQualityOnCloudyTiles) {
  // prepare_corpus filters at scene level (the paper's order of operations,
  // §IV.B.2) and amortizes one filter pass per scene. This must not cost
  // label quality: scene-level auto-labels on heavily cloudy tiles stay
  // within a couple of points of the per-tile-filtered alternative, and
  // both stay strong in absolute terms.
  auto cfg = small_corpus();
  cfg.acquisition.cloudy_scene_fraction = 1.0;
  const auto corpus = pc::prepare_corpus(cfg);

  const pc::AutoLabeler per_tile_labeler;  // filter applied per 64px tile
  double scene_level = 0.0, per_tile = 0.0;
  std::size_t counted = 0;
  for (const auto& t : corpus) {
    if (t.cloud_fraction < 0.2) continue;
    std::vector<int> truth, scene_pred, tile_pred;
    for (const auto v : t.truth) truth.push_back(v);
    for (const auto v : t.auto_labels) scene_pred.push_back(v);
    const auto labeled = per_tile_labeler.label(t.rgb);
    for (const auto v : labeled.labels) tile_pred.push_back(v);
    scene_level += polarice::metrics::pixel_accuracy(truth, scene_pred);
    per_tile += polarice::metrics::pixel_accuracy(truth, tile_pred);
    ++counted;
  }
  ASSERT_GT(counted, 0u);
  EXPECT_GT(scene_level / counted, 0.95);
  EXPECT_GT(scene_level / counted, per_tile / counted - 0.02);
}

TEST(Corpus, ManualLabelsDifferAcrossScenes) {
  // Each scene gets its own annotator stream; jitter patterns must differ.
  const auto tiles = pc::prepare_corpus(small_corpus());
  // Compare two tiles at the same grid position from different scenes: the
  // *disagreement masks* vs truth should not be identical (they would be if
  // the annotator stream were reused).
  const auto& a = tiles[0];
  const auto& b = tiles[16];
  int a_errors = 0, b_errors = 0;
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      a_errors += a.manual_labels.at(x, y) != a.truth.at(x, y);
      b_errors += b.manual_labels.at(x, y) != b.truth.at(x, y);
    }
  }
  // Both annotations are imperfect but not identical in their error counts
  // (probability of exact tie is negligible for independent streams).
  EXPECT_GT(a_errors + b_errors, 0);
}

TEST(Corpus, ValidatesAcquisition) {
  auto cfg = small_corpus();
  cfg.acquisition.tile_size = 48;  // 256 % 48 != 0
  EXPECT_THROW(pc::prepare_corpus(cfg), std::invalid_argument);
}
