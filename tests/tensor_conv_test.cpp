// Convolution-primitive tests: conv2d vs a direct reference, finite
// difference gradient checks, pooling/upsampling adjoint properties, concat
// round-trips, softmax/cross-entropy math.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "par/thread_pool.h"
#include "tensor/conv.h"
#include "util/rng.h"

namespace pt = polarice::tensor;
namespace pp = polarice::par;

namespace {
pt::Tensor random_tensor(std::vector<int> shape, std::uint64_t seed,
                         double scale = 1.0) {
  polarice::util::Rng rng(seed);
  pt::Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-scale, scale));
  }
  return t;
}

// Direct convolution reference (no im2col).
pt::Tensor ref_conv2d(const pt::Tensor& x, const pt::Tensor& w,
                      const pt::Tensor& b, const pt::Conv2dSpec& s) {
  const int batch = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const int oh = s.out_h(in_h), ow = s.out_w(in_w);
  pt::Tensor y({batch, s.out_ch, oh, ow});
  for (int n = 0; n < batch; ++n) {
    for (int oc = 0; oc < s.out_ch; ++oc) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          double acc = b[oc];
          for (int ic = 0; ic < s.in_ch; ++ic) {
            for (int ki = 0; ki < s.kh; ++ki) {
              for (int kj = 0; kj < s.kw; ++kj) {
                const int iy = oy * s.stride - s.pad_top + ki;
                const int ix = ox * s.stride - s.pad_left + kj;
                if (iy < 0 || iy >= in_h || ix < 0 || ix >= in_w) continue;
                const float wv =
                    w[((static_cast<std::int64_t>(oc) * s.in_ch + ic) * s.kh +
                       ki) * s.kw + kj];
                acc += double(wv) * x.at4(n, ic, iy, ix);
              }
            }
          }
          y.at4(n, oc, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

// Loss used by the finite-difference checks: weighted sum of outputs with
// fixed pseudo-random weights (exposes every output element).
float probe_loss(const pt::Tensor& y, const pt::Tensor& probe) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) acc += double(y[i]) * probe[i];
  return static_cast<float>(acc);
}
}  // namespace

struct ConvCase {
  int batch, in_ch, out_ch, h, w, k;
  bool same;
  int stride;
};

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSweep, ForwardMatchesDirectReference) {
  const auto c = GetParam();
  const auto spec = c.same ? pt::Conv2dSpec::same(c.in_ch, c.out_ch, c.k)
                           : pt::Conv2dSpec::valid(c.in_ch, c.out_ch, c.k);
  auto spec2 = spec;
  spec2.stride = c.stride;
  const auto x = random_tensor({c.batch, c.in_ch, c.h, c.w}, 1);
  const auto w =
      random_tensor({c.out_ch, c.in_ch, c.k, c.k}, 2, 0.5);
  const auto b = random_tensor({c.out_ch}, 3, 0.1);
  pt::Tensor y;
  pt::ConvScratch scratch;
  pp::ThreadPool pool(4);
  pt::conv2d_forward(x, w, b, y, spec2, &pool, scratch);
  const auto want = ref_conv2d(x, w, b, spec2);
  ASSERT_TRUE(y.same_shape(want)) << y.shape_str() << " vs " << want.shape_str();
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    ASSERT_NEAR(y[i], want[i], 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvSweep,
    ::testing::Values(ConvCase{1, 1, 1, 5, 5, 3, true, 1},
                      ConvCase{2, 3, 4, 8, 8, 3, true, 1},
                      ConvCase{1, 2, 3, 6, 10, 5, true, 1},
                      ConvCase{2, 2, 2, 8, 8, 2, true, 1},   // even kernel
                      ConvCase{1, 3, 2, 7, 7, 3, false, 1},  // valid
                      ConvCase{1, 2, 2, 8, 8, 3, false, 2},  // stride 2
                      ConvCase{2, 32, 8, 12, 12, 3, true, 1},  // K > one panel
                      ConvCase{3, 1, 8, 4, 4, 1, true, 1})); // 1x1

TEST(Conv2dBackward, FiniteDifferenceGradients) {
  const auto spec = pt::Conv2dSpec::same(2, 3, 3);
  const auto x = random_tensor({2, 2, 5, 5}, 10);
  const auto w = random_tensor({3, 2, 3, 3}, 11, 0.5);
  const auto b = random_tensor({3}, 12, 0.1);
  const auto probe = random_tensor({2, 3, 5, 5}, 13);

  pt::ConvScratch scratch;
  pt::Tensor y;
  pt::conv2d_forward(x, w, b, y, spec, nullptr, scratch);

  // Analytic gradients with dy = probe.
  pt::Tensor dx, dw(w.shape()), db(b.shape());
  pt::conv2d_backward(x, w, probe, &dx, dw, db, spec, nullptr, scratch);

  const float eps = 1e-2f;
  // Check dw on a sample of coordinates.
  for (const std::int64_t idx : {0L, 7L, 23L, 53L}) {
    auto wp = w;
    wp[idx] += eps;
    auto wm = w;
    wm[idx] -= eps;
    pt::Tensor yp, ym;
    pt::conv2d_forward(x, wp, b, yp, spec, nullptr, scratch);
    pt::conv2d_forward(x, wm, b, ym, spec, nullptr, scratch);
    const float numeric =
        (probe_loss(yp, probe) - probe_loss(ym, probe)) / (2 * eps);
    EXPECT_NEAR(dw[idx], numeric, 5e-2f) << "dw index " << idx;
  }
  // Check db.
  for (int oc = 0; oc < 3; ++oc) {
    auto bp = b;
    bp[oc] += eps;
    auto bm = b;
    bm[oc] -= eps;
    pt::Tensor yp, ym;
    pt::conv2d_forward(x, w, bp, yp, spec, nullptr, scratch);
    pt::conv2d_forward(x, w, bm, ym, spec, nullptr, scratch);
    const float numeric =
        (probe_loss(yp, probe) - probe_loss(ym, probe)) / (2 * eps);
    EXPECT_NEAR(db[oc], numeric, 5e-2f) << "db index " << oc;
  }
  // Check dx on a sample of coordinates.
  for (const std::int64_t idx : {0L, 13L, 49L, 99L}) {
    auto xp = x;
    xp[idx] += eps;
    auto xm = x;
    xm[idx] -= eps;
    pt::Tensor yp, ym;
    pt::conv2d_forward(xp, w, b, yp, spec, nullptr, scratch);
    pt::conv2d_forward(xm, w, b, ym, spec, nullptr, scratch);
    const float numeric =
        (probe_loss(yp, probe) - probe_loss(ym, probe)) / (2 * eps);
    EXPECT_NEAR(dx[idx], numeric, 5e-2f) << "dx index " << idx;
  }
}

// The implicit-GEMM backward (virtual-A dW, virtual-C col2im dX) against
// the seed's materializing reference. Reduction order differs (blocked
// k-panels + batched samples vs per-sample scalar dots), so the comparison
// is tight-tolerance, not bitwise.
class BackwardSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(BackwardSweep, MatchesMaterializedReference) {
  const auto c = GetParam();
  auto spec = c.same ? pt::Conv2dSpec::same(c.in_ch, c.out_ch, c.k)
                     : pt::Conv2dSpec::valid(c.in_ch, c.out_ch, c.k);
  spec.stride = c.stride;
  const auto x = random_tensor({c.batch, c.in_ch, c.h, c.w}, 31);
  const auto w = random_tensor({c.out_ch, c.in_ch, c.k, c.k}, 32, 0.5);
  const auto dy = random_tensor(
      {c.batch, c.out_ch, spec.out_h(c.h), spec.out_w(c.w)}, 33);

  pt::ConvScratch s_ref, s_new;
  pt::Tensor dx_ref, dw_ref(w.shape()), db_ref({c.out_ch});
  pt::conv2d_backward_ref(x, w, dy, &dx_ref, dw_ref, db_ref, spec, s_ref);

  for (const bool pooled : {false, true}) {
    pp::ThreadPool pool(4);
    pt::Tensor dx, dw(w.shape()), db({c.out_ch});
    pt::conv2d_backward(x, w, dy, &dx, dw, db, spec,
                        pooled ? &pool : nullptr, s_new);
    ASSERT_TRUE(dx.same_shape(dx_ref));
    for (std::int64_t i = 0; i < dw.numel(); ++i) {
      ASSERT_NEAR(dw[i], dw_ref[i], 2e-3f) << "dw " << i << " pooled=" << pooled;
    }
    for (std::int64_t i = 0; i < db.numel(); ++i) {
      ASSERT_NEAR(db[i], db_ref[i], 2e-3f) << "db " << i;
    }
    for (std::int64_t i = 0; i < dx.numel(); ++i) {
      ASSERT_NEAR(dx[i], dx_ref[i], 2e-3f) << "dx " << i << " pooled=" << pooled;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BackwardSweep,
    ::testing::Values(ConvCase{1, 1, 1, 5, 5, 3, true, 1},
                      ConvCase{2, 3, 4, 8, 8, 3, true, 1},
                      ConvCase{4, 2, 3, 6, 10, 5, true, 1},
                      ConvCase{2, 2, 2, 8, 8, 2, true, 1},   // even kernel
                      ConvCase{1, 3, 2, 7, 7, 3, false, 1},  // valid
                      ConvCase{3, 2, 2, 8, 8, 3, false, 2},  // stride 2
                      ConvCase{2, 32, 8, 12, 12, 3, true, 1},  // K > one panel
                      ConvCase{3, 1, 8, 4, 4, 1, true, 1})); // 1x1

// The pooled backward must be deterministic: channel-grouped col2im
// delivery and elementwise dW accumulation make the result independent of
// the worker count, bit for bit.
TEST(Conv2dBackward, PooledBitIdenticalToSequential) {
  const auto spec = pt::Conv2dSpec::same(3, 5, 3);
  const auto x = random_tensor({3, 3, 8, 8}, 41);
  const auto w = random_tensor({5, 3, 3, 3}, 42, 0.5);
  const auto dy = random_tensor({3, 5, 8, 8}, 43);
  pt::ConvScratch s;
  pt::Tensor dx0, dw0(w.shape()), db0({5});
  pt::conv2d_backward(x, w, dy, &dx0, dw0, db0, spec, nullptr, s);
  pp::ThreadPool pool(8);
  pt::Tensor dx1, dw1(w.shape()), db1({5});
  pt::conv2d_backward(x, w, dy, &dx1, dw1, db1, spec, &pool, s);
  for (std::int64_t i = 0; i < dw0.numel(); ++i) EXPECT_EQ(dw0[i], dw1[i]);
  for (std::int64_t i = 0; i < db0.numel(); ++i) EXPECT_EQ(db0[i], db1[i]);
  for (std::int64_t i = 0; i < dx0.numel(); ++i) EXPECT_EQ(dx0[i], dx1[i]);
}

// Fusing a 0/1 dY mask into the packers is exact: it must equal running the
// backward on a pre-masked dY tensor, bit for bit.
TEST(Conv2dBackward, DyMaskMatchesPremaskedGradient) {
  const auto spec = pt::Conv2dSpec::same(2, 4, 3);
  const auto x = random_tensor({2, 2, 6, 6}, 51);
  const auto w = random_tensor({4, 2, 3, 3}, 52, 0.5);
  const auto dy = random_tensor({2, 4, 6, 6}, 53);
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(dy.numel()));
  polarice::util::Rng rng(54);
  for (auto& m : mask) m = rng.uniform_f() < 0.6f;
  auto premasked = dy;
  for (std::int64_t i = 0; i < dy.numel(); ++i) {
    premasked[i] = mask[static_cast<std::size_t>(i)] ? dy[i] : 0.0f;
  }

  pt::ConvScratch s;
  pt::Tensor dx_m, dw_m(w.shape()), db_m({4});
  pt::conv2d_backward(x, w, dy, &dx_m, dw_m, db_m, spec, nullptr, s,
                      mask.data());
  pt::Tensor dx_p, dw_p(w.shape()), db_p({4});
  pt::conv2d_backward(x, w, premasked, &dx_p, dw_p, db_p, spec, nullptr, s);
  for (std::int64_t i = 0; i < dw_m.numel(); ++i) EXPECT_EQ(dw_m[i], dw_p[i]);
  for (std::int64_t i = 0; i < db_m.numel(); ++i) EXPECT_EQ(db_m[i], db_p[i]);
  for (std::int64_t i = 0; i < dx_m.numel(); ++i) EXPECT_EQ(dx_m[i], dx_p[i]);
}

// The fused bias+ReLU epilogue must be bit-identical to conv2d_forward
// followed by an elementwise ReLU, and the recorded mask must match the
// pre-activation sign.
TEST(Conv2dForward, FusedReluEpilogueBitIdenticalToSeparatePass) {
  const auto spec = pt::Conv2dSpec::same(3, 6, 3);
  const auto x = random_tensor({2, 3, 8, 8}, 61);
  const auto w = random_tensor({6, 3, 3, 3}, 62, 0.5);
  const auto b = random_tensor({6}, 63, 0.1);
  pt::ConvScratch s;
  pt::Tensor plain;
  pt::conv2d_forward(x, w, b, plain, spec, nullptr, s);

  pt::Tensor fused;
  std::vector<std::uint8_t> mask(
      static_cast<std::size_t>(2 * 6 * 8 * 8), 255);
  pt::ConvFusion fuse;
  fuse.relu = true;
  fuse.relu_mask = mask.data();
  pt::conv2d_forward(x, w, b, fused, spec, nullptr, s, fuse);
  for (std::int64_t i = 0; i < plain.numel(); ++i) {
    const float want = plain[i] > 0.0f ? plain[i] : 0.0f;
    EXPECT_EQ(fused[i], want) << "at " << i;
    EXPECT_EQ(mask[static_cast<std::size_t>(i)],
              static_cast<std::uint8_t>(plain[i] > 0.0f))
        << "mask at " << i;
  }
}

// Batching the N dimension across the GEMM must not change a single bit vs
// running the samples one at a time.
TEST(Conv2dForward, BatchedNBitIdenticalToPerSampleLoop) {
  const auto spec = pt::Conv2dSpec::same(3, 4, 3);
  const auto x = random_tensor({5, 3, 6, 10}, 71);
  const auto w = random_tensor({4, 3, 3, 3}, 72, 0.5);
  const auto b = random_tensor({4}, 73, 0.1);
  pt::ConvScratch s;
  pt::Tensor batched;
  pt::conv2d_forward(x, w, b, batched, spec, nullptr, s);

  for (int n = 0; n < 5; ++n) {
    pt::Tensor xn({1, 3, 6, 10});
    std::copy(x.data() + x.offset4(n, 0, 0, 0),
              x.data() + x.offset4(n, 0, 0, 0) + xn.numel(), xn.data());
    pt::Tensor yn;
    pt::conv2d_forward(xn, w, b, yn, spec, nullptr, s);
    for (std::int64_t i = 0; i < yn.numel(); ++i) {
      ASSERT_EQ(yn[i], batched[batched.offset4(n, 0, 0, 0) + i])
          << "sample " << n << " elem " << i;
    }
  }
}

TEST(Conv2dBackward, NullDxSkipsInputGradient) {
  const auto spec = pt::Conv2dSpec::same(1, 2, 3);
  const auto x = random_tensor({1, 1, 4, 4}, 20);
  const auto w = random_tensor({2, 1, 3, 3}, 21);
  const auto dy = random_tensor({1, 2, 4, 4}, 22);
  pt::Tensor dw(w.shape()), db({2});
  pt::ConvScratch s1;
  EXPECT_NO_THROW(
      pt::conv2d_backward(x, w, dy, nullptr, dw, db, spec, nullptr, s1));
  EXPECT_GT(dw.max_abs(), 0.0f);
}

TEST(MaxPool, ForwardPicksMaximaAndRecordsArgmax) {
  pt::Tensor x({1, 1, 4, 4});
  // Quadrants with distinct maxima in distinct corners.
  const float vals[16] = {9, 1, 2, 8,
                          1, 1, 1, 1,
                          1, 1, 3, 1,
                          1, 5, 1, 7};
  for (int i = 0; i < 16; ++i) x[i] = vals[i];
  pt::Tensor y;
  std::vector<std::uint8_t> argmax;
  pt::maxpool2x2_forward(x, y, argmax, nullptr);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 9);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 8);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 0), 5);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 7);
  EXPECT_EQ(argmax[0], 0);  // top-left
  EXPECT_EQ(argmax[1], 1);  // top-right
  EXPECT_EQ(argmax[2], 3);  // bottom-right... (5 at bottom-left)
  EXPECT_EQ(argmax[2], 3);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  auto x = random_tensor({2, 3, 6, 6}, 30);
  pt::Tensor y;
  std::vector<std::uint8_t> argmax;
  pt::maxpool2x2_forward(x, y, argmax, nullptr);
  auto dy = random_tensor(y.shape(), 31);
  pt::Tensor dx;
  pt::maxpool2x2_backward(dy, argmax, dx, nullptr);
  // Sum preserved (each dy value goes to exactly one dx slot).
  EXPECT_NEAR(dx.sum(), dy.sum(), 1e-4f);
  // Nonzero entries count <= number of pooled outputs.
  std::int64_t nonzero = 0;
  for (std::int64_t i = 0; i < dx.numel(); ++i) nonzero += dx[i] != 0.0f;
  EXPECT_LE(nonzero, dy.numel());
}

TEST(MaxPool, RejectsOddSpatialSize) {
  pt::Tensor x({1, 1, 5, 4});
  pt::Tensor y;
  std::vector<std::uint8_t> argmax;
  EXPECT_THROW(pt::maxpool2x2_forward(x, y, argmax, nullptr),
               std::invalid_argument);
}

TEST(Upsample, ForwardReplicates2x2Blocks) {
  pt::Tensor x({1, 1, 2, 2});
  x[0] = 1; x[1] = 2; x[2] = 3; x[3] = 4;
  pt::Tensor y;
  pt::upsample2x_forward(x, y, nullptr);
  EXPECT_EQ(y.dim(2), 4);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 1);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 1);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 1);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 3, 3), 4);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 2), 2);
}

TEST(Upsample, BackwardIsAdjointOfForward) {
  // <up(x), y> == <x, up_backward(y)> — the defining adjoint identity.
  const auto x = random_tensor({2, 2, 3, 3}, 40);
  const auto y = random_tensor({2, 2, 6, 6}, 41);
  pt::Tensor up;
  pt::upsample2x_forward(x, up, nullptr);
  pt::Tensor down;
  pt::upsample2x_backward(y, down, nullptr);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < up.numel(); ++i) lhs += double(up[i]) * y[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += double(x[i]) * down[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(ConcatSplit, RoundTrip) {
  const auto a = random_tensor({2, 3, 4, 4}, 50);
  const auto b = random_tensor({2, 5, 4, 4}, 51);
  pt::Tensor y;
  pt::concat_channels(a, b, y);
  EXPECT_EQ(y.dim(1), 8);
  EXPECT_FLOAT_EQ(y.at4(1, 2, 3, 3), a.at4(1, 2, 3, 3));
  EXPECT_FLOAT_EQ(y.at4(1, 4, 0, 0), b.at4(1, 1, 0, 0));
  pt::Tensor da, db;
  pt::split_channels(y, 3, da, db);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(da[i], a[i]);
  for (std::int64_t i = 0; i < b.numel(); ++i) EXPECT_FLOAT_EQ(db[i], b[i]);
}

TEST(ConcatSplit, RejectsMismatchedShapes) {
  pt::Tensor a({1, 2, 4, 4}), b({1, 2, 5, 4}), y;
  EXPECT_THROW(pt::concat_channels(a, b, y), std::invalid_argument);
  pt::Tensor da, db;
  pt::Tensor c({1, 4, 4, 4});
  EXPECT_THROW(pt::split_channels(c, 0, da, db), std::invalid_argument);
  EXPECT_THROW(pt::split_channels(c, 4, da, db), std::invalid_argument);
}

TEST(Softmax, SumsToOnePerPixel) {
  const auto logits = random_tensor({2, 4, 3, 3}, 60, 3.0);
  pt::Tensor probs;
  pt::softmax_channel(logits, probs);
  for (int n = 0; n < 2; ++n) {
    for (int y = 0; y < 3; ++y) {
      for (int x = 0; x < 3; ++x) {
        double sum = 0.0;
        for (int c = 0; c < 4; ++c) {
          const float p = probs.at4(n, c, y, x);
          EXPECT_GE(p, 0.0f);
          sum += p;
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
      }
    }
  }
}

TEST(Softmax, StableUnderLargeLogits) {
  auto logits = pt::Tensor({1, 3, 1, 1});
  logits[0] = 1000.0f;
  logits[1] = 1001.0f;
  logits[2] = 999.0f;
  pt::Tensor probs;
  pt::softmax_channel(logits, probs);
  EXPECT_FALSE(probs.has_non_finite());
  EXPECT_GT(probs[1], probs[0]);
  EXPECT_GT(probs[0], probs[2]);
}

TEST(CrossEntropy, KnownValueForUniformLogits) {
  pt::Tensor logits({1, 3, 2, 2});  // all-zero logits -> uniform probs
  std::vector<int> targets = {0, 1, 2, 0};
  pt::Tensor probs, dlogits;
  const float loss = pt::softmax_cross_entropy(logits, targets, probs, dlogits);
  EXPECT_NEAR(loss, std::log(3.0f), 1e-5f);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  auto logits = random_tensor({1, 3, 2, 2}, 70, 2.0);
  const std::vector<int> targets = {0, 2, 1, 1};
  pt::Tensor probs, dlogits;
  pt::softmax_cross_entropy(logits, targets, probs, dlogits);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    auto lp = logits;
    lp[i] += eps;
    auto lm = logits;
    lm[i] -= eps;
    pt::Tensor p2, d2;
    const float up = pt::softmax_cross_entropy(lp, targets, p2, d2);
    const float dn = pt::softmax_cross_entropy(lm, targets, p2, d2);
    EXPECT_NEAR(dlogits[i], (up - dn) / (2 * eps), 1e-3f) << "logit " << i;
  }
}

TEST(CrossEntropy, IgnoreIndexExcludesPixels) {
  pt::Tensor logits({1, 2, 1, 2});
  logits.at4(0, 0, 0, 0) = 5.0f;  // pixel 0 strongly class 0
  logits.at4(0, 1, 0, 1) = 5.0f;  // pixel 1 strongly class 1
  pt::Tensor probs, dlogits;
  // Ignore pixel 1; only pixel 0 (correct) contributes -> small loss.
  const float loss =
      pt::softmax_cross_entropy(logits, {0, -1}, probs, dlogits);
  EXPECT_LT(loss, 0.1f);
  // Gradient at ignored pixel must be exactly zero.
  EXPECT_FLOAT_EQ(dlogits.at4(0, 0, 0, 1), 0.0f);
  EXPECT_FLOAT_EQ(dlogits.at4(0, 1, 0, 1), 0.0f);
}

TEST(CrossEntropy, AllIgnoredReturnsZero) {
  pt::Tensor logits({1, 2, 1, 2});
  pt::Tensor probs, dlogits;
  EXPECT_FLOAT_EQ(
      pt::softmax_cross_entropy(logits, {-1, -1}, probs, dlogits), 0.0f);
}

TEST(CrossEntropy, RejectsBadTargets) {
  pt::Tensor logits({1, 2, 1, 2});
  pt::Tensor probs, dlogits;
  EXPECT_THROW(pt::softmax_cross_entropy(logits, {0}, probs, dlogits),
               std::invalid_argument);
  EXPECT_THROW(pt::softmax_cross_entropy(logits, {0, 2}, probs, dlogits),
               std::invalid_argument);
}

TEST(ArgmaxChannel, PicksMostLikelyClass) {
  pt::Tensor probs({1, 3, 1, 2});
  probs.at4(0, 0, 0, 0) = 0.2f;
  probs.at4(0, 1, 0, 0) = 0.7f;
  probs.at4(0, 2, 0, 0) = 0.1f;
  probs.at4(0, 0, 0, 1) = 0.5f;
  probs.at4(0, 1, 0, 1) = 0.2f;
  probs.at4(0, 2, 0, 1) = 0.3f;
  const auto pred = pt::argmax_channel(probs);
  ASSERT_EQ(pred.size(), 2u);
  EXPECT_EQ(pred[0], 1);
  EXPECT_EQ(pred[1], 0);
}

// Regression: the stride-1 im2col fast path must clamp its zero-fill to the
// output row even when the kernel is wider than the padded image (shift >
// ow). Unclamped, the leading fill spilled into the next (c,ki,kj) panel —
// a cross-thread write now that im2col is row-parallel.
TEST(Im2col, WideKernelTinyImageStaysInRowBounds) {
  pt::Conv2dSpec spec;
  spec.in_ch = 1;
  spec.out_ch = 1;
  spec.kh = 1;
  spec.kw = 4;
  spec.stride = 1;
  spec.pad_top = 0;
  spec.pad_bottom = 0;
  spec.pad_left = 3;
  spec.pad_right = 0;
  const int in_h = 2, in_w = 1;
  const int oh = spec.out_h(in_h), ow = spec.out_w(in_w);
  ASSERT_EQ(oh, 2);
  ASSERT_EQ(ow, 1);
  const std::vector<float> x = {1.5f, -2.5f};

  // Reference: col[(c,ki,kj)][oy,ox] per the im2col definition.
  std::vector<float> want(static_cast<std::size_t>(spec.col_rows()) * oh * ow);
  for (int row = 0; row < spec.col_rows(); ++row) {
    const int kj = row % spec.kw;
    const int ki = (row / spec.kw) % spec.kh;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        const int iy = oy * spec.stride - spec.pad_top + ki;
        const int ix = ox * spec.stride - spec.pad_left + kj;
        const bool in = iy >= 0 && iy < in_h && ix >= 0 && ix < in_w;
        want[(static_cast<std::size_t>(row) * oh + oy) * ow + ox] =
            in ? x[static_cast<std::size_t>(iy) * in_w + ix] : 0.0f;
      }
    }
  }

  std::vector<float> col(want.size(), 99.0f);
  pt::im2col(x.data(), in_h, in_w, spec, col.data());
  EXPECT_EQ(col, want);

  pp::ThreadPool pool(4);
  std::vector<float> col_par(want.size(), 99.0f);
  pt::im2col(x.data(), in_h, in_w, spec, col_par.data(), &pool);
  EXPECT_EQ(col_par, want);
}
