// Connected components + lead detection tests.

#include <gtest/gtest.h>

#include "core/autolabel.h"
#include "core/leads.h"
#include "img/components.h"
#include "s2/scene.h"

namespace pc = polarice::core;
namespace pi = polarice::img;
namespace ps = polarice::s2;

TEST(Components, EmptyMaskHasNoComponents) {
  pi::ImageU8 mask(8, 8, 1, 0);
  std::vector<std::int32_t> ids;
  const auto stats = pi::label_components(mask, ids);
  EXPECT_TRUE(stats.empty());
  for (const auto id : ids) EXPECT_EQ(id, 0);
}

TEST(Components, SingleBlobGeometry) {
  pi::ImageU8 mask(10, 10, 1, 0);
  for (int y = 2; y <= 4; ++y) {
    for (int x = 3; x <= 7; ++x) mask.at(x, y) = 255;
  }
  std::vector<std::int32_t> ids;
  const auto stats = pi::label_components(mask, ids);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].area, 15u);
  EXPECT_EQ(stats[0].min_x, 3);
  EXPECT_EQ(stats[0].max_x, 7);
  EXPECT_EQ(stats[0].bbox_width(), 5);
  EXPECT_EQ(stats[0].bbox_height(), 3);
  EXPECT_NEAR(stats[0].centroid_x, 5.0, 1e-9);
  EXPECT_NEAR(stats[0].centroid_y, 3.0, 1e-9);
}

TEST(Components, ConnectivityMatters) {
  // Two pixels touching only diagonally: one component under 8-connectivity,
  // two under 4-connectivity.
  pi::ImageU8 mask(4, 4, 1, 0);
  mask.at(1, 1) = 255;
  mask.at(2, 2) = 255;
  std::vector<std::int32_t> ids;
  EXPECT_EQ(pi::label_components(mask, ids, 8).size(), 1u);
  EXPECT_EQ(pi::label_components(mask, ids, 4).size(), 2u);
}

TEST(Components, SeparateBlobsGetDistinctLabels) {
  pi::ImageU8 mask(10, 4, 1, 0);
  mask.at(1, 1) = 255;
  mask.at(8, 2) = 255;
  std::vector<std::int32_t> ids;
  const auto stats = pi::label_components(mask, ids);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_NE(ids[1 * 10 + 1], ids[2 * 10 + 8]);
  EXPECT_EQ(stats[0].label, 1);
  EXPECT_EQ(stats[1].label, 2);
}

TEST(Components, GuardsBadInput) {
  pi::ImageU8 rgb(4, 4, 3);
  std::vector<std::int32_t> ids;
  EXPECT_THROW(pi::label_components(rgb, ids), std::invalid_argument);
  pi::ImageU8 gray(4, 4, 1);
  EXPECT_THROW(pi::label_components(gray, ids, 6), std::invalid_argument);
}

TEST(Components, ElongationOfThinStripe) {
  pi::ImageU8 mask(40, 10, 1, 0);
  for (int x = 2; x < 38; ++x) mask.at(x, 5) = 255;
  std::vector<std::int32_t> ids;
  const auto stats = pi::label_components(mask, ids);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_GT(stats[0].elongation(), 30.0);
}

namespace {
// A synthetic "ice sheet with a lead": thick ice everywhere, one 3-px-wide
// diagonal-ish crack of water, plus one big open-water basin.
pi::ImageU8 lead_scene_labels() {
  pi::ImageU8 labels(128, 128, 1,
                     static_cast<std::uint8_t>(ps::SeaIceClass::kThickIce));
  for (int x = 10; x < 120; ++x) {
    const int yc = 20 + x / 4;
    for (int dy = -1; dy <= 1; ++dy) {
      labels.at(x, yc + dy) =
          static_cast<std::uint8_t>(ps::SeaIceClass::kOpenWater);
    }
  }
  for (int y = 90; y < 125; ++y) {
    for (int x = 8; x < 60; ++x) {
      labels.at(x, y) =
          static_cast<std::uint8_t>(ps::SeaIceClass::kOpenWater);
    }
  }
  return labels;
}
}  // namespace

TEST(LeadDetector, FindsTheCrackNotTheBasin) {
  const auto labels = lead_scene_labels();
  const pc::LeadDetector detector;
  const auto analysis = detector.detect(labels);
  ASSERT_EQ(analysis.leads.size(), 1u);
  const auto& lead = analysis.leads[0];
  EXPECT_GT(lead.length, 80.0);              // spans most of the scene
  EXPECT_NEAR(lead.mean_width, 3.0, 1.5);    // ~3 px wide
  // The basin (52x35) must not be flagged.
  EXPECT_EQ(analysis.lead_mask.at(30, 100), 0);
  // The crack is flagged.
  EXPECT_EQ(analysis.lead_mask.at(60, 20 + 60 / 4), 255);
  EXPECT_GT(analysis.lead_area_fraction, 0.0);
  EXPECT_LT(analysis.lead_area_fraction, 0.1);
}

TEST(LeadDetector, NoWaterNoLeads) {
  pi::ImageU8 labels(32, 32, 1,
                     static_cast<std::uint8_t>(ps::SeaIceClass::kThickIce));
  const auto analysis = pc::LeadDetector().detect(labels);
  EXPECT_TRUE(analysis.leads.empty());
  EXPECT_DOUBLE_EQ(analysis.lead_area_fraction, 0.0);
}

TEST(LeadDetector, MinAreaFiltersSpeckles) {
  pi::ImageU8 labels(32, 32, 1,
                     static_cast<std::uint8_t>(ps::SeaIceClass::kThickIce));
  // A short 4-px crack below the default min_area.
  for (int x = 10; x < 14; ++x) {
    labels.at(x, 16) = static_cast<std::uint8_t>(ps::SeaIceClass::kOpenWater);
  }
  const auto analysis = pc::LeadDetector().detect(labels);
  EXPECT_TRUE(analysis.leads.empty());
}

TEST(LeadDetector, ConfigValidation) {
  pc::LeadDetectorConfig cfg;
  cfg.max_lead_width = 4;  // even
  EXPECT_THROW(pc::LeadDetector{cfg}, std::invalid_argument);
  cfg = pc::LeadDetectorConfig{};
  cfg.min_elongation = 0.5;
  EXPECT_THROW(pc::LeadDetector{cfg}, std::invalid_argument);
  pi::ImageU8 rgb(8, 8, 3);
  EXPECT_THROW(pc::LeadDetector().detect(rgb), std::invalid_argument);
}

TEST(LeadDetector, WorksOnAutolabeledScene) {
  // End-to-end: auto-label a synthetic scene, then run lead analysis on the
  // produced label map — the pipeline consumers actually chain this way.
  ps::SceneConfig sc;
  sc.width = sc.height = 192;
  sc.seed = 2024;
  sc.cloudy = false;
  sc.water_fraction = 0.15;  // mostly ice, some cracks
  sc.ice_feature_scale = 24.0;
  const auto scene = ps::SceneGenerator(sc).generate();
  pc::AutoLabelConfig cfg;
  cfg.apply_filter = false;
  const auto labeled = pc::AutoLabeler(cfg).label(scene.rgb);
  const auto analysis = pc::LeadDetector().detect(labeled.labels);
  // Geometry depends on the noise realization; the invariants are that the
  // mask is consistent with the lead list and fractions are sane.
  double mask_pixels = 0;
  for (const auto v : analysis.lead_mask) mask_pixels += v == 255;
  EXPECT_NEAR(mask_pixels / (192.0 * 192.0), analysis.lead_area_fraction,
              1e-9);
  for (const auto& lead : analysis.leads) {
    EXPECT_GE(lead.component.area, pc::LeadDetectorConfig{}.min_area);
    EXPECT_GE(lead.component.elongation(),
              pc::LeadDetectorConfig{}.min_elongation);
  }
}
