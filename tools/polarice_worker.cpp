// polarice_worker — one shard of the serving fleet as a standalone process.
//
// Hosts a ShardWorker (SceneServer behind the wire protocol) on the
// endpoint named by --listen and serves until SIGINT/SIGTERM or an inbound
// shutdown frame. The embedded model is constructed deterministically from
// --model_* flags: every worker started with the same flags is a clone, so
// a router can re-dispatch a scene to any of them and receive a
// bit-identical plane — the property shard failover rests on.
//
// Usage:
//   polarice_worker --listen unix:/tmp/polarice/shard-0.sock
//   polarice_worker --listen tcp:127.0.0.1:7400 --max_replicas 4
//
// Flags (all validated; malformed values exit 2 with the reason):
//   --listen SPEC        required; "unix:<path>" or "tcp:<host>:<port>"
//   --model_depth N      U-Net depth            (default 2)
//   --model_channels N   U-Net base channels    (default 8)
//   --model_seed N       weight-init seed       (default 88)
//   --tile_size N        serving tile edge      (default 64)
//   --batch_tiles N      tiles per forward pass (default 8)
//   --min_replicas N     warm replicas          (default 1)
//   --max_replicas N     scale-up ceiling       (default 2)
//   --cache_mb N         result-cache budget    (default 64)
//   --queue_capacity N   admission queue bound  (default server default)
//   --cache_dir PATH     persistent cache dir   (default off). The server
//                        warms its cache from it at startup and flushes to
//                        it on the SIGTERM drain; a dir locked by another
//                        live worker exits 2. The segment fingerprint is
//                        derived from the model/tile flags, so planes from
//                        a differently-configured worker are discarded as
//                        stale rather than served.
//   --cache_flush_kb N   flush threshold        (default 4096)
//   --brownout_depth N   brownout enter watermark on queue depth
//                        (default 0 = brownout off); exit = N/4,
//                        degraded stride from --brownout_stride
//   --brownout_stride N  degraded downscale     (default 2)
//   --brownout_enter_ms / --brownout_exit_ms   hysteresis holds
//                        (defaults 200 / 500)

#include <atomic>
#include <csignal>
#include <cstdio>
#include <exception>
#include <thread>

#include "core/serve/cache_store.h"
#include "core/serve/shard/shard_worker.h"
#include "net/transport.h"
#include "nn/unet.h"
#include "util/args.h"
#include "util/hash.h"
#include "util/log.h"

namespace {

// Signal handlers may only touch lock-free state; the main thread polls
// this and runs the orderly stop itself.
std::atomic<polarice::core::serve::shard::ShardWorker*> g_worker{nullptr};
std::atomic<bool> g_stop_requested{false};

void handle_signal(int) { g_stop_requested.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace polarice;
  namespace shard = core::serve::shard;

  try {
    const util::Args args(argc, argv);

    shard::ShardWorkerConfig config;
    config.listen = net::Endpoint::parse(args.require_string("listen"));

    nn::UNetConfig model_cfg;
    model_cfg.depth =
        static_cast<int>(args.get_int_in("model_depth", 2, 1, 6));
    model_cfg.base_channels =
        static_cast<int>(args.get_int_in("model_channels", 8, 1, 512));
    model_cfg.use_dropout = false;
    model_cfg.seed =
        static_cast<std::uint64_t>(args.get_int("model_seed", 88));

    config.server.tile_size =
        static_cast<int>(args.get_int_in("tile_size", 64, 8, 4096));
    config.server.batch_tiles =
        static_cast<int>(args.get_int_in("batch_tiles", 8, 1, 256));
    config.server.min_replicas =
        static_cast<int>(args.get_int_in("min_replicas", 1, 1, 64));
    config.server.max_replicas = static_cast<int>(
        args.get_int_in("max_replicas", 2, config.server.min_replicas, 64));
    config.server.cache_bytes =
        static_cast<std::size_t>(args.get_int_in("cache_mb", 64, 0, 1 << 20))
        << 20;
    if (args.has("queue_capacity")) {
      config.server.admission.capacity = static_cast<std::size_t>(
          args.get_int_in("queue_capacity", 64, 1, 1 << 20));
    }
    if (args.has("cache_dir")) {
      config.server.cache_dir = args.require_string("cache_dir");
      config.server.cache_flush_bytes =
          static_cast<std::size_t>(
              args.get_int_in("cache_flush_kb", 4096, 1, 1 << 20))
          << 10;
      // Cached planes are only valid under the exact serving configuration
      // that computed them; fingerprint the knobs that change the output.
      polarice::util::Fnv128 fingerprint;
      fingerprint.update_le(model_cfg.depth);
      fingerprint.update_le(model_cfg.base_channels);
      fingerprint.update_le(model_cfg.seed);
      fingerprint.update_le(config.server.tile_size);
      config.server.cache_fingerprint = fingerprint.lo;
    }
    const auto brownout_depth = static_cast<std::size_t>(
        args.get_int_in("brownout_depth", 0, 0, 1 << 20));
    if (brownout_depth > 0) {
      config.server.brownout.enabled = true;
      config.server.brownout.enter_queue_depth = brownout_depth;
      config.server.brownout.exit_queue_depth = brownout_depth / 4;
      config.server.brownout.enter_hold = std::chrono::milliseconds(
          args.get_int_in("brownout_enter_ms", 200, 0, 1 << 20));
      config.server.brownout.exit_hold = std::chrono::milliseconds(
          args.get_int_in("brownout_exit_ms", 500, 0, 1 << 20));
      config.server.brownout.degrade_stride =
          static_cast<int>(args.get_int_in("brownout_stride", 2, 2, 64));
    }

    nn::UNet model(model_cfg);
    shard::ShardWorker worker(model, config);
    g_worker.store(&worker);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    // A stop-poll thread bridges the signal flag to worker.stop(), which
    // also unblocks serve()'s accept loop.
    std::jthread stop_watch([&worker](const std::stop_token& token) {
      while (!token.stop_requested()) {
        if (g_stop_requested.load()) {
          worker.stop();
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });

    LOG_INFO_C("worker") << "serving on " << worker.endpoint().to_string();
    worker.serve();
    worker.stop();  // also covers the inbound-shutdown-frame path
    g_worker.store(nullptr);

    const auto stats = worker.stats();
    LOG_INFO_C("worker") << "done (connections=" << stats.connections
                         << " requests=" << stats.requests
                         << " heartbeats=" << stats.heartbeats
                         << " metrics_scrapes=" << stats.metrics_scrapes
                         << " wire_errors=" << stats.wire_errors << ")";
    return 0;
  } catch (const core::serve::CacheStoreLocked& error) {
    // Another live worker owns the cache directory; sharing it would let
    // the two corrupt each other's segments. Refuse to start.
    LOG_ERROR_C("worker") << error.what();
    return 2;
  } catch (const std::invalid_argument& error) {
    LOG_ERROR_C("worker") << error.what();
    return 2;
  } catch (const std::exception& error) {
    LOG_ERROR_C("worker") << "fatal: " << error.what();
    return 1;
  }
}
