// polarice_trainer — one rank of the fault-tolerant training fleet as a
// standalone process.
//
// Every rank is launched with the same flags plus its own --rank; the
// synthetic dataset, model init, and epoch shuffles are all derived from
// the shared seeds, so separate processes agree on the data and the math
// without any shared filesystem state beyond --checkpoint_dir. The rank
// joins the socket mesh (unix:<socket_dir>/rank-<r>.sock per rank), syncs
// from rank 0's last durable checkpoint, and trains. If a peer dies
// mid-collective the rank tears down and re-rendezvouses under capped
// backoff — so a supervisor (bench_train_fleet) can SIGKILL a rank,
// re-exec it, and watch the fleet converge to the bit-identical result of
// an uninterrupted run.
//
// Usage:
//   polarice_trainer --rank 0 --world 2 --socket_dir /tmp/fleet \
//       --checkpoint_dir /tmp/fleet/ckpt --epochs 2 --out /tmp/params.bin
//
// Flags (all validated; malformed values exit 2 with the reason):
//   --rank N             required; this rank's id in [0, world)
//   --world N            ranks in the fleet, power of two (default 1)
//   --socket_dir PATH    required; rendezvous directory for rank sockets
//   --checkpoint_dir P   durable checkpoint dir (default off; rank 0 only)
//   --epochs N           training epochs         (default 2)
//   --batch N            per-rank batch, power of two (default 2)
//   --lr X               Adam learning rate      (default 1e-3)
//   --seed N             shuffle/fingerprint seed (default 7)
//   --checkpoint_every N rank-0 checkpoint cadence in steps (default 8)
//   --max_rejoins N      rejoin budget after a collective error (default 5)
//   --collective_ms N    per-collective deadline (default 30000)
//   --establish_ms N     mesh rendezvous budget  (default 30000)
//   --model_depth / --model_channels / --model_seed   U-Net geometry
//   --samples / --channels / --height / --width / --classes / --data_seed
//                        synthetic dataset shape (defaults 16/3/16/16/2/11)
//   --out PATH           save final parameters (UNet::save) on exit
//
// On success prints one machine-parsable summary line:
//   TRAINFLEET rank=<r> steps=... global_step=... rejoins=...
//     resumed_from=... checkpoints=... corrupt=... stale=... stopped=0|1
//     loss=<final>
// Exit codes: 0 trained (or clean stop vote), 1 runtime failure (rejoin
// budget exhausted, checkpoint IO), 2 malformed flags.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <memory>

#include "ddp/communicator.h"
#include "ddp/fleet_trainer.h"
#include "ddp/socket_communicator.h"
#include "nn/unet.h"
#include "util/args.h"
#include "util/log.h"

namespace {

// Signal handlers may only touch lock-free state; the step loop folds this
// flag into the next collective as a stop vote, so every rank exits on the
// same step with a final checkpoint behind it.
std::atomic<bool> g_stop_requested{false};

void handle_signal(int) { g_stop_requested.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace polarice;

  try {
    const util::Args args(argc, argv);

    ddp::FleetTrainConfig config;
    config.world_size = static_cast<int>(args.get_int_in("world", 1, 1, 64));
    const int rank = static_cast<int>(
        args.get_int_in("rank", -1, 0, config.world_size - 1));
    const std::string socket_dir = args.require_string("socket_dir");
    config.checkpoint_dir = args.get_string("checkpoint_dir", "");
    config.epochs = static_cast<int>(args.get_int_in("epochs", 2, 1, 1000));
    config.batch_per_device =
        static_cast<int>(args.get_int_in("batch", 2, 1, 256));
    config.learning_rate = static_cast<float>(args.get_double("lr", 1e-3));
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    config.checkpoint_every = static_cast<int>(
        args.get_int_in("checkpoint_every", 8, 1, 1 << 20));
    config.max_rejoins =
        static_cast<int>(args.get_int_in("max_rejoins", 5, 0, 1000));
    config.collective.timeout = std::chrono::milliseconds(
        args.get_int_in("collective_ms", 30000, 1, 1 << 22));
    const auto establish_ms = std::chrono::milliseconds(
        args.get_int_in("establish_ms", 30000, 1, 1 << 22));

    config.model.depth =
        static_cast<int>(args.get_int_in("model_depth", 1, 1, 6));
    config.model.base_channels =
        static_cast<int>(args.get_int_in("model_channels", 4, 1, 512));
    config.model.use_dropout = false;
    config.model.seed =
        static_cast<std::uint64_t>(args.get_int("model_seed", 5));

    const int samples =
        static_cast<int>(args.get_int_in("samples", 16, 1, 1 << 20));
    const int channels =
        static_cast<int>(args.get_int_in("channels", 3, 1, 64));
    const int height = static_cast<int>(args.get_int_in("height", 16, 4, 512));
    const int width = static_cast<int>(args.get_int_in("width", 16, 4, 512));
    const int classes = static_cast<int>(args.get_int_in("classes", 2, 2, 32));
    const auto data_seed =
        static_cast<std::uint64_t>(args.get_int("data_seed", 11));
    config.model.in_channels = channels;
    config.model.num_classes = classes;
    config.validate();

    const nn::SegDataset data = ddp::make_synthetic_dataset(
        samples, channels, height, width, classes, data_seed);

    ddp::SocketCommunicatorConfig mesh;
    mesh.rank = rank;
    mesh.world_size = config.world_size;
    mesh.endpoints = ddp::fleet_endpoints(socket_dir, config.world_size);
    mesh.fingerprint = config.fingerprint();
    mesh.establish_timeout = establish_ms;
    mesh.collective = config.collective;
    const auto factory = [&mesh]() -> std::unique_ptr<ddp::Communicator> {
      return std::make_unique<ddp::SocketCommunicator>(mesh);
    };

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    nn::UNet model(config.model);
    LOG_INFO_C("trainer") << "rank " << rank << "/" << config.world_size
                          << " joining via " << socket_dir;
    const ddp::FleetTrainStats stats = ddp::train_fleet_rank(
        model, data, config, rank, factory, &g_stop_requested);

    if (args.has("out")) model.save(args.require_string("out"));

    std::printf(
        "TRAINFLEET rank=%d steps=%lld global_step=%lld rejoins=%lld "
        "resumed_from=%lld checkpoints=%lld corrupt=%lld stale=%lld "
        "stopped=%d loss=%.9g\n",
        rank, static_cast<long long>(stats.steps),
        static_cast<long long>(stats.global_step),
        static_cast<long long>(stats.rejoins),
        static_cast<long long>(stats.resumed_from),
        static_cast<long long>(stats.checkpoints_written),
        static_cast<long long>(stats.checkpoint_corrupt),
        static_cast<long long>(stats.checkpoint_stale),
        stats.stopped ? 1 : 0, static_cast<double>(stats.final_loss));
    std::fflush(stdout);
    return 0;
  } catch (const std::invalid_argument& error) {
    LOG_ERROR_C("trainer") << error.what();
    return 2;
  } catch (const std::exception& error) {
    LOG_ERROR_C("trainer") << "fatal: " << error.what();
    return 1;
  }
}
