// polarice_stat — scrape a live serving fleet and render it as one table.
//
// For every endpoint named by --connect, the tool performs two exchanges on
// one short-lived connection each: a heartbeat (identity: uptime, queue
// depth, accepting/brownout flags) and a metrics scrape (kMetricsRequest →
// the worker's full obs::registry() rendered as text). The scraped
// exposition is parsed back into a snapshot locally, so the percentile
// columns below are computed from the very same histogram buckets a
// Prometheus-style collector would ingest.
//
// Usage:
//   polarice_stat --connect unix:/tmp/polarice/shard-0.sock,tcp:host:7400
//   polarice_stat --connect ... --raw          # dump raw exposition too
//   polarice_stat --connect ... --expect_forward
//
// Flags:
//   --connect EP[,EP...]  required; endpoints to scrape ("unix:<path>" or
//                         "tcp:<host>:<port>")
//   --timeout_ms N        per-exchange deadline        (default 2000)
//   --raw                 print each worker's raw text exposition after
//                         the fleet table
//   --expect_forward      exit 1 unless every worker scraped cleanly, the
//                         fleet as a whole reports a non-zero
//                         serve_forward_seconds count, and every worker
//                         that completed scenes also shows forward-pass
//                         observations — the CI smoke gate that proves the
//                         fleet actually ran forward passes while being
//                         observable. (Rendezvous routing may legitimately
//                         starve a shard of traffic, so an idle worker with
//                         zero completions is not a failure.)
//
// Exit codes: 0 ok; 1 scrape failure (or --expect_forward unmet); 2 usage.

#include <cstdio>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "core/serve/shard/protocol.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "util/args.h"
#include "util/table.h"
#include "util/virtual_clock.h"

namespace {

using namespace polarice;
namespace shard = core::serve::shard;

/// Everything learned about one worker; nullopt fields = that exchange
/// failed (the row still renders, with holes).
struct WorkerScrape {
  net::Endpoint endpoint;
  std::optional<shard::HeartbeatResponse> heartbeat;
  std::optional<shard::MetricsResponse> metrics;
  std::optional<obs::Snapshot> snapshot;  // parsed from metrics->text
  std::string error;                      // first failure's reason
};

WorkerScrape scrape(const net::Endpoint& endpoint,
                    std::chrono::milliseconds timeout) {
  WorkerScrape out;
  out.endpoint = endpoint;
  const util::Clock& clock = util::system_clock();
  try {
    net::Connection connection =
        net::connect(endpoint, &clock, clock.now() + timeout);

    connection.write_frame(net::MsgType::kHeartbeatRequest, {},
                           clock.now() + timeout);
    net::Frame frame = connection.read_frame(clock.now() + timeout);
    if (frame.type != net::MsgType::kHeartbeatResponse) {
      throw net::WireError("unexpected frame type in heartbeat response");
    }
    out.heartbeat = shard::decode_heartbeat_response(frame.payload);

    connection.write_frame(net::MsgType::kMetricsRequest, {},
                           clock.now() + timeout);
    frame = connection.read_frame(clock.now() + timeout);
    if (frame.type != net::MsgType::kMetricsResponse) {
      throw net::WireError("unexpected frame type in metrics response");
    }
    out.metrics = shard::decode_metrics_response(frame.payload);
    out.snapshot = obs::parse_text(out.metrics->text);
  } catch (const std::exception& error) {
    out.error = error.what();
  }
  return out;
}

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

std::string fmt_count(std::uint64_t v) { return std::to_string(v); }

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    const auto endpoints =
        net::parse_endpoint_list(args.require_string("connect"));
    const std::chrono::milliseconds timeout(
        args.get_int_in("timeout_ms", 2000, 1, 600000));
    const bool raw = args.get_bool("raw", false);
    const bool expect_forward = args.get_bool("expect_forward", false);

    std::vector<WorkerScrape> scrapes;
    scrapes.reserve(endpoints.size());
    for (const auto& endpoint : endpoints) {
      scrapes.push_back(scrape(endpoint, timeout));
    }

    util::Table table({"shard", "up_s", "accepting", "brownout", "queue",
                       "completed", "forward_n", "e2e_p50_ms", "e2e_p99_ms",
                       "scrape"});
    bool all_ok = true;
    bool any_forward = false;
    bool forward_consistent = true;
    for (const auto& s : scrapes) {
      std::vector<std::string> row;
      row.push_back(s.endpoint.to_string());
      if (s.heartbeat) {
        row.push_back(fmt("%.1f", s.heartbeat->uptime_seconds));
        row.push_back(s.heartbeat->accepting ? "yes" : "no");
        row.push_back(s.heartbeat->brownout_active ? "ACTIVE" : "-");
        row.push_back(fmt_count(s.heartbeat->queue_depth));
      } else {
        row.insert(row.end(), {"-", "-", "-", "-"});
      }
      std::uint64_t forward_n = 0;
      std::uint64_t completed_n = 0;
      if (s.snapshot) {
        const auto* completed = s.snapshot->find_counter("serve_completed_total");
        const auto* forward = s.snapshot->find_histogram("serve_forward_seconds");
        const auto* e2e = s.snapshot->find_histogram("serve_e2e_seconds");
        forward_n = forward != nullptr ? forward->count : 0;
        completed_n = completed != nullptr ? completed->value : 0;
        row.push_back(fmt_count(completed_n));
        row.push_back(fmt_count(forward_n));
        row.push_back(e2e != nullptr && e2e->count > 0
                          ? fmt("%.2f", e2e->percentile(0.50) * 1e3)
                          : "-");
        row.push_back(e2e != nullptr && e2e->count > 0
                          ? fmt("%.2f", e2e->percentile(0.99) * 1e3)
                          : "-");
      } else {
        row.insert(row.end(), {"-", "-", "-", "-"});
      }
      row.push_back(s.error.empty() ? "ok" : "FAIL: " + s.error);
      table.add_row(std::move(row));
      if (!s.error.empty() || !s.snapshot) all_ok = false;
      if (forward_n > 0) any_forward = true;
      if (completed_n > 0 && forward_n == 0) forward_consistent = false;
    }
    std::fputs(table.to_string().c_str(), stdout);

    if (raw) {
      for (const auto& s : scrapes) {
        if (!s.metrics) continue;
        std::printf("\n# %s\n%s", s.endpoint.to_string().c_str(),
                    s.metrics->text.c_str());
      }
    }

    if (!all_ok) return 1;
    if (expect_forward && (!any_forward || !forward_consistent)) {
      std::fprintf(stderr,
                   !any_forward
                       ? "polarice_stat: --expect_forward unmet: no worker "
                         "reports forward-pass observations\n"
                       : "polarice_stat: --expect_forward unmet: a worker "
                         "completed scenes but reports zero forward-pass "
                         "observations\n");
      return 1;
    }
    return 0;
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "polarice_stat: %s\n", error.what());
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "polarice_stat: fatal: %s\n", error.what());
    return 1;
  }
}
