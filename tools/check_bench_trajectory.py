#!/usr/bin/env python3
"""Bench trajectory check: diff a fresh BENCH_micro.json against the
checked-in snapshot from the previous PR and fail on regressions.

Usage:
    check_bench_trajectory.py BASELINE CURRENT [--threshold FRAC]

Exit codes:
    0  — no benchmark regressed by more than the threshold
    1  — at least one regression beyond the threshold (or bad input)
    77 — CURRENT does not exist (bench was not run); ctest treats this as
         SKIP via the SKIP_RETURN_CODE property, so plain `ctest` stays
         green without google-benchmark
"""

import argparse
import json
import sys

SKIP = 77


def load_times(path):
    """name -> real_time in ns for every aggregate-free benchmark entry."""
    with open(path) as fh:
        doc = json.load(fh)
    times = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        # google-benchmark reports per-iteration real_time in `time_unit`s.
        unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[
            bench.get("time_unit", "ns")]
        times[name] = float(bench["real_time"]) * unit_ns
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="SUBSTRING",
                        help="fail unless CURRENT contains at least one "
                             "benchmark whose name contains SUBSTRING "
                             "(repeatable); guards against a benchmark "
                             "family silently dropping out of the run")
    args = parser.parse_args()

    try:
        current = load_times(args.current)
    except FileNotFoundError:
        print(f"bench-trajectory: {args.current} not found; "
              "run `cmake --build build --target bench` first — skipping")
        return SKIP
    try:
        baseline = load_times(args.baseline)
    except FileNotFoundError:
        print(f"bench-trajectory: baseline {args.baseline} missing")
        return 1

    unmet = [pattern for pattern in args.require
             if not any(pattern in name for name in current)]
    for pattern in unmet:
        print(f"  REQUIRED {pattern}: no matching benchmark in current run")

    regressions = []
    improvements = []
    missing = []
    for name, base_ns in sorted(baseline.items()):
        cur_ns = current.get(name)
        if cur_ns is None:
            # A renamed/deleted benchmark silently hides its trajectory, so
            # missing counts as failure until the baseline is refreshed.
            missing.append(name)
            print(f"  MISSING  {name} (present in baseline, not re-run)")
            continue
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        line = f"{name}: {base_ns:.0f} ns -> {cur_ns:.0f} ns ({ratio:.2f}x)"
        if ratio > 1.0 + args.threshold:
            regressions.append(line)
        elif ratio < 1.0 - args.threshold:
            improvements.append(line)

    for line in improvements:
        print(f"  FASTER   {line}")
    for line in regressions:
        print(f"  SLOWER   {line}")
    print(f"bench-trajectory: {len(baseline)} baseline benchmarks, "
          f"{len(regressions)} regressions > {args.threshold:.0%}, "
          f"{len(missing)} missing, {len(improvements)} improvements, "
          f"{len(unmet)} required families absent")
    if regressions or missing or unmet:
        print("bench-trajectory: FAIL — refresh the baseline only with a "
              "justified perf or benchmark-set change")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
