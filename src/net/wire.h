#pragma once
// Wire format for the sharded serving tier.
//
// Every message on a shard connection is one *frame*:
//
//   [ FrameHeader | payload bytes ]
//
// The header is 32 bytes, fixed little-endian layout:
//
//   offset  size  field
//        0     4  magic            'P''I''C''E' (0x45434950 LE)
//        4     2  version          kWireVersion; mismatch is an error
//        6     2  type             MsgType discriminator
//        8     8  payload length   bytes following the header
//       16     8  checksum lo      128-bit FNV-1a of the payload
//       24     8  checksum hi      (util::Fnv128, both streams)
//
// Payloads are built/parsed with WireWriter/WireReader: scalars are
// explicit little-endian, floats travel as their IEEE-754 bit patterns
// (std::bit_cast), so fp32 planes round-trip bit-exactly across hosts.
// Every read is bounds-checked; a truncated or corrupted frame raises
// WireError/WireChecksumError — never UB. Payload length is capped
// (kMaxPayload) so a corrupted length field cannot drive a huge
// allocation.
//
// Serializers cover the shard protocol's vocabulary: img::Image planes
// (u8 class-id planes and f32 intermediates), scene geometry, submission
// options, and server stats. The transport layer (net/transport.h) moves
// frames; this header owns their meaning.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/serve/scene_server.h"
#include "img/image.h"
#include "util/hash.h"

namespace polarice::net {

/// Malformed frame or payload: truncation, bad magic/version, a read past
/// the payload end, or an out-of-range decoded value.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& why)
      : std::runtime_error("wire error: " + why) {}
};

/// Payload bytes do not match the header checksum.
class WireChecksumError : public WireError {
 public:
  WireChecksumError() : WireError("payload checksum mismatch") {}
};

inline constexpr std::uint32_t kWireMagic = 0x45434950;  // 'PICE' LE
// v2: SubmitResponse gained a degraded flag; SceneServerStats gained the
// persistence and brownout counters.
// v3: SubmitOptions carries a trace id, HeartbeatResponse carries worker
// uptime + a brownout flag, and the metrics scrape messages
// (kMetricsRequest/kMetricsResponse) joined the vocabulary. Mixed-version
// fleets fail loudly at the frame header instead of misdecoding.
// v4: the distributed-training messages (kTrainHello/kTrainChunk/
// kTrainBarrier) joined the vocabulary for the ddp socket communicator.
inline constexpr std::uint16_t kWireVersion = 4;
inline constexpr std::size_t kFrameHeaderBytes = 32;
/// Ceiling on one frame's payload — large enough for any realistic scene
/// (a 16k x 16k RGB scene is 768 MB > cap on purpose: such scenes must be
/// tiled upstream), small enough that a corrupted length field fails fast
/// instead of driving a giant allocation.
inline constexpr std::uint64_t kMaxPayload = std::uint64_t{1} << 28;  // 256 MB

/// Message discriminators for the shard protocol.
enum class MsgType : std::uint16_t {
  kSubmitRequest = 1,   // router -> worker: one scene + submit options
  kSubmitResponse = 2,  // worker -> router: outcome (+ plane when ok)
  kHeartbeatRequest = 3,   // router -> worker: health probe
  kHeartbeatResponse = 4,  // worker -> router: queue depth + stats
  kShutdownRequest = 5,    // orchestration: stop serving
  kShutdownResponse = 6,
  kMetricsRequest = 7,   // scrape: dump the worker's obs registry
  kMetricsResponse = 8,  // worker -> scraper: text exposition + identity
  // Distributed training (ddp/socket_communicator.h). Rendezvous first
  // (kTrainHello both ways), then every collective moves float chunks and
  // barrier tokens as sequence-numbered kTrainChunk/kTrainBarrier frames.
  kTrainHello = 9,    // rank identity + world size + config fingerprint
  kTrainChunk = 10,   // one float buffer of a collective (seq + rank + data)
  kTrainBarrier = 11  // barrier arrival/release token (seq + rank + phase)
};

[[nodiscard]] const char* to_string(MsgType type) noexcept;

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kSubmitRequest;
  std::vector<std::uint8_t> payload;
};

// ---------------------------------------------------------------------------
// Payload building / parsing
// ---------------------------------------------------------------------------

/// Append-only little-endian payload builder.
class WireWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void put_f32(float v);    // IEEE-754 bit pattern, bit-exact round trip
  void put_f64(double v);
  void put_bytes(const void* data, std::size_t n);
  void put_string(const std::string& s);  // u32 length + bytes

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(bytes_);
  }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian payload parser. Never reads past the end:
/// every getter throws WireError on underflow.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t n)
      : data_(data), size_(n) {}
  explicit WireReader(const std::vector<std::uint8_t>& payload)
      : WireReader(payload.data(), payload.size()) {}

  [[nodiscard]] std::uint8_t get_u8() { return take_bytes(1)[0]; }
  [[nodiscard]] std::uint16_t get_u16() { return get_le<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t get_u64() { return get_le<std::uint64_t>(); }
  [[nodiscard]] std::int32_t get_i32() {
    return static_cast<std::int32_t>(get_le<std::uint32_t>());
  }
  [[nodiscard]] std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_le<std::uint64_t>());
  }
  [[nodiscard]] float get_f32();
  [[nodiscard]] double get_f64();
  void get_bytes(void* out, std::size_t n);
  [[nodiscard]] std::string get_string();

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  /// Throws WireError unless the payload was consumed exactly — a decoder's
  /// final word that trailing garbage is corruption, not padding.
  void expect_end() const;

 private:
  [[nodiscard]] const std::uint8_t* take_bytes(std::size_t n);

  template <typename T>
  [[nodiscard]] T get_le() {
    const std::uint8_t* p = take_bytes(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint64_t>(p[i]) << (8 * i));
    }
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Frame encode / decode
// ---------------------------------------------------------------------------

/// Serializes one frame (header + payload) into a byte vector.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    MsgType type, const std::vector<std::uint8_t>& payload);

/// Parses and validates a frame header (exactly kFrameHeaderBytes bytes).
/// Returns {type, payload_length, checksum}; throws WireError on bad
/// magic/version/length.
struct FrameHeader {
  MsgType type = MsgType::kSubmitRequest;
  std::uint64_t payload_len = 0;
  std::uint64_t checksum_lo = 0;
  std::uint64_t checksum_hi = 0;
};
[[nodiscard]] FrameHeader decode_header(const std::uint8_t* bytes,
                                        std::size_t n);

/// Validates `payload` against a decoded header's checksum; throws
/// WireChecksumError on mismatch.
void verify_payload(const FrameHeader& header,
                    const std::vector<std::uint8_t>& payload);

/// Decodes one whole frame from a contiguous buffer (header + payload,
/// nothing trailing). The in-memory mirror of Connection-based framing,
/// used by tests to fuzz corruption without sockets.
[[nodiscard]] Frame decode_frame(const std::uint8_t* bytes, std::size_t n);
[[nodiscard]] inline Frame decode_frame(
    const std::vector<std::uint8_t>& bytes) {
  return decode_frame(bytes.data(), bytes.size());
}

// ---------------------------------------------------------------------------
// Domain serializers
// ---------------------------------------------------------------------------

/// Planes travel as geometry + raw scalars. u8 planes are the scene/class
/// payloads; f32 planes carry intermediate filter math. Both round-trip
/// bit-exactly (f32 via bit patterns). Empty (default-constructed) images
/// are legal — geometry 0x0x0 and no pixel bytes.
void put_image(WireWriter& writer, const img::ImageU8& image);
void put_image(WireWriter& writer, const img::ImageF32& image);
[[nodiscard]] img::ImageU8 get_image_u8(WireReader& reader);
[[nodiscard]] img::ImageF32 get_image_f32(WireReader& reader);

/// Scene geometry: the shape identity of a submitted scene plus the tile
/// grid the server cut it into — what a router needs to reason about
/// placement and reassembly without holding pixels.
struct SceneGeometry {
  std::int32_t width = 0;
  std::int32_t height = 0;
  std::int32_t channels = 0;
  std::int32_t tile_size = 0;
  std::int32_t tiles_x = 0;
  std::int32_t tiles_y = 0;

  bool operator==(const SceneGeometry&) const = default;
};
void put_geometry(WireWriter& writer, const SceneGeometry& geometry);
[[nodiscard]] SceneGeometry get_geometry(WireReader& reader);

/// Submit options: priority class, optional relative deadline, retry
/// budget. The deadline travels as relative nanoseconds (applied against
/// the worker's clock at admission) so router and worker need no shared
/// epoch.
void put_submit_options(WireWriter& writer,
                        const core::serve::SubmitOptions& options);
[[nodiscard]] core::serve::SubmitOptions get_submit_options(
    WireReader& reader);

/// Full SceneServerStats snapshot — the heartbeat's cargo.
void put_stats(WireWriter& writer, const core::serve::SceneServerStats& stats);
[[nodiscard]] core::serve::SceneServerStats get_stats(WireReader& reader);

}  // namespace polarice::net
