#pragma once
// Blocking socket transport for the sharded serving tier.
//
// Small by design: a Listener accepts Connections, a Connection moves whole
// frames (net/wire.h) or raw byte runs, over either TCP (loopback or LAN)
// or Unix domain sockets (the default for same-host shards — no ports to
// collide, cleaned up with the socket directory). No third-party
// dependencies; POSIX sockets only.
//
// Deadlines follow the repo's injectable-clock discipline (util::Clock):
// whether a read/write has run out of time is decided by the configured
// clock, while the underlying poll() waits in short real-time ticks — a
// frozen VirtualClock never wedges a thread, it just never lets the
// deadline arrive. Timeout surfaces as TransportTimeout, every other socket
// failure (including EOF mid-frame) as TransportError.
//
// Endpoint specs are strings so they can ride CLI flags and config files:
//   "unix:/tmp/polarice/shard-0.sock"   Unix domain socket path
//   "tcp:127.0.0.1:7400"                TCP host:port
//   "tcp:127.0.0.1:0"                   TCP, kernel-assigned port
//                                       (Listener::endpoint() reports it)
// Endpoint::parse validates eagerly and throws std::invalid_argument with
// the reason — flag typos fail fast, never fall back to defaults.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/wire.h"
#include "util/virtual_clock.h"

namespace polarice::net {

class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& why)
      : std::runtime_error("transport error: " + why) {}
};

/// A read/write deadline elapsed (per the configured util::Clock).
class TransportTimeout : public TransportError {
 public:
  explicit TransportTimeout(const std::string& what)
      : TransportError("timed out: " + what) {}
};

/// One parseable, printable shard address.
struct Endpoint {
  enum class Kind { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;        // kUnix: filesystem path
  std::string host;        // kTcp: IPv4 dotted quad or name
  std::uint16_t port = 0;  // kTcp: 0 = kernel-assigned (listeners only)

  /// Parses "unix:<path>" or "tcp:<host>:<port>". Throws
  /// std::invalid_argument naming the defect (empty path, missing port,
  /// port out of range, unknown scheme...).
  [[nodiscard]] static Endpoint parse(const std::string& spec);

  [[nodiscard]] std::string to_string() const;

  bool operator==(const Endpoint&) const = default;
};

/// Comma-separated endpoint list ("unix:/a.sock,unix:/b.sock") — the
/// --connect flag's format. Throws std::invalid_argument on any bad entry
/// (including empty list / empty elements).
[[nodiscard]] std::vector<Endpoint> parse_endpoint_list(
    const std::string& spec);

/// One connected stream socket. Move-only; closes on destruction.
class Connection {
 public:
  Connection() = default;  // !valid()
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  ~Connection();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  /// Writes exactly `n` bytes or throws (TransportTimeout past `deadline`,
  /// TransportError otherwise). nullopt deadline = wait indefinitely.
  void write_all(const void* data, std::size_t n,
                 std::optional<util::Clock::time_point> deadline = {});

  /// Reads exactly `n` bytes or throws. EOF before `n` bytes is a
  /// TransportError ("peer closed").
  void read_all(void* data, std::size_t n,
                std::optional<util::Clock::time_point> deadline = {});

  /// Waits until the connection has bytes to read (or the peer closed),
  /// at most `timeout`; false on timeout. Consumes nothing — unlike a
  /// deadline on read_frame (whose read_all may swallow partial bytes
  /// before timing out), a timeout here can never desync the stream, so
  /// request loops can poll a stop flag between idle ticks safely.
  [[nodiscard]] bool wait_readable(std::chrono::milliseconds timeout);

  /// Frame I/O: one wire.h frame per call. read_frame validates header and
  /// payload checksum (WireError/WireChecksumError propagate).
  void write_frame(MsgType type, const std::vector<std::uint8_t>& payload,
                   std::optional<util::Clock::time_point> deadline = {});
  [[nodiscard]] Frame read_frame(
      std::optional<util::Clock::time_point> deadline = {});

  /// The clock deadlines are measured on (never null).
  [[nodiscard]] const util::Clock& clock() const noexcept { return *clock_; }

 private:
  friend class Listener;
  friend Connection connect(const Endpoint&, const util::Clock*,
                            std::optional<util::Clock::time_point>);
  Connection(int fd, const util::Clock* clock) noexcept;

  int fd_ = -1;
  const util::Clock* clock_ = nullptr;
};

/// Opens a client connection to `endpoint`. `clock` times this call's
/// deadline and all subsequent I/O deadlines on the connection; nullptr =
/// the process clock (must outlive the connection otherwise).
[[nodiscard]] Connection connect(
    const Endpoint& endpoint, const util::Clock* clock = nullptr,
    std::optional<util::Clock::time_point> deadline = {});

/// A bound, listening socket. Move-only. Unix-socket listeners unlink
/// their path on close (and replace a stale file on bind).
class Listener {
 public:
  Listener() = default;  // !valid()
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// Binds and listens on `endpoint`. For tcp port 0 the kernel assigns a
  /// port; endpoint() reports the resolved address.
  [[nodiscard]] static Listener bind(const Endpoint& endpoint,
                                     const util::Clock* clock = nullptr);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  /// Accepts one connection, waiting at most `timeout` (nullopt = forever).
  /// Returns an invalid Connection on timeout — accept loops poll a stop
  /// flag between ticks, so timeout is flow control here, not an error.
  [[nodiscard]] Connection accept(
      std::optional<std::chrono::milliseconds> timeout = {});

  /// The bound address (with the kernel-resolved port for tcp:...:0).
  [[nodiscard]] const Endpoint& endpoint() const noexcept { return endpoint_; }

 private:
  Listener(int fd, Endpoint endpoint, const util::Clock* clock) noexcept;

  int fd_ = -1;
  Endpoint endpoint_;
  const util::Clock* clock_ = nullptr;
};

}  // namespace polarice::net
