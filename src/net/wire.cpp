#include "net/wire.h"

#include <bit>
#include <cstring>

namespace polarice::net {

const char* to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::kSubmitRequest:
      return "submit_request";
    case MsgType::kSubmitResponse:
      return "submit_response";
    case MsgType::kHeartbeatRequest:
      return "heartbeat_request";
    case MsgType::kHeartbeatResponse:
      return "heartbeat_response";
    case MsgType::kShutdownRequest:
      return "shutdown_request";
    case MsgType::kShutdownResponse:
      return "shutdown_response";
    case MsgType::kMetricsRequest:
      return "metrics_request";
    case MsgType::kMetricsResponse:
      return "metrics_response";
    case MsgType::kTrainHello:
      return "train_hello";
    case MsgType::kTrainChunk:
      return "train_chunk";
    case MsgType::kTrainBarrier:
      return "train_barrier";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// WireWriter / WireReader
// ---------------------------------------------------------------------------

void WireWriter::put_f32(float v) {
  put_u32(std::bit_cast<std::uint32_t>(v));
}

void WireWriter::put_f64(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}

void WireWriter::put_bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + n);
}

void WireWriter::put_string(const std::string& s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  put_bytes(s.data(), s.size());
}

const std::uint8_t* WireReader::take_bytes(std::size_t n) {
  if (n > size_ - pos_) {
    throw WireError("payload truncated: need " + std::to_string(n) +
                    " bytes, have " + std::to_string(size_ - pos_));
  }
  const std::uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

float WireReader::get_f32() { return std::bit_cast<float>(get_u32()); }

double WireReader::get_f64() { return std::bit_cast<double>(get_u64()); }

void WireReader::get_bytes(void* out, std::size_t n) {
  std::memcpy(out, take_bytes(n), n);
}

std::string WireReader::get_string() {
  const std::uint32_t n = get_u32();
  if (n > remaining()) {
    throw WireError("string length past payload end");
  }
  const std::uint8_t* p = take_bytes(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}

void WireReader::expect_end() const {
  if (pos_ != size_) {
    throw WireError("payload has " + std::to_string(size_ - pos_) +
                    " trailing bytes");
  }
}

// ---------------------------------------------------------------------------
// Frame encode / decode
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(
    MsgType type, const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxPayload) {
    throw WireError("payload exceeds kMaxPayload");
  }
  const util::Fnv128 checksum =
      util::fnv128(payload.data(), payload.size());
  WireWriter header;
  header.put_u32(kWireMagic);
  header.put_u16(kWireVersion);
  header.put_u16(static_cast<std::uint16_t>(type));
  header.put_u64(payload.size());
  header.put_u64(checksum.lo);
  header.put_u64(checksum.hi);
  std::vector<std::uint8_t> out = header.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

FrameHeader decode_header(const std::uint8_t* bytes, std::size_t n) {
  if (n != kFrameHeaderBytes) {
    throw WireError("frame header is " + std::to_string(n) + " bytes, want " +
                    std::to_string(kFrameHeaderBytes));
  }
  WireReader reader(bytes, n);
  if (reader.get_u32() != kWireMagic) throw WireError("bad frame magic");
  const std::uint16_t version = reader.get_u16();
  if (version != kWireVersion) {
    throw WireError("wire version " + std::to_string(version) + ", want " +
                    std::to_string(kWireVersion));
  }
  FrameHeader header;
  const std::uint16_t type = reader.get_u16();
  switch (static_cast<MsgType>(type)) {
    case MsgType::kSubmitRequest:
    case MsgType::kSubmitResponse:
    case MsgType::kHeartbeatRequest:
    case MsgType::kHeartbeatResponse:
    case MsgType::kShutdownRequest:
    case MsgType::kShutdownResponse:
    case MsgType::kMetricsRequest:
    case MsgType::kMetricsResponse:
    case MsgType::kTrainHello:
    case MsgType::kTrainChunk:
    case MsgType::kTrainBarrier:
      header.type = static_cast<MsgType>(type);
      break;
    default:
      throw WireError("unknown message type " + std::to_string(type));
  }
  header.payload_len = reader.get_u64();
  if (header.payload_len > kMaxPayload) {
    throw WireError("payload length exceeds kMaxPayload");
  }
  header.checksum_lo = reader.get_u64();
  header.checksum_hi = reader.get_u64();
  return header;
}

void verify_payload(const FrameHeader& header,
                    const std::vector<std::uint8_t>& payload) {
  const util::Fnv128 checksum =
      util::fnv128(payload.data(), payload.size());
  if (checksum.lo != header.checksum_lo ||
      checksum.hi != header.checksum_hi) {
    throw WireChecksumError();
  }
}

Frame decode_frame(const std::uint8_t* bytes, std::size_t n) {
  if (n < kFrameHeaderBytes) throw WireError("frame shorter than header");
  const FrameHeader header = decode_header(bytes, kFrameHeaderBytes);
  if (n - kFrameHeaderBytes != header.payload_len) {
    throw WireError("frame payload is " +
                    std::to_string(n - kFrameHeaderBytes) +
                    " bytes, header says " +
                    std::to_string(header.payload_len));
  }
  Frame frame;
  frame.type = header.type;
  frame.payload.assign(bytes + kFrameHeaderBytes, bytes + n);
  verify_payload(header, frame.payload);
  return frame;
}

// ---------------------------------------------------------------------------
// Domain serializers
// ---------------------------------------------------------------------------

namespace {

// Pixel data travels as the element-wise little-endian encoding. On
// little-endian hosts (every supported target today) that is the in-memory
// layout, so bulk memcpy applies; the element loop is the portable
// fallback.
template <typename T>
void put_pixels(WireWriter& writer, const img::Image<T>& image) {
  if constexpr (sizeof(T) == 1 || std::endian::native == std::endian::little) {
    writer.put_bytes(image.data(), image.size() * sizeof(T));
  } else {
    for (const T& v : image) {
      if constexpr (sizeof(T) == 4) {
        writer.put_u32(std::bit_cast<std::uint32_t>(v));
      } else {
        writer.put_u8(static_cast<std::uint8_t>(v));
      }
    }
  }
}

template <typename T>
img::Image<T> get_pixels(WireReader& reader, int w, int h, int c) {
  if (w == 0 && h == 0 && c == 0) return img::Image<T>();
  if (w <= 0 || h <= 0 || c <= 0) {
    throw WireError("image with non-positive dimensions");
  }
  // Guard the multiplication before allocating: a corrupted geometry must
  // fail as a wire error (the byte count check below), not as a bad_alloc.
  // The bound checks are step-wise divisions so the product can never wrap
  // mod 2^64 — attacker-chosen dims like 2^22 x 2^22 x 2^20 (u8) multiply
  // to exactly 2^64 and would otherwise sail past the remaining() check
  // with zero pixel bytes behind them.
  const auto uw = static_cast<std::uint64_t>(w);
  const auto uh = static_cast<std::uint64_t>(h);
  const auto uc = static_cast<std::uint64_t>(c);
  const std::uint64_t max_count = kMaxPayload / sizeof(T);
  if (uw > max_count || uh > max_count / uw || uc > max_count / (uw * uh)) {
    throw WireError("image dimensions exceed payload cap");
  }
  const std::uint64_t count = uw * uh * uc;
  if (count * sizeof(T) > reader.remaining()) {
    throw WireError("image pixels past payload end");
  }
  img::Image<T> image(w, h, c);
  if constexpr (sizeof(T) == 1 || std::endian::native == std::endian::little) {
    reader.get_bytes(image.data(), image.size() * sizeof(T));
  } else {
    for (T& v : image) {
      if constexpr (sizeof(T) == 4) {
        v = std::bit_cast<T>(reader.get_u32());
      } else {
        v = static_cast<T>(reader.get_u8());
      }
    }
  }
  return image;
}

template <typename T>
void put_image_impl(WireWriter& writer, const img::Image<T>& image) {
  writer.put_i32(image.width());
  writer.put_i32(image.height());
  writer.put_i32(image.channels());
  put_pixels(writer, image);
}

}  // namespace

void put_image(WireWriter& writer, const img::ImageU8& image) {
  put_image_impl(writer, image);
}

void put_image(WireWriter& writer, const img::ImageF32& image) {
  put_image_impl(writer, image);
}

img::ImageU8 get_image_u8(WireReader& reader) {
  const std::int32_t w = reader.get_i32();
  const std::int32_t h = reader.get_i32();
  const std::int32_t c = reader.get_i32();
  return get_pixels<std::uint8_t>(reader, w, h, c);
}

img::ImageF32 get_image_f32(WireReader& reader) {
  const std::int32_t w = reader.get_i32();
  const std::int32_t h = reader.get_i32();
  const std::int32_t c = reader.get_i32();
  return get_pixels<float>(reader, w, h, c);
}

void put_geometry(WireWriter& writer, const SceneGeometry& geometry) {
  writer.put_i32(geometry.width);
  writer.put_i32(geometry.height);
  writer.put_i32(geometry.channels);
  writer.put_i32(geometry.tile_size);
  writer.put_i32(geometry.tiles_x);
  writer.put_i32(geometry.tiles_y);
}

SceneGeometry get_geometry(WireReader& reader) {
  SceneGeometry geometry;
  geometry.width = reader.get_i32();
  geometry.height = reader.get_i32();
  geometry.channels = reader.get_i32();
  geometry.tile_size = reader.get_i32();
  geometry.tiles_x = reader.get_i32();
  geometry.tiles_y = reader.get_i32();
  return geometry;
}

void put_submit_options(WireWriter& writer,
                        const core::serve::SubmitOptions& options) {
  writer.put_u8(static_cast<std::uint8_t>(options.priority));
  writer.put_u8(options.deadline.has_value() ? 1 : 0);
  writer.put_i64(options.deadline ? options.deadline->count() : 0);
  writer.put_i32(options.max_retries);
  // v3: the fleet-wide trace id. 0 = unassigned (the receiver mints one).
  writer.put_u64(options.trace_id);
}

core::serve::SubmitOptions get_submit_options(WireReader& reader) {
  core::serve::SubmitOptions options;
  const std::uint8_t priority = reader.get_u8();
  switch (priority) {
    case 0:
      options.priority = core::serve::Priority::kBatch;
      break;
    case 1:
      options.priority = core::serve::Priority::kNormal;
      break;
    case 2:
      options.priority = core::serve::Priority::kInteractive;
      break;
    default:
      throw WireError("unknown priority " + std::to_string(priority));
  }
  const std::uint8_t has_deadline = reader.get_u8();
  if (has_deadline > 1) throw WireError("bad deadline flag");
  const std::int64_t deadline_ns = reader.get_i64();
  if (has_deadline == 1) {
    if (deadline_ns < 0) throw WireError("negative deadline");
    options.deadline = std::chrono::nanoseconds(deadline_ns);
  }
  options.max_retries = reader.get_i32();
  if (options.max_retries < -1) throw WireError("max_retries < -1");
  options.trace_id = reader.get_u64();
  return options;
}

void put_stats(WireWriter& writer,
               const core::serve::SceneServerStats& stats) {
  writer.put_u64(stats.session.scenes);
  writer.put_u64(stats.session.tiles);
  writer.put_f64(stats.session.busy_seconds);
  writer.put_f64(stats.session.wait_seconds);
  writer.put_u64(stats.session.peak_leases);
  writer.put_u64(stats.submitted);
  writer.put_u64(stats.completed);
  writer.put_u64(stats.cancelled);
  writer.put_u64(stats.failed);
  writer.put_u64(stats.rejected);
  writer.put_u64(stats.cache_hits);
  writer.put_u64(stats.cache_misses);
  writer.put_u64(stats.cache_evictions);
  writer.put_u64(stats.cache_warmed);
  writer.put_u64(stats.warm_hits);
  writer.put_u64(stats.cache_persisted);
  writer.put_u64(stats.cache_corrupt);
  writer.put_u64(stats.cache_stale);
  writer.put_u64(stats.degraded);
  writer.put_u64(stats.brownouts);
  writer.put_u8(stats.brownout_active ? 1 : 0);
  writer.put_u64(stats.coalesced);
  writer.put_u64(stats.batches);
  writer.put_u64(stats.cross_scene_batches);
  writer.put_u64(stats.peak_queue_depth);
  writer.put_u64(stats.shed);
  writer.put_u64(stats.batch_failures);
  writer.put_u64(stats.retries);
  writer.put_u64(stats.retried_tiles);
  writer.put_u64(stats.retry_exhausted);
  writer.put_u64(stats.replicas_quarantined);
  writer.put_u64(stats.replicas_rebuilt);
  writer.put_i32(stats.replicas);
  writer.put_i32(stats.peak_replicas);
}

core::serve::SceneServerStats get_stats(WireReader& reader) {
  core::serve::SceneServerStats stats;
  stats.session.scenes = reader.get_u64();
  stats.session.tiles = reader.get_u64();
  stats.session.busy_seconds = reader.get_f64();
  stats.session.wait_seconds = reader.get_f64();
  stats.session.peak_leases = reader.get_u64();
  stats.submitted = reader.get_u64();
  stats.completed = reader.get_u64();
  stats.cancelled = reader.get_u64();
  stats.failed = reader.get_u64();
  stats.rejected = reader.get_u64();
  stats.cache_hits = reader.get_u64();
  stats.cache_misses = reader.get_u64();
  stats.cache_evictions = reader.get_u64();
  stats.cache_warmed = reader.get_u64();
  stats.warm_hits = reader.get_u64();
  stats.cache_persisted = reader.get_u64();
  stats.cache_corrupt = reader.get_u64();
  stats.cache_stale = reader.get_u64();
  stats.degraded = reader.get_u64();
  stats.brownouts = reader.get_u64();
  const std::uint8_t brownout_active = reader.get_u8();
  if (brownout_active > 1) throw WireError("bad brownout flag");
  stats.brownout_active = brownout_active == 1;
  stats.coalesced = reader.get_u64();
  stats.batches = reader.get_u64();
  stats.cross_scene_batches = reader.get_u64();
  stats.peak_queue_depth = reader.get_u64();
  stats.shed = reader.get_u64();
  stats.batch_failures = reader.get_u64();
  stats.retries = reader.get_u64();
  stats.retried_tiles = reader.get_u64();
  stats.retry_exhausted = reader.get_u64();
  stats.replicas_quarantined = reader.get_u64();
  stats.replicas_rebuilt = reader.get_u64();
  stats.replicas = reader.get_i32();
  stats.peak_replicas = reader.get_i32();
  return stats;
}

}  // namespace polarice::net
