#include "net/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace polarice::net {

namespace {

// Real-time poll tick while logically waiting on the injected clock — the
// same discipline as the serving tier's condition-variable waits: the clock
// decides *whether* time ran out, the tick only bounds check staleness.
constexpr std::chrono::milliseconds kPollTick{20};

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

const util::Clock& clock_or_system(const util::Clock* clock) noexcept {
  return clock != nullptr ? *clock : util::system_clock();
}

/// Remaining poll wait in ms: capped at the tick, floored at 0; nullopt
/// deadline = a full tick... but poll can then wait indefinitely, so use -1
/// only when no deadline exists (saves wakeups on idle accept loops with
/// no stop flag — callers that need one pass a timeout).
int poll_wait_ms(const util::Clock& clock,
                 std::optional<util::Clock::time_point> deadline) {
  if (!deadline) return static_cast<int>(kPollTick.count());
  const auto remaining = *deadline - clock.now();
  if (remaining <= util::Clock::duration::zero()) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining);
  return static_cast<int>(
      std::min<std::chrono::milliseconds::rep>(ms.count() + 1,
                                               kPollTick.count()));
}

/// Blocks until `fd` is ready for `events`, the deadline passes
/// (TransportTimeout), or a socket error surfaces.
void wait_ready(int fd, short events, const util::Clock& clock,
                std::optional<util::Clock::time_point> deadline,
                const std::string& what) {
  for (;;) {
    if (deadline && clock.now() >= *deadline) throw TransportTimeout(what);
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, poll_wait_ms(clock, deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno(what);
    }
    if (rc > 0) {
      // Readable/writable includes error and hangup states: let the
      // subsequent read/write surface the precise errno (or EOF).
      return;
    }
  }
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("not an IPv4 address: " + host);
  }
  return addr;
}

int open_socket(Endpoint::Kind kind) {
  const int fd = ::socket(
      kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  return fd;
}

void set_nonblocking_cloexec(int fd) {
  // Non-blocking throughout: all waiting happens in poll so deadlines stay
  // on the injected clock. CLOEXEC so worker-process spawns (fork+exec in
  // the shard harness) do not inherit the parent's sockets.
  if (::fcntl(fd, F_SETFL, O_NONBLOCK) != 0 ||
      ::fcntl(fd, F_SETFD, FD_CLOEXEC) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("fcntl");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Endpoint
// ---------------------------------------------------------------------------

Endpoint Endpoint::parse(const std::string& spec) {
  if (spec.empty()) throw std::invalid_argument("empty endpoint");
  Endpoint endpoint;
  if (spec.rfind("unix:", 0) == 0) {
    endpoint.kind = Kind::kUnix;
    endpoint.path = spec.substr(5);
    if (endpoint.path.empty()) {
      throw std::invalid_argument("endpoint '" + spec + "': empty unix path");
    }
    return endpoint;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    endpoint.kind = Kind::kTcp;
    const std::string rest = spec.substr(4);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      throw std::invalid_argument("endpoint '" + spec +
                                  "': want tcp:<host>:<port>");
    }
    endpoint.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    if (port_str.empty() ||
        port_str.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument("endpoint '" + spec + "': bad port '" +
                                  port_str + "'");
    }
    const long port = std::stol(port_str);
    if (port < 0 || port > 65535) {
      throw std::invalid_argument("endpoint '" + spec +
                                  "': port out of range");
    }
    endpoint.port = static_cast<std::uint16_t>(port);
    return endpoint;
  }
  throw std::invalid_argument("endpoint '" + spec +
                              "': unknown scheme (want unix:<path> or "
                              "tcp:<host>:<port>)");
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

std::vector<Endpoint> parse_endpoint_list(const std::string& spec) {
  std::vector<Endpoint> endpoints;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const auto comma = spec.find(',', begin);
    const auto end = comma == std::string::npos ? spec.size() : comma;
    endpoints.push_back(Endpoint::parse(spec.substr(begin, end - begin)));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (endpoints.empty()) throw std::invalid_argument("empty endpoint list");
  return endpoints;
}

// ---------------------------------------------------------------------------
// Connection
// ---------------------------------------------------------------------------

Connection::Connection(int fd, const util::Clock* clock) noexcept
    : fd_(fd), clock_(&clock_or_system(clock)) {}

Connection::Connection(Connection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), clock_(other.clock_) {}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    clock_ = other.clock_;
  }
  return *this;
}

Connection::~Connection() { close(); }

void Connection::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Connection::write_all(const void* data, std::size_t n,
                           std::optional<util::Clock::time_point> deadline) {
  if (!valid()) throw TransportError("write on closed connection");
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that died mid-frame must surface as EPIPE, not
    // kill the process with SIGPIPE.
    const ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_ready(fd_, POLLOUT, *clock_, deadline, "write");
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    throw_errno("write");
  }
}

void Connection::read_all(void* data, std::size_t n,
                          std::optional<util::Clock::time_point> deadline) {
  if (!valid()) throw TransportError("read on closed connection");
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd_, p + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) throw TransportError("peer closed mid-read");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_ready(fd_, POLLIN, *clock_, deadline, "read");
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("read");
  }
}

bool Connection::wait_readable(std::chrono::milliseconds timeout) {
  if (!valid()) throw TransportError("wait on closed connection");
  struct pollfd pfd {
    fd_, POLLIN, 0
  };
  for (;;) {
    // POLLIN covers error/hangup too: an EOF or reset reports readable and
    // the next read surfaces the typed error.
    const int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

void Connection::write_frame(MsgType type,
                             const std::vector<std::uint8_t>& payload,
                             std::optional<util::Clock::time_point> deadline) {
  const std::vector<std::uint8_t> bytes = encode_frame(type, payload);
  write_all(bytes.data(), bytes.size(), deadline);
}

Frame Connection::read_frame(std::optional<util::Clock::time_point> deadline) {
  std::uint8_t header_bytes[kFrameHeaderBytes];
  read_all(header_bytes, kFrameHeaderBytes, deadline);
  const FrameHeader header = decode_header(header_bytes, kFrameHeaderBytes);
  Frame frame;
  frame.type = header.type;
  frame.payload.resize(static_cast<std::size_t>(header.payload_len));
  if (header.payload_len > 0) {
    read_all(frame.payload.data(), frame.payload.size(), deadline);
  }
  verify_payload(header, frame.payload);
  return frame;
}

Connection connect(const Endpoint& endpoint, const util::Clock* clock,
                   std::optional<util::Clock::time_point> deadline) {
  const int fd = open_socket(endpoint.kind);
  try {
    set_nonblocking_cloexec(fd);
    int rc;
    if (endpoint.kind == Endpoint::Kind::kUnix) {
      const sockaddr_un addr = unix_address(endpoint.path);
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } else {
      const sockaddr_in addr = tcp_address(endpoint.host, endpoint.port);
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    }
    const util::Clock& clk = clock_or_system(clock);
    if (rc != 0 && errno == EINPROGRESS) {
      wait_ready(fd, POLLOUT, clk, deadline,
                 "connect " + endpoint.to_string());
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        throw_errno("getsockopt");
      }
      if (err != 0) {
        errno = err;
        throw_errno("connect " + endpoint.to_string());
      }
    } else if (rc != 0) {
      throw_errno("connect " + endpoint.to_string());
    }
    if (endpoint.kind == Endpoint::Kind::kTcp) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    return Connection(fd, clock);
  } catch (...) {
    ::close(fd);
    throw;
  }
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

Listener::Listener(int fd, Endpoint endpoint, const util::Clock* clock) noexcept
    : fd_(fd), endpoint_(std::move(endpoint)), clock_(clock) {}

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      endpoint_(std::move(other.endpoint_)),
      clock_(other.clock_) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    endpoint_ = std::move(other.endpoint_);
    clock_ = other.clock_;
  }
  return *this;
}

Listener::~Listener() { close(); }

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (endpoint_.kind == Endpoint::Kind::kUnix) {
      ::unlink(endpoint_.path.c_str());
    }
  }
}

Listener Listener::bind(const Endpoint& endpoint, const util::Clock* clock) {
  const int fd = open_socket(endpoint.kind);
  try {
    set_nonblocking_cloexec(fd);
    Endpoint bound = endpoint;
    if (endpoint.kind == Endpoint::Kind::kUnix) {
      // A stale socket file from a crashed worker must not block rebinding;
      // a *live* listener is not detectable this way, so shard orchestration
      // owns path uniqueness (one worker per path).
      ::unlink(endpoint.path.c_str());
      const sockaddr_un addr = unix_address(endpoint.path);
      if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        throw_errno("bind " + endpoint.to_string());
      }
    } else {
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      const sockaddr_in addr = tcp_address(endpoint.host, endpoint.port);
      if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        throw_errno("bind " + endpoint.to_string());
      }
      if (endpoint.port == 0) {
        sockaddr_in resolved{};
        socklen_t len = sizeof(resolved);
        if (::getsockname(fd, reinterpret_cast<sockaddr*>(&resolved),
                          &len) != 0) {
          throw_errno("getsockname");
        }
        bound.port = ntohs(resolved.sin_port);
      }
    }
    if (::listen(fd, SOMAXCONN) != 0) {
      throw_errno("listen " + endpoint.to_string());
    }
    return Listener(fd, std::move(bound), clock);
  } catch (...) {
    ::close(fd);
    throw;
  }
}

Connection Listener::accept(std::optional<std::chrono::milliseconds> timeout) {
  if (!valid()) throw TransportError("accept on closed listener");
  const util::Clock& clock = clock_or_system(clock_);
  const auto deadline =
      timeout ? std::optional(clock.now() + *timeout) : std::nullopt;
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      try {
        set_nonblocking_cloexec(fd);
        if (endpoint_.kind == Endpoint::Kind::kTcp) {
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        }
      } catch (...) {
        ::close(fd);
        throw;
      }
      return Connection(fd, clock_);
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (deadline && clock.now() >= *deadline) return Connection();
      try {
        wait_ready(fd_, POLLIN, clock, deadline, "accept");
      } catch (const TransportTimeout&) {
        return Connection();
      }
      continue;
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    throw_errno("accept");
  }
}

}  // namespace polarice::net
