#pragma once
// Convolution & friends on NCHW tensors: im2col / col2im, conv2d forward and
// backward, 2x2 max-pooling, nearest 2x upsampling, channel concat, softmax
// and fused softmax-cross-entropy. These are the primitives the U-Net layers
// (nn/) are built from.

#include <cstdint>
#include <vector>

#include "par/thread_pool.h"
#include "tensor/tensor.h"

namespace polarice::tensor {

/// Static geometry of a conv2d. Supports asymmetric padding so even kernels
/// (the paper's 2x2 "up-convolution") can keep 'same' output size
/// (Keras-style: the extra pad goes to bottom/right).
struct Conv2dSpec {
  int in_ch = 0;
  int out_ch = 0;
  int kh = 0;
  int kw = 0;
  int stride = 1;
  int pad_top = 0, pad_left = 0, pad_bottom = 0, pad_right = 0;

  /// 'same' padding for stride 1: output spatial size == input size.
  static Conv2dSpec same(int in_ch, int out_ch, int k);

  /// No padding ('valid').
  static Conv2dSpec valid(int in_ch, int out_ch, int k);

  [[nodiscard]] int out_h(int in_h) const noexcept {
    return (in_h + pad_top + pad_bottom - kh) / stride + 1;
  }
  [[nodiscard]] int out_w(int in_w) const noexcept {
    return (in_w + pad_left + pad_right - kw) / stride + 1;
  }
  /// Rows of the im2col matrix: in_ch * kh * kw.
  [[nodiscard]] int col_rows() const noexcept { return in_ch * kh * kw; }
};

/// Reusable im2col scratch. One arena can serve every conv layer of a model
/// (plumbed through nn::Layer::set_scratch): the buffers grow once to the
/// largest layer's panel and are reused by all of them, instead of every
/// layer carrying its own peak-sized copy. The implicit-GEMM production
/// paths no longer touch these buffers at all (forward and backward both
/// pack panels straight from the tensors); only conv2d_backward_ref — the
/// seed's materializing pipeline kept as ground truth — still fills them.
struct ConvScratch {
  std::vector<float> col;   // im2col panel [C*kh*kw, OH*OW] (ref path only)
  std::vector<float> dcol;  // gradient panel of the same shape (ref path only)
};

/// Optional epilogue fused into conv2d_forward's GEMM C-store: ReLU applied
/// while the output tile is still cache-hot, with an optional 0/1 mask of
/// the pre-activation sign for the backward pass. Bias is always fused (the
/// separate bias pass of the seed no longer exists). Output values are
/// bit-identical to conv2d_forward followed by an elementwise ReLU.
struct ConvFusion {
  bool relu = false;
  /// When non-null, filled with (pre-activation > 0) per output element,
  /// laid out exactly like y [N, OC, OH, OW]. Must hold y.numel() bytes.
  std::uint8_t* relu_mask = nullptr;
};

/// Expands one sample x[C,H,W] into col[C*kh*kw, OH*OW] (zero padding).
/// `pool` parallelizes over the C*kh*kw panel rows; output is identical
/// with and without it.
void im2col(const float* x, int in_h, int in_w, const Conv2dSpec& spec,
            float* col, par::ThreadPool* pool = nullptr);

/// Scatters col[C*kh*kw, OH*OW] gradients back into dx[C,H,W] (accumulating;
/// caller zeroes dx first).
void col2im(const float* col, int in_h, int in_w, const Conv2dSpec& spec,
            float* dx);

/// y[N,OC,OH,OW] = conv(x[N,C,H,W], w[OC,C,kh,kw]) + b[OC], optionally with
/// a fused ReLU epilogue (`fuse`). One implicit GEMM batched over the whole
/// N (sample) dimension: the virtual B packs im2col columns of every sample
/// into one [C*kh*kw, N*OH*OW] operand, so small-plane deep layers get full
/// panels instead of per-sample slivers. Output is bit-identical to the
/// per-sample formulation for any batch size and pool.
void conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                    Tensor& y, const Conv2dSpec& spec, par::ThreadPool* pool,
                    ConvScratch& scratch, const ConvFusion& fuse = {});

/// Gradients of conv2d. dw/db are accumulated into (caller zeroes at the
/// start of a batch); dx is overwritten. Pass dx == nullptr to skip input
/// gradients (first layer).
///
/// Implicit GEMM throughout, batched over N: dW flows through a virtual-A
/// (dY) x virtual-B (transposed im2col of x) product, and dX through a
/// virtual-C sink that scatters GEMM tiles straight into dx (col2im fused
/// into the epilogue) — neither the col nor the dcol matrix is ever
/// materialized. `dy_mask`, when non-null, is a 0/1 plane shaped like dy
/// that is multiplied into dY during packing (a following ReLU layer's
/// backward fused for free; exact, since the mask is 0/1). Results are
/// deterministic for any pool, and match conv2d_backward_ref to float
/// reduction-order tolerance.
void conv2d_backward(const Tensor& x, const Tensor& w, const Tensor& dy,
                     Tensor* dx, Tensor& dw, Tensor& db,
                     const Conv2dSpec& spec, par::ThreadPool* pool,
                     ConvScratch& scratch,
                     const std::uint8_t* dy_mask = nullptr);

/// The seed's materializing backward (im2col + scalar gemm_nt/gemm_tn +
/// col2im, sequential) — the ground truth conv2d_backward is tested and
/// benchmarked against.
void conv2d_backward_ref(const Tensor& x, const Tensor& w, const Tensor& dy,
                         Tensor* dx, Tensor& dw, Tensor& db,
                         const Conv2dSpec& spec, ConvScratch& scratch,
                         const std::uint8_t* dy_mask = nullptr);

/// 2x2/stride-2 max pooling; requires even H and W. `argmax` records the
/// winning corner (0..3) per output element for the backward pass.
void maxpool2x2_forward(const Tensor& x, Tensor& y,
                        std::vector<std::uint8_t>& argmax,
                        par::ThreadPool* pool);

/// Routes dy back to the argmax positions; dx is overwritten.
void maxpool2x2_backward(const Tensor& dy,
                         const std::vector<std::uint8_t>& argmax, Tensor& dx,
                         par::ThreadPool* pool);

/// Nearest-neighbour 2x upsample: y[N,C,2H,2W].
void upsample2x_forward(const Tensor& x, Tensor& y, par::ThreadPool* pool);

/// Backward of nearest 2x upsample: dx = sum of each 2x2 block of dy.
void upsample2x_backward(const Tensor& dy, Tensor& dx, par::ThreadPool* pool);

/// y = concat(a, b) along the channel axis.
void concat_channels(const Tensor& a, const Tensor& b, Tensor& y);

/// Splits dy along channels into da (first a_channels) and db (rest).
void split_channels(const Tensor& dy, int a_channels, Tensor& da, Tensor& db);

/// Per-pixel softmax over the channel axis (numerically stabilized).
void softmax_channel(const Tensor& logits, Tensor& probs);

/// Fused softmax + categorical cross-entropy.
/// `targets` holds one class index per pixel, laid out [N, H, W]; entries
/// < 0 are "ignore" pixels (excluded from loss and gradient).
/// Returns mean loss over non-ignored pixels; writes dlogits = (p - onehot)
/// / count into `dlogits` (zeroed at ignored pixels).
float softmax_cross_entropy(const Tensor& logits,
                            const std::vector<int>& targets, Tensor& probs,
                            Tensor& dlogits);

/// Per-pixel argmax over channels -> class indices laid out [N, H, W].
std::vector<int> argmax_channel(const Tensor& probs);

/// Allocation-free variant: writes the N*H*W class indices into `out`
/// (caller-sized — e.g. a reused buffer or an ExecutionContext scratch
/// lease).
void argmax_channel(const Tensor& probs, int* out);

}  // namespace polarice::tensor
