#include "tensor/conv.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "par/parallel_for.h"
#include "tensor/gemm.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)
#include <immintrin.h>
#define POLARICE_CONV_AVX512 1
#endif

namespace polarice::tensor {

namespace {
void require_4d(const Tensor& t, const char* what) {
  if (t.ndim() != 4) {
    throw std::invalid_argument(std::string(what) + ": expected 4-D tensor, got " +
                                t.shape_str());
  }
}

// Shared geometry of the batched implicit-GEMM formulation. GEMM columns
// index (sample, output pixel) pairs: j = n * plane + oy * ow + ox, so one
// product covers the whole batch (full panels for small-plane deep layers
// instead of per-sample slivers).
struct ConvGeom {
  const Conv2dSpec* spec;
  int batch, in_h, in_w, oh, ow;
  [[nodiscard]] std::int64_t plane() const noexcept {
    return static_cast<std::int64_t>(oh) * ow;
  }
  [[nodiscard]] std::int64_t in_plane() const noexcept {
    return static_cast<std::int64_t>(in_h) * in_w;
  }
};

// Incremental decode of a batched column index j = n*plane + oy*ow + ox.
// Packers and sinks walk short contiguous ranges (one per strip or tile),
// so one integer division at range start plus O(1) advances replaces a
// divide per row — measurably faster on the store-bound thin-K shapes,
// where the per-tile division chain rivaled the 9-deep FMA loop.
struct PixCursor {
  std::int64_t n;
  int oy, ox;

  PixCursor(std::int64_t j, const ConvGeom& g) {
    const std::int64_t plane = g.plane();
    n = j / plane;
    const auto rem = static_cast<int>(j - n * plane);
    oy = rem / g.ow;
    ox = rem - oy * g.ow;
  }

  /// Largest contiguous step from here that stays on one output row.
  [[nodiscard]] int row_run(const ConvGeom& g, std::int64_t remaining)
      const noexcept {
    return static_cast<int>(
        std::min<std::int64_t>(g.ow - ox, remaining));
  }

  /// Advance by `count` columns; `count` must not pass the row end
  /// (row_run enforces that).
  void advance(int count, const ConvGeom& g) noexcept {
    ox += count;
    if (ox == g.ow) {
      ox = 0;
      if (++oy == g.oh) {
        oy = 0;
        ++n;
      }
    }
  }
};

// Implicit-GEMM B packer: serves im2col columns straight from the input
// tensor, batched over samples, so neither forward nor backward ever
// materializes the [C*kh*kw, N*OH*OW] col matrix (the GEMM's packed panels
// are the only copy that ever exists). Values and panel layout are
// identical to packing from a materialized per-sample col.
struct ConvColSource {
  ConvGeom g;
  const float* x;

  static void pack(void* vctx, int k0, int kc, int j0, int cols, float* dst) {
    const auto& ctx = *static_cast<const ConvColSource*>(vctx);
    const Conv2dSpec& spec = *ctx.g.spec;
    const int in_h = ctx.g.in_h, in_w = ctx.g.in_w;
    const PixCursor start(j0, ctx.g);
    for (int p = k0; p < k0 + kc; ++p) {
      float* row = dst + static_cast<std::int64_t>(p - k0) * kGemmNR;
      const int kj = p % spec.kw;
      const int ki = (p / spec.kw) % spec.kh;
      const int c = p / (spec.kw * spec.kh);
      // Columns j map to (sample, output pixel); fill runs that stay on one
      // output row, memcpy-ing the in-image span when stride == 1.
      PixCursor cur = start;
      int t = 0;
      while (t < cols) {
        const int oy = cur.oy;
        const int ox = cur.ox;
        const int run = cur.row_run(ctx.g, cols - t);
        const int iy = oy * spec.stride - spec.pad_top + ki;
        const float* xc =
            ctx.x + (cur.n * spec.in_ch + c) * ctx.g.in_plane();
        float* out = row + t;
        if (iy < 0 || iy >= in_h) {
          for (int q = 0; q < run; ++q) out[q] = 0.0f;
        } else if (spec.stride == 1) {
          const int shift = spec.pad_left - kj;  // ix = ox' - shift
          const int lo = std::clamp(shift, ox, ox + run);
          const int hi = std::clamp(in_w + shift, ox, ox + run);
          for (int q = ox; q < lo; ++q) out[q - ox] = 0.0f;
          if (hi > lo) {
            std::memcpy(out + (lo - ox),
                        xc + static_cast<std::int64_t>(iy) * in_w +
                            (lo - shift),
                        sizeof(float) * (hi - lo));
          }
          for (int q = hi; q < ox + run; ++q) out[q - ox] = 0.0f;
        } else {
          const float* src_row = xc + static_cast<std::int64_t>(iy) * in_w;
          for (int q = 0; q < run; ++q) {
            const int ix = (ox + q) * spec.stride - spec.pad_left + kj;
            out[q] = (ix >= 0 && ix < in_w) ? src_row[ix] : 0.0f;
          }
        }
        cur.advance(run, ctx.g);
        t += run;
      }
      for (int q = cols; q < kGemmNR; ++q) row[q] = 0.0f;
    }
  }
};

// Forward C sink: scatters GEMM tiles (rows = out channels, columns =
// batched output pixels) into the NCHW y tensor with the bias add — and
// optionally ReLU + pre-activation mask — fused into the store while the
// tile is cache-hot. Elementwise, so any parallel delivery split is safe.
struct ConvYSink {
  ConvGeom g;
  float* y;
  const float* bias;
  bool relu;
  std::uint8_t* mask;

  static void store(void* vctx, int i0, int rows, int j0, int cols,
                    const float* tile, std::int64_t ldt) {
    const auto& ctx = *static_cast<const ConvYSink*>(vctx);
    const std::int64_t plane = ctx.g.plane();
    const int out_ch = ctx.g.spec->out_ch;
    const PixCursor start(j0, ctx.g);
    for (int r = 0; r < rows; ++r) {
      const int oc = i0 + r;
      const float bv = ctx.bias[oc];
      const float* trow = tile + static_cast<std::int64_t>(r) * ldt;
      PixCursor cur = start;
      int t = 0;
      while (t < cols) {
        const int run = cur.row_run(ctx.g, cols - t);
        const std::int64_t base = (cur.n * out_ch + oc) * plane +
                                  static_cast<std::int64_t>(cur.oy) * ctx.g.ow +
                                  cur.ox;
        float* out = ctx.y + base;
        const float* src = trow + t;
        const auto scalar_span = [&](int q0, int q1) {
          if (!ctx.relu) {
            for (int qq = q0; qq < q1; ++qq) out[qq] = src[qq] + bv;
          } else if (ctx.mask == nullptr) {
            for (int qq = q0; qq < q1; ++qq) {
              const float v = src[qq] + bv;
              out[qq] = v > 0.0f ? v : 0.0f;
            }
          } else {
            std::uint8_t* mrow = ctx.mask + base;
            for (int qq = q0; qq < q1; ++qq) {
              const float v = src[qq] + bv;
              const bool pos = v > 0.0f;
              mrow[qq] = pos;
              out[qq] = pos ? v : 0.0f;
            }
          }
        };
        int q = 0;
#ifdef POLARICE_CONV_AVX512
        // The store epilogue is the whole point of the fusion on thin-K
        // shapes; keep it vector-width. max(v, 0) with v as the FIRST
        // operand matches the scalar v > 0 ? v : 0 bit for bit: maxps
        // returns the second operand (+0.0) when v is -0.0 (compares
        // equal) or NaN, exactly like the scalar false branch.
        const __m512 vb = _mm512_set1_ps(bv);
        const __m512 vz = _mm512_setzero_ps();
        if (!ctx.relu) {
          for (; q + 16 <= run; q += 16) {
            _mm512_storeu_ps(out + q,
                             _mm512_add_ps(_mm512_loadu_ps(src + q), vb));
          }
        } else if (ctx.mask == nullptr) {
          for (; q + 16 <= run; q += 16) {
            const __m512 v = _mm512_add_ps(_mm512_loadu_ps(src + q), vb);
            _mm512_storeu_ps(out + q, _mm512_max_ps(v, vz));
          }
        } else {
          std::uint8_t* mrow = ctx.mask + base;
          const __m128i ones = _mm_set1_epi8(1);
          for (; q + 16 <= run; q += 16) {
            const __m512 v = _mm512_add_ps(_mm512_loadu_ps(src + q), vb);
            const __mmask16 pos = _mm512_cmp_ps_mask(v, vz, _CMP_GT_OQ);
            _mm512_storeu_ps(out + q, _mm512_max_ps(v, vz));
            _mm_storeu_si128(reinterpret_cast<__m128i*>(mrow + q),
                             _mm_maskz_mov_epi8(pos, ones));
          }
        }
#endif
        scalar_span(q, run);
        cur.advance(run, ctx.g);
        t += run;
      }
    }
  }
};

// dW A packer: the batched dY operand A[OC, N*plane] = dy[n][oc][pixel],
// optionally multiplied by the 0/1 ReLU mask of the layer's own output.
struct DyAPacker {
  ConvGeom g;
  const float* dy;
  const std::uint8_t* mask;

  static void pack(void* vctx, int i0, int rows, int k0, int kc, float* dst) {
    const auto& ctx = *static_cast<const DyAPacker*>(vctx);
    const std::int64_t plane = ctx.g.plane();
    const int out_ch = ctx.g.spec->out_ch;
    PixCursor cur(k0, ctx.g);
    int p = k0;
    while (p < k0 + kc) {
      const int run = cur.row_run(ctx.g, k0 + kc - p);
      const std::int64_t base = cur.n * out_ch * plane +
                                static_cast<std::int64_t>(cur.oy) * ctx.g.ow +
                                cur.ox;
      for (int q = 0; q < run; ++q) {
        float* col = dst + static_cast<std::int64_t>(p - k0 + q) * kGemmMR;
        for (int r = 0; r < rows; ++r) {
          const std::int64_t idx =
              base + q + static_cast<std::int64_t>(i0 + r) * plane;
          const float v = ctx.dy[idx];
          col[r] = (ctx.mask == nullptr || ctx.mask[idx]) ? v : 0.0f;
        }
        for (int r = rows; r < kGemmMR; ++r) col[r] = 0.0f;
      }
      cur.advance(run, ctx.g);
      p += run;
    }
  }
};

// dW B packer: the transposed im2col operand B[N*plane, C*kh*kw] =
// col_n[ckk][pixel] — the same virtual values as ConvColSource, served
// k-major instead of j-major (rows are now the reduction axis).
struct ColTransSource {
  ConvGeom g;
  const float* x;

  static void pack(void* vctx, int k0, int kc, int j0, int cols, float* dst) {
    const auto& ctx = *static_cast<const ColTransSource*>(vctx);
    const Conv2dSpec& spec = *ctx.g.spec;
    const int in_h = ctx.g.in_h, in_w = ctx.g.in_w;
    const PixCursor start(k0, ctx.g);
    for (int t = 0; t < cols; ++t) {
      const int j = j0 + t;
      const int kj = j % spec.kw;
      const int ki = (j / spec.kw) % spec.kh;
      const int c = j / (spec.kw * spec.kh);
      const int shift = spec.pad_left - kj;
      PixCursor cur = start;
      int p = k0;
      while (p < k0 + kc) {
        const int oy = cur.oy;
        const int ox = cur.ox;
        const int run = cur.row_run(ctx.g, k0 + kc - p);
        const int iy = oy * spec.stride - spec.pad_top + ki;
        float* out = dst + static_cast<std::int64_t>(p - k0) * kGemmNR + t;
        if (iy < 0 || iy >= in_h) {
          for (int q = 0; q < run; ++q) out[q * kGemmNR] = 0.0f;
        } else {
          const float* src_row =
              ctx.x + (cur.n * spec.in_ch + c) * ctx.g.in_plane() +
              static_cast<std::int64_t>(iy) * in_w;
          if (spec.stride == 1) {
            const int lo = std::clamp(shift, ox, ox + run);
            const int hi = std::clamp(in_w + shift, ox, ox + run);
            for (int q = ox; q < lo; ++q) out[(q - ox) * kGemmNR] = 0.0f;
            for (int q = lo; q < hi; ++q) {
              out[(q - ox) * kGemmNR] = src_row[q - shift];
            }
            for (int q = hi; q < ox + run; ++q) out[(q - ox) * kGemmNR] = 0.0f;
          } else {
            for (int q = 0; q < run; ++q) {
              const int ix = (ox + q) * spec.stride - spec.pad_left + kj;
              out[q * kGemmNR] =
                  (ix >= 0 && ix < in_w) ? src_row[ix] : 0.0f;
            }
          }
        }
        cur.advance(run, ctx.g);
        p += run;
      }
    }
    // Zero-pad the trailing strip columns the caller did not request.
    for (int p = 0; p < kc; ++p) {
      float* row = dst + static_cast<std::int64_t>(p) * kGemmNR;
      for (int t = cols; t < kGemmNR; ++t) row[t] = 0.0f;
    }
  }
};

// dW C sink: plain accumulate into the dense [OC, C*kh*kw] gradient (the
// caller zeroes dw at the start of a batch). Elementwise.
struct AccumulateSink {
  float* c;
  std::int64_t ld;

  static void store(void* vctx, int i0, int rows, int j0, int cols,
                    const float* tile, std::int64_t ldt) {
    const auto& ctx = *static_cast<const AccumulateSink*>(vctx);
    for (int r = 0; r < rows; ++r) {
      float* crow = ctx.c + static_cast<std::int64_t>(i0 + r) * ctx.ld + j0;
      const float* trow = tile + static_cast<std::int64_t>(r) * ldt;
      for (int j = 0; j < cols; ++j) crow[j] += trow[j];
    }
  }
};

// dX B packer: the batched dY operand B[OC, N*plane], optionally masked.
struct DyBSource {
  ConvGeom g;
  const float* dy;
  const std::uint8_t* mask;

  static void pack(void* vctx, int k0, int kc, int j0, int cols, float* dst) {
    const auto& ctx = *static_cast<const DyBSource*>(vctx);
    const std::int64_t plane = ctx.g.plane();
    const int out_ch = ctx.g.spec->out_ch;
    const PixCursor start(j0, ctx.g);
    for (int p = k0; p < k0 + kc; ++p) {
      float* row = dst + static_cast<std::int64_t>(p - k0) * kGemmNR;
      PixCursor cur = start;
      int t = 0;
      while (t < cols) {
        const int run = cur.row_run(ctx.g, cols - t);
        const std::int64_t base = (cur.n * out_ch + p) * plane +
                                  static_cast<std::int64_t>(cur.oy) * ctx.g.ow +
                                  cur.ox;
        if (ctx.mask == nullptr) {
          std::memcpy(row + t, ctx.dy + base, sizeof(float) * run);
        } else {
          const float* src = ctx.dy + base;
          const std::uint8_t* msk = ctx.mask + base;
          for (int q = 0; q < run; ++q) {
            row[t + q] = msk[q] ? src[q] : 0.0f;
          }
        }
        cur.advance(run, ctx.g);
        t += run;
      }
      for (int q = cols; q < kGemmNR; ++q) row[q] = 0.0f;
    }
  }
};

// dX C sink: fuses col2im into the GEMM epilogue — every finished dcol tile
// is scattered (accumulating) straight into dx, so the [C*kh*kw, N*plane]
// dcol matrix never exists. Rows of one channel overlap in dx (all kh*kw
// taps hit the same plane), so delivery is row-grouped at kh*kw granularity:
// different channels scatter in parallel, one channel's taps stay
// sequential. dx must be zeroed by the caller.
struct Col2imSink {
  ConvGeom g;
  float* dx;

  static void store(void* vctx, int i0, int rows, int j0, int cols,
                    const float* tile, std::int64_t ldt) {
    const auto& ctx = *static_cast<const Col2imSink*>(vctx);
    const Conv2dSpec& spec = *ctx.g.spec;
    const int in_h = ctx.g.in_h, in_w = ctx.g.in_w;
    const PixCursor start(j0, ctx.g);
    for (int r = 0; r < rows; ++r) {
      const int row_id = i0 + r;
      const int kj = row_id % spec.kw;
      const int ki = (row_id / spec.kw) % spec.kh;
      const int c = row_id / (spec.kw * spec.kh);
      const int shift = spec.pad_left - kj;
      const float* trow = tile + static_cast<std::int64_t>(r) * ldt;
      PixCursor cur = start;
      int t = 0;
      while (t < cols) {
        const int oy = cur.oy;
        const int ox = cur.ox;
        const int run = cur.row_run(ctx.g, cols - t);
        const int iy = oy * spec.stride - spec.pad_top + ki;
        if (iy >= 0 && iy < in_h) {
          float* dst_row = ctx.dx + (cur.n * spec.in_ch + c) * ctx.g.in_plane() +
                           static_cast<std::int64_t>(iy) * in_w;
          const float* src = trow + t;
          if (spec.stride == 1) {
            // ix = ox' - shift: the in-image span accumulates contiguously.
            const int lo = std::clamp(shift, ox, ox + run);
            const int hi = std::clamp(in_w + shift, ox, ox + run);
            float* base = dst_row - shift;
            for (int q = lo; q < hi; ++q) base[q] += src[q - ox];
          } else {
            for (int q = 0; q < run; ++q) {
              const int ix = (ox + q) * spec.stride - spec.pad_left + kj;
              if (ix >= 0 && ix < in_w) dst_row[ix] += src[q];
            }
          }
        }
        cur.advance(run, ctx.g);
        t += run;
      }
    }
  }
};
}  // namespace

Conv2dSpec Conv2dSpec::same(int in_ch, int out_ch, int k) {
  Conv2dSpec s;
  s.in_ch = in_ch;
  s.out_ch = out_ch;
  s.kh = s.kw = k;
  s.stride = 1;
  // Keras 'same': total pad = k - 1; extra goes bottom/right for even k.
  s.pad_top = s.pad_left = (k - 1) / 2;
  s.pad_bottom = s.pad_right = k / 2;
  return s;
}

Conv2dSpec Conv2dSpec::valid(int in_ch, int out_ch, int k) {
  Conv2dSpec s;
  s.in_ch = in_ch;
  s.out_ch = out_ch;
  s.kh = s.kw = k;
  return s;
}

void im2col(const float* x, int in_h, int in_w, const Conv2dSpec& spec,
            float* col, par::ThreadPool* pool) {
  const int oh = spec.out_h(in_h);
  const int ow = spec.out_w(in_w);
  const std::int64_t plane = static_cast<std::int64_t>(oh) * ow;
  // Each (c, ki, kj) triple owns one disjoint panel row-group, so the
  // col_rows() iterations parallelize without coordination.
  par::parallel_for(
      pool, 0, static_cast<std::size_t>(spec.col_rows()),
      [&](std::size_t row_id) {
        const int kj = static_cast<int>(row_id) % spec.kw;
        const int ki = (static_cast<int>(row_id) / spec.kw) % spec.kh;
        const int c = static_cast<int>(row_id) / (spec.kw * spec.kh);
        const float* xc = x + static_cast<std::int64_t>(c) * in_h * in_w;
        float* dst = col + static_cast<std::int64_t>(row_id) * plane;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * spec.stride - spec.pad_top + ki;
          float* row = dst + static_cast<std::int64_t>(oy) * ow;
          if (iy < 0 || iy >= in_h) {
            std::memset(row, 0, sizeof(float) * ow);
            continue;
          }
          const float* src_row = xc + static_cast<std::int64_t>(iy) * in_w;
          if (spec.stride == 1) {
            // ix = ox - shift: zero the out-of-image edges, memcpy the rest.
            // Both bounds clamp into [0, ow]: with a wide kernel on a tiny
            // image, shift itself can exceed ow (then the whole row is
            // padding and the fill must not spill into the next panel).
            const int shift = spec.pad_left - kj;
            const int ox0 = std::clamp(shift, 0, ow);
            const int ox1 = std::clamp(in_w + shift, ox0, ow);
            for (int ox = 0; ox < ox0; ++ox) row[ox] = 0.0f;
            if (ox1 > ox0) {
              std::memcpy(row + ox0, src_row + ox0 - shift,
                          sizeof(float) * (ox1 - ox0));
            }
            for (int ox = ox1; ox < ow; ++ox) row[ox] = 0.0f;
          } else {
            for (int ox = 0; ox < ow; ++ox) {
              const int ix = ox * spec.stride - spec.pad_left + kj;
              row[ox] = (ix >= 0 && ix < in_w) ? src_row[ix] : 0.0f;
            }
          }
        }
      });
}

void col2im(const float* col, int in_h, int in_w, const Conv2dSpec& spec,
            float* dx) {
  const int oh = spec.out_h(in_h);
  const int ow = spec.out_w(in_w);
  const std::int64_t plane = static_cast<std::int64_t>(oh) * ow;
  for (int c = 0; c < spec.in_ch; ++c) {
    float* xc = dx + static_cast<std::int64_t>(c) * in_h * in_w;
    for (int ki = 0; ki < spec.kh; ++ki) {
      for (int kj = 0; kj < spec.kw; ++kj) {
        const float* src =
            col + (((static_cast<std::int64_t>(c) * spec.kh) + ki) * spec.kw +
                   kj) * plane;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * spec.stride - spec.pad_top + ki;
          if (iy < 0 || iy >= in_h) continue;
          const float* row = src + static_cast<std::int64_t>(oy) * ow;
          float* dst_row = xc + static_cast<std::int64_t>(iy) * in_w;
          if (spec.stride == 1) {
            // ix = ox - shift: the in-image span accumulates contiguously.
            const int shift = spec.pad_left - kj;
            const int ox0 = std::max(0, shift);
            const int ox1 = std::min(ow, in_w + shift);
            float* base = dst_row - shift;
            for (int ox = ox0; ox < ox1; ++ox) base[ox] += row[ox];
          } else {
            for (int ox = 0; ox < ow; ++ox) {
              const int ix = ox * spec.stride - spec.pad_left + kj;
              if (ix >= 0 && ix < in_w) dst_row[ix] += row[ox];
            }
          }
        }
      }
    }
  }
}

void conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                    Tensor& y, const Conv2dSpec& spec, par::ThreadPool* pool,
                    ConvScratch& scratch, const ConvFusion& fuse) {
  // The implicit-GEMM forward never touches the col scratch; the parameter
  // stays so forward/backward share one arena-passing call shape.
  (void)scratch;
  require_4d(x, "conv2d_forward(x)");
  const int batch = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  if (x.dim(1) != spec.in_ch) {
    throw std::invalid_argument("conv2d_forward: channel mismatch");
  }
  const int oh = spec.out_h(in_h), ow = spec.out_w(in_w);
  if (y.ndim() != 4 || y.dim(0) != batch || y.dim(1) != spec.out_ch ||
      y.dim(2) != oh || y.dim(3) != ow) {
    y = Tensor({batch, spec.out_ch, oh, ow});
  }
  const std::int64_t plane = static_cast<std::int64_t>(oh) * ow;
  const ConvGeom geom{&spec, batch, in_h, in_w, oh, ow};

  // One implicit GEMM over the whole batch: B packs im2col columns straight
  // from x, C tiles land in y through the bias(+ReLU) sink.
  ConvColSource bsrc{geom, x.data()};
  ConvYSink ysink{geom, y.data(), b.data(), fuse.relu, fuse.relu_mask};
  const StridedA a{w.data(), spec.col_rows(), 1};
  gemm_virtual(spec.out_ch, static_cast<int>(batch * plane), spec.col_rows(),
               a.packer(), BPacker{&bsrc, &ConvColSource::pack},
               CSink{&ysink, &ConvYSink::store, /*row_group=*/0}, pool);
}

void conv2d_backward(const Tensor& x, const Tensor& w, const Tensor& dy,
                     Tensor* dx, Tensor& dw, Tensor& db,
                     const Conv2dSpec& spec, par::ThreadPool* pool,
                     ConvScratch& scratch, const std::uint8_t* dy_mask) {
  // Fully implicit: no col/dcol materialization, so the scratch buffers are
  // untouched (kept in the signature for call-shape stability with the ref
  // path and older callers).
  (void)scratch;
  require_4d(x, "conv2d_backward(x)");
  require_4d(dy, "conv2d_backward(dy)");
  const int batch = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const int oh = spec.out_h(in_h), ow = spec.out_w(in_w);
  const std::int64_t plane = static_cast<std::int64_t>(oh) * ow;
  const int cols_total = static_cast<int>(batch * plane);
  const ConvGeom geom{&spec, batch, in_h, in_w, oh, ow};

  // db[oc] += sum of (masked) dY over samples and the spatial plane, in the
  // seed's per-sample double-accumulator order.
  for (int n = 0; n < batch; ++n) {
    const float* dyn = dy.data() + dy.offset4(n, 0, 0, 0);
    const std::uint8_t* mn =
        dy_mask != nullptr ? dy_mask + dy.offset4(n, 0, 0, 0) : nullptr;
    for (int oc = 0; oc < spec.out_ch; ++oc) {
      const float* row = dyn + static_cast<std::int64_t>(oc) * plane;
      double acc = 0.0;
      if (mn == nullptr) {
        for (std::int64_t i = 0; i < plane; ++i) acc += row[i];
      } else {
        const std::uint8_t* mrow = mn + static_cast<std::int64_t>(oc) * plane;
        for (std::int64_t i = 0; i < plane; ++i) {
          acc += mrow[i] ? row[i] : 0.0f;
        }
      }
      db[oc] += static_cast<float>(acc);
    }
  }

  // dW[OC, CKK] += dY[OC, N*plane] * col[N*plane, CKK] — virtual A (batched
  // dY) times virtual B (transposed im2col of x), one GEMM for the batch.
  {
    DyAPacker asrc{geom, dy.data(), dy_mask};
    ColTransSource bsrc{geom, x.data()};
    AccumulateSink sink{dw.data(), spec.col_rows()};
    gemm_virtual(spec.out_ch, spec.col_rows(), cols_total,
                 APacker{&asrc, &DyAPacker::pack},
                 BPacker{&bsrc, &ColTransSource::pack},
                 CSink{&sink, &AccumulateSink::store, /*row_group=*/0}, pool);
  }

  if (dx != nullptr) {
    // dcol[CKK, N*plane] = W^T[CKK, OC] * dY[OC, N*plane], scattered into dx
    // through the col2im sink (channel-grouped delivery keeps overlapping
    // taps race-free).
    if (!dx->same_shape(x)) *dx = Tensor(x.shape());
    dx->zero();
    const StridedA a{w.data(), 1, spec.col_rows()};
    DyBSource bsrc{geom, dy.data(), dy_mask};
    Col2imSink sink{geom, dx->data()};
    gemm_virtual(spec.col_rows(), cols_total, spec.out_ch, a.packer(),
                 BPacker{&bsrc, &DyBSource::pack},
                 CSink{&sink, &Col2imSink::store,
                       /*row_group=*/spec.kh * spec.kw},
                 pool);
  }
}

void conv2d_backward_ref(const Tensor& x, const Tensor& w, const Tensor& dy,
                         Tensor* dx, Tensor& dw, Tensor& db,
                         const Conv2dSpec& spec, ConvScratch& scratch,
                         const std::uint8_t* dy_mask) {
  require_4d(x, "conv2d_backward_ref(x)");
  require_4d(dy, "conv2d_backward_ref(dy)");
  const int batch = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const int oh = spec.out_h(in_h), ow = spec.out_w(in_w);
  const std::int64_t plane = static_cast<std::int64_t>(oh) * ow;
  scratch.col.resize(static_cast<std::size_t>(spec.col_rows()) * plane);
  std::vector<float> masked_dy;
  if (dx != nullptr) {
    scratch.dcol.resize(static_cast<std::size_t>(spec.col_rows()) * plane);
    if (!dx->same_shape(x)) *dx = Tensor(x.shape());
  }

  for (int n = 0; n < batch; ++n) {
    const float* xn = x.data() + x.offset4(n, 0, 0, 0);
    const float* dyn = dy.data() + dy.offset4(n, 0, 0, 0);
    if (dy_mask != nullptr) {
      const std::uint8_t* mn = dy_mask + dy.offset4(n, 0, 0, 0);
      const std::size_t count =
          static_cast<std::size_t>(spec.out_ch) * plane;
      masked_dy.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        masked_dy[i] = mn[i] ? dyn[i] : 0.0f;
      }
      dyn = masked_dy.data();
    }
    im2col(xn, in_h, in_w, spec, scratch.col.data());
    // dW[OC, CKK] += dY_n[OC, plane] * col[CKK, plane]^T
    gemm_nt_ref(spec.out_ch, spec.col_rows(), static_cast<int>(plane), dyn,
                scratch.col.data(), dw.data(), /*accumulate=*/true);
    // db[oc] += sum of dY_n over the spatial plane
    for (int oc = 0; oc < spec.out_ch; ++oc) {
      const float* row = dyn + static_cast<std::int64_t>(oc) * plane;
      double acc = 0.0;
      for (std::int64_t i = 0; i < plane; ++i) acc += row[i];
      db[oc] += static_cast<float>(acc);
    }
    if (dx != nullptr) {
      // dcol[CKK, plane] = W[OC, CKK]^T * dY_n[OC, plane]
      gemm_tn_ref(spec.col_rows(), static_cast<int>(plane), spec.out_ch,
                  w.data(), dyn, scratch.dcol.data(), /*accumulate=*/false);
      float* dxn = dx->data() + dx->offset4(n, 0, 0, 0);
      std::memset(dxn, 0,
                  sizeof(float) * static_cast<std::size_t>(spec.in_ch) * in_h *
                      in_w);
      col2im(scratch.dcol.data(), in_h, in_w, spec, dxn);
    }
  }
}

void maxpool2x2_forward(const Tensor& x, Tensor& y,
                        std::vector<std::uint8_t>& argmax,
                        par::ThreadPool* pool) {
  require_4d(x, "maxpool2x2_forward");
  const int batch = x.dim(0), ch = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (h % 2 != 0 || w % 2 != 0) {
    throw std::invalid_argument("maxpool2x2: H and W must be even");
  }
  const int oh = h / 2, ow = w / 2;
  if (y.ndim() != 4 || y.dim(0) != batch || y.dim(1) != ch || y.dim(2) != oh ||
      y.dim(3) != ow) {
    y = Tensor({batch, ch, oh, ow});
  }
  argmax.resize(static_cast<std::size_t>(y.numel()));

  const std::size_t planes = static_cast<std::size_t>(batch) * ch;
  par::parallel_for(pool, 0, planes, [&](std::size_t p) {
    const float* xp = x.data() + static_cast<std::int64_t>(p) * h * w;
    float* yp = y.data() + static_cast<std::int64_t>(p) * oh * ow;
    std::uint8_t* ap = argmax.data() + static_cast<std::int64_t>(p) * oh * ow;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        const int iy = oy * 2, ix = ox * 2;
        const float v00 = xp[iy * w + ix];
        const float v01 = xp[iy * w + ix + 1];
        const float v10 = xp[(iy + 1) * w + ix];
        const float v11 = xp[(iy + 1) * w + ix + 1];
        float best = v00;
        std::uint8_t which = 0;
        if (v01 > best) { best = v01; which = 1; }
        if (v10 > best) { best = v10; which = 2; }
        if (v11 > best) { best = v11; which = 3; }
        yp[oy * ow + ox] = best;
        ap[oy * ow + ox] = which;
      }
    }
  });
}

void maxpool2x2_backward(const Tensor& dy,
                         const std::vector<std::uint8_t>& argmax, Tensor& dx,
                         par::ThreadPool* pool) {
  require_4d(dy, "maxpool2x2_backward");
  const int batch = dy.dim(0), ch = dy.dim(1), oh = dy.dim(2), ow = dy.dim(3);
  const int h = oh * 2, w = ow * 2;
  if (dx.ndim() != 4 || dx.dim(0) != batch || dx.dim(1) != ch ||
      dx.dim(2) != h || dx.dim(3) != w) {
    dx = Tensor({batch, ch, h, w});
  }
  dx.zero();
  const std::size_t planes = static_cast<std::size_t>(batch) * ch;
  par::parallel_for(pool, 0, planes, [&](std::size_t p) {
    const float* dyp = dy.data() + static_cast<std::int64_t>(p) * oh * ow;
    const std::uint8_t* ap =
        argmax.data() + static_cast<std::int64_t>(p) * oh * ow;
    float* dxp = dx.data() + static_cast<std::int64_t>(p) * h * w;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        const std::uint8_t which = ap[oy * ow + ox];
        const int iy = oy * 2 + (which >> 1);
        const int ix = ox * 2 + (which & 1);
        dxp[iy * w + ix] += dyp[oy * ow + ox];
      }
    }
  });
}

void upsample2x_forward(const Tensor& x, Tensor& y, par::ThreadPool* pool) {
  require_4d(x, "upsample2x_forward");
  const int batch = x.dim(0), ch = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = h * 2, ow = w * 2;
  if (y.ndim() != 4 || y.dim(0) != batch || y.dim(1) != ch || y.dim(2) != oh ||
      y.dim(3) != ow) {
    y = Tensor({batch, ch, oh, ow});
  }
  const std::size_t planes = static_cast<std::size_t>(batch) * ch;
  par::parallel_for(pool, 0, planes, [&](std::size_t p) {
    const float* xp = x.data() + static_cast<std::int64_t>(p) * h * w;
    float* yp = y.data() + static_cast<std::int64_t>(p) * oh * ow;
    for (int iy = 0; iy < h; ++iy) {
      for (int ix = 0; ix < w; ++ix) {
        const float v = xp[iy * w + ix];
        float* base = yp + (iy * 2) * ow + ix * 2;
        base[0] = v;
        base[1] = v;
        base[ow] = v;
        base[ow + 1] = v;
      }
    }
  });
}

void upsample2x_backward(const Tensor& dy, Tensor& dx, par::ThreadPool* pool) {
  require_4d(dy, "upsample2x_backward");
  const int batch = dy.dim(0), ch = dy.dim(1), oh = dy.dim(2), ow = dy.dim(3);
  if (oh % 2 != 0 || ow % 2 != 0) {
    throw std::invalid_argument("upsample2x_backward: odd upstream size");
  }
  const int h = oh / 2, w = ow / 2;
  if (dx.ndim() != 4 || dx.dim(0) != batch || dx.dim(1) != ch ||
      dx.dim(2) != h || dx.dim(3) != w) {
    dx = Tensor({batch, ch, h, w});
  }
  const std::size_t planes = static_cast<std::size_t>(batch) * ch;
  par::parallel_for(pool, 0, planes, [&](std::size_t p) {
    const float* dyp = dy.data() + static_cast<std::int64_t>(p) * oh * ow;
    float* dxp = dx.data() + static_cast<std::int64_t>(p) * h * w;
    for (int iy = 0; iy < h; ++iy) {
      for (int ix = 0; ix < w; ++ix) {
        const float* base = dyp + (iy * 2) * ow + ix * 2;
        dxp[iy * w + ix] = base[0] + base[1] + base[ow] + base[ow + 1];
      }
    }
  });
}

void concat_channels(const Tensor& a, const Tensor& b, Tensor& y) {
  require_4d(a, "concat_channels(a)");
  require_4d(b, "concat_channels(b)");
  if (a.dim(0) != b.dim(0) || a.dim(2) != b.dim(2) || a.dim(3) != b.dim(3)) {
    throw std::invalid_argument("concat_channels: spatial/batch mismatch");
  }
  const int batch = a.dim(0), ca = a.dim(1), cb = b.dim(1);
  const int h = a.dim(2), w = a.dim(3);
  if (y.ndim() != 4 || y.dim(0) != batch || y.dim(1) != ca + cb ||
      y.dim(2) != h || y.dim(3) != w) {
    y = Tensor({batch, ca + cb, h, w});
  }
  const std::int64_t plane = static_cast<std::int64_t>(h) * w;
  for (int n = 0; n < batch; ++n) {
    std::memcpy(y.data() + y.offset4(n, 0, 0, 0),
                a.data() + a.offset4(n, 0, 0, 0),
                sizeof(float) * static_cast<std::size_t>(ca) * plane);
    std::memcpy(y.data() + y.offset4(n, ca, 0, 0),
                b.data() + b.offset4(n, 0, 0, 0),
                sizeof(float) * static_cast<std::size_t>(cb) * plane);
  }
}

void split_channels(const Tensor& dy, int a_channels, Tensor& da, Tensor& db) {
  require_4d(dy, "split_channels");
  const int batch = dy.dim(0), total = dy.dim(1);
  if (a_channels <= 0 || a_channels >= total) {
    throw std::invalid_argument("split_channels: bad split point");
  }
  const int h = dy.dim(2), w = dy.dim(3);
  const int b_channels = total - a_channels;
  if (da.ndim() != 4 || da.dim(0) != batch || da.dim(1) != a_channels ||
      da.dim(2) != h || da.dim(3) != w) {
    da = Tensor({batch, a_channels, h, w});
  }
  if (db.ndim() != 4 || db.dim(0) != batch || db.dim(1) != b_channels ||
      db.dim(2) != h || db.dim(3) != w) {
    db = Tensor({batch, b_channels, h, w});
  }
  const std::int64_t plane = static_cast<std::int64_t>(h) * w;
  for (int n = 0; n < batch; ++n) {
    std::memcpy(da.data() + da.offset4(n, 0, 0, 0),
                dy.data() + dy.offset4(n, 0, 0, 0),
                sizeof(float) * static_cast<std::size_t>(a_channels) * plane);
    std::memcpy(db.data() + db.offset4(n, 0, 0, 0),
                dy.data() + dy.offset4(n, a_channels, 0, 0),
                sizeof(float) * static_cast<std::size_t>(b_channels) * plane);
  }
}

void softmax_channel(const Tensor& logits, Tensor& probs) {
  require_4d(logits, "softmax_channel");
  if (!probs.same_shape(logits)) probs = Tensor(logits.shape());
  const int batch = logits.dim(0), ch = logits.dim(1);
  const std::int64_t plane =
      static_cast<std::int64_t>(logits.dim(2)) * logits.dim(3);
  for (int n = 0; n < batch; ++n) {
    const float* ln = logits.data() + logits.offset4(n, 0, 0, 0);
    float* pn = probs.data() + probs.offset4(n, 0, 0, 0);
    for (std::int64_t i = 0; i < plane; ++i) {
      float mx = ln[i];
      for (int c = 1; c < ch; ++c) mx = std::max(mx, ln[c * plane + i]);
      float denom = 0.0f;
      for (int c = 0; c < ch; ++c) {
        const float e = std::exp(ln[c * plane + i] - mx);
        pn[c * plane + i] = e;
        denom += e;
      }
      const float inv = 1.0f / denom;
      for (int c = 0; c < ch; ++c) pn[c * plane + i] *= inv;
    }
  }
}

float softmax_cross_entropy(const Tensor& logits,
                            const std::vector<int>& targets, Tensor& probs,
                            Tensor& dlogits) {
  require_4d(logits, "softmax_cross_entropy");
  const int batch = logits.dim(0), ch = logits.dim(1);
  const std::int64_t plane =
      static_cast<std::int64_t>(logits.dim(2)) * logits.dim(3);
  if (static_cast<std::int64_t>(targets.size()) != batch * plane) {
    throw std::invalid_argument("softmax_cross_entropy: target size mismatch");
  }
  softmax_channel(logits, probs);
  if (!dlogits.same_shape(logits)) dlogits = Tensor(logits.shape());
  dlogits.zero();

  // First pass: count contributing pixels so the gradient is scaled by the
  // same normalizer as the loss.
  std::int64_t counted = 0;
  for (const int t : targets) counted += t >= 0;
  if (counted == 0) return 0.0f;
  const float inv_count = 1.0f / static_cast<float>(counted);

  double loss = 0.0;
  constexpr float kEps = 1e-12f;
  for (int n = 0; n < batch; ++n) {
    const float* pn = probs.data() + probs.offset4(n, 0, 0, 0);
    float* dn = dlogits.data() + dlogits.offset4(n, 0, 0, 0);
    const int* tn = targets.data() + static_cast<std::int64_t>(n) * plane;
    for (std::int64_t i = 0; i < plane; ++i) {
      const int t = tn[i];
      if (t < 0) continue;
      if (t >= ch) {
        throw std::invalid_argument("softmax_cross_entropy: target >= classes");
      }
      loss -= std::log(std::max(pn[t * plane + i], kEps));
      for (int c = 0; c < ch; ++c) {
        const float grad = pn[c * plane + i] - (c == t ? 1.0f : 0.0f);
        dn[c * plane + i] = grad * inv_count;
      }
    }
  }
  return static_cast<float>(loss * inv_count);
}

std::vector<int> argmax_channel(const Tensor& probs) {
  require_4d(probs, "argmax_channel");
  std::vector<int> out(static_cast<std::size_t>(
      probs.dim(0) * static_cast<std::int64_t>(probs.dim(2)) * probs.dim(3)));
  argmax_channel(probs, out.data());
  return out;
}

void argmax_channel(const Tensor& probs, int* out_ptr) {
  require_4d(probs, "argmax_channel");
  const int batch = probs.dim(0), ch = probs.dim(1);
  const std::int64_t plane =
      static_cast<std::int64_t>(probs.dim(2)) * probs.dim(3);
  for (int n = 0; n < batch; ++n) {
    const float* pn = probs.data() + probs.offset4(n, 0, 0, 0);
    int* on = out_ptr + static_cast<std::int64_t>(n) * plane;
    for (std::int64_t i = 0; i < plane; ++i) {
      int best = 0;
      float best_v = pn[i];
      for (int c = 1; c < ch; ++c) {
        const float v = pn[c * plane + i];
        if (v > best_v) {
          best_v = v;
          best = c;
        }
      }
      on[i] = best;
    }
  }
}

}  // namespace polarice::tensor
