#include "tensor/conv.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "par/parallel_for.h"
#include "tensor/gemm.h"

namespace polarice::tensor {

namespace {
void require_4d(const Tensor& t, const char* what) {
  if (t.ndim() != 4) {
    throw std::invalid_argument(std::string(what) + ": expected 4-D tensor, got " +
                                t.shape_str());
  }
}

// Implicit-GEMM B packer: serves im2col columns straight from the input
// image, so the forward pass never materializes the [C*kh*kw, OH*OW] col
// matrix (the GEMM's packed panels are the only copy that ever exists).
// Values and panel layout are identical to packing from a materialized col.
struct ConvColSource {
  const float* x;
  int in_h, in_w, oh, ow;
  const Conv2dSpec* spec;

  static void pack(void* vctx, int k0, int kc, int j0, int cols, float* dst) {
    const auto& ctx = *static_cast<const ConvColSource*>(vctx);
    const Conv2dSpec& spec = *ctx.spec;
    for (int p = k0; p < k0 + kc; ++p) {
      float* row = dst + static_cast<std::int64_t>(p - k0) * kGemmNR;
      const int kj = p % spec.kw;
      const int ki = (p / spec.kw) % spec.kh;
      const int c = p / (spec.kw * spec.kh);
      const float* xc =
          ctx.x + static_cast<std::int64_t>(c) * ctx.in_h * ctx.in_w;
      // Columns j map to output pixels (oy, ox); fill runs that stay on one
      // output row, memcpy-ing the in-image span when stride == 1.
      int t = 0;
      while (t < cols) {
        const int j = j0 + t;
        const int oy = j / ctx.ow;
        const int ox = j % ctx.ow;
        const int run = std::min(ctx.ow - ox, cols - t);
        const int iy = oy * spec.stride - spec.pad_top + ki;
        float* out = row + t;
        if (iy < 0 || iy >= ctx.in_h) {
          for (int q = 0; q < run; ++q) out[q] = 0.0f;
        } else if (spec.stride == 1) {
          const int shift = spec.pad_left - kj;  // ix = ox' - shift
          const int lo = std::clamp(shift, ox, ox + run);
          const int hi = std::clamp(ctx.in_w + shift, ox, ox + run);
          for (int q = ox; q < lo; ++q) out[q - ox] = 0.0f;
          if (hi > lo) {
            std::memcpy(out + (lo - ox),
                        xc + static_cast<std::int64_t>(iy) * ctx.in_w +
                            (lo - shift),
                        sizeof(float) * (hi - lo));
          }
          for (int q = hi; q < ox + run; ++q) out[q - ox] = 0.0f;
        } else {
          const float* src_row = xc + static_cast<std::int64_t>(iy) * ctx.in_w;
          for (int q = 0; q < run; ++q) {
            const int ix = (ox + q) * spec.stride - spec.pad_left + kj;
            out[q] = (ix >= 0 && ix < ctx.in_w) ? src_row[ix] : 0.0f;
          }
        }
        t += run;
      }
      for (int q = cols; q < kGemmNR; ++q) row[q] = 0.0f;
    }
  }
};
}  // namespace

Conv2dSpec Conv2dSpec::same(int in_ch, int out_ch, int k) {
  Conv2dSpec s;
  s.in_ch = in_ch;
  s.out_ch = out_ch;
  s.kh = s.kw = k;
  s.stride = 1;
  // Keras 'same': total pad = k - 1; extra goes bottom/right for even k.
  s.pad_top = s.pad_left = (k - 1) / 2;
  s.pad_bottom = s.pad_right = k / 2;
  return s;
}

Conv2dSpec Conv2dSpec::valid(int in_ch, int out_ch, int k) {
  Conv2dSpec s;
  s.in_ch = in_ch;
  s.out_ch = out_ch;
  s.kh = s.kw = k;
  return s;
}

void im2col(const float* x, int in_h, int in_w, const Conv2dSpec& spec,
            float* col, par::ThreadPool* pool) {
  const int oh = spec.out_h(in_h);
  const int ow = spec.out_w(in_w);
  const std::int64_t plane = static_cast<std::int64_t>(oh) * ow;
  // Each (c, ki, kj) triple owns one disjoint panel row-group, so the
  // col_rows() iterations parallelize without coordination.
  par::parallel_for(
      pool, 0, static_cast<std::size_t>(spec.col_rows()),
      [&](std::size_t row_id) {
        const int kj = static_cast<int>(row_id) % spec.kw;
        const int ki = (static_cast<int>(row_id) / spec.kw) % spec.kh;
        const int c = static_cast<int>(row_id) / (spec.kw * spec.kh);
        const float* xc = x + static_cast<std::int64_t>(c) * in_h * in_w;
        float* dst = col + static_cast<std::int64_t>(row_id) * plane;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * spec.stride - spec.pad_top + ki;
          float* row = dst + static_cast<std::int64_t>(oy) * ow;
          if (iy < 0 || iy >= in_h) {
            std::memset(row, 0, sizeof(float) * ow);
            continue;
          }
          const float* src_row = xc + static_cast<std::int64_t>(iy) * in_w;
          if (spec.stride == 1) {
            // ix = ox - shift: zero the out-of-image edges, memcpy the rest.
            // Both bounds clamp into [0, ow]: with a wide kernel on a tiny
            // image, shift itself can exceed ow (then the whole row is
            // padding and the fill must not spill into the next panel).
            const int shift = spec.pad_left - kj;
            const int ox0 = std::clamp(shift, 0, ow);
            const int ox1 = std::clamp(in_w + shift, ox0, ow);
            for (int ox = 0; ox < ox0; ++ox) row[ox] = 0.0f;
            if (ox1 > ox0) {
              std::memcpy(row + ox0, src_row + ox0 - shift,
                          sizeof(float) * (ox1 - ox0));
            }
            for (int ox = ox1; ox < ow; ++ox) row[ox] = 0.0f;
          } else {
            for (int ox = 0; ox < ow; ++ox) {
              const int ix = ox * spec.stride - spec.pad_left + kj;
              row[ox] = (ix >= 0 && ix < in_w) ? src_row[ix] : 0.0f;
            }
          }
        }
      });
}

void col2im(const float* col, int in_h, int in_w, const Conv2dSpec& spec,
            float* dx) {
  const int oh = spec.out_h(in_h);
  const int ow = spec.out_w(in_w);
  const std::int64_t plane = static_cast<std::int64_t>(oh) * ow;
  for (int c = 0; c < spec.in_ch; ++c) {
    float* xc = dx + static_cast<std::int64_t>(c) * in_h * in_w;
    for (int ki = 0; ki < spec.kh; ++ki) {
      for (int kj = 0; kj < spec.kw; ++kj) {
        const float* src =
            col + (((static_cast<std::int64_t>(c) * spec.kh) + ki) * spec.kw +
                   kj) * plane;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * spec.stride - spec.pad_top + ki;
          if (iy < 0 || iy >= in_h) continue;
          const float* row = src + static_cast<std::int64_t>(oy) * ow;
          float* dst_row = xc + static_cast<std::int64_t>(iy) * in_w;
          if (spec.stride == 1) {
            // ix = ox - shift: the in-image span accumulates contiguously.
            const int shift = spec.pad_left - kj;
            const int ox0 = std::max(0, shift);
            const int ox1 = std::min(ow, in_w + shift);
            float* base = dst_row - shift;
            for (int ox = ox0; ox < ox1; ++ox) base[ox] += row[ox];
          } else {
            for (int ox = 0; ox < ow; ++ox) {
              const int ix = ox * spec.stride - spec.pad_left + kj;
              if (ix >= 0 && ix < in_w) dst_row[ix] += row[ox];
            }
          }
        }
      }
    }
  }
}

void conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                    Tensor& y, const Conv2dSpec& spec, par::ThreadPool* pool,
                    ConvScratch& scratch) {
  // The implicit-GEMM forward no longer touches scratch.col; the parameter
  // stays so forward/backward share one arena-passing call shape.
  (void)scratch;
  require_4d(x, "conv2d_forward(x)");
  const int batch = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  if (x.dim(1) != spec.in_ch) {
    throw std::invalid_argument("conv2d_forward: channel mismatch");
  }
  const int oh = spec.out_h(in_h), ow = spec.out_w(in_w);
  if (y.ndim() != 4 || y.dim(0) != batch || y.dim(1) != spec.out_ch ||
      y.dim(2) != oh || y.dim(3) != ow) {
    y = Tensor({batch, spec.out_ch, oh, ow});
  }
  const std::int64_t plane = static_cast<std::int64_t>(oh) * ow;

  for (int n = 0; n < batch; ++n) {
    const float* xn = x.data() + x.offset4(n, 0, 0, 0);
    float* yn = y.data() + y.offset4(n, 0, 0, 0);
    // Implicit GEMM: the B operand is packed straight from xn, so no col
    // matrix is materialized on the forward path.
    ConvColSource src{xn, in_h, in_w, oh, ow, &spec};
    gemm_nn_virtual_b(spec.out_ch, static_cast<int>(plane), spec.col_rows(),
                      w.data(), BPacker{&src, &ConvColSource::pack}, yn,
                      /*accumulate=*/false, pool);
    for (int oc = 0; oc < spec.out_ch; ++oc) {
      const float bias = b[oc];
      float* row = yn + static_cast<std::int64_t>(oc) * plane;
      for (std::int64_t i = 0; i < plane; ++i) row[i] += bias;
    }
  }
}

void conv2d_backward(const Tensor& x, const Tensor& w, const Tensor& dy,
                     Tensor* dx, Tensor& dw, Tensor& db,
                     const Conv2dSpec& spec, par::ThreadPool* pool,
                     ConvScratch& scratch) {
  require_4d(x, "conv2d_backward(x)");
  require_4d(dy, "conv2d_backward(dy)");
  const int batch = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const int oh = spec.out_h(in_h), ow = spec.out_w(in_w);
  const std::int64_t plane = static_cast<std::int64_t>(oh) * ow;
  scratch.col.resize(static_cast<std::size_t>(spec.col_rows()) * plane);
  if (dx != nullptr) {
    scratch.dcol.resize(static_cast<std::size_t>(spec.col_rows()) * plane);
    if (!dx->same_shape(x)) *dx = Tensor(x.shape());
  }

  for (int n = 0; n < batch; ++n) {
    const float* xn = x.data() + x.offset4(n, 0, 0, 0);
    const float* dyn = dy.data() + dy.offset4(n, 0, 0, 0);
    im2col(xn, in_h, in_w, spec, scratch.col.data(), pool);
    // dW[OC, CKK] += dY_n[OC, plane] * col[CKK, plane]^T
    gemm_nt(spec.out_ch, spec.col_rows(), static_cast<int>(plane), dyn,
            scratch.col.data(), dw.data(), /*accumulate=*/true, pool);
    // db[oc] += sum of dY_n over the spatial plane
    for (int oc = 0; oc < spec.out_ch; ++oc) {
      const float* row = dyn + static_cast<std::int64_t>(oc) * plane;
      double acc = 0.0;
      for (std::int64_t i = 0; i < plane; ++i) acc += row[i];
      db[oc] += static_cast<float>(acc);
    }
    if (dx != nullptr) {
      // dcol[CKK, plane] = W[OC, CKK]^T * dY_n[OC, plane]
      gemm_tn(spec.col_rows(), static_cast<int>(plane), spec.out_ch, w.data(),
              dyn, scratch.dcol.data(), /*accumulate=*/false, pool);
      float* dxn = dx->data() + dx->offset4(n, 0, 0, 0);
      std::memset(dxn, 0,
                  sizeof(float) * static_cast<std::size_t>(spec.in_ch) * in_h *
                      in_w);
      col2im(scratch.dcol.data(), in_h, in_w, spec, dxn);
    }
  }
}

void maxpool2x2_forward(const Tensor& x, Tensor& y,
                        std::vector<std::uint8_t>& argmax,
                        par::ThreadPool* pool) {
  require_4d(x, "maxpool2x2_forward");
  const int batch = x.dim(0), ch = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (h % 2 != 0 || w % 2 != 0) {
    throw std::invalid_argument("maxpool2x2: H and W must be even");
  }
  const int oh = h / 2, ow = w / 2;
  if (y.ndim() != 4 || y.dim(0) != batch || y.dim(1) != ch || y.dim(2) != oh ||
      y.dim(3) != ow) {
    y = Tensor({batch, ch, oh, ow});
  }
  argmax.resize(static_cast<std::size_t>(y.numel()));

  const std::size_t planes = static_cast<std::size_t>(batch) * ch;
  par::parallel_for(pool, 0, planes, [&](std::size_t p) {
    const float* xp = x.data() + static_cast<std::int64_t>(p) * h * w;
    float* yp = y.data() + static_cast<std::int64_t>(p) * oh * ow;
    std::uint8_t* ap = argmax.data() + static_cast<std::int64_t>(p) * oh * ow;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        const int iy = oy * 2, ix = ox * 2;
        const float v00 = xp[iy * w + ix];
        const float v01 = xp[iy * w + ix + 1];
        const float v10 = xp[(iy + 1) * w + ix];
        const float v11 = xp[(iy + 1) * w + ix + 1];
        float best = v00;
        std::uint8_t which = 0;
        if (v01 > best) { best = v01; which = 1; }
        if (v10 > best) { best = v10; which = 2; }
        if (v11 > best) { best = v11; which = 3; }
        yp[oy * ow + ox] = best;
        ap[oy * ow + ox] = which;
      }
    }
  });
}

void maxpool2x2_backward(const Tensor& dy,
                         const std::vector<std::uint8_t>& argmax, Tensor& dx,
                         par::ThreadPool* pool) {
  require_4d(dy, "maxpool2x2_backward");
  const int batch = dy.dim(0), ch = dy.dim(1), oh = dy.dim(2), ow = dy.dim(3);
  const int h = oh * 2, w = ow * 2;
  if (dx.ndim() != 4 || dx.dim(0) != batch || dx.dim(1) != ch ||
      dx.dim(2) != h || dx.dim(3) != w) {
    dx = Tensor({batch, ch, h, w});
  }
  dx.zero();
  const std::size_t planes = static_cast<std::size_t>(batch) * ch;
  par::parallel_for(pool, 0, planes, [&](std::size_t p) {
    const float* dyp = dy.data() + static_cast<std::int64_t>(p) * oh * ow;
    const std::uint8_t* ap =
        argmax.data() + static_cast<std::int64_t>(p) * oh * ow;
    float* dxp = dx.data() + static_cast<std::int64_t>(p) * h * w;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        const std::uint8_t which = ap[oy * ow + ox];
        const int iy = oy * 2 + (which >> 1);
        const int ix = ox * 2 + (which & 1);
        dxp[iy * w + ix] += dyp[oy * ow + ox];
      }
    }
  });
}

void upsample2x_forward(const Tensor& x, Tensor& y, par::ThreadPool* pool) {
  require_4d(x, "upsample2x_forward");
  const int batch = x.dim(0), ch = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = h * 2, ow = w * 2;
  if (y.ndim() != 4 || y.dim(0) != batch || y.dim(1) != ch || y.dim(2) != oh ||
      y.dim(3) != ow) {
    y = Tensor({batch, ch, oh, ow});
  }
  const std::size_t planes = static_cast<std::size_t>(batch) * ch;
  par::parallel_for(pool, 0, planes, [&](std::size_t p) {
    const float* xp = x.data() + static_cast<std::int64_t>(p) * h * w;
    float* yp = y.data() + static_cast<std::int64_t>(p) * oh * ow;
    for (int iy = 0; iy < h; ++iy) {
      for (int ix = 0; ix < w; ++ix) {
        const float v = xp[iy * w + ix];
        float* base = yp + (iy * 2) * ow + ix * 2;
        base[0] = v;
        base[1] = v;
        base[ow] = v;
        base[ow + 1] = v;
      }
    }
  });
}

void upsample2x_backward(const Tensor& dy, Tensor& dx, par::ThreadPool* pool) {
  require_4d(dy, "upsample2x_backward");
  const int batch = dy.dim(0), ch = dy.dim(1), oh = dy.dim(2), ow = dy.dim(3);
  if (oh % 2 != 0 || ow % 2 != 0) {
    throw std::invalid_argument("upsample2x_backward: odd upstream size");
  }
  const int h = oh / 2, w = ow / 2;
  if (dx.ndim() != 4 || dx.dim(0) != batch || dx.dim(1) != ch ||
      dx.dim(2) != h || dx.dim(3) != w) {
    dx = Tensor({batch, ch, h, w});
  }
  const std::size_t planes = static_cast<std::size_t>(batch) * ch;
  par::parallel_for(pool, 0, planes, [&](std::size_t p) {
    const float* dyp = dy.data() + static_cast<std::int64_t>(p) * oh * ow;
    float* dxp = dx.data() + static_cast<std::int64_t>(p) * h * w;
    for (int iy = 0; iy < h; ++iy) {
      for (int ix = 0; ix < w; ++ix) {
        const float* base = dyp + (iy * 2) * ow + ix * 2;
        dxp[iy * w + ix] = base[0] + base[1] + base[ow] + base[ow + 1];
      }
    }
  });
}

void concat_channels(const Tensor& a, const Tensor& b, Tensor& y) {
  require_4d(a, "concat_channels(a)");
  require_4d(b, "concat_channels(b)");
  if (a.dim(0) != b.dim(0) || a.dim(2) != b.dim(2) || a.dim(3) != b.dim(3)) {
    throw std::invalid_argument("concat_channels: spatial/batch mismatch");
  }
  const int batch = a.dim(0), ca = a.dim(1), cb = b.dim(1);
  const int h = a.dim(2), w = a.dim(3);
  if (y.ndim() != 4 || y.dim(0) != batch || y.dim(1) != ca + cb ||
      y.dim(2) != h || y.dim(3) != w) {
    y = Tensor({batch, ca + cb, h, w});
  }
  const std::int64_t plane = static_cast<std::int64_t>(h) * w;
  for (int n = 0; n < batch; ++n) {
    std::memcpy(y.data() + y.offset4(n, 0, 0, 0),
                a.data() + a.offset4(n, 0, 0, 0),
                sizeof(float) * static_cast<std::size_t>(ca) * plane);
    std::memcpy(y.data() + y.offset4(n, ca, 0, 0),
                b.data() + b.offset4(n, 0, 0, 0),
                sizeof(float) * static_cast<std::size_t>(cb) * plane);
  }
}

void split_channels(const Tensor& dy, int a_channels, Tensor& da, Tensor& db) {
  require_4d(dy, "split_channels");
  const int batch = dy.dim(0), total = dy.dim(1);
  if (a_channels <= 0 || a_channels >= total) {
    throw std::invalid_argument("split_channels: bad split point");
  }
  const int h = dy.dim(2), w = dy.dim(3);
  const int b_channels = total - a_channels;
  if (da.ndim() != 4 || da.dim(0) != batch || da.dim(1) != a_channels ||
      da.dim(2) != h || da.dim(3) != w) {
    da = Tensor({batch, a_channels, h, w});
  }
  if (db.ndim() != 4 || db.dim(0) != batch || db.dim(1) != b_channels ||
      db.dim(2) != h || db.dim(3) != w) {
    db = Tensor({batch, b_channels, h, w});
  }
  const std::int64_t plane = static_cast<std::int64_t>(h) * w;
  for (int n = 0; n < batch; ++n) {
    std::memcpy(da.data() + da.offset4(n, 0, 0, 0),
                dy.data() + dy.offset4(n, 0, 0, 0),
                sizeof(float) * static_cast<std::size_t>(a_channels) * plane);
    std::memcpy(db.data() + db.offset4(n, 0, 0, 0),
                dy.data() + dy.offset4(n, a_channels, 0, 0),
                sizeof(float) * static_cast<std::size_t>(b_channels) * plane);
  }
}

void softmax_channel(const Tensor& logits, Tensor& probs) {
  require_4d(logits, "softmax_channel");
  if (!probs.same_shape(logits)) probs = Tensor(logits.shape());
  const int batch = logits.dim(0), ch = logits.dim(1);
  const std::int64_t plane =
      static_cast<std::int64_t>(logits.dim(2)) * logits.dim(3);
  for (int n = 0; n < batch; ++n) {
    const float* ln = logits.data() + logits.offset4(n, 0, 0, 0);
    float* pn = probs.data() + probs.offset4(n, 0, 0, 0);
    for (std::int64_t i = 0; i < plane; ++i) {
      float mx = ln[i];
      for (int c = 1; c < ch; ++c) mx = std::max(mx, ln[c * plane + i]);
      float denom = 0.0f;
      for (int c = 0; c < ch; ++c) {
        const float e = std::exp(ln[c * plane + i] - mx);
        pn[c * plane + i] = e;
        denom += e;
      }
      const float inv = 1.0f / denom;
      for (int c = 0; c < ch; ++c) pn[c * plane + i] *= inv;
    }
  }
}

float softmax_cross_entropy(const Tensor& logits,
                            const std::vector<int>& targets, Tensor& probs,
                            Tensor& dlogits) {
  require_4d(logits, "softmax_cross_entropy");
  const int batch = logits.dim(0), ch = logits.dim(1);
  const std::int64_t plane =
      static_cast<std::int64_t>(logits.dim(2)) * logits.dim(3);
  if (static_cast<std::int64_t>(targets.size()) != batch * plane) {
    throw std::invalid_argument("softmax_cross_entropy: target size mismatch");
  }
  softmax_channel(logits, probs);
  if (!dlogits.same_shape(logits)) dlogits = Tensor(logits.shape());
  dlogits.zero();

  // First pass: count contributing pixels so the gradient is scaled by the
  // same normalizer as the loss.
  std::int64_t counted = 0;
  for (const int t : targets) counted += t >= 0;
  if (counted == 0) return 0.0f;
  const float inv_count = 1.0f / static_cast<float>(counted);

  double loss = 0.0;
  constexpr float kEps = 1e-12f;
  for (int n = 0; n < batch; ++n) {
    const float* pn = probs.data() + probs.offset4(n, 0, 0, 0);
    float* dn = dlogits.data() + dlogits.offset4(n, 0, 0, 0);
    const int* tn = targets.data() + static_cast<std::int64_t>(n) * plane;
    for (std::int64_t i = 0; i < plane; ++i) {
      const int t = tn[i];
      if (t < 0) continue;
      if (t >= ch) {
        throw std::invalid_argument("softmax_cross_entropy: target >= classes");
      }
      loss -= std::log(std::max(pn[t * plane + i], kEps));
      for (int c = 0; c < ch; ++c) {
        const float grad = pn[c * plane + i] - (c == t ? 1.0f : 0.0f);
        dn[c * plane + i] = grad * inv_count;
      }
    }
  }
  return static_cast<float>(loss * inv_count);
}

std::vector<int> argmax_channel(const Tensor& probs) {
  require_4d(probs, "argmax_channel");
  const int batch = probs.dim(0), ch = probs.dim(1);
  const std::int64_t plane =
      static_cast<std::int64_t>(probs.dim(2)) * probs.dim(3);
  std::vector<int> out(static_cast<std::size_t>(batch * plane));
  for (int n = 0; n < batch; ++n) {
    const float* pn = probs.data() + probs.offset4(n, 0, 0, 0);
    int* on = out.data() + static_cast<std::int64_t>(n) * plane;
    for (std::int64_t i = 0; i < plane; ++i) {
      int best = 0;
      float best_v = pn[i];
      for (int c = 1; c < ch; ++c) {
        const float v = pn[c * plane + i];
        if (v > best_v) {
          best_v = v;
          best = c;
        }
      }
      on[i] = best;
    }
  }
  return out;
}

}  // namespace polarice::tensor
