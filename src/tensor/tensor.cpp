#include "tensor/tensor.h"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <type_traits>

namespace polarice::tensor {

namespace {
std::int64_t checked_numel(const std::vector<int>& shape) {
  if (shape.empty()) throw std::invalid_argument("Tensor: empty shape");
  std::int64_t n = 1;
  for (const int d : shape) {
    if (d <= 0) throw std::invalid_argument("Tensor: non-positive extent");
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(checked_numel(shape_)), 0.0f);
}

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

namespace {
// The storage allocator differs only under POLARICE_MEM_STATS; keep the
// zero-copy move whenever the vector types still line up. (A template so
// the untaken branch is never instantiated — the two types don't assign.)
template <typename Dst>
void adopt_values(Dst& dst, std::vector<float>&& values) {
  if constexpr (std::is_same_v<Dst, std::vector<float>>) {
    dst = std::move(values);
  } else {
    dst.assign(values.begin(), values.end());
  }
}
}  // namespace

Tensor Tensor::from_values(std::vector<int> shape, std::vector<float> values) {
  const auto n = checked_numel(shape);
  if (static_cast<std::int64_t>(values.size()) != n) {
    throw std::invalid_argument("Tensor::from_values: size mismatch");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  adopt_values(t.data_, std::move(values));
  return t;
}

int Tensor::dim(int i) const {
  if (i < 0 || i >= ndim()) throw std::out_of_range("Tensor::dim: bad axis");
  return shape_[i];
}

Tensor Tensor::reshaped(std::vector<int> new_shape) const {
  if (checked_numel(new_shape) != numel()) {
    throw std::invalid_argument("Tensor::reshaped: element count mismatch");
  }
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_(const Tensor& other) {
  require_same_shape(*this, other, "Tensor::add_");
  const float* src = other.data();
  float* dst = data();
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

void Tensor::scale_(float s) noexcept {
  for (auto& v : data_) v *= s;
}

void Tensor::axpy_(float alpha, const Tensor& other) {
  require_same_shape(*this, other, "Tensor::axpy_");
  const float* src = other.data();
  float* dst = data();
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

float Tensor::sum() const noexcept {
  double acc = 0.0;
  for (const auto v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const noexcept {
  return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size());
}

float Tensor::max_abs() const noexcept {
  float m = 0.0f;
  for (const auto v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Tensor::has_non_finite() const noexcept {
  for (const auto v : data_) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

std::string Tensor::shape_str() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) out << ", ";
    out << shape_[i];
  }
  out << ']';
  return out.str();
}

void require_same_shape(const Tensor& a, const Tensor& b, const char* what) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                a.shape_str() + " vs " + b.shape_str());
  }
}

}  // namespace polarice::tensor
