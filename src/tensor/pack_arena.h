#pragma once
// Per-thread scratch arena for the GEMM panel-packing buffers.
//
// The blocked GEMM packs A and B panels into contiguous, cache-aligned
// scratch before running the micro-kernels. Those panels are pure scratch —
// their contents never outlive one k-panel iteration — so the arena hands
// out reusable buffers that only ever grow, amortizing allocation to zero
// across the thousands of GEMM calls a training run makes. One arena per
// thread and nesting level (thread_local) keeps concurrent callers (ddp
// ranks, parallel tile pipelines) isolated without locking; pool workers
// only *read* the packed panels of the calling thread. Nesting levels
// exist because a thread blocked in a GEMM's join can "help" run another
// queued task (par helping join) that itself starts a GEMM on the same
// thread — that inner call must not grow/realloc the outer call's live
// panels, so it leases the next level instead.

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace polarice::tensor {

/// Growable 64-byte-aligned float buffer. Grows geometrically and never
/// shrinks; contents are undefined after ensure().
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  ~AlignedBuffer() { release(); }

  /// Returns a buffer of at least `floats` elements, aligned to 64 bytes
  /// (one cache line / one AVX-512 lane; also a whole number of the
  /// 16-float micro-kernel panels).
  float* ensure(std::size_t floats) {
    if (floats > capacity_) {
      std::size_t grown = capacity_ == 0 ? 1024 : capacity_;
      while (grown < floats) grown *= 2;
      release();
      data_ = static_cast<float*>(
          ::operator new(grown * sizeof(float), std::align_val_t(64)));
      capacity_ = grown;
    }
    return data_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  void release() noexcept {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t(64));
      data_ = nullptr;
    }
  }

  float* data_ = nullptr;
  std::size_t capacity_ = 0;
};

/// The panel buffers one in-flight GEMM needs.
struct PackArena {
  AlignedBuffer a_panel;  // packed A: MR-row strips, k-major within a strip
  AlignedBuffer b_panel;  // packed B: NR-column strips, k-major within a strip
  AlignedBuffer c_block;  // virtual-C accumulation block (m x nc), used by
                          // gemm_virtual to hold the full-K partial sums of
                          // one column block before the sink consumes them

  /// The calling thread's arena for GEMM nesting depth `level` (created on
  /// first use, reused for the thread's lifetime). Level 0 is the common
  /// case; deeper levels are leased by re-entrant GEMMs on the same thread
  /// (see file comment).
  static PackArena& local(std::size_t level = 0) {
    thread_local std::vector<std::unique_ptr<PackArena>> arenas;
    while (arenas.size() <= level) {
      arenas.push_back(std::make_unique<PackArena>());
    }
    return *arenas[level];
  }
};

}  // namespace polarice::tensor
