#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "par/parallel_for.h"

namespace polarice::tensor {

namespace {
// Minimum columns of C per task; keeps task overhead negligible relative to
// the O(M*K) work per column block.
constexpr int kMinColsPerTask = 64;

int column_chunk(int n, par::ThreadPool* pool) {
  if (pool == nullptr) return n;
  const int per_worker = (n + static_cast<int>(pool->size()) - 1) /
                         static_cast<int>(pool->size());
  return std::max(per_worker, kMinColsPerTask);
}
}  // namespace

void gemm_nn(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate, par::ThreadPool* pool) {
  const int chunk = column_chunk(n, pool);
  const std::size_t tasks = (n + chunk - 1) / chunk;
  par::parallel_for(
      tasks > 1 ? pool : nullptr, 0, tasks,
      [&](std::size_t t) {
        const int n0 = static_cast<int>(t) * chunk;
        const int n1 = std::min(n, n0 + chunk);
        const int cols = n1 - n0;
        for (int i = 0; i < m; ++i) {
          float* crow = c + static_cast<std::int64_t>(i) * n + n0;
          if (!accumulate) std::memset(crow, 0, sizeof(float) * cols);
          const float* arow = a + static_cast<std::int64_t>(i) * k;
          for (int p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f) continue;
            const float* brow = b + static_cast<std::int64_t>(p) * n + n0;
            for (int j = 0; j < cols; ++j) crow[j] += av * brow[j];
          }
        }
      },
      1);
}

void gemm_tn(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate, par::ThreadPool* pool) {
  const int chunk = column_chunk(n, pool);
  const std::size_t tasks = (n + chunk - 1) / chunk;
  par::parallel_for(
      tasks > 1 ? pool : nullptr, 0, tasks,
      [&](std::size_t t) {
        const int n0 = static_cast<int>(t) * chunk;
        const int n1 = std::min(n, n0 + chunk);
        const int cols = n1 - n0;
        for (int i = 0; i < m; ++i) {
          float* crow = c + static_cast<std::int64_t>(i) * n + n0;
          if (!accumulate) std::memset(crow, 0, sizeof(float) * cols);
          for (int p = 0; p < k; ++p) {
            const float av = a[static_cast<std::int64_t>(p) * m + i];
            if (av == 0.0f) continue;
            const float* brow = b + static_cast<std::int64_t>(p) * n + n0;
            for (int j = 0; j < cols; ++j) crow[j] += av * brow[j];
          }
        }
      },
      1);
}

void gemm_nt(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate, par::ThreadPool* pool) {
  // Parallelize over rows of C here: the dot-product kernel walks contiguous
  // rows of both A and B, so row blocks are cache-friendly.
  const std::size_t rows = static_cast<std::size_t>(m);
  par::parallel_for(pool, 0, rows, [&](std::size_t i) {
    const float* arow = a + static_cast<std::int64_t>(i) * k;
    float* crow = c + static_cast<std::int64_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::int64_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  });
}

}  // namespace polarice::tensor
