#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "par/parallel_for.h"
#include "tensor/pack_arena.h"

#if defined(__AVX512F__)
#include <immintrin.h>
#define POLARICE_GEMM_AVX512 1
#elif defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define POLARICE_GEMM_AVX2 1
#endif

namespace polarice::tensor {

namespace {

// Register tile: the micro-kernel computes an kMR x kNR block of C entirely
// in registers — kMR rows by two vector registers of columns. With AVX2
// (kNR = 16) that is 12 fp accumulators + 2 B vectors + 1 A broadcast = 15
// of the 16 ymm registers; AVX-512 doubles the column width (kNR = 32) with
// register room to spare.
constexpr int kMR = kGemmMR;
constexpr int kNR = kGemmNR;

// k-panel depth: one packed B strip (kKC * kNR floats = 16 KiB) stays
// resident in L1 while the micro-kernel sweeps the m-strips of a macro-tile.
constexpr int kKC = 256;

// Packed B panel budget: the kc x nc panel a compute pass sweeps must stay
// L2-resident (with headroom for the A panel and C tiles), so the column
// blocking nc is derived as kNCBudgetBytes / (4 * kc), strip-aligned.
constexpr int kNCBudgetBytes = 768 * 1024;

// Macro-tile: one parallel task owns kMBlock x kNBlock strips of C
// (72 x 256 scalars), streaming its packed A strips (<= 72 KiB) from L2.
constexpr int kMBlock = 12;
constexpr int kNBlock = 16;

// Below this many multiply-adds, parallel dispatch costs more than it buys;
// the packed kernel runs the whole product on the calling thread.
constexpr std::int64_t kMinFlopsForPool = 64 * 1024;

constexpr int ceil_div(int a, int b) { return (a + b - 1) / b; }

// Tracks how many gemm_driver frames are live on this thread. A thread
// blocked in a join may help-run another queued task that starts a GEMM
// (par helping join); the nested frame leases the next PackArena level so
// it cannot realloc the outer frame's live panels.
struct GemmDepthLease {
  GemmDepthLease() : arena(PackArena::local(depth()++)) {}
  ~GemmDepthLease() { --depth(); }
  GemmDepthLease(const GemmDepthLease&) = delete;
  GemmDepthLease& operator=(const GemmDepthLease&) = delete;
  static std::size_t& depth() {
    thread_local std::size_t d = 0;
    return d;
  }
  PackArena& arena;
};

// ---------------------------------------------------------------------------
// Packing. Operand layouts are described by (row stride, column stride) so a
// single packer covers the N and T variants. Edge strips are zero-padded to
// full kMR/kNR width: the micro-kernel never branches, padded lanes compute
// against 0.0f, and the copy-out discards them.

// One strip of A: `rows` (<= kMR) live rows, k-major: dst[p*kMR + r].
void pack_a_strip(int rows, int kc, const float* a, std::int64_t rs,
                  std::int64_t cs, float* dst) {
  for (int p = 0; p < kc; ++p) {
    float* col = dst + static_cast<std::int64_t>(p) * kMR;
    for (int r = 0; r < rows; ++r) col[r] = a[r * rs + p * cs];
    for (int r = rows; r < kMR; ++r) col[r] = 0.0f;
  }
}

// One strip of B: `cols` (<= kNR) live columns, k-major: dst[p*kNR + j].
void pack_b_strip(int cols, int kc, const float* b, std::int64_t rs,
                  std::int64_t cs, float* dst) {
  for (int p = 0; p < kc; ++p) {
    float* row = dst + static_cast<std::int64_t>(p) * kNR;
    for (int j = 0; j < cols; ++j) row[j] = b[p * rs + j * cs];
    for (int j = cols; j < kNR; ++j) row[j] = 0.0f;
  }
}

void pack_a_panel(int mc, int kc, const float* a, std::int64_t rs,
                  std::int64_t cs, float* dst, par::ThreadPool* pool) {
  const int strips = ceil_div(mc, kMR);
  par::parallel_for(
      pool, 0, static_cast<std::size_t>(strips),
      [&](std::size_t s) {
        const int row0 = static_cast<int>(s) * kMR;
        pack_a_strip(std::min(kMR, mc - row0), kc, a + row0 * rs, rs, cs,
                     dst + s * static_cast<std::size_t>(kc) * kMR);
      },
      /*grain=*/8);
}

// ---------------------------------------------------------------------------
// Micro-kernel: C[kMR x kNR] (+)= packed_A_strip * packed_B_strip.

#ifdef POLARICE_GEMM_AVX512

// Shallow-K panels (thin-K conv shapes: K = in_ch*kh*kw as small as 9) are
// bound by per-tile overhead — accumulator zeroing, stores, loop setup —
// not FMA throughput. Below this panel depth the drivers switch to the
// double-width kernel where AVX-512's 32 zmm registers allow it (6 x 4
// accumulators + 4 B + 1 A broadcast = 29), halving the overhead per C
// element. Both packed B strips stay L1-resident (2 * kc * kNR floats
// <= 16 KiB at the threshold).
constexpr int kWideKernelMaxKC = 64;

// C[kMR x 2*kNR] (+)= packed_A_strip * two adjacent packed_B_strips.
void micro_kernel_x2(int kc, const float* ap, const float* bp0,
                     const float* bp1, float* c, std::int64_t ldc,
                     bool accumulate) {
  __m512 acc[kMR][4];
  for (int r = 0; r < kMR; ++r) {
    acc[r][0] = _mm512_setzero_ps();
    acc[r][1] = _mm512_setzero_ps();
    acc[r][2] = _mm512_setzero_ps();
    acc[r][3] = _mm512_setzero_ps();
  }
  for (int p = 0; p < kc; ++p) {
    const __m512 b0 = _mm512_load_ps(bp0 + static_cast<std::int64_t>(p) * kNR);
    const __m512 b1 =
        _mm512_load_ps(bp0 + static_cast<std::int64_t>(p) * kNR + 16);
    const __m512 b2 = _mm512_load_ps(bp1 + static_cast<std::int64_t>(p) * kNR);
    const __m512 b3 =
        _mm512_load_ps(bp1 + static_cast<std::int64_t>(p) * kNR + 16);
    const float* acol = ap + static_cast<std::int64_t>(p) * kMR;
    for (int r = 0; r < kMR; ++r) {
      const __m512 av = _mm512_set1_ps(acol[r]);
      acc[r][0] = _mm512_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_ps(av, b1, acc[r][1]);
      acc[r][2] = _mm512_fmadd_ps(av, b2, acc[r][2]);
      acc[r][3] = _mm512_fmadd_ps(av, b3, acc[r][3]);
    }
  }
  for (int r = 0; r < kMR; ++r) {
    float* crow = c + r * ldc;
    if (accumulate) {
      for (int v = 0; v < 4; ++v) {
        _mm512_storeu_ps(crow + v * 16,
                         _mm512_add_ps(_mm512_loadu_ps(crow + v * 16),
                                       acc[r][v]));
      }
    } else {
      for (int v = 0; v < 4; ++v) {
        _mm512_storeu_ps(crow + v * 16, acc[r][v]);
      }
    }
  }
}

void micro_kernel(int kc, const float* ap, const float* bp, float* c,
                  std::int64_t ldc, bool accumulate) {
  __m512 acc[kMR][2];
  for (int r = 0; r < kMR; ++r) {
    acc[r][0] = _mm512_setzero_ps();
    acc[r][1] = _mm512_setzero_ps();
  }
  for (int p = 0; p < kc; ++p) {
    // Packed strips are 64-byte aligned with 128-byte row pitch.
    const __m512 b0 = _mm512_load_ps(bp + static_cast<std::int64_t>(p) * kNR);
    const __m512 b1 =
        _mm512_load_ps(bp + static_cast<std::int64_t>(p) * kNR + 16);
    const float* acol = ap + static_cast<std::int64_t>(p) * kMR;
    for (int r = 0; r < kMR; ++r) {
      const __m512 av = _mm512_set1_ps(acol[r]);
      acc[r][0] = _mm512_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < kMR; ++r) {
    float* crow = c + r * ldc;
    if (accumulate) {
      _mm512_storeu_ps(crow,
                       _mm512_add_ps(_mm512_loadu_ps(crow), acc[r][0]));
      _mm512_storeu_ps(crow + 16,
                       _mm512_add_ps(_mm512_loadu_ps(crow + 16), acc[r][1]));
    } else {
      _mm512_storeu_ps(crow, acc[r][0]);
      _mm512_storeu_ps(crow + 16, acc[r][1]);
    }
  }
}

#elif defined(POLARICE_GEMM_AVX2)

void micro_kernel(int kc, const float* ap, const float* bp, float* c,
                  std::int64_t ldc, bool accumulate) {
  __m256 acc[kMR][2];
  for (int r = 0; r < kMR; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (int p = 0; p < kc; ++p) {
    // Packed strips are 64-byte aligned with 64-byte row pitch.
    const __m256 b0 = _mm256_load_ps(bp + static_cast<std::int64_t>(p) * kNR);
    const __m256 b1 =
        _mm256_load_ps(bp + static_cast<std::int64_t>(p) * kNR + 8);
    const float* acol = ap + static_cast<std::int64_t>(p) * kMR;
    for (int r = 0; r < kMR; ++r) {
      const __m256 av = _mm256_broadcast_ss(acol + r);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < kMR; ++r) {
    float* crow = c + r * ldc;
    if (accumulate) {
      _mm256_storeu_ps(crow,
                       _mm256_add_ps(_mm256_loadu_ps(crow), acc[r][0]));
      _mm256_storeu_ps(crow + 8,
                       _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[r][1]));
    } else {
      _mm256_storeu_ps(crow, acc[r][0]);
      _mm256_storeu_ps(crow + 8, acc[r][1]);
    }
  }
}

#else  // portable fallback: fixed-trip-count tile the compiler vectorizes

void micro_kernel(int kc, const float* ap, const float* bp, float* c,
                  std::int64_t ldc, bool accumulate) {
  float acc[kMR][kNR] = {};
  for (int p = 0; p < kc; ++p) {
    const float* brow = bp + static_cast<std::int64_t>(p) * kNR;
    const float* acol = ap + static_cast<std::int64_t>(p) * kMR;
    for (int r = 0; r < kMR; ++r) {
      const float av = acol[r];
      for (int j = 0; j < kNR; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < kMR; ++r) {
    float* crow = c + r * ldc;
    if (accumulate) {
      for (int j = 0; j < kNR; ++j) crow[j] += acc[r][j];
    } else {
      for (int j = 0; j < kNR; ++j) crow[j] = acc[r][j];
    }
  }
}

#endif  // POLARICE_GEMM_AVX2

#ifdef POLARICE_GEMM_AVX512
constexpr bool kHasWideKernel = true;
#else
// The double-width tile needs 29 vector registers; AVX2's 16 ymm (and the
// portable tile's pressure) cannot carry it, so those builds always take
// the single-strip kernel.
constexpr bool kHasWideKernel = false;
constexpr int kWideKernelMaxKC = 0;
inline void micro_kernel_x2(int, const float*, const float*, const float*,
                            float*, std::int64_t, bool) {}
#endif

// ---------------------------------------------------------------------------
// Shared macro-tile sweep: one parallel task's strip loop, used by both the
// dense driver and the virtual-C sink driver so the kernel-selection logic
// (wide pairs, edge-tile buf spill, accumulate-vs-store copy-out) exists
// exactly once. `cbase` points at column 0 of this jc block's C storage
// (the dense C offset by jc, or the c_block scratch panel); columns are
// block-relative with `ncols` live columns. A non-null `direct` sink
// receives each finished register tile immediately instead (single-panel
// elementwise sinks only), with `jc` translating back to absolute columns.
void sweep_tile_strips(int is0, int is1, int js0, int js1, int m, int ncols,
                       int jc, int kc, const float* packa, const float* packb,
                       float* cbase, std::int64_t ldc, bool acc_panel,
                       const CSink* direct) {
  alignas(64) float buf[kMR * 2 * kNR];
  for (int js = js0; js < js1; ++js) {
    const float* bp = packb + static_cast<std::size_t>(js) * kc * kNR;
    const int j0 = js * kNR;  // block-relative
    const int nr = std::min(kNR, ncols - j0);
    // Shallow panels take the double-width kernel over adjacent full
    // strips (see kWideKernelMaxKC).
    const bool wide = kHasWideKernel && kc <= kWideKernelMaxKC &&
                      js + 1 < js1 && nr == kNR &&
                      ncols - (j0 + kNR) >= kNR;
    for (int is = is0; is < is1; ++is) {
      const float* ap = packa + static_cast<std::size_t>(is) * kc * kMR;
      const int i0 = is * kMR;
      const int mr = std::min(kMR, m - i0);
      if (direct != nullptr) {
        // Final values in one panel: hand the register tile to the sink
        // while it is L1-hot.
        if (wide) {
          micro_kernel_x2(kc, ap, bp,
                          bp + static_cast<std::size_t>(kc) * kNR, buf,
                          2 * kNR, /*accumulate=*/false);
          direct->fn(direct->ctx, i0, mr, jc + j0, 2 * kNR, buf, 2 * kNR);
        } else {
          micro_kernel(kc, ap, bp, buf, kNR, /*accumulate=*/false);
          direct->fn(direct->ctx, i0, mr, jc + j0, nr, buf, kNR);
        }
        continue;
      }
      float* ctile = cbase + static_cast<std::int64_t>(i0) * ldc + j0;
      if (wide && mr == kMR) {
        micro_kernel_x2(kc, ap, bp, bp + static_cast<std::size_t>(kc) * kNR,
                        ctile, ldc, acc_panel);
        continue;
      }
      const int passes = wide ? 2 : 1;
      for (int h = 0; h < passes; ++h) {
        const float* bph = bp + static_cast<std::size_t>(h) * kc * kNR;
        float* ctile_h = ctile + h * kNR;
        if (mr == kMR && nr == kNR) {
          micro_kernel(kc, ap, bph, ctile_h, ldc, acc_panel);
        } else {
          micro_kernel(kc, ap, bph, buf, kNR, /*accumulate=*/false);
          for (int r = 0; r < mr; ++r) {
            float* crow = ctile_h + static_cast<std::int64_t>(r) * ldc;
            const float* srow = buf + r * kNR;
            if (acc_panel) {
              for (int j = 0; j < nr; ++j) crow[j] += srow[j];
            } else {
              for (int j = 0; j < nr; ++j) crow[j] = srow[j];
            }
          }
        }
      }
    }
    if (wide) ++js;
  }
}

// ---------------------------------------------------------------------------
// Blocked driver: loop over k-panels; per panel, pack both operands into the
// caller's thread-local arena (packing itself is parallel over strips), then
// sweep the 2-D macro-tile grid of C in parallel. Within a task, B strips
// are the inner-cache-resident operand: the js loop is outer so one packed B
// strip serves every m-strip of the block from L1.

template <typename PackBStripFn>
void gemm_driver(int m, int n, int k, const float* a, std::int64_t ars,
                 std::int64_t acs, const PackBStripFn& pack_b, float* c,
                 bool accumulate, par::ThreadPool* pool) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) {
      std::memset(c, 0,
                  sizeof(float) * static_cast<std::size_t>(m) * n);
    }
    return;
  }
  if (pool != nullptr &&
      (pool->size() == 1 ||
       static_cast<std::int64_t>(m) * n * k < kMinFlopsForPool)) {
    pool = nullptr;
  }
  const int m_strips = ceil_div(m, kMR);
  const int kc_max = std::min(k, kKC);
  // Column blocking: nc is the widest strip-aligned block whose packed
  // kc_max x nc panel fits the L2 budget (but at least one macro-tile).
  int nc = (kNCBudgetBytes / static_cast<int>(sizeof(float)) / kc_max) / kNR *
           kNR;
  nc = std::max(nc, kNBlock * kNR);
  nc = std::min(nc, ceil_div(n, kNR) * kNR);
  const int nc_strips = nc / kNR;

  const GemmDepthLease lease;
  PackArena& arena = lease.arena;
  float* packa = arena.a_panel.ensure(static_cast<std::size_t>(m_strips) *
                                      kMR * kc_max);
  float* packb =
      arena.b_panel.ensure(static_cast<std::size_t>(nc_strips) * kNR * kc_max);
  const int mblocks = ceil_div(m_strips, kMBlock);

  for (int pc = 0; pc < k; pc += kKC) {
    const int kc = std::min(kKC, k - pc);
    pack_a_panel(m, kc, a + pc * acs, ars, acs, packa, pool);
    // Panels beyond the first always accumulate into the partial C.
    const bool acc_panel = accumulate || pc > 0;
    for (int jc = 0; jc < n; jc += nc) {
      const int ncols = std::min(nc, n - jc);
      const int panel_strips = ceil_div(ncols, kNR);
      par::parallel_for(
          pool, 0, static_cast<std::size_t>(panel_strips),
          [&](std::size_t s) {
            const int col0 = jc + static_cast<int>(s) * kNR;
            pack_b(pc, kc, col0, std::min(kNR, n - col0),
                   packb + s * static_cast<std::size_t>(kc) * kNR);
          },
          /*grain=*/8);
      const int nblocks = ceil_div(panel_strips, kNBlock);
      par::parallel_for_2d(
          pool, static_cast<std::size_t>(mblocks),
          static_cast<std::size_t>(nblocks),
          [&](std::size_t bi, std::size_t bj) {
            const int is0 = static_cast<int>(bi) * kMBlock;
            const int is1 = std::min(m_strips, is0 + kMBlock);
            const int js0 = static_cast<int>(bj) * kNBlock;
            const int js1 = std::min(panel_strips, js0 + kNBlock);
            sweep_tile_strips(is0, is1, js0, js1, m, /*ncols=*/n - jc, jc, kc,
                              packa, packb, /*cbase=*/c + jc, /*ldc=*/n,
                              acc_panel, /*direct=*/nullptr);
          },
          /*tile_rows=*/1, /*tile_cols=*/1);
    }
  }
}

// Strided-source B packer for the three dense layout variants.
struct StridedB {
  const float* b;
  std::int64_t brs, bcs;
  void operator()(int k0, int kc, int j0, int cols, float* dst) const {
    pack_b_strip(cols, kc, b + k0 * brs + j0 * bcs, brs, bcs, dst);
  }
};

// ---------------------------------------------------------------------------
// Virtual-C driver: both operands virtual, C delivered through a sink. The
// k-panel loop runs INSIDE the column-block loop, accumulating the full K
// reduction of one m x ncols block into the arena's c_block scratch; only
// then is the block handed to the sink, so the sink sees each C element
// exactly once, with its final value — the contract that lets epilogues
// (bias + ReLU) and scatters (col2im) fuse into the store. Per-element
// values are bit-identical to the dense driver's: the same micro-kernel
// sweeps the same k-panels in the same order.

template <typename PackAStripFn, typename PackBStripFn>
void gemm_driver_sink(int m, int n, int k, const PackAStripFn& pack_a,
                      const PackBStripFn& pack_b, const CSink& sink,
                      par::ThreadPool* pool) {
  if (m <= 0 || n <= 0) return;
  if (pool != nullptr &&
      (pool->size() == 1 ||
       static_cast<std::int64_t>(m) * n * std::max(k, 1) < kMinFlopsForPool)) {
    pool = nullptr;
  }
  const int m_strips = ceil_div(m, kMR);
  const int kc_max = std::min(std::max(k, 1), kKC);
  // Single k-panel + elementwise sink: the micro-kernel's register tile
  // already holds final values, so tiles are handed to the sink straight
  // from the stack buffer — no c_block round-trip at all. Multi-panel
  // reductions (and row-grouped sinks, which need ordered whole-width
  // delivery) accumulate into c_block first.
  const bool direct_sink = k <= kKC && sink.row_group == 0;
  int nc = (kNCBudgetBytes / static_cast<int>(sizeof(float)) / kc_max) / kNR *
           kNR;
  if (!direct_sink) {
    // Keep the accumulation block cache-resident too: it is re-read by the
    // sink pass (and re-written per k-panel), so a thin-K wide-N shape must
    // not blow it past L2.
    const int nc_cap =
        (kNCBudgetBytes / static_cast<int>(sizeof(float)) / std::max(m, 1)) /
        kNR * kNR;
    nc = std::min(nc, nc_cap);
  }
  nc = std::max(nc, kNBlock * kNR);
  nc = std::min(nc, ceil_div(n, kNR) * kNR);

  const GemmDepthLease lease;
  PackArena& arena = lease.arena;
  float* packa = arena.a_panel.ensure(static_cast<std::size_t>(m_strips) *
                                      kMR * kc_max);
  float* packb = arena.b_panel.ensure(static_cast<std::size_t>(nc / kNR) *
                                      kNR * kc_max);
  float* cblock =
      direct_sink ? nullptr
                  : arena.c_block.ensure(static_cast<std::size_t>(m) * nc);
  const int mblocks = ceil_div(m_strips, kMBlock);

  for (int jc = 0; jc < n; jc += nc) {
    const int ncols = std::min(nc, n - jc);
    const std::int64_t ldc = ncols;
    const int panel_strips = ceil_div(ncols, kNR);
    const int nblocks = ceil_div(panel_strips, kNBlock);
    if (k <= 0) {
      // Zero-depth product: C is all zeros; deliver them through the sink.
      alignas(64) float zeros[kMR * kNR] = {};
      for (int i0 = 0; i0 < m; i0 += kMR) {
        const int rows = std::min(kMR, m - i0);
        for (int j0 = 0; j0 < ncols; j0 += kNR) {
          sink.fn(sink.ctx, i0, rows, jc + j0, std::min(kNR, ncols - j0),
                  zeros, kNR);
        }
      }
      continue;
    }
    for (int pc = 0; pc < k; pc += kKC) {
      const int kc = std::min(kKC, k - pc);
      par::parallel_for(
          pool, 0, static_cast<std::size_t>(m_strips),
          [&](std::size_t s) {
            const int row0 = static_cast<int>(s) * kMR;
            pack_a(row0, std::min(kMR, m - row0), pc, kc,
                   packa + s * static_cast<std::size_t>(kc) * kMR);
          },
          /*grain=*/8);
      par::parallel_for(
          pool, 0, static_cast<std::size_t>(panel_strips),
          [&](std::size_t s) {
            const int col0 = jc + static_cast<int>(s) * kNR;
            pack_b(pc, kc, col0, std::min(kNR, n - col0),
                   packb + s * static_cast<std::size_t>(kc) * kNR);
          },
          /*grain=*/8);
      const bool acc_panel = pc > 0;
      par::parallel_for_2d(
          pool, static_cast<std::size_t>(mblocks),
          static_cast<std::size_t>(nblocks),
          [&](std::size_t bi, std::size_t bj) {
            const int is0 = static_cast<int>(bi) * kMBlock;
            const int is1 = std::min(m_strips, is0 + kMBlock);
            const int js0 = static_cast<int>(bj) * kNBlock;
            const int js1 = std::min(panel_strips, js0 + kNBlock);
            sweep_tile_strips(is0, is1, js0, js1, m, ncols, jc, kc, packa,
                              packb, cblock, ldc, acc_panel,
                              direct_sink ? &sink : nullptr);
          },
          /*tile_rows=*/1, /*tile_cols=*/1);
    }
    if (direct_sink) continue;  // tiles were delivered in the compute loop
    // Deliver the finished block. Row-grouped sinks get one call per group
    // covering the whole block width (sequential in j across jc blocks by
    // construction); elementwise sinks get a parallel 2-D sweep of sub-
    // rectangles.
    if (sink.row_group > 0) {
      const int groups = ceil_div(m, sink.row_group);
      par::parallel_for(
          pool, 0, static_cast<std::size_t>(groups),
          [&](std::size_t g) {
            const int i0 = static_cast<int>(g) * sink.row_group;
            const int rows = std::min(sink.row_group, m - i0);
            sink.fn(sink.ctx, i0, rows, jc, ncols,
                    cblock + static_cast<std::int64_t>(i0) * ldc, ldc);
          },
          /*grain=*/1);
    } else {
      constexpr int kSinkRowBand = kMBlock * kMR;  // 72 rows per delivery
      constexpr int kSinkColBand = 256;
      par::parallel_for_2d(
          pool, static_cast<std::size_t>(ceil_div(m, kSinkRowBand)),
          static_cast<std::size_t>(ceil_div(ncols, kSinkColBand)),
          [&](std::size_t bi, std::size_t bj) {
            const int i0 = static_cast<int>(bi) * kSinkRowBand;
            const int rows = std::min(kSinkRowBand, m - i0);
            const int j0 = static_cast<int>(bj) * kSinkColBand;
            const int cols = std::min(kSinkColBand, ncols - j0);
            sink.fn(sink.ctx, i0, rows, jc + j0, cols,
                    cblock + static_cast<std::int64_t>(i0) * ldc + j0, ldc);
          },
          /*tile_rows=*/1, /*tile_cols=*/1);
    }
  }
}

}  // namespace

void gemm_nn(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate, par::ThreadPool* pool) {
  gemm_driver(m, n, k, a, /*ars=*/k, /*acs=*/1, StridedB{b, n, 1}, c,
              accumulate, pool);
}

void gemm_nt(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate, par::ThreadPool* pool) {
  gemm_driver(m, n, k, a, /*ars=*/k, /*acs=*/1, StridedB{b, 1, k}, c,
              accumulate, pool);
}

void gemm_tn(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate, par::ThreadPool* pool) {
  gemm_driver(m, n, k, a, /*ars=*/1, /*acs=*/m, StridedB{b, n, 1}, c,
              accumulate, pool);
}

void StridedA::pack(void* ctx, int i0, int rows, int k0, int kc, float* dst) {
  const auto& src = *static_cast<const StridedA*>(ctx);
  pack_a_strip(rows, kc, src.a + i0 * src.rs + k0 * src.cs, src.rs, src.cs,
               dst);
}

void gemm_virtual(int m, int n, int k, APacker a, BPacker b, CSink c,
                  par::ThreadPool* pool) {
  static_assert(kMR == kGemmMR && kNR == kGemmNR,
                "packer contracts mirror the micro-tile");
  if (a.mr != kMR || b.nr != kNR) {
    throw std::logic_error(
        "gemm_virtual: packer pitch (mr=" + std::to_string(a.mr) +
        ", nr=" + std::to_string(b.nr) + ") != library micro-tile (" +
        std::to_string(kMR) + ", " + std::to_string(kNR) +
        ") — caller TU compiled with different SIMD arch flags?");
  }
  if (c.fn == nullptr) throw std::logic_error("gemm_virtual: null sink");
  gemm_driver_sink(
      m, n, k,
      [&a](int i0, int rows, int k0, int kc, float* dst) {
        a.fn(a.ctx, i0, rows, k0, kc, dst);
      },
      [&b](int k0, int kc, int j0, int cols, float* dst) {
        b.fn(b.ctx, k0, kc, j0, cols, dst);
      },
      c, pool);
}

// ---------------------------------------------------------------------------
// Scalar references: the seed's triple loops, branch-free (the seed skipped
// av == 0.0f, which also skipped -0.0 sign and NaN propagation).

void gemm_nn_ref(int m, int n, int k, const float* a, const float* b, float* c,
                 bool accumulate) {
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<std::int64_t>(i) * n;
    if (!accumulate) std::memset(crow, 0, sizeof(float) * n);
    const float* arow = a + static_cast<std::int64_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b + static_cast<std::int64_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_nt_ref(int m, int n, int k, const float* a, const float* b, float* c,
                 bool accumulate) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::int64_t>(i) * k;
    float* crow = c + static_cast<std::int64_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::int64_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  }
}

void gemm_tn_ref(int m, int n, int k, const float* a, const float* b, float* c,
                 bool accumulate) {
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<std::int64_t>(i) * n;
    if (!accumulate) std::memset(crow, 0, sizeof(float) * n);
    for (int p = 0; p < k; ++p) {
      const float av = a[static_cast<std::int64_t>(p) * m + i];
      const float* brow = b + static_cast<std::int64_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace polarice::tensor
