#pragma once
// Dense float tensor with dynamic shape — the storage type of the neural
// network substrate. Layout is row-major over the shape vector; network code
// uses NCHW ordering by convention.

#include <cstdint>
#include <string>
#include <vector>

#include "util/mem_stats.h"

namespace polarice::tensor {

class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape. Every extent
  /// must be positive.
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int> shape, float value);

  /// Wraps existing values (size must equal the shape's element count).
  static Tensor from_values(std::vector<int> shape, std::vector<float> values);

  [[nodiscard]] int ndim() const noexcept { return static_cast<int>(shape_.size()); }
  [[nodiscard]] int dim(int i) const;
  [[nodiscard]] const std::vector<int>& shape() const noexcept { return shape_; }
  [[nodiscard]] std::int64_t numel() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }

  [[nodiscard]] float& operator[](std::int64_t i) noexcept { return data_[i]; }
  [[nodiscard]] float operator[](std::int64_t i) const noexcept { return data_[i]; }

  /// NCHW accessor for 4-D tensors (unchecked beyond debug asserts).
  [[nodiscard]] float& at4(int n, int c, int h, int w) noexcept {
    return data_[offset4(n, c, h, w)];
  }
  [[nodiscard]] float at4(int n, int c, int h, int w) const noexcept {
    return data_[offset4(n, c, h, w)];
  }

  [[nodiscard]] std::int64_t offset4(int n, int c, int h, int w) const noexcept {
    return ((static_cast<std::int64_t>(n) * shape_[1] + c) * shape_[2] + h) *
               shape_[3] + w;
  }

  /// Checks shape equality.
  [[nodiscard]] bool same_shape(const Tensor& other) const noexcept {
    return shape_ == other.shape_;
  }

  /// Returns a tensor sharing no storage with this one but reinterpreted to
  /// `new_shape` (element counts must match).
  [[nodiscard]] Tensor reshaped(std::vector<int> new_shape) const;

  void fill(float value) noexcept;
  void zero() noexcept { fill(0.0f); }

  /// this += other (shapes must match).
  void add_(const Tensor& other);
  /// this *= scalar.
  void scale_(float s) noexcept;
  /// this += alpha * other (axpy; shapes must match).
  void axpy_(float alpha, const Tensor& other);

  [[nodiscard]] float sum() const noexcept;
  [[nodiscard]] float mean() const noexcept;
  [[nodiscard]] float max_abs() const noexcept;

  /// True if any element is NaN or infinite — used by the trainer's loss
  /// guard to fail fast on divergence.
  [[nodiscard]] bool has_non_finite() const noexcept;

  [[nodiscard]] std::string shape_str() const;

 private:
  std::vector<int> shape_;
  // Element storage is byte-accounted under POLARICE_MEM_STATS (see
  // util/mem_stats.h); the allocator is a no-op otherwise.
  util::PlaneVector<float> data_;
};

/// Throws std::invalid_argument unless shapes match.
void require_same_shape(const Tensor& a, const Tensor& b, const char* what);

}  // namespace polarice::tensor
