#pragma once
// Single-precision GEMM kernels for the conv2d im2col path.
//
// All matrices are dense row-major. Three layout variants cover the three
// products a convolution layer needs:
//   NN:  C[M,N] (+)= A[M,K]   * B[K,N]      (forward: W * col)
//   NT:  C[M,N] (+)= A[M,K]   * B[N,K]^T    (backward: dY * col^T -> dW)
//   TN:  C[M,N] (+)= A[K,M]^T * B[K,N]      (backward: W^T * dY -> dcol)
//
// The production kernels are cache-blocked and panel-packed: A and B are
// repacked per k-panel into MR-row / NR-column strips held in a per-thread
// scratch arena (tensor/pack_arena.h), and an unrolled register-tiled
// micro-kernel (AVX2+FMA intrinsics when available, an auto-vectorizable
// portable tile otherwise) computes MR x NR tiles of C. Work is distributed
// over the 2-D macro-tile grid of C via par::parallel_for_2d; pool ==
// nullptr executes sequentially (one ddp rank == one "GPU", which must not
// steal the host's cores from its peers). Blocking parameters and the
// packing layout are documented in docs/PERF.md.
//
// The *_ref variants are the seed's scalar triple loops (kept branch-free:
// no zero-skip, so -0.0 and NaN propagate IEEE-correctly). They are the
// ground truth the tests and micro-benchmarks compare the blocked kernels
// against, and are sequential by design.

#include <cstdint>

#include "par/thread_pool.h"

namespace polarice::tensor {

/// C[M,N] = (accumulate ? C : 0) + A[M,K] * B[K,N].
void gemm_nn(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate, par::ThreadPool* pool);

/// C[M,N] = (accumulate ? C : 0) + A[M,K] * B[N,K]^T.
void gemm_nt(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate, par::ThreadPool* pool);

/// C[M,N] = (accumulate ? C : 0) + A[K,M]^T * B[K,N].
void gemm_tn(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate, par::ThreadPool* pool);

/// Width of the packed-B strips the blocked driver consumes (columns per
/// micro-tile — two vector registers wide). Custom B packers write panels
/// of kc x kGemmNR floats.
#if defined(__AVX512F__)
inline constexpr int kGemmNR = 32;
#else
inline constexpr int kGemmNR = 16;
#endif

/// Supplies the B operand by packing panels directly from a custom source —
/// e.g. conv2d packs im2col columns straight out of the input image
/// (implicit GEMM), never materializing the col matrix on the forward path.
struct BPacker {
  void* ctx;
  /// fn(ctx, k0, kc, j0, cols, dst): write rows [k0, k0+kc) x columns
  /// [j0, j0+cols) of the virtual B[K,N] into dst (kc x kGemmNR floats,
  /// zero-padded on the right when cols < kGemmNR).
  void (*fn)(void* ctx, int k0, int kc, int j0, int cols, float* dst);
  /// Panel pitch the packer writes. Leave at the default: the library
  /// validates it against its own compiled-in micro-tile width and throws
  /// on mismatch, catching TUs built with different arch flags (kGemmNR is
  /// 32 under AVX-512, 16 otherwise) before they produce garbage C.
  int nr = kGemmNR;
};

/// C[M,N] = (accumulate ? C : 0) + A[M,K] * B_virtual[K,N].
void gemm_nn_virtual_b(int m, int n, int k, const float* a, BPacker b,
                       float* c, bool accumulate, par::ThreadPool* pool);

/// Scalar reference kernels (sequential, unblocked, branch-free).
void gemm_nn_ref(int m, int n, int k, const float* a, const float* b, float* c,
                 bool accumulate);
void gemm_nt_ref(int m, int n, int k, const float* a, const float* b, float* c,
                 bool accumulate);
void gemm_tn_ref(int m, int n, int k, const float* a, const float* b, float* c,
                 bool accumulate);

}  // namespace polarice::tensor
