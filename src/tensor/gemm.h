#pragma once
// Single-precision GEMM kernels for the conv2d im2col path.
//
// All matrices are dense row-major. Three layout variants cover the three
// products a convolution layer needs:
//   NN:  C[M,N] (+)= A[M,K]   * B[K,N]      (forward: W * col)
//   NT:  C[M,N] (+)= A[M,K]   * B[N,K]^T    (backward: dY * col^T -> dW)
//   TN:  C[M,N] (+)= A[K,M]^T * B[K,N]      (backward: W^T * dY -> dcol)
//
// The production kernels are cache-blocked and panel-packed: A and B are
// repacked per k-panel into MR-row / NR-column strips held in a per-thread
// scratch arena (tensor/pack_arena.h), and an unrolled register-tiled
// micro-kernel (AVX2+FMA intrinsics when available, an auto-vectorizable
// portable tile otherwise) computes MR x NR tiles of C. Work is distributed
// over the 2-D macro-tile grid of C via par::parallel_for_2d; pool ==
// nullptr executes sequentially (one ddp rank == one "GPU", which must not
// steal the host's cores from its peers). Blocking parameters and the
// packing layout are documented in docs/PERF.md.
//
// The *_ref variants are the seed's scalar triple loops (kept branch-free:
// no zero-skip, so -0.0 and NaN propagate IEEE-correctly). They are the
// ground truth the tests and micro-benchmarks compare the blocked kernels
// against, and are sequential by design.

#include <cstdint>

#include "par/thread_pool.h"

namespace polarice::tensor {

/// C[M,N] = (accumulate ? C : 0) + A[M,K] * B[K,N].
void gemm_nn(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate, par::ThreadPool* pool);

/// C[M,N] = (accumulate ? C : 0) + A[M,K] * B[N,K]^T.
void gemm_nt(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate, par::ThreadPool* pool);

/// C[M,N] = (accumulate ? C : 0) + A[K,M]^T * B[K,N].
void gemm_tn(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate, par::ThreadPool* pool);

/// Width of the packed-B strips the blocked driver consumes (columns per
/// micro-tile — two vector registers wide). Custom B packers write panels
/// of kc x kGemmNR floats.
#if defined(__AVX512F__)
inline constexpr int kGemmNR = 32;
#else
inline constexpr int kGemmNR = 16;
#endif

/// Height of the packed-A strips (rows per micro-tile). Custom A packers
/// write strips of kc x kGemmMR floats, k-major: dst[p * kGemmMR + r].
inline constexpr int kGemmMR = 6;

/// Supplies the B operand by packing panels directly from a custom source —
/// e.g. conv2d packs im2col columns straight out of the input tensor
/// (implicit GEMM), never materializing the col matrix (see gemm_virtual).
struct BPacker {
  void* ctx;
  /// fn(ctx, k0, kc, j0, cols, dst): write rows [k0, k0+kc) x columns
  /// [j0, j0+cols) of the virtual B[K,N] into dst (kc x kGemmNR floats,
  /// zero-padded on the right when cols < kGemmNR).
  void (*fn)(void* ctx, int k0, int kc, int j0, int cols, float* dst);
  /// Panel pitch the packer writes. Leave at the default: the library
  /// validates it against its own compiled-in micro-tile width and throws
  /// on mismatch, catching TUs built with different arch flags (kGemmNR is
  /// 32 under AVX-512, 16 otherwise) before they produce garbage C.
  int nr = kGemmNR;
};

/// Supplies the A operand by packing strips directly from a custom source
/// (e.g. conv2d_backward packs dY samples straight out of the NCHW gradient
/// tensor, whose batched [M, N*plane] view is not expressible with strides).
struct APacker {
  void* ctx;
  /// fn(ctx, i0, rows, k0, kc, dst): write rows [i0, i0+rows) x columns
  /// [k0, k0+kc) of the virtual A[M,K] into dst (kc x kGemmMR floats,
  /// k-major — dst[(p-k0)*kGemmMR + (r-i0)] — zero-padded below when
  /// rows < kGemmMR).
  void (*fn)(void* ctx, int i0, int rows, int k0, int kc, float* dst);
  /// Strip pitch, validated against the library's compiled-in micro-tile
  /// height exactly like BPacker::nr (see above).
  int mr = kGemmMR;
};

/// Packs A strips from plain strided memory: A[r][p] = a[r*rs + p*cs].
/// Covers the dense N (rs=K, cs=1) and T (rs=1, cs=M) layouts for callers
/// of gemm_virtual that only need one virtual operand.
struct StridedA {
  const float* a;
  std::int64_t rs, cs;
  static void pack(void* ctx, int i0, int rows, int k0, int kc, float* dst);
  [[nodiscard]] APacker packer() const noexcept {
    return APacker{const_cast<StridedA*>(this), &StridedA::pack};
  }
};

/// Consumes finished C tiles instead of writing a dense C — the "virtual C"
/// store. The driver accumulates the full K reduction into an internal
/// cache-blocked scratch panel, then delivers each region of final values
/// exactly once, so sinks can fuse an epilogue (bias + activation) or a
/// scatter (col2im) without ever materializing C.
struct CSink {
  void* ctx;
  /// fn(ctx, i0, rows, j0, cols, tile, ldt): consume the final values of
  /// C[i0..i0+rows) x [j0..j0+cols); tile is row-major with leading
  /// dimension ldt. Each C element is delivered exactly once.
  void (*fn)(void* ctx, int i0, int rows, int j0, int cols, const float* tile,
             std::int64_t ldt);
  /// Parallel-delivery contract along the M axis:
  ///   0   — fn may be called concurrently for any disjoint regions
  ///         (elementwise sinks: strided stores, bias/ReLU epilogues).
  ///   g>0 — only regions from different row groups [q*g, (q+1)*g) are
  ///         delivered concurrently; within one group, calls arrive
  ///         sequentially in ascending j. Lets overlapping scatters
  ///         (col2im: all kh*kw rows of one channel hit the same plane)
  ///         stay race-free while other channels proceed in parallel.
  int row_group = 0;
};

/// C_sink(A_virtual[M,K] * B_virtual[K,N]) — fully virtual GEMM: both
/// operands are packed on the fly and C is delivered through the sink.
void gemm_virtual(int m, int n, int k, APacker a, BPacker b, CSink c,
                  par::ThreadPool* pool);

/// Scalar reference kernels (sequential, unblocked, branch-free).
void gemm_nn_ref(int m, int n, int k, const float* a, const float* b, float* c,
                 bool accumulate);
void gemm_nt_ref(int m, int n, int k, const float* a, const float* b, float* c,
                 bool accumulate);
void gemm_tn_ref(int m, int n, int k, const float* a, const float* b, float* c,
                 bool accumulate);

}  // namespace polarice::tensor
