#pragma once
// Single-precision GEMM kernels for the conv2d im2col path.
//
// All matrices are dense row-major. Three layout variants cover the three
// products a convolution layer needs:
//   NN:  C[M,N] (+)= A[M,K]   * B[K,N]      (forward: W * col)
//   NT:  C[M,N] (+)= A[M,K]   * B[N,K]^T    (backward: dY * col^T -> dW)
//   TN:  C[M,N] (+)= A[K,M]^T * B[K,N]      (backward: W^T * dY -> dcol)
//
// Work is split over column blocks of C and run on the optional thread pool;
// pool == nullptr executes sequentially (one ddp rank == one "GPU", which
// must not steal the host's cores from its peers).

#include <cstdint>

#include "par/thread_pool.h"

namespace polarice::tensor {

/// C[M,N] = (accumulate ? C : 0) + A[M,K] * B[K,N].
void gemm_nn(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate, par::ThreadPool* pool);

/// C[M,N] = (accumulate ? C : 0) + A[M,K] * B[N,K]^T.
void gemm_nt(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate, par::ThreadPool* pool);

/// C[M,N] = (accumulate ? C : 0) + A[K,M]^T * B[K,N].
void gemm_tn(int m, int n, int k, const float* a, const float* b, float* c,
             bool accumulate, par::ThreadPool* pool);

}  // namespace polarice::tensor
