#include "core/streaming.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "par/task_group.h"

namespace polarice::core {

StreamingExecutor::StreamingExecutor(std::size_t window) : window_(window) {
  if (window_ == 0) {
    throw std::invalid_argument("StreamingExecutor: window must be >= 1");
  }
}

std::vector<LabeledTile> StreamingExecutor::run(
    const std::vector<std::unique_ptr<SceneStage>>& stages,
    std::size_t num_scenes, const par::ExecutionContext& ctx,
    StreamingStats* stats) const {
  std::vector<std::vector<LabeledTile>> per_scene(num_scenes);
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> in_flight{0};
  // Live residency gauge for the duration of this run; the handle
  // unregisters before in_flight goes out of scope.
  obs::GaugeHandle gauge = obs::registry().register_gauge(
      "streaming_in_flight_scenes", [&in_flight] {
        return static_cast<double>(in_flight.load(std::memory_order_relaxed));
      });

  // One scene's whole stage chain, inside one slot. The slot (and with it
  // every scene-level plane) dies before the ticket is released, so the
  // window bounds plane residency, not just task concurrency.
  const auto run_one = [&](std::size_t index) {
    in_flight.fetch_add(1, std::memory_order_relaxed);
    struct InFlight {
      std::atomic<std::size_t>* n;
      ~InFlight() { n->fetch_sub(1, std::memory_order_relaxed); }
    } resident{&in_flight};
    SceneSlot slot;
    slot.index = index;
    for (const auto& stage : stages) {
      ctx.throw_if_cancelled("corpus_stream");
      stage->run_scene(ctx, slot);
    }
    per_scene[index] = std::move(slot.tiles);
    slot.release_planes();
    ctx.report_progress("corpus_stream",
                        completed.fetch_add(1, std::memory_order_acq_rel) + 1,
                        num_scenes);
  };

  std::size_t peak_in_flight = num_scenes == 0 ? 0 : 1;
  if (ctx.pool() == nullptr || window_ == 1 || num_scenes <= 1) {
    // Degenerate window: strictly one scene resident at a time.
    for (std::size_t i = 0; i < num_scenes; ++i) run_one(i);
  } else {
    par::TicketWindow gate(window_);
    std::atomic<bool> failed{false};
    {
      par::TaskGroup group(*ctx.pool());
      for (std::size_t i = 0; i < num_scenes; ++i) {
        // A failed scene stops admission; already-admitted scenes drain in
        // the TaskGroup join below and wait() rethrows the first error.
        // Re-checked after the blocking acquire: a scene that failed while
        // the producer waited must not admit one more full scene of work.
        if (failed.load(std::memory_order_acquire)) break;
        gate.acquire(ctx);  // backpressure; throws on cancellation
        if (failed.load(std::memory_order_acquire)) {
          gate.release();
          break;
        }
        group.run([&, i] {
          struct Ticket {
            par::TicketWindow* gate;
            ~Ticket() { gate->release(); }
          } ticket{&gate};
          try {
            run_one(i);
          } catch (...) {
            failed.store(true, std::memory_order_release);
            throw;
          }
        });
      }
      group.wait();
    }
    peak_in_flight = gate.peak();
  }

  if (stats != nullptr) {
    stats->scenes = num_scenes;
    stats->peak_in_flight = peak_in_flight;
  }

  // Restore fleet (batch) order: scene i's tiles precede scene i+1's, in
  // the same row-major per-scene order TileSplitStage emits — bit-identical
  // input for TrainTestSplitStage's seeded shuffle.
  std::size_t total = 0;
  for (const auto& tiles : per_scene) total += tiles.size();
  std::vector<LabeledTile> corpus;
  corpus.reserve(total);
  for (auto& tiles : per_scene) {
    for (auto& tile : tiles) corpus.push_back(std::move(tile));
    tiles = {};
  }
  return corpus;
}

StreamingCorpusStage::StreamingCorpusStage(CorpusConfig config,
                                           std::size_t window)
    : config_(std::move(config)), executor_(window) {
  config_.acquisition.validate();
}

void StreamingCorpusStage::run(const par::ExecutionContext& ctx,
                               ArtifactStore& store) {
  const auto stages = make_corpus_stages(config_);
  store.put(keys::kCorpusTiles,
            executor_.run(stages,
                          static_cast<std::size_t>(
                              config_.acquisition.num_scenes),
                          ctx));
}

}  // namespace polarice::core
