#pragma once
// Single-node scaling of the auto-labeling pipeline (paper §III.B "Python
// Multiprocessing", Table I / Fig 10) — a thin compatibility wrapper over
// AutoLabelStage with the kPool execution policy. Prefer constructing the
// stage directly in new code; this class remains for the Table I benches.

#include <cstddef>
#include <vector>

#include "core/autolabel.h"

namespace polarice::core {

struct ParallelAutoLabelStats {
  double seconds = 0.0;          // wall time for the whole batch
  std::size_t tiles = 0;
  double tiles_per_second = 0.0;
};

class ParallelAutoLabeler {
 public:
  explicit ParallelAutoLabeler(AutoLabelConfig config = {});

  /// Labels every tile with `workers` threads (1 = sequential) and reports
  /// wall time. Results are in input order regardless of worker count.
  std::vector<AutoLabelResult> run(const std::vector<img::ImageU8>& tiles,
                                   std::size_t workers,
                                   ParallelAutoLabelStats* stats = nullptr) const;

 private:
  AutoLabelConfig config_;
};

}  // namespace polarice::core
