#include "core/autolabel.h"

#include <stdexcept>

#include "img/color.h"
#include "img/ops.h"
#include "s2/scene.h"

namespace polarice::core {

AutoLabeler::AutoLabeler(AutoLabelConfig config)
    : config_(std::move(config)), filter_(config_.filter) {}

AutoLabelResult AutoLabeler::label(const img::ImageU8& rgb) const {
  if (rgb.channels() != 3) {
    throw std::invalid_argument("AutoLabeler: expected RGB input");
  }
  AutoLabelResult result;
  result.used_image = config_.apply_filter ? filter_.apply(rgb) : rgb;

  const img::ImageU8 hsv = img::rgb_to_hsv(result.used_image);
  const int w = hsv.width(), h = hsv.height();

  // One mask per class (paper: three masks merged with distinct colors).
  std::array<img::ImageU8, s2::kNumClasses> masks;
  for (int cls = 0; cls < s2::kNumClasses; ++cls) {
    masks[cls] =
        img::in_range(hsv, config_.ranges[cls].lower, config_.ranges[cls].upper);
  }

  result.labels = img::ImageU8(w, h, 1);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      // The paper's bands partition V, so exactly one mask fires; if ranges
      // were customized to overlap, the highest class wins (thick > thin >
      // water), and uncovered pixels fall back to thin ice (the middle band).
      int label = static_cast<int>(s2::SeaIceClass::kThinIce);
      for (int cls = s2::kNumClasses - 1; cls >= 0; --cls) {
        if (masks[cls].at(x, y) != 0) {
          label = cls;
          break;
        }
      }
      result.labels.at(x, y) = static_cast<std::uint8_t>(label);
      ++result.class_counts[static_cast<std::size_t>(label)];
    }
  }
  result.colorized = s2::colorize_labels(result.labels);
  return result;
}

}  // namespace polarice::core
