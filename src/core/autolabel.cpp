#include "core/autolabel.h"

#include <atomic>
#include <stdexcept>

#include "img/color.h"
#include "img/ops.h"
#include "par/parallel_for.h"
#include "s2/scene.h"

namespace polarice::core {

namespace {

// True when `hsv` falls inside `range` on every channel — exactly
// img::in_range's per-pixel predicate.
inline bool hsv_in_range(const std::array<std::uint8_t, 3>& hsv,
                         const s2::HsvRange& range) noexcept {
  for (int c = 0; c < 3; ++c) {
    if (hsv[c] < range.lower[c] || hsv[c] > range.upper[c]) return false;
  }
  return true;
}

}  // namespace

AutoLabeler::AutoLabeler(AutoLabelConfig config)
    : config_(std::move(config)), filter_(config_.filter) {}

AutoLabelResult AutoLabeler::label(const img::ImageU8& rgb,
                                   const par::ExecutionContext& ctx) const {
  ctx.throw_if_cancelled("AutoLabeler::label");
  return label_impl(rgb, ctx);
}


AutoLabelResult AutoLabeler::label_impl(
    const img::ImageU8& rgb, const par::ExecutionContext& ctx) const {
  if (rgb.channels() != 3) {
    throw std::invalid_argument("AutoLabeler: expected RGB input");
  }
  par::ThreadPool* pool = ctx.pool();
  AutoLabelResult result;
  result.used_image = config_.apply_filter ? filter_.apply(rgb, ctx) : rgb;

  const int w = result.used_image.width(), h = result.used_image.height();
  result.labels = img::ImageU8(w, h, 1);
  result.colorized = img::ImageU8(w, h, 3);

  const std::uint8_t* src = result.used_image.data();
  std::uint8_t* labels = result.labels.data();
  std::uint8_t* colors = result.colorized.data();
  std::array<std::atomic<std::size_t>, s2::kNumClasses> counts{};

  // One pass, parallel over rows: convert the pixel to HSV, test the class
  // bands from the highest class down (thick > thin > water; uncovered
  // pixels fall back to thin ice, the middle band — the paper's bands
  // partition V, so with default ranges exactly one band fires), and emit
  // the class id plus its label color in place. No HSV plane, no per-class
  // mask, no separate colorize pass.
  par::parallel_for(pool, 0, static_cast<std::size_t>(h), [&](std::size_t y) {
    const std::uint8_t* row = src + y * 3 * static_cast<std::size_t>(w);
    std::uint8_t* lrow = labels + y * static_cast<std::size_t>(w);
    std::uint8_t* crow = colors + y * 3 * static_cast<std::size_t>(w);
    std::array<std::size_t, s2::kNumClasses> row_counts{};
    for (int x = 0; x < w; ++x) {
      const auto hsv =
          img::rgb_to_hsv_pixel(row[3 * x], row[3 * x + 1], row[3 * x + 2]);
      int label = static_cast<int>(s2::SeaIceClass::kThinIce);
      for (int cls = s2::kNumClasses - 1; cls >= 0; --cls) {
        if (hsv_in_range(hsv, config_.ranges[cls])) {
          label = cls;
          break;
        }
      }
      lrow[x] = static_cast<std::uint8_t>(label);
      const auto& color = s2::kClassColors[static_cast<std::size_t>(label)];
      crow[3 * x] = color[0];
      crow[3 * x + 1] = color[1];
      crow[3 * x + 2] = color[2];
      ++row_counts[static_cast<std::size_t>(label)];
    }
    for (std::size_t cls = 0; cls < s2::kNumClasses; ++cls) {
      counts[cls].fetch_add(row_counts[cls], std::memory_order_relaxed);
    }
  });
  for (std::size_t cls = 0; cls < s2::kNumClasses; ++cls) {
    result.class_counts[cls] = counts[cls].load(std::memory_order_relaxed);
  }
  return result;
}

AutoLabelResult AutoLabeler::label_reference(const img::ImageU8& rgb) const {
  if (rgb.channels() != 3) {
    throw std::invalid_argument("AutoLabeler: expected RGB input");
  }
  AutoLabelResult result;
  result.used_image = config_.apply_filter ? filter_.apply(rgb) : rgb;

  const img::ImageU8 hsv = img::rgb_to_hsv(result.used_image);
  const int w = hsv.width(), h = hsv.height();

  // One mask per class (paper: three masks merged with distinct colors).
  std::array<img::ImageU8, s2::kNumClasses> masks;
  for (int cls = 0; cls < s2::kNumClasses; ++cls) {
    masks[cls] =
        img::in_range(hsv, config_.ranges[cls].lower, config_.ranges[cls].upper);
  }

  result.labels = img::ImageU8(w, h, 1);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      // The paper's bands partition V, so exactly one mask fires; if ranges
      // were customized to overlap, the highest class wins (thick > thin >
      // water), and uncovered pixels fall back to thin ice (the middle band).
      int label = static_cast<int>(s2::SeaIceClass::kThinIce);
      for (int cls = s2::kNumClasses - 1; cls >= 0; --cls) {
        if (masks[cls].at(x, y) != 0) {
          label = cls;
          break;
        }
      }
      result.labels.at(x, y) = static_cast<std::uint8_t>(label);
      ++result.class_counts[static_cast<std::size_t>(label)];
    }
  }
  result.colorized = s2::colorize_labels(result.labels);
  return result;
}

}  // namespace polarice::core
