#pragma once
// Bridges the s2 tile corpus to the nn training set (Fig 2's "training and
// test data preparation"): choose which labels supervise the model (ground
// truth, simulated-manual, or auto-generated) and which image variant the
// model sees (original, cloud/shadow-filtered, or the atmosphere-free clean
// reference).

#include <vector>

#include "core/autolabel.h"
#include "nn/data.h"
#include "par/context.h"
#include "par/thread_pool.h"
#include "s2/manual_label.h"
#include "s2/tiles.h"

namespace polarice::core {

enum class LabelSource {
  kGroundTruth,  // generator truth (evaluation only — unavailable in reality)
  kManual,       // simulated human annotation -> U-Net-Man
  kAuto,         // filter + color segmentation -> U-Net-Auto
};

enum class ImageVariant {
  kOriginal,  // as observed (clouds and shadows included)
  kFiltered,  // CloudShadowFilter output
  kClean,     // generator's atmosphere-free reference (diagnostics only)
};

struct DatasetBuildConfig {
  LabelSource labels = LabelSource::kAuto;
  ImageVariant images = ImageVariant::kFiltered;
  AutoLabelConfig autolabel;          // used when labels == kAuto
  s2::ManualLabelConfig manual;       // used when labels == kManual
};

/// Converts one RGB image + label plane into an nn sample ([3,H,W] floats
/// in [0,1], one class id per pixel).
nn::SegSample tile_to_sample(const img::ImageU8& rgb,
                             const img::ImageU8& labels);

/// Builds a SegDataset from raw tiles, running the per-tile filter /
/// auto-label / manual-label paths on demand. Prefer the LabeledTile
/// overload for training workflows — it reuses scene-level processing.
/// Tiles are processed in parallel on the context's pool; cancellation is
/// checked per tile.
nn::SegDataset build_dataset(const std::vector<s2::Tile>& tiles,
                             const DatasetBuildConfig& config,
                             const par::ExecutionContext& ctx = {});

struct LabeledTile;  // core/corpus.h
struct CorpusConfig;

/// Builds a SegDataset from a prepared corpus (no recomputation: all label
/// and imagery variants were produced at scene level by prepare_corpus).
nn::SegDataset build_dataset(const std::vector<LabeledTile>& tiles,
                             LabelSource labels, ImageVariant images);

/// One-call corpus -> dataset: runs prepare_corpus under the config's
/// CorpusExecution (whole-fleet batch, or streaming{window} for O(window)
/// peak plane memory) and converts the tiles. The dataset is bit-identical
/// across execution modes.
nn::SegDataset build_corpus_dataset(const CorpusConfig& config,
                                    LabelSource labels, ImageVariant images,
                                    const par::ExecutionContext& ctx = {});

}  // namespace polarice::core
