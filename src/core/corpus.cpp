#include "core/corpus.h"

#include <stdexcept>
#include <utility>

#include "core/pipeline.h"
#include "core/stages.h"
#include "core/streaming.h"

namespace polarice::core {

void CorpusExecution::validate() const {
  if (mode == Mode::kStreaming && window == 0) {
    throw std::invalid_argument(
        "CorpusExecution: streaming window must be >= 1");
  }
}

std::vector<std::unique_ptr<SceneStage>> make_corpus_stages(
    const CorpusConfig& config) {
  std::vector<std::unique_ptr<SceneStage>> stages;
  stages.push_back(std::make_unique<AcquireStage>(config.acquisition));
  const bool filtered = config.autolabel.apply_filter;
  const std::string& segmented_key =
      filtered ? keys::kFilteredImages : keys::kScenes;
  if (filtered) {
    stages.push_back(std::make_unique<CloudFilterStage>(
        config.autolabel.filter, keys::kScenes));
  }
  AutoLabelConfig segment_only = config.autolabel;
  segment_only.apply_filter = false;  // the scene is filtered exactly once
  stages.push_back(std::make_unique<AutoLabelStage>(
      segment_only, AutoLabelPolicy::context(), segmented_key));
  stages.push_back(std::make_unique<ManualLabelStage>(config.manual));
  stages.push_back(std::make_unique<TileSplitStage>(
      config.acquisition.tile_size, segmented_key));
  return stages;
}

std::vector<LabeledTile> prepare_corpus(const CorpusConfig& config,
                                        const par::ExecutionContext& ctx) {
  config.acquisition.validate();
  config.execution.validate();

  auto stages = make_corpus_stages(config);
  if (config.execution.mode == CorpusExecution::Mode::kStreaming) {
    const StreamingExecutor executor(config.execution.window);
    return executor.run(stages,
                        static_cast<std::size_t>(config.acquisition.num_scenes),
                        ctx);
  }

  Pipeline pipeline;
  for (auto& stage : stages) pipeline.add(std::move(stage));
  ArtifactStore store;
  pipeline.run(ctx, store);
  return store.take<std::vector<LabeledTile>>(keys::kCorpusTiles);
}

}  // namespace polarice::core
