#include "core/corpus.h"

#include "core/pipeline.h"
#include "core/stages.h"

namespace polarice::core {

std::vector<LabeledTile> prepare_corpus(const CorpusConfig& config,
                                        const par::ExecutionContext& ctx) {
  config.acquisition.validate();

  Pipeline pipeline;
  pipeline.emplace<AcquireStage>(config.acquisition);
  const bool filtered = config.autolabel.apply_filter;
  const std::string& segmented_key =
      filtered ? keys::kFilteredImages : keys::kScenes;
  if (filtered) {
    pipeline.emplace<CloudFilterStage>(config.autolabel.filter, keys::kScenes);
  }
  AutoLabelConfig segment_only = config.autolabel;
  segment_only.apply_filter = false;  // the scene is filtered exactly once
  pipeline.emplace<AutoLabelStage>(segment_only, AutoLabelPolicy::context(),
                                   segmented_key);
  pipeline.emplace<ManualLabelStage>(config.manual);
  pipeline.emplace<TileSplitStage>(config.acquisition.tile_size,
                                   segmented_key);

  ArtifactStore store;
  pipeline.run(ctx, store);
  return store.take<std::vector<LabeledTile>>(keys::kCorpusTiles);
}


}  // namespace polarice::core
