#include "core/corpus.h"

#include "img/ops.h"
#include "par/parallel_for.h"
#include "s2/scene.h"
#include "s2/tiles.h"

namespace polarice::core {

std::vector<LabeledTile> prepare_corpus(const CorpusConfig& config,
                                        par::ThreadPool* pool) {
  const auto& acq = config.acquisition;
  acq.validate();
  const int tiles_per_scene = acq.tiles_per_scene();
  const int per_axis = acq.scene_size / acq.tile_size;
  std::vector<LabeledTile> tiles(
      static_cast<std::size_t>(acq.total_tiles()));

  const CloudShadowFilter filter(config.autolabel.filter);
  AutoLabelConfig segment_only = config.autolabel;
  segment_only.apply_filter = false;  // the scene is filtered exactly once
  const AutoLabeler labeler(segment_only);
  const int cloudy_scenes = static_cast<int>(
      acq.cloudy_scene_fraction * static_cast<double>(acq.num_scenes) + 0.5);

  par::parallel_for(
      pool, 0, static_cast<std::size_t>(acq.num_scenes),
      [&](std::size_t scene_idx) {
        s2::SceneConfig sc = acq.scene_template;
        sc.width = sc.height = acq.scene_size;
        sc.seed = acq.seed + scene_idx;
        sc.cloudy = static_cast<int>(scene_idx) < cloudy_scenes;
        const s2::Scene scene = s2::SceneGenerator(sc).generate();

        // Scene-level processing (the paper's 349.26s stage).
        const img::ImageU8 filtered = config.autolabel.apply_filter
                                          ? filter.apply(scene.rgb)
                                          : scene.rgb;
        const img::ImageU8 auto_labels = labeler.label(filtered).labels;
        auto manual_cfg = config.manual;
        manual_cfg.seed += scene_idx;  // per-scene annotator stream
        const img::ImageU8 manual_labels =
            s2::simulate_manual_labels(scene.labels, manual_cfg);

        const auto scene_tiles =
            s2::split_scene(scene, acq.tile_size, static_cast<int>(scene_idx));
        for (int i = 0; i < tiles_per_scene; ++i) {
          const auto& st = scene_tiles[static_cast<std::size_t>(i)];
          LabeledTile out;
          const int x0 = st.tile_x * acq.tile_size;
          const int y0 = st.tile_y * acq.tile_size;
          out.rgb = st.rgb;
          out.rgb_clean = st.rgb_clean;
          out.truth = st.labels;
          out.rgb_filtered =
              img::crop(filtered, x0, y0, acq.tile_size, acq.tile_size);
          out.auto_labels =
              img::crop(auto_labels, x0, y0, acq.tile_size, acq.tile_size);
          out.manual_labels =
              img::crop(manual_labels, x0, y0, acq.tile_size, acq.tile_size);
          out.cloud_fraction = st.cloud_fraction;
          out.scene_index = st.scene_index;
          out.tile_x = st.tile_x;
          out.tile_y = st.tile_y;
          tiles[scene_idx * static_cast<std::size_t>(tiles_per_scene) +
                static_cast<std::size_t>(i)] = std::move(out);
        }
      },
      /*grain=*/1);
  return tiles;
}

}  // namespace polarice::core
