#pragma once
// Thin-cloud & cloud-shadow filter (paper §III.A, Fig 5).
//
// Physics: the generator (and, to first order, the real atmosphere over sea
// ice) distorts a clean value V as
//     V_obs = (V_clean * (1 - alpha) + 255 * alpha) * (1 - beta)
// where alpha is thin-cloud opacity (additive white haze) and beta the
// shadow attenuation, both spatially smooth.
//
// The filter estimates alpha(x) and beta(x) from local brightness envelopes
// anchored on the season's class color constants — the same premise the
// paper's color segmentation rests on (summer Ross Sea colors are nearly
// constant):
//     m(x) = blur(erode(V, K))   — local dark envelope (~open water)
//     M(x) = blur(dilate(V, K))  — local bright envelope (~thick ice)
// With reference anchors v_dark / v_bright,
//     (1-a)(1-b) = (M - m) / (v_bright - v_dark)
//     a (1-b)    = (m - v_dark * (1-a)(1-b)) / 255
// which pins down alpha and beta pointwise; inverting the distortion yields
// the filtered V. The pipeline is composed of the OpenCV-style primitives
// the paper lists: HSV conversion, morphology, Gaussian smoothing, absolute
// difference, Otsu thresholding (for the reported cloud mask), truncation
// and min-max handling on the output.
//
// Estimates are exact only where a window sees both dark and bright classes
// and the atmosphere is locally constant; elsewhere the heavy smoothing
// dilutes the error. That residual imperfection is intentional — the paper
// itself reports 99.64% (not 100%) label SSIM after filtering.

#include "img/image.h"
#include "par/context.h"
#include "par/thread_pool.h"

namespace polarice::core {

struct CloudFilterConfig {
  int envelope_kernel = 97;    // erode/dilate window K (odd)
  int smooth_kernel = 31;      // Gaussian smoothing of the envelopes (odd)
  int estimate_smooth_kernel = 81;  // smoothing of alpha/beta maps (odd)
  double v_dark_ref = 10.0;    // seasonal open-water V anchor (envelope min)
  double v_bright_ref = 245.0; // seasonal thick-ice V anchor (envelope max)
  double max_alpha = 0.75;     // clamp for the haze estimate
  double max_beta = 0.75;      // clamp for the shadow estimate
  double activation = 0.02;    // estimates below this are treated as clear

  void validate() const;
};

struct CloudFilterResult {
  img::ImageU8 filtered;       // atmosphere-corrected RGB
  img::ImageF32 alpha;         // estimated thin-cloud opacity per pixel
  img::ImageF32 beta;          // estimated shadow attenuation per pixel
  img::ImageU8 cloud_mask;     // Otsu-binarized |V_obs - V_filtered|
};

/// Stateless filter; all behaviour in the config.
class CloudShadowFilter {
 public:
  explicit CloudShadowFilter(CloudFilterConfig config = {});

  /// Full diagnostics (filtered image + estimated fields + mask). The
  /// context's pool parallelizes the pointwise stages over rows; output is
  /// identical with and without it.
  [[nodiscard]] CloudFilterResult apply_with_diagnostics(
      const img::ImageU8& rgb, const par::ExecutionContext& ctx = {}) const;

  /// Just the filtered image. Skips the diagnostic Otsu cloud-mask pass.
  [[nodiscard]] img::ImageU8 apply(const img::ImageU8& rgb,
                                   const par::ExecutionContext& ctx = {}) const;

  [[nodiscard]] const CloudFilterConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Shared pipeline; `want_mask` gates the diagnostic Otsu pass.
  [[nodiscard]] CloudFilterResult filter_impl(const img::ImageU8& rgb,
                                              par::ThreadPool* pool,
                                              bool want_mask) const;

  CloudFilterConfig config_;
};

}  // namespace polarice::core
