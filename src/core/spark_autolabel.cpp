#include "core/spark_autolabel.h"

namespace polarice::core {

SparkAutoLabeler::SparkAutoLabeler(mr::ClusterConfig cluster,
                                   AutoLabelConfig config)
    : cluster_(cluster), config_(std::move(config)) {
  cluster_.validate();
}

SparkAutoLabelOutput SparkAutoLabeler::run(std::vector<img::ImageU8> tiles) {
  mr::SparkContext context(cluster_);
  // Load: partition the tile collection across the cluster.
  auto rdd = context.parallelize(std::move(tiles));
  // Map: lazy — attaches the auto-labeling UDF to the lineage.
  const AutoLabeler labeler(config_);
  auto labeled = rdd.map(
      [labeler](const img::ImageU8& tile) { return labeler.label(tile).labels; });
  // Reduce/collect: triggers the distributed computation.
  SparkAutoLabelOutput output;
  output.labels = labeled.collect();
  output.times = context.last_job();
  return output;
}

}  // namespace polarice::core
