#include "core/spark_autolabel.h"

#include <stdexcept>

#include "core/stages.h"

namespace polarice::core {

SparkAutoLabeler::SparkAutoLabeler(mr::ClusterConfig cluster,
                                   AutoLabelConfig config)
    : cluster_(cluster), config_(std::move(config)) {
  cluster_.validate();
}

SparkAutoLabelOutput SparkAutoLabeler::run(std::vector<img::ImageU8> tiles) {
  const AutoLabelStage stage(config_, AutoLabelPolicy::spark(cluster_));
  AutoLabelBatchStats stats;
  auto results = stage.label_batch(tiles, par::ExecutionContext{}, &stats);
  if (!stats.spark.has_value()) {
    throw std::logic_error("SparkAutoLabeler: spark policy reported no times");
  }

  SparkAutoLabelOutput output;
  output.times = *stats.spark;
  // collect() returns partition order; this wrapper keeps that historical
  // contract. Round-robin partitioning puts tiles p, p+P, ... in partition
  // p, so the permutation is reconstructed from the input-order results.
  const auto partitions = static_cast<std::size_t>(output.times.partitions);
  output.labels.reserve(results.size());
  for (std::size_t p = 0; p < partitions; ++p) {
    for (std::size_t i = p; i < results.size(); i += partitions) {
      output.labels.push_back(std::move(results[i].labels));
    }
  }
  return output;
}

}  // namespace polarice::core
