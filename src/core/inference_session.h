#pragma once
// InferenceSession — the serving-shaped face of the Fig 9 inference
// pipeline. A long-lived, thread-safe session that owns N U-Net replicas
// (weights copied once from the source model), the thin-cloud/shadow
// filter, and per-replica scratch, and serves many concurrent
// classify_scene() calls with batched tile inference.
//
// Concurrency model: each call leases one replica for its whole scene (the
// U-Net's forward caches make a model stateful), so up to `replicas` scenes
// classify in parallel; further callers block on a condition variable until
// a replica frees up. The lease discipline lives in serve::ReplicaPool
// (shared with SceneServer); the session uses a fixed-size pool. Replica
// weights are never mutated after construction, and the conv im2col arenas
// live inside each replica, so steady-state serving allocates almost
// nothing.
//
// Determinism: results are bit-identical to a serial
// InferenceWorkflow::classify_scene with the same model/filter/tile size,
// for any batch_tiles and any number of concurrent callers (the conv path
// processes batch samples serially and the intra-op pool is
// summation-order-preserving).
//
// For queued admission, cross-scene tile batching, result caching, and
// replica auto-scaling on top of these semantics, see serve::SceneServer.

#include <cstddef>

#include "core/cloud_filter.h"
#include "core/serve/replica_pool.h"
#include "img/image.h"
#include "nn/unet.h"
#include "par/context.h"

namespace polarice::core {

struct InferenceSessionConfig {
  int tile_size = 64;        // paper serving shape: 256
  int replicas = 2;          // max concurrent scene classifications
  int batch_tiles = 8;       // tiles per forward pass
  bool pad_partial_tiles = true;  // edge-replicate scenes that are not a
                                  // tile multiple (off: such scenes throw,
                                  // matching InferenceWorkflow)
  CloudFilterConfig filter;

  void validate() const;
};

struct InferenceSessionStats {
  std::size_t scenes = 0;        // classify_scene calls completed
  std::size_t tiles = 0;         // tiles inferred (incl. padding tiles)
  double busy_seconds = 0.0;     // summed per-call wall time
  double wait_seconds = 0.0;     // summed time callers blocked on a replica
  std::size_t peak_leases = 0;   // peak concurrent replica leases
};

class InferenceSession {
 public:
  /// Copies `model`'s weights into `config.replicas` internal replicas.
  /// `model` itself is not retained; it may be freed or keep training after
  /// construction. Throws std::invalid_argument when tile_size is
  /// incompatible with the model depth.
  InferenceSession(nn::UNet& model, InferenceSessionConfig config,
                   par::ExecutionContext ctx = {});

  /// Classifies one scene; returns the scene-sized class-id plane.
  /// Thread-safe; blocks while all replicas are leased. The per-call
  /// context overrides the session context (pool for this call's intra-op
  /// work, cancellation checked between tile batches, progress per batch).
  img::ImageU8 classify_scene(const img::ImageU8& scene_rgb,
                              const par::ExecutionContext& ctx);

  /// Same, under the session's construction-time context.
  img::ImageU8 classify_scene(const img::ImageU8& scene_rgb);

  [[nodiscard]] InferenceSessionStats stats() const;
  [[nodiscard]] const InferenceSessionConfig& config() const noexcept {
    return config_;
  }

 private:
  InferenceSessionConfig config_;
  par::ExecutionContext session_ctx_;
  CloudShadowFilter filter_;
  serve::ReplicaPool pool_;
  mutable std::mutex mutex_;
  InferenceSessionStats stats_;  // scene counters; guarded by mutex_
};

}  // namespace polarice::core
