#include "core/pipeline.h"

#include <unordered_set>

#include "util/log.h"

namespace polarice::core {

Pipeline& Pipeline::add(std::unique_ptr<Stage> stage) {
  if (stage == nullptr) {
    throw std::invalid_argument("Pipeline: null stage");
  }
  stages_.push_back(std::move(stage));
  return *this;
}

void Pipeline::validate(const ArtifactStore& seed) const {
  std::unordered_set<std::string> available;
  for (const auto& key : seed.keys()) available.insert(key);
  for (const auto& stage : stages_) {
    for (const auto& key : stage->consumes()) {
      if (available.count(key) == 0) {
        throw std::logic_error(
            "Pipeline: stage '" + stage->name() + "' consumes '" + key +
            "' which no earlier stage produces and the seed store lacks");
      }
    }
    for (const auto& key : stage->produces()) available.insert(key);
  }
}

void Pipeline::run(const par::ExecutionContext& ctx,
                   ArtifactStore& store) const {
  validate(store);
  std::size_t done = 0;
  for (const auto& stage : stages_) {
    ctx.throw_if_cancelled("pipeline");
    LOG_DEBUG() << "pipeline: running stage " << stage->name();
    ctx.report_progress("pipeline", done, stages_.size());
    stage->run(ctx, store);
    ctx.report_progress("pipeline", ++done, stages_.size());
  }
}

}  // namespace polarice::core
