#pragma once
// Canned stage graphs gluing the substrates together.
//
// TrainingWorkflow = the paper's Fig 2 as a core::Pipeline: acquire scenes,
// filter, auto/manual label, tile, split, train U-Net-Man and U-Net-Auto,
// and evaluate both on the held-out split against ground truth, on original
// and filtered imagery, overall (Table IV) and bucketed by cloud cover
// (Table V, Fig 13). The graph is assembled in build_pipeline(); run() is
// now "run the pipeline, read the artifacts".
//
// InferenceWorkflow = Fig 9 as a pipeline: big scene -> thin-cloud/shadow
// filter -> 256x256 tiles -> batched U-Net inference -> stitched scene
// classification. For long-lived concurrent serving use InferenceSession.

#include <memory>
#include <vector>

#include "core/corpus.h"
#include "core/dataset_builder.h"
#include "core/pipeline.h"
#include "core/stages.h"
#include "metrics/metrics.h"
#include "nn/trainer.h"
#include "nn/unet.h"
#include "par/context.h"
#include "s2/acquisition.h"

namespace polarice::core {

struct WorkflowConfig {
  s2::AcquisitionConfig acquisition;   // data source
  nn::UNetConfig model;                // architecture family member
  nn::TrainConfig training;            // epochs / batch / lr
  AutoLabelConfig autolabel;           // auto-label pipeline (with filter)
  s2::ManualLabelConfig manual;        // simulated annotator
  double train_fraction = 0.8;         // paper: 80/20 split
  std::uint64_t split_seed = 77;       // tile shuffle before splitting
  double cloud_split_threshold = 0.10; // Table V bucket boundary
  // How the corpus sub-graph executes: whole-fleet batch stages (default)
  // or CorpusExecution::streaming(window) — O(window) peak plane memory,
  // bit-identical tiles/split/models either way.
  CorpusExecution corpus_execution;

  void validate() const;

  /// The corpus slice of this config (what prepare_corpus and the
  /// streaming executor consume).
  [[nodiscard]] CorpusConfig corpus_config() const {
    return CorpusConfig{acquisition, autolabel, manual, corpus_execution};
  }
};

struct TrainingWorkflowResult {
  std::shared_ptr<nn::UNet> unet_man;
  std::shared_ptr<nn::UNet> unet_auto;
  std::vector<nn::EpochStats> man_history;
  std::vector<nn::EpochStats> auto_history;

  // Table IV: overall test accuracy.
  Evaluation man_original, man_filtered;
  Evaluation auto_original, auto_filtered;

  // Table V / Fig 13: split by cloud cover (> / <= threshold).
  Evaluation man_cloudy_original, man_cloudy_filtered;
  Evaluation auto_cloudy_original, auto_cloudy_filtered;
  Evaluation man_clear_original, man_clear_filtered;
  Evaluation auto_clear_original, auto_clear_filtered;

  std::size_t test_tiles_cloudy = 0;
  std::size_t test_tiles_clear = 0;
};

class TrainingWorkflow {
 public:
  explicit TrainingWorkflow(WorkflowConfig config);

  /// Assembles the Fig 2 stage graph for this config. Exposed so callers
  /// can inspect or extend the graph before running it; run() uses exactly
  /// this pipeline.
  [[nodiscard]] Pipeline build_pipeline() const;

  /// Runs the whole Fig 2 pipeline on the context (pool parallelizes data
  /// preparation and evaluation; cancellation and progress are honoured
  /// throughout).
  TrainingWorkflowResult run(const par::ExecutionContext& ctx = {});


  /// Evaluates an already-trained model on prepared tiles against ground
  /// truth. Exposed for the benches (Table V / Fig 13 sweeps re-use the
  /// models trained once).
  static Evaluation evaluate(nn::UNet& model,
                             const std::vector<LabeledTile>& tiles,
                             ImageVariant variant,
                             const par::ExecutionContext& ctx = {});


  [[nodiscard]] const WorkflowConfig& config() const noexcept {
    return config_;
  }

 private:
  WorkflowConfig config_;
};

class InferenceWorkflow {
 public:
  /// `model` must outlive the workflow. tile_size must be compatible with
  /// the model's spatial divisor; the filter config is validated here.
  /// `batch_tiles` is the number of tiles per forward pass (results are
  /// bit-identical for every value; it only trades memory for amortized
  /// dispatch).
  InferenceWorkflow(nn::UNet& model, CloudFilterConfig filter_config,
                    int tile_size, int batch_tiles = 8);

  /// The Fig 9 stage graph (CloudFilter -> TileInfer -> Stitch) for
  /// composition with other stages. Seed the store with keys::kSceneImages;
  /// results land under keys::kSceneLabels. classify_scene() runs the same
  /// components directly (no per-call graph assembly or scene copy).
  [[nodiscard]] Pipeline build_pipeline();

  /// Classifies a full scene (dimensions must be tile multiples); returns a
  /// scene-sized class-id plane. Not thread-safe — the model's forward
  /// caches are stateful; use InferenceSession for concurrent serving.
  img::ImageU8 classify_scene(const img::ImageU8& scene_rgb,
                              const par::ExecutionContext& ctx = {});


  [[nodiscard]] int tile_size() const noexcept { return tile_size_; }
  [[nodiscard]] int batch_tiles() const noexcept { return batch_tiles_; }
  [[nodiscard]] const CloudFilterConfig& filter_config() const noexcept {
    return filter_config_;
  }

 private:
  nn::UNet& model_;
  CloudFilterConfig filter_config_;
  CloudShadowFilter filter_;
  int tile_size_;
  int batch_tiles_;
};

}  // namespace polarice::core
