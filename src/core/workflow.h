#pragma once
// End-to-end workflows gluing the substrates together.
//
// TrainingWorkflow = the paper's Fig 2: acquire tiles, derive manual and
// auto labels, train U-Net-Man and U-Net-Auto, and evaluate both on the
// held-out split against ground truth, on original and filtered imagery,
// overall (Table IV) and bucketed by cloud cover (Table V, Fig 13).
//
// InferenceWorkflow = Fig 9: big scene -> 256x256 tiles -> thin-cloud/
// shadow filter -> U-Net inference -> stitched scene-level classification.

#include <memory>
#include <vector>

#include "core/corpus.h"
#include "core/dataset_builder.h"
#include "metrics/metrics.h"
#include "nn/trainer.h"
#include "nn/unet.h"
#include "s2/acquisition.h"

namespace polarice::core {

struct WorkflowConfig {
  s2::AcquisitionConfig acquisition;   // data source
  nn::UNetConfig model;                // architecture family member
  nn::TrainConfig training;            // epochs / batch / lr
  AutoLabelConfig autolabel;           // auto-label pipeline (with filter)
  s2::ManualLabelConfig manual;        // simulated annotator
  double train_fraction = 0.8;         // paper: 80/20 split
  std::uint64_t split_seed = 77;       // tile shuffle before splitting
  double cloud_split_threshold = 0.10; // Table V bucket boundary

  void validate() const;
};

/// Metrics of one model on one image variant, against ground truth.
struct Evaluation {
  double accuracy = 0.0;
  double precision = 0.0;  // macro
  double recall = 0.0;     // macro
  double f1 = 0.0;         // macro
  metrics::ConfusionMatrix confusion{s2::kNumClasses};
};

struct TrainingWorkflowResult {
  std::shared_ptr<nn::UNet> unet_man;
  std::shared_ptr<nn::UNet> unet_auto;
  std::vector<nn::EpochStats> man_history;
  std::vector<nn::EpochStats> auto_history;

  // Table IV: overall test accuracy.
  Evaluation man_original, man_filtered;
  Evaluation auto_original, auto_filtered;

  // Table V / Fig 13: split by cloud cover (> / <= threshold).
  Evaluation man_cloudy_original, man_cloudy_filtered;
  Evaluation auto_cloudy_original, auto_cloudy_filtered;
  Evaluation man_clear_original, man_clear_filtered;
  Evaluation auto_clear_original, auto_clear_filtered;

  std::size_t test_tiles_cloudy = 0;
  std::size_t test_tiles_clear = 0;
};

class TrainingWorkflow {
 public:
  explicit TrainingWorkflow(WorkflowConfig config);

  /// Runs the whole Fig 2 pipeline. `pool` parallelizes data preparation
  /// and evaluation (training itself uses the model's configured pool).
  TrainingWorkflowResult run(par::ThreadPool* pool = nullptr);

  /// Evaluates an already-trained model on prepared tiles against ground
  /// truth. Exposed for the benches (Table V / Fig 13 sweeps re-use the
  /// models trained once).
  static Evaluation evaluate(nn::UNet& model,
                             const std::vector<LabeledTile>& tiles,
                             ImageVariant variant,
                             par::ThreadPool* pool = nullptr);

  [[nodiscard]] const WorkflowConfig& config() const noexcept {
    return config_;
  }

 private:
  WorkflowConfig config_;
};

class InferenceWorkflow {
 public:
  /// `model` must outlive the workflow. tile_size must be compatible with
  /// the model's spatial divisor.
  InferenceWorkflow(nn::UNet& model, CloudFilterConfig filter_config,
                    int tile_size);

  /// Classifies a full scene; returns a scene-sized class-id plane.
  img::ImageU8 classify_scene(const img::ImageU8& scene_rgb,
                              par::ThreadPool* pool = nullptr);

 private:
  nn::UNet& model_;
  CloudShadowFilter filter_;
  int tile_size_;
};

}  // namespace polarice::core
