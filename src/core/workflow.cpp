#include "core/workflow.h"

#include <stdexcept>

#include "core/streaming.h"
#include "s2/tiles.h"
#include "util/log.h"

namespace polarice::core {

void WorkflowConfig::validate() const {
  acquisition.validate();
  model.validate();
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("WorkflowConfig: train_fraction in (0,1)");
  }
  if (acquisition.tile_size % model.spatial_divisor() != 0) {
    throw std::invalid_argument(
        "WorkflowConfig: tile_size must be divisible by the model's 2^depth");
  }
  if (cloud_split_threshold < 0.0 || cloud_split_threshold > 1.0) {
    throw std::invalid_argument("WorkflowConfig: bad cloud_split_threshold");
  }
  corpus_execution.validate();
}

TrainingWorkflow::TrainingWorkflow(WorkflowConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

Evaluation TrainingWorkflow::evaluate(nn::UNet& model,
                                      const std::vector<LabeledTile>& tiles,
                                      ImageVariant variant,
                                      const par::ExecutionContext& ctx) {
  return evaluate_model(model, tiles, variant, ctx);
}


Pipeline TrainingWorkflow::build_pipeline() const {
  const auto& cfg = config_;
  Pipeline pipeline;

  // Corpus preparation: the paper's data-prep order of operations (filter
  // and segment the LARGE scenes, then tile).
  if (cfg.corpus_execution.mode == CorpusExecution::Mode::kStreaming) {
    // The whole sub-graph as one bounded-residency stage: scene planes
    // never enter the store, so there is nothing to drop afterwards.
    pipeline.emplace<StreamingCorpusStage>(cfg.corpus_config(),
                                           cfg.corpus_execution.window);
  } else {
    for (auto& stage : make_corpus_stages(cfg.corpus_config())) {
      pipeline.add(std::move(stage));
    }
    // The corpus tiles carry everything training needs; release the
    // scene-level planes so they don't sit in the store through training
    // and the twelve evaluations.
    std::vector<std::string> scene_keys{keys::kScenes, keys::kAutoLabels,
                                        keys::kManualLabels};
    if (cfg.autolabel.apply_filter) {
      scene_keys.push_back(keys::kFilteredImages);
    }
    pipeline.emplace<DropArtifactsStage>(std::move(scene_keys));
  }
  pipeline.emplace<TrainTestSplitStage>(cfg.train_fraction, cfg.split_seed);

  // Two trainings: both models see the filtered imagery (the filter is part
  // of the paper's pipeline); only the supervision differs.
  auto auto_model_cfg = cfg.model;
  auto_model_cfg.seed += 1;  // independent init, as two separate trainings
  pipeline.emplace<TrainStage>("man", cfg.model, cfg.training,
                               LabelSource::kManual, ImageVariant::kFiltered);
  pipeline.emplace<TrainStage>("auto", auto_model_cfg, cfg.training,
                               LabelSource::kAuto, ImageVariant::kFiltered);

  // Table IV evaluations (whole test split) and the Table V / Fig 13 cloud
  // buckets.
  pipeline.emplace<CloudBucketStage>(cfg.cloud_split_threshold);
  struct Sweep {
    const char* model;
    const std::string* tiles;
    ImageVariant variant;
    const char* out;
  };
  const Sweep sweeps[] = {
      {"man", &keys::kTestTiles, ImageVariant::kOriginal, "man_original"},
      {"man", &keys::kTestTiles, ImageVariant::kFiltered, "man_filtered"},
      {"auto", &keys::kTestTiles, ImageVariant::kOriginal, "auto_original"},
      {"auto", &keys::kTestTiles, ImageVariant::kFiltered, "auto_filtered"},
      {"man", &keys::kTestTilesCloudy, ImageVariant::kOriginal,
       "man_cloudy_original"},
      {"man", &keys::kTestTilesCloudy, ImageVariant::kFiltered,
       "man_cloudy_filtered"},
      {"auto", &keys::kTestTilesCloudy, ImageVariant::kOriginal,
       "auto_cloudy_original"},
      {"auto", &keys::kTestTilesCloudy, ImageVariant::kFiltered,
       "auto_cloudy_filtered"},
      {"man", &keys::kTestTilesClear, ImageVariant::kOriginal,
       "man_clear_original"},
      {"man", &keys::kTestTilesClear, ImageVariant::kFiltered,
       "man_clear_filtered"},
      {"auto", &keys::kTestTilesClear, ImageVariant::kOriginal,
       "auto_clear_original"},
      {"auto", &keys::kTestTilesClear, ImageVariant::kFiltered,
       "auto_clear_filtered"},
  };
  for (const auto& sweep : sweeps) {
    pipeline.emplace<EvaluateStage>(sweep.model, *sweep.tiles, sweep.variant,
                                    sweep.out);
  }
  return pipeline;
}

TrainingWorkflowResult TrainingWorkflow::run(const par::ExecutionContext& ctx) {
  LOG_INFO() << "workflow: preparing " << config_.acquisition.total_tiles()
             << " tiles from " << config_.acquisition.num_scenes << " scenes";
  const Pipeline pipeline = build_pipeline();
  ArtifactStore store;
  pipeline.run(ctx, store);

  TrainingWorkflowResult result;
  result.unet_man =
      store.get<std::shared_ptr<nn::UNet>>(keys::kModelPrefix + "man");
  result.unet_auto =
      store.get<std::shared_ptr<nn::UNet>>(keys::kModelPrefix + "auto");
  result.man_history =
      store.get<std::vector<nn::EpochStats>>(keys::kHistoryPrefix + "man");
  result.auto_history =
      store.get<std::vector<nn::EpochStats>>(keys::kHistoryPrefix + "auto");

  const auto eval = [&](const char* id) {
    return store.get<Evaluation>(keys::kEvalPrefix + id);
  };
  result.man_original = eval("man_original");
  result.man_filtered = eval("man_filtered");
  result.auto_original = eval("auto_original");
  result.auto_filtered = eval("auto_filtered");
  result.man_cloudy_original = eval("man_cloudy_original");
  result.man_cloudy_filtered = eval("man_cloudy_filtered");
  result.auto_cloudy_original = eval("auto_cloudy_original");
  result.auto_cloudy_filtered = eval("auto_cloudy_filtered");
  result.man_clear_original = eval("man_clear_original");
  result.man_clear_filtered = eval("man_clear_filtered");
  result.auto_clear_original = eval("auto_clear_original");
  result.auto_clear_filtered = eval("auto_clear_filtered");
  result.test_tiles_cloudy =
      store.get<std::vector<LabeledTile>>(keys::kTestTilesCloudy).size();
  result.test_tiles_clear =
      store.get<std::vector<LabeledTile>>(keys::kTestTilesClear).size();
  return result;
}


InferenceWorkflow::InferenceWorkflow(nn::UNet& model,
                                     CloudFilterConfig filter_config,
                                     int tile_size, int batch_tiles)
    : model_(model),
      filter_config_(filter_config),
      filter_(filter_config),  // validates the config at construction
      tile_size_(tile_size),
      batch_tiles_(batch_tiles) {
  require_tile_compatible(model, tile_size, "InferenceWorkflow");
  if (batch_tiles_ < 1) {
    throw std::invalid_argument("InferenceWorkflow: batch_tiles < 1");
  }
}

Pipeline InferenceWorkflow::build_pipeline() {
  Pipeline pipeline;
  pipeline.emplace<CloudFilterStage>(filter_config_, keys::kSceneImages,
                                     keys::kFilteredImages);
  pipeline.emplace<TileInferStage>(model_, tile_size_, batch_tiles_);
  pipeline.emplace<StitchStage>();
  return pipeline;
}

img::ImageU8 InferenceWorkflow::classify_scene(const img::ImageU8& scene_rgb,
                                               const par::ExecutionContext& ctx) {
  if (scene_rgb.channels() != 3) {
    throw std::invalid_argument("InferenceWorkflow: expected RGB scene");
  }
  if (scene_rgb.width() % tile_size_ != 0 ||
      scene_rgb.height() % tile_size_ != 0) {
    throw std::invalid_argument(
        "InferenceWorkflow: scene size must be a tile multiple");
  }
  // Fig 9, with the corpus lesson applied: filter the big scene once, then
  // split, infer per tile batch, and stitch — the same components
  // build_pipeline() composes, called directly so the serving path copies
  // nothing and assembles no per-call graph.
  const img::ImageU8 filtered = filter_.apply(scene_rgb, ctx);
  const auto tile_planes =
      infer_scene_tiles(model_, filtered, tile_size_, batch_tiles_, ctx);
  return s2::stitch_labels(tile_planes, filtered.width() / tile_size_,
                           filtered.height() / tile_size_);
}


}  // namespace polarice::core
