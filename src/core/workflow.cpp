#include "core/workflow.h"

#include <algorithm>
#include <stdexcept>

#include "img/ops.h"
#include "tensor/conv.h"
#include "util/log.h"
#include "util/rng.h"

namespace polarice::core {

void WorkflowConfig::validate() const {
  acquisition.validate();
  model.validate();
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("WorkflowConfig: train_fraction in (0,1)");
  }
  if (acquisition.tile_size % model.spatial_divisor() != 0) {
    throw std::invalid_argument(
        "WorkflowConfig: tile_size must be divisible by the model's 2^depth");
  }
  if (cloud_split_threshold < 0.0 || cloud_split_threshold > 1.0) {
    throw std::invalid_argument("WorkflowConfig: bad cloud_split_threshold");
  }
}

TrainingWorkflow::TrainingWorkflow(WorkflowConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

Evaluation TrainingWorkflow::evaluate(nn::UNet& model,
                                      const std::vector<LabeledTile>& tiles,
                                      ImageVariant variant,
                                      par::ThreadPool* pool) {
  Evaluation eval;
  if (tiles.empty()) return eval;
  const nn::SegDataset dataset =
      build_dataset(tiles, LabelSource::kGroundTruth, variant);

  model.set_pool(pool);
  nn::DataLoader loader(dataset, /*batch_size=*/8, /*seed=*/0,
                        /*shuffle=*/false);
  loader.start_epoch();
  tensor::Tensor logits, probs;
  nn::Batch batch;
  while (loader.next(batch)) {
    model.forward(batch.x, logits, /*training=*/false);
    tensor::softmax_channel(logits, probs);
    const auto pred = tensor::argmax_channel(probs);
    eval.confusion.add_all(batch.targets, pred);
  }
  eval.accuracy = eval.confusion.accuracy();
  eval.precision = eval.confusion.macro_precision();
  eval.recall = eval.confusion.macro_recall();
  eval.f1 = eval.confusion.macro_f1();
  return eval;
}

TrainingWorkflowResult TrainingWorkflow::run(par::ThreadPool* pool) {
  const auto& cfg = config_;

  // 1. Acquire and prepare the corpus (scene-level filter + labels), then
  // shuffle tiles and split 80/20.
  LOG_INFO() << "workflow: preparing " << cfg.acquisition.total_tiles()
             << " tiles from " << cfg.acquisition.num_scenes << " scenes";
  CorpusConfig corpus_cfg;
  corpus_cfg.acquisition = cfg.acquisition;
  corpus_cfg.autolabel = cfg.autolabel;
  corpus_cfg.manual = cfg.manual;
  std::vector<LabeledTile> tiles = prepare_corpus(corpus_cfg, pool);
  util::Rng split_rng(cfg.split_seed);
  std::shuffle(tiles.begin(), tiles.end(), split_rng);
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(tiles.size()) * cfg.train_fraction);
  const std::vector<LabeledTile> train_tiles(tiles.begin(),
                                             tiles.begin() + cut);
  const std::vector<LabeledTile> test_tiles(tiles.begin() + cut, tiles.end());
  if (train_tiles.empty() || test_tiles.empty()) {
    throw std::invalid_argument("TrainingWorkflow: split produced empty set");
  }

  // 2. Training sets: both models see the filtered imagery (the filter is
  // part of the paper's pipeline); only the supervision differs.
  const nn::SegDataset man_data =
      build_dataset(train_tiles, LabelSource::kManual, ImageVariant::kFiltered);
  const nn::SegDataset auto_data =
      build_dataset(train_tiles, LabelSource::kAuto, ImageVariant::kFiltered);

  // 3. Train the two models.
  TrainingWorkflowResult result;
  result.unet_man = std::make_shared<nn::UNet>(cfg.model);
  auto auto_model_cfg = cfg.model;
  auto_model_cfg.seed += 1;  // independent init, as two separate trainings
  result.unet_auto = std::make_shared<nn::UNet>(auto_model_cfg);

  result.unet_man->set_pool(pool);
  result.unet_auto->set_pool(pool);
  LOG_INFO() << "workflow: training U-Net-Man";
  result.man_history = nn::Trainer(*result.unet_man, cfg.training).fit(man_data);
  LOG_INFO() << "workflow: training U-Net-Auto";
  result.auto_history =
      nn::Trainer(*result.unet_auto, cfg.training).fit(auto_data);

  // 4. Table IV evaluations (whole test split).
  result.man_original = evaluate(*result.unet_man, test_tiles,
                                 ImageVariant::kOriginal, pool);
  result.man_filtered = evaluate(*result.unet_man, test_tiles,
                                 ImageVariant::kFiltered, pool);
  result.auto_original = evaluate(*result.unet_auto, test_tiles,
                                  ImageVariant::kOriginal, pool);
  result.auto_filtered = evaluate(*result.unet_auto, test_tiles,
                                  ImageVariant::kFiltered, pool);

  // 5. Table V / Fig 13: bucket the test split by cloud cover.
  std::vector<LabeledTile> cloudy, clear;
  for (const auto& tile : test_tiles) {
    (tile.cloud_fraction > cfg.cloud_split_threshold ? cloudy : clear)
        .push_back(tile);
  }
  result.test_tiles_cloudy = cloudy.size();
  result.test_tiles_clear = clear.size();
  result.man_cloudy_original =
      evaluate(*result.unet_man, cloudy, ImageVariant::kOriginal, pool);
  result.man_cloudy_filtered =
      evaluate(*result.unet_man, cloudy, ImageVariant::kFiltered, pool);
  result.auto_cloudy_original =
      evaluate(*result.unet_auto, cloudy, ImageVariant::kOriginal, pool);
  result.auto_cloudy_filtered =
      evaluate(*result.unet_auto, cloudy, ImageVariant::kFiltered, pool);
  result.man_clear_original =
      evaluate(*result.unet_man, clear, ImageVariant::kOriginal, pool);
  result.man_clear_filtered =
      evaluate(*result.unet_man, clear, ImageVariant::kFiltered, pool);
  result.auto_clear_original =
      evaluate(*result.unet_auto, clear, ImageVariant::kOriginal, pool);
  result.auto_clear_filtered =
      evaluate(*result.unet_auto, clear, ImageVariant::kFiltered, pool);
  return result;
}

InferenceWorkflow::InferenceWorkflow(nn::UNet& model,
                                     CloudFilterConfig filter_config,
                                     int tile_size)
    : model_(model), filter_(filter_config), tile_size_(tile_size) {
  if (tile_size <= 0 || tile_size % model.config().spatial_divisor() != 0) {
    throw std::invalid_argument(
        "InferenceWorkflow: tile_size incompatible with model depth");
  }
}

img::ImageU8 InferenceWorkflow::classify_scene(const img::ImageU8& scene_rgb,
                                               par::ThreadPool* pool) {
  if (scene_rgb.channels() != 3) {
    throw std::invalid_argument("InferenceWorkflow: expected RGB scene");
  }
  if (scene_rgb.width() % tile_size_ != 0 ||
      scene_rgb.height() % tile_size_ != 0) {
    throw std::invalid_argument(
        "InferenceWorkflow: scene size must be a tile multiple");
  }
  const int tiles_x = scene_rgb.width() / tile_size_;
  const int tiles_y = scene_rgb.height() / tile_size_;

  // Fig 9, with the corpus lesson applied: filter the big scene once, then
  // split and infer per tile.
  const img::ImageU8 filtered = filter_.apply(scene_rgb);

  model_.set_pool(pool);
  std::vector<img::ImageU8> predictions(
      static_cast<std::size_t>(tiles_x) * tiles_y);
  tensor::Tensor x({1, 3, tile_size_, tile_size_});
  tensor::Tensor logits, probs;
  for (int ty = 0; ty < tiles_y; ++ty) {
    for (int tx = 0; tx < tiles_x; ++tx) {
      const img::ImageU8 tile = img::crop(filtered, tx * tile_size_,
                                          ty * tile_size_, tile_size_,
                                          tile_size_);
      for (int y = 0; y < tile_size_; ++y) {
        for (int xx = 0; xx < tile_size_; ++xx) {
          for (int c = 0; c < 3; ++c) {
            x.at4(0, c, y, xx) = tile.at(xx, y, c) / 255.0f;
          }
        }
      }
      model_.forward(x, logits, /*training=*/false);
      tensor::softmax_channel(logits, probs);
      const auto pred = tensor::argmax_channel(probs);
      img::ImageU8 plane(tile_size_, tile_size_, 1);
      for (int y = 0; y < tile_size_; ++y) {
        for (int xx = 0; xx < tile_size_; ++xx) {
          plane.at(xx, y) = static_cast<std::uint8_t>(
              pred[static_cast<std::size_t>(y) * tile_size_ + xx]);
        }
      }
      predictions[static_cast<std::size_t>(ty) * tiles_x + tx] =
          std::move(plane);
    }
  }
  return s2::stitch_labels(predictions, tiles_x, tiles_y);
}

}  // namespace polarice::core
