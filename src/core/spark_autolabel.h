#pragma once
// Map-reduce scaling of the auto-labeling pipeline (paper §III.B "PySpark
// Map-Reduce", Table II): load the tiles into an RDD, apply the
// auto-labeling UDF as a lazy map transformation, and collect. The returned
// JobTimes carries both measured wall times and the calibrated Dataproc
// simulation for the configured executors x cores.

#include <vector>

#include "core/autolabel.h"
#include "mr/rdd.h"
#include "mr/spark_context.h"

namespace polarice::core {

struct SparkAutoLabelOutput {
  std::vector<img::ImageU8> labels;  // per-tile class-id planes, input order
  mr::JobTimes times;
};

class SparkAutoLabeler {
 public:
  SparkAutoLabeler(mr::ClusterConfig cluster, AutoLabelConfig config = {});

  /// Runs the full load -> map(UDF) -> collect job.
  SparkAutoLabelOutput run(std::vector<img::ImageU8> tiles);

 private:
  mr::ClusterConfig cluster_;
  AutoLabelConfig config_;
};

}  // namespace polarice::core
