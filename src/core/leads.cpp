#include "core/leads.h"

#include <stdexcept>

#include "img/morphology.h"
#include "img/ops.h"

namespace polarice::core {

LeadDetector::LeadDetector(LeadDetectorConfig config) : config_(config) {
  if (config_.max_lead_width < 1 || config_.max_lead_width % 2 == 0) {
    throw std::invalid_argument("LeadDetector: max_lead_width must be odd >= 1");
  }
  if (config_.min_elongation < 1.0) {
    throw std::invalid_argument("LeadDetector: min_elongation must be >= 1");
  }
}

LeadAnalysis LeadDetector::detect(const img::ImageU8& labels) const {
  if (labels.channels() != 1) {
    throw std::invalid_argument("LeadDetector: expected class-id plane");
  }
  const int w = labels.width(), h = labels.height();

  // 1. Water mask.
  img::ImageU8 water(w, h, 1);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      water.at(x, y) =
          labels.at(x, y) == config_.open_water_class ? 255 : 0;
    }
  }

  // 2. Wide water bodies survive an opening with the max-lead-width kernel;
  // the top-hat residual (water minus opened water) keeps only structures
  // narrower than the kernel — leads and shoreline slivers.
  const img::ImageU8 wide = img::morph_open(water, config_.max_lead_width);
  const img::ImageU8 narrow = img::subtract_saturate(water, wide);

  // 3. Components + geometry filters.
  std::vector<std::int32_t> component_ids;
  const auto components =
      img::label_components(narrow, component_ids, /*connectivity=*/8);

  LeadAnalysis analysis;
  analysis.lead_mask = img::ImageU8(w, h, 1, 0);
  std::vector<bool> keep(components.size() + 1, false);
  for (const auto& cs : components) {
    if (cs.area < config_.min_area) continue;
    if (cs.elongation() < config_.min_elongation) continue;
    Lead lead;
    lead.component = cs;
    lead.length = std::max(cs.bbox_width(), cs.bbox_height());
    lead.mean_width = static_cast<double>(cs.area) / lead.length;
    keep[static_cast<std::size_t>(cs.label)] = true;
    analysis.leads.push_back(lead);
  }
  std::size_t lead_pixels = 0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const auto id = component_ids[static_cast<std::size_t>(y) * w + x];
      if (id > 0 && keep[static_cast<std::size_t>(id)]) {
        analysis.lead_mask.at(x, y) = 255;
        ++lead_pixels;
      }
    }
  }
  analysis.lead_area_fraction =
      static_cast<double>(lead_pixels) / (static_cast<double>(w) * h);
  return analysis;
}

}  // namespace polarice::core
