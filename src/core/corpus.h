#pragma once
// Corpus preparation — the paper's data-prep order of operations
// (§IV.B.2): the thin-cloud/shadow filter and the color-segmentation
// auto-labeler run on the 66 LARGE SCENES, and only then is everything
// split into 256x256 tiles. Scene-level filtering matters: the brightness
// envelopes need enough spatial context to see both dark (water) and
// bright (thick ice) anchors, which small tiles cannot guarantee.

#include <cstddef>
#include <memory>
#include <vector>

#include "core/autolabel.h"
#include "par/context.h"
#include "par/thread_pool.h"
#include "s2/acquisition.h"
#include "s2/manual_label.h"

namespace polarice::core {

class SceneStage;  // core/stages.h

/// One tile with every label/imagery variant the workflows need.
struct LabeledTile {
  img::ImageU8 rgb;            // observed (atmosphere included)
  img::ImageU8 rgb_filtered;   // scene-level CloudShadowFilter output
  img::ImageU8 rgb_clean;      // generator's atmosphere-free reference
  img::ImageU8 truth;          // ground-truth class ids
  img::ImageU8 auto_labels;    // scene-level color segmentation of filtered
  img::ImageU8 manual_labels;  // simulated human annotation
  double cloud_fraction = 0.0;
  int scene_index = 0;
  int tile_x = 0, tile_y = 0;
};

/// How the corpus sub-graph executes.
///
/// kBatch runs each stage over the whole fleet before the next starts (the
/// Pipeline shape) — every scene's planes are resident between stages, so
/// peak memory is O(scenes). kStreaming drives scenes through the stages as
/// a software pipeline with at most `window` scenes holding planes at any
/// instant (core/streaming.h) — peak plane memory is O(window) and stages
/// of different scenes overlap. Output is bit-identical either way.
struct CorpusExecution {
  enum class Mode { kBatch, kStreaming };
  Mode mode = Mode::kBatch;
  std::size_t window = 4;  // kStreaming: max scenes with planes resident

  static CorpusExecution batch() { return {}; }
  static CorpusExecution streaming(std::size_t window) {
    CorpusExecution execution;
    execution.mode = Mode::kStreaming;
    execution.window = window;
    return execution;
  }

  void validate() const;  // window >= 1 when streaming
};

struct CorpusConfig {
  s2::AcquisitionConfig acquisition;
  AutoLabelConfig autolabel;       // filter config rides inside
  s2::ManualLabelConfig manual;
  CorpusExecution execution;       // batch (default) or streaming{window}
};

/// The canned corpus sub-graph (Acquire -> [CloudFilter] -> AutoLabel ->
/// ManualLabel -> TileSplit) as per-scene stages, wired exactly as the
/// batch pipeline assembles them (the filter runs at most once per scene;
/// without it the labeler and tiler read the raw scene RGB). Shared by the
/// batch Pipeline path and the StreamingExecutor so both execute the same
/// graph.
std::vector<std::unique_ptr<SceneStage>> make_corpus_stages(
    const CorpusConfig& config);

/// Generates all scenes, applies scene-level filtering / auto-labeling /
/// manual annotation, and splits into tiles — the canned Acquire ->
/// CloudFilter -> AutoLabel -> ManualLabel -> TileSplit mini-pipeline,
/// executed under config.execution (whole-fleet batch stages, or the
/// bounded-residency streaming pipeline). Cancellation and progress are
/// honoured per stage; output is deterministic for a fixed config and
/// bit-identical across execution modes, pools, and window sizes.
std::vector<LabeledTile> prepare_corpus(const CorpusConfig& config,
                                        const par::ExecutionContext& ctx = {});

}  // namespace polarice::core
