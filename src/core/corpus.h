#pragma once
// Corpus preparation — the paper's data-prep order of operations
// (§IV.B.2): the thin-cloud/shadow filter and the color-segmentation
// auto-labeler run on the 66 LARGE SCENES, and only then is everything
// split into 256x256 tiles. Scene-level filtering matters: the brightness
// envelopes need enough spatial context to see both dark (water) and
// bright (thick ice) anchors, which small tiles cannot guarantee.

#include <vector>

#include "core/autolabel.h"
#include "par/context.h"
#include "par/thread_pool.h"
#include "s2/acquisition.h"
#include "s2/manual_label.h"

namespace polarice::core {

/// One tile with every label/imagery variant the workflows need.
struct LabeledTile {
  img::ImageU8 rgb;            // observed (atmosphere included)
  img::ImageU8 rgb_filtered;   // scene-level CloudShadowFilter output
  img::ImageU8 rgb_clean;      // generator's atmosphere-free reference
  img::ImageU8 truth;          // ground-truth class ids
  img::ImageU8 auto_labels;    // scene-level color segmentation of filtered
  img::ImageU8 manual_labels;  // simulated human annotation
  double cloud_fraction = 0.0;
  int scene_index = 0;
  int tile_x = 0, tile_y = 0;
};

struct CorpusConfig {
  s2::AcquisitionConfig acquisition;
  AutoLabelConfig autolabel;       // filter config rides inside
  s2::ManualLabelConfig manual;
};

/// Generates all scenes, applies scene-level filtering / auto-labeling /
/// manual annotation, and splits into tiles — the canned Acquire ->
/// CloudFilter -> AutoLabel -> ManualLabel -> TileSplit mini-pipeline.
/// Scenes are processed in parallel on the context's pool; cancellation and
/// progress are honoured per stage. Deterministic for a fixed config.
std::vector<LabeledTile> prepare_corpus(const CorpusConfig& config,
                                        const par::ExecutionContext& ctx = {});

}  // namespace polarice::core
