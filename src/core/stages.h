#pragma once
// The typed stages behind both paper workflows.
//
// Fig 2 (training):  AcquireStage -> CloudFilterStage -> AutoLabelStage ->
//                    ManualLabelStage -> TileSplitStage ->
//                    TrainTestSplitStage -> TrainStage x2 ->
//                    CloudBucketStage -> EvaluateStage x N
// Fig 9 (inference): CloudFilterStage -> TileInferStage -> StitchStage
//
// Every stage reads/writes the keys in core::keys. Per-scene collections
// are parallelized over the context's pool; outputs are deterministic and
// bit-identical to the pre-pipeline monolithic implementations.
//
// AutoLabelStage carries an execution policy — the paper's three labeling
// deployments (sequential, multiprocessing pool, PySpark map-reduce) are
// the SAME stage with different policies, not three separate APIs.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/autolabel.h"
#include "core/corpus.h"
#include "core/dataset_builder.h"
#include "core/pipeline.h"
#include "metrics/metrics.h"
#include "mr/spark_context.h"
#include "nn/trainer.h"
#include "nn/unet.h"
#include "s2/acquisition.h"

namespace polarice::core {

namespace keys {
// Training-side artifacts.
inline const std::string kScenes = "s2.scenes";          // std::vector<s2::Scene>
// Image-list keys may hold std::vector<img::ImageU8>; stages that read RGB
// lists (CloudFilterStage, AutoLabelStage, TileSplitStage) also accept
// kScenes itself and read each Scene's rgb plane in place, so the corpus
// graph never duplicates scene imagery.
inline const std::string kSceneImages = "scenes.rgb";    // std::vector<img::ImageU8>
inline const std::string kFilteredImages = "scenes.filtered";
inline const std::string kAutoLabels = "labels.auto";    // std::vector<img::ImageU8>
inline const std::string kManualLabels = "labels.manual";
inline const std::string kCorpusTiles = "corpus.tiles";  // std::vector<LabeledTile>
inline const std::string kTrainTiles = "corpus.train";
inline const std::string kTestTiles = "corpus.test";
inline const std::string kTestTilesCloudy = "corpus.test_cloudy";
inline const std::string kTestTilesClear = "corpus.test_clear";
inline const std::string kModelPrefix = "model.";        // std::shared_ptr<nn::UNet>
inline const std::string kHistoryPrefix = "history.";    // std::vector<nn::EpochStats>
inline const std::string kEvalPrefix = "eval.";          // Evaluation
// Inference-side artifacts.
inline const std::string kTilePredictions = "inference.tile_preds";  // std::vector<std::vector<img::ImageU8>>
inline const std::string kTileGrids = "inference.grids";  // std::vector<TileGrid>
inline const std::string kSceneLabels = "inference.labels";  // std::vector<img::ImageU8>
}  // namespace keys

/// Metrics of one model on one image variant, against ground truth.
struct Evaluation {
  double accuracy = 0.0;
  double precision = 0.0;  // macro
  double recall = 0.0;     // macro
  double f1 = 0.0;         // macro
  metrics::ConfusionMatrix confusion{s2::kNumClasses};
};

/// Tile-grid geometry of one scene under inference.
struct TileGrid {
  int tiles_x = 0;
  int tiles_y = 0;
};

// ---------------------------------------------------------------------------
// Per-scene execution surface (batch Pipeline AND the streaming executor).
// ---------------------------------------------------------------------------

/// Per-scene artifact scope for the corpus sub-graph: every plane one scene
/// accumulates on its way from Acquire to TileSplit lives here instead of
/// under a global ArtifactStore key. The batch Pipeline materializes slots
/// transiently while looping a stage over the fleet; the StreamingExecutor
/// keeps at most `window` slots alive at once, and release_planes() frees a
/// finished scene's imagery the moment its tiles are cut — the streaming
/// path's replacement for DropArtifactsStage.
struct SceneSlot {
  std::size_t index = 0;          // scene position in the fleet

  s2::Scene scene;                // owned after AcquireStage
  img::ImageU8 filtered;          // CloudFilterStage output (empty = no filter)
  img::ImageU8 auto_labels;       // AutoLabelStage output
  img::ImageU8 manual_labels;     // ManualLabelStage output
  std::vector<LabeledTile> tiles; // TileSplitStage output (survives release)

  /// The image the labeler/tiler should segment: the filtered plane when
  /// the filter ran, else the raw scene RGB — the per-scene analogue of the
  /// batch graph's `segmented_key` wiring.
  [[nodiscard]] const img::ImageU8& segmented() const noexcept {
    return filtered.empty() ? scene.rgb : filtered;
  }

  /// Frees every scene-level plane; only the tiles remain.
  void release_planes() {
    scene = s2::Scene{};
    filtered = img::ImageU8{};
    auto_labels = img::ImageU8{};
    manual_labels = img::ImageU8{};
  }
};

/// A Stage whose corpus work decomposes scene-by-scene. run_scene()
/// processes exactly one scene inside its SceneSlot — the unit the
/// StreamingExecutor pipelines under a bounded residency window — and the
/// store-based run() is a loop over the same per-scene kernel, so batch and
/// streaming execution share one implementation and stay bit-identical by
/// construction (the per-scene kernels are pool-invariant, so it does not
/// matter which path supplies the intra-scene parallelism).
class SceneStage : public Stage {
 public:
  virtual void run_scene(const par::ExecutionContext& ctx,
                         SceneSlot& slot) const = 0;
};

// ---------------------------------------------------------------------------
// Acquisition & labeling stages (Fig 2 front half / corpus preparation).
// ---------------------------------------------------------------------------

/// Generates the scene fleet (the GEE-download stand-in). Scene i uses seed
/// `config.seed + i`; the first cloudy_scene_fraction of scenes carry
/// atmosphere. Downstream image stages read the RGB planes from kScenes in
/// place — no duplicated imagery artifact.
class AcquireStage : public SceneStage {
 public:
  explicit AcquireStage(s2::AcquisitionConfig config);

  [[nodiscard]] std::string name() const override { return "acquire"; }
  [[nodiscard]] std::vector<std::string> produces() const override {
    return {keys::kScenes};
  }
  void run(const par::ExecutionContext& ctx, ArtifactStore& store) override;
  void run_scene(const par::ExecutionContext& ctx,
                 SceneSlot& slot) const override;

  [[nodiscard]] const s2::AcquisitionConfig& config() const noexcept {
    return config_;
  }

 private:
  s2::AcquisitionConfig config_;
};

/// Applies the thin-cloud/shadow filter to a list of RGB images. Items are
/// processed in parallel on the context pool; a single item is instead
/// filtered with intra-image row parallelism (the inference-serving shape).
class CloudFilterStage : public SceneStage {
 public:
  explicit CloudFilterStage(CloudFilterConfig config = {},
                            std::string input_key = keys::kSceneImages,
                            std::string output_key = keys::kFilteredImages);

  [[nodiscard]] std::string name() const override { return "cloud_filter"; }
  [[nodiscard]] std::vector<std::string> consumes() const override {
    return {input_key_};
  }
  [[nodiscard]] std::vector<std::string> produces() const override {
    return {output_key_};
  }
  void run(const par::ExecutionContext& ctx, ArtifactStore& store) override;
  void run_scene(const par::ExecutionContext& ctx,
                 SceneSlot& slot) const override;

 private:
  CloudFilterConfig config_;
  std::string input_key_, output_key_;
};

/// How an AutoLabelStage batch is executed. The paper's three §III.B
/// deployments map onto the three kinds.
struct AutoLabelPolicy {
  enum class Kind {
    kContext,  // parallelize items over the context's pool (or sequential)
    kPool,     // dedicated ThreadPool of `workers` threads (Table I)
    kSpark,    // mr::SparkContext load -> map(UDF) -> collect (Table II)
  };
  Kind kind = Kind::kContext;
  std::size_t workers = 1;       // kPool: 1 = sequential
  mr::ClusterConfig cluster;     // kSpark

  static AutoLabelPolicy context() { return {}; }
  static AutoLabelPolicy pool(std::size_t workers) {
    AutoLabelPolicy p;
    p.kind = Kind::kPool;
    p.workers = workers;
    return p;
  }
  static AutoLabelPolicy spark(mr::ClusterConfig cluster) {
    AutoLabelPolicy p;
    p.kind = Kind::kSpark;
    p.cluster = cluster;
    return p;
  }
};

/// Timing/accounting of one label_batch call.
struct AutoLabelBatchStats {
  double seconds = 0.0;
  std::size_t items = 0;
  std::optional<mr::JobTimes> spark;  // set by the kSpark policy
};

/// Color-segmentation auto-labeling of an image list — one labeling
/// implementation (core::AutoLabeler) behind three execution policies.
/// Results are in input order regardless of policy. run_scene() labels the
/// slot's segmented plane directly (the streaming path is scene-at-a-time,
/// so the batch-shaped pool/spark policies do not apply to it).
class AutoLabelStage : public SceneStage {
 public:
  explicit AutoLabelStage(AutoLabelConfig config = {},
                          AutoLabelPolicy policy = {},
                          std::string input_key = keys::kFilteredImages,
                          std::string output_key = keys::kAutoLabels);

  [[nodiscard]] std::string name() const override { return "auto_label"; }
  [[nodiscard]] std::vector<std::string> consumes() const override {
    return {input_key_};
  }
  [[nodiscard]] std::vector<std::string> produces() const override {
    return {output_key_};
  }
  void run(const par::ExecutionContext& ctx, ArtifactStore& store) override;
  void run_scene(const par::ExecutionContext& ctx,
                 SceneSlot& slot) const override;

  /// The underlying batch entry point (what the Table I / Table II benches
  /// and the Fig 10 sweep call directly).
  [[nodiscard]] std::vector<AutoLabelResult> label_batch(
      const std::vector<img::ImageU8>& images, const par::ExecutionContext& ctx,
      AutoLabelBatchStats* stats = nullptr) const;

  /// Zero-copy variant over borrowed images (what run() uses internally so
  /// scene RGB planes are labeled in place).
  [[nodiscard]] std::vector<AutoLabelResult> label_batch(
      const std::vector<const img::ImageU8*>& images,
      const par::ExecutionContext& ctx,
      AutoLabelBatchStats* stats = nullptr) const;

  [[nodiscard]] const AutoLabelConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const AutoLabelPolicy& policy() const noexcept {
    return policy_;
  }

 private:
  AutoLabelConfig config_;
  AutoLabelPolicy policy_;
  std::string input_key_, output_key_;
};

/// Simulated human annotation of the ground-truth planes (scene i uses
/// annotator seed `config.seed + i`, as prepare_corpus always did).
class ManualLabelStage : public SceneStage {
 public:
  explicit ManualLabelStage(s2::ManualLabelConfig config = {});

  [[nodiscard]] std::string name() const override { return "manual_label"; }
  [[nodiscard]] std::vector<std::string> consumes() const override {
    return {keys::kScenes};
  }
  [[nodiscard]] std::vector<std::string> produces() const override {
    return {keys::kManualLabels};
  }
  void run(const par::ExecutionContext& ctx, ArtifactStore& store) override;
  void run_scene(const par::ExecutionContext& ctx,
                 SceneSlot& slot) const override;

 private:
  s2::ManualLabelConfig config_;
};

/// Splits the scene-level planes into LabeledTiles (the paper's 2048 -> 8x8
/// grid). `filtered_key` may point at the raw RGB list when the workflow
/// runs without the filter.
class TileSplitStage : public SceneStage {
 public:
  TileSplitStage(int tile_size,
                 std::string filtered_key = keys::kFilteredImages);

  [[nodiscard]] std::string name() const override { return "tile_split"; }
  [[nodiscard]] std::vector<std::string> consumes() const override {
    return {keys::kScenes, filtered_key_, keys::kAutoLabels,
            keys::kManualLabels};
  }
  [[nodiscard]] std::vector<std::string> produces() const override {
    return {keys::kCorpusTiles};
  }
  void run(const par::ExecutionContext& ctx, ArtifactStore& store) override;
  void run_scene(const par::ExecutionContext& ctx,
                 SceneSlot& slot) const override;

 private:
  /// The shared per-scene kernel: cuts one scene (and its label/imagery
  /// planes) into LabeledTiles in row-major tile order.
  [[nodiscard]] std::vector<LabeledTile> split_one(
      const s2::Scene& scene, const img::ImageU8& segmented,
      const img::ImageU8& auto_labels, const img::ImageU8& manual_labels,
      int scene_index) const;

  int tile_size_;
  std::string filtered_key_;
};

/// Releases large intermediates whose last consumer has run — e.g. the
/// scene-level planes once TileSplitStage produced the corpus, so they do
/// not sit in the store through training and evaluation. Declaring the
/// keys as consumed makes validate() prove they exist by this point;
/// validation does not model the erasure, so place this stage after the
/// true last consumer.
class DropArtifactsStage : public Stage {
 public:
  explicit DropArtifactsStage(std::vector<std::string> keys);

  [[nodiscard]] std::string name() const override { return "drop_artifacts"; }
  [[nodiscard]] std::vector<std::string> consumes() const override {
    return keys_;
  }
  [[nodiscard]] std::vector<std::string> produces() const override {
    return {};
  }
  void run(const par::ExecutionContext& ctx, ArtifactStore& store) override;

 private:
  std::vector<std::string> keys_;
};

// ---------------------------------------------------------------------------
// Training & evaluation stages (Fig 2 back half).
// ---------------------------------------------------------------------------

/// Shuffles the corpus with `seed` and splits train/test at `fraction`.
class TrainTestSplitStage : public Stage {
 public:
  TrainTestSplitStage(double train_fraction, std::uint64_t seed);

  [[nodiscard]] std::string name() const override { return "train_test_split"; }
  [[nodiscard]] std::vector<std::string> consumes() const override {
    return {keys::kCorpusTiles};
  }
  [[nodiscard]] std::vector<std::string> produces() const override {
    return {keys::kTrainTiles, keys::kTestTiles};
  }
  void run(const par::ExecutionContext& ctx, ArtifactStore& store) override;

 private:
  double train_fraction_;
  std::uint64_t seed_;
};

/// Buckets the test tiles by cloud cover (Table V's > / <= threshold).
class CloudBucketStage : public Stage {
 public:
  explicit CloudBucketStage(double threshold);

  [[nodiscard]] std::string name() const override { return "cloud_bucket"; }
  [[nodiscard]] std::vector<std::string> consumes() const override {
    return {keys::kTestTiles};
  }
  [[nodiscard]] std::vector<std::string> produces() const override {
    return {keys::kTestTilesCloudy, keys::kTestTilesClear};
  }
  void run(const par::ExecutionContext& ctx, ArtifactStore& store) override;

 private:
  double threshold_;
};

/// Trains one U-Net on the train tiles under the chosen supervision and
/// imagery variant. Produces `model.<id>` (std::shared_ptr<nn::UNet>) and
/// `history.<id>` (std::vector<nn::EpochStats>).
class TrainStage : public Stage {
 public:
  TrainStage(std::string model_id, nn::UNetConfig model_config,
             nn::TrainConfig train_config, LabelSource labels,
             ImageVariant images,
             std::string tiles_key = keys::kTrainTiles);

  [[nodiscard]] std::string name() const override {
    return "train:" + model_id_;
  }
  [[nodiscard]] std::vector<std::string> consumes() const override {
    return {tiles_key_};
  }
  [[nodiscard]] std::vector<std::string> produces() const override {
    return {keys::kModelPrefix + model_id_, keys::kHistoryPrefix + model_id_};
  }
  void run(const par::ExecutionContext& ctx, ArtifactStore& store) override;

 private:
  std::string model_id_;
  nn::UNetConfig model_config_;
  nn::TrainConfig train_config_;
  LabelSource labels_;
  ImageVariant images_;
  std::string tiles_key_;
};

/// Evaluates `model.<id>` on a tile set against ground truth. Produces
/// `eval.<out_id>` (Evaluation).
class EvaluateStage : public Stage {
 public:
  EvaluateStage(std::string model_id, std::string tiles_key,
                ImageVariant images, std::string out_id);

  [[nodiscard]] std::string name() const override { return "eval:" + out_id_; }
  [[nodiscard]] std::vector<std::string> consumes() const override {
    return {keys::kModelPrefix + model_id_, tiles_key_};
  }
  [[nodiscard]] std::vector<std::string> produces() const override {
    return {keys::kEvalPrefix + out_id_};
  }
  void run(const par::ExecutionContext& ctx, ArtifactStore& store) override;

 private:
  std::string model_id_;
  std::string tiles_key_;
  ImageVariant images_;
  std::string out_id_;
};

/// Shared evaluation routine (stage + TrainingWorkflow::evaluate shim).
Evaluation evaluate_model(nn::UNet& model,
                          const std::vector<LabeledTile>& tiles,
                          ImageVariant variant,
                          const par::ExecutionContext& ctx);

// ---------------------------------------------------------------------------
// Inference stages (Fig 9).
// ---------------------------------------------------------------------------

/// Tiles each filtered scene and runs batched U-Net inference. The model is
/// borrowed (must outlive the stage) and is NOT thread-safe — use one stage
/// per model replica; InferenceSession manages that for serving.
class TileInferStage : public Stage {
 public:
  TileInferStage(nn::UNet& model, int tile_size, int batch_tiles = 8,
                 std::string input_key = keys::kFilteredImages);

  [[nodiscard]] std::string name() const override { return "tile_infer"; }
  [[nodiscard]] std::vector<std::string> consumes() const override {
    return {input_key_};
  }
  [[nodiscard]] std::vector<std::string> produces() const override {
    return {keys::kTilePredictions, keys::kTileGrids};
  }
  void run(const par::ExecutionContext& ctx, ArtifactStore& store) override;

 private:
  nn::UNet* model_;
  int tile_size_;
  int batch_tiles_;
  std::string input_key_;
};

/// Reassembles per-tile label planes into scene-sized label maps.
class StitchStage : public Stage {
 public:
  StitchStage() = default;

  [[nodiscard]] std::string name() const override { return "stitch"; }
  [[nodiscard]] std::vector<std::string> consumes() const override {
    return {keys::kTilePredictions, keys::kTileGrids};
  }
  [[nodiscard]] std::vector<std::string> produces() const override {
    return {keys::kSceneLabels};
  }
  void run(const par::ExecutionContext& ctx, ArtifactStore& store) override;
};

/// Tiles `filtered` (dimensions must be tile multiples), runs batched
/// forward passes of up to `batch_tiles` tiles, and returns the per-tile
/// class-id planes in row-major tile order. Bit-identical for every
/// batch_tiles value (the conv path processes batch samples serially).
/// Checks the context's cancellation token between batches.
std::vector<img::ImageU8> infer_scene_tiles(nn::UNet& model,
                                            const img::ImageU8& filtered,
                                            int tile_size, int batch_tiles,
                                            const par::ExecutionContext& ctx);

/// Throws std::invalid_argument unless tile_size is positive and divisible
/// by the model's 2^depth — the shared precondition of every tile-serving
/// entry point (`who` prefixes the message: workflow, session, server,
/// TileInferStage all enforce the same rule through this one check).
void require_tile_compatible(const nn::UNet& model, int tile_size,
                             const char* who);

/// Copies the tile whose top-left corner is (x0, y0) out of `filtered` into
/// sample `sample` of the NCHW batch tensor `x`, applying the model input
/// normalization (/255). Shared by infer_scene_tiles and the SceneServer's
/// cross-scene batch fill so both paths stage pixels identically.
void stage_tile(const img::ImageU8& filtered, int x0, int y0, int tile_size,
                tensor::Tensor& x, int sample);

/// Converts sample `sample` of the per-pixel argmax indices `pred` (layout:
/// sample-major planes of tile_size * tile_size) into a single-channel
/// class-id plane — the inverse of stage_tile on the label side.
img::ImageU8 pred_plane(const int* pred, int sample, int tile_size);

}  // namespace polarice::core
