#include "core/cloud_filter.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "img/color.h"
#include "img/filter.h"
#include "img/morphology.h"
#include "img/ops.h"
#include "img/threshold.h"
#include "par/parallel_for.h"

namespace polarice::core {

void CloudFilterConfig::validate() const {
  const auto odd = [](int k) { return k >= 1 && k % 2 == 1; };
  if (!odd(envelope_kernel) || !odd(smooth_kernel) ||
      !odd(estimate_smooth_kernel)) {
    throw std::invalid_argument("CloudFilterConfig: kernels must be odd >= 1");
  }
  if (v_dark_ref < 0 || v_bright_ref <= v_dark_ref || v_bright_ref > 255) {
    throw std::invalid_argument("CloudFilterConfig: bad reference anchors");
  }
  if (max_alpha <= 0 || max_alpha >= 1 || max_beta <= 0 || max_beta >= 1) {
    throw std::invalid_argument("CloudFilterConfig: clamps must be in (0,1)");
  }
}

CloudShadowFilter::CloudShadowFilter(CloudFilterConfig config)
    : config_(config) {
  config_.validate();
}

CloudFilterResult CloudShadowFilter::filter_impl(const img::ImageU8& rgb,
                                                 par::ThreadPool* pool,
                                                 bool want_mask) const {
  if (rgb.channels() != 3) {
    throw std::invalid_argument("CloudShadowFilter: expected RGB input");
  }
  const auto& cfg = config_;
  const int w = rgb.width(), h = rgb.height();
  // Large kernels degrade gracefully on tiny inputs: clamp to image size.
  const auto clamp_odd = [](int k, int limit) {
    k = std::min(k, limit % 2 == 1 ? limit : limit - 1);
    return std::max(1, k % 2 == 1 ? k : k - 1);
  };
  const int env_k = clamp_odd(cfg.envelope_kernel, std::min(w, h));
  const int smooth_k = clamp_odd(cfg.smooth_kernel, std::min(w, h));
  const int est_k = clamp_odd(cfg.estimate_smooth_kernel, std::min(w, h));

  // 1. HSV decomposition; all physics happens on V.
  const img::ImageU8 hsv = img::rgb_to_hsv(rgb, pool);
  const img::ImageU8 v_obs = img::extract_channel(hsv, 2);

  // 2. Brightness envelopes. Opening (erode+dilate) hugs the signal from
  // below while tracking slow atmospheric variation — a bare erosion would
  // latch onto the least-hazed dark pixel in the window and underestimate
  // haze wherever opacity varies across the window. Closing is the dual
  // bright envelope. Both come out of one fused van Herk/Gil-Werman pass
  // set (four image sweeps for the pair instead of eight). Light Gaussian
  // smoothing removes the plateau edges.
  const img::MorphEnvelopes envelopes = img::morph_envelopes(v_obs, env_k);
  const img::ImageU8 dark_env = img::gaussian_blur(envelopes.open, smooth_k);
  const img::ImageU8 bright_env =
      img::gaussian_blur(envelopes.close, smooth_k);

  // 3. Pointwise atmosphere estimation — one fused row-parallel pass.
  CloudFilterResult result;
  result.alpha = img::ImageF32(w, h, 1);
  result.beta = img::ImageF32(w, h, 1);
  const double band = cfg.v_bright_ref - cfg.v_dark_ref;
  par::parallel_for(pool, 0, static_cast<std::size_t>(h), [&](std::size_t y) {
    for (int x = 0; x < w; ++x) {
      const int yi = static_cast<int>(y);
      const double m = dark_env.at(x, yi);
      const double M = bright_env.at(x, yi);
      // (1-a)(1-b): contrast of the local envelope vs the seasonal band.
      const double g = std::clamp((M - m) / band, 0.05, 1.0);
      // a(1-b): dark-envelope lift above the attenuated water anchor.
      const double aterm =
          std::clamp((m - cfg.v_dark_ref * g) / 255.0, 0.0, 0.95);
      const double one_minus_beta = std::clamp(g + aterm, 0.05, 1.0);
      double beta = 1.0 - one_minus_beta;
      double alpha = aterm / one_minus_beta;
      alpha = std::clamp(alpha, 0.0, cfg.max_alpha);
      beta = std::clamp(beta, 0.0, cfg.max_beta);
      if (alpha < cfg.activation) alpha = 0.0;
      if (beta < cfg.activation) beta = 0.0;
      result.alpha.at(x, yi) = static_cast<float>(alpha);
      result.beta.at(x, yi) = static_cast<float>(beta);
    }
  });
  // Smooth the estimates: atmosphere varies slowly, estimation noise does
  // not — the blur keeps the former and suppresses the latter.
  result.alpha = img::gaussian_blur(result.alpha, est_k);
  result.beta = img::gaussian_blur(result.beta, est_k);

  // 4. Invert the distortion on V and rebuild RGB with the observed H and S,
  // fused into a single row-parallel pass: per pixel, compute the clean V,
  // convert (H, S, V_clean) straight to output RGB, and record the
  // correction magnitude |V_obs - V_clean| for the diagnostic mask. The
  // reference formulation materialized a V_clean plane, a cloned HSV image,
  // an insert_channel pass, a whole-image hsv_to_rgb, and an absdiff — five
  // full-resolution intermediates this pass does not allocate.
  result.filtered = img::ImageU8(w, h, 3);
  img::ImageU8 delta;
  if (want_mask) delta = img::ImageU8(w, h, 1);
  const std::uint8_t* hsv_data = hsv.data();
  std::uint8_t* out_data = result.filtered.data();
  par::parallel_for(pool, 0, static_cast<std::size_t>(h), [&](std::size_t y) {
    const std::uint8_t* hrow = hsv_data + y * 3 * static_cast<std::size_t>(w);
    std::uint8_t* orow = out_data + y * 3 * static_cast<std::size_t>(w);
    for (int x = 0; x < w; ++x) {
      const int yi = static_cast<int>(y);
      const double alpha = result.alpha.at(x, yi);
      const double beta = result.beta.at(x, yi);
      const std::uint8_t v = hrow[3 * x + 2];
      const double unshaded = v / std::max(1e-6, 1.0 - beta);
      const double dehazed =
          (unshaded - 255.0 * alpha) / std::max(1e-6, 1.0 - alpha);
      const std::uint8_t v_clean = static_cast<std::uint8_t>(
          std::clamp(std::lround(dehazed), 0L, 255L));
      const auto out_rgb =
          img::hsv_to_rgb_pixel(hrow[3 * x], hrow[3 * x + 1], v_clean);
      orow[3 * x] = out_rgb[0];
      orow[3 * x + 1] = out_rgb[1];
      orow[3 * x + 2] = out_rgb[2];
      if (want_mask) {
        delta.at(x, yi) = static_cast<std::uint8_t>(
            v > v_clean ? v - v_clean : v_clean - v);
      }
    }
  });

  // 5. Diagnostic cloud/shadow mask: Otsu over the correction magnitude.
  if (want_mask) {
    result.cloud_mask =
        img::threshold_otsu(delta, 255, img::ThresholdType::kBinary);
  }
  return result;
}

CloudFilterResult CloudShadowFilter::apply_with_diagnostics(
    const img::ImageU8& rgb, const par::ExecutionContext& ctx) const {
  ctx.throw_if_cancelled("CloudShadowFilter::apply_with_diagnostics");
  return filter_impl(rgb, ctx.pool(), /*want_mask=*/true);
}

img::ImageU8 CloudShadowFilter::apply(const img::ImageU8& rgb,
                                      const par::ExecutionContext& ctx) const {
  ctx.throw_if_cancelled("CloudShadowFilter::apply");
  return filter_impl(rgb, ctx.pool(), /*want_mask=*/false).filtered;
}

}  // namespace polarice::core
