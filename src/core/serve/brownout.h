#pragma once
// Brownout — hysteresis-gated degraded-service mode for sustained overload.
//
// Under a short burst the queue absorbs; under sustained overload the
// server previously had only one lever: shed deadline-bound work. Brownout
// adds a middle gear — while active, Priority::kBatch scenes are classified
// at a coarser stride (the scene is downscaled before tiling and the label
// plane upscaled back), trading accuracy for a large constant-factor cost
// reduction so bulk work degrades instead of dying. Interactive and normal
// traffic is never degraded: those classes keep full quality and, under
// continued pressure, the existing shed/reject semantics.
//
// Transitions are deliberately sticky (hysteresis on the injectable
// util::Clock so tests drive them deterministically):
//   enter: queue depth >= enter_queue_depth continuously for enter_hold
//   exit:  queue depth <= exit_queue_depth  continuously for exit_hold
// with exit_queue_depth < enter_queue_depth, so depth oscillating around
// either watermark cannot flap the mode — a crossing only arms a timer,
// and the mode flips when the condition has *held*.
//
// The controller is a pure decision box: callers feed it depth samples and
// ask "active?". It is internally locked so any thread (submit, scheduler,
// idle sweep) may update it.

#include <chrono>
#include <cstddef>
#include <mutex>
#include <optional>

#include "util/virtual_clock.h"

namespace polarice::core::serve {

struct BrownoutPolicy {
  bool enabled = false;
  // Watermarks on the submission-queue depth (scenes admitted, not yet
  // prepared). Exit must sit strictly below enter.
  std::size_t enter_queue_depth = 16;
  std::size_t exit_queue_depth = 4;
  // How long the condition must hold before the mode flips.
  std::chrono::milliseconds enter_hold{200};
  std::chrono::milliseconds exit_hold{500};
  // Degraded inference: scene downscaled by this factor before tiling
  // (cost drops ~stride^2), label plane upscaled back (nearest — label-safe).
  int degrade_stride = 2;

  void validate() const;
};

struct BrownoutState {
  bool active = false;
  std::size_t enters = 0;  // cumulative brownout entries
  std::size_t exits = 0;   // cumulative brownout exits
};

class BrownoutController {
 public:
  /// `clock` must outlive the controller; nullptr = process steady clock.
  BrownoutController(const BrownoutPolicy& policy, const util::Clock* clock);

  /// Feeds one queue-depth sample; returns whether brownout is active
  /// after the sample. Disabled policy: always false, zero cost.
  bool update(std::size_t queue_depth);

  [[nodiscard]] bool active() const;
  [[nodiscard]] BrownoutState state() const;
  [[nodiscard]] const BrownoutPolicy& policy() const noexcept {
    return policy_;
  }

 private:
  const BrownoutPolicy policy_;
  const util::Clock* clock_;

  mutable std::mutex mutex_;
  BrownoutState state_;
  // Armed when depth first crosses the relevant watermark; disarmed the
  // moment a sample falls back — only an unbroken hold flips the mode.
  std::optional<util::Clock::time_point> over_since_;
  std::optional<util::Clock::time_point> calm_since_;
};

}  // namespace polarice::core::serve
