#include "core/serve/brownout.h"

#include <stdexcept>

namespace polarice::core::serve {

void BrownoutPolicy::validate() const {
  if (!enabled) return;
  if (enter_queue_depth == 0) {
    throw std::invalid_argument("BrownoutPolicy: enter_queue_depth == 0");
  }
  if (exit_queue_depth >= enter_queue_depth) {
    throw std::invalid_argument(
        "BrownoutPolicy: exit_queue_depth must be below enter_queue_depth");
  }
  if (enter_hold < std::chrono::milliseconds::zero() ||
      exit_hold < std::chrono::milliseconds::zero()) {
    throw std::invalid_argument("BrownoutPolicy: negative hold window");
  }
  if (degrade_stride < 2) {
    throw std::invalid_argument("BrownoutPolicy: degrade_stride < 2");
  }
}

BrownoutController::BrownoutController(const BrownoutPolicy& policy,
                                       const util::Clock* clock)
    : policy_(policy),
      clock_(clock != nullptr ? clock : &util::system_clock()) {}

bool BrownoutController::update(std::size_t queue_depth) {
  if (!policy_.enabled) return false;
  const auto now = clock_->now();
  const std::scoped_lock lock(mutex_);
  if (!state_.active) {
    if (queue_depth >= policy_.enter_queue_depth) {
      if (!over_since_) over_since_ = now;
      if (now - *over_since_ >= policy_.enter_hold) {
        state_.active = true;
        ++state_.enters;
        over_since_.reset();
        calm_since_.reset();
      }
    } else {
      over_since_.reset();
    }
  } else {
    if (queue_depth <= policy_.exit_queue_depth) {
      if (!calm_since_) calm_since_ = now;
      if (now - *calm_since_ >= policy_.exit_hold) {
        state_.active = false;
        ++state_.exits;
        calm_since_.reset();
        over_since_.reset();
      }
    } else {
      calm_since_.reset();
    }
  }
  return state_.active;
}

bool BrownoutController::active() const {
  const std::scoped_lock lock(mutex_);
  return state_.active;
}

BrownoutState BrownoutController::state() const {
  const std::scoped_lock lock(mutex_);
  return state_;
}

}  // namespace polarice::core::serve
