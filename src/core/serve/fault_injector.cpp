#include "core/serve/fault_injector.h"

#include <thread>

namespace polarice::core::serve {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kThrow:
      return "throw";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kPoison:
      return "poison";
  }
  return "?";
}

const char* to_string(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kForward:
      return "forward";
    case FaultSite::kStitch:
      return "stitch";
  }
  return "?";
}

void FaultPlan::validate() const {
  if (after < 0) throw std::invalid_argument("FaultPlan: after < 0");
  if (count < -1) throw std::invalid_argument("FaultPlan: count < -1");
  if (every < 0) throw std::invalid_argument("FaultPlan: every < 0");
  if (stall < std::chrono::milliseconds::zero()) {
    throw std::invalid_argument("FaultPlan: negative stall");
  }
  if (kind == FaultKind::kStall && stall == std::chrono::milliseconds::zero()) {
    throw std::invalid_argument("FaultPlan: kStall with zero stall");
  }
}

void FaultInjector::arm(const FaultPlan& plan) {
  plan.validate();
  const std::scoped_lock lock(mutex_);
  plan_ = plan;
  armed_ = true;
  site_passes_[0] = site_passes_[1] = 0;
  stats_ = FaultInjectorStats{};
}

void FaultInjector::disarm() {
  const std::scoped_lock lock(mutex_);
  armed_ = false;
}

bool FaultInjector::on_pass(FaultSite site) {
  FaultKind kind;
  std::chrono::milliseconds stall{0};
  {
    const std::scoped_lock lock(mutex_);
    ++stats_.passes;
    if (!armed_ || plan_.site != site) return false;
    const std::size_t pass = site_passes_[static_cast<int>(site)]++;
    if (pass < static_cast<std::size_t>(plan_.after)) return false;
    const std::size_t eligible = pass - static_cast<std::size_t>(plan_.after);
    if (plan_.every > 0 &&
        eligible % static_cast<std::size_t>(plan_.every) != 0) {
      return false;
    }
    if (plan_.count >= 0 &&
        stats_.fired >= static_cast<std::size_t>(plan_.count)) {
      return false;
    }
    ++stats_.fired;
    kind = plan_.kind;
    stall = plan_.stall;
  }
  // Deliver outside the lock: a stall must not serialise other sites, and
  // the throw must not leave the mutex in a surprising state.
  switch (kind) {
    case FaultKind::kThrow:
      throw InjectedFault(to_string(site));
    case FaultKind::kStall:
      std::this_thread::sleep_for(stall);
      return false;
    case FaultKind::kPoison:
      return true;
  }
  return false;
}

FaultInjectorStats FaultInjector::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace polarice::core::serve
