#include "core/serve/result_cache.h"

#include "util/hash.h"

namespace polarice::core::serve {

SceneKey hash_scene(const img::ImageU8& scene) {
  SceneKey key;
  key.width = scene.width();
  key.height = scene.height();
  key.channels = scene.channels();
  // util::Fnv128 folds two independent FNV-1a streams into one pass over
  // the pixels — the hash runs on the scheduler thread ahead of every
  // admission, so the scene is read once, not twice. The same digest keys
  // the result cache, single-flight coalescing, and the shard router's
  // rendezvous placement.
  const util::Fnv128 hash = util::fnv128(scene.data(), scene.size());
  key.hash_lo = hash.lo;
  key.hash_hi = hash.hi;
  return key;
}

ResultCache::ResultCache(std::size_t byte_budget) : budget_(byte_budget) {}

std::optional<img::ImageU8> ResultCache::lookup(const SceneKey& key) {
  const std::scoped_lock lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++stats_.hits;
  return it->second->plane;
}

std::size_t ResultCache::insert(const SceneKey& key,
                                const img::ImageU8& plane) {
  const std::size_t charge = charge_of(plane);
  if (charge > budget_) return 0;  // would evict everything, still not fit
  const std::scoped_lock lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Same content hashed to the same key: refresh recency, keep the plane.
    lru_.splice(lru_.begin(), lru_, it->second);
    return 0;
  }
  lru_.push_front(Entry{key, plane, charge});
  map_[key] = lru_.begin();
  stats_.bytes += charge;
  stats_.entries = map_.size();
  return evict_to_fit();
}

std::size_t ResultCache::evict_to_fit() {
  std::size_t evicted = 0;
  while (stats_.bytes > budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.charge;
    map_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    ++evicted;
  }
  stats_.entries = map_.size();
  return evicted;
}

void ResultCache::clear() {
  const std::scoped_lock lock(mutex_);
  lru_.clear();
  map_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
}

ResultCacheStats ResultCache::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace polarice::core::serve
