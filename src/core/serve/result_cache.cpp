#include "core/serve/result_cache.h"

namespace polarice::core::serve {

SceneKey hash_scene(const img::ImageU8& scene) {
  SceneKey key;
  key.width = scene.width();
  key.height = scene.height();
  key.channels = scene.channels();
  // Two independent FNV-1a streams (the standard offset basis and a second
  // basis derived from it) folded into one pass over the pixels — the hash
  // runs on the scheduler thread ahead of every admission, so the scene is
  // read once, not twice. 128 bits of content identity.
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t lo = 14695981039346656037ULL;
  std::uint64_t hi = 14695981039346656037ULL ^ 0x9e3779b97f4a7c15ULL;
  const std::uint8_t* data = scene.data();
  const std::size_t n = scene.size();
  for (std::size_t i = 0; i < n; ++i) {
    lo = (lo ^ data[i]) * kPrime;
    hi = (hi ^ data[i]) * kPrime;
  }
  key.hash_lo = lo;
  key.hash_hi = hi;
  return key;
}

ResultCache::ResultCache(std::size_t byte_budget) : budget_(byte_budget) {}

std::optional<img::ImageU8> ResultCache::lookup(const SceneKey& key) {
  const std::scoped_lock lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++stats_.hits;
  return it->second->plane;
}

void ResultCache::insert(const SceneKey& key, const img::ImageU8& plane) {
  const std::size_t charge = charge_of(plane);
  if (charge > budget_) return;  // would evict everything and still not fit
  const std::scoped_lock lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Same content hashed to the same key: refresh recency, keep the plane.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, plane, charge});
  map_[key] = lru_.begin();
  stats_.bytes += charge;
  stats_.entries = map_.size();
  evict_to_fit();
}

void ResultCache::evict_to_fit() {
  while (stats_.bytes > budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.charge;
    map_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = map_.size();
}

void ResultCache::clear() {
  const std::scoped_lock lock(mutex_);
  lru_.clear();
  map_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
}

ResultCacheStats ResultCache::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace polarice::core::serve
