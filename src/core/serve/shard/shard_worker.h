#pragma once
// ShardWorker — one shard of the serving fleet: a SceneServer behind a
// socket request loop.
//
// The worker owns a full single-process serving stack (replica pool,
// batching, cache, SLO scheduling, fault recovery — everything PR 4/6
// built) and exposes it over the shard protocol: an accept loop hands each
// connection to a handler thread that reads request frames and writes
// response frames. A submit request blocks its connection thread on the
// local SceneTicket — concurrency across requests comes from the router
// opening multiple connections, and the SceneServer batches tiles across
// all of them, so cross-connection batching works exactly like
// cross-thread batching did in-process.
//
// Determinism: the worker adds no compute of its own — planes are produced
// by the embedded SceneServer, which is bit-identical to the serial
// workflow. Two workers built from the same model therefore return
// bit-identical planes for the same scene, which is what makes router-side
// failover re-dispatch safe.
//
// Lifecycle: serve() blocks until stop() (or a kShutdownRequest frame).
// In-flight requests drain through the embedded server's shutdown.
// `tools/polarice_worker` wraps this class as a standalone process;
// tests run it in-process on a thread — same code path either way, the
// wire format is always crossed.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/serve/scene_server.h"
#include "core/serve/shard/protocol.h"
#include "net/transport.h"
#include "nn/unet.h"
#include "par/context.h"

namespace polarice::core::serve::shard {

struct ShardWorkerConfig {
  net::Endpoint listen;       // where to serve (unix path or tcp host:port)
  SceneServerConfig server;   // the embedded SceneServer's knobs

  void validate() const;
};

struct ShardWorkerStats {
  std::size_t connections = 0;      // accepted over the worker's lifetime
  std::size_t requests = 0;         // submit frames served
  std::size_t heartbeats = 0;       // heartbeat frames served
  std::size_t metrics_scrapes = 0;  // metrics frames served
  std::size_t wire_errors = 0;      // connections dropped on bad frames
};

class ShardWorker {
 public:
  /// Binds the listen endpoint and starts the embedded SceneServer
  /// (cloning replicas from `model`, which is not retained). Throws on bad
  /// config or an unbindable endpoint.
  ShardWorker(nn::UNet& model, ShardWorkerConfig config,
              par::ExecutionContext ctx = {});
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Serves until stop(): accepts connections, spawns one handler thread
  /// per connection. Call from the process main thread (the worker binary)
  /// or a dedicated thread (tests).
  void serve();

  /// Stops accepting, closes the listener, drains the embedded server,
  /// joins handler threads. Idempotent; also triggered by a
  /// kShutdownRequest frame.
  void stop();

  /// The bound endpoint (with the kernel-resolved port for tcp:...:0).
  [[nodiscard]] const net::Endpoint& endpoint() const noexcept {
    return listener_endpoint_;
  }
  [[nodiscard]] ShardWorkerStats stats() const;
  [[nodiscard]] SceneServer& server() noexcept { return *server_; }

 private:
  /// One handler thread plus its completion flag: the accept loop reaps
  /// finished handlers (flag set, join is instant) so a long-lived worker
  /// serving many short-lived connections does not accumulate joinable
  /// thread handles without bound.
  struct Handler {
    std::jthread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void handle_connection(net::Connection connection);
  void reap_finished_handlers_locked();
  [[nodiscard]] SubmitResponse serve_submit(SubmitRequest request);
  [[nodiscard]] HeartbeatResponse serve_heartbeat();
  [[nodiscard]] MetricsResponse serve_metrics();
  [[nodiscard]] double uptime_seconds() const;

  ShardWorkerConfig config_;
  std::unique_ptr<SceneServer> server_;
  net::Listener listener_;
  net::Endpoint listener_endpoint_;
  // Uptime runs on the embedded server's clock (virtual in tests): the
  // router reads a backwards jump as "this is a NEW process", so it must
  // track the same time the rest of the worker state does.
  const util::Clock* clock_ = nullptr;
  util::Clock::time_point started_at_{};

  std::atomic<bool> stopping_{false};
  std::atomic<bool> serving_{false};  // serve() is inside its accept loop
  std::mutex serve_mutex_;            // stop() waits for serve() to exit
  std::condition_variable serve_cv_;
  std::mutex handlers_mutex_;
  std::vector<Handler> handlers_;  // guarded by handlers_mutex_

  mutable std::mutex stats_mutex_;
  ShardWorkerStats stats_;  // guarded by stats_mutex_
};

}  // namespace polarice::core::serve::shard
