#include "core/serve/shard/protocol.h"

namespace polarice::core::serve::shard {

const char* to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kOk:
      return "ok";
    case Outcome::kRejected:
      return "rejected";
    case Outcome::kShed:
      return "shed";
    case Outcome::kCancelled:
      return "cancelled";
    case Outcome::kFailed:
      return "failed";
  }
  return "?";
}

namespace {

Outcome decode_outcome(std::uint8_t value) {
  if (value > static_cast<std::uint8_t>(Outcome::kFailed)) {
    throw net::WireError("unknown outcome " + std::to_string(value));
  }
  return static_cast<Outcome>(value);
}

}  // namespace

std::vector<std::uint8_t> encode(const SubmitRequest& request) {
  net::WireWriter writer;
  writer.put_u64(request.request_id);
  net::put_submit_options(writer, request.options);
  net::put_image(writer, request.scene);
  return writer.take();
}

SubmitRequest decode_submit_request(const std::vector<std::uint8_t>& payload) {
  net::WireReader reader(payload);
  SubmitRequest request;
  request.request_id = reader.get_u64();
  request.options = net::get_submit_options(reader);
  request.scene = net::get_image_u8(reader);
  reader.expect_end();
  return request;
}

std::vector<std::uint8_t> encode(const SubmitResponse& response) {
  net::WireWriter writer;
  writer.put_u64(response.request_id);
  writer.put_u8(static_cast<std::uint8_t>(response.outcome));
  writer.put_u8(response.degraded ? 1 : 0);
  writer.put_string(response.error);
  net::put_image(writer, response.plane);
  return writer.take();
}

SubmitResponse decode_submit_response(
    const std::vector<std::uint8_t>& payload) {
  net::WireReader reader(payload);
  SubmitResponse response;
  response.request_id = reader.get_u64();
  response.outcome = decode_outcome(reader.get_u8());
  const std::uint8_t degraded = reader.get_u8();
  if (degraded > 1) throw net::WireError("bad degraded flag");
  response.degraded = degraded == 1;
  response.error = reader.get_string();
  response.plane = net::get_image_u8(reader);
  reader.expect_end();
  return response;
}

std::vector<std::uint8_t> encode(const HeartbeatResponse& response) {
  net::WireWriter writer;
  writer.put_u64(response.queue_depth);
  writer.put_u8(response.accepting ? 1 : 0);
  writer.put_f64(response.uptime_seconds);
  writer.put_u8(response.brownout_active ? 1 : 0);
  net::put_stats(writer, response.stats);
  return writer.take();
}

HeartbeatResponse decode_heartbeat_response(
    const std::vector<std::uint8_t>& payload) {
  net::WireReader reader(payload);
  HeartbeatResponse response;
  response.queue_depth = reader.get_u64();
  const std::uint8_t accepting = reader.get_u8();
  if (accepting > 1) throw net::WireError("bad accepting flag");
  response.accepting = accepting == 1;
  response.uptime_seconds = reader.get_f64();
  if (!(response.uptime_seconds >= 0.0)) {  // rejects NaN too
    throw net::WireError("negative uptime");
  }
  const std::uint8_t brownout = reader.get_u8();
  if (brownout > 1) throw net::WireError("bad brownout flag");
  response.brownout_active = brownout == 1;
  response.stats = net::get_stats(reader);
  reader.expect_end();
  return response;
}

std::vector<std::uint8_t> encode(const MetricsResponse& response) {
  net::WireWriter writer;
  writer.put_f64(response.uptime_seconds);
  writer.put_string(response.text);
  return writer.take();
}

MetricsResponse decode_metrics_response(
    const std::vector<std::uint8_t>& payload) {
  net::WireReader reader(payload);
  MetricsResponse response;
  response.uptime_seconds = reader.get_f64();
  if (!(response.uptime_seconds >= 0.0)) {
    throw net::WireError("negative uptime");
  }
  response.text = reader.get_string();
  reader.expect_end();
  return response;
}

}  // namespace polarice::core::serve::shard
