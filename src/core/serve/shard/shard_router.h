#pragma once
// ShardRouter — the fleet front end: routes scenes to N ShardWorker
// processes and returns SceneTicket-compatible futures.
//
// Placement is rendezvous (highest-random-weight) hashing of the scene's
// 128-bit content hash (util/hash.h — the very same digest that keys the
// result cache and single-flight coalescing inside each worker) against
// each shard's identity: every router instance agrees on placement without
// coordination, identical scenes always land on the same shard (so the
// shard's cache and coalescing keep working fleet-wide), and
// adding/removing a shard only remaps the scenes that hashed to it — no
// global reshuffle.
//
// Health: a heartbeat thread probes every shard on a period; a shard that
// fails `quarantine_failures` consecutive probes (or dispatches) is
// quarantined — taken out of the candidate set until a probe succeeds
// again. Dispatch failures re-dispatch the scene to the next shard in its
// rendezvous order (failover): workers are deterministic clones, so a
// re-dispatched scene returns a bit-identical plane, making failover
// invisible to the caller except in latency.
//
// Overload shedding: each heartbeat carries the worker's submission-queue
// depth. When a scene's best shard reports depth above shed_queue_depth,
// the router walks down the rendezvous order; if every live shard is over
// the watermark the submission is refused with AdmissionRejected — the
// fleet-level analogue of SceneServer's admission control, applied before
// any bytes cross the wire.
//
// Threading: submit() enqueues and returns immediately; a pool of
// dispatcher threads moves requests over pooled per-shard connections
// (one in-flight request per connection — the protocol's sequential
// request/response discipline; the SceneServer behind each worker batches
// across connections).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/serve/result_cache.h"
#include "core/serve/scene_server.h"
#include "core/serve/shard/protocol.h"
#include "img/image.h"
#include "net/transport.h"
#include "obs/instruments.h"
#include "par/context.h"
#include "util/virtual_clock.h"

namespace polarice::core::serve::shard {

struct ShardRouterConfig {
  std::vector<net::Endpoint> shards;  // one ShardWorker each; order is the
                                      // shard identity, so keep it stable
  // Dispatcher pool: upper bound on requests simultaneously on the wire.
  int dispatchers = 8;
  // Bounded dispatch queue in front of the dispatchers (admission control
  // at the router tier; overflow rejects like a full SceneServer queue).
  std::size_t queue_capacity = 256;
  // Heartbeat probe period per shard, and the probe's own deadline.
  std::chrono::milliseconds heartbeat_period{100};
  std::chrono::milliseconds heartbeat_timeout{250};
  // Consecutive failures (probe or dispatch) that quarantine a shard.
  int quarantine_failures = 3;
  // Per-request failover budget: how many *additional* shards a scene may
  // be re-dispatched to after its first choice fails mid-flight.
  int max_failovers = 2;
  // Worker queue depth above which a shard counts as overloaded (0 =
  // shedding disabled). Compared against the depth in the latest
  // heartbeat.
  std::size_t shed_queue_depth = 0;
  // Quarantined-shard re-dial backoff: after quarantine, probe attempts
  // are spaced redial_base * 2^(attempt-1) apart, capped at redial_cap,
  // plus a deterministic per-shard jitter (<= 25% of the delay) so a fleet
  // of routers does not re-dial a rebooting worker in lockstep. A healthy
  // shard keeps the plain heartbeat_period cadence; the first successful
  // probe resets the backoff.
  std::chrono::milliseconds redial_base{200};
  std::chrono::milliseconds redial_cap{5000};
  // Deadline for one dispatch round trip (connect + send + full scene
  // inference + response). Generous by design: this is a liveness bound
  // for crashed workers, not an SLO (deadlines ride SubmitOptions).
  std::chrono::milliseconds request_timeout{30000};
  // Time source for all router timing; nullptr = process clock. Must
  // outlive the router.
  const util::Clock* clock = nullptr;

  void validate() const;
};

/// Health/telemetry of one shard as the router sees it.
struct ShardState {
  net::Endpoint endpoint;
  bool healthy = true;            // false = quarantined
  bool accepting = true;          // worker said it is shutting down
  int consecutive_failures = 0;
  std::uint64_t queue_depth = 0;  // from the latest heartbeat
  std::size_t dispatched = 0;     // requests sent here
  std::size_t heartbeats_ok = 0;
  std::size_t heartbeats_failed = 0;
  int redial_attempts = 0;        // failed probes since quarantine
  double uptime_seconds = -1.0;   // from the latest heartbeat; -1 = never
  bool brownout_active = false;   // worker reported brownout degradation
  SceneServerStats stats;         // latest heartbeat's server snapshot
};

struct ShardRouterStats {
  std::size_t submitted = 0;       // tickets handed out
  std::size_t completed = 0;       // resolved with a plane
  std::size_t rejected = 0;        // refused admission: queue full, all
                                   // shards over the watermark, or every
                                   // dispatch candidate answered kRejected
  std::size_t shed = 0;            // worker answered DeadlineExceeded
  std::size_t cancelled = 0;
  std::size_t failed = 0;          // resolved with any other error
  std::size_t degraded = 0;        // planes returned brownout-degraded
  std::size_t failovers = 0;       // re-dispatches after a shard failure
  std::size_t dispatch_errors = 0; // transport/wire failures observed
  std::size_t quarantines = 0;     // healthy -> quarantined transitions
  std::size_t recoveries = 0;      // quarantined -> healthy transitions
  std::vector<ShardState> shards;
};

namespace detail {
struct RemoteTicketState;
}  // namespace detail

/// Future-style handle to one routed scene — the fleet-tier mirror of
/// SceneTicket, with identical semantics: shared state, repeatable get(),
/// cooperative cancel, errors rethrown from get().
class ShardTicket {
 public:
  ShardTicket() = default;  // !valid()

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool ready() const;
  void wait() const;
  bool wait_for(std::chrono::milliseconds timeout) const;

  /// Blocks until resolved; returns the scene-sized class-id plane or
  /// rethrows the failure (AdmissionRejected / DeadlineExceeded /
  /// par::OperationCancelled / std::runtime_error with the worker's text).
  [[nodiscard]] img::ImageU8 get() const;

  /// Blocks until resolved; true when the worker answered with a
  /// brownout-degraded plane (mirrors SceneTicket::degraded()).
  [[nodiscard]] bool degraded() const;

  /// Requests cancellation: honoured before dispatch (and re-checked
  /// between failover attempts); a request already on the wire completes
  /// remotely and resolves cancelled on return.
  void cancel() const;

 private:
  friend class ShardRouter;
  explicit ShardTicket(std::shared_ptr<detail::RemoteTicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::RemoteTicketState> state_;
};

class ShardRouter {
 public:
  /// Starts the dispatcher pool and the heartbeat prober. Does not require
  /// shards to be up yet: a shard is assumed healthy until probes say
  /// otherwise, and dispatch failures trigger failover anyway.
  explicit ShardRouter(ShardRouterConfig config);

  /// Fails pending work with QueueClosed semantics and joins all threads.
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Routes one scene. Throws std::invalid_argument on malformed scenes,
  /// AdmissionRejected when the dispatch queue is full or every live shard
  /// is over the overload watermark, QueueClosed after shutdown().
  ShardTicket submit(img::ImageU8 scene, const SubmitOptions& options = {},
                     const par::ExecutionContext& ctx = {});

  /// Synchronous convenience: submit + get.
  [[nodiscard]] img::ImageU8 classify_scene(const img::ImageU8& scene_rgb);

  /// Stops admission, resolves queued-but-undispatched work with
  /// QueueClosed, joins dispatchers and the heartbeat thread. Idempotent.
  void shutdown();

  /// Waits until at least `count` shards have answered a heartbeat (true),
  /// or `timeout` passes (false). Startup aid for orchestration: workers
  /// spawn concurrently with the router.
  bool wait_for_healthy(int count, std::chrono::milliseconds timeout);

  [[nodiscard]] ShardRouterStats stats() const;
  [[nodiscard]] const ShardRouterConfig& config() const noexcept {
    return config_;
  }

  /// Rendezvous placement order for a scene key: shard indices, best
  /// first, ignoring health (health is applied at dispatch time). Exposed
  /// for tests and capacity tooling.
  [[nodiscard]] std::vector<int> placement(const SceneKey& key) const;

  /// Scrapes every shard's metrics registry over the wire
  /// (kMetricsRequest). One entry per configured shard, in shard order;
  /// nullopt where the worker was unreachable or answered garbage.
  [[nodiscard]] std::vector<std::optional<MetricsResponse>> scrape_metrics();

 private:
  struct Shard;

  void dispatcher_loop();
  void heartbeat_loop();
  void probe(Shard& shard);

  /// Schedules the next probe of a shard whose probe just failed: plain
  /// heartbeat cadence while healthy, capped exponential backoff with
  /// deterministic jitter once quarantined.
  void schedule_reprobe(Shard& shard);
  [[nodiscard]] std::chrono::milliseconds redial_delay(const Shard& shard,
                                                       int attempt) const;

  /// One dispatch attempt chain with failover; resolves the ticket.
  void dispatch(const std::shared_ptr<detail::RemoteTicketState>& ticket);

  /// Sends the request on one shard and decodes the response. Transport /
  /// wire failures throw (the caller records them and fails over).
  [[nodiscard]] SubmitResponse round_trip(
      Shard& shard, const std::shared_ptr<detail::RemoteTicketState>& ticket);

  /// Returns true when the success flipped a quarantined shard healthy.
  bool record_success(Shard& shard);
  void record_failure(Shard& shard);

  ShardRouterConfig config_;
  const util::Clock* clock_;
  obs::RouterInstruments& obs_;

  struct Shard {
    net::Endpoint endpoint;
    std::uint64_t id_hash = 0;  // rendezvous identity: fnv64(endpoint)

    std::mutex mutex;  // guards everything below
    bool healthy = true;
    bool accepting = true;
    int consecutive_failures = 0;
    std::uint64_t queue_depth = 0;
    std::size_t dispatched = 0;
    std::size_t heartbeats_ok = 0;
    std::size_t heartbeats_failed = 0;
    // Re-dial pacing (prober only). Default epoch = due immediately, so
    // the first round still probes every shard at startup.
    util::Clock::time_point next_probe_at{};
    int redial_attempts = 0;  // failed probes since quarantine
    // Last heartbeat's worker-reported uptime (-1 = never heard). An
    // uptime that goes BACKWARDS means a new process answered — the
    // worker restarted (cold cache, reset counters) rather than recovered.
    double last_uptime = -1.0;
    bool brownout_active = false;
    SceneServerStats last_stats;
    std::vector<net::Connection> idle;  // pooled connections
    net::Connection heartbeat;          // the prober's own connection
  };
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<detail::RemoteTicketState>> queue_;
  bool closed_ = false;  // guarded by queue_mutex_

  mutable std::mutex stats_mutex_;
  ShardRouterStats counters_;  // scalar counters only (shards built fresh)

  std::atomic<std::uint64_t> next_request_id_{1};
  std::atomic<bool> shut_down_{false};
  std::vector<std::jthread> dispatchers_;
  std::jthread heartbeat_;
};

}  // namespace polarice::core::serve::shard
