#pragma once
// Shard protocol — the message vocabulary between ShardRouter and
// ShardWorker, expressed over net/wire.h frames.
//
// Connections are sequential request/response streams: the sender writes
// one request frame and reads exactly one response frame. Concurrency
// comes from having many connections (the router pools them per shard),
// not from multiplexing — which keeps both ends free of correlation
// machinery while the SceneServer behind each worker still batches across
// connections.
//
//   kSubmitRequest    { request_id, SubmitOptions, scene plane }
//   kSubmitResponse   { request_id, Outcome, error text | result plane }
//   kHeartbeatRequest {}
//   kHeartbeatResponse{ queue_depth, accepting flag, uptime, brownout flag,
//                       SceneServerStats }
//   kShutdownRequest  {} -> kShutdownResponse {}
//   kMetricsRequest   {} -> kMetricsResponse { uptime, text exposition }
//
// Outcome mirrors the ticket resolutions of the local SceneServer so the
// router can rethrow the same exception types callers already handle
// (AdmissionRejected, DeadlineExceeded, par::OperationCancelled, plain
// failure) — remote and local serving stay drop-in interchangeable.

#include <cstdint>
#include <string>
#include <vector>

#include "core/serve/scene_server.h"
#include "img/image.h"
#include "net/wire.h"

namespace polarice::core::serve::shard {

/// Resolution of one remote submission.
enum class Outcome : std::uint8_t {
  kOk = 0,         // plane attached
  kRejected = 1,   // AdmissionRejected at the worker's front door
  kShed = 2,       // DeadlineExceeded (SLO shed)
  kCancelled = 3,  // par::OperationCancelled
  kFailed = 4,     // any other error (text attached)
};

[[nodiscard]] const char* to_string(Outcome outcome) noexcept;

struct SubmitRequest {
  std::uint64_t request_id = 0;
  SubmitOptions options;
  img::ImageU8 scene;
};

struct SubmitResponse {
  std::uint64_t request_id = 0;
  Outcome outcome = Outcome::kFailed;
  std::string error;      // non-ok outcomes: human-readable cause
  img::ImageU8 plane;     // kOk only
  bool degraded = false;  // kOk only: plane produced in brownout mode
};

struct HeartbeatResponse {
  std::uint64_t queue_depth = 0;  // scenes awaiting the scheduler
  bool accepting = true;          // false once shutdown began
  // Seconds since this worker process constructed its ShardWorker, on its
  // monotonic clock. A rejoining shard whose uptime went *backwards* was
  // restarted (fresh process), not merely recovered — the router's
  // quarantine-exit log line and polarice_stat both lean on this.
  double uptime_seconds = 0.0;
  bool brownout_active = false;  // degraded-mode flag at probe time
  SceneServerStats stats;
};

/// The metrics scrape's cargo: the worker's whole obs registry rendered in
/// the text exposition format (obs::render_text), plus enough identity to
/// label a fleet table without a second round-trip.
struct MetricsResponse {
  double uptime_seconds = 0.0;
  std::string text;
};

[[nodiscard]] std::vector<std::uint8_t> encode(const SubmitRequest& request);
[[nodiscard]] SubmitRequest decode_submit_request(
    const std::vector<std::uint8_t>& payload);

[[nodiscard]] std::vector<std::uint8_t> encode(const SubmitResponse& response);
[[nodiscard]] SubmitResponse decode_submit_response(
    const std::vector<std::uint8_t>& payload);

[[nodiscard]] std::vector<std::uint8_t> encode(
    const HeartbeatResponse& response);
[[nodiscard]] HeartbeatResponse decode_heartbeat_response(
    const std::vector<std::uint8_t>& payload);

[[nodiscard]] std::vector<std::uint8_t> encode(const MetricsResponse& response);
[[nodiscard]] MetricsResponse decode_metrics_response(
    const std::vector<std::uint8_t>& payload);

}  // namespace polarice::core::serve::shard
