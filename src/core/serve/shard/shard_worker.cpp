#include "core/serve/shard/shard_worker.h"

#include <utility>

#include "obs/instruments.h"
#include "obs/metrics.h"
#include "util/log.h"

namespace polarice::core::serve::shard {

void ShardWorkerConfig::validate() const {
  if (listen.kind == net::Endpoint::Kind::kUnix && listen.path.empty()) {
    throw std::invalid_argument("ShardWorkerConfig: empty listen path");
  }
  server.validate();
}

ShardWorker::ShardWorker(nn::UNet& model, ShardWorkerConfig config,
                         par::ExecutionContext ctx)
    : config_(std::move(config)) {
  config_.validate();
  server_ = std::make_unique<SceneServer>(model, config_.server,
                                          std::move(ctx));
  // The listener deliberately stays on the real clock even when the server
  // runs on an injected one: the accept timeout is flow control (it paces
  // stop-flag checks), and stop() liveness must not depend on virtual time
  // advancing — a frozen test clock would pin serve() in accept() forever.
  listener_ = net::Listener::bind(config_.listen);
  listener_endpoint_ = listener_.endpoint();
  clock_ = config_.server.clock != nullptr ? config_.server.clock
                                           : &util::system_clock();
  started_at_ = clock_->now();
  LOG_INFO_C("worker") << "listening on " << listener_endpoint_.to_string();
}

ShardWorker::~ShardWorker() { stop(); }

void ShardWorker::serve() {
  // Accept with a short timeout so stop() (or an inbound shutdown frame)
  // is observed between ticks even with no connections arriving.
  constexpr std::chrono::milliseconds kAcceptTick{50};
  serving_.store(true, std::memory_order_release);
  while (!stopping_.load(std::memory_order_acquire)) {
    net::Connection connection;
    try {
      connection = listener_.accept(kAcceptTick);
    } catch (const net::TransportError&) {
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;  // transient accept failure; keep serving
    }
    if (!connection.valid()) continue;  // tick: re-check stopping_
    {
      const std::scoped_lock lock(stats_mutex_);
      ++stats_.connections;
    }
    const std::scoped_lock lock(handlers_mutex_);
    if (stopping_.load(std::memory_order_acquire)) break;  // drop it
    reap_finished_handlers_locked();
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::jthread thread(
        [this, conn = std::move(connection), done]() mutable {
          handle_connection(std::move(conn));
          done->store(true, std::memory_order_release);
        });
    handlers_.push_back(Handler{std::move(thread), std::move(done)});
  }
  {
    const std::scoped_lock lock(serve_mutex_);
    serving_.store(false, std::memory_order_release);
  }
  serve_cv_.notify_all();
}

void ShardWorker::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  // Let the accept loop exit on its own tick before touching the listener:
  // closing a socket another thread is polling invites fd-reuse races.
  {
    std::unique_lock lock(serve_mutex_);
    serve_cv_.wait(lock, [&] {
      return !serving_.load(std::memory_order_acquire);
    });
  }
  listener_.close();  // unlinks a unix-socket path
  // Drain the embedded server: handler threads blocked on local tickets
  // resolve (result or QueueClosed), answer their peers, then exit on EOF.
  server_->shutdown();
  std::vector<Handler> handlers;
  {
    const std::scoped_lock lock(handlers_mutex_);
    handlers.swap(handlers_);
  }
  for (auto& handler : handlers) {
    if (handler.thread.joinable()) handler.thread.join();
  }
  LOG_INFO_C("worker") << "stopped after "
                       << static_cast<std::uint64_t>(uptime_seconds())
                       << "s uptime";
}

void ShardWorker::reap_finished_handlers_locked() {
  std::erase_if(handlers_, [](Handler& handler) {
    if (!handler.done->load(std::memory_order_acquire)) return false;
    if (handler.thread.joinable()) handler.thread.join();  // instant: done
    return true;
  });
}

void ShardWorker::handle_connection(net::Connection connection) {
  // One request/response exchange per loop iteration; the connection dies
  // on peer close (clean EOF between frames), wire corruption, or stop().
  // Between requests the handler ticks wait_readable instead of blocking
  // in read_frame: a peer that parks an idle connection (the router pools
  // them, and the prober keeps one per shard) must not pin this thread —
  // stop() joins every handler, and a handler stuck in a deadline-less
  // read would deadlock shutdown against a peer that only closes later.
  constexpr std::chrono::milliseconds kIdleTick{50};
  for (;;) {
    net::Frame frame;
    try {
      while (!connection.wait_readable(kIdleTick)) {
        if (stopping_.load(std::memory_order_acquire)) return;
      }
      // Re-check after a readable wakeup too: a chatty peer (the router
      // probes every heartbeat_period) can keep the socket readable on
      // every tick, and a handler that only checks stopping_ on idle
      // ticks would answer that peer forever and deadlock stop()'s join.
      if (stopping_.load(std::memory_order_acquire)) return;
      frame = connection.read_frame();
    } catch (const net::TransportError&) {
      return;  // peer closed (or listener shut down); normal end of stream
    } catch (const net::WireError&) {
      const std::scoped_lock lock(stats_mutex_);
      ++stats_.wire_errors;
      obs::WorkerInstruments::get().wire_errors->add();
      return;  // corrupted stream: drop the connection, never the process
    } catch (...) {
      // e.g. bad_alloc sizing the payload buffer: same discipline.
      const std::scoped_lock lock(stats_mutex_);
      ++stats_.wire_errors;
      obs::WorkerInstruments::get().wire_errors->add();
      return;
    }
    try {
      switch (frame.type) {
        case net::MsgType::kSubmitRequest: {
          SubmitResponse response =
              serve_submit(decode_submit_request(frame.payload));
          connection.write_frame(net::MsgType::kSubmitResponse,
                                 encode(response));
          break;
        }
        case net::MsgType::kHeartbeatRequest: {
          connection.write_frame(net::MsgType::kHeartbeatResponse,
                                 encode(serve_heartbeat()));
          break;
        }
        case net::MsgType::kMetricsRequest: {
          connection.write_frame(net::MsgType::kMetricsResponse,
                                 encode(serve_metrics()));
          break;
        }
        case net::MsgType::kShutdownRequest: {
          connection.write_frame(net::MsgType::kShutdownResponse, {});
          // Only flag the stop here: the accept loop exits on its next
          // tick, and the serve() caller runs the full stop() (which joins
          // handler threads — including this one).
          stopping_.store(true, std::memory_order_release);
          return;
        }
        default: {
          const std::scoped_lock lock(stats_mutex_);
          ++stats_.wire_errors;
          obs::WorkerInstruments::get().wire_errors->add();
          LOG_WARN_C("worker") << "inbound protocol violation (type "
                               << net::to_string(frame.type)
                               << "); dropping connection";
      obs::WorkerInstruments::get().wire_errors->add();
          return;  // a response type inbound is a protocol violation
        }
      }
    } catch (const net::WireError&) {
      const std::scoped_lock lock(stats_mutex_);
      ++stats_.wire_errors;
      obs::WorkerInstruments::get().wire_errors->add();
      return;
    } catch (const net::TransportError&) {
      return;  // peer vanished mid-response
    } catch (...) {
      // Anything else (bad_alloc on a huge-but-valid geometry, a future
      // serializer's exception type...) must not escape the jthread
      // callable — that would std::terminate the whole worker. Drop the
      // connection, never the process.
      const std::scoped_lock lock(stats_mutex_);
      ++stats_.wire_errors;
      obs::WorkerInstruments::get().wire_errors->add();
      return;
    }
  }
}

SubmitResponse ShardWorker::serve_submit(SubmitRequest request) {
  SubmitResponse response;
  response.request_id = request.request_id;
  try {
    SceneTicket ticket =
        server_->submit(std::move(request.scene), request.options);
    response.plane = ticket.get();  // blocks this connection thread only
    response.degraded = ticket.degraded();  // already resolved: no wait
    response.outcome = Outcome::kOk;
  } catch (const AdmissionRejected& error) {
    response.outcome = Outcome::kRejected;
    response.error = error.what();
  } catch (const QueueClosed& error) {
    response.outcome = Outcome::kRejected;
    response.error = error.what();
  } catch (const DeadlineExceeded& error) {
    response.outcome = Outcome::kShed;
    response.error = error.what();
  } catch (const par::OperationCancelled& error) {
    response.outcome = Outcome::kCancelled;
    response.error = error.what();
  } catch (const std::exception& error) {
    response.outcome = Outcome::kFailed;
    response.error = error.what();
  }
  {
    const std::scoped_lock lock(stats_mutex_);
    ++stats_.requests;
  }
  obs::WorkerInstruments::get().requests->add();
  return response;
}

HeartbeatResponse ShardWorker::serve_heartbeat() {
  HeartbeatResponse response;
  response.queue_depth = server_->queue_depth();
  response.accepting = !stopping_.load(std::memory_order_acquire);
  response.stats = server_->snapshot();
  response.uptime_seconds = uptime_seconds();
  response.brownout_active = response.stats.brownout_active;
  {
    const std::scoped_lock lock(stats_mutex_);
    ++stats_.heartbeats;
  }
  obs::WorkerInstruments::get().requests->add();
  return response;
}

MetricsResponse ShardWorker::serve_metrics() {
  // The scrape itself counts first, so a scraper always sees its own
  // request reflected (non-zero worker_metrics_scrapes_total proves the
  // path end to end).
  {
    const std::scoped_lock lock(stats_mutex_);
    ++stats_.metrics_scrapes;
  }
  auto& instruments = obs::WorkerInstruments::get();
  instruments.requests->add();
  instruments.metrics_scrapes->add();
  MetricsResponse response;
  response.uptime_seconds = uptime_seconds();
  response.text = obs::render_text(obs::registry().snapshot());
  return response;
}

double ShardWorker::uptime_seconds() const {
  return std::chrono::duration<double>(clock_->now() - started_at_).count();
}

ShardWorkerStats ShardWorker::stats() const {
  const std::scoped_lock lock(stats_mutex_);
  return stats_;
}

}  // namespace polarice::core::serve::shard
