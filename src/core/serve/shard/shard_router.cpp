#include "core/serve/shard/shard_router.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/serve/request_queue.h"
#include "obs/instruments.h"
#include "obs/trace.h"
#include "util/hash.h"
#include "util/log.h"

namespace polarice::core::serve::shard {

namespace detail {

/// Shared resolution state behind a ShardTicket — the remote analogue of
/// SceneServer's internal ticket state: resolved exactly once, read many
/// times, waited on with a real condition variable (never the injectable
/// clock, which only answers now()).
struct RemoteTicketState {
  // Immutable after submit().
  std::uint64_t request_id = 0;
  img::ImageU8 scene;
  SubmitOptions options;
  SceneKey key;
  par::CancellationToken cancellation;  // shared with the caller's ctx

  std::atomic<bool> cancel_requested{false};

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;             // guarded by mutex
  img::ImageU8 plane;            // guarded by mutex
  bool plane_degraded = false;   // guarded by mutex
  std::exception_ptr error;      // guarded by mutex

  [[nodiscard]] bool cancelled() const noexcept {
    return cancel_requested.load(std::memory_order_relaxed) ||
           cancellation.cancelled();
  }

  void resolve_value(img::ImageU8 result, bool degraded) {
    {
      const std::scoped_lock lock(mutex);
      if (done) return;
      plane = std::move(result);
      plane_degraded = degraded;
      done = true;
    }
    cv.notify_all();
  }

  void resolve_error(std::exception_ptr eptr) {
    {
      const std::scoped_lock lock(mutex);
      if (done) return;
      error = std::move(eptr);
      done = true;
    }
    cv.notify_all();
  }
};

}  // namespace detail

// ---------------------------------------------------------------------------
// ShardTicket
// ---------------------------------------------------------------------------

bool ShardTicket::ready() const {
  if (!state_) throw std::logic_error("ShardTicket::ready on empty ticket");
  const std::scoped_lock lock(state_->mutex);
  return state_->done;
}

void ShardTicket::wait() const {
  if (!state_) throw std::logic_error("ShardTicket::wait on empty ticket");
  std::unique_lock lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
}

bool ShardTicket::wait_for(std::chrono::milliseconds timeout) const {
  if (!state_) throw std::logic_error("ShardTicket::wait_for on empty ticket");
  std::unique_lock lock(state_->mutex);
  return state_->cv.wait_for(lock, timeout, [&] { return state_->done; });
}

img::ImageU8 ShardTicket::get() const {
  if (!state_) throw std::logic_error("ShardTicket::get on empty ticket");
  std::unique_lock lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  if (state_->error) std::rethrow_exception(state_->error);
  return state_->plane;
}

bool ShardTicket::degraded() const {
  if (!state_) {
    throw std::logic_error("ShardTicket::degraded on empty ticket");
  }
  std::unique_lock lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->plane_degraded;
}

void ShardTicket::cancel() const {
  if (!state_) throw std::logic_error("ShardTicket::cancel on empty ticket");
  state_->cancel_requested.store(true, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ShardRouter
// ---------------------------------------------------------------------------

void ShardRouterConfig::validate() const {
  if (shards.empty()) {
    throw std::invalid_argument("ShardRouterConfig: no shard endpoints");
  }
  if (dispatchers < 1) {
    throw std::invalid_argument("ShardRouterConfig: dispatchers < 1");
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument("ShardRouterConfig: queue_capacity == 0");
  }
  if (heartbeat_period.count() <= 0 || heartbeat_timeout.count() <= 0) {
    throw std::invalid_argument(
        "ShardRouterConfig: non-positive heartbeat period/timeout");
  }
  if (quarantine_failures < 1) {
    throw std::invalid_argument("ShardRouterConfig: quarantine_failures < 1");
  }
  if (max_failovers < 0) {
    throw std::invalid_argument("ShardRouterConfig: max_failovers < 0");
  }
  if (request_timeout.count() <= 0) {
    throw std::invalid_argument("ShardRouterConfig: request_timeout <= 0");
  }
  if (redial_base.count() <= 0) {
    throw std::invalid_argument("ShardRouterConfig: redial_base <= 0");
  }
  if (redial_cap < redial_base) {
    throw std::invalid_argument(
        "ShardRouterConfig: redial_cap < redial_base");
  }
}

ShardRouter::ShardRouter(ShardRouterConfig config)
    : config_(std::move(config)),
      clock_(config_.clock != nullptr ? config_.clock
                                      : &util::system_clock()),
      obs_(obs::RouterInstruments::get()) {
  config_.validate();
  shards_.reserve(config_.shards.size());
  for (const auto& endpoint : config_.shards) {
    auto shard = std::make_unique<Shard>();
    shard->endpoint = endpoint;
    const std::string name = endpoint.to_string();
    shard->id_hash = util::fnv64(name.data(), name.size());
    shards_.push_back(std::move(shard));
  }
  heartbeat_ = std::jthread([this] { heartbeat_loop(); });
  dispatchers_.reserve(static_cast<std::size_t>(config_.dispatchers));
  for (int i = 0; i < config_.dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

ShardRouter::~ShardRouter() { shutdown(); }

ShardTicket ShardRouter::submit(img::ImageU8 scene,
                                const SubmitOptions& options,
                                const par::ExecutionContext& ctx) {
  if (scene.width() <= 0 || scene.height() <= 0 || scene.channels() <= 0) {
    throw std::invalid_argument("ShardRouter::submit: empty scene");
  }
  if (shut_down_.load(std::memory_order_acquire)) {
    throw QueueClosed();
  }

  // Fleet-level shedding: refuse up front when no shard could take the
  // scene — every live shard is over the overload watermark (or none is
  // live). Cheap (latest-heartbeat reads), so it runs before hashing the
  // pixels.
  if (config_.shed_queue_depth > 0) {
    bool any_open = false;
    for (const auto& shard : shards_) {
      const std::scoped_lock lock(shard->mutex);
      if (shard->healthy && shard->accepting &&
          shard->queue_depth <= config_.shed_queue_depth) {
        any_open = true;
        break;
      }
    }
    if (!any_open) {
      {
        const std::scoped_lock lock(stats_mutex_);
        ++counters_.rejected;
      }
      throw AdmissionRejected(
          "ShardRouter: all shards over the overload watermark");
    }
  }

  auto state = std::make_shared<detail::RemoteTicketState>();
  state->request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  state->options = options;
  if (state->options.trace_id == 0) {
    // Fleet-wide trace identity: the worker's trace reuses this id, so one
    // number finds a slow request on both tiers.
    state->options.trace_id = obs::TraceContext::next_id();
  }
  state->key = hash_scene(scene);
  state->scene = std::move(scene);
  state->cancellation = ctx.cancellation();

  {
    const std::scoped_lock lock(queue_mutex_);
    if (closed_) throw QueueClosed();
    if (queue_.size() >= config_.queue_capacity) {
      {
        const std::scoped_lock stats_lock(stats_mutex_);
        ++counters_.rejected;
      }
      throw AdmissionRejected("ShardRouter: dispatch queue full");
    }
    queue_.push_back(state);
    {
      const std::scoped_lock stats_lock(stats_mutex_);
      ++counters_.submitted;
    }
  }
  queue_cv_.notify_one();
  return ShardTicket(std::move(state));
}

img::ImageU8 ShardRouter::classify_scene(const img::ImageU8& scene_rgb) {
  return submit(scene_rgb).get();
}

void ShardRouter::shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  {
    const std::scoped_lock lock(queue_mutex_);
    closed_ = true;
  }
  queue_cv_.notify_all();
  dispatchers_.clear();  // jthread join; dispatchers drain the queue first
  if (heartbeat_.joinable()) heartbeat_.join();
}

bool ShardRouter::wait_for_healthy(int count,
                                   std::chrono::milliseconds timeout) {
  // Startup aid, so it polls real time: a frozen VirtualClock would make
  // "wait for workers to come up" undecidable otherwise.
  const auto give_up = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    int up = 0;
    for (const auto& shard : shards_) {
      const std::scoped_lock lock(shard->mutex);
      if (shard->healthy && shard->heartbeats_ok > 0) ++up;
    }
    if (up >= count) return true;
    if (std::chrono::steady_clock::now() >= give_up) return false;
    if (shut_down_.load(std::memory_order_acquire)) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

ShardRouterStats ShardRouter::stats() const {
  ShardRouterStats out;
  {
    const std::scoped_lock lock(stats_mutex_);
    out = counters_;
  }
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    ShardState state;
    state.endpoint = shard->endpoint;
    state.healthy = shard->healthy;
    state.accepting = shard->accepting;
    state.consecutive_failures = shard->consecutive_failures;
    state.queue_depth = shard->queue_depth;
    state.dispatched = shard->dispatched;
    state.heartbeats_ok = shard->heartbeats_ok;
    state.heartbeats_failed = shard->heartbeats_failed;
    state.redial_attempts = shard->redial_attempts;
    state.uptime_seconds = shard->last_uptime;
    state.brownout_active = shard->brownout_active;
    state.stats = shard->last_stats;
    out.shards.push_back(std::move(state));
  }
  return out;
}

std::vector<int> ShardRouter::placement(const SceneKey& key) const {
  // Rendezvous: score every shard against the scene's content hash; the
  // descending score order is the scene's failover order. Stable across
  // routers and across shard-set edits (only scenes whose winner changed
  // move).
  struct Scored {
    std::uint64_t score;
    int index;
  };
  std::vector<Scored> scored;
  scored.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    util::Fnv128 hash;
    hash.update_le(shards_[i]->id_hash);
    hash.update_le(key.hash_lo);
    hash.update_le(key.hash_hi);
    scored.push_back(Scored{hash.lo, static_cast<int>(i)});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.index < b.index;
  });
  std::vector<int> order;
  order.reserve(scored.size());
  for (const auto& s : scored) order.push_back(s.index);
  return order;
}

std::vector<std::optional<MetricsResponse>> ShardRouter::scrape_metrics() {
  // A scrape is rare and tolerant, so it always dials fresh instead of
  // borrowing pooled dispatch connections; a failed shard yields nullopt
  // (callers render a hole in the fleet table, they do not throw).
  std::vector<std::optional<MetricsResponse>> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const auto deadline = clock_->now() + config_.heartbeat_timeout;
    try {
      net::Connection connection =
          net::connect(shard->endpoint, clock_, deadline);
      connection.write_frame(net::MsgType::kMetricsRequest, {}, deadline);
      net::Frame frame = connection.read_frame(deadline);
      if (frame.type != net::MsgType::kMetricsResponse) {
        throw net::WireError("unexpected frame type in metrics response");
      }
      out.emplace_back(decode_metrics_response(frame.payload));
    } catch (const net::TransportError&) {
      out.emplace_back(std::nullopt);
    } catch (const net::WireError&) {
      out.emplace_back(std::nullopt);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void ShardRouter::dispatcher_loop() {
  for (;;) {
    std::shared_ptr<detail::RemoteTicketState> ticket;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      ticket = std::move(queue_.front());
      queue_.pop_front();
      if (closed_) {
        // Shutdown: fail the popped request instead of dispatching it —
        // the SceneServer contract for work caught in a closing queue.
        lock.unlock();
        {
          const std::scoped_lock stats_lock(stats_mutex_);
          ++counters_.failed;
        }
        ticket->resolve_error(std::make_exception_ptr(
            QueueClosed()));
        continue;
      }
    }
    if (ticket->cancelled()) {
      {
        const std::scoped_lock lock(stats_mutex_);
        ++counters_.cancelled;
      }
      ticket->resolve_error(std::make_exception_ptr(
          par::OperationCancelled("ShardRouter dispatch")));
      continue;
    }
    dispatch(ticket);
  }
}

void ShardRouter::dispatch(
    const std::shared_ptr<detail::RemoteTicketState>& ticket) {
  // Placement -> final outcome, failovers included: observed on every exit
  // path, so the histogram's count matches dispatch attempts 1:1.
  struct ObserveDispatch {
    const util::Clock* clock;
    util::Clock::time_point begin;
    obs::Histogram* histogram;
    ~ObserveDispatch() {
      histogram->observe(
          std::chrono::duration<double>(clock->now() - begin).count());
    }
  } observe_dispatch{clock_, clock_->now(), obs_.dispatch};
  const std::vector<int> order = placement(ticket->key);

  // Candidate pass 1: healthy, accepting, under the overload watermark.
  // Pass 2 relaxes the watermark (better a slow answer than none), pass 3
  // relaxes health too — a quarantined shard may have recovered before the
  // prober noticed, and a failed attempt there costs one round-trip error.
  std::vector<int> candidates;
  for (int pass = 0; pass < 3 && candidates.empty(); ++pass) {
    for (int index : order) {
      Shard& shard = *shards_[static_cast<std::size_t>(index)];
      const std::scoped_lock lock(shard.mutex);
      if (pass < 2 && (!shard.healthy || !shard.accepting)) continue;
      if (pass < 1 && config_.shed_queue_depth > 0 &&
          shard.queue_depth > config_.shed_queue_depth) {
        continue;
      }
      candidates.push_back(index);
    }
  }

  const int budget =
      std::min(static_cast<int>(candidates.size()), 1 + config_.max_failovers);
  std::string last_error = "no shard available";
  bool last_was_rejection = false;  // classifies the budget-exhausted tail
  for (int attempt = 0; attempt < budget; ++attempt) {
    if (ticket->cancelled()) {
      {
        const std::scoped_lock lock(stats_mutex_);
        ++counters_.cancelled;
      }
      ticket->resolve_error(std::make_exception_ptr(
          par::OperationCancelled("ShardRouter dispatch")));
      return;
    }
    Shard& shard = *shards_[static_cast<std::size_t>(
        candidates[static_cast<std::size_t>(attempt)])];
    if (attempt > 0) {
      {
        const std::scoped_lock lock(stats_mutex_);
        ++counters_.failovers;
      }
      obs_.failovers->add();
      LOG_WARN_C("router") << "failover " << attempt << "/"
                           << (budget - 1) << " for request "
                           << ticket->request_id << " -> "
                           << shard.endpoint.to_string() << " (last: "
                           << last_error << ")";
    }
    SubmitResponse response;
    try {
      response = round_trip(shard, ticket);
    } catch (const net::WireError& error) {
      last_error = error.what();
      last_was_rejection = false;
      record_failure(shard);
      {
        const std::scoped_lock lock(stats_mutex_);
        ++counters_.dispatch_errors;
      }
      continue;  // failover: next shard in rendezvous order
    } catch (const net::TransportError& error) {
      last_error = error.what();
      last_was_rejection = false;
      record_failure(shard);
      {
        const std::scoped_lock lock(stats_mutex_);
        ++counters_.dispatch_errors;
      }
      continue;
    }
    record_success(shard);

    // Cancel contract: a request already on the wire completes remotely but
    // resolves cancelled on return — the caller must never observe a
    // successful result after cancel().
    if (ticket->cancelled()) {
      {
        const std::scoped_lock lock(stats_mutex_);
        ++counters_.cancelled;
      }
      ticket->resolve_error(std::make_exception_ptr(
          par::OperationCancelled("ShardRouter dispatch")));
      return;
    }

    // Counters bump before the ticket resolves: a caller returning from
    // get() must already see its outcome in stats().
    switch (response.outcome) {
      case Outcome::kOk: {
        {
          const std::scoped_lock lock(stats_mutex_);
          ++counters_.completed;
          if (response.degraded) ++counters_.degraded;
        }
        ticket->resolve_value(std::move(response.plane), response.degraded);
        return;
      }
      case Outcome::kRejected: {
        // The worker's own admission refused it — overloaded or draining.
        // That is exactly what failover is for; only when every candidate
        // refuses does the rejection reach the caller.
        last_error = response.error.empty() ? "shard rejected submission"
                                            : response.error;
        last_was_rejection = true;
        continue;
      }
      case Outcome::kShed: {
        // Deadline passed at the worker; another shard cannot un-miss it.
        {
          const std::scoped_lock lock(stats_mutex_);
          ++counters_.shed;
        }
        ticket->resolve_error(std::make_exception_ptr(DeadlineExceeded(
            response.error.empty() ? "shed by shard" : response.error)));
        return;
      }
      case Outcome::kCancelled: {
        {
          const std::scoped_lock lock(stats_mutex_);
          ++counters_.cancelled;
        }
        ticket->resolve_error(std::make_exception_ptr(
            par::OperationCancelled("shard-side cancellation")));
        return;
      }
      case Outcome::kFailed: {
        {
          const std::scoped_lock lock(stats_mutex_);
          ++counters_.failed;
        }
        ticket->resolve_error(std::make_exception_ptr(std::runtime_error(
            "shard failure: " +
            (response.error.empty() ? "unknown" : response.error))));
        return;
      }
    }
  }

  // Budget exhausted: every candidate failed or refused. Admission
  // refusals count as rejected (matching the AdmissionRejected thrown from
  // get()); transport/wire breakage counts as failed.
  {
    const std::scoped_lock lock(stats_mutex_);
    if (last_was_rejection) {
      ++counters_.rejected;
    } else {
      ++counters_.failed;
    }
  }
  ticket->resolve_error(std::make_exception_ptr(AdmissionRejected(
      "ShardRouter: dispatch failed on all shards: " + last_error)));
}

SubmitResponse ShardRouter::round_trip(
    Shard& shard, const std::shared_ptr<detail::RemoteTicketState>& ticket) {
  const auto deadline = clock_->now() + config_.request_timeout;

  // Reuse a pooled connection when one is idle; otherwise dial. A
  // connection that throws anywhere below is simply dropped (its
  // destructor closes the socket) — the pool only ever holds sockets whose
  // last exchange completed cleanly.
  net::Connection connection;
  {
    const std::scoped_lock lock(shard.mutex);
    if (!shard.idle.empty()) {
      connection = std::move(shard.idle.back());
      shard.idle.pop_back();
    }
  }
  if (!connection.valid()) {
    connection = net::connect(shard.endpoint, clock_, deadline);
  }

  SubmitRequest request;
  request.request_id = ticket->request_id;
  request.options = ticket->options;
  request.scene = ticket->scene;
  const auto wire_begin = clock_->now();
  connection.write_frame(net::MsgType::kSubmitRequest, encode(request),
                         deadline);
  {
    const std::scoped_lock lock(shard.mutex);
    ++shard.dispatched;
  }
  obs_.dispatched->add();

  net::Frame frame = connection.read_frame(deadline);
  obs_.wire_roundtrip->observe(
      std::chrono::duration<double>(clock_->now() - wire_begin).count());
  if (frame.type != net::MsgType::kSubmitResponse) {
    throw net::WireError("unexpected frame type in submit response");
  }
  SubmitResponse response = decode_submit_response(frame.payload);
  if (response.request_id != ticket->request_id) {
    throw net::WireError("submit response id mismatch");
  }

  {
    const std::scoped_lock lock(shard.mutex);
    shard.idle.push_back(std::move(connection));
  }
  return response;
}

// ---------------------------------------------------------------------------
// Health
// ---------------------------------------------------------------------------

void ShardRouter::heartbeat_loop() {
  // Every tick, probe exactly the shards whose next_probe_at has arrived
  // on the injected clock. Healthy shards are due every heartbeat_period;
  // a quarantined shard's probes space out under capped exponential
  // backoff (probe() schedules it), so a dead TCP endpoint is re-dialed a
  // handful of times per redial_cap, not once per tick. Default
  // next_probe_at is the epoch, so the first round still probes everything
  // immediately and wait_for_healthy() resolves as soon as workers bind.
  // Sleeps are real-time ticks with a stop check — due-ness rides the
  // injected clock, the polling cadence does not need to.
  constexpr std::chrono::milliseconds kTick{10};
  while (!shut_down_.load(std::memory_order_acquire)) {
    for (const auto& shard : shards_) {
      if (shut_down_.load(std::memory_order_acquire)) return;
      bool due;
      {
        const std::scoped_lock lock(shard->mutex);
        due = clock_->now() >= shard->next_probe_at;
      }
      if (due) probe(*shard);
    }
    std::this_thread::sleep_for(
        std::min<std::chrono::milliseconds>(kTick, config_.heartbeat_period));
  }
}

std::chrono::milliseconds ShardRouter::redial_delay(const Shard& shard,
                                                    int attempt) const {
  // Capped exponential: base * 2^(attempt-1), <= cap ...
  const int shift = std::min(attempt - 1, 20);
  const auto backoff = std::min<std::chrono::milliseconds>(
      config_.redial_base * (1LL << shift), config_.redial_cap);
  // ... plus deterministic jitter (<= 25% of the delay) derived from the
  // shard identity and the attempt number: reproducible in tests, yet
  // different shards (and successive attempts) desynchronize instead of
  // re-dialing a rebooting worker in lockstep.
  util::Fnv128 hash;
  hash.update_le(shard.id_hash);
  hash.update_le(static_cast<std::uint64_t>(attempt));
  const auto span = static_cast<std::uint64_t>(backoff.count()) / 4 + 1;
  return backoff + std::chrono::milliseconds(hash.lo % span);
}

void ShardRouter::probe(Shard& shard) {
  const auto deadline = clock_->now() + config_.heartbeat_timeout;
  net::Connection connection;
  {
    const std::scoped_lock lock(shard.mutex);
    connection = std::move(shard.heartbeat);
  }
  try {
    if (!connection.valid()) {
      connection = net::connect(shard.endpoint, clock_, deadline);
    }
    connection.write_frame(net::MsgType::kHeartbeatRequest, {}, deadline);
    net::Frame frame = connection.read_frame(deadline);
    if (frame.type != net::MsgType::kHeartbeatResponse) {
      throw net::WireError("unexpected frame type in heartbeat response");
    }
    HeartbeatResponse heartbeat = decode_heartbeat_response(frame.payload);
    bool restarted = false;
    {
      const std::scoped_lock lock(shard.mutex);
      shard.heartbeat = std::move(connection);
      shard.queue_depth = heartbeat.queue_depth;
      shard.accepting = heartbeat.accepting;
      shard.last_stats = heartbeat.stats;
      // Uptime running backwards = a different process answered: the
      // worker restarted (cold cache, zeroed counters), it did not merely
      // recover from a network blip.
      restarted = shard.last_uptime >= 0.0 &&
                  heartbeat.uptime_seconds < shard.last_uptime;
      shard.last_uptime = heartbeat.uptime_seconds;
      shard.brownout_active = heartbeat.brownout_active;
      ++shard.heartbeats_ok;
      shard.redial_attempts = 0;
      shard.next_probe_at = clock_->now() + config_.heartbeat_period;
    }
    const bool rejoined = record_success(shard);
    if (rejoined || restarted) {
      LOG_WARN_C("router")
          << "shard " << shard.endpoint.to_string()
          << (restarted ? " RESTARTED (uptime reset, caches cold)"
                        : " recovered (same process, caches warm)")
          << (rejoined ? ", leaving quarantine" : "")
          << (heartbeat.brownout_active ? ", brownout active" : "");
    }
  } catch (const net::TransportError&) {
    {
      const std::scoped_lock lock(shard.mutex);
      ++shard.heartbeats_failed;
    }
    record_failure(shard);
    schedule_reprobe(shard);
  } catch (const net::WireError&) {
    {
      const std::scoped_lock lock(shard.mutex);
      ++shard.heartbeats_failed;
    }
    record_failure(shard);
    schedule_reprobe(shard);
  }
}

void ShardRouter::schedule_reprobe(Shard& shard) {
  // After record_failure() so the quarantine transition (if this probe
  // tripped it) is already visible: a still-healthy shard keeps the plain
  // heartbeat cadence; a quarantined one backs off exponentially.
  const std::scoped_lock lock(shard.mutex);
  if (shard.healthy) {
    shard.redial_attempts = 0;
    shard.next_probe_at = clock_->now() + config_.heartbeat_period;
    return;
  }
  ++shard.redial_attempts;
  shard.next_probe_at =
      clock_->now() + redial_delay(shard, shard.redial_attempts);
}

bool ShardRouter::record_success(Shard& shard) {
  bool recovered = false;
  {
    const std::scoped_lock lock(shard.mutex);
    shard.consecutive_failures = 0;
    if (!shard.healthy) {
      shard.healthy = true;
      recovered = true;
    }
  }
  if (recovered) {
    const std::scoped_lock lock(stats_mutex_);
    ++counters_.recoveries;
  }
  return recovered;
}

void ShardRouter::record_failure(Shard& shard) {
  bool quarantined = false;
  std::vector<net::Connection> stale;
  {
    const std::scoped_lock lock(shard.mutex);
    ++shard.consecutive_failures;
    if (shard.healthy &&
        shard.consecutive_failures >= config_.quarantine_failures) {
      shard.healthy = false;
      quarantined = true;
      // A quarantined shard's pooled sockets are suspect — drop them so
      // recovery dials fresh.
      stale.swap(shard.idle);
      shard.heartbeat.close();
    }
  }
  if (quarantined) {
    {
      const std::scoped_lock lock(stats_mutex_);
      ++counters_.quarantines;
    }
    LOG_WARN_C("router") << "shard " << shard.endpoint.to_string()
                         << " quarantined after "
                         << config_.quarantine_failures
                         << " consecutive failures";
  }
}

}  // namespace polarice::core::serve::shard
