#include "core/serve/cache_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string_view>
#include <utility>

#include "util/hash.h"

namespace polarice::core::serve {
namespace {

namespace fs = std::filesystem;

// "POLARICE" — distinguishes a segment from any other file at byte 0.
constexpr std::uint64_t kSegmentMagic = 0x504f4c4152494345ULL;
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint32_t kEntryMagic = 0x49434531u;  // "ICE1"
constexpr char kSegmentSuffix[] = ".ice";
constexpr char kTmpSuffix[] = ".tmp";

// On-disk layout, all fields little-endian. Serialized field by field (not
// memcpy'd structs) so the format has no padding and no host-layout
// dependence.
//
// Segment header (40 bytes):
//   u64 magic | u32 version | u32 reserved(0) | u64 fingerprint |
//   u64 entry_count | u64 header_check = fnv64(preceding 32 bytes)
// Entry header (64 bytes):
//   u32 entry_magic | u32 width | u32 height | u32 channels |
//   u64 hash_lo | u64 hash_hi | u64 payload_len |
//   u64 payload_check_lo | u64 payload_check_hi |
//   u64 meta_check = fnv64(preceding 56 bytes)
// followed by payload_len payload bytes.
constexpr std::size_t kSegmentHeaderBytes = 40;
constexpr std::size_t kEntryHeaderBytes = 64;

void put_u32(std::uint8_t* out, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void put_u64(std::uint8_t* out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint32_t get_u32(const std::uint8_t* in) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{in[i]} << (8 * i);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* in) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{in[i]} << (8 * i);
  return v;
}

std::string errno_text() { return std::strerror(errno); }

/// Read-only mmap of one whole file, unmapped on destruction. An empty
/// file maps to data()==nullptr, size()==0.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      throw CacheStoreError("open " + path + ": " + errno_text());
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      const std::string why = errno_text();
      ::close(fd);
      throw CacheStoreError("fstat " + path + ": " + why);
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ > 0) {
      void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (map == MAP_FAILED) {
        const std::string why = errno_text();
        ::close(fd);
        throw CacheStoreError("mmap " + path + ": " + why);
      }
      data_ = static_cast<const std::uint8_t*>(map);
    }
    ::close(fd);
  }
  ~MappedFile() {
    if (data_ != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(data_), size_);
    }
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

void fsync_or_throw(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    throw CacheStoreError("fsync " + what + ": " + errno_text());
  }
}

/// fsync on the directory itself, making a completed rename durable.
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    throw CacheStoreError("open dir " + dir + ": " + errno_text());
  }
  try {
    fsync_or_throw(fd, dir);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

/// Parses "seg-<n>.ice" → n; nullopt for anything else.
std::optional<std::uint64_t> segment_seq(const std::string& name) {
  constexpr std::string_view prefix = "seg-";
  if (name.size() <= prefix.size() + 4 || name.rfind(prefix, 0) != 0 ||
      !name.ends_with(kSegmentSuffix)) {
    return std::nullopt;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = prefix.size(); i < name.size() - 4; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return seq;
}

}  // namespace

void CacheStoreConfig::validate() const {
  if (dir.empty()) {
    throw std::invalid_argument("CacheStoreConfig: empty dir");
  }
  if (max_entry_bytes == 0) {
    throw std::invalid_argument("CacheStoreConfig: max_entry_bytes == 0");
  }
  if (compact_threshold < 2) {
    throw std::invalid_argument("CacheStoreConfig: compact_threshold < 2");
  }
}

CacheStore::CacheStore(CacheStoreConfig config) : config_(std::move(config)) {
  config_.validate();
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec) {
    throw CacheStoreError("create " + config_.dir + ": " + ec.message());
  }

  // Pidfile under flock: exclusivity against live processes only. The lock
  // vanishes with the holder's last fd, so a SIGKILLed owner leaves the
  // directory openable; the pid recorded inside is purely diagnostic.
  const std::string lock_path = config_.dir + "/LOCK";
  lock_fd_ = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) {
    throw CacheStoreError("open " + lock_path + ": " + errno_text());
  }
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    long holder = 0;
    char buf[32] = {};
    if (::pread(lock_fd_, buf, sizeof(buf) - 1, 0) > 0) {
      holder = std::strtol(buf, nullptr, 10);
    }
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw CacheStoreLocked(config_.dir, holder);
  }
  char pid_text[32];
  const int n = std::snprintf(pid_text, sizeof(pid_text), "%ld\n",
                              static_cast<long>(::getpid()));
  if (::ftruncate(lock_fd_, 0) != 0 ||
      ::pwrite(lock_fd_, pid_text, static_cast<std::size_t>(n), 0) != n) {
    const std::string why = errno_text();
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw CacheStoreError("write " + lock_path + ": " + why);
  }

  load_segments();
}

CacheStore::~CacheStore() {
  if (lock_fd_ >= 0) ::close(lock_fd_);  // drops the flock
}

void CacheStore::load_segments() {
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator(config_.dir, ec)) {
    const std::string name = dirent.path().filename().string();
    if (name.ends_with(kTmpSuffix)) {
      // Leftover from a flush that died before its rename: by construction
      // nothing ever referenced it, so deleting it is always safe.
      fs::remove(dirent.path(), ec);
      continue;
    }
    if (const auto seq = segment_seq(name)) {
      segments.emplace_back(*seq, dirent.path().string());
      next_segment_ = std::max(next_segment_, *seq + 1);
    }
  }
  std::sort(segments.begin(), segments.end());

  for (const auto& [seq, path] : segments) {
    load_one_segment(path);
  }
  for (const auto& entry : loaded_) {
    known_.insert(entry.key);
  }
  stats_.loaded = loaded_.size();

  if (segments.size() >= config_.compact_threshold) {
    std::vector<std::string> paths;
    paths.reserve(segments.size());
    for (auto& [seq, path] : segments) paths.push_back(std::move(path));
    compact(std::move(paths));
  } else {
    for (const auto& [seq, path] : segments) {
      std::error_code size_ec;
      const auto bytes = fs::file_size(path, size_ec);
      if (!size_ec) stats_.bytes_on_disk += static_cast<std::size_t>(bytes);
    }
  }
}

void CacheStore::load_one_segment(const std::string& path) {
  std::optional<MappedFile> map;
  try {
    map.emplace(path);
  } catch (const CacheStoreError&) {
    // Unreadable file (permissions, truncated-to-unstatable race): treat as
    // one corrupt unit and move on — open must always succeed.
    ++stats_.corrupt;
    return;
  }
  const std::uint8_t* base = map->data();
  const std::size_t size = map->size();

  if (size < kSegmentHeaderBytes) {
    ++stats_.corrupt;
    std::error_code ec;
    fs::remove(path, ec);
    return;
  }
  const std::uint64_t header_check = util::fnv64(base, 32);
  if (get_u64(base + 32) != header_check || get_u64(base) != kSegmentMagic) {
    ++stats_.corrupt;
    std::error_code ec;
    fs::remove(path, ec);
    return;
  }
  if (get_u32(base + 8) != kFormatVersion ||
      get_u64(base + 16) != config_.fingerprint) {
    // Valid segment from another format or serving configuration: stale.
    // Unlink it — its planes must never answer for this configuration.
    ++stats_.stale;
    std::error_code ec;
    fs::remove(path, ec);
    return;
  }
  const std::uint64_t declared_entries = get_u64(base + 24);

  std::size_t offset = kSegmentHeaderBytes;
  std::uint64_t decoded = 0;
  while (decoded < declared_entries) {
    if (size - offset < kEntryHeaderBytes) {
      ++stats_.corrupt;  // truncated tail
      return;
    }
    const std::uint8_t* h = base + offset;
    // The meta checksum covers every field the decoder is about to trust —
    // including payload_len. A corrupted header therefore cannot steer the
    // scan: the remainder of the segment is undecodable and is dropped
    // whole rather than resynchronized from untrusted lengths.
    if (get_u64(h + 56) != util::fnv64(h, 56) ||
        get_u32(h) != kEntryMagic) {
      ++stats_.corrupt;
      return;
    }
    SceneKey key;
    key.width = static_cast<int>(get_u32(h + 4));
    key.height = static_cast<int>(get_u32(h + 8));
    key.channels = static_cast<int>(get_u32(h + 12));
    key.hash_lo = get_u64(h + 16);
    key.hash_hi = get_u64(h + 24);
    const std::uint64_t payload_len = get_u64(h + 32);
    const std::uint64_t check_lo = get_u64(h + 40);
    const std::uint64_t check_hi = get_u64(h + 48);
    offset += kEntryHeaderBytes;

    if (payload_len > config_.max_entry_bytes || payload_len > size - offset ||
        key.width <= 0 || key.height <= 0 ||
        payload_len != std::uint64_t{1} * static_cast<std::uint64_t>(key.width) *
                           static_cast<std::uint64_t>(key.height)) {
      ++stats_.corrupt;
      return;
    }
    const std::uint8_t* payload = base + offset;
    offset += payload_len;
    ++decoded;

    const util::Fnv128 digest =
        util::fnv128(payload, static_cast<std::size_t>(payload_len));
    if (digest.lo != check_lo || digest.hi != check_hi) {
      // Damage confined to this entry's payload; the next header is intact
      // (its own checksum will say), so skip exactly this entry.
      ++stats_.corrupt;
      continue;
    }
    if (known_.contains(key)) continue;  // later segment already supplied it
    known_.insert(key);

    img::ImageU8 plane(key.width, key.height, 1);
    std::memcpy(plane.data(), payload, static_cast<std::size_t>(payload_len));
    loaded_.push_back(Entry{key, std::move(plane)});
  }
  if (offset != size) {
    ++stats_.corrupt;  // trailing garbage beyond the declared entries
  }
}

bool CacheStore::append(const SceneKey& key, const img::ImageU8& plane) {
  if (plane.channels() != 1 || plane.width() != key.width ||
      plane.height() != key.height) {
    // A plane that disagrees with its key must never become durable.
    throw CacheStoreError("append: plane geometry does not match key");
  }
  const std::scoped_lock lock(mutex_);
  if (known_.contains(key)) return false;
  known_.insert(key);
  pending_bytes_ += kEntryHeaderBytes + plane.size();
  pending_.push_back(Entry{key, plane.clone()});
  ++stats_.appended;
  return true;
}

std::size_t CacheStore::pending_bytes() const {
  const std::scoped_lock lock(mutex_);
  return pending_bytes_;
}

void CacheStore::flush() {
  std::vector<Entry> batch;
  std::uint64_t seq = 0;
  {
    const std::scoped_lock lock(mutex_);
    if (pending_.empty()) return;
    batch.swap(pending_);
    pending_bytes_ = 0;
    seq = next_segment_++;
  }
  std::size_t segment_bytes = 0;
  try {
    segment_bytes = write_segment(seq, batch);
  } catch (...) {
    // Put the batch back so a transient I/O failure (disk full) loses
    // nothing; the next flush retries into a fresh segment name.
    const std::scoped_lock lock(mutex_);
    for (auto& entry : batch) {
      pending_bytes_ += kEntryHeaderBytes + entry.plane.size();
      pending_.push_back(std::move(entry));
    }
    throw;
  }
  const std::scoped_lock lock(mutex_);
  stats_.flushed += batch.size();
  ++stats_.flushes;
  stats_.bytes_on_disk += segment_bytes;
}

std::size_t CacheStore::write_segment(std::uint64_t seq,
                                      const std::vector<Entry>& entries) {
  const std::string final_path =
      config_.dir + "/seg-" + std::to_string(seq) + kSegmentSuffix;
  const std::string tmp_path = final_path + kTmpSuffix;

  std::vector<std::uint8_t> buffer;
  std::size_t total = kSegmentHeaderBytes;
  for (const auto& entry : entries) total += kEntryHeaderBytes + entry.plane.size();
  buffer.resize(total);

  std::uint8_t* out = buffer.data();
  put_u64(out, kSegmentMagic);
  put_u32(out + 8, kFormatVersion);
  put_u32(out + 12, 0);
  put_u64(out + 16, config_.fingerprint);
  put_u64(out + 24, entries.size());
  put_u64(out + 32, util::fnv64(out, 32));
  out += kSegmentHeaderBytes;

  for (const auto& entry : entries) {
    const std::size_t payload_len = entry.plane.size();
    const util::Fnv128 digest = util::fnv128(entry.plane.data(), payload_len);
    put_u32(out, kEntryMagic);
    put_u32(out + 4, static_cast<std::uint32_t>(entry.key.width));
    put_u32(out + 8, static_cast<std::uint32_t>(entry.key.height));
    put_u32(out + 12, static_cast<std::uint32_t>(entry.key.channels));
    put_u64(out + 16, entry.key.hash_lo);
    put_u64(out + 24, entry.key.hash_hi);
    put_u64(out + 32, payload_len);
    put_u64(out + 40, digest.lo);
    put_u64(out + 48, digest.hi);
    put_u64(out + 56, util::fnv64(out, 56));
    out += kEntryHeaderBytes;
    std::memcpy(out, entry.plane.data(), payload_len);
    out += payload_len;
  }

  const int fd = ::open(tmp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw CacheStoreError("open " + tmp_path + ": " + errno_text());
  }
  try {
    std::size_t written = 0;
    while (written < buffer.size()) {
      const ssize_t n =
          ::write(fd, buffer.data() + written, buffer.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw CacheStoreError("write " + tmp_path + ": " + errno_text());
      }
      written += static_cast<std::size_t>(n);
    }
    fsync_or_throw(fd, tmp_path);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const std::string why = errno_text();
    ::unlink(tmp_path.c_str());
    throw CacheStoreError("rename " + final_path + ": " + why);
  }
  fsync_dir(config_.dir);
  return buffer.size();
}

void CacheStore::compact(std::vector<std::string> old_segments) {
  // Rewrite every surviving entry into one fresh segment, then unlink the
  // fragments. Runs during construction, pre-sharing — no lock needed.
  // Crash-safe at every step: the new segment lands by atomic rename before
  // any old one is removed, and re-loading duplicated entries is harmless
  // (first key occurrence wins).
  const std::uint64_t seq = next_segment_++;
  std::size_t segment_bytes = 0;
  if (!loaded_.empty()) {
    segment_bytes = write_segment(seq, loaded_);
  }
  for (const auto& path : old_segments) {
    std::error_code ec;
    fs::remove(path, ec);
  }
  if (!old_segments.empty()) fsync_dir(config_.dir);
  stats_.bytes_on_disk = segment_bytes;
}

std::vector<CacheStore::Entry> CacheStore::take_loaded() {
  const std::scoped_lock lock(mutex_);
  return std::exchange(loaded_, {});
}

CacheStoreStats CacheStore::stats() const {
  const std::scoped_lock lock(mutex_);
  CacheStoreStats out = stats_;
  out.pending = pending_.size();
  return out;
}

}  // namespace polarice::core::serve
