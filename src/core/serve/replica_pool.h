#pragma once
// ReplicaPool — the replica-lease discipline that used to live inside
// InferenceSession, extracted so both the session and the SceneServer share
// one implementation, and extended with elastic sizing.
//
// The pool owns `size()` U-Net replicas (weights cloned once from the
// source model, which is not retained). A Lease removes one replica from
// the free list for its whole scope; further acquirers block on a condition
// variable until a replica frees up. Replica weights are never mutated
// after cloning, so a leased replica is safe to run forward passes on from
// any one thread at a time.
//
// Elasticity: the pool starts at `initial` replicas and may grow on demand
// up to `max_size` when acquire(/*allow_grow=*/true) finds no free replica
// (SceneServer's queue-depth-driven scale-up). shrink() retires free
// replicas back down to a floor (idle scale-down). Growth clones from an
// existing replica: forward passes only write a model's private caches,
// never its parameters, so cloning while other replicas serve is safe.
//
// Failure handling: a worker that watches its replica misbehave (forward
// pass threw — possibly via an injected fault) calls Lease::mark_failed();
// the ending lease then routes the replica to a quarantine list instead of
// the free list, so the suspect weights/caches can never serve another
// batch. A watchdog calls repair() to destroy quarantined corpses and clone
// replacements from a healthy source. The pool keeps one pristine master
// clone (never leased, not counted in size()) as the rebuild source of last
// resort, so recovery works even when every serving replica died at once.
//
// Telemetry: the pool tracks how long acquirers waited for a free replica,
// the peak number of concurrently leased replicas, the peak pool size, and
// cumulative quarantine/rebuild counts.

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/unet.h"
#include "util/virtual_clock.h"

namespace polarice::core::serve {

class ReplicaPool {
 public:
  /// Clones `initial` replicas from `source` (not retained; it may be freed
  /// or keep training afterwards). The pool may later grow to `max_size`.
  /// `clock` times acquire-wait telemetry (nullptr = process clock; must
  /// outlive the pool). Throws std::invalid_argument unless
  /// 1 <= initial <= max_size.
  ReplicaPool(nn::UNet& source, int initial, int max_size,
              const util::Clock* clock = nullptr);

  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;

  /// RAII lease of one replica. Blocks until a replica is free; with
  /// allow_grow, a new replica is cloned instead of blocking whenever the
  /// pool is below max_size (the clone happens outside the pool lock, so
  /// concurrent leases/releases are not stalled by weight copying).
  class Lease {
   public:
    explicit Lease(ReplicaPool& pool, bool allow_grow = false);
    ~Lease();
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    [[nodiscard]] nn::UNet& model() noexcept { return *model_; }

    /// Marks the leased replica as failed: when this lease ends the replica
    /// is quarantined (removed from service) instead of returned to the
    /// free list. Call when a forward pass on it threw — the model's
    /// internal caches may be mid-write and its correctness can no longer
    /// be trusted.
    void mark_failed() noexcept { failed_ = true; }

   private:
    ReplicaPool& pool_;
    nn::UNet* model_;
    bool failed_ = false;
  };

  /// Grows the pool (cloning new replicas into the free list) until it
  /// holds at least min(target, max_size()) replicas — the queue-depth-
  /// driven scale-up entry point. Clones happen outside the pool lock.
  void ensure(int target);

  /// Retires free replicas until the pool holds at most
  /// max(target, leased-out count) — leased replicas are never destroyed.
  void shrink(int target);

  /// Destroys quarantined replicas and clones replacements from a healthy
  /// source (a serving replica if any survive, else the pristine master),
  /// up to max_size(). The watchdog's entry point; safe to call
  /// concurrently with acquire/ensure/shrink. Returns replicas rebuilt.
  int repair();

  [[nodiscard]] int size() const;           // replicas currently owned
  [[nodiscard]] int peak_size() const;      // high-water pool size
  [[nodiscard]] int max_size() const noexcept { return max_size_; }
  [[nodiscard]] std::size_t leases() const;       // currently leased out
  [[nodiscard]] std::size_t peak_leases() const;  // peak concurrent leases
  [[nodiscard]] double wait_seconds() const;      // summed acquire blocking
  [[nodiscard]] int quarantined() const;     // corpses awaiting repair()
  [[nodiscard]] std::size_t total_quarantined() const;  // cumulative
  [[nodiscard]] std::size_t total_rebuilt() const;      // cumulative

 private:
  nn::UNet* acquire(bool allow_grow);
  void release(nn::UNet* model);
  void quarantine(nn::UNet* model);

  /// Clones one replica and installs it in replicas_. Caller holds `lock`
  /// (on mutex_) and has verified !growing_ and size() < max_size(); the
  /// lock is released around the clone (growing_/grow_source_ latch the
  /// protocol, and are cleared even when the clone throws). Returns the
  /// new replica; the caller decides whether it goes to free_ or straight
  /// into a lease.
  nn::UNet* grow_one(std::unique_lock<std::mutex>& lock);

  const int max_size_;
  const util::Clock* clock_;
  mutable std::mutex mutex_;
  std::condition_variable free_cv_;
  std::unique_ptr<nn::UNet> master_;  // pristine; never leased or counted
  std::vector<std::unique_ptr<nn::UNet>> replicas_;  // guarded by mutex_
  std::vector<nn::UNet*> free_;                      // guarded by mutex_
  std::vector<std::unique_ptr<nn::UNet>> quarantined_;  // guarded by mutex_
  bool growing_ = false;           // one clone in flight at a time
  nn::UNet* grow_source_ = nullptr;  // shrink() must not destroy this
  std::size_t leases_ = 0;       // currently leased out
  std::size_t peak_leases_ = 0;
  int peak_size_ = 0;
  double wait_seconds_ = 0.0;
  std::size_t total_quarantined_ = 0;
  std::size_t total_rebuilt_ = 0;
};

}  // namespace polarice::core::serve
