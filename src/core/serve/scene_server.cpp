#include "core/serve/scene_server.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/stages.h"
#include "img/ops.h"
#include "s2/tiles.h"
#include "tensor/conv.h"
#include "tensor/tensor.h"

namespace polarice::core::serve {

namespace detail {

/// Shared state behind one SceneTicket. Phase ownership: the submitter
/// fills the request fields; the scheduler (exclusively) fills the prepared
/// fields before fanning tiles out through tile_mutex_ (which publishes
/// them to the workers); workers write disjoint `planes` slots and race
/// only on the atomics; the outcome fields are guarded by `m`.
struct TicketState {
  // Request (written at submit).
  img::ImageU8 scene;
  par::ExecutionContext ctx;  // cancellation + progress (+ optional pool)
  // SceneTicket::cancel() must abandon THIS scene only. The submitter's
  // context token is shared by every copy of that context (cancelling it
  // would abort sibling submissions and unrelated work), so each ticket
  // carries its own token and the server honours either.
  par::CancellationToken own_cancel;

  // SLO scheduling (written at submit, read by the batch scheduler).
  Priority priority = Priority::kNormal;
  std::optional<util::Clock::time_point> deadline;  // absolute, server clock
  int retry_budget = 0;                   // replica-failure retries allowed
  std::uint64_t seq = 0;                  // submission order (FIFO tiebreak)
  util::Clock::time_point submitted_at;   // latency telemetry
  int retries = 0;  // retry events so far; guarded by the server tile_mutex_

  // Request trace: spans appended by whichever thread runs each stage
  // (internally synchronized). Created at submit, handed to the SLO-breach
  // sampler at resolution.
  std::shared_ptr<obs::TraceContext> trace;

  [[nodiscard]] bool cancelled() const noexcept {
    return ctx.cancelled() || own_cancel.cancelled();
  }

  // Prepared by the scheduler.
  img::ImageU8 filtered;  // padded out to the tile grid
  int orig_w = 0, orig_h = 0;
  int tiles_x = 0, tiles_y = 0;
  SceneKey key;
  bool keyed = false;     // key computed (cache and/or single-flight on)
  bool cacheable = false;
  // Brownout: scheduler decided to run this scene degraded. The scene is
  // downscaled to scaled_w x scaled_h before tiling and the label plane
  // upscaled back; degraded planes are never cached or persisted.
  bool degrade = false;
  int degrade_stride = 1;
  int scaled_w = 0, scaled_h = 0;

  // Inference scatter.
  std::vector<img::ImageU8> planes;  // per-tile argmax planes
  std::atomic<int> tiles_remaining{0};

  // Outcome.
  std::atomic<bool> resolved{false};  // claimed by the resolving thread
  std::mutex m;
  std::condition_variable cv;
  bool done = false;  // guarded by m
  img::ImageU8 result;
  std::exception_ptr error;
  bool result_degraded = false;  // guarded by m

  /// At most one resolver wins the claim.
  bool claim() {
    bool expected = false;
    return resolved.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel);
  }

  void publish(img::ImageU8 plane, std::exception_ptr err,
               bool degraded_plane = false) {
    {
      const std::scoped_lock lock(m);
      result = std::move(plane);
      error = std::move(err);
      result_degraded = degraded_plane;
      done = true;
    }
    cv.notify_all();
  }
};

}  // namespace detail

using detail::TicketState;

// ---------------------------------------------------------------------------
// SceneTicket
// ---------------------------------------------------------------------------

namespace {
void require_valid(const std::shared_ptr<TicketState>& state) {
  if (!state) throw std::logic_error("SceneTicket: no shared state");
}
}  // namespace

bool SceneTicket::ready() const {
  require_valid(state_);
  const std::scoped_lock lock(state_->m);
  return state_->done;
}

void SceneTicket::wait() const {
  require_valid(state_);
  std::unique_lock lock(state_->m);
  state_->cv.wait(lock, [&] { return state_->done; });
}

bool SceneTicket::wait_for(std::chrono::milliseconds timeout) const {
  require_valid(state_);
  std::unique_lock lock(state_->m);
  return state_->cv.wait_for(lock, timeout, [&] { return state_->done; });
}

img::ImageU8 SceneTicket::get() const {
  require_valid(state_);
  std::unique_lock lock(state_->m);
  state_->cv.wait(lock, [&] { return state_->done; });
  if (state_->error) std::rethrow_exception(state_->error);
  return state_->result;
}

bool SceneTicket::degraded() const {
  require_valid(state_);
  std::unique_lock lock(state_->m);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->result_degraded;
}

void SceneTicket::cancel() const {
  require_valid(state_);
  state_->own_cancel.cancel();
}

// ---------------------------------------------------------------------------
// SceneServerConfig
// ---------------------------------------------------------------------------

const char* to_string(Priority priority) noexcept {
  switch (priority) {
    case Priority::kBatch:
      return "batch";
    case Priority::kNormal:
      return "normal";
    case Priority::kInteractive:
      return "interactive";
  }
  return "?";
}

void RetryPolicy::validate() const {
  if (max_retries < 0) {
    throw std::invalid_argument("RetryPolicy: max_retries < 0");
  }
  if (backoff_base < std::chrono::milliseconds::zero()) {
    throw std::invalid_argument("RetryPolicy: negative backoff_base");
  }
  if (backoff_cap < backoff_base) {
    throw std::invalid_argument("RetryPolicy: backoff_cap < backoff_base");
  }
}

void SceneServerConfig::validate() const {
  if (tile_size <= 0) {
    throw std::invalid_argument("SceneServerConfig: tile_size <= 0");
  }
  if (batch_tiles < 1) {
    throw std::invalid_argument("SceneServerConfig: batch_tiles < 1");
  }
  if (min_replicas < 1) {
    throw std::invalid_argument("SceneServerConfig: min_replicas < 1");
  }
  if (max_replicas < min_replicas) {
    throw std::invalid_argument(
        "SceneServerConfig: max_replicas < min_replicas");
  }
  if (max_batch_wait < std::chrono::milliseconds::zero()) {
    throw std::invalid_argument("SceneServerConfig: negative max_batch_wait");
  }
  if (scale_down_idle <= std::chrono::milliseconds::zero()) {
    throw std::invalid_argument(
        "SceneServerConfig: scale_down_idle must be positive");
  }
  if (!cache_dir.empty() && cache_bytes == 0) {
    // A persistent tier under a disabled LRU could never be read back.
    throw std::invalid_argument(
        "SceneServerConfig: cache_dir requires cache_bytes > 0");
  }
  if (!cache_dir.empty() && cache_flush_bytes == 0) {
    throw std::invalid_argument(
        "SceneServerConfig: cache_flush_bytes must be positive");
  }
  filter.validate();
  admission.validate();
  brownout.validate();
  retry.validate();
}

namespace {
const SceneServerConfig& validated(const SceneServerConfig& config,
                                   const nn::UNet& model) {
  config.validate();
  require_tile_compatible(model, config.tile_size, "SceneServer");
  return config;
}
}  // namespace

// ---------------------------------------------------------------------------
// SceneServer
// ---------------------------------------------------------------------------

SceneServer::SceneServer(nn::UNet& model, SceneServerConfig config,
                         par::ExecutionContext ctx)
    : config_(validated(config, model)),
      server_ctx_(std::move(ctx)),
      clock_(config.clock != nullptr ? config.clock : &util::system_clock()),
      filter_(config.filter),
      pool_(model, config.min_replicas, config.max_replicas, clock_),
      cache_(config.cache_bytes),
      brownout_(config.brownout, clock_),
      queue_(config.admission, clock_),
      obs_(obs::ServeInstruments::get()),
      tracer_(config.trace_capacity) {
  // Warm from the persistent tier before any server thread exists, so the
  // warmed_ set is published to the scheduler by the thread starts below.
  // A locked or unusable directory throws out of the constructor — a
  // half-durable server that silently dropped persistence would let a
  // restart drill "pass" while testing nothing.
  if (!config_.cache_dir.empty()) {
    CacheStoreConfig store_config;
    store_config.dir = config_.cache_dir;
    store_config.fingerprint = config_.cache_fingerprint;
    store_ = std::make_unique<CacheStore>(store_config);
    for (auto& entry : store_->take_loaded()) {
      cache_.insert(entry.key, entry.plane);
      warmed_.insert(entry.key);
    }
    const CacheStoreStats disk = store_->stats();
    counters_.cache_warmed = warmed_.size();
    counters_.cache_corrupt = disk.corrupt;
    counters_.cache_stale = disk.stale;
  }
  // Component gauges, sampled at registry-snapshot (scrape) time. The
  // handles unregister in ~SceneServer before the sampled components die.
  auto& registry = obs::registry();
  gauges_.push_back(registry.register_gauge("serve_inflight_scenes", [this] {
    return static_cast<double>(pending_scenes_.load(std::memory_order_relaxed));
  }));
  gauges_.push_back(registry.register_gauge(
      "serve_replicas", [this] { return static_cast<double>(pool_.size()); }));
  gauges_.push_back(registry.register_gauge("serve_replica_leases", [this] {
    return static_cast<double>(pool_.leases());
  }));
  gauges_.push_back(registry.register_gauge("serve_cache_resident_bytes", [this] {
    return static_cast<double>(cache_.stats().bytes);
  }));
  gauges_.push_back(registry.register_gauge("serve_brownout_active", [this] {
    return brownout_.active() ? 1.0 : 0.0;
  }));
  if (store_ != nullptr) {
    gauges_.push_back(
        registry.register_gauge("serve_cache_store_pending_bytes", [this] {
          return static_cast<double>(store_->pending_bytes());
        }));
  }

  scheduler_ = std::jthread([this] { scheduler_loop(); });
  workers_.reserve(static_cast<std::size_t>(config_.max_replicas));
  for (int i = 0; i < config_.max_replicas; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  watchdog_ = std::jthread([this] { watchdog_loop(); });
}

SceneServer::~SceneServer() { shutdown(); }

void SceneServer::shutdown() {
  bool expected = false;
  if (!shut_down_.compare_exchange_strong(expected, true)) return;
  queue_.close();
  if (scheduler_.joinable()) scheduler_.join();  // drains admitted scenes
  {
    const std::scoped_lock lock(tile_mutex_);
    tiles_stopping_ = true;
  }
  tile_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // All workers are joined: no finalize() can append concurrently, so this
  // flush makes every plane computed this run durable (the SIGTERM drain
  // path in tools/polarice_worker ends here).
  if (store_ != nullptr) {
    try {
      store_->flush();
    } catch (const CacheStoreError&) {
      // Best-effort at shutdown: a full disk must not turn a clean drain
      // into a crash. The planes are lost, not corrupted — the on-disk
      // format only ever gains fully-fsynced segments.
    }
  }
  // The watchdog stops after the workers: a worker draining the last tiles
  // may be blocked on a replica the watchdog has yet to rebuild.
  {
    const std::scoped_lock lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

SceneTicket SceneServer::submit(img::ImageU8 scene) {
  return submit(std::move(scene), SubmitOptions{}, par::ExecutionContext{});
}

SceneTicket SceneServer::submit(img::ImageU8 scene,
                                const par::ExecutionContext& ctx) {
  return submit(std::move(scene), SubmitOptions{}, ctx);
}

SceneTicket SceneServer::submit(img::ImageU8 scene,
                                const SubmitOptions& options,
                                const par::ExecutionContext& ctx) {
  if (scene.channels() != 3) {
    throw std::invalid_argument("SceneServer: expected RGB scene");
  }
  if (options.max_retries < -1) {
    throw std::invalid_argument("SceneServer: max_retries < -1");
  }
  const int ts = config_.tile_size;
  const bool partial = scene.width() % ts != 0 || scene.height() % ts != 0;
  if (partial && !config_.pad_partial_tiles) {
    throw std::invalid_argument(
        "SceneServer: scene size must be a tile multiple "
        "(or enable pad_partial_tiles)");
  }

  auto state = std::make_shared<TicketState>();
  state->scene = std::move(scene);
  state->ctx = ctx;
  state->orig_w = state->scene.width();
  state->orig_h = state->scene.height();
  state->priority = options.priority;
  state->submitted_at = clock_->now();
  if (options.deadline) {
    state->deadline = state->submitted_at + *options.deadline;
  } else if (ctx.deadline()) {
    state->deadline = *ctx.deadline();
  }
  state->retry_budget = options.max_retries >= 0 ? options.max_retries
                                                 : config_.retry.max_retries;
  state->seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  state->trace = std::make_shared<obs::TraceContext>(
      options.trace_id != 0 ? options.trace_id : obs::TraceContext::next_id(),
      clock_);

  // Both counts must cover the request before it is poppable: a worker
  // topping up a batch must never conclude "nothing can arrive" while this
  // scene sits in the submission queue, and stats() must never observe a
  // completed scene that was not yet submitted. Both roll back if
  // admission turns the request away.
  pending_scenes_.fetch_add(1, std::memory_order_acq_rel);
  {
    const std::scoped_lock lock(stats_mutex_);
    ++counters_.submitted;
  }
  try {
    queue_.push(state, ctx);
  } catch (const AdmissionRejected&) {
    // Mirrored here (not read back from queue_.rejected()) so snapshot()
    // returns a mutually consistent counter set under one lock.
    {
      const std::scoped_lock lock(stats_mutex_);
      --counters_.submitted;
      ++counters_.rejected;
    }
    retire_pending();
    throw;
  } catch (...) {
    {
      const std::scoped_lock lock(stats_mutex_);
      --counters_.submitted;
    }
    retire_pending();
    throw;
  }
  obs_.admitted->add();
  // Sample after the push so a submission flood is visible to the
  // controller immediately, not only once the scheduler catches up.
  sample_brownout();
  return SceneTicket(std::move(state));
}

void SceneServer::sample_brownout() {
  if (!config_.brownout.enabled) return;
  brownout_.update(queue_.depth());
  // Mirror by assignment from the controller's own consistent state (not by
  // increment) — concurrent samplers may both observe one transition.
  const BrownoutState state = brownout_.state();
  const std::scoped_lock lock(stats_mutex_);
  counters_.brownout_active = state.active;
  counters_.brownouts = state.enters;
}

img::ImageU8 SceneServer::classify_scene(const img::ImageU8& scene_rgb) {
  return submit(scene_rgb.clone()).get();
}

void SceneServer::retire_pending() {
  pending_scenes_.fetch_sub(1, std::memory_order_acq_rel);
  // Batch top-up waits on "more tiles may come"; re-evaluate.
  tile_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Scheduler side
// ---------------------------------------------------------------------------

void SceneServer::scheduler_loop() {
  for (;;) {
    auto item = queue_.pop_for(config_.scale_down_idle);
    if (!item) {
      if (queue_.closed()) return;
      // Idle tick: the queue is empty — keep feeding the brownout
      // controller so the exit hold can elapse once traffic subsides.
      sample_brownout();
      // First shed whatever expired while waiting for a worker
      // (deadlines must not depend on a worker popping the victim's tiles),
      // then — with no new request within scale_down_idle, no scene between
      // admission and tile fan-out, and no tiles waiting for a worker —
      // retire replicas above the warm floor. (Workers mid-batch still hold
      // leases; shrink() never destroys leased replicas.)
      sweep_expired();
      bool tiles_queued;
      {
        const std::scoped_lock lock(tile_mutex_);
        tiles_queued = !tiles_.empty() || !delayed_.empty();
      }
      if (!tiles_queued &&
          pending_scenes_.load(std::memory_order_acquire) == 0) {
        pool_.shrink(config_.min_replicas);
      }
      continue;
    }
    prepare(*item);
  }
}

void SceneServer::prepare(const std::shared_ptr<TicketState>& ticket) {
  TicketState& t = *ticket;
  // Queue wait: admission to scheduler pickup. Observed for every ticket —
  // the queue-wait distribution of shed work is exactly what an overload
  // post-mortem needs.
  const auto picked_up = clock_->now();
  obs_.queue_wait->observe(
      std::chrono::duration<double>(picked_up - t.submitted_at).count());
  if (t.trace != nullptr) t.trace->add_span("queue", t.submitted_at, picked_up);
  if (t.cancelled()) {
    resolve_error(ticket, std::make_exception_ptr(par::OperationCancelled(
                              "SceneServer::prepare")));
    retire_pending();
    return;
  }
  // Shed before any work — not even a cache probe for a request whose
  // submitter has already given up on the answer.
  if (t.deadline && clock_->now() > *t.deadline) {
    shed(ticket);
    retire_pending();
    return;
  }

  // Brownout decision at the last pre-work moment, on a fresh depth sample.
  // Only kBatch degrades; interactive/normal keep full quality (and the
  // existing shed/reject semantics under continued pressure).
  sample_brownout();
  const bool degrade =
      brownout_.active() && t.priority == Priority::kBatch;

  const bool use_cache = cache_.byte_budget() > 0;
  if (use_cache || config_.single_flight) {
    t.key = hash_scene(t.scene);
    t.keyed = true;
    t.cacheable = use_cache;
    // Result cache: a content-identical finished scene skips the forward
    // path entirely. Probed even for a to-be-degraded scene — a cached
    // full-quality plane is strictly better than a fresh degraded one.
    if (use_cache) {
      auto hit = cache_.lookup(t.key);
      const bool warm = hit && warmed_.contains(t.key);
      {
        // Mirror the hit/miss into the server's own counter set (the cache
        // keeps its own) so snapshot() is single-lock consistent.
        const std::scoped_lock lock(stats_mutex_);
        if (hit) {
          ++counters_.cache_hits;
          if (warm) ++counters_.warm_hits;
        } else {
          ++counters_.cache_misses;
        }
      }
      (hit ? obs_.cache_hits : obs_.cache_misses)->add();
      if (hit) {
        if (t.claim()) {
          // Counters first: a caller returning from get() must already see
          // this scene in stats().
          {
            const std::scoped_lock lock(stats_mutex_);
            ++counters_.completed;
          }
          obs_.completed->add();
          const auto resolved_at = clock_->now();
          obs_.e2e->observe(
              std::chrono::duration<double>(resolved_at - t.submitted_at)
                  .count());
          if (t.trace != nullptr) t.trace->add_span("cache", picked_up, resolved_at);
          record_trace(t, "completed");
          t.publish(std::move(*hit), nullptr);
        }
        retire_pending();
        return;
      }
    }
    if (degrade) {
      // Degraded planes never enter the cache or the single-flight table:
      // a full-quality submission must not be answered by (or coalesced
      // onto) an approximate result.
      t.cacheable = false;
    } else if (config_.single_flight && attach_or_lead(ticket)) {
      // Single-flight: a content-identical scene still mid-flight shares
      // the leader's forward passes; this ticket resolves when the leader
      // does.
      retire_pending();
      return;
    }
  }

  if (degrade) {
    t.degrade = true;
    t.degrade_stride = config_.brownout.degrade_stride;
  }
  fan_out(ticket);
  retire_pending();
}

bool SceneServer::attach_or_lead(const std::shared_ptr<TicketState>& ticket) {
  bool attached = false;
  {
    const std::scoped_lock lock(inflight_mutex_);
    auto it = inflight_.find(ticket->key);
    if (it != inflight_.end()) {
      it->second.followers.push_back(ticket);
      attached = true;
    } else {
      inflight_.emplace(ticket->key, Flight{ticket, {}});
    }
  }
  if (attached) {
    const std::scoped_lock lock(stats_mutex_);
    ++counters_.coalesced;
  }
  return attached;
}

std::vector<std::shared_ptr<TicketState>> SceneServer::take_followers(
    const std::shared_ptr<TicketState>& ticket) {
  if (!config_.single_flight || !ticket->keyed) return {};
  const std::scoped_lock lock(inflight_mutex_);
  auto it = inflight_.find(ticket->key);
  if (it == inflight_.end() || it->second.leader != ticket) return {};
  auto followers = std::move(it->second.followers);
  inflight_.erase(it);
  return followers;
}

void SceneServer::promote(
    std::vector<std::shared_ptr<TicketState>> followers) {
  std::shared_ptr<TicketState> leader;
  std::vector<std::shared_ptr<TicketState>> rest;
  for (auto& follower : followers) {
    if (leader == nullptr && !follower->cancelled()) {
      leader = std::move(follower);
      continue;
    }
    if (leader == nullptr) {
      // Cancelled before any live leader emerged; resolve it as cancelled.
      resolve_error(follower, std::make_exception_ptr(par::OperationCancelled(
                                  "SceneServer::promote")));
      continue;
    }
    rest.push_back(std::move(follower));
  }
  if (leader == nullptr) return;

  bool lead = false;
  {
    const std::scoped_lock lock(inflight_mutex_);
    auto it = inflight_.find(leader->key);
    if (it != inflight_.end()) {
      // A new submission took the hash over in the meantime — everyone
      // (including the would-be leader) attaches to it instead. Not
      // re-counted in `coalesced`: each of these tickets was already
      // counted when it first attached.
      it->second.followers.push_back(leader);
      for (auto& follower : rest) {
        it->second.followers.push_back(std::move(follower));
      }
    } else {
      inflight_.emplace(leader->key, Flight{leader, std::move(rest)});
      lead = true;
    }
  }
  // The promoted leader re-runs the forward path from the top: its own
  // scene bytes are intact (only the failed leader's were released). This
  // runs on whichever thread resolved the leader — usually an inference
  // worker — which stalls that worker for one scene-prep. Deliberate: the
  // admission queue may already be closed (shutdown drain) when a leader
  // fails, so re-queueing through the scheduler is not an option on the
  // one path that must still make progress, and leader failure is rare.
  if (lead) fan_out(leader);
}

void SceneServer::fan_out(const std::shared_ptr<TicketState>& ticket) {
  TicketState& t = *ticket;
  try {
    t.ctx.report_progress("serve.prepare", 0, 1);
    // The submitter's pool (if any) runs this scene's filter; otherwise the
    // server's. Cancellation always comes from the ticket context.
    const par::ExecutionContext filter_ctx =
        t.ctx.pool() != nullptr ? t.ctx : t.ctx.with_pool(server_ctx_.pool());
    img::ImageU8 filtered = filter_.apply(t.scene, filter_ctx);
    const int ts = config_.tile_size;
    t.scaled_w = t.orig_w;
    t.scaled_h = t.orig_h;
    if (t.degrade) {
      // Brownout: classify a stride-downscaled scene — the tile count (and
      // so the forward-pass cost) drops by ~stride^2. finalize() upscales
      // the label plane back to scene size (nearest — label-safe) and marks
      // the ticket degraded.
      const int stride = t.degrade_stride;
      t.scaled_w = std::max(1, (t.orig_w + stride - 1) / stride);
      t.scaled_h = std::max(1, (t.orig_h + stride - 1) / stride);
      filtered = img::resize_nearest(filtered, t.scaled_w, t.scaled_h);
    }
    if (t.scaled_w % ts != 0 || t.scaled_h % ts != 0) {
      filtered = img::pad_edge(filtered, (t.scaled_w + ts - 1) / ts * ts,
                               (t.scaled_h + ts - 1) / ts * ts);
    }
    t.tiles_x = filtered.width() / ts;
    t.tiles_y = filtered.height() / ts;
    t.filtered = std::move(filtered);
    t.scene = img::ImageU8();  // imagery no longer needed; free it early
    const int total = t.tiles_x * t.tiles_y;
    t.planes.resize(static_cast<std::size_t>(total));
    t.tiles_remaining.store(total, std::memory_order_release);
    t.ctx.report_progress("serve.prepare", 1, 1);

    std::size_t depth;
    {
      const std::scoped_lock lock(tile_mutex_);
      for (int i = 0; i < total; ++i) {
        push_tile(TileWork{ticket, i});
      }
      depth = tiles_.size();
    }
    tile_cv_.notify_all();

    // Queue-depth-driven scale-up: when more than one forward pass of tiles
    // is backed up, clone replicas (on this thread, off the workers' hot
    // path) so the backlog drains in parallel. ensure() caps at
    // max_replicas; idle ticks shrink back to min_replicas.
    const auto outstanding_batches =
        (depth + static_cast<std::size_t>(config_.batch_tiles) - 1) /
        static_cast<std::size_t>(config_.batch_tiles);
    if (outstanding_batches > 1) {
      pool_.ensure(static_cast<int>(outstanding_batches));
    }
  } catch (...) {
    resolve_error(ticket, std::current_exception());
  }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

bool SceneServer::tile_before(const TileWork& a, const TileWork& b) noexcept {
  const TicketState& ta = *a.ticket;
  const TicketState& tb = *b.ticket;
  if (ta.priority != tb.priority) return ta.priority > tb.priority;
  const bool da = ta.deadline.has_value();
  const bool db = tb.deadline.has_value();
  if (da != db) return da;  // deadline-bound work beats unbounded
  if (da && db && *ta.deadline != *tb.deadline) {
    return *ta.deadline < *tb.deadline;  // earliest deadline first
  }
  if (ta.seq != tb.seq) return ta.seq < tb.seq;  // submission FIFO
  return a.tile < b.tile;  // row-major within a scene
}

void SceneServer::push_tile(TileWork work) {
  tiles_.push_back(std::move(work));
  std::push_heap(tiles_.begin(), tiles_.end(),
                 [](const TileWork& a, const TileWork& b) {
                   return tile_before(b, a);
                 });
}

SceneServer::TileWork SceneServer::pop_tile() {
  std::pop_heap(tiles_.begin(), tiles_.end(),
                [](const TileWork& a, const TileWork& b) {
                  return tile_before(b, a);
                });
  TileWork work = std::move(tiles_.back());
  tiles_.pop_back();
  return work;
}

void SceneServer::promote_delayed(util::Clock::time_point now, bool force) {
  const auto ready_later = [](const DelayedTile& a, const DelayedTile& b) {
    return a.ready_at > b.ready_at;
  };
  while (!delayed_.empty() && (force || delayed_.front().ready_at <= now)) {
    std::pop_heap(delayed_.begin(), delayed_.end(), ready_later);
    push_tile(std::move(delayed_.back().work));
    delayed_.pop_back();
  }
}

std::vector<SceneServer::TileWork> SceneServer::gather() {
  // Real-time re-check tick while logically waiting on the injected clock:
  // bounds how stale the next deadline/backoff evaluation can be without
  // ever blocking on a clock that only a test thread advances.
  constexpr std::chrono::milliseconds kTick{1};
  std::vector<TileWork> batch;
  std::vector<std::shared_ptr<TicketState>> expired;
  std::unique_lock lock(tile_mutex_);
  std::optional<util::Clock::time_point> flush_at;
  // Batch-fill latency: first tile popped -> batch handed to the worker.
  std::optional<util::Clock::time_point> fill_start;
  const auto observe_fill = [&](util::Clock::time_point end) {
    if (fill_start) {
      obs_.batch_fill->observe(
          std::chrono::duration<double>(end - *fill_start).count());
    }
  };

  for (;;) {
    const auto now = clock_->now();
    promote_delayed(now, /*force=*/tiles_stopping_);

    // Fill in (priority, EDF, FIFO) order, shedding what already expired —
    // a forward pass must never be spent on an answer nobody can use.
    while (static_cast<int>(batch.size()) < config_.batch_tiles &&
           !tiles_.empty()) {
      TileWork work = pop_tile();
      TicketState& t = *work.ticket;
      if (t.resolved.load(std::memory_order_acquire)) continue;  // corpse
      if (t.deadline && now > *t.deadline) {
        expired.push_back(std::move(work.ticket));
        continue;
      }
      batch.push_back(std::move(work));
      if (!fill_start) fill_start = now;
    }
    if (!expired.empty()) {
      // Resolve outside the lock (a shed single-flight leader promotes a
      // follower, which re-enters fan_out -> tile_mutex_), then re-fill.
      lock.unlock();
      for (const auto& ticket : expired) shed(ticket);
      expired.clear();
      lock.lock();
      continue;
    }
    if (static_cast<int>(batch.size()) >= config_.batch_tiles) {
      observe_fill(now);
      return batch;
    }

    if (!batch.empty()) {
      // Dynamic batching: top the partial batch up, waiting at most
      // max_batch_wait for stragglers — and not at all once no admitted
      // scene can still contribute tiles (pending_scenes_ == 0).
      if (!flush_at) flush_at = now + config_.max_batch_wait;
      if (tiles_stopping_ ||
          pending_scenes_.load(std::memory_order_acquire) == 0 ||
          now >= *flush_at) {
        observe_fill(now);
        return batch;
      }
      tile_cv_.wait_for(lock, kTick, [&] {
        return tiles_stopping_ || !tiles_.empty() ||
               pending_scenes_.load(std::memory_order_acquire) == 0;
      });
      continue;
    }

    // Empty-handed.
    if (tiles_stopping_ && tiles_.empty() && delayed_.empty()) {
      return batch;  // shutdown: fully drained
    }
    if (!delayed_.empty()) {
      // Backed-off tiles only become due when the (possibly virtual) clock
      // says so; poll rather than sleep indefinitely.
      tile_cv_.wait_for(lock, kTick, [&] {
        return tiles_stopping_ || !tiles_.empty();
      });
    } else {
      tile_cv_.wait(lock, [&] {
        return tiles_stopping_ || !tiles_.empty() || !delayed_.empty();
      });
    }
  }
}

void SceneServer::worker_loop() {
  tensor::Tensor x, logits, probs;
  std::vector<int> pred;
  const int ts = config_.tile_size;
  const std::size_t plane = static_cast<std::size_t>(ts) * ts;

  for (;;) {
    std::vector<TileWork> batch = gather();
    if (batch.empty()) return;  // shutdown: queue drained

    // Skip tiles of scenes that were cancelled while queued.
    std::vector<TileWork> live;
    live.reserve(batch.size());
    for (auto& work : batch) {
      TicketState& t = *work.ticket;
      if (t.resolved.load(std::memory_order_acquire)) continue;
      if (t.cancelled()) {
        resolve_error(work.ticket,
                      std::make_exception_ptr(
                          par::OperationCancelled("SceneServer::batch")));
        continue;
      }
      live.push_back(std::move(work));
    }
    if (live.empty()) continue;

    // Queue-depth-driven scale-up: grow past the warm replicas only when
    // tiles are backed up behind this batch.
    bool backlog;
    {
      const std::scoped_lock lock(tile_mutex_);
      backlog = !tiles_.empty();
    }

    try {
      const int n = static_cast<int>(live.size());
      bool poison = false;
      util::Clock::time_point fw_begin{}, fw_end{};
      {
        // Lease scope covers only the work that needs the replica; the
        // argmax indices are fully copied into `pred`, so stitching,
        // caching, and stats below run with the replica already returned
        // to the pool for the next batch.
        ReplicaPool::Lease lease(pool_, /*allow_grow=*/backlog);
        try {
          nn::UNet& model = lease.model();
          model.bind(server_ctx_);
          if (x.ndim() != 4 || x.dim(0) != n) {
            x = tensor::Tensor({n, 3, ts, ts});
          }
          for (int s = 0; s < n; ++s) {
            const TicketState& t = *live[static_cast<std::size_t>(s)].ticket;
            const int tile = live[static_cast<std::size_t>(s)].tile;
            stage_tile(t.filtered, (tile % t.tiles_x) * ts,
                       (tile / t.tiles_x) * ts, ts, x, s);
          }
#if POLARICE_FAULT_INJECT
          if (config_.fault_injector != nullptr) {
            poison = config_.fault_injector->on_pass(FaultSite::kForward);
          }
#endif
          fw_begin = clock_->now();
          model.forward(x, logits, /*training=*/false);
          tensor::softmax_channel(logits, probs);
          pred.resize(static_cast<std::size_t>(n) * plane);
          tensor::argmax_channel(probs, pred.data());
          fw_end = clock_->now();
        } catch (...) {
          // The replica may have been interrupted mid-write of its internal
          // caches; its outputs can no longer be trusted. Quarantine it —
          // the watchdog rebuilds a replacement from a healthy clone.
          lease.mark_failed();
          throw;
        }
      }
      if (poison) {
        // kPoison models silent corruption: the pass "succeeds" but the
        // labels are garbage (255 is not a legal class id). Delivered
        // normally — detecting this is the verification harness's job.
        std::fill(pred.begin(), pred.end(), 255);
      }

      // Batch counters before delivery: delivering the last tile resolves
      // its ticket, and a caller returning from get() must already see this
      // batch's work in stats().
      obs_.forward->observe(
          std::chrono::duration<double>(fw_end - fw_begin).count());
      std::size_t scenes_in_batch = 0;
      {
        // Count distinct owning tickets (n is at most batch_tiles — tiny).
        std::vector<const TicketState*> seen;
        for (const auto& work : live) {
          const TicketState* p = work.ticket.get();
          if (std::find(seen.begin(), seen.end(), p) == seen.end()) {
            seen.push_back(p);
          }
        }
        scenes_in_batch = seen.size();
        // Each owning ticket gets one forward span per batch it rode in —
        // a multi-batch scene renders each pass separately.
        for (const TicketState* p : seen) {
          if (p->trace != nullptr) p->trace->add_span("forward", fw_begin, fw_end);
        }
      }
      {
        const std::scoped_lock lock(stats_mutex_);
        ++counters_.batches;
        if (scenes_in_batch > 1) ++counters_.cross_scene_batches;
        counters_.session.tiles += static_cast<std::size_t>(n);
      }
      for (int s = 0; s < n; ++s) {
        deliver(live[static_cast<std::size_t>(s)],
                pred_plane(pred.data(), s, ts));
      }
    } catch (...) {
      // A failed forward is batch-local: the batch's tiles are re-queued
      // with backoff for scenes with retry budget left, only spent budgets
      // fail — and the server itself keeps serving.
      handle_batch_failure(live, std::current_exception());
    }
  }
}

void SceneServer::handle_batch_failure(const std::vector<TileWork>& live,
                                       std::exception_ptr error) {
  const auto ready_later = [](const DelayedTile& a, const DelayedTile& b) {
    return a.ready_at > b.ready_at;
  };
  std::vector<std::shared_ptr<TicketState>> exhausted;
  std::size_t retried_scenes = 0;
  std::size_t retried_tiles = 0;
  {
    const std::scoped_lock lock(tile_mutex_);
    const auto now = clock_->now();
    // Distinct owning tickets (a batch holds at most batch_tiles tiles).
    std::vector<TicketState*> seen;
    for (const auto& work : live) {
      TicketState& t = *work.ticket;
      if (std::find(seen.begin(), seen.end(), &t) != seen.end()) continue;
      seen.push_back(&t);
      if (t.resolved.load(std::memory_order_acquire)) continue;
      if (t.retries >= t.retry_budget) {
        exhausted.push_back(work.ticket);
        continue;
      }
      ++t.retries;
      ++retried_scenes;
      // Capped exponential backoff: base * 2^(attempt-1), <= cap.
      const int shift = std::min(t.retries - 1, 20);
      const auto delay =
          std::min(std::chrono::duration_cast<std::chrono::milliseconds>(
                       config_.retry.backoff_base * (1LL << shift)),
                   config_.retry.backoff_cap);
      const auto ready_at = now + delay;
      for (const auto& sibling : live) {
        if (sibling.ticket.get() != &t) continue;
        delayed_.push_back(DelayedTile{sibling, ready_at});
        std::push_heap(delayed_.begin(), delayed_.end(), ready_later);
        ++retried_tiles;
      }
    }
  }
  tile_cv_.notify_all();
  {
    const std::scoped_lock lock(stats_mutex_);
    ++counters_.batch_failures;
    counters_.retries += retried_scenes;
    counters_.retried_tiles += retried_tiles;
    counters_.retry_exhausted += exhausted.size();
  }
  // Budget exhaustion fails only the owning tickets — batch neighbors with
  // budget left were re-queued above and never observe this failure.
  for (const auto& ticket : exhausted) resolve_error(ticket, error);
  // Kick the watchdog: if the failure quarantined a replica, rebuild it.
  // The empty critical section orders this notify after any pred the
  // watchdog evaluated before the quarantine landed.
  { const std::scoped_lock lock(watchdog_mutex_); }
  watchdog_cv_.notify_one();
}

void SceneServer::watchdog_loop() {
  std::unique_lock lock(watchdog_mutex_);
  for (;;) {
    watchdog_cv_.wait(lock, [&] {
      return watchdog_stop_ || pool_.quarantined() > 0;
    });
    if (watchdog_stop_) return;
    lock.unlock();
    pool_.repair();
    lock.lock();
  }
}

void SceneServer::deliver(const TileWork& work, img::ImageU8 plane) {
  TicketState& t = *work.ticket;
  if (t.resolved.load(std::memory_order_acquire)) return;
  t.planes[static_cast<std::size_t>(work.tile)] = std::move(plane);
  const int before = t.tiles_remaining.fetch_sub(1, std::memory_order_acq_rel);
  const auto total = static_cast<std::size_t>(t.tiles_x) * t.tiles_y;
  t.ctx.report_progress("serve.tiles", total - static_cast<std::size_t>(before - 1),
                        total);
  if (before == 1) finalize(work.ticket);
}

void SceneServer::finalize(const std::shared_ptr<TicketState>& ticket) {
  TicketState& t = *ticket;
  if (!t.claim()) return;  // cancellation won
  try {
#if POLARICE_FAULT_INJECT
    // Before the cache insert, deliberately: a scene that fails here must
    // never leave a (possibly poisoned) entry for followers or future
    // submissions to read.
    if (config_.fault_injector != nullptr) {
      (void)config_.fault_injector->on_pass(FaultSite::kStitch);
    }
#endif
    const auto stitch_begin = clock_->now();
    img::ImageU8 labels = s2::stitch_labels(t.planes, t.tiles_x, t.tiles_y);
    if (labels.width() != t.scaled_w || labels.height() != t.scaled_h) {
      labels = img::crop(labels, 0, 0, t.scaled_w, t.scaled_h);
    }
    if (t.degrade) {
      // Back to scene geometry; nearest keeps class ids intact.
      labels = img::resize_nearest(labels, t.orig_w, t.orig_h);
    }
    const auto stitch_end = clock_->now();
    obs_.stitch->observe(
        std::chrono::duration<double>(stitch_end - stitch_begin).count());
    if (t.trace != nullptr) t.trace->add_span("stitch", stitch_begin, stitch_end);
    std::size_t evicted = 0;
    if (t.cacheable) {
      evicted = cache_.insert(t.key, labels);
      persist(t.key, labels);
      obs_.cache_stores->add();
    }
    const double latency =
        std::chrono::duration<double>(clock_->now() - t.submitted_at).count();
    {
      const std::scoped_lock lock(stats_mutex_);
      ++counters_.completed;
      if (t.degrade) ++counters_.degraded;
      counters_.cache_evictions += evicted;
      ++counters_.session.scenes;
      counters_.session.busy_seconds += latency;
    }
    obs_.completed->add();
    obs_.e2e->observe(latency);
    record_trace(t, "completed");

    // Single-flight: this leader's plane resolves every attached follower
    // (each spent zero forward passes). A follower cancelled while it
    // waited resolves as cancelled, matching the promote() path — the
    // result is in hand, but the submitter asked out. Counters before each
    // publish, as everywhere.
    for (const auto& follower : take_followers(ticket)) {
      if (follower->cancelled()) {
        resolve_error(follower,
                      std::make_exception_ptr(
                          par::OperationCancelled("SceneServer::coalesced")));
        continue;
      }
      if (!follower->claim()) continue;
      {
        const std::scoped_lock lock(stats_mutex_);
        ++counters_.completed;
      }
      obs_.completed->add();
      obs_.e2e->observe(std::chrono::duration<double>(clock_->now() -
                                                      follower->submitted_at)
                            .count());
      record_trace(*follower, "completed");
      // A follower's own sink never saw prepare/tile ticks (the leader did
      // the work); one completion tick keeps progress-driven callers
      // moving.
      follower->ctx.report_progress("serve.coalesced", 1, 1);
      follower->publish(labels.clone(), nullptr);
    }
    t.publish(std::move(labels), nullptr, t.degrade);
  } catch (...) {
    // The claim is already ours, so resolve_error cannot run — publish the
    // failure directly and hand followers to a fresh leader. The cache was
    // not touched (the insert sits after every throwing step but the
    // follower publishes, which only clone()).
    {
      const std::scoped_lock lock(stats_mutex_);
      ++counters_.failed;
    }
    obs_.failed->add();
    record_trace(t, "failed");
    t.publish(img::ImageU8(), std::current_exception());
    auto followers = take_followers(ticket);
    if (!followers.empty()) promote(std::move(followers));
  }
}

void SceneServer::persist(const SceneKey& key, const img::ImageU8& plane) {
  if (store_ == nullptr) return;
  try {
    const bool accepted = store_->append(key, plane);
    if (accepted) {
      const std::scoped_lock lock(stats_mutex_);
      ++counters_.cache_persisted;
    }
    // Threshold flush on the finalizing worker thread: amortized disk I/O
    // in exchange for planes that survive a SIGKILL, not only a drain.
    if (store_->pending_bytes() >= config_.cache_flush_bytes) {
      store_->flush();
    }
  } catch (const CacheStoreError&) {
    // Persistence is best-effort during serving: a full or failing disk
    // costs durability of this plane, never the request.
  }
}

void SceneServer::shed(const std::shared_ptr<TicketState>& ticket) {
  resolve_error(ticket, std::make_exception_ptr(DeadlineExceeded(
                            "scene shed by SceneServer")));
}

void SceneServer::sweep_expired() {
  std::vector<std::shared_ptr<TicketState>> victims;
  {
    const std::scoped_lock lock(tile_mutex_);
    const auto now = clock_->now();
    auto consider = [&](const std::shared_ptr<TicketState>& ticket) {
      const TicketState& t = *ticket;
      if (!t.deadline || now <= *t.deadline) return;
      if (t.resolved.load(std::memory_order_acquire)) return;
      for (const auto& seen : victims) {
        if (seen == ticket) return;
      }
      victims.push_back(ticket);
    };
    for (const auto& work : tiles_) consider(work.ticket);
    for (const auto& delayed : delayed_) consider(delayed.work.ticket);
  }
  // Resolve outside the lock; the victims' remaining queued tiles become
  // corpses that workers discard at pop.
  for (const auto& ticket : victims) shed(ticket);
}

void SceneServer::resolve_error(const std::shared_ptr<TicketState>& ticket,
                                std::exception_ptr error) {
  TicketState& t = *ticket;
  if (!t.claim()) return;
  enum { kCancelled, kShed, kFailed } outcome = kFailed;
  try {
    std::rethrow_exception(error);
  } catch (const par::OperationCancelled&) {
    outcome = kCancelled;
  } catch (const DeadlineExceeded&) {
    outcome = kShed;
  } catch (...) {
  }
  {
    const std::scoped_lock lock(stats_mutex_);
    if (outcome == kCancelled) {
      ++counters_.cancelled;
    } else if (outcome == kShed) {
      ++counters_.shed;
    } else {
      ++counters_.failed;
    }
  }
  if (outcome == kCancelled) {
    record_trace(t, "cancelled");
  } else if (outcome == kShed) {
    obs_.shed->add();
    record_trace(t, "shed");
  } else {
    obs_.failed->add();
    record_trace(t, "failed");
  }
  t.publish(img::ImageU8(), std::move(error));

  // A failed/cancelled/shed leader must not take its followers down with
  // it: they were coalesced on content, not on the submitter's intent (or
  // deadline).
  auto followers = take_followers(ticket);
  if (!followers.empty()) promote(std::move(followers));
}

void SceneServer::record_trace(TicketState& t, const char* outcome) {
  if (t.trace == nullptr) return;
  obs::TraceRecord rec;
  rec.id = t.trace->id();
  rec.outcome = outcome;
  rec.degraded = t.degrade;
  rec.total_s = t.trace->elapsed_s();
  rec.spans = t.trace->spans();
  tracer_.record(std::move(rec));
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

SceneServerStats SceneServer::snapshot() const {
  // Every counter (submitted/completed/cancelled/failed/rejected/shed,
  // cache hit/miss/eviction, batches, retries, session scenes/tiles) now
  // lives in counters_ and is copied under this one lock — a snapshot can
  // never pair a post-completion `completed` with a pre-admission
  // `submitted`. The remaining fields are component-owned gauges and
  // high-water marks, sampled (each under its own lock) while the counter
  // set is pinned.
  const std::scoped_lock lock(stats_mutex_);
  SceneServerStats out = counters_;
  out.session.wait_seconds = pool_.wait_seconds();
  out.session.peak_leases = pool_.peak_leases();
  out.peak_queue_depth = queue_.peak_depth();
  out.replicas = pool_.size();
  out.peak_replicas = pool_.peak_size();
  out.replicas_quarantined = pool_.total_quarantined();
  out.replicas_rebuilt = pool_.total_rebuilt();
  return out;
}

}  // namespace polarice::core::serve
