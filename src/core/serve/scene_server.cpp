#include "core/serve/scene_server.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/stages.h"
#include "img/ops.h"
#include "s2/tiles.h"
#include "tensor/conv.h"
#include "tensor/tensor.h"
#include "util/timer.h"

namespace polarice::core::serve {

namespace detail {

/// Shared state behind one SceneTicket. Phase ownership: the submitter
/// fills the request fields; the scheduler (exclusively) fills the prepared
/// fields before fanning tiles out through tile_mutex_ (which publishes
/// them to the workers); workers write disjoint `planes` slots and race
/// only on the atomics; the outcome fields are guarded by `m`.
struct TicketState {
  // Request (written at submit).
  img::ImageU8 scene;
  par::ExecutionContext ctx;  // cancellation + progress (+ optional pool)
  // SceneTicket::cancel() must abandon THIS scene only. The submitter's
  // context token is shared by every copy of that context (cancelling it
  // would abort sibling submissions and unrelated work), so each ticket
  // carries its own token and the server honours either.
  par::CancellationToken own_cancel;
  util::WallTimer timer;      // submit -> resolution latency

  [[nodiscard]] bool cancelled() const noexcept {
    return ctx.cancelled() || own_cancel.cancelled();
  }

  // Prepared by the scheduler.
  img::ImageU8 filtered;  // padded out to the tile grid
  int orig_w = 0, orig_h = 0;
  int tiles_x = 0, tiles_y = 0;
  SceneKey key;
  bool keyed = false;     // key computed (cache and/or single-flight on)
  bool cacheable = false;

  // Inference scatter.
  std::vector<img::ImageU8> planes;  // per-tile argmax planes
  std::atomic<int> tiles_remaining{0};

  // Outcome.
  std::atomic<bool> resolved{false};  // claimed by the resolving thread
  std::mutex m;
  std::condition_variable cv;
  bool done = false;  // guarded by m
  img::ImageU8 result;
  std::exception_ptr error;

  /// At most one resolver wins the claim.
  bool claim() {
    bool expected = false;
    return resolved.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel);
  }

  void publish(img::ImageU8 plane, std::exception_ptr err) {
    {
      const std::scoped_lock lock(m);
      result = std::move(plane);
      error = std::move(err);
      done = true;
    }
    cv.notify_all();
  }
};

}  // namespace detail

using detail::TicketState;

// ---------------------------------------------------------------------------
// SceneTicket
// ---------------------------------------------------------------------------

namespace {
void require_valid(const std::shared_ptr<TicketState>& state) {
  if (!state) throw std::logic_error("SceneTicket: no shared state");
}
}  // namespace

bool SceneTicket::ready() const {
  require_valid(state_);
  const std::scoped_lock lock(state_->m);
  return state_->done;
}

void SceneTicket::wait() const {
  require_valid(state_);
  std::unique_lock lock(state_->m);
  state_->cv.wait(lock, [&] { return state_->done; });
}

bool SceneTicket::wait_for(std::chrono::milliseconds timeout) const {
  require_valid(state_);
  std::unique_lock lock(state_->m);
  return state_->cv.wait_for(lock, timeout, [&] { return state_->done; });
}

img::ImageU8 SceneTicket::get() const {
  require_valid(state_);
  std::unique_lock lock(state_->m);
  state_->cv.wait(lock, [&] { return state_->done; });
  if (state_->error) std::rethrow_exception(state_->error);
  return state_->result;
}

void SceneTicket::cancel() const {
  require_valid(state_);
  state_->own_cancel.cancel();
}

// ---------------------------------------------------------------------------
// SceneServerConfig
// ---------------------------------------------------------------------------

void SceneServerConfig::validate() const {
  if (tile_size <= 0) {
    throw std::invalid_argument("SceneServerConfig: tile_size <= 0");
  }
  if (batch_tiles < 1) {
    throw std::invalid_argument("SceneServerConfig: batch_tiles < 1");
  }
  if (min_replicas < 1) {
    throw std::invalid_argument("SceneServerConfig: min_replicas < 1");
  }
  if (max_replicas < min_replicas) {
    throw std::invalid_argument(
        "SceneServerConfig: max_replicas < min_replicas");
  }
  if (max_batch_wait < std::chrono::milliseconds::zero()) {
    throw std::invalid_argument("SceneServerConfig: negative max_batch_wait");
  }
  if (scale_down_idle <= std::chrono::milliseconds::zero()) {
    throw std::invalid_argument(
        "SceneServerConfig: scale_down_idle must be positive");
  }
  filter.validate();
  admission.validate();
}

namespace {
const SceneServerConfig& validated(const SceneServerConfig& config,
                                   const nn::UNet& model) {
  config.validate();
  require_tile_compatible(model, config.tile_size, "SceneServer");
  return config;
}
}  // namespace

// ---------------------------------------------------------------------------
// SceneServer
// ---------------------------------------------------------------------------

SceneServer::SceneServer(nn::UNet& model, SceneServerConfig config,
                         par::ExecutionContext ctx)
    : config_(validated(config, model)),
      server_ctx_(std::move(ctx)),
      filter_(config.filter),
      pool_(model, config.min_replicas, config.max_replicas),
      cache_(config.cache_bytes),
      queue_(config.admission) {
  scheduler_ = std::jthread([this] { scheduler_loop(); });
  workers_.reserve(static_cast<std::size_t>(config_.max_replicas));
  for (int i = 0; i < config_.max_replicas; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SceneServer::~SceneServer() { shutdown(); }

void SceneServer::shutdown() {
  bool expected = false;
  if (!shut_down_.compare_exchange_strong(expected, true)) return;
  queue_.close();
  if (scheduler_.joinable()) scheduler_.join();  // drains admitted scenes
  {
    const std::scoped_lock lock(tile_mutex_);
    tiles_stopping_ = true;
  }
  tile_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

SceneTicket SceneServer::submit(img::ImageU8 scene) {
  return submit(std::move(scene), par::ExecutionContext{});
}

SceneTicket SceneServer::submit(img::ImageU8 scene,
                                const par::ExecutionContext& ctx) {
  if (scene.channels() != 3) {
    throw std::invalid_argument("SceneServer: expected RGB scene");
  }
  const int ts = config_.tile_size;
  const bool partial = scene.width() % ts != 0 || scene.height() % ts != 0;
  if (partial && !config_.pad_partial_tiles) {
    throw std::invalid_argument(
        "SceneServer: scene size must be a tile multiple "
        "(or enable pad_partial_tiles)");
  }

  auto state = std::make_shared<TicketState>();
  state->scene = std::move(scene);
  state->ctx = ctx;
  state->orig_w = state->scene.width();
  state->orig_h = state->scene.height();

  // Both counts must cover the request before it is poppable: a worker
  // topping up a batch must never conclude "nothing can arrive" while this
  // scene sits in the submission queue, and stats() must never observe a
  // completed scene that was not yet submitted. Both roll back if
  // admission turns the request away.
  pending_scenes_.fetch_add(1, std::memory_order_acq_rel);
  {
    const std::scoped_lock lock(stats_mutex_);
    ++counters_.submitted;
  }
  try {
    queue_.push(state, ctx);
  } catch (...) {
    {
      const std::scoped_lock lock(stats_mutex_);
      --counters_.submitted;
    }
    retire_pending();
    throw;
  }
  return SceneTicket(std::move(state));
}

img::ImageU8 SceneServer::classify_scene(const img::ImageU8& scene_rgb) {
  return submit(scene_rgb.clone()).get();
}

void SceneServer::retire_pending() {
  pending_scenes_.fetch_sub(1, std::memory_order_acq_rel);
  // Batch top-up waits on "more tiles may come"; re-evaluate.
  tile_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Scheduler side
// ---------------------------------------------------------------------------

void SceneServer::scheduler_loop() {
  for (;;) {
    auto item = queue_.pop_for(config_.scale_down_idle);
    if (!item) {
      if (queue_.closed()) return;
      // Idle tick: no new request within scale_down_idle, no scene between
      // admission and tile fan-out, and no tiles waiting for a worker —
      // retire replicas above the warm floor. (Workers mid-batch still hold
      // leases; shrink() never destroys leased replicas.)
      bool tiles_queued;
      {
        const std::scoped_lock lock(tile_mutex_);
        tiles_queued = !tiles_.empty();
      }
      if (!tiles_queued &&
          pending_scenes_.load(std::memory_order_acquire) == 0) {
        pool_.shrink(config_.min_replicas);
      }
      continue;
    }
    prepare(*item);
  }
}

void SceneServer::prepare(const std::shared_ptr<TicketState>& ticket) {
  TicketState& t = *ticket;
  if (t.cancelled()) {
    resolve_error(ticket, std::make_exception_ptr(par::OperationCancelled(
                              "SceneServer::prepare")));
    retire_pending();
    return;
  }

  const bool use_cache = cache_.byte_budget() > 0;
  if (use_cache || config_.single_flight) {
    t.key = hash_scene(t.scene);
    t.keyed = true;
    t.cacheable = use_cache;
    // Result cache: a content-identical finished scene skips the forward
    // path entirely.
    if (use_cache) {
      if (auto hit = cache_.lookup(t.key)) {
        if (t.claim()) {
          // Counters first: a caller returning from get() must already see
          // this scene in stats().
          {
            const std::scoped_lock lock(stats_mutex_);
            ++counters_.completed;
          }
          t.publish(std::move(*hit), nullptr);
        }
        retire_pending();
        return;
      }
    }
    // Single-flight: a content-identical scene still mid-flight shares the
    // leader's forward passes; this ticket resolves when the leader does.
    if (config_.single_flight && attach_or_lead(ticket)) {
      retire_pending();
      return;
    }
  }

  fan_out(ticket);
  retire_pending();
}

bool SceneServer::attach_or_lead(const std::shared_ptr<TicketState>& ticket) {
  bool attached = false;
  {
    const std::scoped_lock lock(inflight_mutex_);
    auto it = inflight_.find(ticket->key);
    if (it != inflight_.end()) {
      it->second.followers.push_back(ticket);
      attached = true;
    } else {
      inflight_.emplace(ticket->key, Flight{ticket, {}});
    }
  }
  if (attached) {
    const std::scoped_lock lock(stats_mutex_);
    ++counters_.coalesced;
  }
  return attached;
}

std::vector<std::shared_ptr<TicketState>> SceneServer::take_followers(
    const std::shared_ptr<TicketState>& ticket) {
  if (!config_.single_flight || !ticket->keyed) return {};
  const std::scoped_lock lock(inflight_mutex_);
  auto it = inflight_.find(ticket->key);
  if (it == inflight_.end() || it->second.leader != ticket) return {};
  auto followers = std::move(it->second.followers);
  inflight_.erase(it);
  return followers;
}

void SceneServer::promote(
    std::vector<std::shared_ptr<TicketState>> followers) {
  std::shared_ptr<TicketState> leader;
  std::vector<std::shared_ptr<TicketState>> rest;
  for (auto& follower : followers) {
    if (leader == nullptr && !follower->cancelled()) {
      leader = std::move(follower);
      continue;
    }
    if (leader == nullptr) {
      // Cancelled before any live leader emerged; resolve it as cancelled.
      resolve_error(follower, std::make_exception_ptr(par::OperationCancelled(
                                  "SceneServer::promote")));
      continue;
    }
    rest.push_back(std::move(follower));
  }
  if (leader == nullptr) return;

  bool lead = false;
  {
    const std::scoped_lock lock(inflight_mutex_);
    auto it = inflight_.find(leader->key);
    if (it != inflight_.end()) {
      // A new submission took the hash over in the meantime — everyone
      // (including the would-be leader) attaches to it instead. Not
      // re-counted in `coalesced`: each of these tickets was already
      // counted when it first attached.
      it->second.followers.push_back(leader);
      for (auto& follower : rest) {
        it->second.followers.push_back(std::move(follower));
      }
    } else {
      inflight_.emplace(leader->key, Flight{leader, std::move(rest)});
      lead = true;
    }
  }
  // The promoted leader re-runs the forward path from the top: its own
  // scene bytes are intact (only the failed leader's were released). This
  // runs on whichever thread resolved the leader — usually an inference
  // worker — which stalls that worker for one scene-prep. Deliberate: the
  // admission queue may already be closed (shutdown drain) when a leader
  // fails, so re-queueing through the scheduler is not an option on the
  // one path that must still make progress, and leader failure is rare.
  if (lead) fan_out(leader);
}

void SceneServer::fan_out(const std::shared_ptr<TicketState>& ticket) {
  TicketState& t = *ticket;
  try {
    t.ctx.report_progress("serve.prepare", 0, 1);
    // The submitter's pool (if any) runs this scene's filter; otherwise the
    // server's. Cancellation always comes from the ticket context.
    const par::ExecutionContext filter_ctx =
        t.ctx.pool() != nullptr ? t.ctx : t.ctx.with_pool(server_ctx_.pool());
    img::ImageU8 filtered = filter_.apply(t.scene, filter_ctx);
    const int ts = config_.tile_size;
    if (t.orig_w % ts != 0 || t.orig_h % ts != 0) {
      filtered = img::pad_edge(filtered, (t.orig_w + ts - 1) / ts * ts,
                               (t.orig_h + ts - 1) / ts * ts);
    }
    t.tiles_x = filtered.width() / ts;
    t.tiles_y = filtered.height() / ts;
    t.filtered = std::move(filtered);
    t.scene = img::ImageU8();  // imagery no longer needed; free it early
    const int total = t.tiles_x * t.tiles_y;
    t.planes.resize(static_cast<std::size_t>(total));
    t.tiles_remaining.store(total, std::memory_order_release);
    t.ctx.report_progress("serve.prepare", 1, 1);

    std::size_t depth;
    {
      const std::scoped_lock lock(tile_mutex_);
      for (int i = 0; i < total; ++i) {
        tiles_.push_back(TileWork{ticket, i});
      }
      depth = tiles_.size();
    }
    tile_cv_.notify_all();

    // Queue-depth-driven scale-up: when more than one forward pass of tiles
    // is backed up, clone replicas (on this thread, off the workers' hot
    // path) so the backlog drains in parallel. ensure() caps at
    // max_replicas; idle ticks shrink back to min_replicas.
    const auto outstanding_batches =
        (depth + static_cast<std::size_t>(config_.batch_tiles) - 1) /
        static_cast<std::size_t>(config_.batch_tiles);
    if (outstanding_batches > 1) {
      pool_.ensure(static_cast<int>(outstanding_batches));
    }
  } catch (...) {
    resolve_error(ticket, std::current_exception());
  }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

std::vector<SceneServer::TileWork> SceneServer::gather() {
  std::vector<TileWork> batch;
  std::unique_lock lock(tile_mutex_);
  tile_cv_.wait(lock, [&] { return tiles_stopping_ || !tiles_.empty(); });
  if (tiles_.empty()) return batch;  // stopping and drained
  batch.push_back(std::move(tiles_.front()));
  tiles_.pop_front();
  // Dynamic batching: top the batch up with whatever is queued, waiting at
  // most max_batch_wait for stragglers — and not at all once no admitted
  // scene can still contribute tiles (pending_scenes_ == 0).
  const auto deadline =
      std::chrono::steady_clock::now() + config_.max_batch_wait;
  while (static_cast<int>(batch.size()) < config_.batch_tiles) {
    if (!tiles_.empty()) {
      batch.push_back(std::move(tiles_.front()));
      tiles_.pop_front();
      continue;
    }
    if (tiles_stopping_ ||
        pending_scenes_.load(std::memory_order_acquire) == 0) {
      break;
    }
    if (!tile_cv_.wait_until(lock, deadline, [&] {
          return tiles_stopping_ || !tiles_.empty() ||
                 pending_scenes_.load(std::memory_order_acquire) == 0;
        })) {
      break;  // flush the partial batch
    }
  }
  return batch;
}

void SceneServer::worker_loop() {
  tensor::Tensor x, logits, probs;
  std::vector<int> pred;
  const int ts = config_.tile_size;
  const std::size_t plane = static_cast<std::size_t>(ts) * ts;

  for (;;) {
    std::vector<TileWork> batch = gather();
    if (batch.empty()) return;  // shutdown: queue drained

    // Skip tiles of scenes that were cancelled while queued.
    std::vector<TileWork> live;
    live.reserve(batch.size());
    for (auto& work : batch) {
      TicketState& t = *work.ticket;
      if (t.resolved.load(std::memory_order_acquire)) continue;
      if (t.cancelled()) {
        resolve_error(work.ticket,
                      std::make_exception_ptr(
                          par::OperationCancelled("SceneServer::batch")));
        continue;
      }
      live.push_back(std::move(work));
    }
    if (live.empty()) continue;

    // Queue-depth-driven scale-up: grow past the warm replicas only when
    // tiles are backed up behind this batch.
    bool backlog;
    {
      const std::scoped_lock lock(tile_mutex_);
      backlog = !tiles_.empty();
    }

    try {
      const int n = static_cast<int>(live.size());
      {
        // Lease scope covers only the work that needs the replica; the
        // argmax indices are fully copied into `pred`, so stitching,
        // caching, and stats below run with the replica already returned
        // to the pool for the next batch.
        ReplicaPool::Lease lease(pool_, /*allow_grow=*/backlog);
        nn::UNet& model = lease.model();
        model.bind(server_ctx_);
        if (x.ndim() != 4 || x.dim(0) != n) {
          x = tensor::Tensor({n, 3, ts, ts});
        }
        for (int s = 0; s < n; ++s) {
          const TicketState& t = *live[static_cast<std::size_t>(s)].ticket;
          const int tile = live[static_cast<std::size_t>(s)].tile;
          stage_tile(t.filtered, (tile % t.tiles_x) * ts,
                     (tile / t.tiles_x) * ts, ts, x, s);
        }
        model.forward(x, logits, /*training=*/false);
        tensor::softmax_channel(logits, probs);
        pred.resize(static_cast<std::size_t>(n) * plane);
        tensor::argmax_channel(probs, pred.data());
      }

      // Batch counters before delivery: delivering the last tile resolves
      // its ticket, and a caller returning from get() must already see this
      // batch's work in stats().
      std::size_t scenes_in_batch = 0;
      {
        // Count distinct owning tickets (n is at most batch_tiles — tiny).
        std::vector<const TicketState*> seen;
        for (const auto& work : live) {
          const TicketState* p = work.ticket.get();
          if (std::find(seen.begin(), seen.end(), p) == seen.end()) {
            seen.push_back(p);
          }
        }
        scenes_in_batch = seen.size();
      }
      {
        const std::scoped_lock lock(stats_mutex_);
        ++counters_.batches;
        if (scenes_in_batch > 1) ++counters_.cross_scene_batches;
        counters_.session.tiles += static_cast<std::size_t>(n);
      }
      for (int s = 0; s < n; ++s) {
        deliver(live[static_cast<std::size_t>(s)],
                pred_plane(pred.data(), s, ts));
      }
    } catch (...) {
      // A failed forward (e.g. allocation failure) fails every scene in the
      // batch; the server itself keeps serving.
      for (const auto& work : live) {
        resolve_error(work.ticket, std::current_exception());
      }
    }
  }
}

void SceneServer::deliver(const TileWork& work, img::ImageU8 plane) {
  TicketState& t = *work.ticket;
  if (t.resolved.load(std::memory_order_acquire)) return;
  t.planes[static_cast<std::size_t>(work.tile)] = std::move(plane);
  const int before = t.tiles_remaining.fetch_sub(1, std::memory_order_acq_rel);
  const auto total = static_cast<std::size_t>(t.tiles_x) * t.tiles_y;
  t.ctx.report_progress("serve.tiles", total - static_cast<std::size_t>(before - 1),
                        total);
  if (before == 1) finalize(work.ticket);
}

void SceneServer::finalize(const std::shared_ptr<TicketState>& ticket) {
  TicketState& t = *ticket;
  if (!t.claim()) return;  // cancellation won
  img::ImageU8 labels = s2::stitch_labels(t.planes, t.tiles_x, t.tiles_y);
  if (labels.width() != t.orig_w || labels.height() != t.orig_h) {
    labels = img::crop(labels, 0, 0, t.orig_w, t.orig_h);
  }
  if (t.cacheable) cache_.insert(t.key, labels);
  const double latency = t.timer.seconds();
  {
    const std::scoped_lock lock(stats_mutex_);
    ++counters_.completed;
    ++counters_.session.scenes;
    counters_.session.busy_seconds += latency;
  }

  // Single-flight: this leader's plane resolves every attached follower
  // (each spent zero forward passes). A follower cancelled while it waited
  // resolves as cancelled, matching the promote() path — the result is in
  // hand, but the submitter asked out. Counters before each publish, as
  // everywhere.
  for (const auto& follower : take_followers(ticket)) {
    if (follower->cancelled()) {
      resolve_error(follower,
                    std::make_exception_ptr(
                        par::OperationCancelled("SceneServer::coalesced")));
      continue;
    }
    if (!follower->claim()) continue;
    {
      const std::scoped_lock lock(stats_mutex_);
      ++counters_.completed;
    }
    // A follower's own sink never saw prepare/tile ticks (the leader did
    // the work); one completion tick keeps progress-driven callers moving.
    follower->ctx.report_progress("serve.coalesced", 1, 1);
    follower->publish(labels.clone(), nullptr);
  }
  t.publish(std::move(labels), nullptr);
}

void SceneServer::resolve_error(const std::shared_ptr<TicketState>& ticket,
                                std::exception_ptr error) {
  TicketState& t = *ticket;
  if (!t.claim()) return;
  bool is_cancel = false;
  try {
    std::rethrow_exception(error);
  } catch (const par::OperationCancelled&) {
    is_cancel = true;
  } catch (...) {
  }
  {
    const std::scoped_lock lock(stats_mutex_);
    if (is_cancel) {
      ++counters_.cancelled;
    } else {
      ++counters_.failed;
    }
  }
  t.publish(img::ImageU8(), std::move(error));

  // A failed/cancelled leader must not take its followers down with it:
  // they were coalesced on content, not on the submitter's intent.
  auto followers = take_followers(ticket);
  if (!followers.empty()) promote(std::move(followers));
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

SceneServerStats SceneServer::stats() const {
  SceneServerStats out;
  {
    const std::scoped_lock lock(stats_mutex_);
    out = counters_;
  }
  out.session.wait_seconds = pool_.wait_seconds();
  out.session.peak_leases = pool_.peak_leases();
  out.rejected = queue_.rejected();
  out.peak_queue_depth = queue_.peak_depth();
  const ResultCacheStats cache = cache_.stats();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_evictions = cache.evictions;
  out.replicas = pool_.size();
  out.peak_replicas = pool_.peak_size();
  return out;
}

}  // namespace polarice::core::serve
