#include "core/serve/replica_pool.h"

#include <algorithm>
#include <stdexcept>

#include "util/timer.h"

namespace polarice::core::serve {

ReplicaPool::ReplicaPool(nn::UNet& source, int initial, int max_size)
    : max_size_(max_size) {
  if (initial < 1) {
    throw std::invalid_argument("ReplicaPool: initial < 1");
  }
  if (max_size < initial) {
    throw std::invalid_argument("ReplicaPool: max_size < initial");
  }
  replicas_.reserve(static_cast<std::size_t>(max_size));
  free_.reserve(static_cast<std::size_t>(max_size));
  for (int i = 0; i < initial; ++i) {
    auto replica = source.clone();
    free_.push_back(replica.get());
    replicas_.push_back(std::move(replica));
  }
  peak_size_ = initial;
}

nn::UNet* ReplicaPool::grow_one(std::unique_lock<std::mutex>& lock) {
  // Clone outside the lock: weight copying is the expensive part and must
  // not stall concurrent release()/acquire() traffic. The source replica
  // is pinned via grow_source_ so a concurrent shrink() cannot destroy it
  // if its lease ends mid-clone; growing_ keeps a second grower out until
  // we finish, and is cleared even on a throwing clone (a stuck latch
  // would disable growth forever).
  growing_ = true;
  nn::UNet* source = replicas_.front().get();
  grow_source_ = source;
  lock.unlock();
  std::unique_ptr<nn::UNet> replica;
  try {
    replica = source->clone();
  } catch (...) {
    lock.lock();
    growing_ = false;
    grow_source_ = nullptr;
    free_cv_.notify_all();
    throw;
  }
  lock.lock();
  growing_ = false;
  grow_source_ = nullptr;
  nn::UNet* model = replica.get();
  replicas_.push_back(std::move(replica));
  peak_size_ = std::max(peak_size_, static_cast<int>(replicas_.size()));
  // Waiters re-check: another grower may now proceed in turn.
  free_cv_.notify_all();
  return model;
}

nn::UNet* ReplicaPool::acquire(bool allow_grow) {
  util::WallTimer waited;
  std::unique_lock lock(mutex_);
  for (;;) {
    if (!free_.empty()) {
      nn::UNet* model = free_.back();
      free_.pop_back();
      ++leases_;
      peak_leases_ = std::max(peak_leases_, leases_);
      wait_seconds_ += waited.seconds();
      return model;
    }
    if (allow_grow && !growing_ &&
        static_cast<int>(replicas_.size()) < max_size_) {
      nn::UNet* model = grow_one(lock);
      ++leases_;
      peak_leases_ = std::max(peak_leases_, leases_);
      wait_seconds_ += waited.seconds();
      return model;
    }
    free_cv_.wait(lock);
  }
}

void ReplicaPool::release(nn::UNet* model) {
  {
    const std::scoped_lock lock(mutex_);
    free_.push_back(model);
    --leases_;
  }
  free_cv_.notify_one();
}

void ReplicaPool::ensure(int target) {
  target = std::min(target, max_size_);
  std::unique_lock lock(mutex_);
  while (static_cast<int>(replicas_.size()) < target) {
    if (growing_) {
      // Another clone is in flight (a worker growing on acquire); wait for
      // it to land and re-check.
      free_cv_.wait(lock);
      continue;
    }
    free_.push_back(grow_one(lock));
  }
}

void ReplicaPool::shrink(int target) {
  target = std::max(target, 1);
  const std::scoped_lock lock(mutex_);
  std::size_t i = free_.size();
  while (i > 0 && static_cast<int>(replicas_.size()) > target) {
    --i;
    nn::UNet* victim = free_[i];
    if (victim == grow_source_) continue;  // clone in flight reads it
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
    auto it = std::find_if(
        replicas_.begin(), replicas_.end(),
        [&](const std::unique_ptr<nn::UNet>& r) { return r.get() == victim; });
    replicas_.erase(it);
  }
}

int ReplicaPool::size() const {
  const std::scoped_lock lock(mutex_);
  return static_cast<int>(replicas_.size());
}

int ReplicaPool::peak_size() const {
  const std::scoped_lock lock(mutex_);
  return peak_size_;
}

std::size_t ReplicaPool::peak_leases() const {
  const std::scoped_lock lock(mutex_);
  return peak_leases_;
}

double ReplicaPool::wait_seconds() const {
  const std::scoped_lock lock(mutex_);
  return wait_seconds_;
}

ReplicaPool::Lease::Lease(ReplicaPool& pool, bool allow_grow)
    : pool_(pool), model_(pool.acquire(allow_grow)) {}

ReplicaPool::Lease::~Lease() { pool_.release(model_); }

}  // namespace polarice::core::serve
