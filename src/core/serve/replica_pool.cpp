#include "core/serve/replica_pool.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace polarice::core::serve {

ReplicaPool::ReplicaPool(nn::UNet& source, int initial, int max_size,
                         const util::Clock* clock)
    : max_size_(max_size),
      clock_(clock != nullptr ? clock : &util::system_clock()) {
  if (initial < 1) {
    throw std::invalid_argument("ReplicaPool: initial < 1");
  }
  if (max_size < initial) {
    throw std::invalid_argument("ReplicaPool: max_size < initial");
  }
  // The master is the rebuild source of last resort: it never serves, is
  // never leased, and so can never be quarantined — repair() always has a
  // healthy set of weights even when every serving replica died at once.
  master_ = source.clone();
  replicas_.reserve(static_cast<std::size_t>(max_size));
  free_.reserve(static_cast<std::size_t>(max_size));
  for (int i = 0; i < initial; ++i) {
    auto replica = source.clone();
    free_.push_back(replica.get());
    replicas_.push_back(std::move(replica));
  }
  peak_size_ = initial;
}

nn::UNet* ReplicaPool::grow_one(std::unique_lock<std::mutex>& lock) {
  // Clone outside the lock: weight copying is the expensive part and must
  // not stall concurrent release()/acquire() traffic. The source replica
  // is pinned via grow_source_ so a concurrent shrink() cannot destroy it
  // if its lease ends mid-clone; growing_ keeps a second grower out until
  // we finish, and is cleared even on a throwing clone (a stuck latch
  // would disable growth forever).
  growing_ = true;
  // Prefer a serving replica as the clone source (keeps the master cold in
  // cache terms); fall back to the master when quarantine emptied the pool.
  nn::UNet* source =
      replicas_.empty() ? master_.get() : replicas_.front().get();
  grow_source_ = source;
  lock.unlock();
  std::unique_ptr<nn::UNet> replica;
  try {
    replica = source->clone();
  } catch (...) {
    lock.lock();
    growing_ = false;
    grow_source_ = nullptr;
    free_cv_.notify_all();
    throw;
  }
  lock.lock();
  growing_ = false;
  grow_source_ = nullptr;
  nn::UNet* model = replica.get();
  replicas_.push_back(std::move(replica));
  peak_size_ = std::max(peak_size_, static_cast<int>(replicas_.size()));
  // Waiters re-check: another grower may now proceed in turn.
  free_cv_.notify_all();
  return model;
}

nn::UNet* ReplicaPool::acquire(bool allow_grow) {
  const auto wait_started = clock_->now();
  const auto waited = [&] {
    return std::chrono::duration<double>(clock_->now() - wait_started)
        .count();
  };
  std::unique_lock lock(mutex_);
  for (;;) {
    if (!free_.empty()) {
      nn::UNet* model = free_.back();
      free_.pop_back();
      ++leases_;
      peak_leases_ = std::max(peak_leases_, leases_);
      wait_seconds_ += waited();
      return model;
    }
    if (allow_grow && !growing_ &&
        static_cast<int>(replicas_.size()) < max_size_) {
      nn::UNet* model = grow_one(lock);
      ++leases_;
      peak_leases_ = std::max(peak_leases_, leases_);
      wait_seconds_ += waited();
      return model;
    }
    free_cv_.wait(lock);
  }
}

void ReplicaPool::release(nn::UNet* model) {
  {
    const std::scoped_lock lock(mutex_);
    free_.push_back(model);
    --leases_;
  }
  free_cv_.notify_one();
}

void ReplicaPool::quarantine(nn::UNet* model) {
  {
    const std::scoped_lock lock(mutex_);
    auto it = std::find_if(
        replicas_.begin(), replicas_.end(),
        [&](const std::unique_ptr<nn::UNet>& r) { return r.get() == model; });
    // A leased replica is always in replicas_ (shrink() never destroys
    // leased ones), so the find cannot miss.
    quarantined_.push_back(std::move(*it));
    replicas_.erase(it);
    --leases_;
    ++total_quarantined_;
  }
  // Wake blocked acquirers: the pool shrank, so allow_grow waiters may now
  // clone a replacement instead of waiting for a free replica that is not
  // coming back.
  free_cv_.notify_all();
}

void ReplicaPool::ensure(int target) {
  target = std::min(target, max_size_);
  std::unique_lock lock(mutex_);
  while (static_cast<int>(replicas_.size()) < target) {
    if (growing_) {
      // Another clone is in flight (a worker growing on acquire); wait for
      // it to land and re-check.
      free_cv_.wait(lock);
      continue;
    }
    free_.push_back(grow_one(lock));
    // grow_one's notify fired before the push above landed the replica in
    // free_; notify again so a blocked acquirer sees it.
    free_cv_.notify_one();
  }
}

int ReplicaPool::repair() {
  int rebuilt = 0;
  for (;;) {
    std::unique_ptr<nn::UNet> corpse;
    {
      std::unique_lock lock(mutex_);
      // The grow source may itself have been quarantined mid-clone (it can
      // be a *leased* replica whose forward pass then failed); it is pinned
      // until the clone lands, so destroy it only after growing_ clears.
      auto pick = [&]() -> bool {
        for (std::size_t i = quarantined_.size(); i-- > 0;) {
          if (quarantined_[i].get() == grow_source_) continue;
          corpse = std::move(quarantined_[i]);
          quarantined_.erase(quarantined_.begin() +
                             static_cast<std::ptrdiff_t>(i));
          return true;
        }
        return false;
      };
      while (!pick() && !quarantined_.empty()) {
        free_cv_.wait(lock);  // clone in flight reads the only corpse
      }
    }
    if (!corpse) break;
    corpse.reset();  // destroy outside the lock — weight teardown is slow

    std::unique_lock lock(mutex_);
    while (growing_) free_cv_.wait(lock);
    if (static_cast<int>(replicas_.size()) >= max_size_) {
      // The pool regrew past the corpse's slot already (an allow_grow
      // acquire raced us); destroying the corpse was the whole repair.
      continue;
    }
    free_.push_back(grow_one(lock));
    ++total_rebuilt_;
    ++rebuilt;
    lock.unlock();
    free_cv_.notify_one();
  }
  return rebuilt;
}

void ReplicaPool::shrink(int target) {
  target = std::max(target, 1);
  const std::scoped_lock lock(mutex_);
  std::size_t i = free_.size();
  while (i > 0 && static_cast<int>(replicas_.size()) > target) {
    --i;
    nn::UNet* victim = free_[i];
    if (victim == grow_source_) continue;  // clone in flight reads it
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
    auto it = std::find_if(
        replicas_.begin(), replicas_.end(),
        [&](const std::unique_ptr<nn::UNet>& r) { return r.get() == victim; });
    replicas_.erase(it);
  }
}

int ReplicaPool::size() const {
  const std::scoped_lock lock(mutex_);
  return static_cast<int>(replicas_.size());
}

int ReplicaPool::peak_size() const {
  const std::scoped_lock lock(mutex_);
  return peak_size_;
}

std::size_t ReplicaPool::leases() const {
  const std::scoped_lock lock(mutex_);
  return leases_;
}

std::size_t ReplicaPool::peak_leases() const {
  const std::scoped_lock lock(mutex_);
  return peak_leases_;
}

double ReplicaPool::wait_seconds() const {
  const std::scoped_lock lock(mutex_);
  return wait_seconds_;
}

int ReplicaPool::quarantined() const {
  const std::scoped_lock lock(mutex_);
  return static_cast<int>(quarantined_.size());
}

std::size_t ReplicaPool::total_quarantined() const {
  const std::scoped_lock lock(mutex_);
  return total_quarantined_;
}

std::size_t ReplicaPool::total_rebuilt() const {
  const std::scoped_lock lock(mutex_);
  return total_rebuilt_;
}

ReplicaPool::Lease::Lease(ReplicaPool& pool, bool allow_grow)
    : pool_(pool), model_(pool.acquire(allow_grow)) {}

ReplicaPool::Lease::~Lease() {
  if (failed_) {
    pool_.quarantine(model_);
  } else {
    pool_.release(model_);
  }
}

}  // namespace polarice::core::serve
