#pragma once
// FaultInjector — deterministic failure hooks for the serving tier.
//
// Recovery code that only runs when hardware misbehaves is recovery code
// that has never run. The injector lets tests (and the load harness) make
// replica forward passes throw, stall, or return poisoned predictions at
// precisely configured points, so quarantine / rebuild / retry paths are
// exercised under normal CI.
//
// Cost model: the hook must be compile-time cheap because it sits on the
// batch hot path. Builds with POLARICE_FAULT_INJECT=0 compile the call
// sites out entirely; builds with it on (the default, so tier-1 runs the
// recovery tests) pay one null-pointer check per batch when no injector is
// configured, and one mutex acquisition per pass when one is armed —
// injectors are a test/harness tool, never wired in production configs.
//
// A plan fires on the pass counter of its site: skip the first `after`
// passes, then fire `count` times (-1 = forever), optionally only on every
// `every`-th eligible pass. kThrow raises InjectedFault from inside
// on_pass(); kStall sleeps `stall` then proceeds; kPoison returns true and
// the caller corrupts its own output (the injector cannot know the tensor
// layout). Counting is site-local and mutex-guarded: concurrent worker
// threads observe an exact global pass ordering, which is what makes
// "fail exactly the second batch" expressible.

#include <chrono>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>

namespace polarice::core::serve {

/// Thrown by on_pass() for kThrow plans; SceneServer treats it like any
/// replica failure (quarantine + retry), tests catch it by type.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& where)
      : std::runtime_error("injected fault: " + where) {}
};

enum class FaultKind {
  kThrow,   // on_pass() throws InjectedFault
  kStall,   // on_pass() sleeps `stall`, then the pass proceeds normally
  kPoison,  // on_pass() returns true; caller corrupts its own output
};

enum class FaultSite {
  kForward,  // replica forward pass (worker batch loop)
  kStitch,   // scene finalize / stitch path
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;
[[nodiscard]] const char* to_string(FaultSite site) noexcept;

struct FaultPlan {
  FaultSite site = FaultSite::kForward;
  FaultKind kind = FaultKind::kThrow;
  int after = 0;  // skip this many passes at `site` before arming
  int count = 1;  // fire at most this many times; -1 = every eligible pass
  int every = 0;  // >0: fire only on every Nth eligible pass
  std::chrono::milliseconds stall{0};  // kStall sleep per firing

  void validate() const;
};

struct FaultInjectorStats {
  std::size_t passes = 0;  // on_pass() calls across all sites
  std::size_t fired = 0;   // faults actually delivered
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs `plan`, resetting pass/fire counters. Replaces any prior plan.
  void arm(const FaultPlan& plan);

  /// Removes the plan; subsequent passes run clean. Counters are kept so a
  /// test can assert how many faults were delivered.
  void disarm();

  /// Called by instrumented code at `site`. Applies the armed plan:
  /// throws (kThrow), sleeps then returns false (kStall), or returns true
  /// (kPoison — caller must corrupt its output). Returns false when no
  /// plan is armed or the plan does not fire on this pass.
  bool on_pass(FaultSite site);

  [[nodiscard]] FaultInjectorStats stats() const;

 private:
  mutable std::mutex mutex_;
  FaultPlan plan_;
  bool armed_ = false;
  std::size_t site_passes_[2] = {0, 0};  // per-site eligible-pass counters
  FaultInjectorStats stats_;
};

}  // namespace polarice::core::serve
