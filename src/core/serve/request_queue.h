#pragma once
// RequestQueue — the bounded submission queue in front of SceneServer's
// scheduler, with pluggable admission control.
//
// Admission policies (applied by push() when the queue is full):
//   kReject   — fail fast: throw AdmissionRejected immediately.
//   kBlock    — backpressure: wait until a slot frees (checking the
//               caller's cancellation token while waiting).
//   kDeadline — bounded backpressure: wait up to `deadline`, then throw
//               AdmissionRejected.
//
// The queue is MPMC: any number of submitters push, the scheduler thread
// pops. close() stops admission (push throws QueueClosed) while pop()
// keeps draining what was admitted, then returns nullopt — the shutdown
// handshake. The consumer side offers a timed pop so the scheduler can
// double as the idle-scale-down timer (pop_for returning nullopt-on-timeout
// is the "server has been idle" signal).
//
// The element type is a template parameter so the admission machinery is
// unit-testable without dragging in scenes and tickets; SceneServer
// instantiates it with its ticket pointer.
//
// Time is read through an injectable util::Clock so deadline admission is
// deterministically testable: a test wires a VirtualClock and a blocked
// submitter is rejected exactly when the test advances time past the bound,
// never because the host was slow. Waiting itself stays on real condition
// variables with short ticks — the injected clock only decides *whether*
// the bound has elapsed, never blocks anything.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>

#include "par/context.h"
#include "util/virtual_clock.h"

namespace polarice::core::serve {

enum class AdmissionPolicy { kReject, kBlock, kDeadline };

[[nodiscard]] const char* to_string(AdmissionPolicy policy) noexcept;

struct AdmissionConfig {
  std::size_t capacity = 64;  // queued (not yet scheduled) requests
  AdmissionPolicy policy = AdmissionPolicy::kBlock;
  std::chrono::milliseconds deadline{100};  // kDeadline wait bound

  void validate() const;
};

/// Thrown by push() when admission control turns a request away.
class AdmissionRejected : public std::runtime_error {
 public:
  explicit AdmissionRejected(const std::string& why)
      : std::runtime_error("admission rejected: " + why) {}
};

/// Thrown by push() after close().
class QueueClosed : public std::runtime_error {
 public:
  QueueClosed() : std::runtime_error("request queue closed") {}
};

/// Resolution for work that could no longer meet its deadline: the serving
/// tier sheds it (before burning a forward pass) and SceneTicket::get()
/// rethrows this. Lives here — next to the other admission outcomes — so
/// the queue, the scheduler's expiry sweep, and tests share one type.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& why)
      : std::runtime_error("deadline exceeded: " + why) {}
};

template <typename T>
class RequestQueue {
 public:
  /// `clock` times the kDeadline admission bound; nullptr = process clock.
  /// Must outlive the queue.
  explicit RequestQueue(AdmissionConfig config,
                        const util::Clock* clock = nullptr)
      : config_(config),
        clock_(clock != nullptr ? clock : &util::system_clock()) {
    config_.validate();
  }

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Admits one request under the configured policy. Throws
  /// AdmissionRejected (kReject immediately; kDeadline after the wait
  /// bound), QueueClosed after close(), or par::OperationCancelled when
  /// `ctx` is cancelled while blocked.
  void push(T item, const par::ExecutionContext& ctx = {}) {
    std::unique_lock lock(mutex_);
    if (queue_.size() >= config_.capacity) {
      switch (config_.policy) {
        case AdmissionPolicy::kReject:
          ++rejected_;
          throw AdmissionRejected("queue full");
        case AdmissionPolicy::kBlock:
          wait_for_space(lock, ctx, std::nullopt);
          break;
        case AdmissionPolicy::kDeadline:
          if (!wait_for_space(lock, ctx, config_.deadline)) {
            ++rejected_;
            throw AdmissionRejected("queue full past deadline");
          }
          break;
      }
    }
    if (closed_) throw QueueClosed();
    queue_.push_back(std::move(item));
    peak_depth_ = std::max(peak_depth_, queue_.size());
    lock.unlock();
    item_cv_.notify_one();
  }

  /// Blocks until an item is available (returns it) or the queue is closed
  /// and drained (returns nullopt).
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    item_cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    return take(lock);
  }

  /// pop() with a timeout: additionally returns nullopt when `wait` passes
  /// with no item (and the queue is still open — check closed() to
  /// distinguish).
  [[nodiscard]] std::optional<T> pop_for(std::chrono::milliseconds wait) {
    std::unique_lock lock(mutex_);
    item_cv_.wait_for(lock, wait, [&] { return closed_ || !queue_.empty(); });
    return take(lock);
  }

  /// Stops admission; pop() drains the remainder then reports exhaustion.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }
  [[nodiscard]] std::size_t depth() const {
    const std::scoped_lock lock(mutex_);
    return queue_.size();
  }
  [[nodiscard]] std::size_t peak_depth() const {
    const std::scoped_lock lock(mutex_);
    return peak_depth_;
  }
  [[nodiscard]] std::size_t rejected() const {
    const std::scoped_lock lock(mutex_);
    return rejected_;
  }
  [[nodiscard]] const AdmissionConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Waits until the queue has space, the queue closes, or (when `bound` is
  /// set) the wait bound elapses; false = timed out. Re-checks the caller's
  /// cancellation token at a coarse tick so a blocked submitter can be
  /// cancelled.
  bool wait_for_space(std::unique_lock<std::mutex>& lock,
                      const par::ExecutionContext& ctx,
                      std::optional<std::chrono::milliseconds> bound) {
    constexpr std::chrono::milliseconds kTick{10};
    const auto deadline = clock_->now() +
                          bound.value_or(std::chrono::milliseconds::zero());
    for (;;) {
      if (closed_) return true;  // push() throws QueueClosed right after
      if (queue_.size() < config_.capacity) return true;
      ctx.throw_if_cancelled("RequestQueue::push");
      if (bound && clock_->now() >= deadline) return false;
      // Real-time tick regardless of the injected clock: it only bounds how
      // stale the next closed/space/deadline re-check can be.
      space_cv_.wait_for(lock, kTick);
    }
  }

  /// Caller holds the lock; takes the front item if any.
  std::optional<T> take(std::unique_lock<std::mutex>& lock) {
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    space_cv_.notify_one();
    return item;
  }

  AdmissionConfig config_;
  const util::Clock* clock_;
  mutable std::mutex mutex_;
  std::condition_variable item_cv_;   // waiters in pop()
  std::condition_variable space_cv_;  // waiters in push() backpressure
  std::deque<T> queue_;
  bool closed_ = false;
  std::size_t peak_depth_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace polarice::core::serve
