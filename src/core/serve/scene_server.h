#pragma once
// SceneServer — the async serving subsystem above the Fig 9 inference
// pipeline: a long-lived, thread-safe server that fronts a pool of U-Net
// replicas with queued admission, cross-scene tile batching, a result
// cache, and replica auto-scaling.
//
// Request lifecycle:
//   submit(scene)                        [any thread]
//     -> admission control (RequestQueue: reject / block / deadline)
//     -> SceneTicket (std::future-style handle)
//   scheduler thread
//     -> cancellation check -> result-cache lookup (content hash; a hit
//        resolves the ticket with zero forward passes)
//     -> single-flight coalescing: a scene whose content hash matches one
//        already mid-flight attaches to that leader's ticket instead of
//        running its own forward passes; the leader's completion resolves
//        every follower with the shared plane. If a leader fails or is
//        cancelled, the first live follower is promoted to a fresh leader
//        and re-runs the forward path — followers never inherit a leader's
//        cancellation.
//     -> cloud/shadow filter + pad -> tiles pushed to the batch scheduler
//   inference workers (one per potential replica)
//     -> dynamic batching: each forward pass is filled with up to
//        batch_tiles tiles from ANY queued scenes, waiting at most
//        max_batch_wait to top up a partial batch (and not at all when no
//        admitted scene can still contribute tiles)
//     -> replica lease (serve::ReplicaPool; grown on demand up to
//        max_replicas when tiles are backed up, shrunk back to
//        min_replicas after scale_down_idle of quiet)
//     -> per-tile argmax planes scattered back to their owning tickets;
//        the last tile stitches, crops, caches, and resolves the ticket.
//
// SLO scheduling: every request carries a Priority class and an optional
// deadline (SubmitOptions, or par::ExecutionContext::with_deadline). The
// batch scheduler fills forward passes in (priority, earliest-deadline-
// first, FIFO) order, and work that can no longer meet its deadline is shed
// *before* burning a forward pass — at prepare, at batch fill, and by a
// periodic expiry sweep — resolving the ticket with DeadlineExceeded
// (counted in stats().shed). All timing runs on an injectable util::Clock
// so the behaviors are deterministically testable.
//
// Failure recovery: a replica whose forward pass throws is quarantined
// (ReplicaPool::Lease::mark_failed) and rebuilt from a healthy clone by the
// watchdog thread; the failed batch is a batch-local event — its tiles are
// re-queued with capped exponential backoff under a per-scene retry budget,
// and budget exhaustion fails only the owning tickets, never batch
// neighbors. A FaultInjector (POLARICE_FAULT_INJECT builds) can force
// these paths deterministically.
//
// Determinism: per-tile results do not depend on batch composition (the
// batched-N conv path is bit-identical to per-sample processing), so every
// scene's output plane is bit-identical to a serial
// InferenceWorkflow::classify_scene with the same model/filter/tile size —
// regardless of how tiles from different scenes interleave, how many
// replicas serve, which requests hit the cache, or how many retries a
// replica failure forced.
//
// Cancellation: each ticket carries the submitter's par::ExecutionContext;
// cancelling it (or SceneTicket::cancel()) abandons the scene at the next
// pipeline boundary and resolves the ticket with par::OperationCancelled.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/cloud_filter.h"
#include "core/inference_session.h"
#include "core/serve/brownout.h"
#include "core/serve/cache_store.h"
#include "core/serve/fault_injector.h"
#include "core/serve/replica_pool.h"
#include "core/serve/request_queue.h"
#include "core/serve/result_cache.h"
#include "img/image.h"
#include "nn/unet.h"
#include "obs/instruments.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/context.h"
#include "util/virtual_clock.h"

namespace polarice::core::serve {

/// Request priority class. Higher classes always fill batches first;
/// within a class, earliest deadline first, then submission order.
enum class Priority : int {
  kBatch = 0,        // bulk / offline reprocessing
  kNormal = 1,       // default interactive traffic
  kInteractive = 2,  // operator-in-the-loop requests
};

[[nodiscard]] const char* to_string(Priority priority) noexcept;

/// Per-request scheduling knobs for submit().
struct SubmitOptions {
  Priority priority = Priority::kNormal;
  /// Relative deadline, measured from admission on the server's clock.
  /// Work that cannot complete by then is shed with DeadlineExceeded.
  /// nullopt defers to the context deadline (absolute), else no deadline.
  std::optional<std::chrono::nanoseconds> deadline;
  /// Per-scene replica-failure retry budget; -1 = the server's
  /// RetryPolicy::max_retries default.
  int max_retries = -1;
  /// Request-trace identity. 0 = mint a fresh id at submit; non-zero ids
  /// are propagated (the shard router stamps its fleet-wide id here so a
  /// worker-side trace is correlatable with the router's dispatch).
  std::uint64_t trace_id = 0;
};

/// Replica-failure retry discipline: a failed batch's tiles are re-queued
/// after backoff_base * 2^(attempt-1), capped at backoff_cap, until a
/// scene's budget is exhausted (which fails that scene with the batch's
/// error).
struct RetryPolicy {
  int max_retries = 2;
  std::chrono::milliseconds backoff_base{10};
  std::chrono::milliseconds backoff_cap{250};

  void validate() const;
};

struct SceneServerConfig {
  int tile_size = 64;          // paper serving shape: 256
  int batch_tiles = 8;         // tiles per forward pass (any mix of scenes)
  int min_replicas = 1;        // replicas kept warm
  int max_replicas = 2;        // scale-up ceiling
  bool pad_partial_tiles = true;  // edge-replicate ragged scenes (off:
                                  // submit throws, matching the workflow)
  CloudFilterConfig filter;
  AdmissionConfig admission;   // submission-queue bound + full-queue policy
  // Dynamic batching: how long a worker tops up a partial batch before
  // flushing it. Zero = flush whatever is queued immediately. Never waited
  // out when no admitted scene can still contribute tiles.
  std::chrono::milliseconds max_batch_wait{2};
  // Idle time after which replicas above min_replicas are retired.
  std::chrono::milliseconds scale_down_idle{250};
  std::size_t cache_bytes = std::size_t{64} << 20;  // result cache budget;
                                                    // 0 disables caching
  // Persistent cache tier (CacheStore). Empty = memory-only. When set, the
  // server warms the LRU from this directory on construction and appends
  // every newly computed full-quality plane back (flushed whenever the
  // pending batch reaches cache_flush_bytes, and at shutdown). Requires
  // cache_bytes > 0. The directory is flock-guarded: a second live server
  // on the same dir throws CacheStoreLocked.
  std::string cache_dir;
  // Identity of the serving configuration the cached planes were computed
  // under (model weights, tile size, filter...). Segments written under a
  // different fingerprint are discarded as stale on open.
  std::uint64_t cache_fingerprint = 0;
  std::size_t cache_flush_bytes = std::size_t{4} << 20;
  // Brownout: degrade kBatch work under sustained overload (see brownout.h).
  BrownoutPolicy brownout;
  // Single-flight coalescing: content-identical in-flight scenes share one
  // forward pass (works with the cache disabled; hashing happens whenever
  // either feature is on).
  bool single_flight = true;
  RetryPolicy retry;  // replica-failure retry discipline
  // SLO-breach trace retention: the sampler keeps this many slowest
  // completed traces plus this many shed/failed/cancelled ones
  // (slow_traces()). 0 keeps one of each.
  std::size_t trace_capacity = 16;
  // Time source for deadlines, backoff, batching, and expiry; nullptr =
  // the process steady clock. Tests inject a util::VirtualClock. Must
  // outlive the server.
  const util::Clock* clock = nullptr;
  // Deterministic failure hooks (POLARICE_FAULT_INJECT builds only;
  // ignored otherwise). nullptr = no injection. Must outlive the server.
  FaultInjector* fault_injector = nullptr;

  void validate() const;
};

/// Aggregate serving telemetry. `session` reuses InferenceSessionStats for
/// the forward-path counters so dashboards read both serving layers through
/// one struct: scenes/tiles are forward-path work (cache hits excluded),
/// busy_seconds sums submit->resolve latency of forward-path scenes,
/// wait_seconds/peak_leases describe replica-lease contention.
struct SceneServerStats {
  InferenceSessionStats session;
  std::size_t submitted = 0;   // tickets admitted past admission control
  std::size_t completed = 0;   // tickets resolved with a result (incl. hits)
  std::size_t cancelled = 0;   // tickets resolved via cancellation
  std::size_t failed = 0;      // tickets resolved with another error
  std::size_t rejected = 0;    // submissions refused by admission control
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_evictions = 0;
  std::size_t cache_warmed = 0;    // entries recovered from disk at startup
  std::size_t warm_hits = 0;       // cache hits answered by a warmed entry
  std::size_t cache_persisted = 0; // planes appended to the persistent tier
  std::size_t cache_corrupt = 0;   // on-disk entries discarded: checksum
  std::size_t cache_stale = 0;     // on-disk segments discarded: version /
                                   // fingerprint mismatch
  std::size_t degraded = 0;        // tickets resolved with a degraded plane
  std::size_t brownouts = 0;       // brownout mode entries
  bool brownout_active = false;    // gauge: currently degrading kBatch work
  std::size_t coalesced = 0;           // followers attached to an in-flight
                                       // leader (single-flight)
  std::size_t batches = 0;             // forward passes issued
  std::size_t cross_scene_batches = 0; // batches mixing >= 2 scenes
  std::size_t peak_queue_depth = 0;    // submission-queue high water
  std::size_t shed = 0;                // tickets resolved DeadlineExceeded
  std::size_t batch_failures = 0;      // forward passes that threw
  std::size_t retries = 0;             // scene retry events scheduled
  std::size_t retried_tiles = 0;       // tiles re-queued by those retries
  std::size_t retry_exhausted = 0;     // tickets failed on a spent budget
  std::size_t replicas_quarantined = 0;  // cumulative replica quarantines
  std::size_t replicas_rebuilt = 0;      // cumulative watchdog rebuilds
  int replicas = 0;                    // current replica count
  int peak_replicas = 0;               // auto-scaling high water
};

namespace detail {
struct TicketState;
}  // namespace detail

/// std::future-style handle to one submitted scene. Shared-state semantics:
/// copies observe the same outcome; get() may be called repeatedly and from
/// any thread.
class SceneTicket {
 public:
  SceneTicket() = default;  // !valid()

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool ready() const;             // resolved (result or error)
  void wait() const;                            // block until resolved
  bool wait_for(std::chrono::milliseconds timeout) const;  // false = timeout

  /// Blocks until resolved; returns the scene-sized class-id plane or
  /// rethrows the failure (par::OperationCancelled after cancel()).
  [[nodiscard]] img::ImageU8 get() const;

  /// Blocks until resolved; true when the plane was produced in brownout
  /// degraded mode (coarser stride) rather than at full quality. Callers
  /// that must not act on approximate labels check this before using get().
  [[nodiscard]] bool degraded() const;

  /// Requests cancellation of this scene only (cooperative: honoured at
  /// the next pipeline boundary; a scene may still complete if it was
  /// nearly done). Sibling submissions sharing the submitter's context are
  /// unaffected — cancelling that context instead abandons all of them.
  void cancel() const;

 private:
  friend class SceneServer;
  explicit SceneTicket(std::shared_ptr<detail::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::TicketState> state_;
};

class SceneServer {
 public:
  /// Clones `config.min_replicas` replicas from `model` (not retained).
  /// `ctx` supplies the server's intra-op pool and default progress sink.
  /// Starts the scheduler thread and `config.max_replicas` inference
  /// workers. Throws std::invalid_argument on bad config or a tile_size
  /// incompatible with the model depth.
  SceneServer(nn::UNet& model, SceneServerConfig config,
              par::ExecutionContext ctx = {});

  /// Drains in-flight work, then stops all threads (shutdown()).
  ~SceneServer();

  SceneServer(const SceneServer&) = delete;
  SceneServer& operator=(const SceneServer&) = delete;

  /// Admits one scene under the configured admission policy and returns its
  /// ticket. `ctx` rides along for cancellation/progress (and, if it has a
  /// pool, that pool is used for this scene's filter); a context deadline
  /// (with_deadline) applies when `options.deadline` is unset. Throws
  /// std::invalid_argument for malformed scenes, AdmissionRejected when
  /// admission control turns the request away, QueueClosed after
  /// shutdown().
  SceneTicket submit(img::ImageU8 scene, const SubmitOptions& options,
                     const par::ExecutionContext& ctx = {});
  SceneTicket submit(img::ImageU8 scene, const par::ExecutionContext& ctx);
  SceneTicket submit(img::ImageU8 scene);

  /// Synchronous convenience: submit + get.
  img::ImageU8 classify_scene(const img::ImageU8& scene_rgb);

  /// Stops admission, finishes every already-admitted scene, joins all
  /// server threads. Idempotent; called by the destructor.
  void shutdown();

  /// Consistent telemetry snapshot: every counter field is copied under one
  /// lock, so a reader never observes e.g. `completed` from after a scene
  /// finished next to a `submitted` from before it was admitted. Gauges
  /// owned by the components (replica counts, queue/lease high-waters,
  /// wait_seconds) are sampled from their own locks in the same call.
  /// Counter updates happen *before* the ticket resolves, so a caller
  /// returning from get() already sees its scene in any later snapshot.
  [[nodiscard]] SceneServerStats snapshot() const;

  /// Alias of snapshot(), kept for existing callers.
  [[nodiscard]] SceneServerStats stats() const { return snapshot(); }

  /// Scenes admitted but not yet picked up by the scheduler — the backlog
  /// a shard reports in its heartbeat (overload watermark input).
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }

  /// SLO-breach trace sampler contents: the N slowest completed requests
  /// plus the most recent shed/failed/cancelled ones, each with per-span
  /// timings (render with obs::render). N = config().trace_capacity.
  [[nodiscard]] std::vector<obs::TraceRecord> slow_traces() const {
    return tracer_.snapshot();
  }

  [[nodiscard]] const SceneServerConfig& config() const noexcept {
    return config_;
  }

 private:
  struct TileWork {
    std::shared_ptr<detail::TicketState> ticket;
    int tile = 0;  // row-major index in the scene's padded tile grid
  };
  struct DelayedTile {
    TileWork work;
    util::Clock::time_point ready_at;  // backoff expiry
  };

  void scheduler_loop();
  void worker_loop();
  void watchdog_loop();

  /// Scheduler-side per-scene work: cancellation check, cache lookup,
  /// single-flight attach-or-lead, then fan_out().
  void prepare(const std::shared_ptr<detail::TicketState>& ticket);

  /// Filter + pad + tile fan-out of one leading scene (also called when a
  /// follower is promoted after its leader failed).
  void fan_out(const std::shared_ptr<detail::TicketState>& ticket);

  /// Single-flight: registers the ticket as leader of its content hash, or
  /// attaches it as a follower of the current leader (true = attached; the
  /// caller must not fan the scene out).
  bool attach_or_lead(const std::shared_ptr<detail::TicketState>& ticket);

  /// Takes this leader's followers and retires the in-flight entry (empty
  /// when the ticket never led, or has no followers).
  [[nodiscard]] std::vector<std::shared_ptr<detail::TicketState>>
  take_followers(const std::shared_ptr<detail::TicketState>& ticket);

  /// Leader failed: resolve cancelled followers, promote the first live one
  /// to a fresh leader (re-registering the rest under it) and re-run its
  /// forward path.
  void promote(std::vector<std::shared_ptr<detail::TicketState>> followers);

  /// Pops one dynamic batch in (priority, EDF, FIFO) order, shedding
  /// expired scenes it encounters (empty only when stopping and drained).
  std::vector<TileWork> gather();

  /// Heap ordering: true when `a` must be scheduled before `b`.
  static bool tile_before(const TileWork& a, const TileWork& b) noexcept;

  /// Caller holds tile_mutex_: pops the most urgent queued tile.
  TileWork pop_tile();
  /// Caller holds tile_mutex_: pushes one tile into the ready heap.
  void push_tile(TileWork work);
  /// Caller holds tile_mutex_: moves delayed tiles whose backoff elapsed
  /// (all of them when `force`) into the ready heap.
  void promote_delayed(util::Clock::time_point now, bool force);

  /// Resolves a ticket with DeadlineExceeded (stats().shed). Callers must
  /// not hold tile_mutex_.
  void shed(const std::shared_ptr<detail::TicketState>& ticket);

  /// Scheduler idle tick: sheds every queued/delayed scene whose deadline
  /// passed without waiting for a worker to pop its tiles.
  void sweep_expired();

  /// A forward pass threw: re-queue the batch's tiles with backoff for
  /// scenes with retry budget left, fail the rest with `error`. Callers
  /// must not hold tile_mutex_.
  void handle_batch_failure(const std::vector<TileWork>& live,
                            std::exception_ptr error);

  /// Records a finished tile plane; the scene's last tile finalizes it.
  void deliver(const TileWork& work, img::ImageU8 plane);

  /// Stitch + crop + cache + resolve a fully-inferred scene.
  void finalize(const std::shared_ptr<detail::TicketState>& ticket);

  void resolve_error(const std::shared_ptr<detail::TicketState>& ticket,
                     std::exception_ptr error);

  /// Marks one admitted scene as past the tile fan-out point (or abandoned)
  /// so batch top-up stops waiting once nothing more can arrive.
  void retire_pending();

  /// Brownout sample point: feeds the submission-queue depth to the
  /// controller (any thread).
  void sample_brownout();

  /// Appends one full-quality plane to the persistent tier, flushing when
  /// the pending batch crosses the threshold. No-op without a store.
  /// Persistence failures are contained here — serving never fails because
  /// a disk did.
  void persist(const SceneKey& key, const img::ImageU8& plane);

  /// Hands a resolved ticket's trace to the SLO-breach sampler.
  void record_trace(detail::TicketState& t, const char* outcome);

  SceneServerConfig config_;
  par::ExecutionContext server_ctx_;
  const util::Clock* clock_;  // config_.clock or the process clock
  CloudShadowFilter filter_;
  ReplicaPool pool_;
  ResultCache cache_;
  std::unique_ptr<CacheStore> store_;  // persistent tier; null = memory-only
  // Keys recovered from disk at startup; a cache hit on one is a warm hit.
  // Written before the server threads start, read-only after.
  std::unordered_set<SceneKey, SceneKeyHash> warmed_;
  BrownoutController brownout_;
  RequestQueue<std::shared_ptr<detail::TicketState>> queue_;

  // Single-flight state: content hash -> {leader, followers}. An entry
  // lives from the leader's registration to its resolution.
  struct Flight {
    std::shared_ptr<detail::TicketState> leader;
    std::vector<std::shared_ptr<detail::TicketState>> followers;
  };
  std::mutex inflight_mutex_;
  std::unordered_map<SceneKey, Flight, SceneKeyHash> inflight_;

  // Batch scheduler state. `tiles_` is a binary heap in tile_before order
  // (priority desc, EDF, submission FIFO); `delayed_` is a min-heap on
  // backoff expiry feeding back into it.
  std::mutex tile_mutex_;
  std::condition_variable tile_cv_;
  std::vector<TileWork> tiles_;        // guarded by tile_mutex_
  std::vector<DelayedTile> delayed_;   // guarded by tile_mutex_
  bool tiles_stopping_ = false;        // guarded by tile_mutex_
  std::atomic<std::size_t> pending_scenes_{0};
  std::atomic<std::uint64_t> next_seq_{0};  // submission FIFO tiebreak

  // Replica watchdog: woken on quarantine, rebuilds via pool_.repair().
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  // guarded by watchdog_mutex_

  // Server-level counters (queue/cache/pool keep their own).
  mutable std::mutex stats_mutex_;
  SceneServerStats counters_;  // only the fields not derived elsewhere

  // Observability: process-interned instruments (no registry lock on the
  // hot path) and the per-server SLO-breach trace sampler.
  obs::ServeInstruments& obs_;
  obs::TraceSampler tracer_;
  // Component gauges published into obs::registry() for the server's
  // lifetime. Declared last so they unregister before the components they
  // sample are torn down.
  std::vector<obs::GaugeHandle> gauges_;

  std::atomic<bool> shut_down_{false};
  std::jthread scheduler_;
  std::vector<std::jthread> workers_;
  std::jthread watchdog_;
};

}  // namespace polarice::core::serve
