#pragma once
// ResultCache — content-addressed LRU cache of classified scene planes.
//
// Key: a 128-bit FNV-1a hash of the scene's pixel bytes plus its exact
// geometry (two independent 64-bit streams; the geometry fields also
// participate in equality, so a collision additionally requires identical
// dimensions). Within one SceneServer the model weights, filter config and
// tile size are fixed, so scene content alone addresses a result.
//
// Value: the scene-sized class-id plane. Entries are charged their pixel
// bytes plus a fixed bookkeeping overhead against a byte budget; inserting
// past the budget evicts least-recently-used entries first. A plane larger
// than the whole budget is simply not cached.
//
// Thread-safe; every operation takes the internal mutex (lookups copy the
// plane out so no reference escapes the lock).

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "img/image.h"

namespace polarice::core::serve {

/// Content identity of one submitted scene.
struct SceneKey {
  std::uint64_t hash_lo = 0;
  std::uint64_t hash_hi = 0;
  int width = 0;
  int height = 0;
  int channels = 0;

  bool operator==(const SceneKey&) const = default;
};

/// Hashes scene content + geometry into a SceneKey.
[[nodiscard]] SceneKey hash_scene(const img::ImageU8& scene);

struct SceneKeyHash {
  std::size_t operator()(const SceneKey& key) const noexcept {
    return static_cast<std::size_t>(key.hash_lo ^ (key.hash_hi * 0x9e3779b97f4a7c15ULL));
  }
};

struct ResultCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;  // current
  std::size_t bytes = 0;    // current charged bytes
};

class ResultCache {
 public:
  /// `byte_budget` = 0 disables the cache (lookups miss, inserts drop).
  explicit ResultCache(std::size_t byte_budget);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns a copy of the cached plane and refreshes its recency, or
  /// nullopt. Counts a hit or a miss.
  [[nodiscard]] std::optional<img::ImageU8> lookup(const SceneKey& key);

  /// Inserts (or refreshes) a plane, evicting LRU entries to fit the
  /// budget. No-op when the plane alone exceeds the budget. Returns the
  /// number of entries evicted by this insert, so the caller can fold
  /// evictions into its own consistent counter set.
  std::size_t insert(const SceneKey& key, const img::ImageU8& plane);

  void clear();
  [[nodiscard]] ResultCacheStats stats() const;
  [[nodiscard]] std::size_t byte_budget() const noexcept { return budget_; }

 private:
  struct Entry {
    SceneKey key;
    img::ImageU8 plane;
    std::size_t charge = 0;
  };

  // Fixed per-entry bookkeeping charge (list/map nodes, key, counters).
  static constexpr std::size_t kEntryOverhead = 128;

  static std::size_t charge_of(const img::ImageU8& plane) noexcept {
    return plane.size() + kEntryOverhead;
  }

  std::size_t evict_to_fit();  // caller holds mutex_; returns evictions

  const std::size_t budget_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<SceneKey, std::list<Entry>::iterator, SceneKeyHash> map_;
  ResultCacheStats stats_;
};

}  // namespace polarice::core::serve
