#include "core/serve/request_queue.h"

namespace polarice::core::serve {

const char* to_string(AdmissionPolicy policy) noexcept {
  switch (policy) {
    case AdmissionPolicy::kReject:
      return "reject";
    case AdmissionPolicy::kBlock:
      return "block";
    case AdmissionPolicy::kDeadline:
      return "deadline";
  }
  return "?";
}

void AdmissionConfig::validate() const {
  if (capacity < 1) {
    throw std::invalid_argument("AdmissionConfig: capacity < 1");
  }
  if (policy == AdmissionPolicy::kDeadline &&
      deadline < std::chrono::milliseconds::zero()) {
    throw std::invalid_argument("AdmissionConfig: negative deadline");
  }
}

}  // namespace polarice::core::serve
