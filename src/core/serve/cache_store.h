#pragma once
// CacheStore — the persistent, disk-backed tier under ResultCache.
//
// A directory of append-log segment files keyed by the same 128-bit
// content hash that keys the in-memory LRU. The store exists so a worker
// restart is not a cold start: SceneServer warms its ResultCache from here
// on construction, and every insert is appended back (and flushed on a
// byte threshold and at shutdown), so the expensive forward passes a
// worker performed survive its process.
//
// Durability discipline — a crash mid-write can never produce a
// readable-but-wrong entry:
//   * writes never touch a live segment: pending entries are written to
//     `seg-<n>.ice.tmp`, fsync'd, then atomically renamed to
//     `seg-<n>.ice` (and the directory fsync'd, making the rename itself
//     durable). A crash leaves either the old file set or the new one.
//   * every segment carries a versioned header (magic, format version,
//     config fingerprint) protected by its own checksum; every entry
//     carries a metadata checksum over its key/geometry/length fields and
//     a util::Fnv128 checksum over its payload bytes. A flipped bit
//     anywhere is detected on open and the damaged entry (or the
//     undecodable remainder of the segment) is discarded — never returned,
//     never UB.
//   * `*.tmp` leftovers from a crashed flush are deleted on open.
//
// Staleness: a segment whose format version or config fingerprint does not
// match the opener is discarded whole (and unlinked) — planes computed by a
// different model/tile configuration must never answer for this one.
//
// Exclusivity: the directory is guarded by a pidfile under flock. A second
// live process opening the same directory gets CacheStoreLocked — two
// workers appending to one cache dir would corrupt each other's segments.
// The lock dies with the process (flock semantics), so a SIGKILLed worker
// never wedges its directory.
//
// Reading is mmap-based: segments are mapped read-only, validated in
// place, and valid payloads copied out into images.
//
// Thread-safe: append()/flush()/stats() take an internal mutex. Loading
// happens in the constructor, before the store is shared.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/serve/result_cache.h"
#include "img/image.h"

namespace polarice::core::serve {

/// Persistent-tier failure (unusable directory, I/O error on flush).
class CacheStoreError : public std::runtime_error {
 public:
  explicit CacheStoreError(const std::string& why)
      : std::runtime_error("CacheStore: " + why) {}
};

/// The directory is already locked by a live process (pidfile + flock).
class CacheStoreLocked : public CacheStoreError {
 public:
  CacheStoreLocked(const std::string& dir, long holder_pid)
      : CacheStoreError("directory " + dir + " is locked by live pid " +
                        std::to_string(holder_pid)),
        holder_pid(holder_pid) {}
  long holder_pid = 0;
};

struct CacheStoreConfig {
  std::string dir;  // segment directory; created (one level) if missing
  // Identity of the serving configuration (model weights seed, tile size,
  // filter...). Segments written under a different fingerprint are stale:
  // discarded and unlinked on open.
  std::uint64_t fingerprint = 0;
  // Sanity ceiling for one entry's payload; larger claims are corrupt.
  std::size_t max_entry_bytes = std::size_t{1} << 30;
  // Opening a directory fragmented into at least this many segments
  // rewrites the surviving entries into one compacted segment.
  std::size_t compact_threshold = 8;

  void validate() const;
};

struct CacheStoreStats {
  std::size_t loaded = 0;     // valid entries recovered on open
  std::size_t corrupt = 0;    // entries (or undecodable tails) discarded
  std::size_t stale = 0;      // whole segments dropped: version/fingerprint
  std::size_t appended = 0;   // entries accepted by append() this run
  std::size_t flushed = 0;    // entries made durable by flush() this run
  std::size_t flushes = 0;    // segments finalized this run
  std::size_t pending = 0;    // appended, not yet flushed
  std::size_t bytes_on_disk = 0;  // finalized segment bytes
};

class CacheStore {
 public:
  struct Entry {
    SceneKey key;
    img::ImageU8 plane;
  };

  /// Locks the directory, sweeps *.tmp leftovers, loads and validates every
  /// finalized segment (discarding corrupt/stale data), and compacts when
  /// fragmented. Throws CacheStoreLocked when a live process holds the
  /// directory, CacheStoreError when it cannot be created or locked.
  explicit CacheStore(CacheStoreConfig config);

  /// Releases the directory lock. Does NOT flush — pending entries die with
  /// the store unless flush() ran (callers own the flush points).
  ~CacheStore();

  CacheStore(const CacheStore&) = delete;
  CacheStore& operator=(const CacheStore&) = delete;

  /// Moves out the entries recovered from disk (valid once, at warm-up).
  [[nodiscard]] std::vector<Entry> take_loaded();

  /// Buffers one entry for the next flush(). Content-addressed de-dup: a
  /// key already on disk or already pending is a no-op. Returns true when
  /// the entry was accepted (new key).
  bool append(const SceneKey& key, const img::ImageU8& plane);

  /// Bytes currently buffered — the flush-threshold input.
  [[nodiscard]] std::size_t pending_bytes() const;

  /// Writes pending entries into a fresh segment: tmp file, fsync, atomic
  /// rename, directory fsync. No-op when nothing is pending. Throws
  /// CacheStoreError on I/O failure (pending entries are kept for retry).
  void flush();

  [[nodiscard]] CacheStoreStats stats() const;
  [[nodiscard]] const std::string& dir() const noexcept {
    return config_.dir;
  }

 private:
  void load_segments();
  void load_one_segment(const std::string& path);
  /// Writes `entries` as segment index `seq`. Returns final file size.
  std::size_t write_segment(std::uint64_t seq,
                            const std::vector<Entry>& entries);
  void compact(std::vector<std::string> old_segments);

  CacheStoreConfig config_;
  int lock_fd_ = -1;

  mutable std::mutex mutex_;
  std::vector<Entry> loaded_;   // recovered on open, until take_loaded()
  std::vector<Entry> pending_;  // appended, awaiting flush
  std::size_t pending_bytes_ = 0;
  std::unordered_set<SceneKey, SceneKeyHash> known_;  // on disk or pending
  std::uint64_t next_segment_ = 0;
  CacheStoreStats stats_;
};

}  // namespace polarice::core::serve
