#include "core/dataset_builder.h"

#include <stdexcept>

#include "core/corpus.h"
#include "par/parallel_for.h"

namespace polarice::core {

nn::SegSample tile_to_sample(const img::ImageU8& rgb,
                             const img::ImageU8& labels) {
  if (rgb.channels() != 3 || labels.channels() != 1 ||
      rgb.width() != labels.width() || rgb.height() != labels.height()) {
    throw std::invalid_argument("tile_to_sample: shape mismatch");
  }
  const int w = rgb.width(), h = rgb.height();
  nn::SegSample sample;
  sample.image = tensor::Tensor({3, h, w});
  sample.labels.resize(static_cast<std::size_t>(h) * w);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < 3; ++c) {
        sample.image[(static_cast<std::int64_t>(c) * h + y) * w + x] =
            rgb.at(x, y, c) / 255.0f;
      }
      sample.labels[static_cast<std::size_t>(y) * w + x] = labels.at(x, y);
    }
  }
  return sample;
}

nn::SegDataset build_dataset(const std::vector<s2::Tile>& tiles,
                             const DatasetBuildConfig& config,
                             const par::ExecutionContext& ctx) {
  const CloudShadowFilter filter(config.autolabel.filter);
  const AutoLabeler labeler(config.autolabel);
  // Sequential-per-tile child context sharing the caller's cancellation.
  const par::ExecutionContext tile_ctx = ctx.with_pool(nullptr);

  std::vector<nn::SegSample> samples(tiles.size());
  par::parallel_for(
      ctx.pool(), 0, tiles.size(),
      [&](std::size_t i) {
        ctx.throw_if_cancelled("build_dataset");
        const auto& tile = tiles[i];
        img::ImageU8 image;
        switch (config.images) {
          case ImageVariant::kOriginal: image = tile.rgb; break;
          case ImageVariant::kFiltered:
            image = filter.apply(tile.rgb, tile_ctx);
            break;
          case ImageVariant::kClean: image = tile.rgb_clean; break;
        }
        img::ImageU8 labels;
        switch (config.labels) {
          case LabelSource::kGroundTruth:
            labels = tile.labels;
            break;
          case LabelSource::kManual: {
            auto manual_cfg = config.manual;
            // Annotator streams differ per tile but stay deterministic.
            manual_cfg.seed += static_cast<std::uint64_t>(
                tile.scene_index * 1009 + tile.tile_y * 31 + tile.tile_x);
            labels = s2::simulate_manual_labels(tile.labels, manual_cfg);
            break;
          }
          case LabelSource::kAuto:
            // The auto-labeler runs its own filter stage on the observed
            // imagery, exactly like the paper's Fig 6 pipeline.
            labels = labeler.label(tile.rgb, tile_ctx).labels;
            break;
        }
        samples[i] = tile_to_sample(image, labels);
      },
      /*grain=*/1);

  nn::SegDataset dataset;
  for (auto& sample : samples) dataset.add(std::move(sample));
  return dataset;
}


nn::SegDataset build_corpus_dataset(const CorpusConfig& config,
                                    LabelSource labels, ImageVariant images,
                                    const par::ExecutionContext& ctx) {
  return build_dataset(prepare_corpus(config, ctx), labels, images);
}

nn::SegDataset build_dataset(const std::vector<LabeledTile>& tiles,
                             LabelSource labels, ImageVariant images) {
  nn::SegDataset dataset;
  for (const auto& tile : tiles) {
    const img::ImageU8* image = nullptr;
    switch (images) {
      case ImageVariant::kOriginal: image = &tile.rgb; break;
      case ImageVariant::kFiltered: image = &tile.rgb_filtered; break;
      case ImageVariant::kClean: image = &tile.rgb_clean; break;
    }
    const img::ImageU8* label_plane = nullptr;
    switch (labels) {
      case LabelSource::kGroundTruth: label_plane = &tile.truth; break;
      case LabelSource::kManual: label_plane = &tile.manual_labels; break;
      case LabelSource::kAuto: label_plane = &tile.auto_labels; break;
    }
    dataset.add(tile_to_sample(*image, *label_plane));
  }
  return dataset;
}

}  // namespace polarice::core
