#include "core/parallel_autolabel.h"

#include "core/stages.h"

namespace polarice::core {

ParallelAutoLabeler::ParallelAutoLabeler(AutoLabelConfig config)
    : config_(std::move(config)) {}

std::vector<AutoLabelResult> ParallelAutoLabeler::run(
    const std::vector<img::ImageU8>& tiles, std::size_t workers,
    ParallelAutoLabelStats* stats) const {
  const AutoLabelStage stage(config_, AutoLabelPolicy::pool(workers));
  AutoLabelBatchStats batch_stats;
  auto results = stage.label_batch(tiles, par::ExecutionContext{},
                                   stats != nullptr ? &batch_stats : nullptr);
  if (stats != nullptr) {
    stats->seconds = batch_stats.seconds;
    stats->tiles = batch_stats.items;
    stats->tiles_per_second =
        stats->seconds > 0
            ? static_cast<double>(stats->tiles) / stats->seconds
            : 0.0;
  }
  return results;
}

}  // namespace polarice::core
