#include "core/parallel_autolabel.h"

#include <stdexcept>

#include "par/parallel_for.h"
#include "par/thread_pool.h"
#include "util/timer.h"

namespace polarice::core {

ParallelAutoLabeler::ParallelAutoLabeler(AutoLabelConfig config)
    : config_(std::move(config)) {}

std::vector<AutoLabelResult> ParallelAutoLabeler::run(
    const std::vector<img::ImageU8>& tiles, std::size_t workers,
    ParallelAutoLabelStats* stats) const {
  if (workers == 0) {
    throw std::invalid_argument("ParallelAutoLabeler: workers must be >= 1");
  }
  const AutoLabeler labeler(config_);
  std::vector<AutoLabelResult> results(tiles.size());

  util::WallTimer timer;
  if (workers == 1) {
    for (std::size_t i = 0; i < tiles.size(); ++i) {
      results[i] = labeler.label(tiles[i]);
    }
  } else {
    par::ThreadPool pool(workers);
    par::parallel_for(
        &pool, 0, tiles.size(),
        [&](std::size_t i) { results[i] = labeler.label(tiles[i]); },
        /*grain=*/1);
  }
  if (stats != nullptr) {
    stats->seconds = timer.seconds();
    stats->tiles = tiles.size();
    stats->tiles_per_second =
        stats->seconds > 0 ? static_cast<double>(tiles.size()) / stats->seconds
                           : 0.0;
  }
  return results;
}

}  // namespace polarice::core
