#include "core/calibrate.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>
#include <stdexcept>

#include "img/color.h"
#include "img/threshold.h"

namespace polarice::core {

namespace {
/// Snaps an Otsu cut to the nearest histogram valley: between-class
/// variance has broad near-ties around class boundaries (it barely
/// penalizes leaking a sliver of a far-away class), while the true
/// inter-mode valley is where the smoothed density bottoms out. Searches a
/// +-radius window and returns the center of the minimal-density run.
int snap_to_valley(const double* smoothed, int cut, int lo, int hi,
                   int radius) {
  const int from = std::max(lo, cut - radius);
  const int to = std::min(hi, cut + radius);
  // Collect contiguous runs of the minimal density; several distinct
  // valleys can tie (e.g., multiple stretches of empty bins), in which case
  // the one nearest the Otsu cut is the boundary Otsu was approximating.
  double best = std::numeric_limits<double>::max();
  struct Run { int start, end; };
  std::vector<Run> runs;
  for (int i = from; i <= to; ++i) {
    if (smoothed[i] < best - 1e-12) {
      best = smoothed[i];
      runs.clear();
      runs.push_back({i, i});
    } else if (smoothed[i] <= best + 1e-12) {
      if (!runs.empty() && runs.back().end == i - 1) {
        runs.back().end = i;  // extend the contiguous run
      } else {
        runs.push_back({i, i});  // a separate valley at the same depth
      }
    }
  }
  if (runs.empty()) return cut;
  int best_center = cut;
  int best_distance = std::numeric_limits<int>::max();
  for (const auto& run : runs) {
    const int center = (run.start + run.end) / 2;
    const int distance = std::abs(center - cut);
    if (distance < best_distance) {
      best_distance = distance;
      best_center = center;
    }
  }
  return best_center;
}
}  // namespace

CalibratedThresholds calibrate_thresholds_from_v(const img::ImageU8& v_plane) {
  if (v_plane.channels() != 1) {
    throw std::invalid_argument(
        "calibrate_thresholds_from_v: expected V plane");
  }
  std::uint64_t hist[256];
  img::histogram256(v_plane, hist);
  int occupied = 0;
  for (int i = 0; i < 256; ++i) occupied += hist[i] != 0;
  if (occupied < 3) {
    throw std::invalid_argument(
        "calibrate_thresholds: histogram too degenerate (need >= 3 levels)");
  }

  auto [t1, t2] = img::otsu_two_level(v_plane);

  // Valley refinement on a lightly smoothed histogram.
  double smoothed[256] = {};
  for (int i = 0; i < 256; ++i) {
    double acc = 0.0, norm = 0.0;
    for (int d = -2; d <= 2; ++d) {
      const int j = i + d;
      if (j < 0 || j > 255) continue;
      const double w = 3.0 - std::abs(d);
      acc += w * static_cast<double>(hist[j]);
      norm += w;
    }
    smoothed[i] = acc / norm;
  }
  constexpr int kValleyRadius = 40;
  t1 = static_cast<std::uint8_t>(
      snap_to_valley(smoothed, t1, 1, t2 - 1, kValleyRadius));
  t2 = static_cast<std::uint8_t>(
      snap_to_valley(smoothed, t2, t1 + 1, 254, kValleyRadius));

  CalibratedThresholds out;
  out.cut_low = t1;
  out.cut_high = t2;
  out.ranges = {{
      {{0, 0, 0}, {180, 255, t1}},  // open water: V <= t1
      {{0, 0, static_cast<std::uint8_t>(t1 + 1)},
       {180, 255, t2}},             // thin ice: t1 < V <= t2
      {{0, 0, static_cast<std::uint8_t>(t2 + 1)},
       {180, 255, 255}},            // thick ice: V > t2
  }};
  return out;
}

CalibratedThresholds calibrate_thresholds(const img::ImageU8& rgb) {
  if (rgb.channels() != 3) {
    throw std::invalid_argument("calibrate_thresholds: expected RGB scene");
  }
  return calibrate_thresholds_from_v(
      img::extract_channel(img::rgb_to_hsv(rgb), 2));
}

}  // namespace polarice::core
