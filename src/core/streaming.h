#pragma once
// StreamingExecutor — bounded-memory, stage-overlapped execution of the
// per-scene corpus sub-graph (Acquire -> [CloudFilter] -> AutoLabel ->
// ManualLabel -> TileSplit).
//
// The batch Pipeline runs each stage over the WHOLE fleet before the next
// stage starts, so every scene's planes are resident between stages and the
// corpus phase peaks at O(scenes) plane memory — ROADMAP's blocker for
// paper-scale 2048^2 fleets. The streaming executor instead drives scenes
// through the stages as a software pipeline:
//
//   * a TicketWindow admits at most `window` scenes at any instant — scene
//     i can be in TileSplit while scene i+window-1 is still in Acquire;
//   * each admitted scene runs its stage chain inside one SceneSlot on the
//     context's work-stealing pool (par::TaskGroup), with intra-scene row
//     parallelism from the same pool, so a small window still saturates
//     cores;
//   * a finished scene hands its tiles to the accumulating corpus and frees
//     its planes immediately (the ticket is released only after the slot
//     dies), subsuming DropArtifactsStage for this path.
//
// Determinism: per-scene seeds are index-derived and every per-scene kernel
// is pool-invariant, so the tile list — restored to fleet order before it
// reaches TrainTestSplit — is bit-identical to the batch pipeline for every
// window size and pool shape.

#include <cstddef>
#include <memory>
#include <vector>

#include "core/corpus.h"
#include "core/pipeline.h"
#include "core/stages.h"
#include "par/context.h"

namespace polarice::core {

/// Telemetry of one streaming run.
struct StreamingStats {
  std::size_t scenes = 0;          // scenes driven through the stage chain
  std::size_t peak_in_flight = 0;  // residency high water (<= window)
};

class StreamingExecutor {
 public:
  /// `window` = max scenes holding planes at once. Throws
  /// std::invalid_argument when zero.
  explicit StreamingExecutor(std::size_t window);

  /// Drives scenes [0, num_scenes) through `stages` in order and returns
  /// the concatenated tiles in fleet order (batch order). Without a pool on
  /// the context, scenes run one at a time (the window degenerates to 1).
  /// Cancellation is honoured between stages and while waiting for a
  /// ticket; the first failure stops admission and propagates.
  std::vector<LabeledTile> run(
      const std::vector<std::unique_ptr<SceneStage>>& stages,
      std::size_t num_scenes, const par::ExecutionContext& ctx = {},
      StreamingStats* stats = nullptr) const;

  [[nodiscard]] std::size_t window() const noexcept { return window_; }

 private:
  std::size_t window_;
};

/// The whole corpus sub-graph as ONE pipeline stage running under the
/// streaming executor: produces keys::kCorpusTiles and nothing else —
/// scene-level planes never enter the ArtifactStore, so the batch graph's
/// DropArtifactsStage has nothing to drop and is not needed. Drop-in
/// replacement for the five corpus stages in TrainingWorkflow's Fig 2
/// graph when CorpusExecution::streaming is selected.
class StreamingCorpusStage : public Stage {
 public:
  /// `config.execution` is ignored in favour of `window` (the stage IS the
  /// streaming mode).
  StreamingCorpusStage(CorpusConfig config, std::size_t window);

  [[nodiscard]] std::string name() const override { return "corpus_stream"; }
  [[nodiscard]] std::vector<std::string> produces() const override {
    return {keys::kCorpusTiles};
  }
  void run(const par::ExecutionContext& ctx, ArtifactStore& store) override;

  [[nodiscard]] std::size_t window() const noexcept {
    return executor_.window();
  }

 private:
  CorpusConfig config_;
  StreamingExecutor executor_;
};

}  // namespace polarice::core
