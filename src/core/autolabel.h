#pragma once
// Color-segmentation auto-labeler (paper §III.B, Fig 6): optional thin-cloud
// /shadow filtering, HSV conversion, one in-range mask per class with the
// paper's thresholds, and a merge into a single class-id plane plus the
// paper's color-coded label image.
//
// Two implementations produce bit-identical output:
//  * label() — the production path. One fused, row-parallel pass per pixel:
//    RGB -> HSV -> per-class band test -> class id + label color + count,
//    materializing no intermediate HSV image and no per-class masks.
//  * label_reference() — the original multi-pass pipeline (whole-image HSV,
//    kNumClasses in_range masks, merge, colorize). Kept as the ground truth
//    the fused path is tested against, and as the readable description of
//    the algorithm.

#include <array>
#include <cstddef>

#include "core/cloud_filter.h"
#include "img/image.h"
#include "par/context.h"
#include "par/thread_pool.h"
#include "s2/classes.h"

namespace polarice::core {

struct AutoLabelConfig {
  bool apply_filter = true;  // run CloudShadowFilter before segmenting
  CloudFilterConfig filter;
  std::array<s2::HsvRange, s2::kNumClasses> ranges = s2::kPaperHsvRanges;
};

struct AutoLabelResult {
  img::ImageU8 labels;      // single-channel class ids
  img::ImageU8 colorized;   // paper color coding (green/blue/red)
  img::ImageU8 used_image;  // the image that was segmented (filtered or raw)
  std::array<std::size_t, s2::kNumClasses> class_counts{};
};

class AutoLabeler {
 public:
  explicit AutoLabeler(AutoLabelConfig config = {});

  /// Runs the Fig 6 pipeline on one RGB tile or scene — fused single-pass
  /// segmentation. The context's pool parallelizes over rows; the default
  /// context runs sequentially (per-tile callers parallelize over tiles
  /// instead, via AutoLabelStage).
  [[nodiscard]] AutoLabelResult label(
      const img::ImageU8& rgb, const par::ExecutionContext& ctx = {}) const;

  /// Reference multi-pass implementation (HSV image + per-class masks).
  /// Bit-identical to label(); quadratically slower in passes over the
  /// scene. Tests compare the two.
  [[nodiscard]] AutoLabelResult label_reference(const img::ImageU8& rgb) const;

  [[nodiscard]] const AutoLabelConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] AutoLabelResult label_impl(
      const img::ImageU8& rgb, const par::ExecutionContext& ctx) const;

  AutoLabelConfig config_;
  CloudShadowFilter filter_;
};

}  // namespace polarice::core
