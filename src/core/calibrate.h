#pragma once
// Automatic HSV threshold calibration — the paper's §V future work, where
// the authors note the summer Ross Sea thresholds had to be retuned by hand
// for the partial-night season and for other regions.
//
// The calibrator replaces the hand-tuning: it computes the V histogram of a
// (filtered) scene and finds the two cuts that maximize three-class
// between-class variance (exact two-level Otsu), yielding a drop-in
// replacement for the per-class HSV ranges of AutoLabelConfig.

#include <array>

#include "img/image.h"
#include "s2/classes.h"

namespace polarice::core {

struct CalibratedThresholds {
  std::uint8_t cut_low = 0;   // water | thin-ice boundary (V)
  std::uint8_t cut_high = 0;  // thin-ice | thick-ice boundary (V)
  std::array<s2::HsvRange, s2::kNumClasses> ranges;
};

/// Calibrates class thresholds from a representative RGB scene (apply the
/// cloud/shadow filter first for cloudy scenes). Throws if the scene's V
/// histogram is too degenerate to split (fewer than 3 occupied levels).
CalibratedThresholds calibrate_thresholds(const img::ImageU8& rgb);

/// Same, from an already-extracted V plane.
CalibratedThresholds calibrate_thresholds_from_v(const img::ImageU8& v_plane);

}  // namespace polarice::core
