#include "core/inference_session.h"

#include <algorithm>
#include <stdexcept>

#include "core/stages.h"
#include "img/ops.h"
#include "s2/tiles.h"
#include "util/timer.h"

namespace polarice::core {

namespace {

/// Edge-replicating pad to the given dimensions (>= source dimensions).
img::ImageU8 pad_edge(const img::ImageU8& src, int width, int height) {
  img::ImageU8 out(width, height, src.channels());
  for (int y = 0; y < height; ++y) {
    const int sy = std::min(y, src.height() - 1);
    for (int x = 0; x < width; ++x) {
      const int sx = std::min(x, src.width() - 1);
      for (int c = 0; c < src.channels(); ++c) {
        out.at(x, y, c) = src.at(sx, sy, c);
      }
    }
  }
  return out;
}

}  // namespace

void InferenceSessionConfig::validate() const {
  if (tile_size <= 0) {
    throw std::invalid_argument("InferenceSessionConfig: tile_size <= 0");
  }
  if (replicas < 1) {
    throw std::invalid_argument("InferenceSessionConfig: replicas < 1");
  }
  if (batch_tiles < 1) {
    throw std::invalid_argument("InferenceSessionConfig: batch_tiles < 1");
  }
  filter.validate();
}

InferenceSession::InferenceSession(nn::UNet& model,
                                   InferenceSessionConfig config,
                                   par::ExecutionContext ctx)
    : config_(config), session_ctx_(std::move(ctx)), filter_(config.filter) {
  config_.validate();
  if (config_.tile_size % model.config().spatial_divisor() != 0) {
    throw std::invalid_argument(
        "InferenceSession: tile_size incompatible with model depth");
  }
  replicas_.reserve(static_cast<std::size_t>(config_.replicas));
  free_.reserve(static_cast<std::size_t>(config_.replicas));
  for (int i = 0; i < config_.replicas; ++i) {
    auto replica = std::make_unique<nn::UNet>(model.config());
    replica->copy_parameters_from(model);
    free_.push_back(replica.get());
    replicas_.push_back(std::move(replica));
  }
}

InferenceSession::ReplicaLease::ReplicaLease(InferenceSession& session)
    : session_(session) {
  std::unique_lock lock(session_.mutex_);
  session_.replica_cv_.wait(lock, [&] { return !session_.free_.empty(); });
  model_ = session_.free_.back();
  session_.free_.pop_back();
}

InferenceSession::ReplicaLease::~ReplicaLease() {
  {
    const std::scoped_lock lock(session_.mutex_);
    session_.free_.push_back(model_);
  }
  session_.replica_cv_.notify_one();
}

img::ImageU8 InferenceSession::classify_scene(const img::ImageU8& scene_rgb) {
  return classify_scene(scene_rgb, session_ctx_);
}

img::ImageU8 InferenceSession::classify_scene(const img::ImageU8& scene_rgb,
                                              const par::ExecutionContext& ctx) {
  if (scene_rgb.channels() != 3) {
    throw std::invalid_argument("InferenceSession: expected RGB scene");
  }
  const int ts = config_.tile_size;
  const bool partial =
      scene_rgb.width() % ts != 0 || scene_rgb.height() % ts != 0;
  if (partial && !config_.pad_partial_tiles) {
    throw std::invalid_argument(
        "InferenceSession: scene size must be a tile multiple "
        "(or enable pad_partial_tiles)");
  }
  ctx.throw_if_cancelled("InferenceSession::classify_scene");
  util::WallTimer timer;

  // Fig 9 order: filter the full scene once (the envelopes want real
  // context, not replicated edges), then pad the filtered imagery out to
  // the tile grid.
  img::ImageU8 filtered = filter_.apply(scene_rgb, ctx);
  if (partial) {
    const int padded_w = (scene_rgb.width() + ts - 1) / ts * ts;
    const int padded_h = (scene_rgb.height() + ts - 1) / ts * ts;
    filtered = pad_edge(filtered, padded_w, padded_h);
  }
  const int tiles_x = filtered.width() / ts;
  const int tiles_y = filtered.height() / ts;

  img::ImageU8 labels;
  {
    ReplicaLease lease(*this);
    const auto tile_planes = infer_scene_tiles(
        lease.model(), filtered, ts, config_.batch_tiles, ctx);
    labels = s2::stitch_labels(tile_planes, tiles_x, tiles_y);
  }
  if (partial) {
    labels = img::crop(labels, 0, 0, scene_rgb.width(), scene_rgb.height());
  }

  {
    const std::scoped_lock lock(mutex_);
    ++stats_.scenes;
    stats_.tiles += static_cast<std::size_t>(tiles_x) * tiles_y;
    stats_.busy_seconds += timer.seconds();
  }
  return labels;
}

InferenceSessionStats InferenceSession::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace polarice::core
