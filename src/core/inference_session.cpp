#include "core/inference_session.h"

#include <algorithm>
#include <stdexcept>

#include "core/stages.h"
#include "img/ops.h"
#include "s2/tiles.h"
#include "util/timer.h"

namespace polarice::core {

void InferenceSessionConfig::validate() const {
  if (tile_size <= 0) {
    throw std::invalid_argument("InferenceSessionConfig: tile_size <= 0");
  }
  if (replicas < 1) {
    throw std::invalid_argument("InferenceSessionConfig: replicas < 1");
  }
  if (batch_tiles < 1) {
    throw std::invalid_argument("InferenceSessionConfig: batch_tiles < 1");
  }
  filter.validate();
}

namespace {
const InferenceSessionConfig& validated(const InferenceSessionConfig& config,
                                        const nn::UNet& model) {
  config.validate();
  require_tile_compatible(model, config.tile_size, "InferenceSession");
  return config;
}
}  // namespace

InferenceSession::InferenceSession(nn::UNet& model,
                                   InferenceSessionConfig config,
                                   par::ExecutionContext ctx)
    : config_(validated(config, model)),
      session_ctx_(std::move(ctx)),
      filter_(config.filter),
      pool_(model, config.replicas, config.replicas) {}

img::ImageU8 InferenceSession::classify_scene(const img::ImageU8& scene_rgb) {
  return classify_scene(scene_rgb, session_ctx_);
}

img::ImageU8 InferenceSession::classify_scene(const img::ImageU8& scene_rgb,
                                              const par::ExecutionContext& ctx) {
  if (scene_rgb.channels() != 3) {
    throw std::invalid_argument("InferenceSession: expected RGB scene");
  }
  const int ts = config_.tile_size;
  const bool partial =
      scene_rgb.width() % ts != 0 || scene_rgb.height() % ts != 0;
  if (partial && !config_.pad_partial_tiles) {
    throw std::invalid_argument(
        "InferenceSession: scene size must be a tile multiple "
        "(or enable pad_partial_tiles)");
  }
  ctx.throw_if_cancelled("InferenceSession::classify_scene");
  util::WallTimer timer;

  // Fig 9 order: filter the full scene once (the envelopes want real
  // context, not replicated edges), then pad the filtered imagery out to
  // the tile grid.
  img::ImageU8 filtered = filter_.apply(scene_rgb, ctx);
  if (partial) {
    const int padded_w = (scene_rgb.width() + ts - 1) / ts * ts;
    const int padded_h = (scene_rgb.height() + ts - 1) / ts * ts;
    filtered = img::pad_edge(filtered, padded_w, padded_h);
  }
  const int tiles_x = filtered.width() / ts;
  const int tiles_y = filtered.height() / ts;

  img::ImageU8 labels;
  {
    serve::ReplicaPool::Lease lease(pool_);
    const auto tile_planes = infer_scene_tiles(
        lease.model(), filtered, ts, config_.batch_tiles, ctx);
    labels = s2::stitch_labels(tile_planes, tiles_x, tiles_y);
  }
  if (partial) {
    labels = img::crop(labels, 0, 0, scene_rgb.width(), scene_rgb.height());
  }

  {
    const std::scoped_lock lock(mutex_);
    ++stats_.scenes;
    stats_.tiles += static_cast<std::size_t>(tiles_x) * tiles_y;
    stats_.busy_seconds += timer.seconds();
  }
  return labels;
}

InferenceSessionStats InferenceSession::stats() const {
  InferenceSessionStats out;
  {
    const std::scoped_lock lock(mutex_);
    out = stats_;
  }
  out.wait_seconds = pool_.wait_seconds();
  out.peak_leases = pool_.peak_leases();
  return out;
}

}  // namespace polarice::core
