#pragma once
// Lead detection — the application the paper's introduction and related
// work (Muchow et al., lead-width distributions from Sentinel-2) motivate.
//
// A lead is a narrow, elongated crack of open water inside the ice sheet.
// Given a class-id label map (from the auto-labeler or a U-Net), the
// detector isolates open-water components, removes wide-open water bodies
// by morphological opening, keeps elongated components, and reports
// per-lead geometry including the mean width estimate
// (area / skeleton-ish length ~ area / max(bbox side)).

#include <vector>

#include "img/components.h"
#include "img/image.h"

namespace polarice::core {

struct LeadDetectorConfig {
  int open_water_class = 0;     // class id treated as water
  int max_lead_width = 9;       // opening kernel: wider water is "ocean"
  double min_elongation = 3.0;  // bbox aspect ratio cutoff
  std::size_t min_area = 30;    // ignore speckles
};

struct Lead {
  img::ComponentStats component;
  double length = 0.0;      // approximated by the longer bbox side
  double mean_width = 0.0;  // area / length
};

struct LeadAnalysis {
  std::vector<Lead> leads;
  img::ImageU8 lead_mask;       // 255 where a detected lead lies
  double lead_area_fraction = 0.0;  // lead pixels / image pixels
};

class LeadDetector {
 public:
  explicit LeadDetector(LeadDetectorConfig config = {});

  /// Analyzes a class-id label plane (single channel).
  [[nodiscard]] LeadAnalysis detect(const img::ImageU8& labels) const;

  [[nodiscard]] const LeadDetectorConfig& config() const noexcept {
    return config_;
  }

 private:
  LeadDetectorConfig config_;
};

}  // namespace polarice::core
