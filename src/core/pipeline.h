#pragma once
// Composable pipeline API — the paper's two workflows (Fig 2 training, Fig 9
// inference) expressed as stage graphs instead of monolithic functions.
//
// A Stage declares the artifact keys it consumes and produces and does its
// work against a typed ArtifactStore. A Pipeline is an ordered list of
// stages; before running it validates that every consumed key is produced
// by an earlier stage or present in the seed store, then runs the stages in
// order, reporting per-stage progress and honouring the context's
// cancellation token between stages. Swapping a labeler, filter, or model
// is now "replace one stage" rather than "edit workflow.cpp".

#include <algorithm>
#include <any>
#include <memory>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <unordered_map>
#include <utility>
#include <vector>

#include "par/context.h"

namespace polarice::core {

/// Type-safe keyed artifact container passed between stages. Values are
/// stored by exact type; get() with the wrong type or a missing key throws
/// with the key name (the debuggable failure mode for a miswired graph).
class ArtifactStore {
 public:
  template <typename T>
  void put(const std::string& key, T value) {
    items_[key] = std::any(std::move(value));
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return items_.count(key) != 0;
  }

  template <typename T>
  [[nodiscard]] const T& get(const std::string& key) const {
    const T* value = std::any_cast<T>(&item(key));
    if (value == nullptr) {
      throw std::logic_error("ArtifactStore: artifact '" + key +
                             "' holds a different type than requested");
    }
    return *value;
  }

  /// Non-throwing lookup: nullptr when the key is absent or holds another
  /// type. Lets polymorphic stages accept alternative artifact shapes.
  template <typename T>
  [[nodiscard]] const T* try_get(const std::string& key) const {
    const auto it = items_.find(key);
    return it == items_.end() ? nullptr : std::any_cast<T>(&it->second);
  }

  /// Moves an artifact out of the store (the slot is erased).
  template <typename T>
  [[nodiscard]] T take(const std::string& key) {
    T out = std::move(*std::any_cast<T>(&mutable_item(key)));
    items_.erase(key);
    return out;
  }

  /// Removes an artifact if present (no-op otherwise). Lets graphs release
  /// large intermediates once their last consumer has run.
  void erase(const std::string& key) { items_.erase(key); }

  [[nodiscard]] std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(items_.size());
    for (const auto& [key, value] : items_) out.push_back(key);
    return out;
  }

 private:
  /// A missing key is almost always a miswired graph (e.g. reading a
  /// scene-level plane after a streaming corpus run freed it), so the
  /// message names what IS resident to make the mismatch visible.
  [[nodiscard]] std::string missing_message(const std::string& key) const {
    std::string msg = "ArtifactStore: missing artifact '" + key + "'";
    if (items_.empty()) return msg + " (store is empty)";
    auto resident = keys();
    std::sort(resident.begin(), resident.end());
    msg += "; store holds: ";
    for (std::size_t i = 0; i < resident.size(); ++i) {
      if (i != 0) msg += ", ";
      msg += "'" + resident[i] + "'";
    }
    return msg;
  }

  [[nodiscard]] const std::any& item(const std::string& key) const {
    const auto it = items_.find(key);
    if (it == items_.end()) {
      throw std::logic_error(missing_message(key));
    }
    return it->second;
  }
  [[nodiscard]] std::any& mutable_item(const std::string& key) {
    const auto it = items_.find(key);
    if (it == items_.end()) {
      throw std::logic_error(missing_message(key));
    }
    return it->second;
  }

  std::unordered_map<std::string, std::any> items_;
};

/// One unit of the workflow graph. Implementations read their inputs from
/// the store and put their outputs back; consumes()/produces() document the
/// contract and let Pipeline::validate catch miswired graphs before any
/// work runs.
class Stage {
 public:
  virtual ~Stage() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::vector<std::string> consumes() const {
    return {};
  }
  [[nodiscard]] virtual std::vector<std::string> produces() const = 0;

  virtual void run(const par::ExecutionContext& ctx, ArtifactStore& store) = 0;
};

/// Ordered stage graph with upfront wiring validation.
class Pipeline {
 public:
  Pipeline& add(std::unique_ptr<Stage> stage);

  template <typename S, typename... Args>
  Pipeline& emplace(Args&&... args) {
    return add(std::make_unique<S>(std::forward<Args>(args)...));
  }

  [[nodiscard]] std::size_t size() const noexcept { return stages_.size(); }
  [[nodiscard]] const Stage& stage(std::size_t i) const { return *stages_[i]; }

  /// Throws std::logic_error naming the first stage whose consumed key is
  /// neither produced earlier nor present in `seed`.
  void validate(const ArtifactStore& seed) const;

  /// validate() then run every stage in order against `store`. Progress is
  /// reported per stage ("pipeline" events, completed = stages finished);
  /// the cancellation token is checked before each stage and
  /// OperationCancelled propagates out.
  void run(const par::ExecutionContext& ctx, ArtifactStore& store) const;

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
};

}  // namespace polarice::core
