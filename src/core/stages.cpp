#include "core/stages.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "img/ops.h"
#include "mr/rdd.h"
#include "par/parallel_for.h"
#include "s2/scene.h"
#include "s2/tiles.h"
#include "tensor/conv.h"
#include "util/rng.h"
#include "util/timer.h"

namespace polarice::core {

namespace {

/// Borrowed views of an image-list artifact. The key may hold a
/// std::vector<img::ImageU8> or be keys::kScenes (std::vector<s2::Scene>),
/// whose rgb planes are read in place — the corpus graph never copies
/// scene imagery between stages.
std::vector<const img::ImageU8*> rgb_inputs(const ArtifactStore& store,
                                            const std::string& key) {
  std::vector<const img::ImageU8*> views;
  if (const auto* images = store.try_get<std::vector<img::ImageU8>>(key)) {
    views.reserve(images->size());
    for (const auto& image : *images) views.push_back(&image);
    return views;
  }
  if (const auto* scenes = store.try_get<std::vector<s2::Scene>>(key)) {
    views.reserve(scenes->size());
    for (const auto& scene : *scenes) views.push_back(&scene.rgb);
    return views;
  }
  throw std::logic_error("stages: artifact '" + key +
                         "' holds neither an image list nor scenes");
}

}  // namespace

// ---------------------------------------------------------------------------
// AcquireStage
// ---------------------------------------------------------------------------

AcquireStage::AcquireStage(s2::AcquisitionConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

void AcquireStage::run_scene(const par::ExecutionContext& ctx,
                             SceneSlot& slot) const {
  ctx.throw_if_cancelled("acquire");
  const int cloudy_scenes =
      static_cast<int>(config_.cloudy_scene_fraction *
                           static_cast<double>(config_.num_scenes) +
                       0.5);
  s2::SceneConfig sc = config_.scene_template;
  sc.width = sc.height = config_.scene_size;
  sc.seed = config_.seed + slot.index;
  sc.cloudy = static_cast<int>(slot.index) < cloudy_scenes;
  slot.scene = s2::SceneGenerator(sc).generate();
}

void AcquireStage::run(const par::ExecutionContext& ctx,
                       ArtifactStore& store) {
  const auto num_scenes = static_cast<std::size_t>(config_.num_scenes);
  std::vector<s2::Scene> scenes(num_scenes);
  par::parallel_for(
      ctx.pool(), 0, num_scenes,
      [&](std::size_t i) {
        SceneSlot slot;
        slot.index = i;
        run_scene(ctx, slot);
        scenes[i] = std::move(slot.scene);
      },
      /*grain=*/1);
  store.put(keys::kScenes, std::move(scenes));
}

// ---------------------------------------------------------------------------
// CloudFilterStage
// ---------------------------------------------------------------------------

CloudFilterStage::CloudFilterStage(CloudFilterConfig config,
                                   std::string input_key,
                                   std::string output_key)
    : config_(config),
      input_key_(std::move(input_key)),
      output_key_(std::move(output_key)) {
  config_.validate();
}

void CloudFilterStage::run_scene(const par::ExecutionContext& ctx,
                                 SceneSlot& slot) const {
  ctx.throw_if_cancelled("cloud_filter");
  // Intra-scene row parallelism from the caller's pool; the filter output
  // is pool-invariant, so this matches the batch path bit for bit.
  slot.filtered = CloudShadowFilter(config_).apply(slot.scene.rgb, ctx);
}

void CloudFilterStage::run(const par::ExecutionContext& ctx,
                           ArtifactStore& store) {
  const auto images = rgb_inputs(store, input_key_);
  const CloudShadowFilter filter(config_);
  std::vector<img::ImageU8> filtered(images.size());
  if (images.size() == 1) {
    // Serving shape: one scene, intra-image row parallelism.
    filtered[0] = filter.apply(*images[0], ctx);
  } else {
    // A loop over the per-scene kernel, parallel across scenes and
    // sequential inside each (the batch shape).
    const par::ExecutionContext scene_ctx = ctx.with_pool(nullptr);
    par::parallel_for(
        ctx.pool(), 0, images.size(),
        [&](std::size_t i) {
          ctx.throw_if_cancelled("cloud_filter");
          filtered[i] = filter.apply(*images[i], scene_ctx);
        },
        /*grain=*/1);
  }
  store.put(output_key_, std::move(filtered));
}

// ---------------------------------------------------------------------------
// AutoLabelStage
// ---------------------------------------------------------------------------

AutoLabelStage::AutoLabelStage(AutoLabelConfig config, AutoLabelPolicy policy,
                               std::string input_key, std::string output_key)
    : config_(std::move(config)),
      policy_(policy),
      input_key_(std::move(input_key)),
      output_key_(std::move(output_key)) {}

std::vector<AutoLabelResult> AutoLabelStage::label_batch(
    const std::vector<img::ImageU8>& images, const par::ExecutionContext& ctx,
    AutoLabelBatchStats* stats) const {
  std::vector<const img::ImageU8*> views;
  views.reserve(images.size());
  for (const auto& image : images) views.push_back(&image);
  return label_batch(views, ctx, stats);
}

std::vector<AutoLabelResult> AutoLabelStage::label_batch(
    const std::vector<const img::ImageU8*>& images,
    const par::ExecutionContext& ctx, AutoLabelBatchStats* stats) const {
  const AutoLabeler labeler(config_);
  std::vector<AutoLabelResult> results(images.size());
  std::optional<mr::JobTimes> spark_times;

  // One shared child context for every tile: sequential inside a tile
  // (parallelism is across tiles), same cancellation token as the caller,
  // and no per-tile context allocation on the hot path.
  const par::ExecutionContext tile_ctx = ctx.with_pool(nullptr);
  util::WallTimer timer;
  const auto label_over = [&](par::ThreadPool* pool) {
    par::parallel_for(
        pool, 0, images.size(),
        [&](std::size_t i) {
          ctx.throw_if_cancelled("auto_label");
          results[i] = labeler.label(*images[i], tile_ctx);
        },
        /*grain=*/1);
  };

  switch (policy_.kind) {
    case AutoLabelPolicy::Kind::kContext:
      label_over(ctx.pool());
      break;
    case AutoLabelPolicy::Kind::kPool: {
      if (policy_.workers == 0) {
        throw std::invalid_argument("AutoLabelStage: workers must be >= 1");
      }
      if (policy_.workers == 1) {
        label_over(nullptr);
      } else {
        par::ThreadPool pool(policy_.workers);
        label_over(&pool);
      }
      break;
    }
    case AutoLabelPolicy::Kind::kSpark: {
      // Load -> map(UDF) -> collect. The lineage carries (index, borrowed
      // image) pairs — the tiles themselves are not copied into the RDD —
      // and the index brings results back to input order regardless of the
      // round-robin partitioning. Borrowing is safe: collect() completes
      // before this scope ends.
      mr::SparkContext context(policy_.cluster);
      context.set_cancellation(ctx.cancellation());
      std::vector<std::pair<std::size_t, const img::ImageU8*>> indexed;
      indexed.reserve(images.size());
      for (std::size_t i = 0; i < images.size(); ++i) {
        indexed.emplace_back(i, images[i]);
      }
      auto rdd = context.parallelize(std::move(indexed));
      auto labeled = rdd.map(
          [&labeler, &tile_ctx](
              const std::pair<std::size_t, const img::ImageU8*>& item) {
            return std::make_pair(item.first,
                                  labeler.label(*item.second, tile_ctx));
          });
      for (auto& [index, result] : labeled.collect()) {
        results[index] = std::move(result);
      }
      spark_times = context.last_job();
      break;
    }
  }

  if (stats != nullptr) {
    stats->seconds = timer.seconds();
    stats->items = images.size();
    stats->spark = spark_times;
  }
  return results;
}

void AutoLabelStage::run_scene(const par::ExecutionContext& ctx,
                               SceneSlot& slot) const {
  ctx.throw_if_cancelled("auto_label");
  // Same fused labeler as label_batch; its output is pool-invariant, so the
  // streaming path may use intra-scene row parallelism freely.
  slot.auto_labels = AutoLabeler(config_).label(slot.segmented(), ctx).labels;
}

void AutoLabelStage::run(const par::ExecutionContext& ctx,
                         ArtifactStore& store) {
  auto results = label_batch(rgb_inputs(store, input_key_), ctx);
  std::vector<img::ImageU8> planes;
  planes.reserve(results.size());
  for (auto& result : results) {
    planes.push_back(std::move(result.labels));
    result = AutoLabelResult{};  // release colorized/used_image eagerly
  }
  store.put(output_key_, std::move(planes));
}

// ---------------------------------------------------------------------------
// ManualLabelStage
// ---------------------------------------------------------------------------

ManualLabelStage::ManualLabelStage(s2::ManualLabelConfig config)
    : config_(config) {}

void ManualLabelStage::run_scene(const par::ExecutionContext& ctx,
                                 SceneSlot& slot) const {
  ctx.throw_if_cancelled("manual_label");
  auto cfg = config_;
  cfg.seed += slot.index;  // per-scene annotator stream
  slot.manual_labels = s2::simulate_manual_labels(slot.scene.labels, cfg);
}

void ManualLabelStage::run(const par::ExecutionContext& ctx,
                           ArtifactStore& store) {
  // A loop over run_scene: each scene is moved through a transient slot
  // (moves only — the store's planes are never copied) and back.
  auto scenes = store.take<std::vector<s2::Scene>>(keys::kScenes);
  std::vector<img::ImageU8> labels(scenes.size());
  par::parallel_for(
      ctx.pool(), 0, scenes.size(),
      [&](std::size_t i) {
        SceneSlot slot;
        slot.index = i;
        slot.scene = std::move(scenes[i]);
        run_scene(ctx, slot);
        labels[i] = std::move(slot.manual_labels);
        scenes[i] = std::move(slot.scene);
      },
      /*grain=*/1);
  store.put(keys::kScenes, std::move(scenes));
  store.put(keys::kManualLabels, std::move(labels));
}

// ---------------------------------------------------------------------------
// TileSplitStage
// ---------------------------------------------------------------------------

TileSplitStage::TileSplitStage(int tile_size, std::string filtered_key)
    : tile_size_(tile_size), filtered_key_(std::move(filtered_key)) {
  if (tile_size_ <= 0) {
    throw std::invalid_argument("TileSplitStage: tile_size must be positive");
  }
}

std::vector<LabeledTile> TileSplitStage::split_one(
    const s2::Scene& scene, const img::ImageU8& segmented,
    const img::ImageU8& auto_labels, const img::ImageU8& manual_labels,
    int scene_index) const {
  auto scene_tiles = s2::split_scene(scene, tile_size_, scene_index);
  std::vector<LabeledTile> out;
  out.reserve(scene_tiles.size());
  for (auto& st : scene_tiles) {
    LabeledTile tile;
    const int x0 = st.tile_x * tile_size_;
    const int y0 = st.tile_y * tile_size_;
    tile.rgb = std::move(st.rgb);
    tile.rgb_clean = std::move(st.rgb_clean);
    tile.truth = std::move(st.labels);
    tile.rgb_filtered = img::crop(segmented, x0, y0, tile_size_, tile_size_);
    tile.auto_labels =
        img::crop(auto_labels, x0, y0, tile_size_, tile_size_);
    tile.manual_labels =
        img::crop(manual_labels, x0, y0, tile_size_, tile_size_);
    tile.cloud_fraction = st.cloud_fraction;
    tile.scene_index = st.scene_index;
    tile.tile_x = st.tile_x;
    tile.tile_y = st.tile_y;
    out.push_back(std::move(tile));
  }
  return out;
}

void TileSplitStage::run_scene(const par::ExecutionContext& ctx,
                               SceneSlot& slot) const {
  ctx.throw_if_cancelled("tile_split");
  slot.tiles = split_one(slot.scene, slot.segmented(), slot.auto_labels,
                         slot.manual_labels, static_cast<int>(slot.index));
}

void TileSplitStage::run(const par::ExecutionContext& ctx,
                         ArtifactStore& store) {
  const auto& scenes = store.get<std::vector<s2::Scene>>(keys::kScenes);
  const auto filtered = rgb_inputs(store, filtered_key_);
  const auto& auto_labels =
      store.get<std::vector<img::ImageU8>>(keys::kAutoLabels);
  const auto& manual_labels =
      store.get<std::vector<img::ImageU8>>(keys::kManualLabels);
  if (filtered.size() != scenes.size() ||
      auto_labels.size() != scenes.size() ||
      manual_labels.size() != scenes.size()) {
    throw std::logic_error("TileSplitStage: per-scene plane count mismatch");
  }
  if (scenes.empty()) {
    store.put(keys::kCorpusTiles, std::vector<LabeledTile>{});
    return;
  }
  // Per-scene tile counts follow split_scene's semantics exactly (floor per
  // axis, partial edge tiles discarded), so non-square and mixed-size
  // scenes index correctly.
  std::vector<std::size_t> offsets(scenes.size() + 1, 0);
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    const auto count =
        static_cast<std::size_t>(scenes[i].rgb.width() / tile_size_) *
        static_cast<std::size_t>(scenes[i].rgb.height() / tile_size_);
    offsets[i + 1] = offsets[i] + count;
  }
  std::vector<LabeledTile> tiles(offsets.back());
  par::parallel_for(
      ctx.pool(), 0, scenes.size(),
      [&](std::size_t scene_idx) {
        ctx.throw_if_cancelled("tile_split");
        auto scene_tiles =
            split_one(scenes[scene_idx], *filtered[scene_idx],
                      auto_labels[scene_idx], manual_labels[scene_idx],
                      static_cast<int>(scene_idx));
        for (std::size_t i = 0; i < scene_tiles.size(); ++i) {
          tiles[offsets[scene_idx] + i] = std::move(scene_tiles[i]);
        }
      },
      /*grain=*/1);
  store.put(keys::kCorpusTiles, std::move(tiles));
}

// ---------------------------------------------------------------------------
// DropArtifactsStage
// ---------------------------------------------------------------------------

DropArtifactsStage::DropArtifactsStage(std::vector<std::string> keys)
    : keys_(std::move(keys)) {}

void DropArtifactsStage::run(const par::ExecutionContext& ctx,
                             ArtifactStore& store) {
  ctx.throw_if_cancelled("drop_artifacts");
  for (const auto& key : keys_) store.erase(key);
}

// ---------------------------------------------------------------------------
// TrainTestSplitStage / CloudBucketStage
// ---------------------------------------------------------------------------

TrainTestSplitStage::TrainTestSplitStage(double train_fraction,
                                         std::uint64_t seed)
    : train_fraction_(train_fraction), seed_(seed) {
  if (train_fraction_ <= 0.0 || train_fraction_ >= 1.0) {
    throw std::invalid_argument(
        "TrainTestSplitStage: train_fraction in (0,1)");
  }
}

void TrainTestSplitStage::run(const par::ExecutionContext& ctx,
                              ArtifactStore& store) {
  ctx.throw_if_cancelled("train_test_split");
  auto tiles = store.take<std::vector<LabeledTile>>(keys::kCorpusTiles);
  util::Rng split_rng(seed_);
  std::shuffle(tiles.begin(), tiles.end(), split_rng);
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(tiles.size()) * train_fraction_);
  std::vector<LabeledTile> train(tiles.begin(), tiles.begin() + cut);
  std::vector<LabeledTile> test(tiles.begin() + cut, tiles.end());
  if (train.empty() || test.empty()) {
    throw std::invalid_argument(
        "TrainTestSplitStage: split produced an empty set");
  }
  store.put(keys::kTrainTiles, std::move(train));
  store.put(keys::kTestTiles, std::move(test));
}

CloudBucketStage::CloudBucketStage(double threshold) : threshold_(threshold) {
  if (threshold_ < 0.0 || threshold_ > 1.0) {
    throw std::invalid_argument("CloudBucketStage: threshold in [0,1]");
  }
}

void CloudBucketStage::run(const par::ExecutionContext& ctx,
                           ArtifactStore& store) {
  ctx.throw_if_cancelled("cloud_bucket");
  const auto& test = store.get<std::vector<LabeledTile>>(keys::kTestTiles);
  std::vector<LabeledTile> cloudy, clear;
  for (const auto& tile : test) {
    (tile.cloud_fraction > threshold_ ? cloudy : clear).push_back(tile);
  }
  store.put(keys::kTestTilesCloudy, std::move(cloudy));
  store.put(keys::kTestTilesClear, std::move(clear));
}

// ---------------------------------------------------------------------------
// TrainStage / EvaluateStage
// ---------------------------------------------------------------------------

TrainStage::TrainStage(std::string model_id, nn::UNetConfig model_config,
                       nn::TrainConfig train_config, LabelSource labels,
                       ImageVariant images, std::string tiles_key)
    : model_id_(std::move(model_id)),
      model_config_(model_config),
      train_config_(train_config),
      labels_(labels),
      images_(images),
      tiles_key_(std::move(tiles_key)) {
  model_config_.validate();
}

void TrainStage::run(const par::ExecutionContext& ctx, ArtifactStore& store) {
  const auto& tiles = store.get<std::vector<LabeledTile>>(tiles_key_);
  const nn::SegDataset data = build_dataset(tiles, labels_, images_);
  auto model = std::make_shared<nn::UNet>(model_config_);
  model->bind(ctx);
  nn::Trainer trainer(*model, train_config_);
  auto history = trainer.fit(data, ctx);
  store.put(keys::kModelPrefix + model_id_, model);
  store.put(keys::kHistoryPrefix + model_id_, std::move(history));
}

EvaluateStage::EvaluateStage(std::string model_id, std::string tiles_key,
                             ImageVariant images, std::string out_id)
    : model_id_(std::move(model_id)),
      tiles_key_(std::move(tiles_key)),
      images_(images),
      out_id_(std::move(out_id)) {}

void EvaluateStage::run(const par::ExecutionContext& ctx,
                        ArtifactStore& store) {
  ctx.throw_if_cancelled("evaluate");
  const auto& model =
      store.get<std::shared_ptr<nn::UNet>>(keys::kModelPrefix + model_id_);
  const auto& tiles = store.get<std::vector<LabeledTile>>(tiles_key_);
  store.put(keys::kEvalPrefix + out_id_,
            evaluate_model(*model, tiles, images_, ctx));
}

Evaluation evaluate_model(nn::UNet& model,
                          const std::vector<LabeledTile>& tiles,
                          ImageVariant variant,
                          const par::ExecutionContext& ctx) {
  Evaluation eval;
  if (tiles.empty()) return eval;
  const nn::SegDataset dataset =
      build_dataset(tiles, LabelSource::kGroundTruth, variant);

  model.bind(ctx);
  nn::DataLoader loader(dataset, /*batch_size=*/8, /*seed=*/0,
                        /*shuffle=*/false);
  loader.start_epoch();
  tensor::Tensor logits, probs;
  nn::Batch batch;
  while (loader.next(batch)) {
    ctx.throw_if_cancelled("evaluate");
    model.forward(batch.x, logits, /*training=*/false);
    tensor::softmax_channel(logits, probs);
    const auto pred = tensor::argmax_channel(probs);
    eval.confusion.add_all(batch.targets, pred);
  }
  eval.accuracy = eval.confusion.accuracy();
  eval.precision = eval.confusion.macro_precision();
  eval.recall = eval.confusion.macro_recall();
  eval.f1 = eval.confusion.macro_f1();
  return eval;
}

// ---------------------------------------------------------------------------
// TileInferStage / StitchStage / infer_scene_tiles
// ---------------------------------------------------------------------------

TileInferStage::TileInferStage(nn::UNet& model, int tile_size, int batch_tiles,
                               std::string input_key)
    : model_(&model),
      tile_size_(tile_size),
      batch_tiles_(batch_tiles),
      input_key_(std::move(input_key)) {
  require_tile_compatible(model, tile_size, "TileInferStage");
  if (batch_tiles_ < 1) batch_tiles_ = 1;
}

void TileInferStage::run(const par::ExecutionContext& ctx,
                         ArtifactStore& store) {
  const auto& images = store.get<std::vector<img::ImageU8>>(input_key_);
  std::vector<std::vector<img::ImageU8>> predictions(images.size());
  std::vector<TileGrid> grids(images.size());
  // The model's forward caches make it stateful, so scenes run serially;
  // intra-scene parallelism comes from the model's pool. Serving-scale
  // concurrency is InferenceSession's job (one model replica per slot).
  for (std::size_t i = 0; i < images.size(); ++i) {
    predictions[i] =
        infer_scene_tiles(*model_, images[i], tile_size_, batch_tiles_, ctx);
    grids[i] = TileGrid{images[i].width() / tile_size_,
                        images[i].height() / tile_size_};
  }
  store.put(keys::kTilePredictions, std::move(predictions));
  store.put(keys::kTileGrids, std::move(grids));
}

void StitchStage::run(const par::ExecutionContext& ctx, ArtifactStore& store) {
  ctx.throw_if_cancelled("stitch");
  const auto& predictions =
      store.get<std::vector<std::vector<img::ImageU8>>>(keys::kTilePredictions);
  const auto& grids = store.get<std::vector<TileGrid>>(keys::kTileGrids);
  std::vector<img::ImageU8> labels(predictions.size());
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    labels[i] =
        s2::stitch_labels(predictions[i], grids[i].tiles_x, grids[i].tiles_y);
  }
  store.put(keys::kSceneLabels, std::move(labels));
}

std::vector<img::ImageU8> infer_scene_tiles(nn::UNet& model,
                                            const img::ImageU8& filtered,
                                            int tile_size, int batch_tiles,
                                            const par::ExecutionContext& ctx) {
  if (filtered.channels() != 3) {
    throw std::invalid_argument("infer_scene_tiles: expected RGB scene");
  }
  if (filtered.width() % tile_size != 0 ||
      filtered.height() % tile_size != 0) {
    throw std::invalid_argument(
        "infer_scene_tiles: scene size must be a tile multiple");
  }
  if (batch_tiles < 1) batch_tiles = 1;
  const int tiles_x = filtered.width() / tile_size;
  const int tiles_y = filtered.height() / tile_size;
  const int total = tiles_x * tiles_y;

  model.bind(ctx);
  std::vector<img::ImageU8> out(static_cast<std::size_t>(total));
  tensor::Tensor x, logits, probs;
  const std::size_t plane = static_cast<std::size_t>(tile_size) * tile_size;
  // Tile-staging scratch comes from the context's per-thread arena: the
  // prediction indices of every batch reuse one lease-scoped buffer instead
  // of a fresh std::vector per batch, and the arena rewinds when the lease
  // ends — steady-state serving allocates nothing here.
  auto scratch = ctx.scratch().lease();
  int* pred = scratch.allocate_n<int>(
      static_cast<std::size_t>(std::min(batch_tiles, total)) * plane);
  for (int start = 0; start < total; start += batch_tiles) {
    ctx.throw_if_cancelled("tile_infer");
    const int batch = std::min(batch_tiles, total - start);
    if (x.ndim() != 4 || x.dim(0) != batch) {
      x = tensor::Tensor({batch, 3, tile_size, tile_size});
    }
    for (int s = 0; s < batch; ++s) {
      const int t = start + s;
      stage_tile(filtered, (t % tiles_x) * tile_size,
                 (t / tiles_x) * tile_size, tile_size, x, s);
    }
    model.forward(x, logits, /*training=*/false);
    tensor::softmax_channel(logits, probs);
    tensor::argmax_channel(probs, pred);
    for (int s = 0; s < batch; ++s) {
      out[static_cast<std::size_t>(start + s)] = pred_plane(pred, s, tile_size);
    }
    ctx.report_progress("tile_infer",
                        static_cast<std::size_t>(start + batch),
                        static_cast<std::size_t>(total));
  }
  return out;
}

void require_tile_compatible(const nn::UNet& model, int tile_size,
                             const char* who) {
  if (tile_size <= 0 || tile_size % model.config().spatial_divisor() != 0) {
    throw std::invalid_argument(
        std::string(who) + ": tile_size incompatible with model depth");
  }
}

void stage_tile(const img::ImageU8& filtered, int x0, int y0, int tile_size,
                tensor::Tensor& x, int sample) {
  for (int y = 0; y < tile_size; ++y) {
    for (int xx = 0; xx < tile_size; ++xx) {
      for (int c = 0; c < 3; ++c) {
        x.at4(sample, c, y, xx) = filtered.at(x0 + xx, y0 + y, c) / 255.0f;
      }
    }
  }
}

img::ImageU8 pred_plane(const int* pred, int sample, int tile_size) {
  img::ImageU8 tile_plane(tile_size, tile_size, 1);
  const std::size_t plane = static_cast<std::size_t>(tile_size) * tile_size;
  const std::size_t base = static_cast<std::size_t>(sample) * plane;
  for (int y = 0; y < tile_size; ++y) {
    for (int xx = 0; xx < tile_size; ++xx) {
      tile_plane.at(xx, y) = static_cast<std::uint8_t>(
          pred[base + static_cast<std::size_t>(y) * tile_size + xx]);
    }
  }
  return tile_plane;
}

}  // namespace polarice::core
